(* Recursive CTEs: semi-naive fixpoint semantics, the iteration cap, the
   cost-model terms behind fixpoint and fused-probe pricing, and a
   differential fuzz of the executor's Fixpoint operator against a naive
   OCaml transitive-closure oracle over random edge sets. *)

open Sloth_storage

let fresh_catalog () =
  let tables : (string, Table.t) Hashtbl.t = Hashtbl.create 4 in
  {
    Executor.find_table = Hashtbl.find_opt tables;
    add_table =
      (fun sch -> Hashtbl.replace tables (Schema.name sch) (Table.create sch));
  }

let run ?mode ?recursion_limit cat sql =
  Executor.execute cat ?mode ?recursion_limit (Sloth_sql.Parser.parse sql)

let ints_of (o : Executor.outcome) =
  List.map
    (fun row -> match row.(0) with Value.Int i -> i | _ -> assert false)
    (Result_set.rows o.Executor.rs)

let edge_catalog ?(indexed = false) edges =
  let cat = fresh_catalog () in
  ignore
    (run cat
       "CREATE TABLE edge (id INT NOT NULL, subject_id INT NOT NULL, \
        object_id INT NOT NULL, PRIMARY KEY (id))");
  if indexed then
    Table.create_index
      (Option.get (cat.Executor.find_table "edge"))
      "subject_id";
  List.iteri
    (fun i (s, o) ->
      ignore
        (run cat
           (Printf.sprintf
              "INSERT INTO edge (id, subject_id, object_id) VALUES (%d, %d, \
               %d)"
              (i + 1) s o)))
    edges;
  cat

let closure_sql ~union_all ~root =
  Printf.sprintf
    "WITH RECURSIVE r (id) AS (SELECT object_id FROM edge WHERE subject_id \
     = %d %s SELECT e.object_id FROM r JOIN edge AS e ON e.subject_id = \
     r.id) SELECT id FROM r"
    root
    (if union_all then "UNION ALL" else "UNION")

(* --- unit tests ---------------------------------------------------------- *)

let test_union_closure () =
  (* 1 -> 2 -> 3 -> 4 -> 1 cycle plus 1 -> 5 -> 3: closure(1) is every
     node, each exactly once despite the cycle. *)
  let cat = edge_catalog [ (1, 2); (2, 3); (3, 4); (1, 5); (5, 3); (4, 1) ] in
  let o = run cat (closure_sql ~union_all:false ~root:1) in
  Alcotest.(check (list int))
    "closure(1)" [ 1; 2; 3; 4; 5 ]
    (List.sort compare (ints_of o))

let test_union_dedupes_base () =
  (* Two parallel 1 -> 2 edges: UNION folds the base leg's duplicate. *)
  let cat = edge_catalog [ (1, 2); (1, 2) ] in
  let o = run cat (closure_sql ~union_all:false ~root:1) in
  Alcotest.(check (list int)) "base deduped" [ 2 ] (ints_of o)

let test_union_all_keeps_duplicates () =
  (* 1 -> 2 twice, 2 -> 3: UNION ALL keeps one path per edge multiset. *)
  let cat = edge_catalog [ (1, 2); (1, 2); (2, 3) ] in
  let o = run cat (closure_sql ~union_all:true ~root:1) in
  Alcotest.(check (list int))
    "path multiset" [ 2; 2; 3; 3 ]
    (List.sort compare (ints_of o))

let test_single_leg_cte () =
  let cat = edge_catalog [ (1, 2); (1, 2); (2, 3) ] in
  let o =
    run cat
      "WITH src (s) AS (SELECT DISTINCT subject_id FROM edge) SELECT \
       COUNT(*) FROM src"
  in
  Alcotest.(check (list int)) "distinct subjects" [ 2 ] (ints_of o)

let test_recursion_limit () =
  (* UNION ALL over a cycle diverges; the cap must trip as the typed
     exception, not a Sql_error. *)
  let cat = edge_catalog [ (1, 2); (2, 1) ] in
  match run cat ~recursion_limit:6 (closure_sql ~union_all:true ~root:1) with
  | exception Executor.Recursion_limit { cte = "r"; limit = 6 } -> ()
  | exception e -> Alcotest.failf "wrong exception %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "expected Recursion_limit"

let test_cte_shadows_table () =
  (* A CTE named after a real table shadows it for the whole statement. *)
  let cat = edge_catalog [ (1, 2); (2, 3) ] in
  ignore
    (run cat
       "CREATE TABLE shadow (id INT NOT NULL, other INT, PRIMARY KEY (id))");
  ignore (run cat "INSERT INTO shadow (id, other) VALUES (99, 0)");
  let o =
    run cat
      "WITH shadow (id) AS (SELECT object_id FROM edge WHERE subject_id = \
       1) SELECT id FROM shadow"
  in
  Alcotest.(check (list int)) "shadowed" [ 2 ] (ints_of o)

let test_base_leg_self_reference () =
  (* The working table shadows everywhere, including the CTE's own base
     leg, which therefore sees only the empty initial state — recursion
     flows through the step leg.  A self-reference touching columns the
     CTE does not declare fails loudly instead. *)
  let cat = edge_catalog [ (1, 2); (2, 3) ] in
  let o =
    run cat "WITH edge (object_id) AS (SELECT object_id FROM edge) SELECT \
             COUNT(*) FROM edge"
  in
  Alcotest.(check (list int)) "empty working table" [ 0 ] (ints_of o);
  match
    run cat
      "WITH edge (id) AS (SELECT object_id FROM edge WHERE subject_id = 1) \
       SELECT id FROM edge"
  with
  | exception Executor.Sql_error _ -> ()
  | _ -> Alcotest.fail "expected Sql_error on undeclared column"

let test_leg_arity_mismatch () =
  let cat = edge_catalog [ (1, 2) ] in
  match
    run cat
      "WITH r (id) AS (SELECT subject_id, object_id FROM edge) SELECT id \
       FROM r"
  with
  | exception Executor.Sql_error _ -> ()
  | _ -> Alcotest.fail "expected Sql_error on leg arity mismatch"

(* --- cost-model terms ----------------------------------------------------- *)

let test_fused_probe_pricing () =
  let m = Cost.default in
  let feq = Alcotest.(check (float 1e-9)) in
  (* One probe is exactly an index access — solo plans price identically,
     which is what keeps BENCH_planner.json stable. *)
  feq "probes=1 is index_ms"
    (Cost.index_ms m ~est_rows:8.0)
    (Cost.fused_probe_ms m ~probes:1.0 ~est_rows:8.0);
  (* Each extra sharer costs half a probe on top. *)
  feq "3 probes"
    (m.Cost.probe_ms *. 2.0 +. (m.Cost.scan_row_ms *. 8.0))
    (Cost.fused_probe_ms m ~probes:3.0 ~est_rows:8.0);
  (* The per-statement share shrinks as sharers join the pass. *)
  let share n =
    Cost.fused_probe_ms m ~probes:(float_of_int n) ~est_rows:8.0
    /. float_of_int n
  in
  Alcotest.(check bool) "sharing is monotone" true (share 4 < share 2);
  Alcotest.(check bool) "sharing beats solo" true (share 2 < share 1)

let test_probe_sharers_estimate () =
  (* eq_est through the planner: ?probe_sharers prices this statement's
     share of a fused pass; sharers=1 must reproduce the default. *)
  let cat = edge_catalog ~indexed:true (List.init 8 (fun i -> (1, i + 2))) in
  let find n = Option.get (cat.Executor.find_table n) in
  let s =
    match
      Sloth_sql.Parser.parse "SELECT object_id FROM edge WHERE subject_id = 1"
    with
    | Sloth_sql.Ast.Select s -> s
    | _ -> assert false
  in
  let est sharers =
    (Planner.plan ~probe_sharers:sharers ~find ~model:Cost.default s)
      .Plan.p_est.Plan.est_ms
  in
  Alcotest.(check (float 1e-9)) "sharers=1 is the default" (est 1)
    (Planner.plan ~find ~model:Cost.default s).Plan.p_est.Plan.est_ms;
  Alcotest.(check bool) "sharers=4 cheaper than solo" true (est 4 < est 1);
  Alcotest.(check bool) "sharers=8 cheaper than 4" true (est 8 < est 4)

let test_fixpoint_ms () =
  let m = Cost.default in
  Alcotest.(check (float 1e-9))
    "base + iterations * (step + probe)"
    (0.3 +. (8.0 *. (0.05 +. m.Cost.probe_ms)))
    (Cost.fixpoint_ms m ~base_ms:0.3 ~step_ms:0.05 ~est_iterations:8.0);
  Alcotest.(check (float 1e-9))
    "no step leg, no iterations" 0.3
    (Cost.fixpoint_ms m ~base_ms:0.3 ~step_ms:0.0 ~est_iterations:0.0)

(* --- differential fuzz ---------------------------------------------------- *)

type case = {
  n_nodes : int;
  edges : (int * int) list;
  root : int;
  union_all : bool;
  limit : int;
  indexed : bool;
}

let show_case c =
  Printf.sprintf "root=%d union_all=%b limit=%d indexed=%b edges=[%s]" c.root
    c.union_all c.limit c.indexed
    (String.concat "; "
       (List.map (fun (s, o) -> Printf.sprintf "%d->%d" s o) c.edges))

let gen_case =
  QCheck.Gen.(
    let* union_all = bool in
    let* n_nodes = int_range 2 6 in
    (* UNION deltas are bounded by the node count, so any cap is safe.
       UNION ALL multiplies the delta by the fan-out every lap of a cycle —
       rows grow like (max out-degree)^cap — so those cases keep both the
       edge multiset and the cap small enough for a worst-case of a few
       thousand rows. *)
    let* m = int_range 0 (if union_all then 6 else 12) in
    let* edges = list_repeat m (pair (int_range 1 n_nodes) (int_range 1 n_nodes)) in
    let* root = int_range 1 n_nodes in
    let* limit = int_range 1 (if union_all then 4 else 8) in
    let* indexed = bool in
    return { n_nodes; edges; root; union_all; limit; indexed })

(* The oracle replays the semi-naive loop in plain OCaml over the edge
   list: same base leg, same delta-driven step, same dedup and cap rules as
   the executor's documented semantics. *)
let oracle c =
  let children n =
    List.filter_map (fun (s, o) -> if s = n then Some o else None) c.edges
  in
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  let add rows =
    if c.union_all then begin
      acc := !acc @ rows;
      rows
    end
    else
      List.filter
        (fun r ->
          if Hashtbl.mem seen r then false
          else begin
            Hashtbl.replace seen r ();
            acc := !acc @ [ r ];
            true
          end)
        rows
  in
  let delta = ref (add (children c.root)) in
  let iter = ref 0 in
  match
    while !delta <> [] do
      if !iter >= c.limit then raise Exit;
      incr iter;
      delta := add (List.concat_map children !delta)
    done
  with
  | () -> `Rows (List.sort compare !acc)
  | exception Exit -> `Limit

let executor_result c mode =
  let cat = edge_catalog ~indexed:c.indexed c.edges in
  match
    run cat ~mode ~recursion_limit:c.limit
      (closure_sql ~union_all:c.union_all ~root:c.root)
  with
  | o -> `Rows (List.sort compare (ints_of o))
  | exception Executor.Recursion_limit _ -> `Limit

let prop_fixpoint_vs_oracle =
  QCheck.Test.make ~count:500 ~name:"fixpoint matches transitive-closure oracle"
    (QCheck.make gen_case ~print:show_case)
    (fun c ->
      let expect = oracle c in
      let planned = executor_result c Executor.Planned in
      let direct = executor_result c Executor.Direct in
      if planned <> expect then
        QCheck.Test.fail_reportf "planned diverges from oracle on %s"
          (show_case c);
      if direct <> expect then
        QCheck.Test.fail_reportf "direct diverges from oracle on %s"
          (show_case c);
      true)

let () =
  Alcotest.run "recursion"
    [
      ( "fixpoint",
        [
          Alcotest.test_case "union closure" `Quick test_union_closure;
          Alcotest.test_case "union dedupes base" `Quick test_union_dedupes_base;
          Alcotest.test_case "union all duplicates" `Quick
            test_union_all_keeps_duplicates;
          Alcotest.test_case "single-leg cte" `Quick test_single_leg_cte;
          Alcotest.test_case "recursion limit" `Quick test_recursion_limit;
          Alcotest.test_case "cte shadows table" `Quick test_cte_shadows_table;
          Alcotest.test_case "base-leg self-reference" `Quick
            test_base_leg_self_reference;
          Alcotest.test_case "leg arity mismatch" `Quick test_leg_arity_mismatch;
        ] );
      ( "cost",
        [
          Alcotest.test_case "fused probe pricing" `Quick
            test_fused_probe_pricing;
          Alcotest.test_case "probe sharers estimate" `Quick
            test_probe_sharers_estimate;
          Alcotest.test_case "fixpoint term" `Quick test_fixpoint_ms;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_fixpoint_vs_oracle ] );
    ]
