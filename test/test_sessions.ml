(* Tests for the asynchronous multi-session server: futures on the event
   calendar, cross-client shared-scan coalescing, barrier semantics,
   session-tagged exactly-once tokens, fairness caps — and a differential
   fuzz suite pinning interleaved multi-session execution (with and without
   fault injection) to a serial replay of the server's execution log. *)

module Db = Sloth_storage.Database
module Rs = Sloth_storage.Result_set
module Wal = Sloth_storage.Wal
module Des = Sloth_net.Des
module Fault = Sloth_net.Fault
module Adm = Sloth_server.Admission
module Session = Sloth_driver.Session
module Parser = Sloth_sql.Parser

let parse = Parser.parse
let parse_all = List.map parse

let seed_kv db =
  ignore
    (Db.exec_sql db
       "CREATE TABLE kv (id INT NOT NULL, grp INT NOT NULL, val TEXT NOT \
        NULL, PRIMARY KEY (id))");
  for i = 1 to 30 do
    ignore
      (Db.exec_sql db
         (Printf.sprintf "INSERT INTO kv (id, grp, val) VALUES (%d, %d, 'v%d')"
            i (i mod 5) i))
  done

let setup () =
  let db = Db.create () in
  seed_kv db;
  db

(* Durability first, then the seed, so every seed row flows through the WAL
   and survives a crash-restart. *)
let durable_setup ?(checkpoint_every = 2) () =
  let db = Db.create () in
  Db.enable_durability ~checkpoint_every ~wal:(Wal.mem ())
    ~checkpoint:(Wal.mem ()) db;
  seed_kv db;
  db

let server ?window_ms ?max_coalesce ?share db =
  let sim = Des.create () in
  (sim, Adm.create ~sim ~db ?window_ms ?max_coalesce ?share ())

let run sim = Des.run sim ~until:Float.infinity

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  at 0

let same_outcome (a : Db.outcome) (b : Db.outcome) =
  Rs.columns a.rs = Rs.columns b.rs
  && Rs.rows a.rs = Rs.rows b.rs
  && a.rows_affected = b.rows_affected

let same_outcomes a b =
  List.length a = List.length b && List.for_all2 same_outcome a b

(* --- futures -------------------------------------------------------------- *)

let test_future_resolves_via_calendar () =
  let sim = Des.create () in
  let fut = Des.Future.create sim in
  let seen = ref None in
  Des.Future.on_resolve fut (fun v -> seen := Some v);
  Des.Future.resolve fut 42;
  Alcotest.(check (option int))
    "callback is scheduled, not synchronous" None !seen;
  Alcotest.(check bool) "but the value is visible" true
    (Des.Future.peek fut = Some 42);
  run sim;
  Alcotest.(check (option int)) "callback ran under the calendar" (Some 42)
    !seen;
  (* late subscribers still go through the calendar *)
  let late = ref None in
  Des.Future.on_resolve fut (fun v -> late := Some v);
  Alcotest.(check (option int)) "late callback also deferred" None !late;
  run sim;
  Alcotest.(check (option int)) "late callback ran" (Some 42) !late

let test_future_double_resolve_raises () =
  let sim = Des.create () in
  let fut = Des.Future.create sim in
  Des.Future.resolve fut 1;
  Alcotest.check_raises "second resolve rejected"
    (Invalid_argument "Des.Future.resolve: already resolved") (fun () ->
      Des.Future.resolve fut 2)

let test_future_map () =
  let sim = Des.create () in
  let fut = Des.Future.create sim in
  let doubled = Des.Future.map fut (fun v -> v * 2) in
  Des.Future.resolve fut 21;
  run sim;
  Alcotest.(check bool) "mapped future resolved" true
    (Des.Future.peek doubled = Some 42)

(* --- serving basics ------------------------------------------------------- *)

let reads_sql =
  [
    "SELECT COUNT(*) AS n FROM kv";
    "SELECT grp, COUNT(*) AS n FROM kv GROUP BY grp";
  ]

let test_single_session_reads () =
  let db = setup () in
  let expected = Db.exec_batch (setup ()) (parse_all reads_sql) in
  let sim, srv = server db in
  let ses = Session.connect srv in
  let h = Session.submit_sql ses reads_sql in
  run sim;
  match Session.peek h with
  | Some (Ok outs) ->
      Alcotest.(check bool) "served batch equals direct execution" true
        (same_outcomes outs expected);
      Alcotest.(check int) "latency recorded" 1
        (List.length (Session.latencies ses))
  | Some (Error e) -> Alcotest.fail e
  | None -> Alcotest.fail "future never resolved"

let test_cross_client_sharing () =
  let arm ~share =
    let sim, srv = server ~share (setup ()) in
    let sessions = List.init 4 (fun _ -> Session.connect srv) in
    let handles =
      List.map (fun s -> Session.submit_sql s [ "SELECT COUNT(*) AS n FROM kv" ])
        sessions
    in
    run sim;
    let replies =
      List.map
        (fun h ->
          match Session.peek h with
          | Some (Ok outs) -> outs
          | _ -> Alcotest.fail "reply missing")
        handles
    in
    (replies, Adm.stats srv)
  in
  let shared_r, shared = arm ~share:true in
  let unshared_r, unshared = arm ~share:false in
  Alcotest.(check bool) "same results with and without sharing" true
    (List.for_all2 same_outcomes shared_r unshared_r);
  Alcotest.(check int) "one flush covers all four clients" 1 shared.Adm.flushes;
  Alcotest.(check int) "all four coalesced" 4 shared.Adm.coalesced;
  Alcotest.(check int) "three of four answered without scanning" 3
    shared.Adm.zero_scan_reads;
  Alcotest.(check int) "shared arm scans the heap once" 30
    shared.Adm.rows_scanned;
  Alcotest.(check int) "unshared arm scans it per client" 120
    unshared.Adm.rows_scanned;
  Alcotest.(check int) "no coalescing when sharing is off" 0
    unshared.Adm.coalesced

let test_fairness_cap () =
  let sim, srv = server ~max_coalesce:2 (setup ()) in
  let handles =
    List.init 5 (fun _ ->
        Session.submit_sql (Session.connect srv)
          [ "SELECT COUNT(*) AS n FROM kv" ])
  in
  run sim;
  List.iter
    (fun h ->
      match Session.peek h with
      | Some (Ok _) -> ()
      | _ -> Alcotest.fail "capped flush lost a reply")
    handles;
  let s = Adm.stats srv in
  Alcotest.(check int) "cap splits five batches into three flushes" 3
    s.Adm.flushes;
  Alcotest.(check int) "no flush exceeds the cap" 2 s.Adm.max_flush

let test_write_barrier_rolls_back () =
  let db = setup () in
  let before = Db.fingerprint db in
  let sim, srv = server db in
  let ses = Session.connect srv in
  let h =
    Session.submit_sql ses ~token:"w1"
      [
        "INSERT INTO kv (id, grp, val) VALUES (100, 0, 'x')";
        "INSERT INTO kv (id, grp, val) VALUES (1, 0, 'dup')";
      ]
  in
  run sim;
  (match Session.peek h with
  | Some (Error _) -> ()
  | _ -> Alcotest.fail "duplicate-key batch should be answered with Error");
  Alcotest.(check string) "the partial insert was rolled back" before
    (Db.fingerprint db);
  Alcotest.(check int) "failed batches are not logged" 0
    (List.length (Adm.log srv))

let test_open_transaction_rejected () =
  let db = setup () in
  let before = Db.fingerprint db in
  let sim, srv = server db in
  let ses = Session.connect srv in
  let h =
    Session.submit_sql ses
      [ "BEGIN"; "UPDATE kv SET val = 'u' WHERE id = 1" ]
  in
  run sim;
  (match Session.peek h with
  | Some (Error msg) ->
      Alcotest.(check bool) "error names the batch-scoped policy" true
        (contains_substring msg "batch-scoped")
  | _ -> Alcotest.fail "open transaction should be answered with Error");
  Alcotest.(check bool) "server is not left inside a transaction" false
    (Db.in_txn db);
  Alcotest.(check string) "the update was rolled back" before
    (Db.fingerprint db)

let test_exactly_once_under_response_loss () =
  let db = setup () in
  let sim, srv = server db in
  let fault = Fault.create (Fault.plan ()) in
  Fault.script fault ~first:1 ~last:1 Fault.Drop Fault.Response;
  let ses = Session.connect ~fault srv in
  let h =
    Session.submit_sql ses ~token:"t1"
      [ "INSERT INTO kv (id, grp, val) VALUES (200, 1, 'once')" ]
  in
  run sim;
  (match Session.peek h with
  | Some (Ok [ o ]) ->
      Alcotest.(check int) "replayed outcome reports the insert" 1
        o.Db.rows_affected
  | _ -> Alcotest.fail "retransmitted tokened batch should resolve Ok");
  let n =
    Rs.rows (Db.exec_sql db "SELECT COUNT(*) AS n FROM kv WHERE id = 200").rs
  in
  Alcotest.(check bool) "the row exists exactly once" true
    (match n with [ [| v |] ] -> v = Sloth_storage.Value.Int 1 | _ -> false);
  Alcotest.(check int) "executed once despite the retransmission" 1
    (List.length (Adm.log srv));
  (match Adm.log srv with
  | [ e ] ->
      Alcotest.(check bool) "the logged execution's reply was lost" false
        e.Adm.e_delivered
  | _ -> assert false);
  Alcotest.(check int) "the retry was counted" 1 (Adm.stats srv).Adm.retransmits

let test_session_tagged_tokens () =
  let db = setup () in
  let sim, srv = server db in
  let a = Session.connect srv and b = Session.connect srv in
  let ha =
    Session.submit_sql a ~token:"same"
      [ "INSERT INTO kv (id, grp, val) VALUES (301, 0, 'a')" ]
  in
  let hb =
    Session.submit_sql b ~token:"same"
      [ "INSERT INTO kv (id, grp, val) VALUES (302, 0, 'b')" ]
  in
  run sim;
  (match (Session.peek ha, Session.peek hb) with
  | Some (Ok _), Some (Ok _) -> ()
  | _ -> Alcotest.fail "both sessions' batches should succeed");
  let n =
    Rs.rows (Db.exec_sql db "SELECT COUNT(*) AS n FROM kv WHERE id > 300").rs
  in
  Alcotest.(check bool)
    "equal token strings in different sessions never collide" true
    (match n with [ [| v |] ] -> v = Sloth_storage.Value.Int 2 | _ -> false)

let test_read_retransmission_logged_twice () =
  let db = setup () in
  let sim, srv = server db in
  let fault = Fault.create (Fault.plan ()) in
  Fault.script fault ~first:1 ~last:1 Fault.Drop Fault.Response;
  let ses = Session.connect ~fault srv in
  let h = Session.submit_sql ses [ "SELECT COUNT(*) AS n FROM kv" ] in
  run sim;
  (match Session.peek h with
  | Some (Ok _) -> ()
  | _ -> Alcotest.fail "read should be retransmitted and answered");
  match Adm.log srv with
  | [ first; second ] ->
      Alcotest.(check bool) "first execution's reply was lost" false
        first.Adm.e_delivered;
      Alcotest.(check bool) "second execution was delivered" true
        second.Adm.e_delivered;
      Alcotest.(check int) "both executions belong to the same batch"
        first.Adm.e_seq second.Adm.e_seq
  | l ->
      Alcotest.failf "expected the read logged twice, got %d entries"
        (List.length l)

(* --- crash-restart -------------------------------------------------------- *)

let transition_labels srv =
  List.map (fun (_, s) -> Adm.state_to_string s) (Adm.transitions srv)

let count_where db pred =
  match Rs.rows (Db.exec_sql db (Printf.sprintf "SELECT COUNT(*) AS n FROM kv WHERE %s" pred)).rs with
  | [ [| Sloth_storage.Value.Int n |] ] -> n
  | _ -> Alcotest.fail "count query failed"

let crash_fault leg =
  let f = Fault.create (Fault.plan ()) in
  Fault.script f ~first:1 ~last:1 Fault.Server_crash leg;
  f

let test_crash_request_leg_redrives () =
  let db = durable_setup () in
  let sim, srv = server db in
  let fault = crash_fault Fault.Request in
  let ses = Session.connect ~fault srv in
  let h =
    Session.submit_sql ses ~token:"w"
      [ "INSERT INTO kv (id, grp, val) VALUES (400, 0, 'x')" ]
  in
  run sim;
  (match Session.peek h with
  | Some (Ok [ o ]) ->
      Alcotest.(check int) "the re-driven insert really executed" 1
        o.Db.rows_affected
  | Some (Ok _) -> Alcotest.fail "expected one outcome"
  | Some (Error e) -> Alcotest.fail e
  | None -> Alcotest.fail "future never resolved");
  Alcotest.(check int) "the row exists exactly once" 1 (count_where db "id = 400");
  let s = Adm.stats srv in
  Alcotest.(check int) "one crash" 1 s.Adm.crashes;
  Alcotest.(check int) "one recovery" 1 s.Adm.recoveries;
  Alcotest.(check int) "nothing was in flight to tear" 0 s.Adm.torn_inflight;
  Alcotest.(check int) "no durable ack: the batch never ran pre-crash" 0
    s.Adm.durable_acks;
  Alcotest.(check int) "the injected crash counted exactly once" 1
    (Fault.count fault Fault.Server_crash);
  Alcotest.(check int) "the client reconnected once" 1
    (Session.reconnects ses);
  Alcotest.(check (list string)) "state machine: no redrive drain needed"
    [ "serving"; "crashed"; "recovering"; "serving" ]
    (transition_labels srv);
  Alcotest.(check int) "epoch bumped once" 1 (Adm.epoch srv);
  match Adm.log srv with
  | [ e ] ->
      Alcotest.(check int) "executed by the new incarnation" 1 e.Adm.e_epoch
  | l -> Alcotest.failf "expected one log entry, got %d" (List.length l)

let test_crash_response_leg_durable_ack () =
  let db = durable_setup () in
  let sim, srv = server db in
  let fault = crash_fault Fault.Response in
  let ses = Session.connect ~fault srv in
  let h =
    Session.submit_sql ses ~token:"w"
      [ "INSERT INTO kv (id, grp, val) VALUES (410, 0, 'x')" ]
  in
  run sim;
  (match Session.peek h with
  | Some (Ok [ o ]) ->
      (* post-commit pre-ack: the WAL vouches for the write, so the reply
         is a synthesized ack, not a re-execution *)
      Alcotest.(check int) "durable ack reports applied-only" 0
        o.Db.rows_affected
  | Some (Ok _) -> Alcotest.fail "expected one outcome"
  | Some (Error e) -> Alcotest.fail e
  | None -> Alcotest.fail "future never resolved");
  Alcotest.(check int) "the row survived recovery exactly once" 1
    (count_where db "id = 410");
  let s = Adm.stats srv in
  Alcotest.(check int) "answered from the durable token registry" 1
    s.Adm.durable_acks;
  Alcotest.(check int) "one crash" 1 s.Adm.crashes;
  match Adm.log srv with
  | [ e ] ->
      Alcotest.(check int) "executed by the dying incarnation" 0 e.Adm.e_epoch;
      Alcotest.(check bool) "its ack never reached the client" false
        e.Adm.e_delivered
  | l -> Alcotest.failf "expected one log entry, got %d" (List.length l)

let test_crash_mid_batch_discards_prefix () =
  let db = durable_setup () in
  let sim, srv = server db in
  let fault = crash_fault (Fault.Mid_batch 1) in
  let ses = Session.connect ~fault srv in
  let h =
    Session.submit_sql ses ~token:"w"
      [
        "INSERT INTO kv (id, grp, val) VALUES (420, 0, 'x')";
        "INSERT INTO kv (id, grp, val) VALUES (421, 0, 'y')";
      ]
  in
  run sim;
  (match Session.peek h with
  | Some (Ok outs) ->
      Alcotest.(check (list int)) "the re-drive executed the whole batch"
        [ 1; 1 ]
        (List.map (fun (o : Db.outcome) -> o.Db.rows_affected) outs)
  | Some (Error e) -> Alcotest.fail e
  | None -> Alcotest.fail "future never resolved");
  (* the abandoned prefix (first insert, uncommitted) was discarded by
     recovery: no torn half-batch, both rows exactly once *)
  Alcotest.(check int) "both rows exist exactly once" 2
    (count_where db "id >= 420 AND id <= 421");
  Alcotest.(check bool) "no transaction left open" false (Db.in_txn db);
  let s = Adm.stats srv in
  Alcotest.(check int) "no durable ack: the commit never happened" 0
    s.Adm.durable_acks;
  match Adm.log srv with
  | [ e ] ->
      Alcotest.(check int) "only the post-crash execution is logged" 1
        e.Adm.e_epoch
  | l -> Alcotest.failf "expected one log entry, got %d" (List.length l)

let test_crash_tears_coalesced_flush () =
  let db = durable_setup () in
  let sim, srv = server db in
  let readers = List.init 4 (fun _ -> Session.connect srv) in
  let handles =
    List.map
      (fun s -> Session.submit_sql s [ "SELECT COUNT(*) AS n FROM kv" ])
      readers
  in
  (* the crash lands at t = 1.25 — after all four reads queued (t = 0.25),
     before their coalescing window fires (t = 2.25) *)
  let crasher = Session.connect ~fault:(crash_fault Fault.Request) srv in
  let wh = ref None in
  Des.at sim 1.0 (fun () ->
      wh :=
        Some
          (Session.submit_sql crasher ~token:"w"
             [ "INSERT INTO kv (id, grp, val) VALUES (430, 0, 'x')" ]));
  run sim;
  List.iter
    (fun h ->
      match Session.peek h with
      | Some (Ok _) -> ()
      | _ -> Alcotest.fail "torn reader was not re-driven to completion")
    handles;
  (match !wh with
  | Some h -> (
      match Session.peek h with
      | Some (Ok _) -> ()
      | _ -> Alcotest.fail "crashing session's own batch must re-drive too")
  | None -> Alcotest.fail "crasher batch never submitted");
  let s = Adm.stats srv in
  Alcotest.(check int) "one crash tore all four queued readers" 4
    s.Adm.torn_inflight;
  Alcotest.(check int) "all four were re-driven" 4 s.Adm.redriven;
  Alcotest.(check int) "but the fault layer counted one crash" 1
    s.Adm.crashes;
  List.iter
    (fun r ->
      Alcotest.(check int) "each reader reconnected once" 1
        (Session.reconnects r))
    readers;
  Alcotest.(check (list string))
    "recovery drained the re-drives before serving normally"
    [ "serving"; "crashed"; "recovering"; "draining-redrive"; "serving" ]
    (transition_labels srv);
  Alcotest.(check int) "re-driven readers coalesced into one flush" 1
    s.Adm.flushes;
  Alcotest.(check int) "all four shared it" 4 s.Adm.coalesced

(* Satellite: a redrive storm across sessions must not let one session's
   tokens evict another's into replay-window-miss errors — provided the
   durable token registry is there to back the bounded window up. *)
let test_eviction_storm_durable_no_misses () =
  let db = durable_setup () in
  let sim, srv = server db in
  Adm.set_idempotency_window srv 1;
  let sessions =
    List.init 4 (fun _ ->
        let f = Fault.create (Fault.plan ()) in
        Fault.script f ~first:1 ~last:1 Fault.Drop Fault.Response;
        Session.connect ~fault:f srv)
  in
  let handles =
    List.mapi
      (fun i s ->
        Session.submit_sql s ~token:"w"
          [ Printf.sprintf
              "INSERT INTO kv (id, grp, val) VALUES (%d, 0, 's%d')" (500 + i)
              i ])
      sessions
  in
  run sim;
  List.iter
    (fun h ->
      match Session.peek h with
      | Some (Ok _) -> ()
      | Some (Error e) -> Alcotest.failf "retransmission refused: %s" e
      | None -> Alcotest.fail "future never resolved")
    handles;
  Alcotest.(check int) "every write applied exactly once" 4
    (count_where db "id >= 500 AND id < 510");
  let s = Adm.stats srv in
  Alcotest.(check int) "evicted tokens answered from the WAL" 3
    s.Adm.durable_acks;
  Alcotest.(check int) "no refusals" 0 s.Adm.errors

(* Without durability the bounded window is all there is: the same storm
   surfaces the typed replay-window-miss error instead of re-applying. *)
let test_eviction_storm_nondurable_misses () =
  let db = setup () in
  let sim, srv = server db in
  Adm.set_idempotency_window srv 1;
  let sessions =
    List.init 4 (fun _ ->
        let f = Fault.create (Fault.plan ()) in
        Fault.script f ~first:1 ~last:1 Fault.Drop Fault.Response;
        Session.connect ~fault:f srv)
  in
  let handles =
    List.mapi
      (fun i s ->
        Session.submit_sql s ~token:"w"
          [ Printf.sprintf
              "INSERT INTO kv (id, grp, val) VALUES (%d, 0, 's%d')" (510 + i)
              i ])
      sessions
  in
  run sim;
  let misses =
    List.fold_left
      (fun acc h ->
        match Session.peek h with
        | Some (Error e) when contains_substring e "replay-window miss" ->
            acc + 1
        | Some (Error e) -> Alcotest.failf "unexpected error: %s" e
        | Some (Ok _) -> acc
        | None -> Alcotest.fail "future never resolved")
      0 handles
  in
  Alcotest.(check int) "three tokens evicted into typed misses" 3 misses;
  Alcotest.(check int) "but no write was ever re-applied" 4
    (count_where db "id >= 510 AND id < 520")

(* --- differential fuzz: interleaved serving vs serial replay -------------- *)

(* A random multi-session schedule runs through the admission layer;
   afterwards the server's execution log is replayed serially against an
   identically seeded database.  The replay must reproduce (a) every
   delivered [Ok] result set — matched against the *last* logged execution
   of that (session, seq), which is the one whose reply was delivered —
   and (b) the final database fingerprint.  Write batches always carry an
   idempotency token, exactly as a resilient client would, so fault
   injection cannot double-apply them. *)

let fresh_id = ref 0

let gen_read rng =
  match Random.State.int rng 5 with
  | 0 -> Printf.sprintf "SELECT * FROM kv WHERE id = %d" (1 + Random.State.int rng 40)
  | 1 -> Printf.sprintf "SELECT COUNT(*) AS n FROM kv WHERE grp = %d" (Random.State.int rng 5)
  | 2 -> "SELECT grp, COUNT(*) AS n FROM kv GROUP BY grp"
  | 3 -> Printf.sprintf "SELECT * FROM kv WHERE grp = %d AND id < 20" (Random.State.int rng 5)
  | _ -> "SELECT COUNT(*) AS n FROM kv"

let gen_write rng =
  match Random.State.int rng 3 with
  | 0 ->
      incr fresh_id;
      Printf.sprintf "INSERT INTO kv (id, grp, val) VALUES (%d, %d, 'w%d')"
        (1000 + !fresh_id) (Random.State.int rng 5) !fresh_id
  | 1 ->
      Printf.sprintf "UPDATE kv SET val = 'u%d' WHERE id = %d"
        (Random.State.int rng 100) (1 + Random.State.int rng 30)
  | _ -> Printf.sprintf "DELETE FROM kv WHERE id = %d" (1 + Random.State.int rng 30)

(* A batch spec: the statements plus whether it needs a token (any write). *)
let gen_batch rng =
  match Random.State.int rng 10 with
  | 0 | 1 | 2 | 3 | 4 ->
      (List.init (1 + Random.State.int rng 3) (fun _ -> gen_read rng), false)
  | 5 | 6 | 7 ->
      let n = 1 + Random.State.int rng 3 in
      let stmts =
        List.init n (fun _ ->
            if Random.State.int rng 3 = 0 then gen_read rng else gen_write rng)
      in
      (* guarantee at least one write so the batch is really a barrier *)
      ((gen_write rng :: stmts), true)
  | 8 ->
      ( [ "BEGIN"; gen_write rng; gen_write rng;
          (if Random.State.bool rng then "COMMIT" else "ROLLBACK") ],
        true )
  | _ ->
      (* deliberately invalid: either a duplicate-key insert (rolls the
         batch back) or a transaction left open (rejected by policy) *)
      if Random.State.bool rng then
        ( [ gen_write rng; "INSERT INTO kv (id, grp, val) VALUES (1, 0, 'dup')" ],
          true )
      else ([ "BEGIN"; gen_write rng ], true)

let run_case ~case_seed ~sessions ~batches_per_session ~fault_rate =
  fresh_id := 0;
  let rng = Random.State.make [| 0xfacade; case_seed |] in
  let schedule =
    List.init sessions (fun _ ->
        List.init
          (1 + Random.State.int rng batches_per_session)
          (fun _ ->
            let stmts, tokened = gen_batch rng in
            (stmts, tokened, Random.State.float rng 4.0)))
  in
  let db = setup () in
  let sim = Des.create () in
  let srv = Adm.create ~sim ~db ~window_ms:1.0 ~retry:{ Sloth_net.Retry_policy.served with max_attempts = 40 }
      ()
  in
  let delivered = Hashtbl.create 64 in
  let token = ref 0 in
  List.iteri
    (fun si batches ->
      let fault =
        if fault_rate > 0.0 then
          Some (Fault.create (Fault.uniform ~seed:(case_seed + si) fault_rate))
        else None
      in
      let ses = Adm.open_session ?fault srv in
      let rec go seq = function
        | [] -> ()
        | (sqls, tokened, think) :: rest ->
            let tok =
              if tokened then (incr token; Some (Printf.sprintf "b%d" !token))
              else None
            in
            let fut = Adm.submit ses ?token:tok (parse_all sqls) in
            Des.Future.on_resolve fut (fun r ->
                Hashtbl.replace delivered (si, seq) r);
            Des.delay sim think (fun () -> go (seq + 1) rest)
      in
      Des.at sim (Random.State.float rng 2.0) (fun () -> go 0 batches))
    schedule;
  run sim;
  (* serial replay of the execution log on a twin database *)
  let oracle = setup () in
  let oracle_out = Hashtbl.create 64 in
  List.iter
    (fun (e : Adm.entry) ->
      match Db.exec_batch oracle e.Adm.e_stmts with
      | outs -> Hashtbl.replace oracle_out (e.Adm.e_session, e.Adm.e_seq) outs
      | exception Db.Sql_error msg ->
          QCheck.Test.fail_reportf
            "serial replay diverged: logged batch failed with %s" msg)
    (Adm.log srv);
  let total = List.length schedule |> fun _ ->
    List.fold_left (fun a b -> a + List.length b) 0 schedule
  in
  if Hashtbl.length delivered <> total then
    QCheck.Test.fail_reportf "only %d of %d batches resolved"
      (Hashtbl.length delivered) total;
  Hashtbl.iter
    (fun key reply ->
      match reply with
      | Error _ -> () (* rolled back / rejected / retries exhausted *)
      | Ok outs -> (
          match Hashtbl.find_opt oracle_out key with
          | None ->
              QCheck.Test.fail_reportf
                "session %d seq %d delivered Ok but was never logged"
                (fst key) (snd key)
          | Some oracle_outs ->
              if not (same_outcomes outs oracle_outs) then
                QCheck.Test.fail_reportf
                  "session %d seq %d: delivered results differ from serial \
                   replay"
                  (fst key) (snd key)))
    delivered;
  if Db.fingerprint db <> Db.fingerprint oracle then
    QCheck.Test.fail_reportf
      "final database differs from serial replay of the execution log";
  true

let case_gen =
  QCheck.make
    ~print:(fun (seed, sessions, batches) ->
      Printf.sprintf "seed=%d sessions=%d batches<=%d" seed sessions batches)
    QCheck.Gen.(
      triple (int_bound 1_000_000) (int_range 2 4) (int_range 1 6))

let fuzz_serial_equivalence =
  QCheck.Test.make ~count:300
    ~name:"interleaved multi-session execution equals serial replay"
    case_gen
    (fun (seed, sessions, batches) ->
      run_case ~case_seed:seed ~sessions ~batches_per_session:batches
        ~fault_rate:0.0)

let fuzz_serial_equivalence_faults =
  QCheck.Test.make ~count:300
    ~name:"serial equivalence holds under fault injection"
    case_gen
    (fun (seed, sessions, batches) ->
      let rate = [| 0.05; 0.1; 0.2 |].(seed mod 3) in
      run_case ~case_seed:seed ~sessions ~batches_per_session:batches
        ~fault_rate:rate)

(* --- crash-point differential fuzz ---------------------------------------- *)

(* Same oracle as above, but the server runs on a durable database and
   session 0 carries a scripted [Server_crash] at a chosen trip and leg —
   before-send, mid-batch pre-commit, or post-commit pre-ack — sweeping
   checkpoint intervals.  Every delivered [Ok] must still match the serial
   replay of the (crash-epoch-annotated) execution log, with one deliberate
   exception: a tokened batch whose reply is a synthesized durable ack
   (empty result sets, zero rows affected) is accepted as long as the batch
   is in the log — the ack asserts "applied", not the outcome values.  The
   final fingerprint comparison then proves the write landed exactly
   once. *)

let ack_shaped outs =
  outs <> []
  && List.for_all
       (fun (o : Db.outcome) ->
         o.Db.rows_affected = 0 && Rs.rows o.Db.rs = [])
       outs

let run_crash_case ~case_seed ~sessions ~batches_per_session ~leg =
  fresh_id := 0;
  let rng = Random.State.make [| 0xc4a54; case_seed |] in
  let schedule =
    List.init sessions (fun si ->
        (* session 0 is the crash victim: at least two batches, so the
           scripted trip (1 or 2) is guaranteed to happen *)
        let n =
          if si = 0 then 2 + Random.State.int rng batches_per_session
          else 1 + Random.State.int rng batches_per_session
        in
        List.init n (fun _ ->
            let stmts, tokened = gen_batch rng in
            (stmts, tokened, Random.State.float rng 4.0)))
  in
  let checkpoint_every = [| 1; 4; 0 |].(case_seed mod 3) in
  let db = durable_setup ~checkpoint_every () in
  let sim = Des.create () in
  let srv = Adm.create ~sim ~db ~window_ms:1.0 ~retry:{ Sloth_net.Retry_policy.served with max_attempts = 40 }
      ()
  in
  let victim_fault = Fault.create (Fault.plan ()) in
  let crash_trip = 1 + (case_seed mod 2) in
  Fault.script victim_fault ~first:crash_trip ~last:crash_trip
    Fault.Server_crash leg;
  let delivered = Hashtbl.create 64 in
  let token = ref 0 in
  List.iteri
    (fun si batches ->
      let fault = if si = 0 then Some victim_fault else None in
      let ses = Adm.open_session ?fault srv in
      let rec go seq = function
        | [] -> ()
        | (sqls, tokened, think) :: rest ->
            let tok =
              if tokened then (incr token; Some (Printf.sprintf "b%d" !token))
              else None
            in
            let fut = Adm.submit ses ?token:tok (parse_all sqls) in
            Des.Future.on_resolve fut (fun r ->
                Hashtbl.replace delivered (si, seq) (tokened, r));
            Des.delay sim think (fun () -> go (seq + 1) rest)
      in
      Des.at sim (Random.State.float rng 2.0) (fun () -> go 0 batches))
    schedule;
  run sim;
  let s = Adm.stats srv in
  if s.Adm.crashes <> 1 then
    QCheck.Test.fail_reportf "expected exactly one crash, got %d"
      s.Adm.crashes;
  if Fault.count victim_fault Fault.Server_crash <> 1 then
    QCheck.Test.fail_reportf "crash decision must count exactly once";
  if Adm.state srv <> Adm.Serving then
    QCheck.Test.fail_reportf "server did not return to serving (torn batch \
                              left behind)";
  (* the log's crash epochs never regress: no execution straddles a restart *)
  ignore
    (List.fold_left
       (fun last (e : Adm.entry) ->
         if e.Adm.e_epoch < last then
           QCheck.Test.fail_reportf "execution log epochs regress";
         e.Adm.e_epoch)
       0 (Adm.log srv));
  (* serial replay of the execution log on a plain twin database *)
  let oracle = setup () in
  let oracle_out = Hashtbl.create 64 in
  List.iter
    (fun (e : Adm.entry) ->
      match Db.exec_batch oracle e.Adm.e_stmts with
      | outs -> Hashtbl.replace oracle_out (e.Adm.e_session, e.Adm.e_seq) outs
      | exception Db.Sql_error msg ->
          QCheck.Test.fail_reportf
            "serial replay diverged: logged batch failed with %s" msg)
    (Adm.log srv);
  let total = List.fold_left (fun a b -> a + List.length b) 0 schedule in
  if Hashtbl.length delivered <> total then
    QCheck.Test.fail_reportf "only %d of %d batches resolved"
      (Hashtbl.length delivered) total;
  Hashtbl.iter
    (fun key (tokened, reply) ->
      match reply with
      | Error _ -> () (* rolled back / rejected / window miss / gave up *)
      | Ok outs -> (
          match Hashtbl.find_opt oracle_out key with
          | None ->
              QCheck.Test.fail_reportf
                "session %d seq %d delivered Ok but was never logged"
                (fst key) (snd key)
          | Some oracle_outs ->
              if
                not
                  (same_outcomes outs oracle_outs
                  || (tokened && ack_shaped outs))
              then
                QCheck.Test.fail_reportf
                  "session %d seq %d: delivered results differ from serial \
                   replay across the crash"
                  (fst key) (snd key)))
    delivered;
  if Db.fingerprint db <> Db.fingerprint oracle then
    QCheck.Test.fail_reportf
      "recovered database differs from serial replay of the execution log";
  true

let crash_fuzz name leg_of_seed =
  QCheck.Test.make ~count:220 ~name case_gen
    (fun (seed, sessions, batches) ->
      run_crash_case ~case_seed:seed ~sessions ~batches_per_session:batches
        ~leg:(leg_of_seed seed))

let fuzz_crash_request =
  crash_fuzz "serial equivalence across a before-send crash" (fun _ ->
      Fault.Request)

let fuzz_crash_mid_batch =
  crash_fuzz "serial equivalence across a mid-batch pre-commit crash"
    (fun seed -> Fault.Mid_batch (seed mod 4))

let fuzz_crash_response =
  crash_fuzz "serial equivalence across a post-commit pre-ack crash" (fun _ ->
      Fault.Response)

let () =
  Alcotest.run "sessions"
    [
      ( "future",
        [
          Alcotest.test_case "resolves via calendar" `Quick
            test_future_resolves_via_calendar;
          Alcotest.test_case "double resolve raises" `Quick
            test_future_double_resolve_raises;
          Alcotest.test_case "map" `Quick test_future_map;
        ] );
      ( "serving",
        [
          Alcotest.test_case "single session reads" `Quick
            test_single_session_reads;
          Alcotest.test_case "cross-client sharing" `Quick
            test_cross_client_sharing;
          Alcotest.test_case "fairness cap" `Quick test_fairness_cap;
          Alcotest.test_case "write barrier rolls back" `Quick
            test_write_barrier_rolls_back;
          Alcotest.test_case "open transaction rejected" `Quick
            test_open_transaction_rejected;
          Alcotest.test_case "exactly-once under response loss" `Quick
            test_exactly_once_under_response_loss;
          Alcotest.test_case "session-tagged tokens" `Quick
            test_session_tagged_tokens;
          Alcotest.test_case "read retransmission logged twice" `Quick
            test_read_retransmission_logged_twice;
        ] );
      ( "crash-restart",
        [
          Alcotest.test_case "request-leg crash re-drives" `Quick
            test_crash_request_leg_redrives;
          Alcotest.test_case "response-leg crash durable ack" `Quick
            test_crash_response_leg_durable_ack;
          Alcotest.test_case "mid-batch crash discards prefix" `Quick
            test_crash_mid_batch_discards_prefix;
          Alcotest.test_case "crash tears coalesced flush" `Quick
            test_crash_tears_coalesced_flush;
          Alcotest.test_case "eviction storm, durable: no misses" `Quick
            test_eviction_storm_durable_no_misses;
          Alcotest.test_case "eviction storm, non-durable: typed misses"
            `Quick test_eviction_storm_nondurable_misses;
        ] );
      ( "differential",
        List.map QCheck_alcotest.to_alcotest
          [ fuzz_serial_equivalence; fuzz_serial_equivalence_faults ] );
      ( "crash differential",
        List.map QCheck_alcotest.to_alcotest
          [ fuzz_crash_request; fuzz_crash_mid_batch; fuzz_crash_response ] );
    ]
