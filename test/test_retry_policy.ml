(* Property tests for [Sloth_net.Retry_policy]: the backoff schedule is
   deterministic (pure in the policy and the attempt number — any jitter
   is applied by the driver from its own seeded RNG, never here), bounded
   by [backoff_max_ms], monotone non-decreasing, and exactly doubling
   below the cap. *)

module Rp = Sloth_net.Retry_policy

let builtins =
  [
    ("default", Rp.default);
    ("no_retry", Rp.no_retry);
    ("served", Rp.served);
    ("shipping", Rp.shipping);
  ]

(* Attempts worth probing: deep enough that every builtin hits its cap. *)
let attempts = List.init 20 (fun i -> i + 1)

(* --- deterministic, pinned values ---------------------------------------- *)

let test_default_schedule () =
  (* base 1ms doubling to the 32ms cap: 1 2 4 8 16 32 32 ... *)
  List.iter
    (fun (attempt, expect) ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "default attempt %d" attempt)
        expect
        (Rp.backoff_ms Rp.default attempt))
    [ (1, 1.0); (2, 2.0); (3, 4.0); (4, 8.0); (5, 16.0); (6, 32.0);
      (7, 32.0); (20, 32.0) ]

let test_served_schedule () =
  (* base 1ms doubling to a 16ms cap, no jitter *)
  List.iter
    (fun (attempt, expect) ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "served attempt %d" attempt)
        expect
        (Rp.backoff_ms Rp.served attempt))
    [ (1, 1.0); (2, 2.0); (4, 8.0); (5, 16.0); (6, 16.0); (20, 16.0) ];
  Alcotest.(check (float 0.0)) "served has no jitter" 0.0 Rp.served.Rp.jitter

let test_schedule_deterministic () =
  (* The same (policy, attempt) always yields the same delay: recompute
     every builtin's full schedule twice and compare exactly. *)
  let schedule p = List.map (fun a -> Rp.backoff_ms p a) attempts in
  List.iter
    (fun (name, p) ->
      Alcotest.(check (list (float 0.0)))
        (name ^ " schedule stable") (schedule p) (schedule p))
    builtins

let test_builtin_shapes () =
  Alcotest.(check int) "no_retry gives up immediately" 1
    Rp.no_retry.Rp.max_attempts;
  Alcotest.(check bool) "shipping never gives up" true
    (Rp.shipping.Rp.max_attempts = max_int);
  Alcotest.(check bool) "served is patient" true
    (Rp.served.Rp.max_attempts > Rp.default.Rp.max_attempts)

(* --- bounded backoff properties ------------------------------------------ *)

(* Random policies: positive base, cap anywhere from below the base to far
   above it, so the clamp is exercised from both sides. *)
let policy_gen =
  QCheck.(
    set_print
      (fun (base, cap, attempt) ->
        Printf.sprintf "base=%.3fms cap=%.3fms attempt=%d" base cap attempt)
      (triple (float_range 0.001 100.0) (float_range 0.001 10000.0)
         (int_range 1 60)))

let policy_of (base, cap, _) =
  { Rp.default with Rp.backoff_base_ms = base; backoff_max_ms = cap }

let fuzz_bounded =
  QCheck.Test.make ~count:500 ~name:"backoff bounded by the cap and the base"
    policy_gen (fun ((base, cap, attempt) as c) ->
      let p = policy_of c in
      let d = Rp.backoff_ms p attempt in
      if d < 0.0 then QCheck.Test.fail_reportf "negative backoff %f" d;
      if d > cap +. 1e-9 then
        QCheck.Test.fail_reportf "backoff %f above cap %f" d cap;
      if d > base *. (2.0 ** float_of_int (attempt - 1)) +. 1e-9 then
        QCheck.Test.fail_reportf "backoff %f above the doubling curve" d;
      true)

let fuzz_monotone_doubling =
  QCheck.Test.make ~count:500
    ~name:"backoff monotone, exactly doubling below the cap" policy_gen
    (fun ((_, cap, attempt) as c) ->
      let p = policy_of c in
      let d = Rp.backoff_ms p attempt in
      let d' = Rp.backoff_ms p (attempt + 1) in
      if d' < d then
        QCheck.Test.fail_reportf "backoff shrank: %f then %f" d d';
      (* the next step is exactly double, unless the cap clamps it *)
      let expect = Float.min cap (2.0 *. d) in
      if Float.abs (d' -. expect) > 1e-9 *. Float.max 1.0 expect then
        QCheck.Test.fail_reportf "attempt %d: got %f, expected %f" (attempt + 1)
          d' expect;
      true)

let fuzz_capped_stays_capped =
  QCheck.Test.make ~count:200 ~name:"once capped, always capped" policy_gen
    (fun ((_, cap, attempt) as c) ->
      let p = policy_of c in
      if Rp.backoff_ms p attempt >= cap -. 1e-9 then
        if Float.abs (Rp.backoff_ms p (attempt + 17) -. cap) > 1e-9 then
          QCheck.Test.fail_reportf "left the cap after reaching it";
      true)

let () =
  Alcotest.run "retry_policy"
    [
      ( "pinned",
        [
          Alcotest.test_case "default schedule" `Quick test_default_schedule;
          Alcotest.test_case "served schedule" `Quick test_served_schedule;
          Alcotest.test_case "deterministic" `Quick
            test_schedule_deterministic;
          Alcotest.test_case "builtin shapes" `Quick test_builtin_shapes;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ fuzz_bounded; fuzz_monotone_doubling; fuzz_capped_stays_capped ]
      );
    ]
