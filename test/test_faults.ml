(* Tests for the fault-injection layer and the resilient driver: seeded
   determinism, scripted fault windows, wire-time accounting of failures,
   retry/backoff, the circuit breaker, exactly-once write batches, and the
   query store's graceful batch degradation. *)

module Db = Sloth_storage.Database
module Rs = Sloth_storage.Result_set
module Vclock = Sloth_net.Vclock
module Stats = Sloth_net.Stats
module Link = Sloth_net.Link
module Fault = Sloth_net.Fault
module Conn = Sloth_driver.Connection
module Qs = Sloth_core.Query_store

let feq = Alcotest.(check (float 1e-6))

let setup ?(rtt_ms = 0.5) () =
  let db = Db.create () in
  ignore
    (Db.exec_sql db
       "CREATE TABLE t (id INT NOT NULL, v TEXT NOT NULL, PRIMARY KEY (id))");
  for i = 1 to 50 do
    ignore
      (Db.exec_sql db
         (Printf.sprintf "INSERT INTO t (id, v) VALUES (%d, 'v%d')" i i))
  done;
  let clock = Vclock.create () in
  let link = Link.create ~rtt_ms clock in
  (db, clock, link, Conn.create db link)

let install link plan =
  let f = Fault.create plan in
  Link.set_fault link (Some f);
  f

(* --- the fault plan itself ----------------------------------------------- *)

let test_plan_determinism () =
  let sequence () =
    let f = Fault.create (Fault.uniform ~seed:7 0.3) in
    List.init 200 (fun _ -> Fault.decide f)
  in
  Alcotest.(check bool)
    "same seed, same fault sequence" true
    (sequence () = sequence ())

let test_quiet_plan_always_delivers () =
  let f = Fault.create (Fault.plan ()) in
  for _ = 1 to 100 do
    match Fault.decide f with
    | Fault.Deliver extra -> feq "no extra latency" 0.0 extra
    | Fault.Fail _ -> Alcotest.fail "quiet plan injected a failure"
  done;
  Alcotest.(check int) "trips counted" 100 (Fault.trips f);
  Alcotest.(check int) "nothing injected" 0 (Fault.injected f)

let test_scripted_window () =
  let f = Fault.create (Fault.plan ()) in
  Fault.script f ~first:2 ~last:3 Fault.Drop Fault.Response;
  let decisions = List.init 4 (fun _ -> Fault.decide f) in
  (match decisions with
  | [ Fault.Deliver _; Fault.Fail (Fault.Drop, Fault.Response);
      Fault.Fail (Fault.Drop, Fault.Response); Fault.Deliver _ ] ->
      ()
  | _ -> Alcotest.fail "scripted window did not fire on trips 2-3");
  Alcotest.(check int) "two drops" 2 (Fault.count f Fault.Drop);
  Alcotest.(check int) "injected total" 2 (Fault.injected f)

(* Crash counters are bumped at decision time and nowhere else: however many
   legs, sessions and re-drives a crash's resolution later touches, each
   injected crash counts exactly once. *)
let test_crash_counted_once_per_decision () =
  let f = Fault.create (Fault.plan ~crash_p:1.0 ()) in
  for _ = 1 to 5 do
    match Fault.decide f with
    | Fault.Fail (Fault.Server_crash, _) -> ()
    | _ -> Alcotest.fail "crash_p = 1.0 must always crash"
  done;
  Alcotest.(check int) "five decisions, five crashes" 5
    (Fault.count f Fault.Server_crash);
  Alcotest.(check int) "injected agrees" 5 (Fault.injected f);
  let g = Fault.create (Fault.plan ()) in
  Fault.script g ~first:2 ~last:4 Fault.Server_crash (Fault.Mid_batch 1);
  for _ = 1 to 5 do
    ignore (Fault.decide g)
  done;
  Alcotest.(check int) "scripted window of three counts three" 3
    (Fault.count g Fault.Server_crash)

(* A window scoped to one component fires only on decision points that name
   that component; everything else — other shards, the coordinator, untargeted
   decisions — sails through, and the skipped trips still advance the shared
   trip counter. *)
let test_target_scoped_window () =
  let f = Fault.create (Fault.plan ()) in
  Fault.script ~target:(Fault.Shard 1) f ~first:1 ~last:99 Fault.Server_crash
    Fault.Request;
  let miss t =
    match Fault.decide ?target:t f with
    | Fault.Deliver _ -> ()
    | Fault.Fail _ -> Alcotest.fail "window fired on a non-matching target"
  in
  miss (Some (Fault.Shard 0));
  miss (Some Fault.Coordinator);
  miss None;
  miss (Some Fault.Any_target);
  (match Fault.decide ~target:(Fault.Shard 1) f with
  | Fault.Fail (Fault.Server_crash, Fault.Request) -> ()
  | _ -> Alcotest.fail "window did not fire on its own target");
  Alcotest.(check int) "one crash" 1 (Fault.count f Fault.Server_crash);
  Alcotest.(check int) "five trips" 5 (Fault.trips f);
  (* an unscoped window keeps firing regardless of target *)
  let g = Fault.create (Fault.plan ()) in
  Fault.script g ~first:1 ~last:3 Fault.Drop Fault.Response;
  List.iter
    (fun t ->
      match Fault.decide ?target:t g with
      | Fault.Fail (Fault.Drop, Fault.Response) -> ()
      | _ -> Alcotest.fail "Any_target window must fire for every target")
    [ Some (Fault.Shard 2); Some Fault.Coordinator; None ]

(* Targets are consulted only by scripted windows: on the RNG path the draw
   sequence of a seeded plan is bit-identical whether or not decision points
   pass targets — enabling scoping can never perturb an existing seeded
   experiment. *)
let test_target_rng_neutrality () =
  let targets =
    [|
      None;
      Some (Fault.Shard 0);
      Some Fault.Coordinator;
      Some (Fault.Shard 3);
      Some Fault.Any_target;
    |]
  in
  let sequence with_targets =
    let f = Fault.create (Fault.uniform ~seed:11 0.35) in
    List.init 200 (fun i ->
        if with_targets then
          Fault.decide ?target:targets.(i mod Array.length targets) f
        else Fault.decide f)
  in
  Alcotest.(check bool)
    "targeted and untargeted draws identical" true
    (sequence true = sequence false);
  (* and at rate 0 nothing is drawn at all, targets or not *)
  let quiet = Fault.create (Fault.plan ()) in
  for i = 0 to 99 do
    match Fault.decide ?target:targets.(i mod Array.length targets) quiet with
    | Fault.Deliver _ -> ()
    | Fault.Fail _ -> Alcotest.fail "quiet plan injected a failure"
  done;
  Alcotest.(check int) "nothing injected" 0 (Fault.injected quiet)

(* --- the link under faults ----------------------------------------------- *)

let test_rate_zero_timing_identical () =
  let run with_fault =
    let clock = Vclock.create () in
    let link = Link.create ~rtt_ms:2.0 clock in
    if with_fault then ignore (install link (Fault.plan ()));
    Link.round_trip link ~queries:3 ~bytes:4096;
    Link.round_trip link ~queries:1 ~bytes:128;
    (Vclock.elapsed clock Vclock.Network, Stats.faults (Link.stats link))
  in
  let plain_ms, _ = run false in
  let quiet_ms, quiet_faults = run true in
  feq "network time identical" plain_ms quiet_ms;
  Alcotest.(check int) "no faults recorded" 0 quiet_faults

let test_drop_charges_timeout () =
  let clock = Vclock.create () in
  let link = Link.create ~rtt_ms:0.5 clock in
  let f = install link (Fault.plan ()) in
  Fault.script f ~first:1 ~last:1 Fault.Drop Fault.Request;
  (match Link.round_trip link ~queries:1 ~bytes:100 with
  | () -> Alcotest.fail "expected Link.Injected"
  | exception Link.Injected Fault.Drop -> ());
  feq "timeout burned" (Fault.timeout_ms f) (Vclock.elapsed clock Vclock.Network);
  Alcotest.(check int) "attempt recorded" 1 (Stats.round_trips (Link.stats link));
  Alcotest.(check int) "fault recorded" 1 (Stats.faults (Link.stats link))

(* --- retry machinery ------------------------------------------------------ *)

let test_retry_recovers () =
  let _db, clock, link, conn = setup () in
  let f = install link (Fault.plan ()) in
  Fault.script f ~first:1 ~last:1 Fault.Drop Fault.Request;
  let outcome = Conn.execute_sql conn "SELECT * FROM t WHERE id = 1" in
  Alcotest.(check int) "row served" 1 (Rs.num_rows outcome.rs);
  Alcotest.(check int) "one retry" 1 (Stats.retries (Link.stats link));
  Alcotest.(check int) "both attempts counted" 2
    (Stats.round_trips (Link.stats link));
  Alcotest.(check bool) "timeout + backoff + trip charged" true
    (Vclock.elapsed clock Vclock.Network
    >= Fault.timeout_ms f +. 1.0 +. 0.5);
  Alcotest.(check bool) "breaker closed after success" true
    (Conn.breaker_state conn = `Closed)

let test_retries_exhausted () =
  let _db, _clock, link, conn = setup () in
  ignore (install link (Fault.plan ~drop_p:1.0 ()));
  (match Conn.execute_sql conn "SELECT * FROM t WHERE id = 1" with
  | _ -> Alcotest.fail "expected Retries_exhausted"
  | exception Conn.Retries_exhausted { attempts; last } ->
      Alcotest.(check int) "budget spent" 4 attempts;
      Alcotest.(check string) "drop named" "drop" last);
  Alcotest.(check int) "all attempts on the wire" 4
    (Stats.round_trips (Link.stats link));
  Alcotest.(check int) "retries between attempts" 3
    (Stats.retries (Link.stats link));
  Alcotest.(check int) "faults recorded" 4 (Stats.faults (Link.stats link))

let test_backoff_growth () =
  let _db, clock, link, conn = setup () in
  Conn.set_retry_policy conn
    {
      Conn.Retry_policy.default with
      max_attempts = 5;
      backoff_base_ms = 1.0;
      backoff_max_ms = 8.0;
      jitter = 0.0;
    };
  let f = install link (Fault.plan ~drop_p:1.0 ()) in
  (match Conn.execute_sql conn "SELECT * FROM t WHERE id = 1" with
  | _ -> Alcotest.fail "expected Retries_exhausted"
  | exception Conn.Retries_exhausted _ -> ());
  (* 5 dropped attempts burn the timeout each; the backoffs between them
     double from the base to the cap: 1 + 2 + 4 + 8. *)
  feq "exponential backoff, capped"
    ((5.0 *. Fault.timeout_ms f) +. 1.0 +. 2.0 +. 4.0 +. 8.0)
    (Vclock.elapsed clock Vclock.Network)

let test_circuit_breaker () =
  let _db, clock, link, conn = setup () in
  Conn.set_retry_policy conn
    {
      Conn.Retry_policy.no_retry with
      breaker_threshold = 2;
      breaker_cooldown_ms = 100.0;
    };
  let f = install link (Fault.plan ~drop_p:1.0 ()) in
  let expect_exhausted () =
    match Conn.execute_sql conn "SELECT * FROM t WHERE id = 1" with
    | _ -> Alcotest.fail "expected Retries_exhausted"
    | exception Conn.Retries_exhausted { last; _ } -> last
  in
  ignore (expect_exhausted ());
  Alcotest.(check bool) "one failure: still closed" true
    (Conn.breaker_state conn = `Closed);
  ignore (expect_exhausted ());
  Alcotest.(check bool) "threshold reached: open" true
    (Conn.breaker_state conn = `Open);
  (* While open, calls fail fast: no fault consulted, no wire time. *)
  let trips_before = Fault.trips f in
  Alcotest.(check string) "failed fast" "circuit open" (expect_exhausted ());
  Alcotest.(check int) "no trip attempted" trips_before (Fault.trips f);
  (* After the cooldown a half-open probe goes through; a healthy link
     closes the breaker again. *)
  Vclock.advance clock Vclock.App 150.0;
  Link.set_fault link (Some (Fault.create (Fault.plan ())));
  let outcome = Conn.execute_sql conn "SELECT * FROM t WHERE id = 1" in
  Alcotest.(check int) "probe served" 1 (Rs.num_rows outcome.rs);
  Alcotest.(check bool) "breaker closed again" true
    (Conn.breaker_state conn = `Closed)

(* --- exactly-once writes -------------------------------------------------- *)

let test_write_exactly_once_with_token () =
  let db, _clock, link, conn = setup () in
  let f = install link (Fault.plan ()) in
  Fault.script f ~first:1 ~last:1 Fault.Drop Fault.Response;
  (* The first attempt executes server-side but its response is lost; the
     retransmission must be answered from the idempotency table, not
     re-applied. *)
  let outcomes =
    Conn.execute_batch ~token:"batch-1" conn
      [ Sloth_sql.Parser.parse "INSERT INTO t (id, v) VALUES (60, 'v60')" ]
  in
  Alcotest.(check int) "one outcome" 1 (List.length outcomes);
  Alcotest.(check int) "one retry" 1 (Stats.retries (Link.stats link));
  let count = (Db.exec_sql db "SELECT * FROM t WHERE id = 60").rs in
  Alcotest.(check int) "row applied exactly once" 1 (Rs.num_rows count)

let test_write_double_applies_without_token () =
  let db, _clock, link, conn = setup () in
  let f = install link (Fault.plan ()) in
  Fault.script f ~first:1 ~last:1 Fault.Drop Fault.Response;
  (* Same lost response, but no idempotency token: the retransmission
     re-executes the INSERT and collides with the first application's
     primary key.  This is the hazard the token exists to remove. *)
  (match
     Conn.execute_batch conn
       [ Sloth_sql.Parser.parse "INSERT INTO t (id, v) VALUES (61, 'v61')" ]
   with
  | _ -> Alcotest.fail "expected a duplicate-key Server_error"
  | exception Conn.Server_error _ -> ());
  let count = (Db.exec_sql db "SELECT * FROM t WHERE id = 61").rs in
  Alcotest.(check int) "first application stuck" 1 (Rs.num_rows count)

let insert_batch n =
  [ Sloth_sql.Parser.parse
      (Printf.sprintf "INSERT INTO t (id, v) VALUES (%d, 'v%d')" n n) ]

let test_idempotency_window_eviction () =
  let db, _clock, link, conn = setup () in
  ignore link;
  Conn.set_idempotency_window conn 2;
  ignore (Conn.execute_batch ~token:"a" conn (insert_batch 70));
  ignore (Conn.execute_batch ~token:"b" conn (insert_batch 71));
  ignore (Conn.execute_batch ~token:"c" conn (insert_batch 72));
  (* "b" is still inside the window: retransmission replays the cached
     outcome without touching the table *)
  let replayed = Conn.execute_batch ~token:"b" conn (insert_batch 71) in
  Alcotest.(check int) "replay answered" 1 (List.length replayed);
  let count n = Rs.num_rows (Db.exec_sql db
    (Printf.sprintf "SELECT * FROM t WHERE id = %d" n)).rs in
  Alcotest.(check int) "no double apply inside window" 1 (count 71);
  (* "a" was evicted (FIFO, capacity 2) and there is no durable WAL record:
     the server must refuse rather than silently re-apply *)
  (match Conn.execute_batch ~token:"a" conn (insert_batch 70) with
  | _ -> Alcotest.fail "expected a replay-window miss"
  | exception Conn.Server_error msg ->
      Alcotest.(check bool)
        "miss is named" true
        (String.length msg >= 4
        && String.sub msg 0 11 = "idempotency"));
  Alcotest.(check int) "evicted token not re-applied" 1 (count 70)

let test_idempotency_window_shrink () =
  let _db, _clock, _link, conn = setup () in
  Alcotest.(check int) "default window" 512 (Conn.idempotency_window conn);
  ignore (Conn.execute_batch ~token:"a" conn (insert_batch 80));
  ignore (Conn.execute_batch ~token:"b" conn (insert_batch 81));
  (* shrinking evicts immediately, oldest first *)
  Conn.set_idempotency_window conn 1;
  (match Conn.execute_batch ~token:"a" conn (insert_batch 80) with
  | _ -> Alcotest.fail "expected a replay-window miss"
  | exception Conn.Server_error _ -> ());
  ignore (Conn.execute_batch ~token:"b" conn (insert_batch 81))

(* --- empty batches under a fault plan ------------------------------------- *)

let test_empty_batch_no_fault_consulted () =
  let _db, clock, link, conn = setup () in
  let f = install link (Fault.plan ~drop_p:1.0 ()) in
  let before = Vclock.total clock in
  Alcotest.(check int) "no outcomes" 0 (List.length (Conn.execute_batch conn []));
  Alcotest.(check int) "no trip" 0 (Stats.round_trips (Link.stats link));
  Alcotest.(check int) "fault plan untouched" 0 (Fault.trips f);
  feq "no time" before (Vclock.total clock)

(* --- query store degradation ---------------------------------------------- *)

let store_setup () =
  let _db, clock, link, conn = setup () in
  (clock, link, Qs.create conn)

let test_bisection_isolates_poison () =
  let _clock, _link, store = store_setup () in
  let good =
    List.init 7 (fun i ->
        Qs.register_sql store
          (Printf.sprintf "SELECT * FROM t WHERE id = %d" (i + 1)))
  in
  let poison = Qs.register_sql store "SELECT * FROM missing" in
  (* Demanding any result ships the batch; the server rejects it, and
     bisection pins the failure on the poison query alone. *)
  List.iteri
    (fun i id ->
      Alcotest.(check int)
        (Printf.sprintf "read %d served" (i + 1))
        1
        (Rs.num_rows (Qs.result store id)))
    good;
  (match Qs.result store poison with
  | _ -> Alcotest.fail "poison query should fail"
  | exception Qs.Query_failed (_, _) -> ());
  Alcotest.(check bool) "failure recorded" true
    (Qs.error_of store poison <> None);
  Alcotest.(check int) "one degraded batch" 1 (Qs.degraded_batches store);
  Alcotest.(check int) "one poisoned query" 1 (Qs.poisoned store)

let test_poisoned_query_not_deduped () =
  let _clock, _link, store = store_setup () in
  let poison = Qs.register_sql store "SELECT * FROM missing" in
  (match Qs.result store poison with
  | _ -> Alcotest.fail "poison query should fail"
  | exception Qs.Query_failed (_, _) -> ());
  (* Re-registering the failed SQL must open a fresh pending entry, not hit
     the poisoned one. *)
  let again = Qs.register_sql store "SELECT * FROM missing" in
  Alcotest.(check int) "fresh pending entry" 1 (Qs.pending store);
  Alcotest.(check bool) "new id unblemished" true
    (Qs.error_of store again = None);
  Alcotest.(check bool) "old id still failed" true
    (Qs.error_of store poison <> None)

let test_write_batch_failure_propagates () =
  let _clock, _link, store = store_setup () in
  let read = Qs.register_sql store "SELECT * FROM t WHERE id = 1" in
  (* Registering a write flushes immediately; a bad write fails the whole
     batch (it was rolled back server-side), so the pending read is marked
     failed too. *)
  (match Qs.register_sql store "UPDATE missing SET v = 'x' WHERE id = 1" with
  | _ -> Alcotest.fail "write against a missing table should fail"
  | exception Conn.Server_error _ -> ());
  Alcotest.(check bool) "read marked failed" true
    (Qs.error_of store read <> None);
  match Qs.result store read with
  | _ -> Alcotest.fail "lost read should raise"
  | exception Qs.Query_failed (_, _) -> ()

(* --- page loads under faults remain deterministic -------------------------- *)

let test_seeded_load_deterministic () =
  let app = Sloth_workload.App_sig.medrec in
  let db = Sloth_harness.Runner.prepare app in
  let load () =
    let fault = Fault.create (Fault.uniform ~seed:11 0.1) in
    match
      Sloth_harness.Runner.load_sloth_result ~fault ~db ~rtt_ms:2.0 app
        "patient_dashboard"
    with
    | Ok m -> (m.Sloth_web.Page.total_ms, m.faults, m.retries, m.html)
    | Error e -> Alcotest.fail ("load aborted: " ^ e)
  in
  let t1, f1, r1, h1 = load () in
  let t2, f2, r2, h2 = load () in
  feq "same latency" t1 t2;
  Alcotest.(check int) "same faults" f1 f2;
  Alcotest.(check int) "same retries" r1 r2;
  Alcotest.(check string) "same html" h1 h2

let () =
  Alcotest.run "faults"
    [
      ( "fault plan",
        [
          Alcotest.test_case "seeded determinism" `Quick test_plan_determinism;
          Alcotest.test_case "quiet plan delivers" `Quick
            test_quiet_plan_always_delivers;
          Alcotest.test_case "scripted window" `Quick test_scripted_window;
          Alcotest.test_case "crash counted once per decision" `Quick
            test_crash_counted_once_per_decision;
          Alcotest.test_case "target-scoped window" `Quick
            test_target_scoped_window;
          Alcotest.test_case "targets never perturb the RNG" `Quick
            test_target_rng_neutrality;
        ] );
      ( "link",
        [
          Alcotest.test_case "rate 0 timing identical" `Quick
            test_rate_zero_timing_identical;
          Alcotest.test_case "drop charges timeout" `Quick
            test_drop_charges_timeout;
        ] );
      ( "retries",
        [
          Alcotest.test_case "recovers" `Quick test_retry_recovers;
          Alcotest.test_case "budget exhausted" `Quick test_retries_exhausted;
          Alcotest.test_case "backoff growth" `Quick test_backoff_growth;
          Alcotest.test_case "circuit breaker" `Quick test_circuit_breaker;
        ] );
      ( "write batches",
        [
          Alcotest.test_case "exactly once with token" `Quick
            test_write_exactly_once_with_token;
          Alcotest.test_case "double-apply without token" `Quick
            test_write_double_applies_without_token;
          Alcotest.test_case "bounded window evicts FIFO" `Quick
            test_idempotency_window_eviction;
          Alcotest.test_case "window shrink" `Quick
            test_idempotency_window_shrink;
          Alcotest.test_case "empty batch" `Quick
            test_empty_batch_no_fault_consulted;
        ] );
      ( "query store degradation",
        [
          Alcotest.test_case "bisection isolates poison" `Quick
            test_bisection_isolates_poison;
          Alcotest.test_case "no dedup against failed" `Quick
            test_poisoned_query_not_deduped;
          Alcotest.test_case "write failure propagates" `Quick
            test_write_batch_failure_propagates;
        ] );
      ( "harness",
        [
          Alcotest.test_case "seeded load deterministic" `Quick
            test_seeded_load_deterministic;
        ] );
    ]
