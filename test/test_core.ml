(* Tests for the Sloth runtime: thunks, query store batching, dedup,
   write-flush behaviour, and the two execution strategies. *)

module Db = Sloth_storage.Database
module Rs = Sloth_storage.Result_set
module Value = Sloth_storage.Value
module Vclock = Sloth_net.Vclock
module Stats = Sloth_net.Stats
module Link = Sloth_net.Link
module Conn = Sloth_driver.Connection
module Thunk = Sloth_core.Thunk
module Runtime = Sloth_core.Runtime
module Query_store = Sloth_core.Query_store

let setup () =
  Runtime.set_clock None;
  Runtime.reset ();
  let db = Db.create () in
  ignore
    (Db.exec_sql db
       "CREATE TABLE kv (k INT NOT NULL, v TEXT NOT NULL, PRIMARY KEY (k))");
  for i = 1 to 20 do
    ignore
      (Db.exec_sql db
         (Printf.sprintf "INSERT INTO kv (k, v) VALUES (%d, 'val%d')" i i))
  done;
  let clock = Vclock.create () in
  let link = Link.create ~rtt_ms:0.5 clock in
  let conn = Conn.create db link in
  (db, clock, link, conn)

(* --- thunks ------------------------------------------------------------ *)

let test_thunk_memoization () =
  let runs = ref 0 in
  let t =
    Thunk.create (fun () ->
        incr runs;
        !runs)
  in
  Alcotest.(check bool) "not forced yet" false (Thunk.is_forced t);
  Alcotest.(check int) "first force" 1 (Thunk.force t);
  Alcotest.(check int) "memoized" 1 (Thunk.force t);
  Alcotest.(check int) "ran once" 1 !runs;
  Alcotest.(check bool) "forced" true (Thunk.is_forced t)

let test_thunk_laziness () =
  let ran = ref false in
  let _t = Thunk.create (fun () -> ran := true) in
  Alcotest.(check bool) "not run at creation" false !ran

let test_thunk_exception_memoized () =
  let runs = ref 0 in
  let t =
    Thunk.create (fun () ->
        incr runs;
        failwith "boom")
  in
  (match Thunk.force t with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected failure");
  (match Thunk.force t with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected memoized failure");
  Alcotest.(check int) "ran once" 1 !runs

let test_thunk_combinators () =
  let a = Thunk.literal 2 and b = Thunk.create (fun () -> 3) in
  Alcotest.(check int) "map" 4 (Thunk.force (Thunk.map (( * ) 2) a));
  Alcotest.(check int) "map2" 5 (Thunk.force (Thunk.map2 ( + ) a b));
  Alcotest.(check (pair int int)) "both" (2, 3) (Thunk.force (Thunk.both a b));
  Alcotest.(check (list int)) "all" [ 2; 3 ] (Thunk.force (Thunk.all [ a; b ]));
  Alcotest.(check int) "join" 7
    (Thunk.force (Thunk.join (Thunk.literal (Thunk.literal 7))))

let test_runtime_accounting () =
  Runtime.reset ();
  let clock = Vclock.create () in
  Runtime.set_clock (Some clock);
  Runtime.set_costs ~alloc_ms:0.001 ~force_ms:0.0005;
  let t = Thunk.create (fun () -> 1) in
  let _lit = Thunk.literal 2 in
  ignore (Thunk.force t);
  ignore (Thunk.force t);
  Alcotest.(check int) "one alloc (literal free)" 1 (Runtime.allocs ());
  Alcotest.(check int) "one force (memoized free)" 1 (Runtime.forces ());
  Alcotest.(check (float 1e-9)) "app time charged" 0.0015
    (Vclock.elapsed clock Vclock.App);
  Runtime.set_clock None;
  Runtime.set_costs ~alloc_ms:0.02 ~force_ms:0.008

(* --- query store ------------------------------------------------------- *)

let sel k = Printf.sprintf "SELECT * FROM kv WHERE k = %d" k

let test_batching_single_round_trip () =
  let _db, _clock, link, conn = setup () in
  let store = Query_store.create conn in
  Stats.reset (Link.stats link);
  let q1 = Query_store.register_sql store (sel 1) in
  let q2 = Query_store.register_sql store (sel 2) in
  let q3 = Query_store.register_sql store (sel 3) in
  Alcotest.(check int) "pending 3" 3 (Query_store.pending store);
  Alcotest.(check int) "no round trips yet" 0 (Stats.round_trips (Link.stats link));
  let rs1 = Query_store.result store q1 in
  Alcotest.(check int) "one round trip for the whole batch" 1
    (Stats.round_trips (Link.stats link));
  Alcotest.(check int) "queries in trip" 3 (Stats.queries (Link.stats link));
  Alcotest.(check string) "right row" "val1"
    (Value.to_string (Rs.cell rs1 ~row:0 "v"));
  ignore (Query_store.result store q2);
  ignore (Query_store.result store q3);
  Alcotest.(check int) "still one round trip" 1
    (Stats.round_trips (Link.stats link));
  Alcotest.(check int) "max batch" 3 (Query_store.max_batch_size store)

let test_dedup_within_batch () =
  let _db, _clock, _link, conn = setup () in
  let store = Query_store.create conn in
  let q1 = Query_store.register_sql store (sel 1) in
  let q2 = Query_store.register_sql store (sel 1) in
  Alcotest.(check bool) "same id" true (q1 = q2);
  Alcotest.(check int) "one pending" 1 (Query_store.pending store);
  Alcotest.(check int) "two registrations" 2 (Query_store.registered store)

(* Dedup keys on the normalized form, not the raw text: statements that
   differ in whitespace, operand order, or conjunct order batch as one. *)
let test_dedup_normalized_equivalents () =
  let _db, _clock, _link, conn = setup () in
  let store = Query_store.create conn in
  let q1 =
    Query_store.register_sql store
      "SELECT * FROM kv WHERE k = 1 AND v = 'val1'"
  in
  let q2 =
    Query_store.register_sql store
      "select  *  from kv where v = 'val1' and 1 = k"
  in
  Alcotest.(check bool) "same id" true (q1 = q2);
  Alcotest.(check int) "one pending" 1 (Query_store.pending store);
  Alcotest.(check int) "two registrations" 2 (Query_store.registered store);
  let rs = Query_store.result store q2 in
  Alcotest.(check string) "right row" "val1"
    (Value.to_string (Rs.cell rs ~row:0 "v"));
  let q3 = Query_store.register_sql store "SELECT * FROM kv WHERE k = 2" in
  let q4 = Query_store.register_sql store "SELECT * FROM kv WHERE 2 = k" in
  let q5 = Query_store.register_sql store "SELECT * FROM kv WHERE k = 3" in
  Alcotest.(check bool) "flipped operands share id" true (q3 = q4);
  Alcotest.(check bool) "different literal distinct" false (q3 = q5);
  Alcotest.(check int) "two pending" 2 (Query_store.pending store)

let test_no_dedup_across_batches () =
  let _db, _clock, _link, conn = setup () in
  let store = Query_store.create conn in
  let q1 = Query_store.register_sql store (sel 1) in
  ignore (Query_store.result store q1);
  let q2 = Query_store.register_sql store (sel 1) in
  Alcotest.(check bool) "fresh id after flush" false (q1 = q2);
  Alcotest.(check int) "pending again" 1 (Query_store.pending store)

let test_write_flushes () =
  let db, _clock, link, conn = setup () in
  let store = Query_store.create conn in
  Stats.reset (Link.stats link);
  let q1 = Query_store.register_sql store (sel 1) in
  let w = Query_store.register_sql store "UPDATE kv SET v = 'new' WHERE k = 1" in
  Alcotest.(check int) "single combined round trip" 1
    (Stats.round_trips (Link.stats link));
  Alcotest.(check int) "no pending" 0 (Query_store.pending store);
  Alcotest.(check bool) "read available" true (Query_store.is_available store q1);
  Alcotest.(check int) "write applied" 1 (Query_store.rows_affected store w);
  let rs = Db.query db "SELECT v FROM kv WHERE k = 1" in
  Alcotest.(check string) "value updated" "new"
    (Value.to_string (Rs.cell rs ~row:0 "v"));
  (* Reads were executed before the write in the same batch. *)
  let rs1 = Query_store.result store q1 in
  Alcotest.(check string) "read saw pre-write value" "val1"
    (Value.to_string (Rs.cell rs1 ~row:0 "v"))

let test_flush_empty_is_noop () =
  let _db, _clock, link, conn = setup () in
  let store = Query_store.create conn in
  Stats.reset (Link.stats link);
  Query_store.flush store;
  Alcotest.(check int) "no trip" 0 (Stats.round_trips (Link.stats link));
  Alcotest.(check int) "no batch" 0 (Query_store.batches_sent store)

let test_transaction_boundaries_preserved () =
  let db, _clock, _link, conn = setup () in
  let store = Query_store.create conn in
  ignore (Query_store.register_sql store "BEGIN");
  ignore (Query_store.register_sql store "UPDATE kv SET v = 'tmp' WHERE k = 2");
  ignore (Query_store.register_sql store "ROLLBACK");
  let rs = Db.query db "SELECT v FROM kv WHERE k = 2" in
  Alcotest.(check string) "rolled back" "val2"
    (Value.to_string (Rs.cell rs ~row:0 "v"))

let test_round_trip_savings () =
  (* The headline comparison: N reads = N round trips eagerly, 1 batched. *)
  let _db, _clock, link, conn = setup () in
  Stats.reset (Link.stats link);
  for k = 1 to 10 do
    ignore (Conn.execute_sql conn (sel k))
  done;
  let eager_trips = Stats.round_trips (Link.stats link) in
  Stats.reset (Link.stats link);
  let store = Query_store.create conn in
  let ids = List.init 10 (fun k -> Query_store.register_sql store (sel (k + 1))) in
  List.iter (fun id -> ignore (Query_store.result store id)) ids;
  let lazy_trips = Stats.round_trips (Link.stats link) in
  Alcotest.(check int) "eager: one trip per query" 10 eager_trips;
  Alcotest.(check int) "sloth: one trip" 1 lazy_trips

let test_batch_db_time_parallel () =
  (* Batched reads charge max(cost) + epsilon, not the sum. *)
  let _db, clock, _link, conn = setup () in
  let t0 = Vclock.elapsed clock Vclock.Db in
  ignore (Conn.execute_batch_sql conn (List.init 5 (fun k -> sel (k + 1))));
  let batch_db = Vclock.elapsed clock Vclock.Db -. t0 in
  let t1 = Vclock.elapsed clock Vclock.Db in
  List.iter (fun k -> ignore (Conn.execute_sql conn (sel k))) [ 1; 2; 3; 4; 5 ];
  let seq_db = Vclock.elapsed clock Vclock.Db -. t1 in
  Alcotest.(check bool) "parallel cheaper than sequential" true
    (batch_db < seq_db)

(* --- tracing -------------------------------------------------------------- *)

let test_tracer_events () =
  let _db, _clock, _link, conn = setup () in
  let store = Query_store.create conn in
  let events = ref [] in
  Query_store.set_tracer store (Some (fun e -> events := e :: !events));
  let q1 = Query_store.register_sql store (sel 1) in
  let q1' = Query_store.register_sql store (sel 1) in
  ignore (Query_store.result store q1);
  ignore (Query_store.result store q1');
  ignore (Query_store.register_sql store "UPDATE kv SET v = 'x' WHERE k = 9");
  let kinds =
    List.rev_map
      (function
        | Query_store.Registered _ -> "reg"
        | Query_store.Dedup_hit _ -> "dup"
        | Query_store.Write_through _ -> "write"
        | Query_store.Batch_sent b -> Printf.sprintf "batch%d" (List.length b)
        | Query_store.Result_served _ -> "cached"
        | Query_store.Query_poisoned _ -> "poison")
      !events
  in
  Alcotest.(check (list string)) "event sequence"
    [ "reg"; "dup"; "batch1"; "cached"; "write"; "batch1" ]
    kinds

(* --- flush policies ------------------------------------------------------ *)

let test_at_size_policy () =
  let _db, _clock, link, conn = setup () in
  let store = Query_store.create ~policy:(Query_store.At_size 3) conn in
  Stats.reset (Link.stats link);
  ignore (Query_store.register_sql store (sel 1));
  ignore (Query_store.register_sql store (sel 2));
  Alcotest.(check int) "below threshold: nothing sent" 0
    (Stats.round_trips (Link.stats link));
  ignore (Query_store.register_sql store (sel 3));
  Alcotest.(check int) "threshold reached: batch shipped" 1
    (Stats.round_trips (Link.stats link));
  Alcotest.(check int) "pending drained" 0 (Query_store.pending store);
  Alcotest.(check int) "batch of three" 3 (Query_store.max_batch_size store)

let test_at_size_results_still_correct () =
  let _db, _clock, _link, conn = setup () in
  let store = Query_store.create ~policy:(Query_store.At_size 2) conn in
  let ids = List.init 5 (fun k -> Query_store.register_sql store (sel (k + 1))) in
  List.iteri
    (fun k id ->
      let rs = Query_store.result store id in
      Alcotest.(check string)
        (Printf.sprintf "row %d" (k + 1))
        (Printf.sprintf "val%d" (k + 1))
        (Value.to_string (Rs.cell rs ~row:0 "v")))
    ids

(* --- prefetch strategy --------------------------------------------------- *)

let test_prefetch_hides_latency () =
  (* Three independent queries issued up front; by the time they are
     consumed the round trips have completed, so the network wait is less
     than three full RTTs. *)
  let _db, clock, link, conn = setup () in
  let module X = Sloth_core.Exec.Prefetch (struct
    let conn = conn
  end) in
  let cells =
    List.init 3 (fun k ->
        X.query (Sloth_sql.Parser.parse (sel (k + 1))) (fun rs ->
            Value.to_string (Rs.cell rs ~row:0 "v")))
  in
  (* Simulate work between issue and use. *)
  Sloth_net.Vclock.advance clock Vclock.App 5.0;
  let values = List.map X.get cells in
  Alcotest.(check (list string)) "values" [ "val1"; "val2"; "val3" ] values;
  Alcotest.(check int) "one trip per query" 3
    (Stats.round_trips (Link.stats link));
  Alcotest.(check bool)
    (Printf.sprintf "latency hidden (net %.2f < 1.5)"
       (Vclock.elapsed clock Vclock.Network))
    true
    (Vclock.elapsed clock Vclock.Network < 1.5)

let test_prefetch_pool_bounds_parallelism () =
  (* At WAN latency the client work between issues no longer hides the
     trips: n queries through a pool of k take about ceil(n/k) round trips
     of waiting. *)
  let old = !Conn.async_pool_size in
  Conn.async_pool_size := 2;
  let db, _, _, _ = setup () in
  let clock = Vclock.create () in
  let link = Link.create ~rtt_ms:10.0 clock in
  let conn = Conn.create db link in
  let module X = Sloth_core.Exec.Prefetch (struct
    let conn = conn
  end) in
  let cells =
    List.init 6 (fun k ->
        X.query (Sloth_sql.Parser.parse (sel (k + 1))) (fun rs -> Rs.num_rows rs))
  in
  List.iter (fun c -> ignore (X.get c)) cells;
  Conn.async_pool_size := old;
  (* Three waves of ~10 ms, minus what issue-time computation hid. *)
  Alcotest.(check bool)
    (Printf.sprintf "pool-bound wait (net %.2f >= 20)"
       (Vclock.elapsed clock Vclock.Network))
    true
    (Vclock.elapsed clock Vclock.Network >= 20.0)

let test_prefetch_agrees_with_eager () =
  let _db, _clock, _link, conn = setup () in
  let module E = Sloth_core.Exec.Eager (struct
    let conn = conn
  end) in
  let module P = Sloth_core.Exec.Prefetch (struct
    let conn = conn
  end) in
  let q (module X : Sloth_core.Exec.S) k =
    X.get (X.query (Sloth_sql.Parser.parse (sel k)) (fun rs -> Rs.num_rows rs))
  in
  List.iter
    (fun k ->
      Alcotest.(check int) "same rows" (q (module E) k) (q (module P) k))
    [ 1; 5; 9 ]

(* --- exec strategies --------------------------------------------------- *)

let count_rows rs = Rs.num_rows rs

let run_strategy (module X : Sloth_core.Exec.S) =
  (* A controller-like computation: one query whose result feeds another,
     plus two queries whose results are only consumed at the very end. *)
  let open Sloth_sql.Ast in
  let first = X.query (Sloth_sql.Parser.parse (sel 1)) (fun rs -> rs) in
  let dependent =
    X.map (fun rs -> Value.to_string (Rs.cell rs ~row:0 "v")) first
  in
  let k2 =
    X.query (select_of "kv" ~where:(col "v" =% str (X.get dependent))) count_rows
  in
  let k3 = X.query (Sloth_sql.Parser.parse (sel 3)) count_rows in
  let k4 = X.query (Sloth_sql.Parser.parse (sel 4)) count_rows in
  (X.get k2, X.get k3, X.get k4)

let test_strategies_agree () =
  let _db, _clock, link, conn = setup () in
  let module Eager = Sloth_core.Exec.Eager (struct
    let conn = conn
  end) in
  Stats.reset (Link.stats link);
  let eager_result = run_strategy (module Eager) in
  let eager_trips = Stats.round_trips (Link.stats link) in
  let store = Query_store.create conn in
  let module LazyX = Sloth_core.Exec.Lazy (struct
    let store = store
  end) in
  Stats.reset (Link.stats link);
  let lazy_result = run_strategy (module LazyX) in
  let lazy_trips = Stats.round_trips (Link.stats link) in
  Alcotest.(check (triple int int int))
    "same answer under both strategies" eager_result lazy_result;
  Alcotest.(check int) "eager trips" 4 eager_trips;
  (* Lazy: trip 1 = q1 alone (forced to build q2), trip 2 = q2+q3+q4. *)
  Alcotest.(check int) "lazy trips" 2 lazy_trips

(* --- properties -------------------------------------------------------- *)

let prop_store_result_stable =
  QCheck.Test.make ~count:50 ~name:"store result is stable across re-reads"
    QCheck.(small_list (int_range 1 20))
    (fun ks ->
      let _db, _clock, _link, conn = setup () in
      let store = Query_store.create conn in
      let ids = List.map (fun k -> Query_store.register_sql store (sel k)) ks in
      let once = List.map (fun id -> Query_store.result store id) ids in
      let twice = List.map (fun id -> Query_store.result store id) ids in
      List.for_all2 Rs.equal once twice)

let prop_batched_equals_eager =
  QCheck.Test.make ~count:50 ~name:"batched reads equal eager reads"
    QCheck.(small_list (int_range 1 20))
    (fun ks ->
      let _db, _clock, _link, conn = setup () in
      let eager = List.map (fun k -> Conn.query conn (sel k)) ks in
      let store = Query_store.create conn in
      let ids = List.map (fun k -> Query_store.register_sql store (sel k)) ks in
      let batched = List.map (fun id -> Query_store.result store id) ids in
      List.for_all2 Rs.equal eager batched)

let () =
  Alcotest.run "core"
    [
      ( "thunk",
        [
          Alcotest.test_case "memoization" `Quick test_thunk_memoization;
          Alcotest.test_case "laziness" `Quick test_thunk_laziness;
          Alcotest.test_case "exceptions" `Quick test_thunk_exception_memoized;
          Alcotest.test_case "combinators" `Quick test_thunk_combinators;
          Alcotest.test_case "runtime accounting" `Quick test_runtime_accounting;
        ] );
      ( "query store",
        [
          Alcotest.test_case "batching" `Quick test_batching_single_round_trip;
          Alcotest.test_case "dedup" `Quick test_dedup_within_batch;
          Alcotest.test_case "normalized dedup" `Quick
            test_dedup_normalized_equivalents;
          Alcotest.test_case "no dedup across batches" `Quick
            test_no_dedup_across_batches;
          Alcotest.test_case "write flush" `Quick test_write_flushes;
          Alcotest.test_case "empty flush" `Quick test_flush_empty_is_noop;
          Alcotest.test_case "transaction boundaries" `Quick
            test_transaction_boundaries_preserved;
          Alcotest.test_case "round-trip savings" `Quick test_round_trip_savings;
          Alcotest.test_case "parallel batch cost" `Quick
            test_batch_db_time_parallel;
        ] );
      ( "tracing",
        [ Alcotest.test_case "event sequence" `Quick test_tracer_events ] );
      ( "flush policies",
        [
          Alcotest.test_case "at-size ships eagerly" `Quick test_at_size_policy;
          Alcotest.test_case "at-size results correct" `Quick
            test_at_size_results_still_correct;
        ] );
      ( "prefetch",
        [
          Alcotest.test_case "hides latency" `Quick test_prefetch_hides_latency;
          Alcotest.test_case "pool bounds parallelism" `Quick
            test_prefetch_pool_bounds_parallelism;
          Alcotest.test_case "agrees with eager" `Quick
            test_prefetch_agrees_with_eager;
        ] );
      ( "exec strategies",
        [ Alcotest.test_case "agree" `Quick test_strategies_agree ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_store_result_stable; prop_batched_equals_eager ] );
    ]
