(* Tests for the in-memory relational engine: tables, indexes, executor
   semantics, transactions, and reference-semantics properties. *)

open Sloth_storage
module Ast = Sloth_sql.Ast

let v_int n = Value.Int n
let v_text s = Value.Text s

let users_schema () =
  Schema.create ~name:"users" ~primary_key:"id"
    [
      { Schema.name = "id"; ty = Ast.T_int; nullable = false };
      { Schema.name = "name"; ty = Ast.T_text; nullable = false };
      { Schema.name = "age"; ty = Ast.T_int; nullable = true };
    ]

let make_db () =
  let db = Database.create () in
  Database.create_table db (users_schema ());
  ignore
    (Database.exec_sql db
       "CREATE TABLE orders (id INT NOT NULL, user_id INT NOT NULL, total \
        FLOAT, PRIMARY KEY (id))");
  Database.create_index db ~table:"orders" ~column:"user_id";
  db

let seed_users db n =
  for i = 1 to n do
    ignore
      (Database.exec_sql db
         (Printf.sprintf
            "INSERT INTO users (id, name, age) VALUES (%d, 'user%d', %d)" i i
            (20 + (i mod 50))))
  done

let seed_orders db n =
  for i = 1 to n do
    ignore
      (Database.exec_sql db
         (Printf.sprintf
            "INSERT INTO orders (id, user_id, total) VALUES (%d, %d, %d.5)" i
            ((i mod 10) + 1) (i * 10)))
  done

(* --- Value ------------------------------------------------------------- *)

let test_value_compare () =
  Alcotest.(check bool) "int/float eq" true (Value.equal (v_int 2) (Value.Float 2.0));
  Alcotest.(check int) "ordering" (-1)
    (compare (Value.compare (v_int 1) (v_int 2)) 0);
  Alcotest.(check bool) "null only equals null" false
    (Value.equal Value.Null (v_int 0));
  Alcotest.(check bool) "null < everything" true
    (Value.compare Value.Null (Value.Bool false) < 0)

let test_value_types () =
  Alcotest.(check bool) "int matches float col" true
    (Value.matches_type (v_int 3) Ast.T_float);
  Alcotest.(check bool) "text mismatch int" false
    (Value.matches_type (v_text "x") Ast.T_int);
  Alcotest.(check bool) "null matches all" true
    (Value.matches_type Value.Null Ast.T_bool)

(* --- Vec --------------------------------------------------------------- *)

let test_vec () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Alcotest.(check int) "push index" i (Vec.push v i)
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get" 42 (Vec.get v 42);
  Vec.set v 42 0;
  Alcotest.(check int) "set" 0 (Vec.get v 42);
  Alcotest.(check int) "fold" (4950 - 42) (Vec.fold_left ( + ) 0 v);
  (match Vec.get v 100 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected out of bounds")

(* --- Schema / Table ---------------------------------------------------- *)

let test_schema_validation () =
  let s = users_schema () in
  Alcotest.(check bool) "ok row" true
    (Result.is_ok (Schema.validate_row s [| v_int 1; v_text "a"; Value.Null |]));
  Alcotest.(check bool) "arity" true
    (Result.is_error (Schema.validate_row s [| v_int 1 |]));
  Alcotest.(check bool) "not null" true
    (Result.is_error
       (Schema.validate_row s [| v_int 1; Value.Null; Value.Null |]));
  Alcotest.(check bool) "type" true
    (Result.is_error
       (Schema.validate_row s [| v_text "x"; v_text "a"; Value.Null |]))

let test_table_crud () =
  let t = Table.create (users_schema ()) in
  let rid = Table.insert t [| v_int 1; v_text "alice"; v_int 30 |] in
  Alcotest.(check int) "count" 1 (Table.row_count t);
  Alcotest.(check bool) "pk lookup" true (Table.lookup_pk t (v_int 1) = Some rid);
  (* duplicate pk *)
  (match Table.insert t [| v_int 1; v_text "bob"; Value.Null |] with
  | exception Table.Constraint_violation _ -> ()
  | _ -> Alcotest.fail "expected duplicate pk violation");
  let old = Table.update t rid [| v_int 2; v_text "alice"; v_int 31 |] in
  Alcotest.(check bool) "old row" true (Value.equal old.(0) (v_int 1));
  Alcotest.(check bool) "old pk gone" true (Table.lookup_pk t (v_int 1) = None);
  Alcotest.(check bool) "new pk" true (Table.lookup_pk t (v_int 2) = Some rid);
  let deleted = Table.delete t rid in
  Alcotest.(check bool) "deleted" true (deleted <> None);
  Alcotest.(check int) "empty" 0 (Table.row_count t);
  Alcotest.(check bool) "double delete" true (Table.delete t rid = None);
  Table.restore t rid (Option.get deleted);
  Alcotest.(check int) "restored" 1 (Table.row_count t);
  Alcotest.(check bool) "pk restored" true (Table.lookup_pk t (v_int 2) = Some rid)

let test_secondary_index () =
  let t = Table.create (users_schema ()) in
  for i = 1 to 10 do
    ignore (Table.insert t [| v_int i; v_text "n"; v_int (i mod 3) |])
  done;
  Table.create_index t "age";
  Alcotest.(check bool) "has index" true (Table.has_index t "age");
  let rids = Option.get (Table.lookup_indexed t "age" (v_int 1)) in
  Alcotest.(check int) "matches" 4 (List.length rids);
  (* maintenance across update *)
  let rid = List.hd rids in
  let row = Option.get (Table.get t rid) in
  let row' = Array.copy row in
  row'.(2) <- v_int 2;
  ignore (Table.update t rid row');
  let rids1 = Option.get (Table.lookup_indexed t "age" (v_int 1)) in
  Alcotest.(check int) "after update" 3 (List.length rids1);
  Alcotest.(check bool) "no index" true
    (Table.lookup_indexed t "name" (v_text "n") = None)

let test_ordered_index () =
  let t = Table.create (users_schema ()) in
  for i = 1 to 20 do
    ignore (Table.insert t [| v_int i; v_text "n"; v_int (100 - i) |])
  done;
  Table.create_ordered_index t "age";
  Alcotest.(check bool) "has ordered index" true (Table.has_ordered_index t "age");
  let rids = Option.get (Table.lookup_range t "age" ~lo:(v_int 85, true) ~hi:(v_int 90, false) ()) in
  (* ages 85..89 = rows with i in 11..15 -> rids 10..14, key order desc by i *)
  Alcotest.(check int) "5 in range" 5 (List.length rids);
  (* maintenance across update and delete *)
  let rid = List.hd rids in
  let row = Array.copy (Option.get (Table.get t rid)) in
  row.(2) <- v_int 5;
  ignore (Table.update t rid row);
  let rids' = Option.get (Table.lookup_range t "age" ~lo:(v_int 85, true) ~hi:(v_int 90, false) ()) in
  Alcotest.(check int) "4 after update" 4 (List.length rids');
  ignore (Table.delete t (List.hd rids'));
  let rids'' = Option.get (Table.lookup_range t "age" ~lo:(v_int 85, true) ~hi:(v_int 90, false) ()) in
  Alcotest.(check int) "3 after delete" 3 (List.length rids'');
  Alcotest.(check bool) "unindexed column" true
    (Table.lookup_range t "name" () = None);
  (* open-ended bounds *)
  let all = Option.get (Table.lookup_range t "age" ()) in
  Alcotest.(check int) "full range" 19 (List.length all)

let test_range_query_uses_index () =
  let db = make_db () in
  seed_users db 200;
  Database.create_ordered_index db ~table:"users" ~column:"age";
  (* Index path and scan path must agree; rows_scanned must shrink. *)
  let with_index =
    Database.exec_sql db "SELECT id FROM users WHERE age BETWEEN 25 AND 27 ORDER BY id"
  in
  let db2 = make_db () in
  seed_users db2 200;
  let without =
    Database.exec_sql db2 "SELECT id FROM users WHERE age BETWEEN 25 AND 27 ORDER BY id"
  in
  Alcotest.(check bool) "same rows" true
    (Result_set.equal with_index.rs without.rs);
  Alcotest.(check bool)
    (Printf.sprintf "cheaper with index (%.3f < %.3f)" with_index.cost_ms
       without.cost_ms)
    true
    (with_index.cost_ms < without.cost_ms)

(* --- Executor ---------------------------------------------------------- *)

let test_select_where_index () =
  let db = make_db () in
  seed_users db 100;
  let rs = Database.query db "SELECT * FROM users WHERE id = 7" in
  Alcotest.(check int) "one row" 1 (Result_set.num_rows rs);
  Alcotest.(check string) "name" "user7"
    (Value.to_string (Result_set.cell rs ~row:0 "name"))

let test_select_scan () =
  let db = make_db () in
  seed_users db 100;
  let rs = Database.query db "SELECT id FROM users WHERE age = 25" in
  Alcotest.(check int) "rows" 2 (Result_set.num_rows rs)

let test_select_projection_alias () =
  let db = make_db () in
  seed_users db 3;
  let rs = Database.query db "SELECT id AS ident, age + 1 AS older FROM users" in
  Alcotest.(check (list string)) "cols" [ "ident"; "older" ] (Result_set.columns rs);
  Alcotest.(check string) "older" "22"
    (Value.to_string (Result_set.cell rs ~row:0 "older"))

let test_order_by_limit () =
  let db = make_db () in
  seed_users db 10;
  let rs = Database.query db "SELECT id FROM users ORDER BY id DESC LIMIT 3" in
  let ids =
    List.map (fun r -> Value.to_string r.(0)) (Result_set.rows rs)
  in
  Alcotest.(check (list string)) "desc ids" [ "10"; "9"; "8" ] ids

let test_join_indexed () =
  let db = make_db () in
  seed_users db 10;
  seed_orders db 30;
  let rs =
    Database.query db
      "SELECT u.name, o.total FROM users u JOIN orders o ON o.user_id = u.id \
       WHERE u.id = 1"
  in
  Alcotest.(check int) "orders of user 1" 3 (Result_set.num_rows rs);
  Alcotest.(check (list string)) "qualified columns" [ "name"; "total" ]
    (Result_set.columns rs)

let test_join_star_qualified () =
  let db = make_db () in
  seed_users db 2;
  seed_orders db 4;
  let rs =
    Database.query db
      "SELECT * FROM users u JOIN orders o ON o.user_id = u.id"
  in
  Alcotest.(check bool) "has u.id col" true
    (List.mem "u.id" (Result_set.columns rs));
  Alcotest.(check bool) "has o.total col" true
    (List.mem "o.total" (Result_set.columns rs))

let test_aggregates_exec () =
  let db = make_db () in
  seed_users db 10;
  let rs = Database.query db "SELECT COUNT(*) FROM users" in
  Alcotest.(check bool) "count 10" true
    (Result_set.scalar rs = Some (v_int 10));
  let rs = Database.query db "SELECT MIN(age), MAX(age), AVG(age) FROM users" in
  Alcotest.(check string) "min" "21"
    (Value.to_string (Result_set.cell rs ~row:0 "MIN(age)"));
  let rs = Database.query db "SELECT COUNT(*) FROM users WHERE id > 100" in
  Alcotest.(check bool) "empty count is 0" true
    (Result_set.scalar rs = Some (v_int 0))

let test_group_by () =
  let db = make_db () in
  seed_orders db 20;
  let rs =
    Database.query db
      "SELECT user_id, COUNT(*) AS n FROM orders GROUP BY user_id ORDER BY \
       user_id"
  in
  Alcotest.(check int) "10 groups" 10 (Result_set.num_rows rs);
  Alcotest.(check string) "each has 2" "2"
    (Value.to_string (Result_set.cell rs ~row:0 "n"))

let test_update_delete () =
  let db = make_db () in
  seed_users db 5;
  let o = Database.exec_sql db "UPDATE users SET age = 99 WHERE id <= 2" in
  Alcotest.(check int) "2 updated" 2 o.rows_affected;
  let rs = Database.query db "SELECT COUNT(*) FROM users WHERE age = 99" in
  Alcotest.(check bool) "updated visible" true
    (Result_set.scalar rs = Some (v_int 2));
  let o = Database.exec_sql db "DELETE FROM users WHERE age = 99" in
  Alcotest.(check int) "2 deleted" 2 o.rows_affected;
  Alcotest.(check int) "3 remain" 3 (Database.row_count db "users")

let test_insert_defaults_null () =
  let db = make_db () in
  ignore (Database.exec_sql db "INSERT INTO users (id, name) VALUES (1, 'a')");
  let rs = Database.query db "SELECT age FROM users WHERE id = 1" in
  Alcotest.(check bool) "age null" true
    (Result_set.cell rs ~row:0 "age" = Value.Null)

let test_null_semantics () =
  let db = make_db () in
  ignore (Database.exec_sql db "INSERT INTO users (id, name) VALUES (1, 'a')");
  ignore
    (Database.exec_sql db "INSERT INTO users (id, name, age) VALUES (2, 'b', 30)");
  let count sql =
    match Result_set.scalar (Database.query db sql) with
    | Some (Value.Int n) -> n
    | _ -> Alcotest.fail "expected scalar"
  in
  Alcotest.(check int) "null = null is false" 0
    (count "SELECT COUNT(*) FROM users WHERE age = NULL");
  Alcotest.(check int) "is null" 1
    (count "SELECT COUNT(*) FROM users WHERE age IS NULL");
  Alcotest.(check int) "is not null" 1
    (count "SELECT COUNT(*) FROM users WHERE age IS NOT NULL");
  Alcotest.(check int) "comparison with null row excluded" 1
    (count "SELECT COUNT(*) FROM users WHERE age > 0")

let test_like_exec () =
  let db = make_db () in
  seed_users db 12;
  let rs = Database.query db "SELECT id FROM users WHERE name LIKE 'user1%'" in
  (* user1, user10, user11, user12 *)
  Alcotest.(check int) "like matches" 4 (Result_set.num_rows rs)

let test_distinct () =
  let db = make_db () in
  seed_users db 10;
  let rs = Database.query db "SELECT DISTINCT age FROM users ORDER BY age" in
  Alcotest.(check int) "distinct ages" 10 (Result_set.num_rows rs);
  ignore (Database.exec_sql db "UPDATE users SET age = 30");
  let rs = Database.query db "SELECT DISTINCT age FROM users" in
  Alcotest.(check int) "one distinct age" 1 (Result_set.num_rows rs)

let test_having () =
  let db = make_db () in
  seed_orders db 20;
  let rs =
    Database.query db
      "SELECT user_id, COUNT(*) AS n FROM orders GROUP BY user_id HAVING        COUNT(*) > 1 ORDER BY user_id"
  in
  Alcotest.(check int) "all groups have 2" 10 (Result_set.num_rows rs);
  let rs =
    Database.query db
      "SELECT user_id, COUNT(*) AS n FROM orders GROUP BY user_id HAVING        COUNT(*) > 2"
  in
  Alcotest.(check int) "no group has 3" 0 (Result_set.num_rows rs)

let test_offset () =
  let db = make_db () in
  seed_users db 10;
  let rs = Database.query db "SELECT id FROM users ORDER BY id LIMIT 3 OFFSET 4" in
  let ids = List.map (fun r -> Value.to_string r.(0)) (Result_set.rows rs) in
  Alcotest.(check (list string)) "window" [ "5"; "6"; "7" ] ids;
  let rs = Database.query db "SELECT id FROM users ORDER BY id OFFSET 8" in
  Alcotest.(check int) "tail" 2 (Result_set.num_rows rs)

let test_between () =
  let db = make_db () in
  seed_users db 30;
  let rs =
    Database.query db "SELECT id FROM users WHERE age BETWEEN 25 AND 27"
  in
  let by_cmp =
    Database.query db "SELECT id FROM users WHERE age >= 25 AND age <= 27"
  in
  Alcotest.(check bool) "between = explicit range" true
    (Result_set.equal rs by_cmp);
  Alcotest.(check bool) "non-empty" true (Result_set.num_rows rs > 0)

let test_in_subquery () =
  let db = make_db () in
  seed_users db 20;
  seed_orders db 30;
  (* Users having at least one order with a big total. *)
  let rs =
    Database.query db
      "SELECT id FROM users WHERE id IN (SELECT user_id FROM orders WHERE        total > 250) ORDER BY id"
  in
  let reference =
    Database.query db
      "SELECT DISTINCT u.id FROM users u JOIN orders o ON o.user_id = u.id        WHERE o.total > 250 ORDER BY u.id"
  in
  Alcotest.(check bool) "subquery = join+distinct" true
    (Result_set.equal rs reference);
  Alcotest.(check bool) "non-trivial" true (Result_set.num_rows rs > 0);
  (* NOT IN works through the evaluator too. *)
  let nin =
    Database.query db
      "SELECT COUNT(*) AS n FROM users WHERE NOT id IN (SELECT user_id FROM        orders)"
  in
  let total = Result_set.num_rows rs in
  ignore total;
  (match Result_set.scalar nin with
  | Some (Value.Int n) -> Alcotest.(check int) "complement" 10 n
  | _ -> Alcotest.fail "expected scalar");
  (* A multi-column subquery is rejected. *)
  match
    Database.exec_sql db
      "SELECT id FROM users WHERE id IN (SELECT id, name FROM users)"
  with
  | exception Database.Sql_error _ -> ()
  | _ -> Alcotest.fail "expected single-column error"

let test_in_subquery_roundtrip () =
  let sql =
    "SELECT id FROM users WHERE (id IN (SELECT user_id FROM orders WHERE      (total > 250)))"
  in
  let ast = Sloth_sql.Parser.parse sql in
  let printed = Sloth_sql.Printer.to_string ast in
  Alcotest.(check bool) "reparses to same ast" true
    (Sloth_sql.Parser.parse printed = ast)

let test_sql_errors () =
  let db = make_db () in
  let expect_err sql =
    match Database.exec_sql db sql with
    | exception Database.Sql_error _ -> ()
    | _ -> Alcotest.failf "expected error for %s" sql
  in
  expect_err "SELECT * FROM missing";
  expect_err "SELECT nope FROM users";
  expect_err "INSERT INTO users (id, wrong) VALUES (1, 2)";
  expect_err "INSERT INTO users (id) VALUES (1, 2)";
  expect_err "CREATE TABLE users (id INT)";
  (* Division by zero only surfaces when a row is actually evaluated. *)
  seed_users db 1;
  expect_err "SELECT 1 / 0 FROM users"

(* --- transactions ------------------------------------------------------ *)

let test_txn_commit () =
  let db = make_db () in
  ignore (Database.exec_sql db "BEGIN");
  Alcotest.(check bool) "in txn" true (Database.in_txn db);
  ignore (Database.exec_sql db "INSERT INTO users (id, name) VALUES (1, 'a')");
  ignore (Database.exec_sql db "COMMIT");
  Alcotest.(check bool) "out of txn" false (Database.in_txn db);
  Alcotest.(check int) "row committed" 1 (Database.row_count db "users")

let test_txn_rollback () =
  let db = make_db () in
  seed_users db 3;
  ignore (Database.exec_sql db "BEGIN");
  ignore (Database.exec_sql db "INSERT INTO users (id, name) VALUES (10, 'x')");
  ignore (Database.exec_sql db "UPDATE users SET age = 1 WHERE id = 1");
  ignore (Database.exec_sql db "DELETE FROM users WHERE id = 2");
  Alcotest.(check int) "mid-txn state" 3 (Database.row_count db "users");
  ignore (Database.exec_sql db "ROLLBACK");
  Alcotest.(check int) "count restored" 3 (Database.row_count db "users");
  let rs = Database.query db "SELECT age FROM users WHERE id = 1" in
  Alcotest.(check string) "update undone" "21"
    (Value.to_string (Result_set.cell rs ~row:0 "age"));
  let rs = Database.query db "SELECT COUNT(*) FROM users WHERE id = 2" in
  Alcotest.(check bool) "delete undone" true
    (Result_set.scalar rs = Some (v_int 1));
  let rs = Database.query db "SELECT COUNT(*) FROM users WHERE id = 10" in
  Alcotest.(check bool) "insert undone" true
    (Result_set.scalar rs = Some (v_int 0))

let test_nested_txn_rejected () =
  let db = make_db () in
  ignore (Database.exec_sql db "BEGIN");
  match Database.exec_sql db "BEGIN" with
  | exception Database.Sql_error _ -> ()
  | _ -> Alcotest.fail "expected nested txn error"

let test_atomically_commits () =
  let db = make_db () in
  Database.atomically db (fun () ->
      ignore
        (Database.exec_sql db "INSERT INTO users (id, name) VALUES (1, 'a')");
      ignore
        (Database.exec_sql db "INSERT INTO users (id, name) VALUES (2, 'b')"));
  Alcotest.(check bool) "implicit txn closed" false (Database.in_txn db);
  Alcotest.(check int) "both rows kept" 2 (Database.row_count db "users")

let test_atomically_rolls_back_batch () =
  let db = make_db () in
  seed_users db 3;
  (* A mid-batch failure must undo the insert, update and delete that the
     batch already applied — in the right order. *)
  (match
     Database.atomically db (fun () ->
         ignore
           (Database.exec_sql db
              "INSERT INTO users (id, name) VALUES (10, 'x')");
         ignore (Database.exec_sql db "UPDATE users SET age = 1 WHERE id = 1");
         ignore (Database.exec_sql db "DELETE FROM users WHERE id = 2");
         ignore (Database.exec_sql db "SELECT * FROM missing"))
   with
  | () -> Alcotest.fail "expected the poison statement to fail"
  | exception Database.Sql_error _ -> ());
  Alcotest.(check bool) "implicit txn closed" false (Database.in_txn db);
  Alcotest.(check int) "count restored" 3 (Database.row_count db "users");
  let rs = Database.query db "SELECT age FROM users WHERE id = 1" in
  Alcotest.(check string) "update undone" "21"
    (Value.to_string (Result_set.cell rs ~row:0 "age"));
  let rs = Database.query db "SELECT COUNT(*) FROM users WHERE id = 2" in
  Alcotest.(check bool) "delete undone" true
    (Result_set.scalar rs = Some (v_int 1));
  let rs = Database.query db "SELECT COUNT(*) FROM users WHERE id = 10" in
  Alcotest.(check bool) "insert undone" true
    (Result_set.scalar rs = Some (v_int 0))

let test_atomically_transparent_inside_client_txn () =
  let db = make_db () in
  ignore (Database.exec_sql db "BEGIN");
  (match
     Database.atomically db (fun () ->
         ignore
           (Database.exec_sql db "INSERT INTO users (id, name) VALUES (1, 'a')");
         raise Exit)
   with
  | () -> Alcotest.fail "expected Exit"
  | exception Exit -> ());
  (* Inside a client transaction [atomically] defers entirely to it: the
     failure above must not undo anything — only the client may decide. *)
  Alcotest.(check bool) "client txn still open" true (Database.in_txn db);
  Alcotest.(check int) "insert still visible" 1 (Database.row_count db "users");
  ignore (Database.exec_sql db "ROLLBACK");
  Alcotest.(check int) "client rollback undoes it" 0
    (Database.row_count db "users")

(* --- properties -------------------------------------------------------- *)

(* A naive reference implementation of single-table SELECT semantics:
   filter with the expression evaluator over all rows, sort, offset/limit,
   project named columns.  The executor (with its index paths and
   plan-time shortcuts) must agree with it on randomized queries. *)
let reference_select db ~table ~where ~order_col ~desc ~offset ~limit ~cols =
  let tbl = Option.get (Database.table db table) in
  let schema = Table.schema tbl in
  let rows = ref [] in
  Table.iter (fun _ row -> rows := row :: !rows) tbl;
  let rows = List.rev !rows in
  let env row = [ (table, schema, row) ] in
  let rows =
    match where with
    | None -> rows
    | Some w ->
        List.filter (fun row -> Value.is_truthy (Eval.eval (env row) w)) rows
  in
  let rows =
    match order_col with
    | None -> rows
    | Some c ->
        let i = Schema.column_index_exn schema c in
        let cmp a b =
          let r = Value.compare a.(i) b.(i) in
          if desc then -r else r
        in
        List.stable_sort cmp rows
  in
  let rows = List.filteri (fun i _ -> i >= offset) rows in
  let rows = List.filteri (fun i _ -> i < limit) rows in
  List.map
    (fun row ->
      List.map (fun c -> row.(Schema.column_index_exn schema c)) cols)
    rows

let gen_where =
  QCheck.Gen.(
    let leaf =
      oneof
        [
          map (fun n -> Ast.Binop (Ast.Eq, Ast.Col (None, "id"), Ast.Lit (Ast.L_int n)))
            (int_range 1 40);
          map (fun n -> Ast.Binop (Ast.Gt, Ast.Col (None, "age"), Ast.Lit (Ast.L_int n)))
            (int_range 19 70);
          map (fun n -> Ast.Binop (Ast.Le, Ast.Col (None, "age"), Ast.Lit (Ast.L_int n)))
            (int_range 19 70);
          map
            (fun (lo, hi) ->
              Ast.Between
                { e = Ast.Col (None, "age");
                  lo = Ast.Lit (Ast.L_int lo);
                  hi = Ast.Lit (Ast.L_int (lo + hi)) })
            (pair (int_range 19 60) (int_range 0 20));
          map (fun s -> Ast.Like (Ast.Col (None, "name"), s))
            (oneofl [ "user%"; "%1%"; "user1_"; "%"; "nothing" ]);
          return (Ast.Is_null { e = Ast.Col (None, "age"); negated = false });
        ]
    in
    sized @@ fix (fun self n ->
        if n <= 0 then leaf
        else
          oneof
            [
              leaf;
              map2 (fun a b -> Ast.Binop (Ast.And, a, b)) (self (n / 2)) (self (n / 2));
              map2 (fun a b -> Ast.Binop (Ast.Or, a, b)) (self (n / 2)) (self (n / 2));
              map (fun a -> Ast.Unop (Ast.Not, a)) (self (n / 2));
            ]))

let prop_executor_vs_reference =
  let gen =
    QCheck.Gen.(
      let* where = opt gen_where in
      let* order_col = opt (oneofl [ "id"; "age"; "name" ]) in
      let* desc = bool in
      let* offset = int_range 0 10 in
      let* limit = int_range 1 50 in
      return (where, order_col, desc, offset, limit))
  in
  QCheck.Test.make ~count:300 ~name:"executor agrees with reference semantics"
    (QCheck.make gen ~print:(fun (w, o, d, off, l) ->
         Printf.sprintf "where=%s order=%s desc=%b offset=%d limit=%d"
           (match w with None -> "-" | Some w -> Sloth_sql.Printer.expr_to_string w)
           (Option.value o ~default:"-") d off l))
    (fun (where, order_col, desc, offset, limit) ->
      let db = make_db () in
      seed_users db 40;
      (* The ordered index routes range predicates through the index path,
         which must agree with the reference scan. *)
      Database.create_ordered_index db ~table:"users" ~column:"age";
      (* Give some NULL ages so IS NULL is exercised. *)
      ignore (Database.exec_sql db "UPDATE users SET age = NULL WHERE id = 3");
      ignore (Database.exec_sql db "UPDATE users SET age = NULL WHERE id = 17");
      let order_by =
        match order_col with
        | None -> []
        | Some c -> [ { Ast.o_expr = Ast.Col (None, c); o_asc = not desc } ]
      in
      let stmt =
        Ast.Select
          {
            sel_distinct = false;
            sel_items =
              [
                Ast.Sel_expr (Ast.Col (None, "id"), None);
                Ast.Sel_expr (Ast.Col (None, "age"), None);
              ];
            sel_from = Some ("users", None);
            sel_joins = [];
            sel_where = where;
            sel_group_by = [];
            sel_having = None;
            sel_order_by = order_by;
            sel_limit = Some limit;
            sel_offset = Some offset;
          }
      in
      let actual =
        List.map Array.to_list (Result_set.rows (Database.exec db stmt).rs)
      in
      let expected =
        reference_select db ~table:"users" ~where ~order_col ~desc ~offset
          ~limit ~cols:[ "id"; "age" ]
      in
      (* The executor's sort must be stable like the reference's (both keep
         rid order for equal keys), so exact equality is required. *)
      actual = expected)


(* Index-equipped point queries must agree with a full scan. *)
let prop_index_vs_scan =
  QCheck.Test.make ~count:100 ~name:"index lookup agrees with scan"
    QCheck.(pair (small_list (int_bound 20)) (int_bound 20))
    (fun (ages, probe) ->
      let t = Table.create (users_schema ()) in
      List.iteri
        (fun i age ->
          ignore (Table.insert t [| v_int i; v_text "n"; v_int age |]))
        ages;
      Table.create_index t "age";
      let indexed =
        Option.get (Table.lookup_indexed t "age" (v_int probe))
      in
      let scanned = ref [] in
      Table.iter
        (fun rid row ->
          if Value.equal row.(2) (v_int probe) then scanned := rid :: !scanned)
        t;
      indexed = List.rev !scanned)

(* Transactions are atomic: any sequence of writes inside BEGIN..ROLLBACK
   leaves the table contents unchanged. *)
let prop_rollback_atomic =
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 20)
        (oneof
           [
             map (fun id -> `Insert (abs id mod 100)) int;
             map (fun id -> `Update (abs id mod 100)) int;
             map (fun id -> `Delete (abs id mod 100)) int;
           ]))
  in
  QCheck.Test.make ~count:100 ~name:"rollback restores exact state"
    (QCheck.make gen)
    (fun ops ->
      let db = make_db () in
      seed_users db 20;
      let dump () =
        Result_set.rows
          (Database.query db "SELECT * FROM users ORDER BY id")
        |> List.map (fun r -> Array.map Value.to_string r)
      in
      let before = dump () in
      ignore (Database.exec_sql db "BEGIN");
      List.iter
        (fun op ->
          try
            match op with
            | `Insert id ->
                ignore
                  (Database.exec_sql db
                     (Printf.sprintf
                        "INSERT INTO users (id, name) VALUES (%d, 'x')" (100 + id)))
            | `Update id ->
                ignore
                  (Database.exec_sql db
                     (Printf.sprintf "UPDATE users SET age = 7 WHERE id = %d" id))
            | `Delete id ->
                ignore
                  (Database.exec_sql db
                     (Printf.sprintf "DELETE FROM users WHERE id = %d" id))
          with Database.Sql_error _ -> ())
        ops;
      ignore (Database.exec_sql db "ROLLBACK");
      dump () = before)

(* Stronger rollback property: the heap must be restored byte-identically —
   same fingerprint (rids, heap shape, every row), same live count, and the
   secondary index must answer exactly as before. *)
let prop_rollback_fingerprint =
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 30)
        (oneof
           [
             map2 (fun id age -> `Insert (abs id mod 60, abs age mod 10)) int int;
             map2 (fun id age -> `Update (abs id mod 60, abs age mod 10)) int int;
             map (fun id -> `Delete (abs id mod 60)) int;
           ]))
  in
  QCheck.Test.make ~count:100 ~name:"rollback restores byte-identical heap"
    (QCheck.make gen)
    (fun ops ->
      let db = make_db () in
      seed_users db 20;
      Database.create_index db ~table:"users" ~column:"age";
      let tbl = Option.get (Database.table db "users") in
      let index_view () =
        List.map
          (fun age -> Table.lookup_indexed tbl "age" (v_int age))
          [ 0; 3; 7; 9 ]
      in
      let fp_before = Database.fingerprint db in
      let count_before = Database.row_count db "users" in
      let idx_before = index_view () in
      ignore (Database.exec_sql db "BEGIN");
      List.iter
        (fun op ->
          try
            match op with
            | `Insert (id, age) ->
                ignore
                  (Database.exec_sql db
                     (Printf.sprintf
                        "INSERT INTO users (id, name, age) VALUES (%d, 'x', \
                         %d)"
                        (100 + id) age))
            | `Update (id, age) ->
                ignore
                  (Database.exec_sql db
                     (Printf.sprintf "UPDATE users SET age = %d WHERE id = %d"
                        age id))
            | `Delete id ->
                ignore
                  (Database.exec_sql db
                     (Printf.sprintf "DELETE FROM users WHERE id = %d" id))
          with Database.Sql_error _ -> ())
        ops;
      ignore (Database.exec_sql db "ROLLBACK");
      Database.fingerprint db = fp_before
      && Database.row_count db "users" = count_before
      && index_view () = idx_before)

let () =
  Alcotest.run "storage"
    [
      ( "value",
        [
          Alcotest.test_case "compare" `Quick test_value_compare;
          Alcotest.test_case "types" `Quick test_value_types;
        ] );
      ("vec", [ Alcotest.test_case "basics" `Quick test_vec ]);
      ( "table",
        [
          Alcotest.test_case "schema validation" `Quick test_schema_validation;
          Alcotest.test_case "crud" `Quick test_table_crud;
          Alcotest.test_case "secondary index" `Quick test_secondary_index;
          Alcotest.test_case "ordered index" `Quick test_ordered_index;
          Alcotest.test_case "range query via index" `Quick
            test_range_query_uses_index;
        ] );
      ( "executor",
        [
          Alcotest.test_case "select via pk" `Quick test_select_where_index;
          Alcotest.test_case "select scan" `Quick test_select_scan;
          Alcotest.test_case "projection" `Quick test_select_projection_alias;
          Alcotest.test_case "order by / limit" `Quick test_order_by_limit;
          Alcotest.test_case "indexed join" `Quick test_join_indexed;
          Alcotest.test_case "join star" `Quick test_join_star_qualified;
          Alcotest.test_case "aggregates" `Quick test_aggregates_exec;
          Alcotest.test_case "group by" `Quick test_group_by;
          Alcotest.test_case "update/delete" `Quick test_update_delete;
          Alcotest.test_case "insert defaults" `Quick test_insert_defaults_null;
          Alcotest.test_case "null semantics" `Quick test_null_semantics;
          Alcotest.test_case "like" `Quick test_like_exec;
          Alcotest.test_case "distinct" `Quick test_distinct;
          Alcotest.test_case "having" `Quick test_having;
          Alcotest.test_case "offset" `Quick test_offset;
          Alcotest.test_case "between" `Quick test_between;
          Alcotest.test_case "in subquery" `Quick test_in_subquery;
          Alcotest.test_case "in subquery roundtrip" `Quick
            test_in_subquery_roundtrip;
          Alcotest.test_case "errors" `Quick test_sql_errors;
        ] );
      ( "transactions",
        [
          Alcotest.test_case "commit" `Quick test_txn_commit;
          Alcotest.test_case "rollback" `Quick test_txn_rollback;
          Alcotest.test_case "nested rejected" `Quick test_nested_txn_rejected;
          Alcotest.test_case "atomically commits" `Quick test_atomically_commits;
          Alcotest.test_case "atomically rolls back" `Quick
            test_atomically_rolls_back_batch;
          Alcotest.test_case "atomically in client txn" `Quick
            test_atomically_transparent_inside_client_txn;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_index_vs_scan; prop_rollback_atomic;
            prop_rollback_fingerprint; prop_executor_vs_reference ] );
    ]
