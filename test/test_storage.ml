(* Tests for the in-memory relational engine: tables, indexes, executor
   semantics, transactions, and reference-semantics properties. *)

open Sloth_storage
module Ast = Sloth_sql.Ast

let v_int n = Value.Int n
let v_text s = Value.Text s

let users_schema () =
  Schema.create ~name:"users" ~primary_key:"id"
    [
      { Schema.name = "id"; ty = Ast.T_int; nullable = false };
      { Schema.name = "name"; ty = Ast.T_text; nullable = false };
      { Schema.name = "age"; ty = Ast.T_int; nullable = true };
    ]

let make_db () =
  let db = Database.create () in
  Database.create_table db (users_schema ());
  ignore
    (Database.exec_sql db
       "CREATE TABLE orders (id INT NOT NULL, user_id INT NOT NULL, total \
        FLOAT, PRIMARY KEY (id))");
  Database.create_index db ~table:"orders" ~column:"user_id";
  db

let seed_users db n =
  for i = 1 to n do
    ignore
      (Database.exec_sql db
         (Printf.sprintf
            "INSERT INTO users (id, name, age) VALUES (%d, 'user%d', %d)" i i
            (20 + (i mod 50))))
  done

let seed_orders db n =
  for i = 1 to n do
    ignore
      (Database.exec_sql db
         (Printf.sprintf
            "INSERT INTO orders (id, user_id, total) VALUES (%d, %d, %d.5)" i
            ((i mod 10) + 1) (i * 10)))
  done

(* --- Value ------------------------------------------------------------- *)

let test_value_compare () =
  Alcotest.(check bool) "int/float eq" true (Value.equal (v_int 2) (Value.Float 2.0));
  Alcotest.(check int) "ordering" (-1)
    (compare (Value.compare (v_int 1) (v_int 2)) 0);
  Alcotest.(check bool) "null only equals null" false
    (Value.equal Value.Null (v_int 0));
  Alcotest.(check bool) "null < everything" true
    (Value.compare Value.Null (Value.Bool false) < 0)

let test_value_types () =
  Alcotest.(check bool) "int matches float col" true
    (Value.matches_type (v_int 3) Ast.T_float);
  Alcotest.(check bool) "text mismatch int" false
    (Value.matches_type (v_text "x") Ast.T_int);
  Alcotest.(check bool) "null matches all" true
    (Value.matches_type Value.Null Ast.T_bool)

(* --- Vec --------------------------------------------------------------- *)

let test_vec () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Alcotest.(check int) "push index" i (Vec.push v i)
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get" 42 (Vec.get v 42);
  Vec.set v 42 0;
  Alcotest.(check int) "set" 0 (Vec.get v 42);
  Alcotest.(check int) "fold" (4950 - 42) (Vec.fold_left ( + ) 0 v);
  (match Vec.get v 100 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected out of bounds")

(* --- Schema / Table ---------------------------------------------------- *)

let test_schema_validation () =
  let s = users_schema () in
  Alcotest.(check bool) "ok row" true
    (Result.is_ok (Schema.validate_row s [| v_int 1; v_text "a"; Value.Null |]));
  Alcotest.(check bool) "arity" true
    (Result.is_error (Schema.validate_row s [| v_int 1 |]));
  Alcotest.(check bool) "not null" true
    (Result.is_error
       (Schema.validate_row s [| v_int 1; Value.Null; Value.Null |]));
  Alcotest.(check bool) "type" true
    (Result.is_error
       (Schema.validate_row s [| v_text "x"; v_text "a"; Value.Null |]))

let test_table_crud () =
  let t = Table.create (users_schema ()) in
  let rid = Table.insert t [| v_int 1; v_text "alice"; v_int 30 |] in
  Alcotest.(check int) "count" 1 (Table.row_count t);
  Alcotest.(check bool) "pk lookup" true (Table.lookup_pk t (v_int 1) = Some rid);
  (* duplicate pk *)
  (match Table.insert t [| v_int 1; v_text "bob"; Value.Null |] with
  | exception Table.Constraint_violation _ -> ()
  | _ -> Alcotest.fail "expected duplicate pk violation");
  let old = Table.update t rid [| v_int 2; v_text "alice"; v_int 31 |] in
  Alcotest.(check bool) "old row" true (Value.equal old.(0) (v_int 1));
  Alcotest.(check bool) "old pk gone" true (Table.lookup_pk t (v_int 1) = None);
  Alcotest.(check bool) "new pk" true (Table.lookup_pk t (v_int 2) = Some rid);
  let deleted = Table.delete t rid in
  Alcotest.(check bool) "deleted" true (deleted <> None);
  Alcotest.(check int) "empty" 0 (Table.row_count t);
  Alcotest.(check bool) "double delete" true (Table.delete t rid = None);
  Table.restore t rid (Option.get deleted);
  Alcotest.(check int) "restored" 1 (Table.row_count t);
  Alcotest.(check bool) "pk restored" true (Table.lookup_pk t (v_int 2) = Some rid)

let test_secondary_index () =
  let t = Table.create (users_schema ()) in
  for i = 1 to 10 do
    ignore (Table.insert t [| v_int i; v_text "n"; v_int (i mod 3) |])
  done;
  Table.create_index t "age";
  Alcotest.(check bool) "has index" true (Table.has_index t "age");
  let rids = Option.get (Table.lookup_indexed t "age" (v_int 1)) in
  Alcotest.(check int) "matches" 4 (List.length rids);
  (* maintenance across update *)
  let rid = List.hd rids in
  let row = Option.get (Table.get t rid) in
  let row' = Array.copy row in
  row'.(2) <- v_int 2;
  ignore (Table.update t rid row');
  let rids1 = Option.get (Table.lookup_indexed t "age" (v_int 1)) in
  Alcotest.(check int) "after update" 3 (List.length rids1);
  Alcotest.(check bool) "no index" true
    (Table.lookup_indexed t "name" (v_text "n") = None)

let test_ordered_index () =
  let t = Table.create (users_schema ()) in
  for i = 1 to 20 do
    ignore (Table.insert t [| v_int i; v_text "n"; v_int (100 - i) |])
  done;
  Table.create_ordered_index t "age";
  Alcotest.(check bool) "has ordered index" true (Table.has_ordered_index t "age");
  let rids = Option.get (Table.lookup_range t "age" ~lo:(v_int 85, true) ~hi:(v_int 90, false) ()) in
  (* ages 85..89 = rows with i in 11..15 -> rids 10..14, key order desc by i *)
  Alcotest.(check int) "5 in range" 5 (List.length rids);
  (* maintenance across update and delete *)
  let rid = List.hd rids in
  let row = Array.copy (Option.get (Table.get t rid)) in
  row.(2) <- v_int 5;
  ignore (Table.update t rid row);
  let rids' = Option.get (Table.lookup_range t "age" ~lo:(v_int 85, true) ~hi:(v_int 90, false) ()) in
  Alcotest.(check int) "4 after update" 4 (List.length rids');
  ignore (Table.delete t (List.hd rids'));
  let rids'' = Option.get (Table.lookup_range t "age" ~lo:(v_int 85, true) ~hi:(v_int 90, false) ()) in
  Alcotest.(check int) "3 after delete" 3 (List.length rids'');
  Alcotest.(check bool) "unindexed column" true
    (Table.lookup_range t "name" () = None);
  (* open-ended bounds *)
  let all = Option.get (Table.lookup_range t "age" ()) in
  Alcotest.(check int) "full range" 19 (List.length all)

let test_range_query_uses_index () =
  let db = make_db () in
  seed_users db 200;
  Database.create_ordered_index db ~table:"users" ~column:"age";
  (* Index path and scan path must agree; rows_scanned must shrink. *)
  let with_index =
    Database.exec_sql db "SELECT id FROM users WHERE age BETWEEN 25 AND 27 ORDER BY id"
  in
  let db2 = make_db () in
  seed_users db2 200;
  let without =
    Database.exec_sql db2 "SELECT id FROM users WHERE age BETWEEN 25 AND 27 ORDER BY id"
  in
  Alcotest.(check bool) "same rows" true
    (Result_set.equal with_index.rs without.rs);
  Alcotest.(check bool)
    (Printf.sprintf "cheaper with index (%.3f < %.3f)" with_index.cost_ms
       without.cost_ms)
    true
    (with_index.cost_ms < without.cost_ms)

(* --- Executor ---------------------------------------------------------- *)

let test_select_where_index () =
  let db = make_db () in
  seed_users db 100;
  let rs = Database.query db "SELECT * FROM users WHERE id = 7" in
  Alcotest.(check int) "one row" 1 (Result_set.num_rows rs);
  Alcotest.(check string) "name" "user7"
    (Value.to_string (Result_set.cell rs ~row:0 "name"))

let test_select_scan () =
  let db = make_db () in
  seed_users db 100;
  let rs = Database.query db "SELECT id FROM users WHERE age = 25" in
  Alcotest.(check int) "rows" 2 (Result_set.num_rows rs)

let test_select_projection_alias () =
  let db = make_db () in
  seed_users db 3;
  let rs = Database.query db "SELECT id AS ident, age + 1 AS older FROM users" in
  Alcotest.(check (list string)) "cols" [ "ident"; "older" ] (Result_set.columns rs);
  Alcotest.(check string) "older" "22"
    (Value.to_string (Result_set.cell rs ~row:0 "older"))

let test_order_by_limit () =
  let db = make_db () in
  seed_users db 10;
  let rs = Database.query db "SELECT id FROM users ORDER BY id DESC LIMIT 3" in
  let ids =
    List.map (fun r -> Value.to_string r.(0)) (Result_set.rows rs)
  in
  Alcotest.(check (list string)) "desc ids" [ "10"; "9"; "8" ] ids

let test_join_indexed () =
  let db = make_db () in
  seed_users db 10;
  seed_orders db 30;
  let rs =
    Database.query db
      "SELECT u.name, o.total FROM users u JOIN orders o ON o.user_id = u.id \
       WHERE u.id = 1"
  in
  Alcotest.(check int) "orders of user 1" 3 (Result_set.num_rows rs);
  Alcotest.(check (list string)) "qualified columns" [ "name"; "total" ]
    (Result_set.columns rs)

let test_join_star_qualified () =
  let db = make_db () in
  seed_users db 2;
  seed_orders db 4;
  let rs =
    Database.query db
      "SELECT * FROM users u JOIN orders o ON o.user_id = u.id"
  in
  Alcotest.(check bool) "has u.id col" true
    (List.mem "u.id" (Result_set.columns rs));
  Alcotest.(check bool) "has o.total col" true
    (List.mem "o.total" (Result_set.columns rs))

let test_aggregates_exec () =
  let db = make_db () in
  seed_users db 10;
  let rs = Database.query db "SELECT COUNT(*) FROM users" in
  Alcotest.(check bool) "count 10" true
    (Result_set.scalar rs = Some (v_int 10));
  let rs = Database.query db "SELECT MIN(age), MAX(age), AVG(age) FROM users" in
  Alcotest.(check string) "min" "21"
    (Value.to_string (Result_set.cell rs ~row:0 "MIN(age)"));
  let rs = Database.query db "SELECT COUNT(*) FROM users WHERE id > 100" in
  Alcotest.(check bool) "empty count is 0" true
    (Result_set.scalar rs = Some (v_int 0))

let test_group_by () =
  let db = make_db () in
  seed_orders db 20;
  let rs =
    Database.query db
      "SELECT user_id, COUNT(*) AS n FROM orders GROUP BY user_id ORDER BY \
       user_id"
  in
  Alcotest.(check int) "10 groups" 10 (Result_set.num_rows rs);
  Alcotest.(check string) "each has 2" "2"
    (Value.to_string (Result_set.cell rs ~row:0 "n"))

let test_update_delete () =
  let db = make_db () in
  seed_users db 5;
  let o = Database.exec_sql db "UPDATE users SET age = 99 WHERE id <= 2" in
  Alcotest.(check int) "2 updated" 2 o.rows_affected;
  let rs = Database.query db "SELECT COUNT(*) FROM users WHERE age = 99" in
  Alcotest.(check bool) "updated visible" true
    (Result_set.scalar rs = Some (v_int 2));
  let o = Database.exec_sql db "DELETE FROM users WHERE age = 99" in
  Alcotest.(check int) "2 deleted" 2 o.rows_affected;
  Alcotest.(check int) "3 remain" 3 (Database.row_count db "users")

let test_insert_defaults_null () =
  let db = make_db () in
  ignore (Database.exec_sql db "INSERT INTO users (id, name) VALUES (1, 'a')");
  let rs = Database.query db "SELECT age FROM users WHERE id = 1" in
  Alcotest.(check bool) "age null" true
    (Result_set.cell rs ~row:0 "age" = Value.Null)

let test_null_semantics () =
  let db = make_db () in
  ignore (Database.exec_sql db "INSERT INTO users (id, name) VALUES (1, 'a')");
  ignore
    (Database.exec_sql db "INSERT INTO users (id, name, age) VALUES (2, 'b', 30)");
  let count sql =
    match Result_set.scalar (Database.query db sql) with
    | Some (Value.Int n) -> n
    | _ -> Alcotest.fail "expected scalar"
  in
  Alcotest.(check int) "null = null is false" 0
    (count "SELECT COUNT(*) FROM users WHERE age = NULL");
  Alcotest.(check int) "is null" 1
    (count "SELECT COUNT(*) FROM users WHERE age IS NULL");
  Alcotest.(check int) "is not null" 1
    (count "SELECT COUNT(*) FROM users WHERE age IS NOT NULL");
  Alcotest.(check int) "comparison with null row excluded" 1
    (count "SELECT COUNT(*) FROM users WHERE age > 0")

let test_like_exec () =
  let db = make_db () in
  seed_users db 12;
  let rs = Database.query db "SELECT id FROM users WHERE name LIKE 'user1%'" in
  (* user1, user10, user11, user12 *)
  Alcotest.(check int) "like matches" 4 (Result_set.num_rows rs)

let test_distinct () =
  let db = make_db () in
  seed_users db 10;
  let rs = Database.query db "SELECT DISTINCT age FROM users ORDER BY age" in
  Alcotest.(check int) "distinct ages" 10 (Result_set.num_rows rs);
  ignore (Database.exec_sql db "UPDATE users SET age = 30");
  let rs = Database.query db "SELECT DISTINCT age FROM users" in
  Alcotest.(check int) "one distinct age" 1 (Result_set.num_rows rs)

let test_having () =
  let db = make_db () in
  seed_orders db 20;
  let rs =
    Database.query db
      "SELECT user_id, COUNT(*) AS n FROM orders GROUP BY user_id HAVING        COUNT(*) > 1 ORDER BY user_id"
  in
  Alcotest.(check int) "all groups have 2" 10 (Result_set.num_rows rs);
  let rs =
    Database.query db
      "SELECT user_id, COUNT(*) AS n FROM orders GROUP BY user_id HAVING        COUNT(*) > 2"
  in
  Alcotest.(check int) "no group has 3" 0 (Result_set.num_rows rs)

let test_offset () =
  let db = make_db () in
  seed_users db 10;
  let rs = Database.query db "SELECT id FROM users ORDER BY id LIMIT 3 OFFSET 4" in
  let ids = List.map (fun r -> Value.to_string r.(0)) (Result_set.rows rs) in
  Alcotest.(check (list string)) "window" [ "5"; "6"; "7" ] ids;
  let rs = Database.query db "SELECT id FROM users ORDER BY id OFFSET 8" in
  Alcotest.(check int) "tail" 2 (Result_set.num_rows rs)

let test_between () =
  let db = make_db () in
  seed_users db 30;
  let rs =
    Database.query db "SELECT id FROM users WHERE age BETWEEN 25 AND 27"
  in
  let by_cmp =
    Database.query db "SELECT id FROM users WHERE age >= 25 AND age <= 27"
  in
  Alcotest.(check bool) "between = explicit range" true
    (Result_set.equal rs by_cmp);
  Alcotest.(check bool) "non-empty" true (Result_set.num_rows rs > 0)

let test_in_subquery () =
  let db = make_db () in
  seed_users db 20;
  seed_orders db 30;
  (* Users having at least one order with a big total. *)
  let rs =
    Database.query db
      "SELECT id FROM users WHERE id IN (SELECT user_id FROM orders WHERE        total > 250) ORDER BY id"
  in
  let reference =
    Database.query db
      "SELECT DISTINCT u.id FROM users u JOIN orders o ON o.user_id = u.id        WHERE o.total > 250 ORDER BY u.id"
  in
  Alcotest.(check bool) "subquery = join+distinct" true
    (Result_set.equal rs reference);
  Alcotest.(check bool) "non-trivial" true (Result_set.num_rows rs > 0);
  (* NOT IN works through the evaluator too. *)
  let nin =
    Database.query db
      "SELECT COUNT(*) AS n FROM users WHERE NOT id IN (SELECT user_id FROM        orders)"
  in
  let total = Result_set.num_rows rs in
  ignore total;
  (match Result_set.scalar nin with
  | Some (Value.Int n) -> Alcotest.(check int) "complement" 10 n
  | _ -> Alcotest.fail "expected scalar");
  (* A multi-column subquery is rejected. *)
  match
    Database.exec_sql db
      "SELECT id FROM users WHERE id IN (SELECT id, name FROM users)"
  with
  | exception Database.Sql_error _ -> ()
  | _ -> Alcotest.fail "expected single-column error"

let test_in_subquery_roundtrip () =
  let sql =
    "SELECT id FROM users WHERE (id IN (SELECT user_id FROM orders WHERE      (total > 250)))"
  in
  let ast = Sloth_sql.Parser.parse sql in
  let printed = Sloth_sql.Printer.to_string ast in
  Alcotest.(check bool) "reparses to same ast" true
    (Sloth_sql.Parser.parse printed = ast)

let test_sql_errors () =
  let db = make_db () in
  let expect_err sql =
    match Database.exec_sql db sql with
    | exception Database.Sql_error _ -> ()
    | _ -> Alcotest.failf "expected error for %s" sql
  in
  expect_err "SELECT * FROM missing";
  expect_err "SELECT nope FROM users";
  expect_err "INSERT INTO users (id, wrong) VALUES (1, 2)";
  expect_err "INSERT INTO users (id) VALUES (1, 2)";
  expect_err "CREATE TABLE users (id INT)";
  (* Division by zero only surfaces when a row is actually evaluated. *)
  seed_users db 1;
  expect_err "SELECT 1 / 0 FROM users"

(* --- transactions ------------------------------------------------------ *)

let test_txn_commit () =
  let db = make_db () in
  ignore (Database.exec_sql db "BEGIN");
  Alcotest.(check bool) "in txn" true (Database.in_txn db);
  ignore (Database.exec_sql db "INSERT INTO users (id, name) VALUES (1, 'a')");
  ignore (Database.exec_sql db "COMMIT");
  Alcotest.(check bool) "out of txn" false (Database.in_txn db);
  Alcotest.(check int) "row committed" 1 (Database.row_count db "users")

let test_txn_rollback () =
  let db = make_db () in
  seed_users db 3;
  ignore (Database.exec_sql db "BEGIN");
  ignore (Database.exec_sql db "INSERT INTO users (id, name) VALUES (10, 'x')");
  ignore (Database.exec_sql db "UPDATE users SET age = 1 WHERE id = 1");
  ignore (Database.exec_sql db "DELETE FROM users WHERE id = 2");
  Alcotest.(check int) "mid-txn state" 3 (Database.row_count db "users");
  ignore (Database.exec_sql db "ROLLBACK");
  Alcotest.(check int) "count restored" 3 (Database.row_count db "users");
  let rs = Database.query db "SELECT age FROM users WHERE id = 1" in
  Alcotest.(check string) "update undone" "21"
    (Value.to_string (Result_set.cell rs ~row:0 "age"));
  let rs = Database.query db "SELECT COUNT(*) FROM users WHERE id = 2" in
  Alcotest.(check bool) "delete undone" true
    (Result_set.scalar rs = Some (v_int 1));
  let rs = Database.query db "SELECT COUNT(*) FROM users WHERE id = 10" in
  Alcotest.(check bool) "insert undone" true
    (Result_set.scalar rs = Some (v_int 0))

let test_nested_txn_rejected () =
  let db = make_db () in
  ignore (Database.exec_sql db "BEGIN");
  match Database.exec_sql db "BEGIN" with
  | exception Database.Sql_error _ -> ()
  | _ -> Alcotest.fail "expected nested txn error"

let test_atomically_commits () =
  let db = make_db () in
  Database.atomically db (fun () ->
      ignore
        (Database.exec_sql db "INSERT INTO users (id, name) VALUES (1, 'a')");
      ignore
        (Database.exec_sql db "INSERT INTO users (id, name) VALUES (2, 'b')"));
  Alcotest.(check bool) "implicit txn closed" false (Database.in_txn db);
  Alcotest.(check int) "both rows kept" 2 (Database.row_count db "users")

let test_atomically_rolls_back_batch () =
  let db = make_db () in
  seed_users db 3;
  (* A mid-batch failure must undo the insert, update and delete that the
     batch already applied — in the right order. *)
  (match
     Database.atomically db (fun () ->
         ignore
           (Database.exec_sql db
              "INSERT INTO users (id, name) VALUES (10, 'x')");
         ignore (Database.exec_sql db "UPDATE users SET age = 1 WHERE id = 1");
         ignore (Database.exec_sql db "DELETE FROM users WHERE id = 2");
         ignore (Database.exec_sql db "SELECT * FROM missing"))
   with
  | () -> Alcotest.fail "expected the poison statement to fail"
  | exception Database.Sql_error _ -> ());
  Alcotest.(check bool) "implicit txn closed" false (Database.in_txn db);
  Alcotest.(check int) "count restored" 3 (Database.row_count db "users");
  let rs = Database.query db "SELECT age FROM users WHERE id = 1" in
  Alcotest.(check string) "update undone" "21"
    (Value.to_string (Result_set.cell rs ~row:0 "age"));
  let rs = Database.query db "SELECT COUNT(*) FROM users WHERE id = 2" in
  Alcotest.(check bool) "delete undone" true
    (Result_set.scalar rs = Some (v_int 1));
  let rs = Database.query db "SELECT COUNT(*) FROM users WHERE id = 10" in
  Alcotest.(check bool) "insert undone" true
    (Result_set.scalar rs = Some (v_int 0))

let test_atomically_transparent_inside_client_txn () =
  let db = make_db () in
  ignore (Database.exec_sql db "BEGIN");
  (match
     Database.atomically db (fun () ->
         ignore
           (Database.exec_sql db "INSERT INTO users (id, name) VALUES (1, 'a')");
         raise Exit)
   with
  | () -> Alcotest.fail "expected Exit"
  | exception Exit -> ());
  (* Inside a client transaction [atomically] defers entirely to it: the
     failure above must not undo anything — only the client may decide. *)
  Alcotest.(check bool) "client txn still open" true (Database.in_txn db);
  Alcotest.(check int) "insert still visible" 1 (Database.row_count db "users");
  ignore (Database.exec_sql db "ROLLBACK");
  Alcotest.(check int) "client rollback undoes it" 0
    (Database.row_count db "users")

(* --- planner / plan IR -------------------------------------------------- *)

let parse_select sql =
  match Sloth_sql.Parser.parse sql with
  | Ast.Select s -> s
  | _ -> Alcotest.fail "expected a SELECT"

let plan_of db ?(mode = Executor.Planned) sql =
  Executor.plan_of_select (Database.catalog db) ~mode
    ~model:(Database.cost_model db) (parse_select sql)

let access_of (p : Plan.physical) =
  match p.Plan.p_source with
  | Plan.P_scan { access; _ } -> access
  | _ -> Alcotest.fail "expected a single-table plan"

let test_plan_pp_logical () =
  let l =
    Planner.lower
      (parse_select
         "SELECT u.name, o.total FROM users AS u JOIN orders AS o ON \
          o.user_id = u.id WHERE o.total > 100.0 ORDER BY u.name DESC LIMIT 3")
  in
  Alcotest.(check string) "logical operator tree"
    "Project [u.name, o.total]\n\
    \  Limit 3\n\
    \    Sort [u.name DESC]\n\
    \      Filter (o.total > 100.0)\n\
    \        Join orders AS o ON (o.user_id = u.id)\n\
    \          Scan users AS u"
    (Plan.logical_to_string l)

let test_plan_pp_physical () =
  let db = make_db () in
  seed_users db 10;
  Alcotest.(check string) "index plan with estimates"
    "Project [name]\n\
    \  Limit 2\n\
    \    Offset 1\n\
    \      Sort [name ASC]\n\
    \        Filter (id = 3)\n\
    \          IndexEqScan users ON id = 3 (est rows=1.0 cost=0.0012ms)"
    (Plan.physical_to_string
       (plan_of db
          "SELECT name FROM users WHERE id = 3 ORDER BY name ASC LIMIT 2 \
           OFFSET 1"));
  Alcotest.(check string) "scan plan with estimates"
    "Project [COUNT(*) AS n]\n\
    \  Filter (name = 'x')\n\
    \    SeqScan users (est rows=10.0 cost=0.0040ms)"
    (Plan.physical_to_string
       (plan_of db "SELECT COUNT(*) AS n FROM users WHERE name = 'x'"));
  Alcotest.(check string) "group/having/distinct pipeline"
    "Project [age]\n\
    \  Distinct\n\
    \    Having (COUNT(*) > 1)\n\
    \      GroupBy [age]\n\
    \        SeqScan users (est rows=10.0 cost=0.0040ms)"
    (Plan.physical_to_string
       (plan_of db
          "SELECT DISTINCT age FROM users GROUP BY age HAVING COUNT(*) > 1"))

(* Cost-based access selection: the planner must weigh selectivity
   (statistics), not take the first usable conjunct like the oracle path. *)
let test_planner_access_choice () =
  let db = make_db () in
  (* 60 rows but only 3 distinct ages: an age index is a poor key while the
     primary key pins a single row. *)
  for i = 1 to 60 do
    ignore
      (Database.exec_sql db
         (Printf.sprintf
            "INSERT INTO users (id, name, age) VALUES (%d, 'u%d', %d)" i i
            (i mod 3)))
  done;
  Database.create_index db ~table:"users" ~column:"age";
  Database.create_ordered_index db ~table:"users" ~column:"age";
  (match access_of (plan_of db "SELECT * FROM users WHERE id = 7") with
  | Plan.Index_eq { column = "id"; _ } -> ()
  | _ -> Alcotest.fail "pk equality should pick IndexEqScan");
  (match access_of (plan_of db "SELECT * FROM users WHERE age > 1") with
  | Plan.Index_range { column = "age"; lo = Some (_, false); hi = None } -> ()
  | _ -> Alcotest.fail "range predicate should pick IndexRangeScan");
  (match access_of (plan_of db "SELECT * FROM users WHERE name = 'u3'") with
  | Plan.Seq_scan -> ()
  | _ -> Alcotest.fail "unindexed predicate should pick SeqScan");
  (* Both conjuncts have indexes; the cost model must prefer the unique pk
     over the 20-rows-per-value age index regardless of conjunct order ... *)
  (match access_of (plan_of db "SELECT * FROM users WHERE age = 1 AND id = 7") with
  | Plan.Index_eq { column = "id"; _ } -> ()
  | _ -> Alcotest.fail "planner should pick the selective pk index");
  (* ... while the legacy oracle takes the first usable equality conjunct. *)
  (match
     access_of
       (plan_of db ~mode:Executor.Direct
          "SELECT * FROM users WHERE age = 1 AND id = 7")
   with
  | Plan.Index_eq { column = "age"; _ } -> ()
  | _ -> Alcotest.fail "direct mode should keep the first-match heuristic");
  (* Join side: the ON equality probes the inner index. *)
  seed_orders db 20;
  match
    (plan_of db
       "SELECT * FROM users JOIN orders ON orders.user_id = users.id")
      .Plan.p_source
  with
  | Plan.P_join
      { strategy = Plan.Index_probe { column = "user_id"; _ }; _ } ->
      ()
  | _ -> Alcotest.fail "equi-join should pick IndexProbeJoin"

let outcome_rows (o : Executor.outcome) =
  ( Result_set.columns o.rs,
    List.map Array.to_list (Result_set.rows o.rs) )

(* Shared-scan batch execution: normalized duplicates run once, compatible
   sequential scans of one table share a single heap pass, and the result
   sets stay identical to independent execution. *)
let test_execute_reads_sharing () =
  let db = make_db () in
  seed_users db 30;
  let cat = Database.catalog db in
  let model = Database.cost_model db in
  let sqls =
    [
      "SELECT COUNT(*) AS n FROM users WHERE name = 'user1'";
      "SELECT COUNT(*) AS n FROM users WHERE name = 'user2'";
      (* Same normalized form as the first statement. *)
      "SELECT COUNT(*) AS n FROM users WHERE 'user1' = name";
    ]
  in
  let selects = List.map parse_select sqls in
  let shared = Executor.execute_reads cat ~model selects in
  let independent =
    List.map (fun s -> Executor.execute cat ~model (Ast.Select s)) selects
  in
  Alcotest.(check bool) "results identical" true
    (List.equal ( = )
       (List.map outcome_rows shared)
       (List.map outcome_rows independent));
  (match List.map (fun (o : Executor.outcome) -> o.rows_scanned) shared with
  | [ 30; 0; 0 ] -> ()
  | scans ->
      Alcotest.failf "expected one charged scan, got [%s]"
        (String.concat "; " (List.map string_of_int scans)));
  Alcotest.(check int) "independent path scans thrice" 90
    (List.fold_left
       (fun acc (o : Executor.outcome) -> acc + o.rows_scanned)
       0 independent)

let test_exec_batch_write_barrier () =
  let db = make_db () in
  seed_users db 5;
  let stmts =
    List.map Sloth_sql.Parser.parse
      [
        "SELECT COUNT(*) AS n FROM users";
        "INSERT INTO users (id, name) VALUES (100, 'z')";
        "SELECT COUNT(*) AS n FROM users";
      ]
  in
  match Database.exec_batch db stmts with
  | [ before; ins; after ] ->
      Alcotest.(check bool) "count before" true
        (Result_set.scalar before.rs = Some (v_int 5));
      Alcotest.(check int) "insert applied" 1 ins.rows_affected;
      Alcotest.(check bool) "count after sees the write" true
        (Result_set.scalar after.rs = Some (v_int 6))
  | _ -> Alcotest.fail "expected three outcomes"

(* With the planner disabled the batch path degenerates to independent
   execution — the differential oracle — and must return the same rows at a
   higher (unshared) cost. *)
let test_exec_batch_no_planner_oracle () =
  let run db =
    List.map
      (fun (o : Database.outcome) ->
        ( Result_set.columns o.rs,
          List.map Array.to_list (Result_set.rows o.rs),
          o.cost_ms ))
      (Database.exec_batch db
         (List.map Sloth_sql.Parser.parse
            [
              "SELECT COUNT(*) AS n FROM users WHERE name = 'user1'";
              "SELECT COUNT(*) AS n FROM users WHERE name = 'user2'";
              "SELECT COUNT(*) AS n FROM users WHERE 'user1' = name";
            ]))
  in
  let db = make_db () in
  seed_users db 30;
  let planned = run db in
  Database.set_planner db false;
  Alcotest.(check bool) "planner off" false (Database.planner_enabled db);
  let oracle = run db in
  Alcotest.(check bool) "same result sets" true
    (List.equal ( = )
       (List.map (fun (c, r, _) -> (c, r)) planned)
       (List.map (fun (c, r, _) -> (c, r)) oracle));
  let total l = List.fold_left (fun acc (_, _, ms) -> acc +. ms) 0.0 l in
  Alcotest.(check bool) "shared batch costs less" true
    (total planned < total oracle)

(* --- properties -------------------------------------------------------- *)

(* A naive reference implementation of single-table SELECT semantics:
   filter with the expression evaluator over all rows, sort, offset/limit,
   project named columns.  The executor (with its index paths and
   plan-time shortcuts) must agree with it on randomized queries. *)
let reference_select db ~table ~where ~order_col ~desc ~offset ~limit ~cols =
  let tbl = Option.get (Database.table db table) in
  let schema = Table.schema tbl in
  let rows = ref [] in
  Table.iter (fun _ row -> rows := row :: !rows) tbl;
  let rows = List.rev !rows in
  let env row = [ (table, schema, row) ] in
  let rows =
    match where with
    | None -> rows
    | Some w ->
        List.filter (fun row -> Value.is_truthy (Eval.eval (env row) w)) rows
  in
  let rows =
    match order_col with
    | None -> rows
    | Some c ->
        let i = Schema.column_index_exn schema c in
        let cmp a b =
          let r = Value.compare a.(i) b.(i) in
          if desc then -r else r
        in
        List.stable_sort cmp rows
  in
  let rows = List.filteri (fun i _ -> i >= offset) rows in
  let rows = List.filteri (fun i _ -> i < limit) rows in
  List.map
    (fun row ->
      List.map (fun c -> row.(Schema.column_index_exn schema c)) cols)
    rows

let gen_where =
  QCheck.Gen.(
    let leaf =
      oneof
        [
          map (fun n -> Ast.Binop (Ast.Eq, Ast.Col (None, "id"), Ast.Lit (Ast.L_int n)))
            (int_range 1 40);
          map (fun n -> Ast.Binop (Ast.Gt, Ast.Col (None, "age"), Ast.Lit (Ast.L_int n)))
            (int_range 19 70);
          map (fun n -> Ast.Binop (Ast.Le, Ast.Col (None, "age"), Ast.Lit (Ast.L_int n)))
            (int_range 19 70);
          map
            (fun (lo, hi) ->
              Ast.Between
                { e = Ast.Col (None, "age");
                  lo = Ast.Lit (Ast.L_int lo);
                  hi = Ast.Lit (Ast.L_int (lo + hi)) })
            (pair (int_range 19 60) (int_range 0 20));
          map (fun s -> Ast.Like (Ast.Col (None, "name"), s))
            (oneofl [ "user%"; "%1%"; "user1_"; "%"; "nothing" ]);
          return (Ast.Is_null { e = Ast.Col (None, "age"); negated = false });
        ]
    in
    sized @@ fix (fun self n ->
        if n <= 0 then leaf
        else
          oneof
            [
              leaf;
              map2 (fun a b -> Ast.Binop (Ast.And, a, b)) (self (n / 2)) (self (n / 2));
              map2 (fun a b -> Ast.Binop (Ast.Or, a, b)) (self (n / 2)) (self (n / 2));
              map (fun a -> Ast.Unop (Ast.Not, a)) (self (n / 2));
            ]))

let prop_executor_vs_reference =
  let gen =
    QCheck.Gen.(
      let* where = opt gen_where in
      let* order_col = opt (oneofl [ "id"; "age"; "name" ]) in
      let* desc = bool in
      let* offset = int_range 0 10 in
      let* limit = int_range 1 50 in
      return (where, order_col, desc, offset, limit))
  in
  QCheck.Test.make ~count:300 ~name:"executor agrees with reference semantics"
    (QCheck.make gen ~print:(fun (w, o, d, off, l) ->
         Printf.sprintf "where=%s order=%s desc=%b offset=%d limit=%d"
           (match w with None -> "-" | Some w -> Sloth_sql.Printer.expr_to_string w)
           (Option.value o ~default:"-") d off l))
    (fun (where, order_col, desc, offset, limit) ->
      let db = make_db () in
      seed_users db 40;
      (* The ordered index routes range predicates through the index path,
         which must agree with the reference scan. *)
      Database.create_ordered_index db ~table:"users" ~column:"age";
      (* Give some NULL ages so IS NULL is exercised. *)
      ignore (Database.exec_sql db "UPDATE users SET age = NULL WHERE id = 3");
      ignore (Database.exec_sql db "UPDATE users SET age = NULL WHERE id = 17");
      let order_by =
        match order_col with
        | None -> []
        | Some c -> [ { Ast.o_expr = Ast.Col (None, c); o_asc = not desc } ]
      in
      let stmt =
        Ast.Select
          {
            sel_with = None;
            sel_distinct = false;
            sel_items =
              [
                Ast.Sel_expr (Ast.Col (None, "id"), None);
                Ast.Sel_expr (Ast.Col (None, "age"), None);
              ];
            sel_from = Some ("users", None);
            sel_joins = [];
            sel_where = where;
            sel_group_by = [];
            sel_having = None;
            sel_order_by = order_by;
            sel_limit = Some limit;
            sel_offset = Some offset;
          }
      in
      let actual =
        List.map Array.to_list (Result_set.rows (Database.exec db stmt).rs)
      in
      let expected =
        reference_select db ~table:"users" ~where ~order_col ~desc ~offset
          ~limit ~cols:[ "id"; "age" ]
      in
      (* The executor's sort must be stable like the reference's (both keep
         rid order for equal keys), so exact equality is required. *)
      actual = expected)


(* Index-equipped point queries must agree with a full scan. *)
let prop_index_vs_scan =
  QCheck.Test.make ~count:100 ~name:"index lookup agrees with scan"
    QCheck.(pair (small_list (int_bound 20)) (int_bound 20))
    (fun (ages, probe) ->
      let t = Table.create (users_schema ()) in
      List.iteri
        (fun i age ->
          ignore (Table.insert t [| v_int i; v_text "n"; v_int age |]))
        ages;
      Table.create_index t "age";
      let indexed =
        Option.get (Table.lookup_indexed t "age" (v_int probe))
      in
      let scanned = ref [] in
      Table.iter
        (fun rid row ->
          if Value.equal row.(2) (v_int probe) then scanned := rid :: !scanned)
        t;
      indexed = List.rev !scanned)

(* Transactions are atomic: any sequence of writes inside BEGIN..ROLLBACK
   leaves the table contents unchanged. *)
let prop_rollback_atomic =
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 20)
        (oneof
           [
             map (fun id -> `Insert (abs id mod 100)) int;
             map (fun id -> `Update (abs id mod 100)) int;
             map (fun id -> `Delete (abs id mod 100)) int;
           ]))
  in
  QCheck.Test.make ~count:100 ~name:"rollback restores exact state"
    (QCheck.make gen)
    (fun ops ->
      let db = make_db () in
      seed_users db 20;
      let dump () =
        Result_set.rows
          (Database.query db "SELECT * FROM users ORDER BY id")
        |> List.map (fun r -> Array.map Value.to_string r)
      in
      let before = dump () in
      ignore (Database.exec_sql db "BEGIN");
      List.iter
        (fun op ->
          try
            match op with
            | `Insert id ->
                ignore
                  (Database.exec_sql db
                     (Printf.sprintf
                        "INSERT INTO users (id, name) VALUES (%d, 'x')" (100 + id)))
            | `Update id ->
                ignore
                  (Database.exec_sql db
                     (Printf.sprintf "UPDATE users SET age = 7 WHERE id = %d" id))
            | `Delete id ->
                ignore
                  (Database.exec_sql db
                     (Printf.sprintf "DELETE FROM users WHERE id = %d" id))
          with Database.Sql_error _ -> ())
        ops;
      ignore (Database.exec_sql db "ROLLBACK");
      dump () = before)

(* Stronger rollback property: the heap must be restored byte-identically —
   same fingerprint (rids, heap shape, every row), same live count, and the
   secondary index must answer exactly as before. *)
let prop_rollback_fingerprint =
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 30)
        (oneof
           [
             map2 (fun id age -> `Insert (abs id mod 60, abs age mod 10)) int int;
             map2 (fun id age -> `Update (abs id mod 60, abs age mod 10)) int int;
             map (fun id -> `Delete (abs id mod 60)) int;
           ]))
  in
  QCheck.Test.make ~count:100 ~name:"rollback restores byte-identical heap"
    (QCheck.make gen)
    (fun ops ->
      let db = make_db () in
      seed_users db 20;
      Database.create_index db ~table:"users" ~column:"age";
      let tbl = Option.get (Database.table db "users") in
      let index_view () =
        List.map
          (fun age -> Table.lookup_indexed tbl "age" (v_int age))
          [ 0; 3; 7; 9 ]
      in
      let fp_before = Database.fingerprint db in
      let count_before = Database.row_count db "users" in
      let idx_before = index_view () in
      ignore (Database.exec_sql db "BEGIN");
      List.iter
        (fun op ->
          try
            match op with
            | `Insert (id, age) ->
                ignore
                  (Database.exec_sql db
                     (Printf.sprintf
                        "INSERT INTO users (id, name, age) VALUES (%d, 'x', \
                         %d)"
                        (100 + id) age))
            | `Update (id, age) ->
                ignore
                  (Database.exec_sql db
                     (Printf.sprintf "UPDATE users SET age = %d WHERE id = %d"
                        age id))
            | `Delete id ->
                ignore
                  (Database.exec_sql db
                     (Printf.sprintf "DELETE FROM users WHERE id = %d" id))
          with Database.Sql_error _ -> ())
        ops;
      ignore (Database.exec_sql db "ROLLBACK");
      Database.fingerprint db = fp_before
      && Database.row_count db "users" = count_before
      && index_view () = idx_before)

(* --- planner differential oracle ---------------------------------------- *)

(* Like [gen_where] plus equality-on-age leaves, so the planner faces real
   choices (hash index vs. ordered index vs. pk vs. scan) on every case. *)
let gen_where_planner =
  QCheck.Gen.(
    let leaf =
      oneof
        [
          map (fun n -> Ast.Binop (Ast.Eq, Ast.Col (None, "id"), Ast.Lit (Ast.L_int n)))
            (int_range 1 40);
          map (fun n -> Ast.Binop (Ast.Eq, Ast.Col (None, "age"), Ast.Lit (Ast.L_int n)))
            (int_range 19 70);
          map (fun n -> Ast.Binop (Ast.Eq, Ast.Lit (Ast.L_int n), Ast.Col (None, "age")))
            (int_range 19 70);
          map (fun n -> Ast.Binop (Ast.Gt, Ast.Col (None, "age"), Ast.Lit (Ast.L_int n)))
            (int_range 19 70);
          map (fun n -> Ast.Binop (Ast.Le, Ast.Col (None, "age"), Ast.Lit (Ast.L_int n)))
            (int_range 19 70);
          map
            (fun (lo, hi) ->
              Ast.Between
                { e = Ast.Col (None, "age");
                  lo = Ast.Lit (Ast.L_int lo);
                  hi = Ast.Lit (Ast.L_int (lo + hi)) })
            (pair (int_range 19 60) (int_range 0 20));
          map (fun s -> Ast.Like (Ast.Col (None, "name"), s))
            (oneofl [ "user%"; "%1%"; "user1_"; "%"; "nothing" ]);
          return (Ast.Is_null { e = Ast.Col (None, "age"); negated = false });
        ]
    in
    sized @@ fix (fun self n ->
        if n <= 0 then leaf
        else
          oneof
            [
              leaf;
              map2 (fun a b -> Ast.Binop (Ast.And, a, b)) (self (n / 2)) (self (n / 2));
              map2 (fun a b -> Ast.Binop (Ast.Or, a, b)) (self (n / 2)) (self (n / 2));
              map (fun a -> Ast.Unop (Ast.Not, a)) (self (n / 2));
            ]))

let col c = Ast.Col (None, c)
let item ?alias e = Ast.Sel_expr (e, alias)

let gen_fuzz_select =
  QCheck.Gen.(
    let* join = bool in
    let* where = opt gen_where_planner in
    let* limit = opt (int_range 1 50) in
    let* offset = opt (int_range 0 10) in
    let* shape = oneofl [ `Plain; `Agg ] in
    let joins =
      if join then
        [
          Ast.{
            j_table = "orders";
            j_alias = None;
            j_on =
              Binop (Eq, Col (Some "orders", "user_id"),
                     Col (Some "users", "id"));
          };
        ]
      else []
    in
    let base ~items ~group_by ~having ~order_by ~distinct =
      Ast.{
        sel_with = None;
        sel_distinct = distinct;
        sel_items = items;
        sel_from = Some ("users", None);
        sel_joins = joins;
        sel_where = where;
        sel_group_by = group_by;
        sel_having = having;
        sel_order_by = order_by;
        sel_limit = limit;
        sel_offset = offset;
      }
    in
    match shape with
    | `Plain ->
        let* items =
          oneofl
            [
              [ Ast.Star ];
              [ item (col "id"); item (col "age") ];
              [ item (col "name"); item ~alias:"a" (col "age") ];
            ]
        in
        let* distinct = bool in
        let* order_by =
          oneofl
            [
              [];
              [ Ast.{ o_expr = col "id"; o_asc = false } ];
              [ Ast.{ o_expr = col "age"; o_asc = true };
                Ast.{ o_expr = col "name"; o_asc = false } ];
            ]
        in
        return (base ~items ~group_by:[] ~having:None ~order_by ~distinct)
    | `Agg ->
        let* group_by = oneofl [ []; [ col "age" ]; [ col "name" ] ] in
        let* having =
          if group_by = [] then return None
          else
            opt
              (let* n = int_range 0 3 in
               return
                 (Ast.Binop (Ast.Gt, Ast.Agg (Ast.Count, None),
                             Ast.Lit (Ast.L_int n))))
        in
        let items =
          [
            item ~alias:"n" (Ast.Agg (Ast.Count, None));
            item ~alias:"lo" (Ast.Agg (Ast.Min, Some (col "id")));
            item ~alias:"hi" (Ast.Agg (Ast.Max, Some (col "id")));
          ]
        in
        return
          (base ~items ~group_by ~having ~order_by:[] ~distinct:false))

let planner_fuzz_db =
  lazy
    (let db = make_db () in
     seed_users db 40;
     seed_orders db 60;
     Database.create_index db ~table:"users" ~column:"age";
     Database.create_ordered_index db ~table:"users" ~column:"age";
     ignore (Database.exec_sql db "UPDATE users SET age = NULL WHERE id = 3");
     ignore (Database.exec_sql db "UPDATE users SET age = NULL WHERE id = 17");
     db)

(* The acceptance oracle: across ≥1000 generated statements, cost-based
   planning must produce result sets identical to the legacy planner-free
   path (both interpret plans here, but [Direct] reproduces the historical
   access choices exactly). *)
let prop_planned_vs_direct_oracle =
  QCheck.Test.make ~count:1000
    ~name:"planned execution agrees with the direct oracle"
    (QCheck.make gen_fuzz_select ~print:(fun s ->
         Sloth_sql.Printer.to_string (Ast.Select s)))
    (fun sel ->
      let db = Lazy.force planner_fuzz_db in
      let cat = Database.catalog db in
      let model = Database.cost_model db in
      let a = Executor.execute cat ~model ~mode:Executor.Planned (Ast.Select sel) in
      let b = Executor.execute cat ~model ~mode:Executor.Direct (Ast.Select sel) in
      outcome_rows a = outcome_rows b)

(* Multi-query batches drawn (with replacement, so duplicates are common)
   from a pool of mixed statements: the shared path must return exactly the
   independent path's result sets, never scanning more in total. *)
let prop_batch_vs_independent =
  let pool =
    Array.map parse_select
      [|
        "SELECT COUNT(*) AS n FROM users WHERE name = 'user1'";
        "SELECT COUNT(*) AS n FROM users WHERE name LIKE 'user1%'";
        "SELECT COUNT(*) AS n FROM users WHERE name LIKE 'user1%'";
        "SELECT name, COUNT(*) AS n FROM users GROUP BY name";
        "SELECT * FROM users WHERE id = 5";
        "SELECT id FROM users WHERE age > 30 ORDER BY id DESC";
        "SELECT * FROM users WHERE age > 30 AND id = 7";
        "SELECT * FROM users WHERE id = 7 AND age > 30";
        "SELECT u.name, o.total FROM users AS u JOIN orders AS o ON \
         o.user_id = u.id WHERE o.total > 200.0";
        "SELECT COUNT(*) AS n FROM orders WHERE total > 100.0";
        "SELECT COUNT(*) AS n FROM orders WHERE 100.0 < total";
        "SELECT DISTINCT age FROM users ORDER BY age ASC";
        "SELECT COUNT(*) AS n FROM users WHERE age = 25 AND name LIKE 'u%'";
        "SELECT COUNT(*) AS n FROM users WHERE name LIKE 'u%' AND age = 25";
      |]
  in
  QCheck.Test.make ~count:200
    ~name:"shared batch execution agrees with independent execution"
    (QCheck.make
       QCheck.Gen.(list_size (int_range 2 8) (int_bound (Array.length pool - 1)))
       ~print:(fun idxs ->
         String.concat "; "
           (List.map
              (fun i -> Sloth_sql.Printer.to_string (Ast.Select pool.(i)))
              idxs)))
    (fun idxs ->
      let db = Lazy.force planner_fuzz_db in
      let cat = Database.catalog db in
      let model = Database.cost_model db in
      let selects = List.map (fun i -> pool.(i)) idxs in
      let shared = Executor.execute_reads cat ~model selects in
      let independent =
        List.map (fun s -> Executor.execute cat ~model (Ast.Select s)) selects
      in
      let total l =
        List.fold_left (fun acc (o : Executor.outcome) -> acc + o.rows_scanned) 0 l
      in
      List.equal ( = )
        (List.map outcome_rows shared)
        (List.map outcome_rows independent)
      && total shared <= total independent)

let () =
  Alcotest.run "storage"
    [
      ( "value",
        [
          Alcotest.test_case "compare" `Quick test_value_compare;
          Alcotest.test_case "types" `Quick test_value_types;
        ] );
      ("vec", [ Alcotest.test_case "basics" `Quick test_vec ]);
      ( "table",
        [
          Alcotest.test_case "schema validation" `Quick test_schema_validation;
          Alcotest.test_case "crud" `Quick test_table_crud;
          Alcotest.test_case "secondary index" `Quick test_secondary_index;
          Alcotest.test_case "ordered index" `Quick test_ordered_index;
          Alcotest.test_case "range query via index" `Quick
            test_range_query_uses_index;
        ] );
      ( "executor",
        [
          Alcotest.test_case "select via pk" `Quick test_select_where_index;
          Alcotest.test_case "select scan" `Quick test_select_scan;
          Alcotest.test_case "projection" `Quick test_select_projection_alias;
          Alcotest.test_case "order by / limit" `Quick test_order_by_limit;
          Alcotest.test_case "indexed join" `Quick test_join_indexed;
          Alcotest.test_case "join star" `Quick test_join_star_qualified;
          Alcotest.test_case "aggregates" `Quick test_aggregates_exec;
          Alcotest.test_case "group by" `Quick test_group_by;
          Alcotest.test_case "update/delete" `Quick test_update_delete;
          Alcotest.test_case "insert defaults" `Quick test_insert_defaults_null;
          Alcotest.test_case "null semantics" `Quick test_null_semantics;
          Alcotest.test_case "like" `Quick test_like_exec;
          Alcotest.test_case "distinct" `Quick test_distinct;
          Alcotest.test_case "having" `Quick test_having;
          Alcotest.test_case "offset" `Quick test_offset;
          Alcotest.test_case "between" `Quick test_between;
          Alcotest.test_case "in subquery" `Quick test_in_subquery;
          Alcotest.test_case "in subquery roundtrip" `Quick
            test_in_subquery_roundtrip;
          Alcotest.test_case "errors" `Quick test_sql_errors;
        ] );
      ( "transactions",
        [
          Alcotest.test_case "commit" `Quick test_txn_commit;
          Alcotest.test_case "rollback" `Quick test_txn_rollback;
          Alcotest.test_case "nested rejected" `Quick test_nested_txn_rejected;
          Alcotest.test_case "atomically commits" `Quick test_atomically_commits;
          Alcotest.test_case "atomically rolls back" `Quick
            test_atomically_rolls_back_batch;
          Alcotest.test_case "atomically in client txn" `Quick
            test_atomically_transparent_inside_client_txn;
        ] );
      ( "planner",
        [
          Alcotest.test_case "pp logical" `Quick test_plan_pp_logical;
          Alcotest.test_case "pp physical" `Quick test_plan_pp_physical;
          Alcotest.test_case "access choice" `Quick test_planner_access_choice;
          Alcotest.test_case "shared reads" `Quick test_execute_reads_sharing;
          Alcotest.test_case "batch write barrier" `Quick
            test_exec_batch_write_barrier;
          Alcotest.test_case "no-planner oracle" `Quick
            test_exec_batch_no_planner_oracle;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_index_vs_scan; prop_rollback_atomic;
            prop_rollback_fingerprint; prop_executor_vs_reference;
            prop_planned_vs_direct_oracle; prop_batch_vs_independent ] );
    ]
