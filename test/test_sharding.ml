(* Tests for hash-partitioned storage with crash-safe two-phase commit:
   routing, cross-shard reads and transactions, the presumed-abort protocol
   under scripted crashes at every step, in-doubt recovery through the
   coordinator's decision log, the sharded admission server, and the
   single-shard = unsharded equivalence. *)

module Db = Sloth_storage.Database
module Shard = Sloth_storage.Shard
module Two_pc = Sloth_storage.Two_pc
module Wal = Sloth_storage.Wal
module Rs = Sloth_storage.Result_set
module Fault = Sloth_net.Fault
module Des = Sloth_net.Des
module Adm = Sloth_server.Admission
module Sh = Sloth_harness.Sharding

let parse sql = Sloth_sql.Parser.parse sql

let seed sh =
  ignore
    (Shard.exec_sql sh
       "CREATE TABLE kv (id INT NOT NULL, v TEXT NOT NULL, n INT NOT NULL, \
        PRIMARY KEY (id))");
  for i = 1 to 20 do
    ignore
      (Shard.exec_sql sh
         (Printf.sprintf "INSERT INTO kv (id, v, n) VALUES (%d, 'r%d', %d)" i
            i (i * 10)))
  done

let deployment ?(checkpoint_every = 4) shards =
  let sh = Shard.create ~checkpoint_every ~shards () in
  seed sh;
  sh

let unsharded_twin () =
  let db = Db.create () in
  ignore
    (Db.exec_sql db
       "CREATE TABLE kv (id INT NOT NULL, v TEXT NOT NULL, n INT NOT NULL, \
        PRIMARY KEY (id))");
  for i = 1 to 20 do
    ignore
      (Db.exec_sql db
         (Printf.sprintf "INSERT INTO kv (id, v, n) VALUES (%d, 'r%d', %d)" i
            i (i * 10)))
  done;
  db

(* the shard a live row actually sits on *)
let shard_of sh id =
  let rec go s =
    if s >= Shard.n_shards sh then None
    else if
      Rs.rows
        (Db.exec_sql (Shard.shard_db sh s)
           (Printf.sprintf "SELECT * FROM kv WHERE id = %d" id))
          .Db.rs
      <> []
    then Some s
    else go (s + 1)
  in
  go 0

(* two seeded ids living on different shards *)
let split_pair sh =
  let s1 = Option.get (shard_of sh 1) in
  let rec find i =
    if i > 20 then Alcotest.fail "no key off shard 1's home"
    else
      match shard_of sh i with
      | Some s when s <> s1 -> (1, i)
      | _ -> find (i + 1)
  in
  find 2

(* --- routing and reads ---------------------------------------------------- *)

let test_partitioning () =
  let sh = deployment 3 in
  let counts =
    List.init 3 (fun s -> Db.row_count (Shard.shard_db sh s) "kv")
  in
  Alcotest.(check int) "rows partitioned" 20 (List.fold_left ( + ) 0 counts);
  Alcotest.(check bool)
    "spread over several shards" true
    (List.length (List.filter (fun c -> c > 0) counts) >= 2);
  for i = 1 to 20 do
    Alcotest.(check bool)
      (Printf.sprintf "row %d on exactly one shard" i)
      true
      (List.length
         (List.filter
            (fun s ->
              Rs.rows
                (Db.exec_sql (Shard.shard_db sh s)
                   (Printf.sprintf "SELECT * FROM kv WHERE id = %d" i))
                  .Db.rs
              <> [])
            [ 0; 1; 2 ])
      = 1)
  done

let test_reads_match_unsharded () =
  let sh = deployment 3 and db = unsharded_twin () in
  List.iter
    (fun q ->
      Alcotest.(check bool)
        (q ^ " matches unsharded") true
        (Rs.rows (Shard.query sh q) = Rs.rows (Db.query db q)))
    [
      "SELECT * FROM kv ORDER BY id";
      "SELECT COUNT(*) AS c FROM kv WHERE n > 50";
      "SELECT v FROM kv WHERE id = 7";
      "SELECT a.v FROM kv a JOIN kv b ON a.id = b.id WHERE b.n = 100 ORDER \
       BY a.v";
    ]

let test_gather_pushdown_toggle () =
  (* WHERE pushdown on gathered reads is a pure shipping optimization:
     results must be byte-identical with the toggle on and off (and to the
     unsharded engine), while the pushed filter cuts the rows scanned on
     the shards. *)
  let queries =
    [
      "SELECT * FROM kv ORDER BY id";
      "SELECT v FROM kv WHERE id = 7";
      "SELECT COUNT(*) AS c FROM kv WHERE n > 50 AND id < 15";
      "SELECT a.v FROM kv a JOIN kv b ON a.id = b.id WHERE b.n = 100 ORDER \
       BY a.v";
      "SELECT v FROM kv WHERE id IN (2, 4, 6) ORDER BY v";
      "WITH big (id) AS (SELECT id FROM kv WHERE n > 120) SELECT COUNT(*) \
       FROM big";
    ]
  in
  let run on =
    let sh = deployment 3 in
    Shard.set_gather_pushdown sh on;
    Alcotest.(check bool)
      "toggle readback" on
      (Shard.gather_pushdown_enabled sh);
    List.map (fun q -> Rs.rows (Shard.query sh q)) queries
  in
  let on = run true and off = run false in
  List.iter2
    (fun a b -> Alcotest.(check bool) "pushdown is invisible" true (a = b))
    on off;
  let db = unsharded_twin () in
  List.iter2
    (fun q rows ->
      Alcotest.(check bool)
        (q ^ " matches unsharded") true
        (rows = Rs.rows (Db.query db q)))
    queries on;
  (* a PK-restricted statement gathers via index probes instead of full
     per-shard scans once its conjunct is pushed *)
  let scanned on =
    let sh = deployment 3 in
    Shard.set_gather_pushdown sh on;
    let sel =
      match parse "SELECT v FROM kv WHERE id = 7" with
      | Sloth_sql.Ast.Select s -> s
      | _ -> assert false
    in
    List.fold_left (fun acc (_, n) -> acc + n) 0 (Shard.exec_reads sh [ sel ])
  in
  Alcotest.(check bool)
    "pushdown ships fewer rows" true
    (scanned true < scanned false)

let test_logical_fingerprint_across_counts () =
  let fp n =
    let sh = deployment n in
    Shard.logical_fingerprint sh
  in
  let db = unsharded_twin () in
  Alcotest.(check string) "2 = 3 shards" (fp 2) (fp 3);
  Alcotest.(check string)
    "sharded = unsharded" (fp 2)
    (Shard.logical_fingerprint_db db)

let test_pk_update_rejected () =
  let sh = deployment 2 in
  Alcotest.check_raises "sharded pk update refused"
    (Db.Sql_error "sharded update may not modify the primary key kv.id")
    (fun () -> ignore (Shard.exec_sql sh "UPDATE kv SET id = 99 WHERE id = 1"))

(* --- cross-shard transactions --------------------------------------------- *)

let test_cross_shard_txn_commit_and_rollback () =
  let sh = deployment 3 in
  let a, b = split_pair sh in
  ignore (Shard.exec_sql sh "BEGIN");
  ignore
    (Shard.exec_sql sh (Printf.sprintf "UPDATE kv SET n = 1 WHERE id = %d" a));
  ignore
    (Shard.exec_sql sh (Printf.sprintf "UPDATE kv SET n = 2 WHERE id = %d" b));
  ignore (Shard.exec_sql sh "COMMIT");
  let n_of id =
    match
      Rs.rows
        (Shard.query sh (Printf.sprintf "SELECT n FROM kv WHERE id = %d" id))
    with
    | [ [| Sloth_storage.Value.Int n |] ] -> n
    | _ -> -1
  in
  Alcotest.(check int) "a committed" 1 (n_of a);
  Alcotest.(check int) "b committed" 2 (n_of b);
  Alcotest.(check int) "one 2pc commit" 1 (Shard.stats sh).Shard.two_pc_commits;
  ignore (Shard.exec_sql sh "BEGIN");
  ignore
    (Shard.exec_sql sh (Printf.sprintf "UPDATE kv SET n = 9 WHERE id = %d" a));
  ignore
    (Shard.exec_sql sh (Printf.sprintf "UPDATE kv SET n = 9 WHERE id = %d" b));
  ignore (Shard.exec_sql sh "ROLLBACK");
  Alcotest.(check int) "a rolled back" 1 (n_of a);
  Alcotest.(check int) "b rolled back" 2 (n_of b);
  (* the whole history survives a whole-process crash *)
  Shard.crash_restart sh;
  Alcotest.(check int) "a durable" 1 (n_of a);
  Alcotest.(check int) "b durable" 2 (n_of b)

(* --- scripted 2PC crashes -------------------------------------------------- *)

let cross_batch sh =
  let a, b = split_pair sh in
  [
    parse (Printf.sprintf "UPDATE kv SET n = 111 WHERE id = %d" a);
    parse (Printf.sprintf "UPDATE kv SET n = 222 WHERE id = %d" b);
  ]

let run_tokened sh stmts =
  match
    Shard.atomically ~token:"tok" sh (fun () ->
        List.iter (fun s -> ignore (Shard.exec sh s)) stmts)
  with
  | () -> true
  | exception Db.Sql_error _ -> false

let test_coordinator_crash_before_decision () =
  let sh = deployment 3 in
  let pre = Shard.logical_fingerprint sh in
  let stmts = cross_batch sh in
  let f = Fault.create (Fault.plan ()) in
  Fault.script ~target:Fault.Coordinator f ~first:1 ~last:99 Fault.Server_crash
    Fault.Request;
  Shard.set_fault sh (Some f);
  let acked = run_tokened sh stmts in
  Shard.set_fault sh None;
  Alcotest.(check bool) "aborted" false acked;
  Alcotest.(check bool) "token not applied" false (Shard.token_applied sh "tok");
  Alcotest.(check string) "state is pre" pre (Shard.logical_fingerprint sh);
  let _, _, _, ida = Shard.recovery_totals sh in
  Alcotest.(check bool) "in-doubt chunks presumed-aborted" true (ida >= 1);
  Alcotest.(check (list string)) "audit clean" [] (Shard.audit sh)

let test_coordinator_crash_after_decision () =
  let sh = deployment 3 in
  let stmts = cross_batch sh in
  let f = Fault.create (Fault.plan ()) in
  Fault.script ~target:Fault.Coordinator f ~first:1 ~last:99 Fault.Server_crash
    Fault.Response;
  Shard.set_fault sh (Some f);
  let acked = run_tokened sh stmts in
  Shard.set_fault sh None;
  Alcotest.(check bool) "acked" true acked;
  Alcotest.(check bool) "token applied" true (Shard.token_applied sh "tok");
  let _, _, idc, _ = Shard.recovery_totals sh in
  Alcotest.(check bool) "in-doubt chunks committed by recovery" true (idc >= 1);
  Alcotest.(check (list string)) "audit clean" [] (Shard.audit sh);
  (* and the decision survives another crash *)
  Shard.crash_restart sh;
  Alcotest.(check bool)
    "token still applied after second crash" true
    (Shard.token_applied sh "tok")

let test_participant_scoped_prepare_crash () =
  let sh = deployment 3 in
  let _, b = split_pair sh in
  let victim = Option.get (shard_of sh b) in
  let pre = Shard.logical_fingerprint sh in
  let stmts = cross_batch sh in
  let f = Fault.create (Fault.plan ()) in
  (* the window covers every trip but is scoped to one shard: only that
     participant's first decision point (its PREPARE) fires *)
  Fault.script ~target:(Fault.Shard victim) f ~first:1 ~last:99
    Fault.Server_crash Fault.Request;
  Shard.set_fault sh (Some f);
  let msg =
    match
      Shard.atomically ~token:"tok" sh (fun () ->
          List.iter (fun s -> ignore (Shard.exec sh s)) stmts)
    with
    | () -> "no error"
    | exception Db.Sql_error m -> m
  in
  Shard.set_fault sh None;
  Alcotest.(check string)
    "the scoped shard crashed"
    (Printf.sprintf "shard %d crashed before prepare" victim)
    msg;
  Alcotest.(check string) "state is pre" pre (Shard.logical_fingerprint sh);
  Alcotest.(check int) "exactly one crash" 1 (Fault.count f Fault.Server_crash)

let test_checkpoint_suppressed_while_prepared () =
  let db = Db.create () in
  Db.enable_durability ~checkpoint_every:1 ~wal:(Wal.mem ())
    ~checkpoint:(Wal.mem ()) db;
  ignore
    (Db.exec_sql db
       "CREATE TABLE t (id INT NOT NULL, v TEXT, PRIMARY KEY (id))");
  Db.dtxn_begin db;
  ignore (Db.exec_sql db "INSERT INTO t (id, v) VALUES (1, 'x')");
  Alcotest.(check bool) "prepared" true (Db.dtxn_prepare db ~gtid:77);
  Alcotest.(check (list int)) "in doubt" [ 77 ] (Db.prepared_txns db);
  let wal_before = Db.wal_size db in
  Db.checkpoint_now db;
  Alcotest.(check int)
    "checkpoint suppressed while a chunk is in doubt" wal_before
    (Db.wal_size db);
  Db.dtxn_commit db ~gtid:77;
  Alcotest.(check (list int)) "resolved" [] (Db.prepared_txns db)

let test_decision_log_torn_tail () =
  let log = Wal.mem () in
  let c = Two_pc.create ~log in
  let g1 = Two_pc.alloc_gtid c in
  Two_pc.log_commit c ~gtid:g1 ~participants:[ 0; 2 ];
  let valid = String.length (Wal.contents log) in
  Wal.append log "\x07garbage-torn-decision-tail";
  Two_pc.recover c;
  Alcotest.(check int)
    "torn tail truncated" valid
    (String.length (Wal.contents log));
  Alcotest.(check bool) "decision survives" true (Two_pc.decided_commit c g1);
  Alcotest.(check bool)
    "participants restored" true
    (Two_pc.participants c g1 = Some [ 0; 2 ]);
  Alcotest.(check bool) "gtids not reused" true (Two_pc.next_gtid c > g1)

(* --- the harness matrix ---------------------------------------------------- *)

let test_crash_matrix_cell () =
  let c = Sh.run_config ~shards:2 ~checkpoint_every:4 in
  Alcotest.(check int) "70 cases" 70 c.Sh.cfg_cases;
  Alcotest.(check int) "no atomicity violations" 0 c.Sh.cfg_atomicity_violations;
  Alcotest.(check int) "no lost acked writes" 0 c.Sh.cfg_lost_writes;
  Alcotest.(check int) "audit clean" 0 c.Sh.cfg_audit_violations;
  Alcotest.(check int) "every window fired once" 0 c.Sh.cfg_misfires;
  Alcotest.(check int) "exact-once resume" c.Sh.cfg_cases c.Sh.cfg_resume_ok;
  Alcotest.(check int) "replay identical" c.Sh.cfg_cases c.Sh.cfg_replay_ok;
  Alcotest.(check bool)
    "both fates reached" true
    (c.Sh.cfg_applied > 0 && c.Sh.cfg_aborted > 0);
  Alcotest.(check bool)
    "recovery resolved in-doubt both ways" true
    (c.Sh.cfg_in_doubt_committed > 0 && c.Sh.cfg_in_doubt_aborted > 0)

let test_single_shard_identical () =
  Alcotest.(check bool)
    "shards=1 byte-identical to unsharded" true
    (Sh.single_shard_identical ())

(* --- the sharded admission server ----------------------------------------- *)

let test_admission_guards () =
  let sim = Des.create () in
  let sh = Shard.create ~shards:2 () in
  let other = Db.create () in
  (match Adm.create ~sim ~db:other ~sharding:sh () with
  | _ -> Alcotest.fail "foreign db accepted"
  | exception Invalid_argument _ -> ());
  let wal = Wal.mem () in
  let primary = Db.create () in
  Db.enable_durability ~wal ~checkpoint:(Wal.mem ()) primary;
  let repl = Sloth_storage.Replication.create ~sim ~primary () in
  match
    Adm.create ~sim ~db:(Shard.shard_db sh 0) ~sharding:sh ~replication:repl ()
  with
  | _ -> Alcotest.fail "sharding + replication accepted"
  | exception Invalid_argument _ -> ()

let test_served_durable_ack_across_shards () =
  let sh = deployment 3 in
  let sim = Des.create () in
  let srv = Adm.create ~sim ~db:(Shard.shard_db sh 0) ~sharding:sh () in
  let fault = Fault.create (Fault.plan ()) in
  (* the write commits across shards, the ack dies with the process: the
     retransmission must be answered from the durable token registry, which
     now spans every shard *)
  Fault.script fault ~first:1 ~last:1 Fault.Server_crash Fault.Response;
  let ses = Adm.open_session ~fault srv in
  let a, b = split_pair sh in
  let got = ref None in
  let fut =
    Adm.submit ses ~token:"w1"
      [
        parse (Printf.sprintf "UPDATE kv SET n = 501 WHERE id = %d" a);
        parse (Printf.sprintf "UPDATE kv SET n = 502 WHERE id = %d" b);
      ]
  in
  Des.Future.on_resolve fut (fun r -> got := Some r);
  Des.run sim ~until:Float.infinity;
  (match !got with
  | Some (Ok _) -> ()
  | Some (Error e) -> Alcotest.fail ("write failed: " ^ e)
  | None -> Alcotest.fail "no reply");
  Alcotest.(check int) "durable ack" 1 (Adm.stats srv).Adm.durable_acks;
  Alcotest.(check bool)
    "token durable on some shard" true
    (Shard.token_applied sh (Printf.sprintf "s%d:w1" (Adm.session_id ses)));
  Alcotest.(check bool)
    "both rows updated" true
    (Rs.rows
       (Shard.query sh "SELECT id FROM kv WHERE n > 500 ORDER BY id")
    = [ [| Sloth_storage.Value.Int a |]; [| Sloth_storage.Value.Int b |] ])

let test_served_sharded_fuzz () =
  let sv = Sh.served_sharded () in
  Alcotest.(check bool) "crashes happened" true (sv.Sh.sh_crashes > 0);
  Alcotest.(check bool) "2pc exercised" true (sv.Sh.sh_two_pc > 0);
  Alcotest.(check int) "nothing torn at quiescence" 0 sv.Sh.sh_torn;
  Alcotest.(check bool)
    "delivered results match serial replays" true sv.Sh.sh_identical

let () =
  Alcotest.run "sharding"
    [
      ( "routing",
        [
          Alcotest.test_case "partitioning" `Quick test_partitioning;
          Alcotest.test_case "reads match unsharded" `Quick
            test_reads_match_unsharded;
          Alcotest.test_case "gather pushdown toggle" `Quick
            test_gather_pushdown_toggle;
          Alcotest.test_case "logical fingerprint across counts" `Quick
            test_logical_fingerprint_across_counts;
          Alcotest.test_case "pk update rejected" `Quick
            test_pk_update_rejected;
        ] );
      ( "transactions",
        [
          Alcotest.test_case "cross-shard commit and rollback" `Quick
            test_cross_shard_txn_commit_and_rollback;
        ] );
      ( "2pc crashes",
        [
          Alcotest.test_case "coordinator crash before decision" `Quick
            test_coordinator_crash_before_decision;
          Alcotest.test_case "coordinator crash after decision" `Quick
            test_coordinator_crash_after_decision;
          Alcotest.test_case "participant-scoped prepare crash" `Quick
            test_participant_scoped_prepare_crash;
          Alcotest.test_case "checkpoint suppressed while prepared" `Quick
            test_checkpoint_suppressed_while_prepared;
          Alcotest.test_case "decision log torn tail" `Quick
            test_decision_log_torn_tail;
        ] );
      ( "matrix",
        [
          Alcotest.test_case "crash matrix cell" `Slow test_crash_matrix_cell;
          Alcotest.test_case "single shard identical" `Quick
            test_single_shard_identical;
        ] );
      ( "served",
        [
          Alcotest.test_case "admission guards" `Quick test_admission_guards;
          Alcotest.test_case "durable ack across shards" `Quick
            test_served_durable_ack_across_shards;
          Alcotest.test_case "sharded server fuzz" `Slow
            test_served_sharded_fuzz;
        ] );
    ]
