(* Tests for WAL-shipping replication: LSN accounting on the durable
   database, commit taps, snapshot install, stop-and-wait shipping with
   ring/snapshot catch-up, quorum acks, read routing and promotion — plus
   a differential fuzz suite driving the replicated admission layer
   (replica-served reads, seeded primary crashes, promote-on-crash)
   against the LSN-interleaved serial-replay oracle. *)

module Db = Sloth_storage.Database
module Wal = Sloth_storage.Wal
module Repl = Sloth_storage.Replication
module Des = Sloth_net.Des
module Fault = Sloth_net.Fault
module Failover = Sloth_harness.Failover

let durable ?(checkpoint_every = 4) () =
  let db = Db.create () in
  Db.enable_durability ~checkpoint_every ~wal:(Wal.mem ())
    ~checkpoint:(Wal.mem ()) db;
  db

let seed db =
  ignore
    (Db.exec_sql db
       "CREATE TABLE kv (id INT NOT NULL, v TEXT NOT NULL, PRIMARY KEY (id))");
  for i = 1 to 5 do
    ignore
      (Db.exec_sql db
         (Printf.sprintf "INSERT INTO kv (id, v) VALUES (%d, 'r%d')" i i))
  done

let put db i =
  ignore
    (Db.exec_sql db
       (Printf.sprintf "INSERT INTO kv (id, v) VALUES (%d, 'w%d')" i i))

(* --- LSN accounting ------------------------------------------------------- *)

let test_lsn_counts_chunks () =
  let db = durable () in
  Alcotest.(check int) "empty db at lsn 0" 0 (Db.current_lsn db);
  seed db;
  (* one DDL chunk + five single-statement commits *)
  Alcotest.(check int) "seed = 6 chunks" 6 (Db.current_lsn db);
  Db.atomically db (fun () ->
      put db 10;
      put db 11);
  Alcotest.(check int) "txn = one chunk" 7 (Db.current_lsn db);
  Db.crash_restart db;
  Alcotest.(check int) "lsn survives recovery" 7 (Db.current_lsn db);
  Db.checkpoint_now db;
  Db.crash_restart db;
  Alcotest.(check int) "lsn survives checkpoint + recovery (empty WAL)" 7
    (Db.current_lsn db);
  put db 12;
  Alcotest.(check int) "appends resume after recovery" 8 (Db.current_lsn db)

let test_commit_tap () =
  let db = durable () in
  seed db;
  let seen = ref [] in
  Db.set_commit_tap db (Some (fun ~lsn records -> seen := (lsn, records) :: !seen));
  put db 10;
  Db.atomically db (fun () ->
      put db 11;
      put db 12);
  let taps = List.rev !seen in
  Alcotest.(check (list int)) "one tap per chunk, lsn-ordered" [ 7; 8 ]
    (List.map fst taps);
  (* the txn chunk carries both rows inside one Begin..Commit frame run *)
  let sets =
    List.filter (function Wal.Set _ -> true | _ -> false) (snd (List.nth taps 1))
  in
  Alcotest.(check int) "txn chunk has two Set records" 2 (List.length sets);
  Db.set_commit_tap db None;
  put db 13;
  Alcotest.(check int) "cleared tap stays silent" 2 (List.length !seen)

let test_snapshot_install () =
  let src = durable () in
  seed src;
  put src 10;
  let snap = Db.snapshot src in
  let dst = durable () in
  Alcotest.(check bool) "install succeeds" true (Db.install_snapshot dst snap);
  Alcotest.(check string) "fingerprints equal" (Db.fingerprint src)
    (Db.fingerprint dst);
  Alcotest.(check int) "lsn carried over" (Db.current_lsn src)
    (Db.current_lsn dst);
  (* a torn snapshot is rejected and leaves nothing half-applied *)
  let torn = String.sub snap 0 (String.length snap - 3) in
  Alcotest.(check bool) "torn snapshot rejected" false
    (Db.install_snapshot dst torn);
  Alcotest.(check string) "state intact after rejection" (Db.fingerprint src)
    (Db.fingerprint dst);
  (* the installed checkpoint is the replica's own recovery base *)
  Db.crash_restart dst;
  Alcotest.(check string) "replica recovers from installed snapshot"
    (Db.fingerprint src) (Db.fingerprint dst)

(* --- shipping ------------------------------------------------------------- *)

let converged repl =
  let p = Db.fingerprint (Repl.primary repl) in
  List.for_all
    (fun (i : Repl.replica_info) ->
      Db.fingerprint (Repl.replica_db repl i.Repl.id) = p
      && i.Repl.applied_lsn = Repl.primary_lsn repl
      && i.Repl.acked_lsn = Repl.primary_lsn repl)
    (Repl.replicas repl)

let test_shipping_converges () =
  let db = durable () in
  seed db;
  let sim = Des.create () in
  let repl = Repl.create ~sim ~primary:db () in
  ignore (Repl.add_replica ~rtt_ms:0.5 repl);
  ignore (Repl.add_replica ~rtt_ms:2.0 repl);
  for i = 10 to 29 do
    Des.at sim (0.7 *. float_of_int (i - 10)) (fun () -> put db i)
  done;
  Des.run sim ~until:Float.infinity;
  Alcotest.(check bool) "both followers converged" true (converged repl);
  let st = Repl.stats repl in
  Alcotest.(check bool) "chunks shipped" true (st.Repl.chunks_shipped >= 40);
  Alcotest.(check int) "no catch-up snapshots needed" 0
    st.Repl.snapshots_shipped

let test_ring_overflow_snapshot () =
  let db = durable () in
  seed db;
  let sim = Des.create () in
  let repl = Repl.create ~sim ~primary:db ~retain:2 () in
  ignore (Repl.add_replica ~rtt_ms:50.0 repl);
  (* 30 commits land while the follower's first chunk is still in flight:
     its cursor falls out of the 2-chunk ring, forcing checkpoint catch-up *)
  for i = 10 to 39 do
    Des.at sim (0.1 *. float_of_int (i - 10)) (fun () -> put db i)
  done;
  Des.run sim ~until:Float.infinity;
  Alcotest.(check bool) "follower converged" true (converged repl);
  Alcotest.(check bool) "caught up via snapshot" true
    ((Repl.stats repl).Repl.snapshots_shipped > 0)

let test_lossy_link_retransmits () =
  let db = durable () in
  seed db;
  let sim = Des.create () in
  let repl = Repl.create ~sim ~primary:db () in
  let fault = Fault.create (Fault.plan ~drop_p:0.3 ~seed:7 ()) in
  ignore (Repl.add_replica ~rtt_ms:1.0 ~fault repl);
  for i = 10 to 29 do
    Des.at sim (0.5 *. float_of_int (i - 10)) (fun () -> put db i)
  done;
  Des.run sim ~until:Float.infinity;
  Alcotest.(check bool) "lossy follower converged" true (converged repl);
  Alcotest.(check bool) "losses were retried" true
    ((Repl.stats repl).Repl.retransmits > 0)

(* --- quorum acks and routing ---------------------------------------------- *)

let test_quorum_ack () =
  let db = durable () in
  seed db;
  let sim = Des.create () in
  let repl = Repl.create ~sim ~primary:db () in
  ignore (Repl.add_replica ~rtt_ms:1.0 repl);
  ignore (Repl.add_replica ~rtt_ms:40.0 repl);
  put db 10;
  let fired_at = ref (-1.0) in
  Repl.on_quorum repl ~lsn:(Db.current_lsn db) (fun () ->
      fired_at := Des.now sim);
  Alcotest.(check bool) "not fired synchronously" true (!fired_at < 0.0);
  Des.run sim ~until:Float.infinity;
  (* majority of 2 is 1: the fast follower's ack suffices — the callback
     fires around one fast round trip, far before the slow follower's *)
  Alcotest.(check bool) "fired on the fast follower's ack" true
    (!fired_at >= 0.0 && !fired_at < 20.0);
  (* no followers: quorum is vacuous and fires immediately *)
  let db2 = durable () in
  seed db2;
  let repl2 = Repl.create ~sim:(Des.create ()) ~primary:db2 () in
  let now = ref false in
  Repl.on_quorum repl2 ~lsn:(Db.current_lsn db2) (fun () -> now := true);
  Alcotest.(check bool) "vacuous quorum fires inline" true !now

let test_route_read () =
  let db = durable () in
  seed db;
  let sim = Des.create () in
  let repl = Repl.create ~sim ~primary:db () in
  let fast = Repl.add_replica ~rtt_ms:0.2 repl in
  let slow = Repl.add_replica ~rtt_ms:30.0 repl in
  for i = 10 to 19 do
    Des.at sim (0.4 *. float_of_int (i - 10)) (fun () -> put db i)
  done;
  (* stop mid-flight: the fast follower is caught up, the slow one is not *)
  Des.run sim ~until:8.0;
  let plsn = Repl.primary_lsn repl in
  let applied id =
    (List.find (fun (i : Repl.replica_info) -> i.Repl.id = id)
       (Repl.replicas repl))
      .Repl.applied_lsn
  in
  Alcotest.(check bool) "slow follower lags" true (applied slow < plsn);
  (match Repl.route_read repl ~min_lsn:plsn with
  | Some (id, rdb) ->
      Alcotest.(check int) "floor at head routes to the caught-up one" fast id;
      Alcotest.(check bool) "routed db has applied the floor" true
        (Db.current_lsn rdb >= plsn)
  | None -> Alcotest.fail "expected the fast follower to qualify");
  (match Repl.route_read repl ~min_lsn:0 with
  | Some (id, _) ->
      Alcotest.(check int) "low floor still picks most caught-up" fast id
  | None -> Alcotest.fail "any follower qualifies at floor 0");
  Alcotest.(check bool) "unreachable floor routes nowhere" true
    (Repl.route_read repl ~min_lsn:(plsn + 1) = None)

let test_promote_most_caught_up () =
  let db = durable () in
  seed db;
  let sim = Des.create () in
  let repl = Repl.create ~sim ~primary:db () in
  let fast = Repl.add_replica ~rtt_ms:0.2 repl in
  ignore (Repl.add_replica ~rtt_ms:30.0 repl);
  for i = 10 to 19 do
    Des.at sim (0.4 *. float_of_int (i - 10)) (fun () -> put db i)
  done;
  Des.run sim ~until:8.0;
  let applied_before =
    List.fold_left
      (fun acc (i : Repl.replica_info) -> max acc i.Repl.applied_lsn)
      0 (Repl.replicas repl)
  in
  Alcotest.(check bool) "promotion quorum present" true (Repl.can_promote repl);
  let ndb, id, _replayed = Repl.promote repl in
  Alcotest.(check int) "most caught-up follower promoted" fast id;
  Alcotest.(check bool) "new primary is the shipper's primary" true
    (ndb == Repl.primary repl);
  Alcotest.(check int) "new primary stands at its applied lsn" applied_before
    (Db.current_lsn ndb);
  Alcotest.(check int) "promoted follower left the fleet" 1
    (Repl.n_replicas repl);
  (* the old timeline's unreplicated tail is gone; the survivor re-syncs
     from the new primary and the pair converges *)
  put ndb 50;
  Des.run sim ~until:Float.infinity;
  Alcotest.(check bool) "survivor converged on the new timeline" true
    (converged repl)

(* --- the replicated served fuzz ------------------------------------------- *)

(* One deterministic end-to-end case, kept as a plain unit test so a
   regression fails loudly outside the fuzz harness too. *)
let test_served_failover_end_to_end () =
  let c =
    Failover.run ~label:"unit" ~sessions:4 ~ro_sessions:2 ~batches:10
      ~crash:0.08 ~checkpoint_every:2 ~rtts:[ 0.4; 1.0; 3.0 ] ~seed:42 ()
  in
  Alcotest.(check bool) "at least one promotion" true (c.Failover.fc_failovers > 0);
  Alcotest.(check bool) "replicas served reads" true
    (c.Failover.fc_replica_batches > 0);
  Alcotest.(check int) "no lost acked writes" 0 c.Failover.fc_lost_writes;
  Alcotest.(check int) "no RYW violations" 0 c.Failover.fc_ryw_violations;
  Alcotest.(check int) "no torn batches at quiescence" 0 c.Failover.fc_torn;
  Alcotest.(check bool) "identical to the oracle" true c.Failover.fc_identical;
  Alcotest.(check bool) "fleet converged" true c.Failover.fc_converged

(* The interleaved-vs-serial-replay fuzz, extended with replica lag and
   primary-kill crash points: every case runs closed-loop sessions against
   a replicated server under seeded random crashes (the fault plan draws
   request / mid-batch / response crash legs) and must come out clean
   against the LSN-interleaved oracle.  350 cases x (lag profile x crash
   rate x checkpoint interval) sweeps the space the issue asks for. *)
let lag_profiles =
  [
    ([ 0.3; 0.6; 0.9 ], 0.0);  (* balanced fleet *)
    ([ 0.2; 2.0; 5.0 ], 0.0);  (* skewed: one fast, two laggards *)
    ([ 0.5; 1.0 ], 0.15);  (* two followers behind lossy links *)
    ([ 6.0 ], 0.0);  (* single slow follower: every ack waits on it *)
  ]

let case_print (seed, ck, (rtts, drop), crash) =
  Printf.sprintf "seed=%d ck=%d rtts=[%s] drop=%.2f crash=%.2f" seed ck
    (String.concat ";" (List.map (Printf.sprintf "%.1f") rtts))
    drop crash

let fuzz_replicated_failover =
  QCheck.Test.make ~count:350 ~name:"replicated serving vs LSN-interleaved oracle"
    QCheck.(
      set_print case_print
        (quad (int_bound 99999)
           (oneofl [ 1; 2; 4; 0 ])
           (oneofl lag_profiles)
           (oneofl [ 0.0; 0.04; 0.1 ])))
    (fun (seed, ck, (rtts, drop), crash) ->
      let c =
        Failover.run ~label:"fuzz" ~sessions:3 ~ro_sessions:1 ~batches:6
          ~crash ~checkpoint_every:ck ~rtts ~drop ~seed ()
      in
      if c.Failover.fc_lost_writes <> 0 then
        QCheck.Test.fail_reportf "%d acked writes lost" c.Failover.fc_lost_writes;
      if c.Failover.fc_ryw_violations <> 0 then
        QCheck.Test.fail_reportf "%d read-your-writes violations"
          c.Failover.fc_ryw_violations;
      if c.Failover.fc_torn <> 0 then
        QCheck.Test.fail_reportf "%d batches torn at quiescence"
          c.Failover.fc_torn;
      if not c.Failover.fc_identical then
        QCheck.Test.fail_reportf
          "delivered results diverge from the serial replay";
      if not c.Failover.fc_converged then
        QCheck.Test.fail_reportf "follower fleet did not converge";
      true)

let () =
  Alcotest.run "replication"
    [
      ( "lsn",
        [
          Alcotest.test_case "lsn counts committed chunks" `Quick
            test_lsn_counts_chunks;
          Alcotest.test_case "commit tap fires per chunk" `Quick
            test_commit_tap;
          Alcotest.test_case "snapshot install" `Quick test_snapshot_install;
        ] );
      ( "shipping",
        [
          Alcotest.test_case "stop-and-wait converges" `Quick
            test_shipping_converges;
          Alcotest.test_case "ring overflow falls back to snapshot" `Quick
            test_ring_overflow_snapshot;
          Alcotest.test_case "lossy link retransmits" `Quick
            test_lossy_link_retransmits;
        ] );
      ( "quorum",
        [
          Alcotest.test_case "quorum ack" `Quick test_quorum_ack;
          Alcotest.test_case "read routing" `Quick test_route_read;
          Alcotest.test_case "promote most caught-up" `Quick
            test_promote_most_caught_up;
        ] );
      ( "served",
        [
          Alcotest.test_case "end-to-end failover run" `Quick
            test_served_failover_end_to_end;
        ] );
      ( "fuzz",
        List.map QCheck_alcotest.to_alcotest [ fuzz_replicated_failover ] );
    ]
