(* Tests for the driver layer: wire accounting of the simple and batch
   protocols, error behaviour, and the asynchronous (prefetch) API. *)

module Db = Sloth_storage.Database
module Rs = Sloth_storage.Result_set
module Vclock = Sloth_net.Vclock
module Stats = Sloth_net.Stats
module Link = Sloth_net.Link
module Conn = Sloth_driver.Connection

let setup ?(rtt_ms = 0.5) () =
  let db = Db.create () in
  ignore
    (Db.exec_sql db
       "CREATE TABLE t (id INT NOT NULL, v TEXT NOT NULL, PRIMARY KEY (id))");
  for i = 1 to 50 do
    ignore
      (Db.exec_sql db
         (Printf.sprintf "INSERT INTO t (id, v) VALUES (%d, 'v%d')" i i))
  done;
  let clock = Vclock.create () in
  let link = Link.create ~rtt_ms clock in
  (db, clock, link, Conn.create db link)

let test_execute_accounting () =
  let _db, clock, link, conn = setup () in
  let outcome = Conn.execute_sql conn "SELECT * FROM t WHERE id = 1" in
  Alcotest.(check int) "one row" 1 (Rs.num_rows outcome.rs);
  Alcotest.(check int) "one trip" 1 (Stats.round_trips (Link.stats link));
  Alcotest.(check bool) "network charged" true
    (Vclock.elapsed clock Vclock.Network >= 0.5);
  Alcotest.(check bool) "db charged" true (Vclock.elapsed clock Vclock.Db > 0.0);
  Alcotest.(check bool) "app charged" true
    (Vclock.elapsed clock Vclock.App > 0.0)

let test_batch_one_trip () =
  let _db, _clock, link, conn = setup () in
  let outcomes =
    Conn.execute_batch_sql conn
      (List.init 8 (fun i -> Printf.sprintf "SELECT * FROM t WHERE id = %d" (i + 1)))
  in
  Alcotest.(check int) "8 outcomes" 8 (List.length outcomes);
  Alcotest.(check int) "one trip" 1 (Stats.round_trips (Link.stats link));
  Alcotest.(check int) "8 queries counted" 8 (Stats.queries (Link.stats link));
  Alcotest.(check int) "max batch" 8 (Stats.max_batch (Link.stats link))

let test_empty_batch () =
  let _db, clock, link, conn = setup () in
  let before = Vclock.total clock in
  Alcotest.(check int) "no outcomes" 0 (List.length (Conn.execute_batch conn []));
  Alcotest.(check int) "no trip" 0 (Stats.round_trips (Link.stats link));
  Alcotest.(check (float 1e-9)) "no time" before (Vclock.total clock)

let test_batch_reads_parallel_writes_serial () =
  let _db, clock, _link, conn = setup () in
  let t0 = Vclock.elapsed clock Vclock.Db in
  ignore
    (Conn.execute_batch_sql conn
       [ "SELECT * FROM t"; "SELECT * FROM t"; "SELECT * FROM t" ]);
  let parallel_reads = Vclock.elapsed clock Vclock.Db -. t0 in
  let t1 = Vclock.elapsed clock Vclock.Db in
  ignore (Conn.execute_sql conn "SELECT * FROM t");
  let single = Vclock.elapsed clock Vclock.Db -. t1 in
  (* Three identical reads in parallel cost barely more than one. *)
  Alcotest.(check bool)
    (Printf.sprintf "parallel (%f) < 2x single (%f)" parallel_reads single)
    true
    (parallel_reads < 2.0 *. single)

let test_batch_preserves_order () =
  let db, _clock, _link, conn = setup () in
  ignore
    (Conn.execute_batch_sql conn
       [
         "SELECT v FROM t WHERE id = 1";
         "UPDATE t SET v = 'changed' WHERE id = 1";
       ]);
  (* The read ran before the write (reads first). *)
  let rs = Db.query db "SELECT v FROM t WHERE id = 1" in
  Alcotest.(check string) "write applied" "changed"
    (Sloth_storage.Value.to_string (Rs.cell rs ~row:0 "v"))

let test_server_error_still_costs () =
  let _db, _clock, link, conn = setup () in
  (match Conn.execute_sql conn "SELECT * FROM missing" with
  | exception Conn.Server_error _ -> ()
  | _ -> Alcotest.fail "expected server error");
  Alcotest.(check int) "failed trip recorded" 1
    (Stats.round_trips (Link.stats link))

let test_batch_error_still_costs () =
  let _db, clock, link, conn = setup () in
  (match
     Conn.execute_batch_sql conn
       [ "SELECT * FROM t WHERE id = 1"; "SELECT * FROM missing" ]
   with
  | exception Conn.Server_error _ -> ()
  | _ -> Alcotest.fail "expected server error");
  Alcotest.(check int) "failed trip recorded" 1
    (Stats.round_trips (Link.stats link));
  Alcotest.(check bool) "network time charged" true
    (Vclock.elapsed clock Vclock.Network >= 0.5)

let test_payload_grows_with_result () =
  let _db, _clock, link, conn = setup () in
  ignore (Conn.execute_sql conn "SELECT * FROM t WHERE id = 1");
  let small = Stats.bytes (Link.stats link) in
  Stats.reset (Link.stats link);
  ignore (Conn.execute_sql conn "SELECT * FROM t");
  let big = Stats.bytes (Link.stats link) in
  Alcotest.(check bool) "bigger result, bigger payload" true (big > small)

let test_async_overlap_and_order () =
  let _db, clock, _link, conn = setup ~rtt_ms:5.0 () in
  let h1 = Conn.execute_async conn (Sloth_sql.Parser.parse "SELECT * FROM t WHERE id = 1") in
  let h2 = Conn.execute_async conn (Sloth_sql.Parser.parse "SELECT * FROM t WHERE id = 2") in
  (* Computation covering the round trip. *)
  Vclock.advance clock Vclock.App 20.0;
  let net_before = Vclock.elapsed clock Vclock.Network in
  let o1 = Conn.await conn h1 in
  let o2 = Conn.await conn h2 in
  Alcotest.(check (float 1e-9)) "fully hidden" net_before
    (Vclock.elapsed clock Vclock.Network);
  Alcotest.(check int) "results intact" 1 (Rs.num_rows o1.rs);
  Alcotest.(check int) "results intact 2" 1 (Rs.num_rows o2.rs);
  (* Awaiting twice is idempotent. *)
  ignore (Conn.await conn h1);
  Alcotest.(check (float 1e-9)) "idempotent await" net_before
    (Vclock.elapsed clock Vclock.Network)

let test_async_unhidden_wait () =
  let _db, clock, _link, conn = setup ~rtt_ms:5.0 () in
  let h = Conn.execute_async conn (Sloth_sql.Parser.parse "SELECT * FROM t WHERE id = 1") in
  ignore (Conn.await conn h);
  Alcotest.(check bool) "waited most of the rtt" true
    (Vclock.elapsed clock Vclock.Network > 3.0)

let () =
  Alcotest.run "driver"
    [
      ( "simple protocol",
        [
          Alcotest.test_case "accounting" `Quick test_execute_accounting;
          Alcotest.test_case "error costs" `Quick test_server_error_still_costs;
          Alcotest.test_case "payload size" `Quick test_payload_grows_with_result;
        ] );
      ( "batch protocol",
        [
          Alcotest.test_case "one trip" `Quick test_batch_one_trip;
          Alcotest.test_case "empty batch" `Quick test_empty_batch;
          Alcotest.test_case "batch error costs" `Quick
            test_batch_error_still_costs;
          Alcotest.test_case "parallel reads" `Quick
            test_batch_reads_parallel_writes_serial;
          Alcotest.test_case "order preserved" `Quick test_batch_preserves_order;
        ] );
      ( "async protocol",
        [
          Alcotest.test_case "overlap" `Quick test_async_overlap_and_order;
          Alcotest.test_case "unhidden wait" `Quick test_async_unhidden_wait;
        ] );
    ]
