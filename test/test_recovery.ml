(* Tests for the durability subsystem: WAL framing and torn-tail detection,
   checkpointed recovery, server-crash injection at every leg, and
   exactly-once resume of idempotent batches across a crash. *)

module Db = Sloth_storage.Database
module Wal = Sloth_storage.Wal
module Rs = Sloth_storage.Result_set
module Vclock = Sloth_net.Vclock
module Link = Sloth_net.Link
module Fault = Sloth_net.Fault
module Conn = Sloth_driver.Connection

let some_records =
  [
    Wal.Begin 7;
    Wal.Set { table = "t"; rid = 3; row = Some [| Sloth_storage.Value.Int 1 |] };
    Wal.Set { table = "t"; rid = 4; row = None };
    Wal.Token "tok-1";
    Wal.Commit 7;
  ]

(* --- WAL framing ---------------------------------------------------------- *)

let test_wal_roundtrip () =
  let store = Wal.mem () in
  Wal.append_records store some_records;
  Wal.append_records store [ Wal.Begin 8; Wal.Commit 8 ];
  let records, valid = Wal.scan (Wal.contents store) in
  Alcotest.(check int)
    "all bytes valid" valid
    (String.length (Wal.contents store));
  Alcotest.(check bool)
    "records round-trip" true
    (records = some_records @ [ Wal.Begin 8; Wal.Commit 8 ])

let test_wal_torn_tail_every_offset () =
  let chunk1 = Wal.encode [ Wal.Begin 1; Wal.Commit 1 ] in
  let chunk2 = Wal.encode some_records in
  (* one record = one frame; tearing anywhere inside it must lose exactly
     this record and nothing before it *)
  let tail =
    Wal.encode
      [
        Wal.Set
          {
            table = "t";
            rid = 9;
            row =
              Some
                [| Sloth_storage.Value.Text "hello"; Sloth_storage.Value.Int 5 |];
          };
      ]
  in
  let base = chunk1 ^ chunk2 in
  let base_records, base_valid = Wal.scan base in
  Alcotest.(check int) "base fully valid" (String.length base) base_valid;
  (* Truncating the tail record at EVERY byte offset must leave exactly the
     complete prefix: same records, same valid length, no exception. *)
  for off = 0 to String.length tail - 1 do
    let log = base ^ String.sub tail 0 off in
    let records, valid = Wal.scan log in
    Alcotest.(check int)
      (Printf.sprintf "valid prefix at offset %d" off)
      (String.length base) valid;
    Alcotest.(check bool)
      (Printf.sprintf "records at offset %d" off)
      true
      (records = base_records)
  done;
  (* ... and the untruncated log parses in full. *)
  let _, valid = Wal.scan (base ^ tail) in
  Alcotest.(check int) "full log valid" (String.length (base ^ tail)) valid

let test_wal_corrupt_byte () =
  let chunk1 = Wal.encode [ Wal.Begin 1; Wal.Commit 1 ] in
  let chunk2 = Wal.encode some_records in
  let log = Bytes.of_string (chunk1 ^ chunk2) in
  (* flip a payload byte inside the second chunk: its checksum must fail *)
  let pos = String.length chunk1 + 9 in
  Bytes.set log pos (Char.chr (Char.code (Bytes.get log pos) lxor 0xff));
  let records, valid = Wal.scan (Bytes.to_string log) in
  Alcotest.(check int) "stops at corruption" (String.length chunk1) valid;
  Alcotest.(check bool) "keeps clean prefix" true
    (records = [ Wal.Begin 1; Wal.Commit 1 ])

let test_wal_garbage_resistant () =
  (* Arbitrary garbage must never raise, only yield an empty prefix. *)
  let garbage =
    [ ""; "x"; "\x00\x00\x00\x04ABCDEFGH"; String.make 64 '\xff' ]
  in
  List.iter
    (fun g ->
      let records, valid = Wal.scan g in
      Alcotest.(check bool) "no records from garbage" true (records = []);
      Alcotest.(check int) "no valid bytes" 0 valid)
    garbage

(* --- database recovery ---------------------------------------------------- *)

let seeded_durable ?(checkpoint_every = 0) () =
  let db = Db.create () in
  Db.enable_durability ~checkpoint_every ~wal:(Wal.mem ())
    ~checkpoint:(Wal.mem ()) db;
  ignore
    (Db.exec_sql db
       "CREATE TABLE t (id INT NOT NULL, v TEXT NOT NULL, PRIMARY KEY (id))");
  Db.create_index db ~table:"t" ~column:"v";
  for i = 1 to 10 do
    ignore
      (Db.exec_sql db
         (Printf.sprintf "INSERT INTO t (id, v) VALUES (%d, 'v%d')" i i))
  done;
  db

let test_recovery_replays_log () =
  let db = seeded_durable () in
  ignore (Db.exec_sql db "UPDATE t SET v = 'x' WHERE id = 3");
  ignore (Db.exec_sql db "DELETE FROM t WHERE id = 5");
  let before = Db.fingerprint db in
  Db.crash_restart db;
  Alcotest.(check string) "state survives crash" before (Db.fingerprint db);
  let stats = Option.get (Db.last_recovery db) in
  Alcotest.(check bool) "no checkpoint used" false stats.Db.from_checkpoint;
  Alcotest.(check bool) "replayed txns" true (stats.Db.replayed_txns > 0);
  (* the secondary index was rebuilt, not just the heap *)
  let rs = Db.query db "SELECT id FROM t WHERE v = 'x'" in
  Alcotest.(check int) "index answers after recovery" 1 (Rs.num_rows rs)

let test_recovery_from_checkpoint () =
  let db = seeded_durable ~checkpoint_every:4 () in
  ignore (Db.exec_sql db "UPDATE t SET v = 'y' WHERE id = 1");
  let before = Db.fingerprint db in
  Db.crash_restart db;
  Alcotest.(check string) "state survives crash" before (Db.fingerprint db);
  let stats = Option.get (Db.last_recovery db) in
  Alcotest.(check bool) "checkpoint used" true stats.Db.from_checkpoint;
  Alcotest.(check bool)
    "checkpoint bounds replay" true
    (stats.Db.replayed_txns <= 4)

let test_recovery_discards_uncommitted () =
  let db = seeded_durable () in
  let before = Db.fingerprint db in
  ignore (Db.exec_sql db "BEGIN");
  ignore (Db.exec_sql db "UPDATE t SET v = 'dirty' WHERE id = 2");
  ignore (Db.exec_sql db "DELETE FROM t WHERE id = 7");
  Db.crash_restart db;
  Alcotest.(check string)
    "open transaction vanishes" before (Db.fingerprint db)

let test_recovery_truncates_torn_tail () =
  let wal = Wal.mem () and ck = Wal.mem () in
  let db = Db.create () in
  Db.enable_durability ~checkpoint_every:0 ~wal ~checkpoint:ck db;
  ignore (Db.exec_sql db "CREATE TABLE t (id INT NOT NULL, PRIMARY KEY (id))");
  ignore (Db.exec_sql db "INSERT INTO t (id) VALUES (1)");
  let clean = Wal.contents wal in
  ignore (Db.exec_sql db "INSERT INTO t (id) VALUES (2)");
  (* tear the last commit's frame in half, as a crash mid-append would *)
  let torn = String.sub (Wal.contents wal) 0 (String.length clean + 5) in
  Wal.write_all wal torn;
  Db.crash_restart db;
  Alcotest.(check int) "only committed rows" 1 (Db.row_count db "t");
  let stats = Option.get (Db.last_recovery db) in
  Alcotest.(check int) "tail truncated" 5 stats.Db.discarded_bytes;
  Alcotest.(check int)
    "log physically trimmed"
    (String.length clean)
    (String.length (Wal.contents wal));
  (* the trimmed log keeps accepting appends *)
  ignore (Db.exec_sql db "INSERT INTO t (id) VALUES (3)");
  Db.crash_restart db;
  Alcotest.(check int) "append after trim" 2 (Db.row_count db "t")

let test_rid_stability_across_recovery () =
  (* rid allocation must continue where it left off, or replayed Set
     records and fresh inserts would collide *)
  let db = seeded_durable () in
  ignore (Db.exec_sql db "DELETE FROM t WHERE id = 10");
  Db.crash_restart db;
  ignore (Db.exec_sql db "INSERT INTO t (id, v) VALUES (11, 'v11')");
  let shadow = Db.create () in
  ignore
    (Db.exec_sql shadow
       "CREATE TABLE t (id INT NOT NULL, v TEXT NOT NULL, PRIMARY KEY (id))");
  Db.create_index shadow ~table:"t" ~column:"v";
  for i = 1 to 10 do
    ignore
      (Db.exec_sql shadow
         (Printf.sprintf "INSERT INTO t (id, v) VALUES (%d, 'v%d')" i i))
  done;
  ignore (Db.exec_sql shadow "DELETE FROM t WHERE id = 10");
  ignore (Db.exec_sql shadow "INSERT INTO t (id, v) VALUES (11, 'v11')");
  Alcotest.(check string)
    "same rids as an uncrashed run" (Db.fingerprint shadow) (Db.fingerprint db)

let test_crash_without_durability_wipes () =
  let db = Db.create () in
  ignore (Db.exec_sql db "CREATE TABLE t (id INT NOT NULL, PRIMARY KEY (id))");
  ignore (Db.exec_sql db "INSERT INTO t (id) VALUES (1)");
  Db.crash_restart db;
  Alcotest.(check int) "everything was volatile" 0 (Db.row_count db "t");
  Alcotest.(check (list string)) "no tables left" [] (Db.table_names db)

let test_file_store_roundtrip () =
  let dir = Filename.temp_file "sloth_wal" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let wal_path = Filename.concat dir "wal.log"
  and ck_path = Filename.concat dir "checkpoint.bin" in
  let before =
    let db = Db.create () in
    Db.enable_durability ~checkpoint_every:3 ~wal:(Wal.file wal_path)
      ~checkpoint:(Wal.file ck_path) db;
    ignore
      (Db.exec_sql db "CREATE TABLE t (id INT NOT NULL, PRIMARY KEY (id))");
    for i = 1 to 7 do
      ignore
        (Db.exec_sql db (Printf.sprintf "INSERT INTO t (id) VALUES (%d)" i))
    done;
    Db.fingerprint db
  in
  (* a brand-new process: attach to the same files and recover *)
  let db2 = Db.create () in
  Db.enable_durability ~checkpoint_every:3 ~wal:(Wal.file wal_path)
    ~checkpoint:(Wal.file ck_path) db2;
  Alcotest.(check string) "recovered from disk" before (Db.fingerprint db2);
  Sys.remove wal_path;
  Sys.remove ck_path;
  Sys.rmdir dir

(* --- crash injection through the connection ------------------------------- *)

let conn_setup ?(checkpoint_every = 2) () =
  let db = seeded_durable ~checkpoint_every () in
  let link = Link.create ~rtt_ms:0.5 (Vclock.create ()) in
  let conn = Conn.create db link in
  Conn.set_retry_policy conn Conn.Retry_policy.no_retry;
  (db, link, conn)

let batch =
  List.map Sloth_sql.Parser.parse
    [
      "INSERT INTO t (id, v) VALUES (11, 'v11')";
      "UPDATE t SET v = 'z' WHERE id = 1";
      "DELETE FROM t WHERE id = 9";
    ]

let crash_on ~leg (db, link, conn) =
  let pre = Db.fingerprint db in
  let fault = Fault.create (Fault.plan ()) in
  Fault.script fault ~first:1 ~last:1 Fault.Server_crash leg;
  Link.set_fault link (Some fault);
  (match Conn.execute_batch ~token:"tok" conn batch with
  | _ -> Alcotest.fail "crash did not surface"
  | exception Conn.Retries_exhausted { last; _ } ->
      Alcotest.(check string) "crash named" "server-crash" last);
  Link.set_fault link None;
  pre

let post_fingerprint () =
  let db = seeded_durable () in
  Db.atomically db (fun () -> List.iter (fun s -> ignore (Db.exec db s)) batch);
  Db.fingerprint db

let test_crash_request_leg () =
  let ((db, _, _) as s) = conn_setup () in
  let pre = crash_on ~leg:Fault.Request s in
  Alcotest.(check string) "nothing applied" pre (Db.fingerprint db)

let test_crash_mid_batch () =
  let ((db, _, _) as s) = conn_setup () in
  let pre = crash_on ~leg:(Fault.Mid_batch 2) s in
  Alcotest.(check string)
    "partial batch rolled back by recovery" pre (Db.fingerprint db);
  Alcotest.(check bool) "token not durable" false (Db.token_applied db "tok")

let test_crash_response_leg () =
  let ((db, _, _) as s) = conn_setup () in
  let _pre = crash_on ~leg:Fault.Response s in
  Alcotest.(check string)
    "batch committed before crash" (post_fingerprint ()) (Db.fingerprint db);
  Alcotest.(check bool) "token durable" true (Db.token_applied db "tok")

let test_resume_exactly_once () =
  (* whichever side of the batch the crash fell on, retransmitting the same
     token must land on exactly the post state *)
  List.iter
    (fun leg ->
      let ((db, link, _) as s) = conn_setup () in
      ignore (crash_on ~leg s);
      let conn2 = Conn.create db link in
      ignore (Conn.execute_batch ~token:"tok" conn2 batch);
      Alcotest.(check string)
        "retransmit converges on post state" (post_fingerprint ())
        (Db.fingerprint db);
      (* a second retransmit is also answered without re-applying *)
      ignore (Conn.execute_batch ~token:"tok" conn2 batch);
      Alcotest.(check string)
        "idempotent thereafter" (post_fingerprint ()) (Db.fingerprint db))
    [ Fault.Request; Fault.Mid_batch 1; Fault.Mid_batch 99; Fault.Response ]

(* Property: recovery truncates a torn tail, and the log accepts appends
   afterwards — a fresh scan yields exactly the surviving prefix followed
   by the new chunks, consumes every byte (no garbage embedded mid-log),
   and the LSN resumes monotonically, one per appended commit.  This is
   the contract WAL shipping leans on: a promoted replica replays its own
   tail and then appends its new reign's chunks to the same store. *)
let fuzz_wal_append_after_recovery =
  QCheck.Test.make ~count:200 ~name:"wal append after torn-tail recovery"
    QCheck.(
      triple (int_bound 12) (int_bound 500) (1 -- 10)
      |> set_print (fun (b, c, a) ->
             Printf.sprintf "before=%d cut_back=%d after=%d" b c a))
    (fun (n_before, cut_back, n_after) ->
      let wal = Wal.mem () in
      let db = Db.create () in
      Db.enable_durability ~checkpoint_every:0 ~wal ~checkpoint:(Wal.mem ())
        db;
      ignore
        (Db.exec_sql db
           "CREATE TABLE t (id INT NOT NULL, v TEXT, PRIMARY KEY (id))");
      let ddl_len = String.length (Wal.contents wal) in
      for i = 1 to n_before do
        ignore
          (Db.exec_sql db
             (Printf.sprintf "INSERT INTO t (id, v) VALUES (%d, 'a%d')" i i))
      done;
      let full = Wal.contents wal in
      let cut = max ddl_len (String.length full - cut_back) in
      Wal.write_all wal (String.sub full 0 cut);
      let prefix, _ = Wal.scan (String.sub full 0 cut) in
      let lsn_before = Db.current_lsn db in
      Db.crash_restart db;
      let lsn_rec = Db.current_lsn db in
      if lsn_rec > lsn_before then
        QCheck.Test.fail_reportf "recovery raised the lsn (%d -> %d)"
          lsn_before lsn_rec;
      let recs0, v0 = Wal.scan (Wal.contents wal) in
      if recs0 <> prefix then
        QCheck.Test.fail_reportf "recovery changed the surviving prefix";
      if v0 <> String.length (Wal.contents wal) then
        QCheck.Test.fail_reportf "recovery left torn bytes in the store";
      for i = 1 to n_after do
        ignore
          (Db.exec_sql db
             (Printf.sprintf "INSERT INTO t (id, v) VALUES (%d, 'b%d')"
                (1000 + i) i))
      done;
      if Db.current_lsn db <> lsn_rec + n_after then
        QCheck.Test.fail_reportf
          "lsn not monotonic by chunk: %d after %d + %d appends"
          (Db.current_lsn db) lsn_rec n_after;
      let recs, valid = Wal.scan (Wal.contents wal) in
      if valid <> String.length (Wal.contents wal) then
        QCheck.Test.fail_reportf "appended log does not scan to the end";
      let rec take n = function
        | x :: tl when n > 0 -> x :: take (n - 1) tl
        | _ -> []
      in
      if take (List.length prefix) recs <> prefix then
        QCheck.Test.fail_reportf "appends disturbed the recovered prefix";
      let commits l =
        List.length (List.filter (function Wal.Commit _ -> true | _ -> false) l)
      in
      if commits recs <> commits prefix + n_after then
        QCheck.Test.fail_reportf "expected %d new committed chunks" n_after;
      true)

(* Property: two logical streams on separate stores — a data WAL carrying
   [Begin .. Prepare/Commit] chunks and a decision log carrying [Decision]
   records — never cross-corrupt, however their appends interleave.  Each
   store scans to exactly what was appended to it, and a torn tail on one
   (truncated to an arbitrary byte cut) still scans to a frame-aligned
   prefix of its own stream while the other store stays byte-intact.  This
   is the isolation the sharded deployment leans on: every shard's WAL and
   the coordinator's decision log are independent failure domains. *)
let fuzz_two_stream_isolation =
  QCheck.Test.make ~count:200 ~name:"two-stream wal isolation"
    QCheck.(
      triple (1 -- 12) (int_bound 300) bool
      |> set_print (fun (n, c, d) ->
             Printf.sprintf "chunks=%d cut_back=%d tear_data=%b" n c d))
    (fun (n_chunks, cut_back, tear_data) ->
      let data = Wal.mem () and decisions = Wal.mem () in
      let expect_data = ref [] and expect_dec = ref [] in
      for i = 1 to n_chunks do
        let chunk =
          [
            Wal.Begin i;
            Wal.Set
              {
                table = "t";
                rid = i;
                row = Some [| Sloth_storage.Value.Int i |];
              };
          ]
          @ (if i mod 4 = 0 then [ Wal.Token (Printf.sprintf "tok-%d" i) ]
             else [])
          @ [ (if i mod 3 = 0 then Wal.Prepare i else Wal.Commit i) ]
        in
        Wal.append_records data chunk;
        expect_data := !expect_data @ chunk;
        if i mod 2 = 0 then begin
          let d = [ Wal.Decision { gtid = i; participants = [ 0; i mod 4 ] } ] in
          Wal.append_records decisions d;
          expect_dec := !expect_dec @ d
        end
      done;
      let check_intact store expected label =
        let recs, valid = Wal.scan (Wal.contents store) in
        if recs <> expected then
          QCheck.Test.fail_reportf "%s stream altered by the other" label;
        if valid <> String.length (Wal.contents store) then
          QCheck.Test.fail_reportf "%s stream does not scan to the end" label
      in
      check_intact data !expect_data "data";
      check_intact decisions !expect_dec "decision";
      (* tear one stream; the other must stay byte-intact *)
      let victim, survivor, v_expect, s_expect =
        if tear_data then (data, decisions, !expect_data, !expect_dec)
        else (decisions, data, !expect_dec, !expect_data)
      in
      let full = Wal.contents victim in
      let cut = max 0 (String.length full - cut_back) in
      Wal.write_all victim (String.sub full 0 cut);
      let torn_recs, torn_valid = Wal.scan (Wal.contents victim) in
      let rec is_prefix p l =
        match (p, l) with
        | [], _ -> true
        | x :: p', y :: l' -> x = y && is_prefix p' l'
        | _ -> false
      in
      if not (is_prefix torn_recs v_expect) then
        QCheck.Test.fail_reportf "torn scan is not a prefix of its stream";
      if torn_valid > cut then
        QCheck.Test.fail_reportf "torn scan claims more bytes than survived";
      check_intact survivor s_expect "surviving";
      true)

(* The recovery counters are per-call deltas: each crash reports only the
   work replayed beyond the previous recovery's watermark, and a checkpoint
   (which truncates the log) resets it. *)
let test_recovery_delta_stats () =
  let db = Db.create () in
  Db.enable_durability ~checkpoint_every:0 ~wal:(Wal.mem ())
    ~checkpoint:(Wal.mem ()) db;
  ignore
    (Db.exec_sql db
       "CREATE TABLE t (id INT NOT NULL, v TEXT, PRIMARY KEY (id))");
  let insert i =
    ignore
      (Db.exec_sql db
         (Printf.sprintf "INSERT INTO t (id, v) VALUES (%d, 'v%d')" i i))
  in
  let crash_delta () =
    Db.crash_restart db;
    match Db.last_recovery db with
    | Some s -> (s.Db.replayed_txns, s.Db.replayed_records)
    | None -> Alcotest.fail "no recovery stats"
  in
  insert 1;
  insert 2;
  insert 3;
  let txns, records = crash_delta () in
  Alcotest.(check int) "first crash replays the three commits" 3 txns;
  Alcotest.(check bool) "and their records" true (records > 0);
  Alcotest.(check (pair int int))
    "second crash with no new work replays nothing" (0, 0) (crash_delta ());
  insert 4;
  insert 5;
  Alcotest.(check int)
    "only the two new commits count" 2
    (fst (crash_delta ()));
  Db.checkpoint_now db;
  Alcotest.(check (pair int int))
    "a checkpoint resets the watermark" (0, 0) (crash_delta ());
  insert 6;
  let t6, r6 = crash_delta () in
  Alcotest.(check int) "and deltas resume after it" 1 t6;
  Alcotest.(check bool) "with its records" true (r6 > 0)

let () =
  Alcotest.run "recovery"
    [
      ( "wal framing",
        [
          Alcotest.test_case "roundtrip" `Quick test_wal_roundtrip;
          Alcotest.test_case "torn tail at every offset" `Quick
            test_wal_torn_tail_every_offset;
          Alcotest.test_case "corrupt byte" `Quick test_wal_corrupt_byte;
          Alcotest.test_case "garbage resistant" `Quick
            test_wal_garbage_resistant;
          QCheck_alcotest.to_alcotest fuzz_wal_append_after_recovery;
          QCheck_alcotest.to_alcotest fuzz_two_stream_isolation;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "replays log" `Quick test_recovery_replays_log;
          Alcotest.test_case "per-call delta stats" `Quick
            test_recovery_delta_stats;
          Alcotest.test_case "from checkpoint" `Quick
            test_recovery_from_checkpoint;
          Alcotest.test_case "discards uncommitted" `Quick
            test_recovery_discards_uncommitted;
          Alcotest.test_case "truncates torn tail" `Quick
            test_recovery_truncates_torn_tail;
          Alcotest.test_case "rid stability" `Quick
            test_rid_stability_across_recovery;
          Alcotest.test_case "no durability wipes" `Quick
            test_crash_without_durability_wipes;
          Alcotest.test_case "file store" `Quick test_file_store_roundtrip;
        ] );
      ( "crash injection",
        [
          Alcotest.test_case "request leg" `Quick test_crash_request_leg;
          Alcotest.test_case "mid batch" `Quick test_crash_mid_batch;
          Alcotest.test_case "response leg" `Quick test_crash_response_leg;
          Alcotest.test_case "resume exactly once" `Quick
            test_resume_exactly_once;
        ] );
    ]
