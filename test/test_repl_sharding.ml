(* Tests for per-shard replication groups under two-phase commit: quorum-
   acked protocol steps, promotion on shard-primary death at any 2PC step,
   prepared-transaction survival through failover, follower-death
   invisibility, replication transparency against unreplicated
   deployments, the replicated admission server, and a random crash-storm
   fuzz driving every batch to exactly-once completion. *)

module Db = Sloth_storage.Database
module Shard = Sloth_storage.Shard
module Replication = Sloth_storage.Replication
module Two_pc = Sloth_storage.Two_pc
module Fault = Sloth_net.Fault
module Sh = Sloth_harness.Sharding
module Rsh = Sloth_harness.Repl_sharding

let deployment ?(replicas = 2) ?(checkpoint_every = 4) shards =
  let sh =
    Shard.create ~checkpoint_every ~replicas_per_shard:replicas ~shards ()
  in
  Sh.seed_shard sh;
  sh

(* The first batch that commits through full multi-participant 2PC (2P+1
   decision points, P >= 2): the interesting crash windows — a scripted
   window on a 1PC fast-path batch would misfire. *)
let first_multi layout =
  let rec go i =
    if i >= Array.length layout.Sh.l_trips then
      Alcotest.fail "no multi-participant batch in the workload"
    else if layout.Sh.l_trips.(i) >= 5 then i
    else go (i + 1)
  in
  go 0

(* --- transparency --------------------------------------------------------- *)

(* A fault-free replicated run must land on exactly the heaps of an
   unreplicated run, with every follower fully caught up at quiescence. *)
let test_replication_transparent () =
  let plain = Shard.create ~checkpoint_every:4 ~shards:3 () in
  Sh.seed_shard plain;
  let repl = deployment 3 in
  for i = 0 to Sh.n_batches - 1 do
    Sh.drive plain i;
    Sh.drive repl i
  done;
  Shard.quiesce repl;
  Alcotest.(check (list string))
    "per-shard fingerprints"
    (Shard.shard_fingerprints plain)
    (Shard.shard_fingerprints repl);
  for s = 0 to Shard.n_shards repl - 1 do
    match Shard.replication repl s with
    | None -> Alcotest.fail "shard not replicated"
    | Some g ->
        List.iter
          (fun (ri : Replication.replica_info) ->
            Alcotest.(check int)
              (Printf.sprintf "shard %d replica %d lag" s ri.Replication.id)
              0 ri.Replication.lag)
          (Replication.replicas g)
  done;
  Alcotest.(check int) "no promotions" 0 (List.length (Shard.failovers repl));
  Alcotest.(check (list string)) "audit clean" [] (Shard.audit repl)

let test_unreplicated_by_default () =
  let sh = Shard.create ~shards:2 () in
  Alcotest.(check bool) "replicated" false (Shard.replicated sh);
  Alcotest.(check bool) "no group" true (Shard.replication sh 0 = None)

(* --- explicit promotion --------------------------------------------------- *)

(* Kill a shard primary between batches: the promoted follower must carry
   every committed transaction and the run must continue unperturbed. *)
let test_failover_between_batches () =
  let sh = deployment 2 in
  for i = 0 to 4 do
    Sh.drive sh i
  done;
  Shard.failover_shard sh 0;
  Shard.failover_shard sh 1;
  Alcotest.(check int) "promotions" 2 (List.length (Shard.failovers sh));
  Alcotest.(check string)
    "state preserved across promotion"
    (Sh.shadow_lfp 5)
    (Shard.logical_fingerprint sh);
  for i = 5 to Sh.n_batches - 1 do
    Sh.drive sh i
  done;
  Shard.quiesce sh;
  Alcotest.(check string)
    "final state" (Sh.shadow_lfp Sh.n_batches)
    (Shard.logical_fingerprint sh);
  Alcotest.(check (list string)) "audit clean" [] (Shard.audit sh)

(* A crash scripted right after the coordinator's decision append: the
   whole process restarts, every shard promotes, and the decided
   transaction must be durably applied on the promoted followers — the
   quorum-shipped prepared chunk survives the failover and recovery
   resolves it through the decision log. *)
let test_prepared_survives_promotion () =
  let shards = 2 and checkpoint_every = 4 in
  let layout = Sh.probe ~shards ~checkpoint_every in
  let crash_at = first_multi layout in
  let sh = deployment ~checkpoint_every shards in
  let f = Fault.create (Fault.plan ()) in
  Fault.script ~target:Fault.Coordinator f
    ~first:(layout.Sh.l_start.(crash_at) + 1)
    ~last:(layout.Sh.l_start.(crash_at) + layout.Sh.l_trips.(crash_at))
    Fault.Server_crash Fault.Response;
  Shard.set_fault sh (Some f);
  for i = 0 to crash_at - 1 do
    Sh.drive sh i
  done;
  (* the commit point passed before the crash, so this is an acked commit *)
  Sh.drive sh crash_at;
  Shard.set_fault sh None;
  Alcotest.(check int)
    "every shard promoted" shards
    (List.length (Shard.failovers sh));
  Alcotest.(check bool)
    "decided transaction applied after promotion" true
    (Shard.token_applied sh (Sh.token_of crash_at));
  Alcotest.(check string)
    "post-batch state"
    (Sh.shadow_lfp (crash_at + 1))
    (Shard.logical_fingerprint sh);
  Shard.quiesce sh;
  Alcotest.(check (list string)) "audit clean" [] (Shard.audit sh);
  Alcotest.(check bool)
    "decision survived" true
    (Two_pc.n_decisions (Shard.coordinator sh) >= 1)

(* A crash scripted right after the first participant's PREPARE force but
   before the decision: presumed abort — the promoted follower replays the
   quorum-shipped prepared chunk as in-doubt and its recovery discards
   it.  The client's re-drive then converges exactly-once. *)
let test_prepared_abort_after_promotion () =
  let shards = 2 and checkpoint_every = 4 in
  let layout = Sh.probe ~shards ~checkpoint_every in
  let crash_at = first_multi layout in
  let sh = deployment ~checkpoint_every shards in
  let f = Fault.create (Fault.plan ()) in
  Fault.script f
    ~first:(layout.Sh.l_start.(crash_at) + 1)
    ~last:(layout.Sh.l_start.(crash_at) + 1)
    Fault.Server_crash Fault.Response;
  Shard.set_fault sh (Some f);
  for i = 0 to crash_at - 1 do
    Sh.drive sh i
  done;
  (match Sh.drive sh crash_at with
  | () -> Alcotest.fail "crashed prepare was acked"
  | exception Db.Sql_error _ -> ());
  Shard.set_fault sh None;
  Alcotest.(check int)
    "crashed primary promoted" 1
    (List.length (Shard.failovers sh));
  Alcotest.(check bool)
    "token not applied" false
    (Shard.token_applied sh (Sh.token_of crash_at));
  Alcotest.(check string)
    "pre-batch state" (Sh.shadow_lfp crash_at)
    (Shard.logical_fingerprint sh);
  (* the client re-drives: exactly-once convergence on the new primary *)
  Sh.drive sh crash_at;
  Alcotest.(check string)
    "re-driven to post state"
    (Sh.shadow_lfp (crash_at + 1))
    (Shard.logical_fingerprint sh);
  Shard.quiesce sh;
  Alcotest.(check (list string)) "audit clean" [] (Shard.audit sh)

(* --- follower death ------------------------------------------------------- *)

let test_follower_death_invisible () =
  let sh = deployment 2 in
  Sh.drive sh 0;
  (* kill both of shard 0's followers: the ack quorum clamps down with
     the cluster, so commits keep flowing *)
  Shard.kill_follower sh 0;
  Shard.kill_follower sh 0;
  (match Shard.kill_follower sh 0 with
  | () -> Alcotest.fail "killed a follower that does not exist"
  | exception Invalid_argument _ -> ());
  for i = 1 to Sh.n_batches - 1 do
    Sh.drive sh i
  done;
  Shard.quiesce sh;
  Alcotest.(check string)
    "final state" (Sh.shadow_lfp Sh.n_batches)
    (Shard.logical_fingerprint sh);
  Alcotest.(check int) "no promotions" 0 (List.length (Shard.failovers sh));
  Alcotest.(check (list string)) "audit clean" [] (Shard.audit sh)

let test_kill_follower_guards () =
  let sh = Shard.create ~shards:2 () in
  match Shard.kill_follower sh 0 with
  | () -> Alcotest.fail "unreplicated shard accepted kill_follower"
  | exception Invalid_argument _ -> ()

(* --- matrix cell ----------------------------------------------------------- *)

let test_matrix_cell () =
  let c = Rsh.run_config ~shards:2 ~checkpoint_every:4 in
  Alcotest.(check int) "atomicity" 0 c.Rsh.rc_atomicity_violations;
  Alcotest.(check int) "lost writes" 0 c.Rsh.rc_lost_writes;
  Alcotest.(check int) "audit" 0 c.Rsh.rc_audit_violations;
  Alcotest.(check int)
    "prepared survival" 0 c.Rsh.rc_prepared_survival_violations;
  Alcotest.(check int) "misfires" 0 c.Rsh.rc_misfires;
  Alcotest.(check int) "resume" c.Rsh.rc_cases c.Rsh.rc_resume_ok;
  Alcotest.(check int) "final" c.Rsh.rc_cases c.Rsh.rc_final_ok;
  Alcotest.(check int) "replay" c.Rsh.rc_cases c.Rsh.rc_replay_ok;
  Alcotest.(check bool) "promotions happened" true (c.Rsh.rc_promotions > 0)

(* --- served --------------------------------------------------------------- *)

let test_served_repl_invariants () =
  let sv = Rsh.served_repl_sharded () in
  Alcotest.(check int) "torn" 0 sv.Rsh.rv_torn;
  Alcotest.(check int) "ryw violations" 0 sv.Rsh.rv_ryw_violations;
  Alcotest.(check int) "lost acked writes" 0 sv.Rsh.rv_lost_acked_writes;
  Alcotest.(check int) "audit" 0 sv.Rsh.rv_audit_violations;
  Alcotest.(check bool) "identical" true sv.Rsh.rv_identical;
  Alcotest.(check bool) "failovers happened" true (sv.Rsh.rv_failovers >= 1)

let test_served_repl_deterministic () =
  let a = Rsh.served_repl_sharded () in
  let b = Rsh.served_repl_sharded () in
  Alcotest.(check bool) "identical reruns" true (a = b)

(* The admission guard: a standalone replication shipper still cannot ride
   on a sharded server — per-shard groups live inside the router. *)
let test_admission_guard_message () =
  let module Des = Sloth_net.Des in
  let module Adm = Sloth_server.Admission in
  let module Wal = Sloth_storage.Wal in
  let sim = Des.create () in
  let sh = Shard.create ~shards:2 ~replicas_per_shard:1 () in
  let primary = Db.create () in
  Db.enable_durability ~wal:(Wal.mem ()) ~checkpoint:(Wal.mem ()) primary;
  let repl = Replication.create ~sim ~primary () in
  (match
     Adm.create ~sim ~db:(Shard.shard_db sh 0) ~sharding:sh ~replication:repl
       ()
   with
  | _ -> Alcotest.fail "sharding + standalone replication accepted"
  | exception Invalid_argument _ -> ());
  (* a replicated router alone is accepted *)
  ignore (Adm.create ~sim ~db:(Shard.shard_db sh 0) ~sharding:sh ())

(* --- fuzz: random crash storm --------------------------------------------- *)

(* Random [Server_crash] decisions at every 2PC protocol step (so crashes
   land on phase-1 forces, the decision append and phase-2 acks in random
   combinations, promoting until each group is exhausted), driving every
   batch to exactly-once completion through the durable token.  After
   every batch the logical state must be exactly the shadow prefix; at
   quiescence the WALs must audit clean against the decision log. *)
let fuzz_crash_storm =
  QCheck.Test.make ~count:400 ~name:"replicated 2PC random crash storm"
    QCheck.(
      set_print
        (fun (seed, shards, ck, crash_p) ->
          Printf.sprintf "seed=%d shards=%d checkpoint_every=%d crash_p=%.2f"
            seed shards ck crash_p)
        (quad (int_bound 99999)
           (oneofl [ 2; 3 ])
           (oneofl [ 1; 4; 0 ])
           (oneofl [ 0.08; 0.15; 0.25 ])))
    (fun (seed, shards, checkpoint_every, crash_p) ->
      let sh = deployment ~checkpoint_every shards in
      let f = Fault.create (Fault.plan ~crash_p ~seed ()) in
      Shard.set_fault sh (Some f);
      for i = 0 to Sh.n_batches - 1 do
        let attempts = ref 0 in
        let rec go () =
          incr attempts;
          if !attempts > 60 then
            QCheck.Test.fail_reportf "batch %d: 60 attempts exhausted" i;
          match Sh.drive sh i with
          | () -> ()
          | exception Db.Sql_error _ -> go ()
        in
        go ();
        if Shard.logical_fingerprint sh <> Sh.shadow_lfp (i + 1) then
          QCheck.Test.fail_reportf
            "batch %d: state diverged from the shadow prefix" i
      done;
      Shard.set_fault sh None;
      Shard.quiesce sh;
      if Shard.audit sh <> [] then
        QCheck.Test.fail_reportf "WAL-vs-decision-log audit violations: %s"
          (String.concat "; " (Shard.audit sh));
      if Shard.logical_fingerprint sh <> Sh.shadow_lfp Sh.n_batches then
        QCheck.Test.fail_reportf "final state diverged";
      true)

let () =
  Alcotest.run "repl_sharding"
    [
      ( "transparency",
        [
          Alcotest.test_case "fault-free replicated = unreplicated" `Quick
            test_replication_transparent;
          Alcotest.test_case "unreplicated by default" `Quick
            test_unreplicated_by_default;
        ] );
      ( "promotion",
        [
          Alcotest.test_case "failover between batches" `Quick
            test_failover_between_batches;
          Alcotest.test_case "prepared survives promotion" `Quick
            test_prepared_survives_promotion;
          Alcotest.test_case "prepared aborts after promotion" `Quick
            test_prepared_abort_after_promotion;
        ] );
      ( "followers",
        [
          Alcotest.test_case "follower death invisible" `Quick
            test_follower_death_invisible;
          Alcotest.test_case "kill_follower guards" `Quick
            test_kill_follower_guards;
        ] );
      ("matrix", [ Alcotest.test_case "matrix cell" `Slow test_matrix_cell ]);
      ( "served",
        [
          Alcotest.test_case "served invariants" `Quick
            test_served_repl_invariants;
          Alcotest.test_case "served deterministic" `Quick
            test_served_repl_deterministic;
          Alcotest.test_case "admission guard" `Quick
            test_admission_guard_message;
        ] );
      ("fuzz", List.map QCheck_alcotest.to_alcotest [ fuzz_crash_storm ]);
    ]
