(* Tests for the SQL front end: lexer, parser, printer, and the
   print-then-parse round-trip property. *)

open Sloth_sql

let parse = Parser.parse
let parse_expr = Parser.parse_expr

let check_roundtrip_stmt sql =
  let ast = parse sql in
  let printed = Printer.to_string ast in
  let ast' = parse printed in
  Alcotest.(check string)
    (Printf.sprintf "idempotent print of %s" sql)
    printed (Printer.to_string ast');
  if ast <> ast' then Alcotest.failf "AST round-trip failed for %s" sql

let test_select_star () =
  match parse "SELECT * FROM users" with
  | Ast.Select { sel_items = [ Ast.Star ]; sel_from = Some ("users", None); _ }
    ->
      ()
  | _ -> Alcotest.fail "unexpected parse"

let test_select_where () =
  match parse "SELECT id, name FROM users WHERE id = 42" with
  | Ast.Select
      {
        sel_items = [ Ast.Sel_expr (Ast.Col (None, "id"), None); _ ];
        sel_where = Some (Ast.Binop (Ast.Eq, Ast.Col (None, "id"), Ast.Lit (Ast.L_int 42)));
        _;
      } ->
      ()
  | _ -> Alcotest.fail "unexpected parse"

let test_join () =
  match
    parse
      "SELECT * FROM orders o JOIN items AS i ON i.order_id = o.id WHERE \
       o.total > 10"
  with
  | Ast.Select
      {
        sel_from = Some ("orders", Some "o");
        sel_joins = [ { j_table = "items"; j_alias = Some "i"; _ } ];
        _;
      } ->
      ()
  | _ -> Alcotest.fail "unexpected parse"

let test_precedence () =
  (* a OR b AND c parses as a OR (b AND c) *)
  match parse_expr "a OR b AND c" with
  | Ast.Binop (Ast.Or, Ast.Col (None, "a"), Ast.Binop (Ast.And, _, _)) -> ()
  | _ -> Alcotest.fail "OR/AND precedence wrong"

let test_arith_precedence () =
  match parse_expr "1 + 2 * 3" with
  | Ast.Binop (Ast.Add, Ast.Lit (Ast.L_int 1), Ast.Binop (Ast.Mul, _, _)) -> ()
  | _ -> Alcotest.fail "+/* precedence wrong"

let test_string_escape () =
  match parse_expr "'it''s'" with
  | Ast.Lit (Ast.L_string "it's") -> ()
  | _ -> Alcotest.fail "string escape"

let test_insert () =
  match parse "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')" with
  | Ast.Insert { table = "t"; columns = [ "a"; "b" ]; rows = [ _; _ ] } -> ()
  | _ -> Alcotest.fail "unexpected parse"

let test_update () =
  match parse "UPDATE t SET a = a + 1 WHERE b = 'x'" with
  | Ast.Update { table = "t"; set = [ ("a", _) ]; where = Some _ } -> ()
  | _ -> Alcotest.fail "unexpected parse"

let test_delete () =
  match parse "DELETE FROM t WHERE a IS NOT NULL" with
  | Ast.Delete
      { table = "t"; where = Some (Ast.Is_null { negated = true; _ }) } ->
      ()
  | _ -> Alcotest.fail "unexpected parse"

let test_create_table () =
  match
    parse
      "CREATE TABLE t (id INT NOT NULL, name TEXT, score FLOAT, ok BOOL, \
       PRIMARY KEY (id))"
  with
  | Ast.Create_table { table = "t"; columns; primary_key = Some "id" } ->
      Alcotest.(check int) "4 columns" 4 (List.length columns);
      let id = List.hd columns in
      Alcotest.(check bool) "id not nullable" false id.Ast.cd_nullable
  | _ -> Alcotest.fail "unexpected parse"

let test_txn_stmts () =
  Alcotest.(check bool) "begin" true (parse "BEGIN" = Ast.Begin_txn);
  Alcotest.(check bool) "commit" true (parse "COMMIT" = Ast.Commit);
  Alcotest.(check bool) "rollback" true (parse "ROLLBACK" = Ast.Rollback)

let test_aggregates () =
  match parse "SELECT COUNT(*), SUM(x), AVG(x) FROM t GROUP BY y" with
  | Ast.Select
      {
        sel_items =
          [
            Ast.Sel_expr (Ast.Agg (Ast.Count, None), None);
            Ast.Sel_expr (Ast.Agg (Ast.Sum, Some _), None);
            Ast.Sel_expr (Ast.Agg (Ast.Avg, Some _), None);
          ];
        sel_group_by = [ _ ];
        _;
      } ->
      ()
  | _ -> Alcotest.fail "unexpected parse"

let test_order_limit () =
  match parse "SELECT * FROM t ORDER BY a DESC, b LIMIT 5 OFFSET 10" with
  | Ast.Select
      {
        sel_order_by = [ { o_asc = false; _ }; { o_asc = true; _ } ];
        sel_limit = Some 5;
        sel_offset = Some 10;
        _;
      } ->
      ()
  | _ -> Alcotest.fail "unexpected parse"

let test_in_list () =
  match parse_expr "x IN (1, 2, 3)" with
  | Ast.In_list (Ast.Col (None, "x"), [ _; _; _ ]) -> ()
  | _ -> Alcotest.fail "unexpected parse"

let test_like () =
  match parse_expr "name LIKE 'a%'" with
  | Ast.Like (Ast.Col (None, "name"), "a%") -> ()
  | _ -> Alcotest.fail "unexpected parse"

let test_with_recursive () =
  match
    parse
      "WITH RECURSIVE reach (id) AS (SELECT object_id FROM edge WHERE \
       subject_id = 1 UNION SELECT e.object_id FROM reach JOIN edge AS e ON \
       e.subject_id = reach.id) SELECT id FROM reach ORDER BY id ASC"
  with
  | Ast.Select
      {
        sel_with =
          Some
            {
              cte_name = "reach";
              cte_cols = [ "id" ];
              cte_step = Some _;
              cte_union_all = false;
              cte_recursive = true;
              _;
            };
        sel_from = Some ("reach", None);
        _;
      } ->
      ()
  | _ -> Alcotest.fail "unexpected parse"

let test_with_single_leg () =
  match parse "WITH src AS (SELECT DISTINCT a FROM t) SELECT COUNT(*) FROM src" with
  | Ast.Select
      {
        sel_with =
          Some
            {
              cte_name = "src";
              cte_cols = [];
              cte_step = None;
              cte_union_all = false;
              cte_recursive = false;
              _;
            };
        _;
      } ->
      ()
  | _ -> Alcotest.fail "unexpected parse"

let test_parse_errors () =
  let bad = [ "SELECT"; "SELECT FROM"; "INSERT INTO"; "UPDATE SET"; "FOO" ] in
  List.iter
    (fun sql ->
      match parse sql with
      | exception Parser.Error _ -> ()
      | _ -> Alcotest.failf "expected parse error for %S" sql)
    bad

let test_lex_errors () =
  (match Lexer.tokenize "SELECT 'unterminated" with
  | exception Lexer.Error _ -> ()
  | _ -> Alcotest.fail "expected lex error");
  match Lexer.tokenize "SELECT #" with
  | exception Lexer.Error _ -> ()
  | _ -> Alcotest.fail "expected lex error"

let test_fixed_roundtrips () =
  List.iter check_roundtrip_stmt
    [
      "SELECT * FROM users";
      "SELECT id, name AS n FROM users WHERE age >= 21 AND city = 'NYC'";
      "SELECT * FROM a JOIN b ON b.a_id = a.id JOIN c ON c.b_id = b.id";
      "SELECT COUNT(*) FROM t WHERE x IS NULL OR y IN (1, 2)";
      "SELECT x, COUNT(*) AS n FROM t GROUP BY x ORDER BY n DESC LIMIT 10";
      "INSERT INTO t (a, b, c) VALUES (1, 2.5, 'three')";
      "UPDATE t SET a = 1, b = b + 1 WHERE NOT (c = 'x')";
      "DELETE FROM t";
      "CREATE TABLE t (id INT NOT NULL, v TEXT, PRIMARY KEY (id))";
      "SELECT * FROM t WHERE name LIKE '%o_o%'";
      "SELECT DISTINCT name FROM t WHERE age BETWEEN 20 AND 30";
      "SELECT x, COUNT(*) AS n FROM t GROUP BY x HAVING COUNT(*) > 2";
      "SELECT * FROM t ORDER BY a LIMIT 10 OFFSET 20";
      "BEGIN";
      "COMMIT";
      "ROLLBACK";
      "WITH src AS (SELECT DISTINCT a FROM t) SELECT COUNT(*) FROM src";
      "WITH r (x, y) AS (SELECT a, b FROM t WHERE a > 0) SELECT * FROM r \
       ORDER BY x LIMIT 5";
      "WITH RECURSIVE reach (id) AS (SELECT object_id FROM edge WHERE \
       subject_id = 1 UNION SELECT e.object_id FROM reach JOIN edge AS e ON \
       e.subject_id = reach.id) SELECT id FROM reach ORDER BY id ASC";
      "WITH RECURSIVE p (id) AS (SELECT object_id FROM edge UNION ALL \
       SELECT e.object_id FROM p JOIN edge AS e ON e.subject_id = p.id) \
       SELECT COUNT(*) FROM p";
    ]

(* Identifiers that would lex as keywords (or are not identifier-shaped)
   print double-quoted, so a statement built directly from an AST — the ORM
   layer does this — still round-trips through the parser. *)
let test_quoted_ident_roundtrips () =
  List.iter check_roundtrip_stmt
    [
      "SELECT AVG(value_num) AS \"avg\" FROM observation";
      "SELECT \"select\".\"from\" FROM \"group\" AS \"select\"";
      "SELECT \"two words\", \"quo\"\"te\" FROM t WHERE \"order\" = 1";
      "INSERT INTO \"table\" (\"min\", \"max\") VALUES (1, 2)";
      "UPDATE t SET \"count\" = (\"count\" + 1)";
    ];
  (* The medrec shape that motivated quoting: alias "avg" built in the AST. *)
  let stmt =
    Ast.Select
      {
        sel_with = None;
        sel_distinct = false;
        sel_items =
          [
            Ast.Sel_expr
              (Ast.Agg (Ast.Avg, Some (Ast.Col (None, "value_num"))), Some "avg");
          ];
        sel_from = Some ("observation", None);
        sel_joins = [];
        sel_where = None;
        sel_group_by = [];
        sel_having = None;
        sel_order_by = [];
        sel_limit = None;
        sel_offset = None;
      }
  in
  let printed = Printer.to_string stmt in
  Alcotest.(check bool)
    (Printf.sprintf "ast-built alias reparses (%s)" printed)
    true
    (parse printed = stmt)

(* Statements that differ only in commutative-operand order, conjunct
   order, comparison direction, or IN-list order must share one dedup
   key — and statements that genuinely differ must not. *)
let test_normalize_equivalences () =
  let key sql = Normalize.key (parse sql) in
  let same a b =
    Alcotest.(check string) (Printf.sprintf "%s ~ %s" a b) (key a) (key b)
  in
  let diff a b =
    Alcotest.(check bool)
      (Printf.sprintf "%s !~ %s" a b)
      false
      (String.equal (key a) (key b))
  in
  same "SELECT * FROM t WHERE a = 1 AND b = 2" "SELECT * FROM t WHERE b = 2 AND a = 1";
  same "SELECT * FROM t WHERE a = 1" "SELECT * FROM t WHERE 1 = a";
  same "SELECT * FROM t WHERE a > b" "SELECT * FROM t WHERE b < a";
  same "SELECT * FROM t WHERE a >= 3" "SELECT * FROM t WHERE 3 <= a";
  same "SELECT * FROM t WHERE x IN (3, 1, 2)" "SELECT * FROM t WHERE x IN (1, 2, 3)";
  same "SELECT * FROM t WHERE  a = 1  AND  (b = 2 OR c = 3)"
    "SELECT * FROM t WHERE (c = 3 OR b = 2) AND a = 1";
  same "SELECT n FROM t WHERE a + b = 4" "SELECT n FROM t WHERE b + a = 4";
  (* Duplicate IN-list members are redundant. *)
  same "SELECT * FROM t WHERE x IN (1, 1, 2, 2, 3)"
    "SELECT * FROM t WHERE x IN (3, 2, 1)";
  (* Duplicate AND/OR members are idempotent. *)
  same "SELECT * FROM t WHERE a = 1 AND a = 1" "SELECT * FROM t WHERE a = 1";
  same "SELECT * FROM t WHERE a = 1 OR 1 = a" "SELECT * FROM t WHERE a = 1";
  (* BETWEEN and the adjacent >=/<= range-conjunct pair are one form. *)
  same "SELECT * FROM t WHERE x BETWEEN 5 AND 9"
    "SELECT * FROM t WHERE x >= 5 AND x <= 9";
  same "SELECT * FROM t WHERE x <= 9 AND 5 <= x"
    "SELECT * FROM t WHERE x BETWEEN 5 AND 9";
  same "SELECT * FROM t WHERE a = 1 AND x BETWEEN 5 AND 9 AND x >= 5"
    "SELECT * FROM t WHERE x >= 5 AND a = 1 AND x <= 9";
  diff "SELECT * FROM t WHERE x BETWEEN 5 AND 9"
    "SELECT * FROM t WHERE x BETWEEN 5 AND 8";
  diff "SELECT * FROM t WHERE x IN (1, 2)" "SELECT * FROM t WHERE x IN (1, 3)";
  diff "SELECT * FROM t WHERE a = 1" "SELECT * FROM t WHERE a = 2";
  diff "SELECT * FROM t WHERE a > b" "SELECT * FROM t WHERE a < b";
  diff "SELECT a FROM t" "SELECT b FROM t";
  (* Select-item order is semantic (column order of the result set). *)
  diff "SELECT a, b FROM t" "SELECT b, a FROM t";
  (* ORDER BY key order is semantic too. *)
  diff "SELECT * FROM t ORDER BY a, b" "SELECT * FROM t ORDER BY b, a";
  (* CTE legs normalize like any other select body. *)
  same
    "WITH RECURSIVE r (id) AS (SELECT b FROM e WHERE a = 1 AND p = 'x' UNION \
     SELECT e.b FROM r JOIN e ON e.a = r.id WHERE e.p = 'x') SELECT id FROM r"
    "WITH RECURSIVE r (id) AS (SELECT b FROM e WHERE p = 'x' AND 1 = a UNION \
     SELECT e.b FROM r JOIN e ON r.id = e.a WHERE 'x' = e.p) SELECT id FROM r";
  (* UNION vs UNION ALL is semantic, and so is the leg itself. *)
  diff
    "WITH r (id) AS (SELECT b FROM e UNION SELECT e.b FROM r JOIN e ON e.a = \
     r.id) SELECT id FROM r"
    "WITH r (id) AS (SELECT b FROM e UNION ALL SELECT e.b FROM r JOIN e ON \
     e.a = r.id) SELECT id FROM r";
  diff
    "WITH r (id) AS (SELECT b FROM e WHERE a = 1) SELECT id FROM r"
    "WITH r (id) AS (SELECT b FROM e WHERE a = 2) SELECT id FROM r"

(* --- property tests ---------------------------------------------------- *)

let gen_ident =
  QCheck.Gen.(
    let plain =
      let* len = int_range 1 8 in
      let* chars =
        list_repeat len (oneof [ char_range 'a' 'z'; return '_' ])
      in
      let s = "v" ^ String.concat "" (List.map (String.make 1) chars) in
      return s
    in
    (* A quarter of identifiers collide with keywords or are not plain
       identifier shape, so the printer's quoting is exercised everywhere an
       identifier can appear. *)
    let tricky =
      oneofl
        [
          "avg"; "count"; "sum"; "min"; "max"; "select"; "from"; "Group";
          "Order"; "like"; "two words"; "3rd"; "quo\"te"; "dash-ed";
        ]
    in
    frequency [ (3, plain); (1, tricky) ])

let gen_literal =
  QCheck.Gen.(
    oneof
      [
        map (fun n -> Ast.L_int n) (int_range 0 1_000_000);
        map (fun n -> Ast.L_float (float_of_int n /. 4.0)) (int_range 0 10_000);
        map (fun s -> Ast.L_string s) (string_size ~gen:printable (int_range 0 12));
        map (fun b -> Ast.L_bool b) bool;
        return Ast.L_null;
      ])

let gen_expr =
  QCheck.Gen.(
    sized @@ fix (fun self n ->
        if n <= 0 then
          oneof
            [
              map (fun l -> Ast.Lit l) gen_literal;
              map (fun c -> Ast.Col (None, c)) gen_ident;
              map2 (fun t c -> Ast.Col (Some t, c)) gen_ident gen_ident;
            ]
        else
          let sub = self (n / 2) in
          oneof
            [
              map (fun l -> Ast.Lit l) gen_literal;
              map (fun c -> Ast.Col (None, c)) gen_ident;
              map3
                (fun op a b -> Ast.Binop (op, a, b))
                (oneofl
                   Ast.[ Eq; Neq; Lt; Le; Gt; Ge; And; Or; Add; Sub; Mul; Div ])
                sub sub;
              map (fun e -> Ast.Unop (Ast.Not, e)) sub;
              map (fun e -> Ast.Unop (Ast.Neg, e)) sub;
              map2 (fun e items -> Ast.In_list (e, items)) sub
                (list_size (int_range 1 3) sub);
              map2
                (fun e negated -> Ast.Is_null { e; negated })
                sub bool;
              map2 (fun e p -> Ast.Like (e, p)) sub
                (string_size ~gen:(oneofl [ 'a'; 'b'; '%'; '_' ]) (int_range 0 5));
              map3 (fun e lo hi -> Ast.Between { e; lo; hi }) sub sub sub;
              map2
                (fun a arg -> Ast.Agg (a, arg))
                (oneofl Ast.[ Count; Sum; Min; Max; Avg ])
                (opt sub);
            ]))

let gen_order =
  QCheck.Gen.(
    map2 (fun e asc -> Ast.{ o_expr = e; o_asc = asc }) gen_expr bool)

(* A select body with no WITH prefix — also the shape of a CTE leg (the
   grammar allows a single top-level CTE only, so legs never nest one). *)
let gen_select_body =
  QCheck.Gen.(
    let* distinct = bool in
    let* items =
      oneof
        [
          return [ Ast.Star ];
          list_size (int_range 1 4)
            (let* e = gen_expr in
             let* alias = opt gen_ident in
             return (Ast.Sel_expr (e, alias)));
        ]
    in
    let* table = gen_ident in
    let* alias = opt gen_ident in
    let* joins =
      list_size (int_range 0 2)
        (let* t = gen_ident in
         let* a = opt gen_ident in
         let* on = gen_expr in
         return Ast.{ j_table = t; j_alias = a; j_on = on })
    in
    let* where = opt gen_expr in
    let* group_by = list_size (int_range 0 2) gen_expr in
    let* having = if group_by = [] then return None else opt gen_expr in
    let* order_by = list_size (int_range 0 2) gen_order in
    let* limit = opt (int_range 0 100) in
    let* offset = opt (int_range 0 100) in
    return
      Ast.
        {
          sel_with = None;
          sel_distinct = distinct;
          sel_items = items;
          sel_from = Some (table, alias);
          sel_joins = joins;
          sel_where = where;
          sel_group_by = group_by;
          sel_having = having;
          sel_order_by = order_by;
          sel_limit = limit;
          sel_offset = offset;
        })

let gen_cte =
  QCheck.Gen.(
    let* name = gen_ident in
    let* cols = list_size (int_range 0 3) gen_ident in
    let* base = gen_select_body in
    let* step = opt gen_select_body in
    (* Without a step leg there is no UNION keyword to reparse, so the flag
       must be false for the round trip to be exact. *)
    let* union_all = match step with None -> return false | Some _ -> bool in
    let* recursive = bool in
    return
      Ast.
        {
          cte_name = name;
          cte_cols = cols;
          cte_base = base;
          cte_step = step;
          cte_union_all = union_all;
          cte_recursive = recursive;
        })

let gen_select =
  QCheck.Gen.(
    let* body = gen_select_body in
    let* cte =
      frequency [ (3, return None); (1, map Option.some gen_cte) ]
    in
    return (Ast.Select { body with sel_with = cte }))

let gen_stmt =
  QCheck.Gen.(
    oneof
      [
        gen_select;
        (let* table = gen_ident in
         let* columns = list_size (int_range 1 4) gen_ident in
         let* rows =
           list_size (int_range 1 3)
             (list_repeat (List.length columns)
                (map (fun l -> Ast.Lit l) gen_literal))
         in
         return (Ast.Insert { table; columns; rows }));
        (let* table = gen_ident in
         let* set =
           list_size (int_range 1 3)
             (let* c = gen_ident in
              let* e = gen_expr in
              return (c, e))
         in
         let* where = opt gen_expr in
         return (Ast.Update { table; set; where }));
        (let* table = gen_ident in
         let* where = opt gen_expr in
         return (Ast.Delete { table; where }));
      ])

let prop_roundtrip =
  QCheck.Test.make ~count:500 ~name:"print/parse round-trip"
    (QCheck.make gen_stmt ~print:Printer.to_string)
    (fun stmt ->
      let printed = Printer.to_string stmt in
      match parse printed with
      | ast -> ast = stmt
      | exception Parser.Error msg ->
          QCheck.Test.fail_reportf "parse error on %S: %s" printed msg)

let prop_expr_roundtrip =
  QCheck.Test.make ~count:500 ~name:"expression print/parse round-trip"
    (QCheck.make gen_expr ~print:Printer.expr_to_string)
    (fun e ->
      let printed = Printer.expr_to_string e in
      match parse_expr printed with
      | e' -> e' = e
      | exception Parser.Error msg ->
          QCheck.Test.fail_reportf "parse error on %S: %s" printed msg)

(* Normalization must be a projection (applying it twice changes nothing),
   and the canonical text it produces — the query store's dedup key — must
   survive a print/parse cycle unchanged.  Together these make the dedup
   key stable: any statement that prints to the key re-normalizes to it. *)
let prop_normalize_idempotent =
  QCheck.Test.make ~count:500 ~name:"normalization is idempotent"
    (QCheck.make gen_stmt ~print:Printer.to_string)
    (fun stmt ->
      let once = Normalize.stmt stmt in
      Normalize.stmt once = once)

let prop_normalize_key_stable =
  QCheck.Test.make ~count:500 ~name:"dedup key stable through print/parse"
    (QCheck.make gen_stmt ~print:Printer.to_string)
    (fun stmt ->
      let key = Normalize.key stmt in
      match parse key with
      | reparsed -> String.equal (Normalize.key reparsed) key
      | exception Parser.Error msg ->
          QCheck.Test.fail_reportf "parse error on key %S: %s" key msg)

let () =
  Alcotest.run "sql"
    [
      ( "parser",
        [
          Alcotest.test_case "select star" `Quick test_select_star;
          Alcotest.test_case "select where" `Quick test_select_where;
          Alcotest.test_case "join" `Quick test_join;
          Alcotest.test_case "bool precedence" `Quick test_precedence;
          Alcotest.test_case "arith precedence" `Quick test_arith_precedence;
          Alcotest.test_case "string escape" `Quick test_string_escape;
          Alcotest.test_case "insert" `Quick test_insert;
          Alcotest.test_case "update" `Quick test_update;
          Alcotest.test_case "delete" `Quick test_delete;
          Alcotest.test_case "create table" `Quick test_create_table;
          Alcotest.test_case "txn statements" `Quick test_txn_stmts;
          Alcotest.test_case "aggregates" `Quick test_aggregates;
          Alcotest.test_case "order/limit" `Quick test_order_limit;
          Alcotest.test_case "in list" `Quick test_in_list;
          Alcotest.test_case "like" `Quick test_like;
          Alcotest.test_case "with recursive" `Quick test_with_recursive;
          Alcotest.test_case "with single leg" `Quick test_with_single_leg;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "lex errors" `Quick test_lex_errors;
        ] );
      ( "printer",
        [
          Alcotest.test_case "fixed round-trips" `Quick test_fixed_roundtrips;
          Alcotest.test_case "quoted identifiers" `Quick
            test_quoted_ident_roundtrips;
        ] );
      ( "normalize",
        [
          Alcotest.test_case "equivalences" `Quick test_normalize_equivalences;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_roundtrip; prop_expr_roundtrip; prop_normalize_idempotent;
            prop_normalize_key_stable;
          ] );
    ]
