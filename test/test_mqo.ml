(* Tests for the global multi-query optimizer and the version-keyed result
   cache: probe-set fusion and join sharing at the executor, LRU eviction
   and version invalidation at the cache, the adaptive coalescing window at
   the admission layer — and a differential fuzz suite replaying identical
   interleaved read/write schedules with cache+MQO on and off (including
   across crash-restart, snapshot install and sharded deployments),
   asserting byte-identical results and no stale reads. *)

module Db = Sloth_storage.Database
module Ex = Sloth_storage.Executor
module Rs = Sloth_storage.Result_set
module Rc = Sloth_storage.Result_cache
module Shard = Sloth_storage.Shard
module Wal = Sloth_storage.Wal
module Des = Sloth_net.Des
module Adm = Sloth_server.Admission
module Ast = Sloth_sql.Ast
module Parser = Sloth_sql.Parser

let parse_select sql =
  match Parser.parse sql with
  | Ast.Select s -> s
  | _ -> invalid_arg ("not a SELECT: " ^ sql)

let parse_selects = List.map parse_select

let seed_kv db =
  ignore
    (Db.exec_sql db
       "CREATE TABLE kv (id INT NOT NULL, grp INT NOT NULL, val TEXT NOT \
        NULL, PRIMARY KEY (id))");
  Db.create_index db ~table:"kv" ~column:"grp";
  Db.create_ordered_index db ~table:"kv" ~column:"id";
  for i = 1 to 30 do
    ignore
      (Db.exec_sql db
         (Printf.sprintf "INSERT INTO kv (id, grp, val) VALUES (%d, %d, 'v%d')"
            i (i mod 5) i))
  done

let seed_join db =
  seed_kv db;
  ignore
    (Db.exec_sql db
       "CREATE TABLE grp_tab (id INT NOT NULL, name TEXT NOT NULL, PRIMARY \
        KEY (id))");
  for i = 0 to 4 do
    ignore
      (Db.exec_sql db
         (Printf.sprintf "INSERT INTO grp_tab (id, name) VALUES (%d, 'g%d')" i
            i))
  done

let setup seed =
  let db = Db.create () in
  seed db;
  db

let rs_equal a b =
  Rs.columns a = Rs.columns b
  && List.equal
       (fun x y -> Array.for_all2 Sloth_storage.Value.equal x y)
       (Rs.rows a) (Rs.rows b)

let rs_equal_unordered a b =
  let sort rs = List.sort compare (Rs.rows rs) in
  Rs.columns a = Rs.columns b && List.equal ( = ) (sort a) (sort b)

(* Run the same select group through [execute_reads] with MQO off and on
   and return (off outcomes, on outcomes, sharing stats of the on run). *)
let both_ways db sqls =
  let cat = Db.catalog db in
  let model = Db.cost_model db in
  let selects = parse_selects sqls in
  let off = Ex.execute_reads cat ~model selects in
  let stats = Ex.fresh_share_stats () in
  let on = Ex.execute_reads cat ~model ~mqo:true ~stats selects in
  (off, on, stats)

(* --- executor: probe-set fusion and join sharing -------------------------- *)

let test_point_probe_fusion () =
  let db = setup seed_kv in
  let off, on, stats =
    both_ways db
      [
        "SELECT * FROM kv WHERE grp = 1";
        "SELECT val FROM kv WHERE grp = 1";
        "SELECT * FROM kv WHERE grp = 2";
      ]
  in
  Alcotest.(check bool)
    "results identical to the unfused path" true
    (List.for_all2 (fun (a : Ex.outcome) (b : Ex.outcome) -> rs_equal a.rs b.rs) off on);
  Alcotest.(check int) "two probes merged" 2 stats.Ex.probe_sets_merged;
  (match on with
  | [ first; second; third ] ->
      Alcotest.(check bool)
        "first sharer charged the probe-set pass" true
        (first.Ex.rows_scanned > 0);
      Alcotest.(check int) "second rides free" 0 second.Ex.rows_scanned;
      Alcotest.(check int) "third rides free" 0 third.Ex.rows_scanned
  | _ -> Alcotest.fail "expected three outcomes");
  (* distinct keys probed once each: the fused pass scans no more rows
     than the two distinct per-key lookups would alone *)
  let fused = List.fold_left (fun a (o : Ex.outcome) -> a + o.Ex.rows_scanned) 0 on in
  let distinct =
    List.fold_left (fun a (o : Ex.outcome) -> a + o.Ex.rows_scanned) 0 off
    - (List.nth off 1).Ex.rows_scanned
  in
  Alcotest.(check bool)
    (Printf.sprintf "fused pass (%d) <= distinct lookups (%d)" fused distinct)
    true (fused <= distinct)

let test_range_probe_fusion () =
  let db = setup seed_kv in
  let off, on, stats =
    both_ways db
      [
        "SELECT * FROM kv WHERE id >= 5 AND id <= 10";
        "SELECT val FROM kv WHERE id BETWEEN 5 AND 10";
        "SELECT * FROM kv WHERE id >= 20";
      ]
  in
  Alcotest.(check bool)
    "results identical to the unfused path" true
    (List.for_all2 (fun (a : Ex.outcome) (b : Ex.outcome) -> rs_equal a.rs b.rs) off on);
  (* the BETWEEN is a normalized duplicate of the >=/<= pair, so it never
     reaches the probe-set; the >= 20 range still fuses into the pass *)
  Alcotest.(check bool) "a range was merged" true (stats.Ex.probe_sets_merged >= 1);
  (match on with
  | [ first; _; third ] ->
      Alcotest.(check bool) "first charged" true (first.Ex.rows_scanned > 0);
      Alcotest.(check int) "merged range rides free" 0 third.Ex.rows_scanned
  | _ -> Alcotest.fail "expected three outcomes")

let test_join_sharing () =
  let db = setup seed_join in
  let off, on, stats =
    both_ways db
      [
        "SELECT COUNT(*) AS n FROM kv JOIN grp_tab ON kv.grp = grp_tab.id";
        "SELECT kv.val FROM kv JOIN grp_tab ON kv.grp = grp_tab.id ORDER BY \
         kv.val";
      ]
  in
  Alcotest.(check bool)
    "results identical to the unshared path" true
    (List.for_all2 (fun (a : Ex.outcome) (b : Ex.outcome) -> rs_equal a.rs b.rs) off on);
  Alcotest.(check int) "join subplan shared once" 1 stats.Ex.joins_shared;
  (match on with
  | [ first; second ] ->
      Alcotest.(check bool) "first charged" true (first.Ex.rows_scanned > 0);
      Alcotest.(check int) "second rides the shared join" 0
        second.Ex.rows_scanned
  | _ -> Alcotest.fail "expected two outcomes")

(* --- result cache unit behaviour ------------------------------------------ *)

let some_rs db = Db.query db "SELECT COUNT(*) AS n FROM kv"

let test_cache_lru_eviction () =
  let db = setup seed_kv in
  let rs = some_rs db in
  let c = Rc.create ~capacity:2 in
  let v = [ ("kv", 1) ] in
  Rc.store c ~key:"a" ~versions:v rs;
  Rc.store c ~key:"b" ~versions:v rs;
  Alcotest.(check int) "two entries" 2 (Rc.length c);
  (* touch [a] so [b] is the least recently used *)
  Alcotest.(check bool) "a hits" true
    (Rc.find c ~key:"a" ~current_versions:v <> None);
  Rc.store c ~key:"c" ~versions:v rs;
  Alcotest.(check int) "capacity bound holds" 2 (Rc.length c);
  Alcotest.(check bool) "LRU entry b evicted" true
    (Rc.find c ~key:"b" ~current_versions:v = None);
  Alcotest.(check bool) "recently used a kept" true
    (Rc.find c ~key:"a" ~current_versions:v <> None);
  Alcotest.(check bool) "new entry c kept" true
    (Rc.find c ~key:"c" ~current_versions:v <> None)

let test_cache_version_invalidation () =
  let db = setup seed_kv in
  let rs = some_rs db in
  let c = Rc.create ~capacity:4 in
  Rc.store c ~key:"q" ~versions:[ ("kv", 1); ("grp_tab", 3) ] rs;
  Alcotest.(check bool) "same versions hit" true
    (Rc.find c ~key:"q" ~current_versions:[ ("kv", 1); ("grp_tab", 3) ] <> None);
  Alcotest.(check bool) "any bumped version misses" true
    (Rc.find c ~key:"q" ~current_versions:[ ("kv", 2); ("grp_tab", 3) ] = None);
  let st = Rc.stats c in
  Alcotest.(check int) "stale probe counted as invalidation" 1
    st.Rc.invalidations;
  Alcotest.(check bool) "stale entry was removed" true (Rc.length c = 0);
  Alcotest.check_raises "capacity must be positive"
    (Invalid_argument "Result_cache.create: capacity must be > 0")
    (fun () -> ignore (Rc.create ~capacity:0))

(* --- database-level cache wiring ------------------------------------------ *)

let scanned outs = List.fold_left (fun a (_, n) -> a + n) 0 outs

let test_db_cache_hit_and_invalidate () =
  let db = setup seed_kv in
  Db.set_mqo db true;
  Db.set_result_cache db (Some 8);
  let q = [ "SELECT val FROM kv WHERE grp = 1" ] in
  let first = Db.exec_reads db (parse_selects q) in
  Alcotest.(check bool) "first run scans" true (scanned first > 0);
  let second = Db.exec_reads db (parse_selects q) in
  Alcotest.(check int) "cache hit scans nothing" 0 (scanned second);
  Alcotest.(check bool) "hit returns identical rows" true
    (rs_equal (fst (List.hd first)).Db.rs (fst (List.hd second)).Db.rs);
  let st = Db.read_stats db in
  Alcotest.(check int) "one hit counted" 1 st.Db.cache_hits;
  (* a write to the referenced table must retire the entry *)
  ignore (Db.exec_sql db "UPDATE kv SET val = 'changed' WHERE id = 1");
  let third = Db.exec_reads db (parse_selects q) in
  Alcotest.(check bool) "post-write read re-executes" true (scanned third > 0);
  let expected = Db.query db "SELECT val FROM kv WHERE grp = 1" in
  Alcotest.(check bool) "post-write read sees the new value" true
    (rs_equal (fst (List.hd third)).Db.rs expected);
  let st = Db.read_stats db in
  Alcotest.(check bool) "invalidation counted" true
    (st.Db.cache_invalidations >= 1)

let test_db_cache_lru_through_api () =
  let db = setup seed_kv in
  Db.set_result_cache db (Some 2);
  let run sql = ignore (Db.exec_reads db (parse_selects [ sql ])) in
  let q1 = "SELECT COUNT(*) AS n FROM kv WHERE grp = 0" in
  let q2 = "SELECT COUNT(*) AS n FROM kv WHERE grp = 1" in
  let q3 = "SELECT COUNT(*) AS n FROM kv WHERE grp = 2" in
  run q1;
  run q2;
  run q3;
  (* capacity 2: q1 was evicted, q3 is fresh *)
  let before = (Db.read_stats db).Db.cache_hits in
  run q3;
  Alcotest.(check int) "recent entry hits" (before + 1)
    (Db.read_stats db).Db.cache_hits;
  run q1;
  Alcotest.(check int) "evicted entry misses" (before + 1)
    (Db.read_stats db).Db.cache_hits

let test_db_cache_bypassed_in_txn () =
  let db = setup seed_kv in
  Db.set_mqo db true;
  Db.set_result_cache db (Some 8);
  let q = [ "SELECT val FROM kv WHERE id = 1" ] in
  ignore (Db.exec_reads db (parse_selects q));
  ignore (Db.exec_sql db "BEGIN");
  ignore (Db.exec_sql db "UPDATE kv SET val = 'dirty' WHERE id = 1");
  let inside = Db.exec_reads db (parse_selects q) in
  Alcotest.(check bool) "read inside the txn sees uncommitted state" true
    (Rs.rows (fst (List.hd inside)).Db.rs
    = [ [| Sloth_storage.Value.Text "dirty" |] ]);
  ignore (Db.exec_sql db "ROLLBACK");
  let after = Db.exec_reads db (parse_selects q) in
  Alcotest.(check bool) "read after rollback sees the committed value" true
    (Rs.rows (fst (List.hd after)).Db.rs
    = [ [| Sloth_storage.Value.Text "v1" |] ])

let test_db_cache_cleared_on_crash_restart () =
  let db = Db.create () in
  Db.enable_durability ~checkpoint_every:2 ~wal:(Wal.mem ())
    ~checkpoint:(Wal.mem ()) db;
  seed_kv db;
  Db.set_mqo db true;
  Db.set_result_cache db (Some 8);
  let q = [ "SELECT val FROM kv WHERE grp = 3" ] in
  ignore (Db.exec_reads db (parse_selects q));
  Alcotest.(check bool) "entry held before the crash" true
    ((Db.read_stats db).Db.cache_entries > 0);
  Db.crash_restart db;
  Alcotest.(check int) "cache dropped whole across recovery" 0
    (Db.read_stats db).Db.cache_entries;
  let expected = Db.query db "SELECT val FROM kv WHERE grp = 3" in
  let out = Db.exec_reads db (parse_selects q) in
  Alcotest.(check bool) "post-crash read re-executes and agrees" true
    (scanned out > 0 && rs_equal (fst (List.hd out)).Db.rs expected)

let test_db_cache_cleared_on_snapshot_install () =
  let mk () =
    let db = Db.create () in
    Db.enable_durability ~checkpoint_every:4 ~wal:(Wal.mem ())
      ~checkpoint:(Wal.mem ()) db;
    db
  in
  let primary = mk () in
  seed_kv primary;
  ignore (Db.exec_sql primary "UPDATE kv SET val = 'promoted' WHERE id = 1");
  let replica = mk () in
  seed_kv replica;
  Db.set_mqo replica true;
  Db.set_result_cache replica (Some 8);
  let q = [ "SELECT val FROM kv WHERE id = 1" ] in
  ignore (Db.exec_reads replica (parse_selects q));
  ignore (Db.exec_reads replica (parse_selects q));
  Alcotest.(check bool) "replica cached its pre-snapshot read" true
    ((Db.read_stats replica).Db.cache_hits > 0);
  Alcotest.(check bool) "snapshot installs" true
    (Db.install_snapshot replica (Db.snapshot primary));
  let out = Db.exec_reads replica (parse_selects q) in
  Alcotest.(check bool) "no dead reign's rows: read shows snapshot state" true
    (Rs.rows (fst (List.hd out)).Db.rs
    = [ [| Sloth_storage.Value.Text "promoted" |] ])

(* --- adaptive coalescing window ------------------------------------------- *)

let test_window_bounds_validation () =
  let sim = Des.create () in
  let db = setup seed_kv in
  Alcotest.check_raises "ceiling below floor rejected"
    (Invalid_argument "Admission.create: window_bounds") (fun () ->
      ignore (Adm.create ~sim ~db ~window_bounds:(4.0, 1.0) ()));
  let srv = Adm.create ~sim ~db ~window_ms:100.0 ~window_bounds:(1.0, 8.0) () in
  Alcotest.(check (float 1e-9)) "initial window clamped to the ceiling" 8.0
    (Adm.current_window_ms srv)

let test_window_grows_under_sharing () =
  let sim = Des.create () in
  let db = setup seed_kv in
  let srv = Adm.create ~sim ~db ~window_ms:2.0 ~window_bounds:(0.5, 20.0) () in
  let sessions = List.init 3 (fun _ -> Adm.open_session srv) in
  let stmts = [ Parser.parse "SELECT COUNT(*) AS n FROM kv" ] in
  for k = 0 to 9 do
    Des.at sim (float_of_int k *. 50.0) (fun () ->
        List.iter (fun s -> ignore (Adm.submit s stmts)) sessions)
  done;
  Des.run sim ~until:Float.infinity;
  let w = Adm.current_window_ms srv in
  Alcotest.(check bool)
    (Printf.sprintf "window grew under coalesced sharing (%.3f)" w)
    true
    (w > 2.0 && w <= 20.0)

let test_window_shrinks_when_alone () =
  let sim = Des.create () in
  let db = setup seed_kv in
  let srv = Adm.create ~sim ~db ~window_ms:8.0 ~window_bounds:(1.0, 16.0) () in
  let ses = Adm.open_session srv in
  for k = 0 to 9 do
    Des.at sim (float_of_int k *. 50.0) (fun () ->
        ignore
          (Adm.submit ses
             [
               Parser.parse
                 (Printf.sprintf "SELECT val FROM kv WHERE id = %d" (k + 1));
             ]))
  done;
  Des.run sim ~until:Float.infinity;
  let w = Adm.current_window_ms srv in
  Alcotest.(check bool)
    (Printf.sprintf "window shrank to the floor (%.3f)" w)
    true
    (w >= 1.0 && w < 2.0);
  let st = Adm.stats srv in
  Alcotest.(check (float 1e-9)) "stats expose the live window" w st.Adm.window_ms

(* --- differential fuzz ----------------------------------------------------- *)

(* A schedule is a list of steps over the seeded kv table: read flushes
   (1-4 statements drawn from a parameterized pool) interleaved with
   writes.  The oracle arm executes on a plain database; the subject arm
   enables MQO and a deliberately tiny cache (capacity 4, so eviction and
   reuse both happen).  Every result set and the final fingerprint must
   match. *)

type fuzz_step = F_reads of string list | F_write of string

let read_pool =
  [
    (fun n -> Printf.sprintf "SELECT * FROM kv WHERE grp = %d" (n mod 5));
    (fun n -> Printf.sprintf "SELECT val FROM kv WHERE grp = %d" (n mod 5));
    (fun n ->
      Printf.sprintf "SELECT COUNT(*) AS n FROM kv WHERE grp = %d" (n mod 5));
    (fun n -> Printf.sprintf "SELECT * FROM kv WHERE id = %d" ((n mod 30) + 1));
    (fun n ->
      Printf.sprintf "SELECT * FROM kv WHERE id >= %d AND id <= %d"
        ((n mod 20) + 1)
        ((n mod 20) + 8));
    (fun n ->
      Printf.sprintf "SELECT val FROM kv WHERE id BETWEEN %d AND %d"
        ((n mod 20) + 1)
        ((n mod 20) + 8));
    (fun _ -> "SELECT grp, COUNT(*) AS n FROM kv GROUP BY grp");
    (fun n ->
      Printf.sprintf
        "SELECT kv.val FROM kv JOIN grp_tab ON kv.grp = grp_tab.id WHERE \
         grp_tab.id = %d ORDER BY kv.val"
        (n mod 5));
    (fun n ->
      Printf.sprintf
        "SELECT COUNT(*) AS n FROM kv JOIN grp_tab ON kv.grp = grp_tab.id \
         WHERE grp_tab.id = %d"
        (n mod 5));
  ]

let write_pool =
  [
    (fun n ->
      Printf.sprintf "UPDATE kv SET val = 'u%d' WHERE id = %d" n
        ((n mod 30) + 1));
    (fun n ->
      Printf.sprintf "UPDATE kv SET grp = %d WHERE id = %d" (n mod 5)
        ((n mod 30) + 1));
    (fun n ->
      Printf.sprintf "DELETE FROM kv WHERE id = %d" ((n mod 30) + 1));
    (fun n ->
      Printf.sprintf "INSERT INTO kv (id, grp, val) VALUES (%d, %d, 'n%d')"
        (100 + n) (n mod 5) n);
  ]

let gen_step =
  QCheck.Gen.(
    let read =
      let* k = int_range 1 4 in
      let* picks = list_size (return k) (pair (int_bound 1000) (int_bound 1000)) in
      return
        (F_reads
           (List.map
              (fun (i, n) -> (List.nth read_pool (i mod List.length read_pool)) n)
              picks))
    in
    let write =
      let* i = int_bound 1000 in
      let* n = int_bound 1000 in
      return (F_write ((List.nth write_pool (i mod List.length write_pool)) n))
    in
    frequency [ (3, read); (2, write) ])

let gen_schedule = QCheck.Gen.(list_size (int_range 4 12) gen_step)

let print_schedule steps =
  String.concat "; "
    (List.map
       (function
         | F_reads sqls -> "READS[" ^ String.concat " | " sqls ^ "]"
         | F_write sql -> "WRITE[" ^ sql ^ "]")
       steps)

(* Execute one step on a database-like pair of functions.  A rejected
   write (e.g. the generator re-inserting a primary key it already used)
   is rejected identically by every arm, so it is simply skipped. *)
let drive ~reads ~write steps =
  List.filter_map
    (function
      | F_write sql ->
          (try write sql with Db.Sql_error _ -> ());
          None
      | F_reads sqls -> Some (reads sqls))
    steps

let db_reads db sqls = List.map (fun (o, _) -> o.Db.rs) (Db.exec_reads db (parse_selects sqls))
let db_write db sql = ignore (Db.exec_sql db sql)

let flushes_equal eq a b =
  List.length a = List.length b
  && List.for_all2 (fun fa fb -> List.for_all2 eq fa fb) a b

let prop_mqo_cache_differential =
  QCheck.Test.make ~count:500
    ~name:"cache+MQO arm is byte-identical to the plain arm"
    (QCheck.make gen_schedule ~print:print_schedule)
    (fun steps ->
      let oracle = setup seed_join in
      let subject = setup seed_join in
      Db.set_mqo subject true;
      Db.set_result_cache subject (Some 4);
      let a =
        drive ~reads:(db_reads oracle) ~write:(db_write oracle) steps
      in
      let b =
        drive ~reads:(db_reads subject) ~write:(db_write subject) steps
      in
      flushes_equal rs_equal a b
      && String.equal (Db.fingerprint oracle) (Db.fingerprint subject))

let prop_mqo_cache_crash_restart =
  QCheck.Test.make ~count:60
    ~name:"cache+MQO arm matches across crash-restart"
    (QCheck.make
       QCheck.Gen.(pair gen_schedule gen_schedule)
       ~print:(fun (a, b) ->
         print_schedule a ^ " CRASH " ^ print_schedule b))
    (fun (before, after) ->
      let mk cache =
        let db = Db.create () in
        Db.enable_durability ~checkpoint_every:3 ~wal:(Wal.mem ())
          ~checkpoint:(Wal.mem ()) db;
        seed_join db;
        if cache then begin
          Db.set_mqo db true;
          Db.set_result_cache db (Some 4)
        end;
        db
      in
      let oracle = mk false in
      let subject = mk true in
      let run db steps =
        drive ~reads:(db_reads db) ~write:(db_write db) steps
      in
      let a1 = run oracle before in
      let b1 = run subject before in
      Db.crash_restart oracle;
      Db.crash_restart subject;
      let a2 = run oracle after in
      let b2 = run subject after in
      flushes_equal rs_equal a1 b1
      && flushes_equal rs_equal a2 b2
      && (Db.read_stats subject).Db.cache_entries >= 0
      && String.equal (Db.fingerprint oracle) (Db.fingerprint subject))

(* Sharded arm: gathers concatenate in shard order, so rows are compared
   as sorted multisets (the documented contract for unsorted queries). *)
let prop_mqo_cache_sharded =
  QCheck.Test.make ~count:40
    ~name:"sharded cache+MQO arm matches the unsharded oracle"
    (QCheck.make gen_schedule ~print:print_schedule)
    (fun steps ->
      let oracle = setup seed_join in
      let sh = Shard.create ~shards:3 () in
      let seed_sharded db =
        List.iter
          (fun sql -> ignore (Shard.exec_sql db sql))
          [
            "CREATE TABLE kv (id INT NOT NULL, grp INT NOT NULL, val TEXT \
             NOT NULL, PRIMARY KEY (id))";
            "CREATE TABLE grp_tab (id INT NOT NULL, name TEXT NOT NULL, \
             PRIMARY KEY (id))";
          ];
        Shard.create_index db ~table:"kv" ~column:"grp";
        Shard.create_ordered_index db ~table:"kv" ~column:"id";
        for i = 1 to 30 do
          ignore
            (Shard.exec_sql db
               (Printf.sprintf
                  "INSERT INTO kv (id, grp, val) VALUES (%d, %d, 'v%d')" i
                  (i mod 5) i))
        done;
        for i = 0 to 4 do
          ignore
            (Shard.exec_sql db
               (Printf.sprintf
                  "INSERT INTO grp_tab (id, name) VALUES (%d, 'g%d')" i i))
        done
      in
      seed_sharded sh;
      Shard.set_mqo sh true;
      Shard.set_result_cache sh (Some 4);
      let a = drive ~reads:(db_reads oracle) ~write:(db_write oracle) steps in
      let b =
        drive
          ~reads:(fun sqls ->
            List.map (fun (o, _) -> o.Db.rs) (Shard.exec_reads sh (parse_selects sqls)))
          ~write:(fun sql -> ignore (Shard.exec_sql sh sql))
          steps
      in
      flushes_equal rs_equal_unordered a b
      && String.equal
           (Shard.logical_fingerprint_db oracle)
           (Shard.logical_fingerprint sh))

let () =
  Alcotest.run "mqo"
    [
      ( "executor sharing",
        [
          Alcotest.test_case "point probe fusion" `Quick
            test_point_probe_fusion;
          Alcotest.test_case "range probe fusion" `Quick
            test_range_probe_fusion;
          Alcotest.test_case "join sharing" `Quick test_join_sharing;
        ] );
      ( "result cache",
        [
          Alcotest.test_case "LRU eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "version invalidation" `Quick
            test_cache_version_invalidation;
        ] );
      ( "database wiring",
        [
          Alcotest.test_case "hit and invalidate" `Quick
            test_db_cache_hit_and_invalidate;
          Alcotest.test_case "LRU through the API" `Quick
            test_db_cache_lru_through_api;
          Alcotest.test_case "bypassed inside txn" `Quick
            test_db_cache_bypassed_in_txn;
          Alcotest.test_case "cleared on crash restart" `Quick
            test_db_cache_cleared_on_crash_restart;
          Alcotest.test_case "cleared on snapshot install" `Quick
            test_db_cache_cleared_on_snapshot_install;
        ] );
      ( "adaptive window",
        [
          Alcotest.test_case "bounds validation" `Quick
            test_window_bounds_validation;
          Alcotest.test_case "grows under sharing" `Quick
            test_window_grows_under_sharing;
          Alcotest.test_case "shrinks when alone" `Quick
            test_window_shrinks_when_alone;
        ] );
      ( "differential fuzz",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_mqo_cache_differential;
            prop_mqo_cache_crash_restart;
            prop_mqo_cache_sharded;
          ] );
    ]
