#!/bin/sh
# Tier-1 gate: the whole build and every test suite must pass, and the
# source must be free of formatting drift.
set -e
cd "$(dirname "$0")/.."
dune build
dune runtest

# Formatting gate.  With ocamlformat installed, `dune build @fmt` is
# authoritative.  Without it (the CI image does not ship one pinned), fall
# back to a dialect-free lint that still catches real drift: tabs and
# trailing whitespace in OCaml sources and dune files.
if command -v ocamlformat >/dev/null 2>&1; then
  dune build @fmt
else
  drift=$(grep -rnl -e '	' -e ' $' \
    --include='*.ml' --include='*.mli' --include='dune' \
    lib bin bench test 2>/dev/null || true)
  if [ -n "$drift" ]; then
    echo "formatting drift (tabs or trailing whitespace) in:" >&2
    echo "$drift" >&2
    exit 1
  fi
fi
