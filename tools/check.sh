#!/bin/sh
# Tier-1 gate: the whole build and every test suite must pass.
set -e
cd "$(dirname "$0")/.."
dune build
dune runtest
