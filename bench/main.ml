(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation section, plus wall-clock microbenchmarks of the thunk
   machinery (Bechamel).

   Usage: main.exe [experiment ...] [--faults RATE] [--crash RATE]
          [--checkpoint-every N]
   Experiments: fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13 chaos
   recovery failover throughput appendix micro.  With no argument
   everything except `recovery`, `failover` and `throughput` runs (those
   also write BENCH_recovery.json / BENCH_failover.json /
   BENCH_throughput.json; run them explicitly).  `recovery` includes the
   served-crash arm: the async multi-session server under seeded random
   crashes, with its crash/epoch/redrive counters in the JSON.  `failover`
   runs the replicated server — WAL-shipping followers, replica-served
   reads, promote-on-crash — against the LSN-interleaved serial-replay
   oracle.  [--faults
   RATE] appends a one-line chaos summary at that fault rate (alone, it
   runs only that summary); [--crash RATE] likewise appends a one-line
   recovery summary with random server crashes at that rate, checkpointing
   every N commits (default 4). *)

open Sloth_harness

(* --- Bechamel microbenchmarks ------------------------------------------- *)

let micro_tests () =
  let open Bechamel in
  let thunk_create_force =
    Test.make ~name:"thunk create+force"
      (Staged.stage (fun () ->
           Sloth_core.Thunk.force (Sloth_core.Thunk.create (fun () -> 42))))
  in
  let thunk_chain =
    Test.make ~name:"thunk map-chain (depth 10)"
      (Staged.stage (fun () ->
           let t = ref (Sloth_core.Thunk.literal 1) in
           for _ = 1 to 10 do
             t := Sloth_core.Thunk.map succ !t
           done;
           Sloth_core.Thunk.force !t))
  in
  let sql_parse =
    Test.make ~name:"sql parse (join+where)"
      (Staged.stage (fun () ->
           Sloth_sql.Parser.parse
             "SELECT u.name, o.total FROM users u JOIN orders o ON o.user_id \
              = u.id WHERE u.id = 42 AND o.total > 10 ORDER BY o.total DESC \
              LIMIT 5"))
  in
  let db = Sloth_storage.Database.create () in
  let () =
    ignore
      (Sloth_storage.Database.exec_sql db
         "CREATE TABLE m (id INT NOT NULL, v TEXT, PRIMARY KEY (id))");
    for i = 1 to 1000 do
      ignore
        (Sloth_storage.Database.exec_sql db
           (Printf.sprintf "INSERT INTO m (id, v) VALUES (%d, 'v%d')" i i))
    done
  in
  let point_stmt = Sloth_sql.Parser.parse "SELECT * FROM m WHERE id = 500" in
  let point_query =
    Test.make ~name:"executor point query (1k rows)"
      (Staged.stage (fun () -> Sloth_storage.Database.exec db point_stmt))
  in
  let store_env () =
    let clock = Sloth_net.Vclock.create () in
    let conn = Sloth_driver.Connection.create db (Sloth_net.Link.create clock) in
    Sloth_core.Query_store.create conn
  in
  let store_batch =
    Test.make ~name:"query store register+flush (10)"
      (Staged.stage (fun () ->
           let store = store_env () in
           let ids =
             List.init 10 (fun i ->
                 Sloth_core.Query_store.register_sql store
                   (Printf.sprintf "SELECT * FROM m WHERE id = %d" (i + 1)))
           in
           List.iter
             (fun id -> ignore (Sloth_core.Query_store.result store id))
             ids))
  in
  Test.make_grouped ~name:"sloth"
    [ thunk_create_force; thunk_chain; sql_parse; point_query; store_batch ]

let micro () =
  Report.section "Microbenchmarks (real wall-clock, Bechamel)";
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg instances (micro_tests ()) in
  let results = Analyze.all ols (List.hd instances) raw in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ ns ] -> Printf.printf "  %-40s %10.1f ns/run\n" name ns
      | _ -> Printf.printf "  %-40s (no estimate)\n" name)
    results

(* --- dispatch ------------------------------------------------------------ *)

let experiments =
  [
    ("fig5", Page_experiments.fig5);
    ("fig6", Page_experiments.fig6);
    ("fig7", Throughput.fig7);
    ("fig8", Page_experiments.fig8);
    ("fig9", Page_experiments.fig9);
    ("fig10", Db_scaling.fig10);
    ("fig11", Analysis_stats.fig11);
    ("fig12", Ablation.fig12);
    ("fig13", Overhead.fig13);
    ("prefetch", Baselines.prefetch_compare);
    ("policies", Baselines.flush_policies);
    ("chaos", Chaos.chaos);
    ("recovery", fun () -> Recovery.recovery ~json:"BENCH_recovery.json" ());
    ("failover", fun () -> Failover.failover ~json:"BENCH_failover.json" ());
    ("sharding", fun () -> Sharding.sharding ~json:"BENCH_sharding.json" ());
    ( "repl-shard",
      fun () ->
        Repl_sharding.repl_sharding ~json:"BENCH_repl_sharding.json" () );
    ( "throughput",
      fun () -> Throughput.served ~json:"BENCH_throughput.json" () );
    ("planner", fun () -> Planner_bench.planner ~json:"BENCH_planner.json" ());
    ("mqo", fun () -> Mqo_bench.mqo ~json:"BENCH_mqo.json" ());
    ("graph", fun () -> Graph_bench.graph ~json:"BENCH_graph.json" ());
    ("appendix", Page_experiments.appendix);
    ("micro", micro);
  ]

let () =
  let args =
    match Array.to_list Sys.argv with _ :: rest -> rest | [] -> []
  in
  let faults = ref None in
  let crash = ref None in
  let checkpoint_every = ref None in
  let rec strip = function
    | [] -> []
    | [ "--faults" ] ->
        prerr_endline "--faults needs a numeric rate";
        exit 1
    | "--faults" :: r :: rest -> (
        match float_of_string_opt r with
        | Some v ->
            faults := Some v;
            strip rest
        | None ->
            prerr_endline "--faults needs a numeric rate";
            exit 1)
    | [ "--crash" ] ->
        prerr_endline "--crash needs a numeric rate";
        exit 1
    | "--crash" :: r :: rest -> (
        match float_of_string_opt r with
        | Some v ->
            crash := Some v;
            strip rest
        | None ->
            prerr_endline "--crash needs a numeric rate";
            exit 1)
    | [ "--checkpoint-every" ] ->
        prerr_endline "--checkpoint-every needs an integer";
        exit 1
    | "--checkpoint-every" :: n :: rest -> (
        match int_of_string_opt n with
        | Some v ->
            checkpoint_every := Some v;
            strip rest
        | None ->
            prerr_endline "--checkpoint-every needs an integer";
            exit 1)
    | x :: rest -> x :: strip rest
  in
  let names = strip args in
  let requested =
    match (names, !faults, !crash) with
    | [], Some _, _ | [], _, Some _ ->
        [] (* a knob alone: just its tracked summary *)
    | [], None, None ->
        (* `recovery`, `failover`, `sharding`, `repl-shard`, `throughput`,
           `mqo` and `graph` are opt-in: the default run's output must not
           change when those subsystems are idle *)
        List.filter
          (fun n ->
            n <> "recovery" && n <> "failover" && n <> "sharding"
            && n <> "repl-shard" && n <> "throughput" && n <> "mqo"
            && n <> "graph")
          (List.map fst experiments)
    | names, _, _ -> names
  in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some run -> run ()
      | None ->
          Printf.eprintf "unknown experiment %S; known: %s\n" name
            (String.concat ", " (List.map fst experiments));
          exit 1)
    requested;
  Option.iter (fun rate -> Chaos.tracked ~rate ()) !faults;
  Option.iter
    (fun rate -> Recovery.tracked ~crash:rate ?checkpoint_every:!checkpoint_every ())
    !crash
