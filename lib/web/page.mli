(** The request pipeline: run a controller, render its model, flush the
    writer, and account every millisecond (the Fig. 8 breakdown needs App /
    Db / Network attribution per page load). *)

type metrics = {
  page : string;
  html : string;
  total_ms : float;
  app_ms : float;
  db_ms : float;
  net_ms : float;
  round_trips : int;
  queries : int;
  max_batch : int;  (** largest number of queries in one round trip *)
  faults : int;  (** injected wire faults survived during the load *)
  retries : int;  (** round-trip retries the driver performed *)
  thunk_allocs : int;
  thunk_forces : int;
}

val dispatch_cost_ms : float ref
(** Fixed framework dispatch cost per request (default 2.0 ms). *)

val load :
  name:string ->
  clock:Sloth_net.Vclock.t ->
  link:Sloth_net.Link.t ->
  controller:(unit -> Model.t) ->
  unit ->
  metrics
(** Resets the clock accounting, link stats and thunk counters, then runs
    the full request.  The returned metrics cover exactly this load. *)

val pp_metrics : Format.formatter -> metrics -> unit
