module Vclock = Sloth_net.Vclock
module Stats = Sloth_net.Stats
module Link = Sloth_net.Link

type metrics = {
  page : string;
  html : string;
  total_ms : float;
  app_ms : float;
  db_ms : float;
  net_ms : float;
  round_trips : int;
  queries : int;
  max_batch : int;
  faults : int;
  retries : int;
  thunk_allocs : int;
  thunk_forces : int;
}

let dispatch_cost_ms = ref 2.0

let load ~name ~clock ~link ~controller () =
  Vclock.reset clock;
  Stats.reset (Link.stats link);
  Sloth_core.Runtime.reset ();
  Vclock.advance clock Vclock.App !dispatch_cost_ms;
  let writer = Writer.create clock in
  let model = controller () in
  View.render writer ~title:name model;
  let html = Writer.flush writer in
  let app, db, net = Vclock.snapshot clock in
  let stats = Link.stats link in
  {
    page = name;
    html;
    total_ms = app +. db +. net;
    app_ms = app;
    db_ms = db;
    net_ms = net;
    round_trips = Stats.round_trips stats;
    queries = Stats.queries stats;
    max_batch = Stats.max_batch stats;
    faults = Stats.faults stats;
    retries = Stats.retries stats;
    thunk_allocs = Sloth_core.Runtime.allocs ();
    thunk_forces = Sloth_core.Runtime.forces ();
  }

let pp_metrics ppf m =
  Format.fprintf ppf
    "%s: %.2f ms (app %.2f, db %.2f, net %.2f) trips=%d queries=%d \
     max-batch=%d"
    m.page m.total_ms m.app_ms m.db_ms m.net_ms m.round_trips m.queries
    m.max_batch
