(** Graph: a semantic triple-store workload (subject–predicate–object over
    a shared [node] table) whose signature pages are reachability queries —
    dependency closure, impact analysis, reporting chain.  Each closure
    runs as a single [WITH RECURSIVE] statement evaluated server-side by
    the executor's semi-naive fixpoint, then resolves every reached node's
    display row — the dependent 1+N that Sloth batches. *)

module TS = Table_spec
open TS

let name = "graph"

let predicates = [ "depends_on"; "reports_to"; "part_of"; "related_to" ]

let specs =
  [
    spec "role" [ name_col "role" ] (fun _ -> 4);
    spec "app_user"
      [ col "username" Sloth_sql.Ast.T_text (Name_like "user"); fk "role_id" "role" ]
      (fun _ -> 20);
    spec "privilege"
      [ name_col "priv"; fk "role_id" "role" ]
      (fun _ -> 90)
      ~list_deps:[ "role_id" ];
    spec "node"
      [ name_col "node";
        col "kind" Sloth_sql.Ast.T_text
          (Choice [ "service"; "library"; "team"; "person" ]) ]
      (fun s -> 40 * s);
    (* Out-degree per predicate ~2.5 (uniform over 4 predicates), so the
       depends_on subgraph is supercritical: closures reach a sizable
       fraction of the nodes instead of dying after a hop. *)
    spec "triple"
      [ fk "subject_id" "node";
        col "predicate" Sloth_sql.Ast.T_text (Choice predicates);
        fk "object_id" "node" ]
      (fun s -> 400 * s)
      ~list_deps:[ "subject_id"; "object_id" ]
      ~lookups:[ "node" ];
  ]

let populate ?(scale = 1) db = Datagen.populate ~scale db specs

(* Forward closure: everything reachable from [root] over [pred] edges in
   one or more steps.  The delta is the outer join side, so the planner
   index-probes triple's hash-indexed subject_id per delta row instead of
   rescanning the heap each iteration. *)
let closure_sql ~pred ~root =
  Printf.sprintf
    "WITH RECURSIVE reach (id) AS (SELECT object_id FROM triple WHERE \
     subject_id = %d AND predicate = '%s' UNION SELECT t.object_id FROM \
     reach JOIN triple AS t ON t.subject_id = reach.id WHERE t.predicate = \
     '%s') SELECT id FROM reach ORDER BY id ASC"
    root pred pred

(* Reverse closure: everything that transitively points at [root]. *)
let reverse_closure_sql ~pred ~root =
  Printf.sprintf
    "WITH RECURSIVE rdeps (id) AS (SELECT subject_id FROM triple WHERE \
     object_id = %d AND predicate = '%s' UNION SELECT t.subject_id FROM \
     rdeps JOIN triple AS t ON t.object_id = rdeps.id WHERE t.predicate = \
     '%s') SELECT id FROM rdeps ORDER BY id ASC"
    root pred pred

module Pages (X : Sloth_core.Exec.S) = struct
  module K = Webapp.Kit (X)
  module Html = Sloth_web.Html
  module Model = Sloth_web.Model
  module Row = Sloth_orm.Row
  module Value = Sloth_storage.Value
  module Rs = Sloth_storage.Result_set
  module Thunk = Sloth_core.Thunk
  open Sloth_sql.Ast

  let menu_checks page_name = 14 + (Hashtbl.hash page_name mod 12)
  let forced_checks page_name = 4 + (Hashtbl.hash (page_name ^ "!") mod 14)

  let std page_name build =
    ( page_name,
      fun () ->
        let req = K.new_request specs in
        if
          K.prelude req ~user_table:"app_user" ~privilege_table:"privilege"
            ~menu_checks:(menu_checks page_name)
            ~forced_checks:(forced_checks page_name) ~user_id:1 ()
        then build req;
        req.model )

  let ids_of_rs rs =
    List.filter_map
      (fun row -> match row.(0) with Value.Int i -> Some i | _ -> None)
      (Rs.rows rs)

  (* Run a reachability statement (forced — control flow needs the id set),
     then resolve each reached node through the ORM proxy point: the
     original runtime pays one round trip per node, Sloth batches them. *)
  let closure_page page_name ~title sql =
    std page_name (fun req ->
        let module Nodes = (val req.repo (K.spec req "node")) in
        let ids =
          X.get (X.query (Sloth_sql.Parser.parse sql) ids_of_rs)
        in
        Model.put_now req.model "count"
          (Html.p [ Html.text title; Html.int (List.length ids) ]);
        let cells =
          List.map
            (fun id ->
              X.defer (fun () ->
                  X.map
                    (K.opt_html (fun n ->
                         Html.li [ Html.text (K.display_name n) ]))
                    (Nodes.find id)))
            ids
        in
        Model.put req.model "nodes"
          (Thunk.map (fun lis -> Html.ul lis) (Thunk.all cells)))

  let dependency_closure =
    closure_page "dependency_closure" ~title:"transitive dependencies: "
      (closure_sql ~pred:"depends_on" ~root:1)

  let impact_analysis =
    closure_page "impact_analysis" ~title:"transitive dependents: "
      (reverse_closure_sql ~pred:"depends_on" ~root:3)

  let reporting_chain =
    closure_page "reporting_chain" ~title:"management chain: "
      (closure_sql ~pred:"reports_to" ~root:2)

  let graph_home =
    std "graph_home" (fun req ->
        let module Nodes = (val req.repo (K.spec req "node")) in
        let module Triples = (val req.repo (K.spec req "triple")) in
        Model.put req.model "n_node"
          (X.to_thunk (X.map (fun n -> Html.p [ Html.int n ]) (Nodes.count ())));
        List.iter
          (fun pred ->
            Model.put req.model ("n_" ^ pred)
              (X.to_thunk
                 (X.map
                    (fun n -> Html.p [ Html.int n ])
                    (Triples.count
                       ~where:
                         (Binop
                            (Eq, Col (None, "predicate"), Lit (L_string pred)))
                       ()))))
          predicates;
        Model.put req.model "recent"
          (X.to_thunk (X.map K.rows_table (Triples.all ~limit:10 ()))))

  let pages =
    [
      graph_home;
      dependency_closure;
      impact_analysis;
      reporting_chain;
      std "admin/node/list" (fun req ->
          K.list_page req (TS.find specs "node") ());
      std "admin/node/edit" (fun req ->
          K.form_page req (TS.find specs "node") ~id:2 ());
      std "admin/triple/list" (fun req ->
          K.list_page req (TS.find specs "triple") ());
      std "admin/triple/edit" (fun req ->
          K.form_page req (TS.find specs "triple") ~id:2 ());
    ]

  let page_names = List.map fst pages
  let controller page_name = List.assoc page_name pages
end
