(** Data-driven table descriptions shared by the data generator, the
    generic ORM entities, and the page builders of the evaluation
    applications. *)

type colgen =
  | Serial  (** 1..n primary keys *)
  | Fk of string  (** uniform reference into the named parent table *)
  | Skewed_fk of string
      (** like [Fk] but one eighth of the children attach to parent id 1 —
          a hot entity, used by the database-scaling experiment *)
  | Name_like of string  (** [prefix ^ string_of_int id] *)
  | Int_range of int * int  (** inclusive *)
  | Float_range of float * float
  | Choice of string list
  | Flag  (** boolean *)
  | Derived of (int -> Sloth_storage.Value.t)
      (** computed from the row id — e.g. exhaustive pair enumeration *)

type col = { cname : string; cty : Sloth_sql.Ast.col_type; cgen : colgen }

type t = {
  table : string;
  cols : col list;  (** first column is always the Serial primary key *)
  rows_at : int -> int;  (** scale factor -> row count *)
  list_deps : string list;
      (** FK columns expanded per row on list pages (the 1+N pattern) *)
  lookups : string list;
      (** tables loaded wholesale on form pages (dropdown sources) *)
  eager_children : (string * string) list;
      (** [(child_table, fk_column)] associations mapped with Hibernate's
          EAGER strategy: loaded with every owning entity under the
          original runtime, used or not; never issued by Sloth unless
          accessed *)
}

val spec :
  ?list_deps:string list ->
  ?lookups:string list ->
  ?eager_children:(string * string) list ->
  string ->
  col list ->
  (int -> int) ->
  t
(** [spec table cols rows_at] prepends the [id] Serial primary key. *)

val col : string -> Sloth_sql.Ast.col_type -> colgen -> col
val fk : string -> string -> col
val name_col : ?cname:string -> string -> col
val id_col : col

val find : t list -> string -> t
(** Raises [Invalid_argument] for unknown tables. *)

val parent_of_fk : t -> string -> string
(** The parent table of a (possibly skewed) foreign-key column. *)

val entity : t -> (module Sloth_orm.Generic.ROW_ENTITY)
(** The generic ORM entity for the spec, including its eager
    associations. *)

val schema : t -> Sloth_storage.Schema.t
