(** Shared page machinery for the evaluation applications (tracker, medrec
    and the graph triple store).

    [Kit] is instantiated per execution strategy and provides the
    controller building blocks: the framework prelude (session user lookup,
    access check, per-privilege menu construction — the per-request query
    storm real ORM applications exhibit), generic admin list/form/view
    controllers driven by {!Table_spec}, and rendering helpers.

    Repositories are created once per request via {!Kit.new_request}, so
    the Hibernate-style first-level cache has request scope in both
    execution modes. *)

module Value = Sloth_storage.Value
module Model = Sloth_web.Model
module Html = Sloth_web.Html
module Thunk = Sloth_core.Thunk
open Sloth_orm

module Kit (X : Sloth_core.Exec.S) = struct
  module type ROW_REPO = sig
    val find : int -> Row.t option X.v
    val find_exn : int -> Row.t X.v
    val all : ?order_by:string -> ?limit:int -> unit -> Row.t list X.v

    val where :
      ?order_by:string -> ?limit:int -> Sloth_sql.Ast.expr -> Row.t list X.v

    val find_by : string -> Value.t -> Row.t list X.v
    val count : ?where:Sloth_sql.Ast.expr -> unit -> int X.v
    val assoc_rows : string -> int -> Row.t list X.v
    val insert : Row.t -> unit
    val update_fields : int -> (string * Value.t) list -> int
    val delete : int -> int
  end

  type request = {
    model : Model.t;
    repo : Table_spec.t -> (module ROW_REPO);
    specs : Table_spec.t list;
  }

  let new_request specs =
    let cache : (string, (module ROW_REPO)) Hashtbl.t = Hashtbl.create 8 in
    let repo (spec : Table_spec.t) =
      match Hashtbl.find_opt cache spec.table with
      | Some r -> r
      | None ->
          let r =
            (module Repo.Make (X) ((val Table_spec.entity spec)) : ROW_REPO)
          in
          Hashtbl.replace cache spec.table r;
          r
    in
    { model = Model.create (); repo; specs }

  let spec req table = Table_spec.find req.specs table

  (* --- rendering helpers ------------------------------------------------ *)

  let cell_of_value v = Html.td [ Html.text (Value.to_string v) ]

  let row_html row =
    Html.tr (List.map (fun (_, v) -> cell_of_value v) (Row.to_list row))

  let rows_table rows = Html.table (List.map row_html rows)

  let definition_html row =
    Html.ul
      (List.map
         (fun (c, v) ->
           Html.li [ Html.text (c ^ ": " ^ Value.to_string v) ])
         (Row.to_list row))

  let opt_html render = function
    | Some x -> render x
    | None -> Html.text "(missing)"

  (* The display column differs per table (name, username, identifier, …);
     fall back to the primary key. *)
  let display_name row =
    let cols = Row.to_list row in
    let candidates = [ "name"; "username"; "identifier"; "code"; "prop"; "number"; "filename" ] in
    match
      List.find_map
        (fun c -> Option.map snd (List.find_opt (fun (n, _) -> String.equal n c) cols))
        candidates
    with
    | Some v -> Value.to_string v
    | None -> (
        match cols with
        | ("id", v) :: _ -> "#" ^ Value.to_string v
        | _ -> "?")

  (* --- the framework prelude -------------------------------------------- *)

  (** Session lookup, access check and menu construction.  The user and the
      role's privileges are *needed* to decide whether to proceed, so they
      force; the per-privilege menu checks are only rendered, so under
      Sloth they batch with the rest of the page.  Returns false when the
      page should render as unauthorized. *)
  let prelude req ~user_table ~privilege_table ~menu_checks ?(forced_checks = 0) ~user_id () =
    let module Users = (val req.repo (spec req user_table)) in
    let module Privs = (val req.repo (spec req privilege_table)) in
    match X.get (Users.find user_id) with
    | None ->
        Model.put_now req.model "error" (Html.text "no such user");
        false
    | Some user ->
        let role_id = Row.int user "role_id" in
        let privileges =
          X.get (Privs.find_by "role_id" (Value.Int role_id))
        in
        if privileges = [] then begin
          Model.put_now req.model "error" (Html.text "unauthorized");
          false
        end
        else begin
          Model.put_now req.model "user"
            (Html.span [ Html.text (Row.str user "username") ]);
          let checks =
            List.init menu_checks (fun i ->
                let name = Printf.sprintf "priv%d" (i + 1) in
                let open Sloth_sql.Ast in
                X.map
                  (fun n ->
                    Html.li
                      [
                        Html.text
                          (Printf.sprintf "%s:%s" name
                             (if n > 0 then "on" else "off"));
                      ])
                  (Privs.count
                     ~where:
                       (Binop
                          ( And,
                            Binop (Eq, Col (None, "name"), Lit (L_string name)),
                            Binop (Eq, Col (None, "role_id"), Lit (L_int role_id))
                          ))
                     ()))
          in
          Model.put req.model "menu"
            (X.to_thunk (X.map (fun items -> Html.ul items) (X.all checks)));
          (* Section gates: privilege checks whose results drive control
             flow ("if (hasPrivilege(...)) addSection(...)").  These are
             consumed immediately, so not even Sloth can batch them — the
             dependent chains that keep its round-trip counts well above
             one per page, as in the paper's appendix numbers. *)
          for i = 1 to forced_checks do
            let name = Printf.sprintf "priv%d" (60 + i) in
            let open Sloth_sql.Ast in
            let visible =
              X.get
                (Privs.count
                   ~where:
                     (Binop
                        ( And,
                          Binop (Eq, Col (None, "name"), Lit (L_string name)),
                          Binop (Eq, Col (None, "role_id"), Lit (L_int role_id))
                        ))
                   ())
              > 0
            in
            if visible then
              Model.put_now req.model
                (Printf.sprintf "section_%d" i)
                (Html.span [ Html.text "visible" ])
          done;
          true
        end

  (* --- generic admin controllers ---------------------------------------- *)

  (** A list page: header count, then a table of rows where every foreign
      key in [list_deps] is expanded to the parent's display name — the 1+N
      pattern.  [render_limit] models views that only show the first rows
      of what the controller fetched. *)
  let list_page req (s : Table_spec.t) ?(limit = 25) ?render_limit ?where ()
      =
    let module R = (val req.repo s) in
    Model.put req.model "count"
      (X.to_thunk
         (X.map (fun n -> Html.p [ Html.int n ]) (R.count ?where ())));
    let rows =
      match where with
      | None -> X.get (R.all ~limit ())
      | Some pred -> X.get (R.where ~limit pred)
    in
    (* Foreign keys resolve through the ORM proxy point ([X.defer]): the
       original runtime fetches them lazily when the view renders the row,
       the Sloth runtime registers the queries here. *)
    let expand_row row =
      let base =
        List.map (fun (_, v) -> cell_of_value v) (Row.to_list row)
      in
      let parents =
        List.map
          (fun fk_col ->
            let parent = Table_spec.parent_of_fk s fk_col in
            let pspec = spec req parent in
            let module P = (val req.repo pspec) in
            let pid = Row.int row fk_col in
            X.defer (fun () ->
                X.map
                  (opt_html (fun p -> Html.td [ Html.text (display_name p) ]))
                  (P.find pid)))
          s.list_deps
      in
      Thunk.map
        (fun parents -> Html.tr (base @ parents))
        (Thunk.all parents)
    in
    let row_cells = List.map expand_row rows in
    let rendered =
      match render_limit with
      | None -> row_cells
      | Some k -> List.filteri (fun i _ -> i < k) row_cells
    in
    Model.put req.model "rows"
      (Thunk.map (fun trs -> Html.table trs) (Thunk.all rendered))

  (** A form (edit) page: the entity, its foreign-key parents, and the full
      contents of each lookup table feeding a dropdown. *)
  let form_page req (s : Table_spec.t) ~id () =
    let module R = (val req.repo s) in
    match X.get (R.find id) with
    | None -> Model.put_now req.model "entity" (Html.text "(missing)")
    | Some row ->
        Model.put_now req.model "entity" (definition_html row);
        List.iter
          (fun (c : Table_spec.col) ->
            match c.cgen with
            | Table_spec.Fk parent | Table_spec.Skewed_fk parent ->
                let pspec = spec req parent in
                let module P = (val req.repo pspec) in
                let pid = Row.int row c.cname in
                Model.put req.model ("ref_" ^ c.cname)
                  (X.defer (fun () ->
                       X.map (opt_html definition_html) (P.find pid)))
            | _ -> ())
          s.cols;
        List.iter
          (fun dep ->
            let dspec = spec req dep in
            let module D = (val req.repo dspec) in
            Model.put req.model ("options_" ^ dep)
              (X.defer (fun () ->
                   X.map
                     (fun rows ->
                       Html.ul
                         (List.map
                            (fun r -> Html.li [ Html.text (display_name r) ])
                            rows))
                     (D.all ~limit:50 ()))))
          s.lookups

  (** A read-only view page: the entity plus counts of related children. *)
  let view_page req (s : Table_spec.t) ~id ~children () =
    let module R = (val req.repo s) in
    match X.get (R.find id) with
    | None -> Model.put_now req.model "entity" (Html.text "(missing)")
    | Some row ->
        Model.put_now req.model "entity" (definition_html row);
        List.iter
          (fun (child_table, fk_col) ->
            let cspec = spec req child_table in
            let module C = (val req.repo cspec) in
            let open Sloth_sql.Ast in
            Model.put req.model ("n_" ^ child_table)
              (X.defer (fun () ->
                   X.map
                     (fun n -> Html.p [ Html.int n ])
                     (C.count
                        ~where:(Binop (Eq, Col (None, fk_col), Lit (L_int id)))
                        ()))))
          children;
        ignore row
end
