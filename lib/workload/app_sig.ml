(** The interface an evaluation application exposes to the harness. *)

module type S = sig
  val name : string
  val specs : Table_spec.t list
  val populate : ?scale:int -> Sloth_storage.Database.t -> unit

  module Pages (X : Sloth_core.Exec.S) : sig
    val pages : (string * (unit -> Sloth_web.Model.t)) list
    val page_names : string list
    val controller : string -> unit -> Sloth_web.Model.t
  end
end

let medrec : (module S) = (module Medrec)
let tracker : (module S) = (module Tracker)
let graph : (module S) = (module Graph)
