(** Shared page machinery for the evaluation applications (tracker, medrec
    and the graph triple store).

    {!Kit} is instantiated per execution strategy and provides the
    controller building blocks: the framework prelude (session user lookup,
    access check, per-privilege menu construction — the per-request query
    storm real ORM applications exhibit), generic admin list/form/view
    controllers driven by {!Table_spec}, and rendering helpers.

    Repositories are created once per request via {!Kit.new_request}, so
    the Hibernate-style first-level cache has request scope in both
    execution modes. *)

module Kit (X : Sloth_core.Exec.S) : sig
  (** One table's repository under execution strategy [X] — the
      {!Sloth_orm.Repo.Make} surface with results wrapped in [X.v]. *)
  module type ROW_REPO = sig
    val find : int -> Sloth_orm.Row.t option X.v
    val find_exn : int -> Sloth_orm.Row.t X.v

    val all :
      ?order_by:string -> ?limit:int -> unit -> Sloth_orm.Row.t list X.v

    val where :
      ?order_by:string ->
      ?limit:int ->
      Sloth_sql.Ast.expr ->
      Sloth_orm.Row.t list X.v

    val find_by : string -> Sloth_storage.Value.t -> Sloth_orm.Row.t list X.v
    val count : ?where:Sloth_sql.Ast.expr -> unit -> int X.v
    val assoc_rows : string -> int -> Sloth_orm.Row.t list X.v
    val insert : Sloth_orm.Row.t -> unit
    val update_fields : int -> (string * Sloth_storage.Value.t) list -> int
    val delete : int -> int
  end

  type request = {
    model : Sloth_web.Model.t;
    repo : Table_spec.t -> (module ROW_REPO);
    specs : Table_spec.t list;
  }

  val new_request : Table_spec.t list -> request
  (** A fresh model plus a per-request repository cache: asking for the
      same table twice returns the same repository instance. *)

  val spec : request -> string -> Table_spec.t
  (** Look a table's spec up in the request's spec list; raises if the
      table is unknown. *)

  (** {2 Rendering helpers} *)

  val cell_of_value : Sloth_storage.Value.t -> Sloth_web.Html.t
  val row_html : Sloth_orm.Row.t -> Sloth_web.Html.t
  val rows_table : Sloth_orm.Row.t list -> Sloth_web.Html.t

  val definition_html : Sloth_orm.Row.t -> Sloth_web.Html.t
  (** A column/value definition list for one row. *)

  val opt_html : ('a -> Sloth_web.Html.t) -> 'a option -> Sloth_web.Html.t
  (** Render with the given function, or a "(missing)" placeholder. *)

  val display_name : Sloth_orm.Row.t -> string
  (** The row's human label: the first populated column among name /
      username / identifier / code / prop / number / filename, falling
      back to "#id". *)

  (** {2 The framework prelude} *)

  val prelude :
    request ->
    user_table:string ->
    privilege_table:string ->
    menu_checks:int ->
    ?forced_checks:int ->
    user_id:int ->
    unit ->
    bool
  (** Session lookup, access check and menu construction.  The user and the
      role's privileges are {e needed} to decide whether to proceed, so
      they force; the [menu_checks] per-privilege menu probes are only
      rendered, so under Sloth they batch with the rest of the page.
      [forced_checks] adds section gates — privilege checks consumed
      immediately to drive control flow, which not even Sloth can batch.
      Returns false when the page should render as unauthorized. *)

  (** {2 Generic admin controllers} *)

  val list_page :
    request ->
    Table_spec.t ->
    ?limit:int ->
    ?render_limit:int ->
    ?where:Sloth_sql.Ast.expr ->
    unit ->
    unit
  (** A list page: header count, then a table of rows where every foreign
      key in the spec's [list_deps] is expanded to the parent's display
      name — the 1+N pattern.  [render_limit] models views that only show
      the first rows of what the controller fetched. *)

  val form_page : request -> Table_spec.t -> id:int -> unit -> unit
  (** A form (edit) page: the entity, its foreign-key parents, and the full
      contents of each lookup table feeding a dropdown. *)

  val view_page :
    request ->
    Table_spec.t ->
    id:int ->
    children:(string * string) list ->
    unit ->
    unit
  (** A read-only view page: the entity plus counts of related children,
      given as [(child_table, fk_column)] pairs. *)
end
