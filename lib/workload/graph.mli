(** Graph: the semantic triple-store evaluation application — a [node]
    table and a subject–predicate–object [triple] table (both FK columns
    hash-indexed by datagen) with reachability pages: dependency closure,
    impact analysis (reverse closure) and the reporting chain.  Each page
    issues one [WITH RECURSIVE] statement, evaluated by the executor's
    semi-naive fixpoint, then resolves every reached node's row — the
    dependent 1+N the Sloth runtime batches. *)

val name : string
val specs : Table_spec.t list
val populate : ?scale:int -> Sloth_storage.Database.t -> unit

val predicates : string list
(** The edge labels datagen draws uniformly: [depends_on], [reports_to],
    [part_of], [related_to]. *)

val closure_sql : pred:string -> root:int -> string
(** Forward reachability as one [WITH RECURSIVE] statement: every node
    reachable from [root] over [pred] edges in one or more steps, ordered
    by id.  The step leg joins the delta to [triple.subject_id], an indexed
    column, so the planner probes per iteration. *)

val reverse_closure_sql : pred:string -> root:int -> string
(** Reverse reachability: every node that transitively points at [root]. *)

module Pages (X : Sloth_core.Exec.S) : sig
  val pages : (string * (unit -> Sloth_web.Model.t)) list
  val page_names : string list
  val controller : string -> unit -> Sloth_web.Model.t
end
