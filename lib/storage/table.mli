(** Heap storage for one table, with a unique primary-key index and optional
    secondary (non-unique) hash indexes.

    Rows are identified by an internal row id ([rid]); scans visit rows in
    rid order so results are deterministic. *)

type t
type rid = int

exception Constraint_violation of string

val create : Schema.t -> t
val schema : t -> Schema.t
val row_count : t -> int
(** Live rows (excluding deleted slots). *)

val create_index : t -> string -> unit
(** Add a secondary hash index on a column; idempotent.  Existing rows are
    indexed immediately.  Raises [Not_found] for an unknown column. *)

val create_ordered_index : t -> string -> unit
(** Add an ordered secondary index supporting range scans; idempotent. *)

val has_index : t -> string -> bool
val has_ordered_index : t -> string -> bool

val insert : t -> Value.t array -> rid
(** Validates the row against the schema and the primary-key uniqueness
    constraint.  Raises {!Constraint_violation}. *)

val delete : t -> rid -> Value.t array option
(** Remove a row; returns the old row, or [None] if the rid was already
    deleted.  Raises [Invalid_argument] on an out-of-range rid. *)

val update : t -> rid -> Value.t array -> Value.t array
(** Replace a row, maintaining all indexes; returns the old row.  Raises
    {!Constraint_violation} or [Invalid_argument]. *)

val get : t -> rid -> Value.t array option

val shrink_tail : t -> rid -> unit
(** If every slot at index >= [rid] is empty, truncate the heap to [rid]
    (insert-undo support: rid allocation is restored to the pre-transaction
    state). *)

val restore : t -> rid -> Value.t array -> unit
(** Put a previously deleted row back in its original slot (transaction
    rollback support). *)

val heap_length : t -> int
(** Total heap slots, including deleted ones — the next insert's rid. *)

val iter_slots : (rid -> Value.t array option -> unit) -> t -> unit
(** Visit every slot in rid order, deleted ones included (checkpointing). *)

val secondary_columns : t -> string list
(** Columns carrying a secondary hash index, in creation order. *)

val ordered_columns : t -> string list

val apply_redo : t -> rid -> Value.t array option -> unit
(** Physically force slot [rid] to hold [row] ([None] empties it), growing
    the heap as needed and maintaining every index and the live count.
    Idempotent; performs no constraint validation — WAL replay applies
    already-committed states. *)

val iter : (rid -> Value.t array -> unit) -> t -> unit
(** Visit live rows in rid order. *)

val lookup_pk : t -> Value.t -> rid option

val lookup_indexed : t -> string -> Value.t -> rid list option
(** [Some rids] (sorted) if the column has an index (primary or secondary),
    [None] if no index exists. *)

val lookup_range :
  t ->
  string ->
  ?lo:Value.t * bool ->
  ?hi:Value.t * bool ->
  unit ->
  rid list option
(** Range scan over an ordered index ([None] if the column has none); each
    bound is a value plus inclusiveness. *)

val version : t -> int
(** Monotone data version, bumped on every mutation (insert, delete,
    update, redo application, restore).  Statistics caches key on it. *)

val ndv : t -> string -> int
(** Number of distinct non-NULL values in a column: O(1) for indexed or
    primary-key columns, one cached scan otherwise (invalidated by
    {!version} changes).  0 for unknown columns.  Feeds the planner's
    selectivity estimates. *)
