(* Coordinator side of two-phase commit: a durable decision log.

   The log is itself a WAL (length+checksum framed records), holding only
   [Decision] records — one per global transaction that COMMITTED, listing
   the participant shards.  Under presumed abort nothing is ever logged for
   an aborted transaction: the absence of a decision *is* the abort record.
   The append of a [Decision] record is the commit point of the whole
   distributed transaction — everything before it aborts on a crash,
   everything after it must (and will, via in-doubt resolution) commit. *)

type t = {
  log : Wal.store;
  decisions : (int, int list) Hashtbl.t;  (* gtid -> participant shards *)
  mutable next_gtid : int;
}

let recover t =
  Hashtbl.reset t.decisions;
  t.next_gtid <- 0;
  let bytes = Wal.contents t.log in
  let records, valid = Wal.scan bytes in
  (* A torn decision append means the crash hit before the commit point:
     truncate it — presumed abort takes care of the transaction. *)
  if valid < String.length bytes then
    Wal.write_all t.log (String.sub bytes 0 valid);
  List.iter
    (fun r ->
      match r with
      | Wal.Decision { gtid; participants } ->
          Hashtbl.replace t.decisions gtid participants;
          if gtid >= t.next_gtid then t.next_gtid <- gtid + 1
      | _ -> ())
    records

let create ~log =
  let t = { log; decisions = Hashtbl.create 32; next_gtid = 0 } in
  recover t;
  t

let alloc_gtid t =
  let g = t.next_gtid in
  t.next_gtid <- g + 1;
  g

let ensure_next t n = if n > t.next_gtid then t.next_gtid <- n
let next_gtid t = t.next_gtid

let log_commit t ~gtid ~participants =
  Wal.append_records t.log [ Wal.Decision { gtid; participants } ];
  Hashtbl.replace t.decisions gtid participants

let decided_commit t gtid = Hashtbl.mem t.decisions gtid
let participants t gtid = Hashtbl.find_opt t.decisions gtid
let n_decisions t = Hashtbl.length t.decisions

let decisions t =
  Hashtbl.fold (fun gtid ps acc -> (gtid, ps) :: acc) t.decisions []
  |> List.sort compare
let log_size t = String.length (Wal.contents t.log)
