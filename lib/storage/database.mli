(** A database instance: catalog, transaction state and cost accounting.

    This is the server-side entry point used by the drivers.  Every
    execution reports a virtual execution cost derived from {!Cost} so the
    network layer can charge the Db category of the clock. *)

type t

type outcome = {
  rs : Result_set.t;
  rows_affected : int;
  cost_ms : float;  (** estimated execution time of this statement *)
}

exception Sql_error of string

exception Invariant_violation of string
(** An internal protocol invariant broke — not a user error.  The payload
    carries diagnostic context (gtid / epoch / shard) so a chaos-matrix
    failure explains itself instead of dying on a bare [assert false]. *)

val invariant_violation : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** [invariant_violation fmt ...] raises {!Invariant_violation} with the
    formatted message. *)

type recovery_stats = {
  from_checkpoint : bool;  (** a usable checkpoint frame was loaded *)
  replayed_txns : int;  (** committed transactions re-applied from the log *)
  replayed_records : int;  (** redo/DDL records applied *)
  discarded_bytes : int;  (** torn tail truncated from the log *)
  wal_bytes : int;  (** valid log bytes scanned *)
  in_doubt_committed : int;
      (** prepared-but-undecided chunks the in-doubt resolver committed *)
  in_doubt_aborted : int;
      (** prepared-but-undecided chunks resolved as aborted (presumed
          abort: no coordinator decision was found) *)
  recovery_ms : float;  (** wall-clock recovery time (non-deterministic) *)
}
(** [replayed_txns] / [replayed_records] are {e per-call deltas}: they count
    only work this recovery replayed beyond what the previous recovery of
    the same (untruncated) log already reported.  A second crash before any
    new commit therefore reports zero, even though the scan re-reads the
    whole log.  The watermarks reset whenever a checkpoint truncates the
    log.  [wal_bytes] and [discarded_bytes] stay raw per-call facts. *)

val create : ?cost:Cost.model -> unit -> t

val cost_model : t -> Cost.model

val set_planner : t -> bool -> unit
(** Toggle cost-based planning (on by default).  Off, every statement runs
    through the legacy first-match heuristics ({!Executor.Direct}) and
    {!exec_batch} degenerates to independent per-statement execution — the
    differential oracle for the planned path. *)

val planner_enabled : t -> bool

val set_mqo : t -> bool -> unit
(** Toggle the flush-level plan-merge pass (off by default): point/range
    index lookups of one read group fuse into shared probe-set passes and
    structurally-equal join subplans execute once (see {!Mqo}).  Results
    are identical either way; only the rows-scanned accounting and the
    sharing counters change. *)

val mqo_enabled : t -> bool

val set_result_cache : t -> int option -> unit
(** [Some capacity] attaches a cross-flush result cache (LRU-bounded to
    [capacity] entries) keyed on each statement's normalized text and the
    version vector of every table it references; [None] detaches it
    (default).  A cached read reports [rows_scanned = 0].  Any write to a
    referenced table bumps its version and retires the entry; the cache is
    dropped whole across {!crash_restart}, recovery and
    {!install_snapshot}.  The cache is bypassed inside an open
    transaction, so uncommitted state is never published. *)

val result_cache_capacity : t -> int option

type read_stats = {
  cache_hits : int;  (** batched reads served from the result cache *)
  cache_misses : int;  (** cache probes that had to execute *)
  cache_invalidations : int;  (** entries retired by a version bump *)
  cache_entries : int;  (** entries currently held *)
  dedup_folded : int;  (** statements folded by normalized dedup *)
  seq_scans_shared : int;  (** reads that rode another's sequential pass *)
  probe_sets_merged : int;  (** index probes merged into a shared pass *)
  joins_shared : int;  (** join subplans served from a shared execution *)
}

val read_stats : t -> read_stats
(** Cumulative multi-query sharing and cache counters for this database
    (cache counters survive {!crash_restart} even though the entries do
    not). *)

val catalog : t -> Executor.catalog
(** The executor's view of this database's tables (used by [explain] to
    plan without executing). *)

val enable_durability :
  ?checkpoint_every:int -> wal:Wal.store -> checkpoint:Wal.store -> t -> unit
(** Attach a write-ahead log and a checkpoint store.  Every commit appends
    redo records framed with length + checksum; every [checkpoint_every]
    commits (default 8; 0 = never) the full state is snapshotted and the log
    truncated.  If either store is non-empty the database first {e recovers}
    from them, replacing its current contents. *)

val durable : t -> bool

val crash_restart : t -> unit
(** Simulate a server crash + restart, in place: volatile state (open
    transaction, tables) is discarded and the database is rebuilt from the
    checkpoint plus the committed WAL suffix.  Without durability enabled
    this simply wipes the database. *)

val last_recovery : t -> recovery_stats option
(** Stats from the most recent recovery (via {!enable_durability} on
    non-empty stores or {!crash_restart}). *)

val token_applied : t -> string -> bool
(** True if an idempotency token was durably recorded with a committed
    transaction — survives {!crash_restart}, unlike the driver's in-memory
    replay cache. *)

val wal_size : t -> int
(** Current WAL length in bytes (0 when durability is off). *)

val wal_records : t -> Wal.record list
(** Decoded records of the current log's valid prefix (empty when
    durability is off).  Exposed for the sharding auditor, which
    cross-checks every shard's log against the coordinator's decision
    log. *)

val checkpoint_now : t -> unit

val current_lsn : t -> int
(** Log sequence number: the count of committed WAL chunks (transaction
    commits and standalone DDL records) ever appended, restored across
    recovery from the checkpoint's recorded LSN plus the replayed suffix.
    0 when durability is off. *)

val set_commit_tap : t -> (lsn:int -> Wal.record list -> unit) option -> unit
(** Install (or clear) the replication tap: called once per appended WAL
    chunk with the chunk's LSN and its records, before any checkpoint
    truncation.  Used by {!Replication} to stream committed work to
    followers; at most one tap is active per database. *)

val set_ship_prepares : t -> bool -> unit
(** Replicated-shard mode (off by default).  When on, {!dtxn_prepare}'s
    forced [Begin .. Prepare] chunk takes an LSN of its own and fires the
    replication tap, and {!dtxn_commit}'s standalone completion marker
    fires the tap too — so followers hold a prefix-equal copy of the
    primary's log and a promoted follower replays prepared-but-undecided
    chunks as in-doubt, resolving them through the coordinator's decision
    log.  Recovery accounts prepare chunks an LSN the same way, keeping
    the sequence numbers identical live and replayed.  Must be set equally
    on a primary and its followers.  Raises [Invalid_argument] without
    durability. *)

val ship_prepares : t -> bool

val repl_forget : t -> gtid:int -> unit
(** Follower-side cleanup for a globally-aborted prepared transaction:
    presumed abort ships no record, so the shard layer tells each follower
    out of band to drop the stashed chunk and unblock checkpointing.  The
    dead chunk stays in the follower's log and is presumed-aborted by any
    later promotion.  No-op when [gtid] is unknown. *)

val snapshot_safe : t -> bool
(** True when a {!snapshot} taken now would contain only committed state:
    no open transaction and no prepared-but-undecided chunk ([Txn] applies
    heap effects eagerly, so either would bake uncommitted effects into
    the frame).  The shipper defers snapshot catch-up until this holds. *)

val snapshot : t -> string
(** The full durable state as one checksummed checkpoint frame (tables,
    heap, token registry, transaction-id high-water mark and current LSN).
    Used to bootstrap or catch up a replica that fell behind the shipper's
    retained window.  Raises [Invalid_argument] without durability. *)

val install_snapshot : t -> string -> bool
(** Replace this database's entire state with a {!snapshot} frame.  The
    frame's checksum is verified; [false] means the frame was torn or
    corrupt and the database was left wiped (the caller should retransmit).
    On success the snapshot becomes the replica's own checkpoint and its
    WAL is cleared, so a later promotion recovers from it plus any chunks
    streamed afterwards.  Raises [Invalid_argument] without durability. *)

val apply_replicated : t -> lsn:int -> Wal.record list -> unit
(** Apply one shipped WAL chunk on a follower: append it to the follower's
    own log, redo its records (including durable idempotency tokens) and
    advance the follower's LSN to [lsn].  The caller must deliver chunks
    in order without gaps.  Two replicated-shard chunk shapes are handled
    specially: a chunk ending in [Prepare g] is appended and stashed but
    not applied (the heap stays clean until the decision), and a standalone
    [Commit g] marker matching a stash applies the stashed chunk.  Raises
    [Invalid_argument] without durability. *)

val fingerprint : t -> string
(** Hex digest of the full logical contents (tables in creation order, heap
    shape, every live row).  Two databases with equal fingerprints hold the
    same data; the recovery experiment uses this to detect torn batches. *)

val create_table : t -> Schema.t -> unit
(** Raises {!Sql_error} if a table with that name exists. *)

val create_index : t -> table:string -> column:string -> unit
val create_ordered_index : t -> table:string -> column:string -> unit
val table : t -> string -> Table.t option
val table_names : t -> string list

val row_count : t -> string -> int
(** 0 for unknown tables. *)

val in_txn : t -> bool

val atomically : ?token:string -> t -> (unit -> 'a) -> 'a
(** Run [f] atomically: if no client transaction is open, an implicit one
    wraps the call — committed when [f] returns, rolled back (undoing every
    mutation [f] made, most recent first) when it raises.  Inside an open
    client transaction [f] just runs: the client's own COMMIT / ROLLBACK
    decides.  Charges no execution cost; the batch driver uses this to make
    a multi-statement flush all-or-nothing.  [token] is an idempotency token
    logged inside the commit record, making "did this batch apply?"
    answerable after a crash via {!token_applied}. *)

(** {2 Two-phase commit: participant side}

    A sharded deployment routes every write through these entry points with
    a {e coordinator-allocated} global transaction id, so one shard's log
    never reuses an id the coordinator's decision log knows under a
    different fate.  All of them raise [Invalid_argument] when durability
    is off — a 2PC participant without a log to force PREPARE into cannot
    hold up its end of the protocol. *)

val set_in_doubt_resolver : t -> (int -> bool) option -> unit
(** Install (or clear) the in-doubt resolver consulted by recovery for each
    prepared-but-undecided chunk: [true] means the coordinator's decision
    log recorded COMMIT for that gtid, anything else aborts the chunk
    (presumed abort).  With no resolver installed every in-doubt chunk
    aborts. *)

val dtxn_begin : t -> unit
(** Open the participant's local transaction for one distributed write.
    Raises {!Sql_error} if a transaction is already open. *)

val dtxn_prepare : ?token:string -> t -> gtid:int -> bool
(** Phase 1: force the open transaction's redo records, the optional
    idempotency [token] and a [Prepare gtid] marker to the WAL, keeping the
    transaction open and its fate undecided.  Returns [false] (read-only
    vote) when there is nothing to force — the transaction commits locally
    on the spot and drops out of the protocol.  The token registers only
    when the chunk later commits. *)

val dtxn_commit : t -> gtid:int -> unit
(** Phase 2, commit: append the standalone completion marker, commit the
    local transaction and register its token.  Raises [Invalid_argument]
    if [gtid] was not prepared. *)

val dtxn_abort : t -> gtid:int -> unit
(** Abort at any point before {!dtxn_commit}: roll back the local
    transaction (if still open) and forget the prepared entry.  Appends
    {e no} WAL record — under presumed abort the absence of a decision is
    the abort record. *)

val dtxn_commit_1pc : ?token:string -> t -> gtid:int -> unit
(** Single-participant fast path: commit the open transaction as one plain
    [Begin gtid .. Commit gtid] chunk under the coordinator-allocated id,
    skipping PREPARE and the decision record entirely. *)

val prepared_txns : t -> int list
(** Gtids forced by {!dtxn_prepare} and still awaiting their decision,
    ascending.  While non-empty, checkpointing is suppressed: truncating
    the log would discard a forced chunk the coordinator may yet commit. *)

val next_txn_id : t -> int
(** The transaction-id high-water mark (next id this database would
    allocate).  0 when durability is off. *)

val exec : t -> Sloth_sql.Ast.stmt -> outcome
(** Execute any statement, including BEGIN / COMMIT / ROLLBACK.  Outside an
    explicit transaction, writes are autocommitted.  Raises {!Sql_error} on
    constraint violations or malformed statements; if the error happens
    inside a transaction the transaction stays open (the client decides). *)

val exec_batch : t -> Sloth_sql.Ast.stmt list -> outcome list
(** Execute a whole batch, in order.  With the planner enabled, maximal
    runs of consecutive SELECTs are executed together: statements that
    normalize to the same canonical form run once (duplicates share the
    result at zero scan cost) and plans that resolved to full sequential
    scans of the same table share a single heap pass, so the summed
    [cost_ms] reflects the shared work.  Writes and transaction control
    act as barriers between read runs.  Result sets are identical to
    [List.map (exec t)]. *)

val exec_reads : t -> Sloth_sql.Ast.select list -> (outcome * int) list
(** Execute a group of SELECTs through the multi-query path of
    {!exec_batch} and additionally report each statement's rows scanned
    (0 for a normalized duplicate or a sharer of another statement's
    sequential scan).  This is the async server's admission entry point: a
    cross-session flush concatenates the reads of every coalesced batch,
    executes them in one call so sharing happens {e across} sessions, and
    splits the outcomes back per batch.  Respects {!set_planner}; in
    [Direct] mode every statement is planned independently. *)

val exec_sql : t -> string -> outcome
(** Parse then {!exec}. *)

val query : t -> string -> Result_set.t
(** Convenience wrapper over {!exec_sql} returning just the rows. *)
