(** A database instance: catalog, transaction state and cost accounting.

    This is the server-side entry point used by the drivers.  Every
    execution reports a virtual execution cost derived from {!Cost} so the
    network layer can charge the Db category of the clock. *)

type t

type outcome = {
  rs : Result_set.t;
  rows_affected : int;
  cost_ms : float;  (** estimated execution time of this statement *)
}

exception Sql_error of string

val create : ?cost:Cost.model -> unit -> t

val cost_model : t -> Cost.model

val create_table : t -> Schema.t -> unit
(** Raises {!Sql_error} if a table with that name exists. *)

val create_index : t -> table:string -> column:string -> unit
val create_ordered_index : t -> table:string -> column:string -> unit
val table : t -> string -> Table.t option
val table_names : t -> string list

val row_count : t -> string -> int
(** 0 for unknown tables. *)

val in_txn : t -> bool

val atomically : t -> (unit -> 'a) -> 'a
(** Run [f] atomically: if no client transaction is open, an implicit one
    wraps the call — committed when [f] returns, rolled back (undoing every
    mutation [f] made, most recent first) when it raises.  Inside an open
    client transaction [f] just runs: the client's own COMMIT / ROLLBACK
    decides.  Charges no execution cost; the batch driver uses this to make
    a multi-statement flush all-or-nothing. *)

val exec : t -> Sloth_sql.Ast.stmt -> outcome
(** Execute any statement, including BEGIN / COMMIT / ROLLBACK.  Outside an
    explicit transaction, writes are autocommitted.  Raises {!Sql_error} on
    constraint violations or malformed statements; if the error happens
    inside a transaction the transaction stays open (the client decides). *)

val exec_sql : t -> string -> outcome
(** Parse then {!exec}. *)

val query : t -> string -> Result_set.t
(** Convenience wrapper over {!exec_sql} returning just the rows. *)
