(** Statement execution against a catalog of tables.

    The executor is a physical-plan interpreter: every SELECT is lowered and
    planned by {!Planner} (cost-based in {!Planned} mode, the legacy
    first-match heuristics in {!Direct} mode) and the resulting {!Plan}
    operators are interpreted here.  All access paths enumerate rows in
    row-id order and the full WHERE is re-applied above them, so the two
    modes produce identical result sets — [Direct] survives as the
    differential oracle for the planner. *)

type catalog = {
  find_table : string -> Table.t option;
  add_table : Schema.t -> unit;  (** raises {!Sql_error} if it exists *)
}

type outcome = {
  rs : Result_set.t;
  rows_scanned : int;  (** rows examined, feeding the cost model *)
  rows_affected : int;  (** for writes *)
}

(** How SELECT access paths are chosen. *)
type mode =
  | Direct  (** the legacy planner-free heuristics (oracle path) *)
  | Planned  (** cost-based planning over table statistics *)

exception Sql_error of string

exception Recursion_limit of { cte : string; limit : int }
(** A recursive CTE's semi-naive loop hit its iteration cap without
    converging (e.g. [UNION ALL] over a cyclic edge set).  Deliberately not
    a {!Sql_error}: callers distinguish runaway recursion from malformed
    statements. *)

val execute :
  catalog ->
  ?log:(Txn.entry -> unit) ->
  ?mode:mode ->
  ?model:Cost.model ->
  ?recursion_limit:int ->
  Sloth_sql.Ast.stmt ->
  outcome
(** Execute SELECT / INSERT / UPDATE / DELETE / CREATE TABLE.  Transaction
    control statements are the database layer's business and raise
    {!Sql_error} here.  [log] receives undo entries for heap mutations.
    [mode] defaults to [Planned]; [model] feeds the cost estimates.

    A SELECT with a [WITH \[RECURSIVE\]] prefix evaluates the CTE by
    semi-naive fixpoint iteration into a private working table that shadows
    any real table of the same name: the base leg seeds it, then the step
    leg re-runs with only the previous iteration's new rows (the delta)
    bound to the CTE name until nothing new appears.  [UNION] dedupes the
    whole result (including base-leg duplicates); [UNION ALL] keeps every
    row.  Row order is first-insertion order, so results are deterministic.
    After [recursion_limit] iterations (default
    {!Planner.default_recursion_limit}) {!Recursion_limit} is raised.
    The shadow covers the whole statement, so CTE self-references outside
    the step leg's FROM/JOIN — in the base leg or inside IN-subqueries —
    see only the empty initial working table; recursion flows exclusively
    through the step leg. *)

type share_stats = {
  mutable dedup_folded : int;
      (** duplicate statements folded by normalization *)
  mutable seq_scans_shared : int;
      (** members that rode another query's sequential heap pass *)
  mutable probe_sets_merged : int;
      (** point/range probes merged into another member's probe-set pass *)
  mutable joins_shared : int;
      (** join subplans that reused another member's environments *)
}

val fresh_share_stats : unit -> share_stats

val execute_reads :
  catalog ->
  ?mode:mode ->
  ?model:Cost.model ->
  ?mqo:bool ->
  ?recursion_limit:int ->
  ?stats:share_stats ->
  Sloth_sql.Ast.select list ->
  outcome list
(** Execute a batch of reads together (multi-query optimization).
    Statements that normalize to the same canonical form are planned and
    executed once — duplicates share the representative's result set with
    [rows_scanned = 0].  Plans that resolved to a full sequential scan of
    the same table share a single pass over its heap: the first sharer is
    charged the scan, the rest report [rows_scanned = 0] for it.  With
    [mqo] (default off), the {!Mqo} plan-merge pass extends sharing to
    index access paths: point/range lookups on the same index fuse into
    one sorted probe-set pass and structurally-equal join subplans execute
    once, with the same first-sharer-charged accounting.  [stats], when
    given, accumulates sharing counters.  Result sets are identical to
    executing each statement independently in every mode.  Outcomes are
    returned in input order; any statement's error fails the batch. *)

val plan_of_select :
  catalog ->
  ?mode:mode ->
  ?model:Cost.model ->
  ?recursion_limit:int ->
  Sloth_sql.Ast.select ->
  Plan.physical
(** Materialize IN-subqueries, validate, and plan a SELECT without
    executing it (the [explain] entry point).  WITH statements plan against
    the CTE's (empty) working-table overlay, so the fixpoint's legs appear
    in the returned plan. *)
