(** Coordinator side of two-phase commit: the durable decision log.

    A {!t} wraps a {!Wal.store} holding only [Wal.Decision] records, one
    per global transaction that {e committed}, listing its participant
    shards.  Appending the decision record is the commit point of the whole
    distributed transaction.  Aborts are never logged (presumed abort): a
    participant recovering a prepared-but-undecided chunk asks
    {!decided_commit}, and [false] — no decision survived — means abort.

    Unlike a shard's data WAL, the decision log is never checkpoint-
    truncated: it must outlive every prepared chunk that might still
    consult it. *)

type t

val create : log:Wal.store -> t
(** Attach (and recover from) a decision log.  A non-empty store is
    scanned: a torn tail is truncated — the crash hit before that
    transaction's commit point, so presumed abort covers it — and the
    decision table and gtid high-water mark are rebuilt. *)

val recover : t -> unit
(** Re-run the attach-time scan, discarding volatile state.  Called on a
    simulated whole-process crash {e before} the shards recover, so their
    in-doubt resolvers consult the rebuilt decision table. *)

val alloc_gtid : t -> int
(** Allocate the next global transaction id.  Gtids are the {e only}
    transaction ids a sharded deployment writes to participant WALs, so a
    shard-local id can never collide with a decided gtid. *)

val ensure_next : t -> int -> unit
(** [ensure_next t n] raises the allocator's high-water mark to at least
    [n]; used after recovery to clear every participant's replayed ids. *)

val next_gtid : t -> int

val log_commit : t -> gtid:int -> participants:int list -> unit
(** The commit point: force the COMMIT decision for [gtid] to the log. *)

val decided_commit : t -> int -> bool
(** The in-doubt resolution query: did [gtid] commit? *)

val participants : t -> int -> int list option
val n_decisions : t -> int

val decisions : t -> (int * int list) list
(** Every recorded COMMIT decision as [(gtid, participants)], ascending by
    gtid.  The harness's prepared-txn-survival detector walks this to check
    that each decided transaction is applied on every participant after a
    failover. *)

val log_size : t -> int
