open Sloth_sql.Ast

let binding_name table alias = Option.value alias ~default:table

(* --- predicate analysis ------------------------------------------------- *)

let rec conjuncts = function
  | Binop (And, a, b) -> conjuncts a @ conjuncts b
  | e -> [ e ]

let rec is_closed = function
  | Lit _ -> true
  | Col _ -> false
  | Binop (_, a, b) -> is_closed a && is_closed b
  | Unop (_, e) -> is_closed e
  | In_list (e, items) -> is_closed e && List.for_all is_closed items
  | Is_null { e; _ } -> is_closed e
  | Like (e, _) -> is_closed e
  | Between { e; lo; hi } -> is_closed e && is_closed lo && is_closed hi
  | In_select _ -> false
  | Agg _ -> false

let matches_binding table ~binding q col =
  (match q with Some q -> String.equal q binding | None -> true)
  && Schema.mem (Table.schema table) col

let range_bound op v =
  match op with
  | Gt -> (Some (v, false), None)
  | Ge -> (Some (v, true), None)
  | Lt -> (None, Some (v, false))
  | Le -> (None, Some (v, true))
  | _ -> assert false

let flip_cmp = function Gt -> Lt | Ge -> Le | Lt -> Gt | Le -> Ge | op -> op

(* --- recursion defaults -------------------------------------------------- *)

(* Hard cap on semi-naive iterations: generous for any workload closure
   (chains longer than this are data bugs), small enough that a
   non-converging UNION ALL over a cycle fails fast. *)
let default_recursion_limit = 100

(* Expected semi-naive iterations, used only for cost estimates: a typical
   closure (reporting chain, dependency graph) converges within a few hops.
   The estimate is monotone in the step cost either way, which is all the
   comparison between candidate step plans needs. *)
let est_fixpoint_iterations = 8.0

(* The CTE's output column names: the declared list when present, else
   derived from the base leg's select items exactly the way the executor
   names result columns (alias, else the bare column name, else the printed
   expression; [*] expands to every column of every binding, qualified when
   more than one binding is in scope). *)
let cte_columns ~find (c : cte) =
  match c.cte_cols with
  | _ :: _ as cols -> cols
  | [] ->
      let s = c.cte_base in
      let bindings =
        match s.sel_from with
        | None -> []
        | Some (t, alias) ->
            (binding_name t alias, Table.schema (find t))
            :: List.map
                 (fun j ->
                   ( binding_name j.j_table j.j_alias,
                     Table.schema (find j.j_table) ))
                 s.sel_joins
      in
      let qualify = List.length bindings > 1 in
      List.concat_map
        (function
          | Star ->
              List.concat_map
                (fun (b, sch) ->
                  List.map
                    (fun (col : Schema.column) ->
                      if qualify then b ^ "." ^ col.name else col.name)
                    (Schema.columns sch))
                bindings
          | Sel_expr (_, Some alias) -> [ alias ]
          | Sel_expr (Col (_, col), None) -> [ col ]
          | Sel_expr (e, None) -> [ Sloth_sql.Printer.expr_to_string e ])
        c.cte_base.sel_items

(* --- lowering ----------------------------------------------------------- *)

let rec lower (s : select) : Plan.logical =
  let source =
    match s.sel_from with
    | None -> Plan.L_nothing
    | Some (t, alias) ->
        List.fold_left
          (fun left j ->
            Plan.L_join
              {
                left;
                table = j.j_table;
                binding = binding_name j.j_table j.j_alias;
                on = j.j_on;
              })
          (Plan.L_scan { table = t; binding = binding_name t alias })
          s.sel_joins
  in
  {
    Plan.l_fixpoint =
      Option.map
        (fun c ->
          {
            Plan.lf_name = c.cte_name;
            lf_cols = c.cte_cols;
            lf_base = lower c.cte_base;
            lf_step = Option.map lower c.cte_step;
            lf_union_all = c.cte_union_all;
            lf_limit = default_recursion_limit;
          })
        s.sel_with;
    l_source = source;
    l_where = s.sel_where;
    l_group_by = s.sel_group_by;
    l_having = s.sel_having;
    l_order_by = s.sel_order_by;
    l_distinct = s.sel_distinct;
    l_limit = s.sel_limit;
    l_offset = s.sel_offset;
    l_items = s.sel_items;
  }

(* --- the legacy first-match heuristics (the --no-planner oracle) ---------

   These replicate, branch for branch, what the executor did before the
   plan IR existed: take the *first* usable equality conjunct, else the
   first usable range conjunct, else scan — no cost comparison.  Constant
   folding of the chosen key happens eagerly, so an evaluation error in it
   surfaces at plan time exactly as it used to. *)

let direct_eq ~binding table preds =
  let candidate col rhs =
    if Table.has_index table col && is_closed rhs then
      Some (col, Eval.eval_const rhs)
    else None
  in
  List.find_map
    (function
      | Binop (Eq, Col (q, c), rhs) when matches_binding table ~binding q c ->
          candidate c rhs
      | Binop (Eq, rhs, Col (q, c)) when matches_binding table ~binding q c ->
          candidate c rhs
      | _ -> None)
    preds

let direct_range ~binding table preds =
  let ok q c rhs =
    matches_binding table ~binding q c
    && Table.has_ordered_index table c
    && is_closed rhs
  in
  List.find_map
    (function
      | Binop (((Gt | Ge | Lt | Le) as op), Col (q, c), rhs) when ok q c rhs ->
          let lo, hi = range_bound op (Eval.eval_const rhs) in
          Some (c, lo, hi)
      | Binop (((Gt | Ge | Lt | Le) as op), rhs, Col (q, c)) when ok q c rhs ->
          let lo, hi = range_bound (flip_cmp op) (Eval.eval_const rhs) in
          Some (c, lo, hi)
      | Between { e = Col (q, c); lo; hi }
        when matches_binding table ~binding q c
             && Table.has_ordered_index table c
             && is_closed lo && is_closed hi ->
          Some
            ( c,
              Some (Eval.eval_const lo, true),
              Some (Eval.eval_const hi, true) )
      | _ -> None)
    preds

let write_eq table where =
  let binding = Schema.name (Table.schema table) in
  let preds = match where with None -> [] | Some w -> conjuncts w in
  direct_eq ~binding table preds

(* --- estimates ---------------------------------------------------------- *)

let is_pk table c =
  match Schema.primary_key (Table.schema table) with
  | Some pk -> String.equal pk c
  | None -> false

(* [sharers] is the number of same-flush statements expected to share one
   fused probe pass on this index (Mqo's Sh_eq groups): the pass is priced by
   {!Cost.fused_probe_ms} and this statement is charged its per-statement
   share.  [sharers = 1] reduces exactly to {!Cost.index_ms}, so solo plans
   are unchanged. *)
let eq_est ?(sharers = 1) ~model table c =
  let rows = Table.row_count table in
  let est_rows =
    if is_pk table c then Float.min 1.0 (float_of_int rows)
    else Cost.est_eq_rows ~rows ~ndv:(Table.ndv table c)
  in
  let probes = float_of_int (max 1 sharers) in
  {
    Plan.est_rows;
    est_ms = Cost.fused_probe_ms model ~probes ~est_rows /. probes;
  }

let range_est ~model table ~bounded_both =
  let rows = Table.row_count table in
  let est_rows = Cost.est_range_rows ~rows ~bounded_both in
  { Plan.est_rows; est_ms = Cost.index_ms model ~est_rows }

let scan_est ~model table =
  let rows = Table.row_count table in
  {
    Plan.est_rows = float_of_int rows;
    est_ms = Cost.seq_scan_ms model ~rows;
  }

(* --- cost-based access selection ---------------------------------------- *)

(* Every usable equality candidate, in conjunct order.  Unlike the direct
   path, a candidate whose key fails to constant-fold (say 1/0) is skipped
   rather than raised: planning is total, and the row evaluator reports the
   error if the residual predicate is ever reached. *)
let planned_eq_candidates ~binding table preds =
  List.concat_map
    (fun p ->
      match p with
      | Binop (Eq, a, b) ->
          let side col other =
            match col with
            | Col (q, c)
              when matches_binding table ~binding q c
                   && Table.has_index table c && is_closed other -> (
                match Eval.eval_const other with
                | key -> [ (c, key) ]
                | exception Eval.Error _ -> [])
            | _ -> []
          in
          side a b @ side b a
      | _ -> [])
    preds

let planned_range_candidates ~binding table preds =
  let ok q c =
    matches_binding table ~binding q c && Table.has_ordered_index table c
  in
  let const rhs =
    if is_closed rhs then
      match Eval.eval_const rhs with
      | v -> Some v
      | exception Eval.Error _ -> None
    else None
  in
  List.concat_map
    (fun p ->
      match p with
      | Binop (((Gt | Ge | Lt | Le) as op), Col (q, c), rhs) when ok q c -> (
          match const rhs with
          | Some v -> [ (c, range_bound op v) ]
          | None -> [])
      | Binop (((Gt | Ge | Lt | Le) as op), rhs, Col (q, c)) when ok q c -> (
          match const rhs with
          | Some v -> [ (c, range_bound (flip_cmp op) v) ]
          | None -> [])
      | Between { e = Col (q, c); lo; hi } when ok q c -> (
          match (const lo, const hi) with
          | Some l, Some h -> [ (c, (Some (l, true), Some (h, true))) ]
          | _ -> [])
      | _ -> [])
    preds

let cheapest = function
  | [] -> invalid_arg "Planner.cheapest: no candidates"
  | first :: rest ->
      List.fold_left
        (fun ((_, (be : Plan.est)) as best) ((_, (e : Plan.est)) as cand) ->
          if e.est_ms < be.est_ms then cand else best)
        first rest

let plan_access ?(sharers = 1) ~model table ~binding preds =
  let eqs =
    List.map
      (fun (c, key) ->
        (Plan.Index_eq { column = c; key }, eq_est ~sharers ~model table c))
      (planned_eq_candidates ~binding table preds)
  in
  let ranges =
    List.map
      (fun (c, (lo, hi)) ->
        ( Plan.Index_range { column = c; lo; hi },
          range_est ~model table ~bounded_both:(lo <> None && hi <> None) ))
      (planned_range_candidates ~binding table preds)
  in
  cheapest (eqs @ ranges @ [ (Plan.Seq_scan, scan_est ~model table) ])

(* --- join planning ------------------------------------------------------ *)

let rec source_bindings ~find = function
  | Plan.P_nothing -> []
  | Plan.P_scan { table; binding; _ } ->
      [ (binding, Table.schema (find table)) ]
  | Plan.P_join { left; table; binding; _ } ->
      source_bindings ~find left @ [ (binding, Table.schema (find table)) ]

(* The probe key expression must be evaluable against the outer row alone:
   every column it mentions has to resolve in the outer bindings, and it
   must not (even implicitly, via an unqualified name) touch the table
   being joined. *)
let outer_only ~outer_bindings ~binding ~schema e =
  let rec go = function
    | Col (Some q, c) ->
        (not (String.equal q binding))
        && List.exists
             (fun (b, sch) -> String.equal b q && Schema.mem sch c)
             outer_bindings
    | Col (None, c) ->
        List.exists (fun (_, sch) -> Schema.mem sch c) outer_bindings
        && not (Schema.mem schema c)
    | Lit _ -> true
    | Binop (_, a, b) -> go a && go b
    | Unop (_, x) -> go x
    | In_list (x, items) -> go x && List.for_all go items
    | Is_null { e; _ } -> go e
    | Like (x, _) -> go x
    | Between { e; lo; hi } -> go e && go lo && go hi
    | In_select _ | Agg _ -> false
  in
  go e

(* A column of the joined table usable as the probe side: qualified with
   the join binding, or unqualified, in the join schema, and unambiguous
   (absent from every outer schema — an ambiguous name resolves to the
   outer row at evaluation time, so probing the join index on it would
   prune rows the real predicate keeps). *)
let probe_col ~outer_bindings ~binding ~schema = function
  | Col (Some q, c) when String.equal q binding && Schema.mem schema c ->
      Some c
  | Col (None, c)
    when Schema.mem schema c
         && not
              (List.exists
                 (fun (_, sch) -> Schema.mem sch c)
                 outer_bindings) ->
      Some c
  | _ -> None

let plan_join ~find ~model left (j : join) =
  let table = find j.j_table in
  let binding = binding_name j.j_table j.j_alias in
  let schema = Table.schema table in
  let inner_rows = Table.row_count table in
  let outer_bindings = source_bindings ~find left in
  let outer_rows = (Plan.source_est left).Plan.est_rows in
  let eq_sides p =
    match p with Binop (Eq, a, b) -> [ (a, b); (b, a) ] | _ -> []
  in
  let sides = List.concat_map eq_sides (conjuncts j.j_on) in
  (* Any equality on a join-table column narrows the output estimate, with
     or without an index to exploit it. *)
  let per_outer =
    match
      List.find_map
        (fun (col, _) -> probe_col ~outer_bindings ~binding ~schema col)
        sides
    with
    | Some c -> Cost.est_eq_rows ~rows:inner_rows ~ndv:(Table.ndv table c)
    | None -> float_of_int inner_rows
  in
  let probes =
    List.filter_map
      (fun (col, other) ->
        match probe_col ~outer_bindings ~binding ~schema col with
        | Some c
          when Table.has_index table c
               && outer_only ~outer_bindings ~binding ~schema other ->
            let per =
              Cost.est_eq_rows ~rows:inner_rows ~ndv:(Table.ndv table c)
            in
            Some
              ( Plan.Index_probe { column = c; outer = other },
                outer_rows *. Cost.index_ms model ~est_rows:per )
        | _ -> None)
      sides
  in
  let nested =
    (Plan.Nested_loop, outer_rows *. Cost.seq_scan_ms model ~rows:inner_rows)
  in
  let strategy, strat_ms =
    List.fold_left
      (fun ((_, bms) as best) ((_, ms) as cand) ->
        if ms < bms then cand else best)
      (match probes with p :: _ -> p | [] -> nested)
      (match probes with _ :: rest -> rest @ [ nested ] | [] -> [])
  in
  let est =
    {
      Plan.est_rows = outer_rows *. per_outer;
      est_ms = (Plan.source_est left).Plan.est_ms +. strat_ms;
    }
  in
  Plan.P_join { left; table = j.j_table; binding; on = j.j_on; strategy; est }

(* --- whole-statement planning ------------------------------------------- *)

let physical_of_source ?fixpoint (s : select) p_source =
  {
    Plan.p_fixpoint = fixpoint;
    p_source;
    p_where = s.sel_where;
    p_group_by = s.sel_group_by;
    p_having = s.sel_having;
    p_order_by = s.sel_order_by;
    p_distinct = s.sel_distinct;
    p_limit = s.sel_limit;
    p_offset = s.sel_offset;
    p_items = s.sel_items;
    p_est = Plan.source_est p_source;
  }

(* Plan a CTE's two legs with [plan_leg] (cost-based or direct, matching the
   enclosing mode) and price the fixpoint.  [find] must already resolve
   [cte_name] — the executor plans against a catalog overlaid with the CTE's
   working table, so the step leg's references to it cost like the (empty at
   plan time) scratch table and its index candidates resolve normally. *)
let plan_fixpoint ~plan_leg ~find ~model ~recursion_limit (c : cte) =
  let pf_base = plan_leg c.cte_base in
  let pf_step = Option.map plan_leg c.cte_step in
  let base_est = pf_base.Plan.p_est in
  let step_est =
    match pf_step with
    | None -> { Plan.est_rows = 0.0; est_ms = 0.0 }
    | Some p -> p.Plan.p_est
  in
  let est_iterations =
    match pf_step with None -> 0.0 | Some _ -> est_fixpoint_iterations
  in
  {
    Plan.pf_name = c.cte_name;
    pf_cols = cte_columns ~find c;
    pf_base;
    pf_step;
    pf_union_all = c.cte_union_all;
    pf_limit = recursion_limit;
    pf_est =
      {
        Plan.est_rows =
          base_est.Plan.est_rows
          +. (est_iterations *. step_est.Plan.est_rows);
        est_ms =
          Cost.fixpoint_ms model ~base_ms:base_est.Plan.est_ms
            ~step_ms:step_est.Plan.est_ms ~est_iterations;
      };
  }

let rec plan ?(probe_sharers = 1)
    ?(recursion_limit = default_recursion_limit) ~find ~model (s : select) =
  let fixpoint =
    Option.map
      (plan_fixpoint
         ~plan_leg:(plan ~probe_sharers ~recursion_limit ~find ~model)
         ~find ~model ~recursion_limit)
      s.sel_with
  in
  let source =
    match s.sel_from with
    | None -> Plan.P_nothing
    | Some (t, alias) ->
        let table = find t in
        let binding = binding_name t alias in
        let preds =
          match s.sel_where with None -> [] | Some w -> conjuncts w
        in
        let access, est =
          plan_access ~sharers:probe_sharers ~model table ~binding preds
        in
        let base = Plan.P_scan { table = t; binding; access; est } in
        List.fold_left (plan_join ~find ~model) base s.sel_joins
  in
  physical_of_source ?fixpoint s source

let rec direct ?(recursion_limit = default_recursion_limit) ~find ~model
    (s : select) =
  let fixpoint =
    Option.map
      (plan_fixpoint
         ~plan_leg:(direct ~recursion_limit ~find ~model)
         ~find ~model ~recursion_limit)
      s.sel_with
  in
  let source =
    match s.sel_from with
    | None -> Plan.P_nothing
    | Some (t, alias) ->
        let table = find t in
        let binding = binding_name t alias in
        let preds =
          match s.sel_where with None -> [] | Some w -> conjuncts w
        in
        let access, est =
          match direct_eq ~binding table preds with
          | Some (c, key) ->
              (Plan.Index_eq { column = c; key }, eq_est ~model table c)
          | None -> (
              match direct_range ~binding table preds with
              | Some (c, lo, hi) ->
                  ( Plan.Index_range { column = c; lo; hi },
                    range_est ~model table
                      ~bounded_both:(lo <> None && hi <> None) )
              | None -> (Plan.Seq_scan, scan_est ~model table))
        in
        let base = Plan.P_scan { table = t; binding; access; est } in
        List.fold_left
          (fun left (j : join) ->
            let table = find j.j_table in
            let binding = binding_name j.j_table j.j_alias in
            let schema = Table.schema table in
            let refs_join_only q c =
              (match q with Some q -> String.equal q binding | None -> true)
              && Schema.mem schema c
            in
            let strategy =
              match j.j_on with
              | Binop (Eq, Col (q, c), other)
                when refs_join_only q c && Table.has_index table c ->
                  Plan.Index_probe { column = c; outer = other }
              | Binop (Eq, other, Col (q, c))
                when refs_join_only q c && Table.has_index table c ->
                  Plan.Index_probe { column = c; outer = other }
              | _ -> Plan.Nested_loop
            in
            let left_est = Plan.source_est left in
            let est =
              {
                Plan.est_rows =
                  left_est.Plan.est_rows
                  *. float_of_int (Table.row_count table);
                est_ms = left_est.Plan.est_ms;
              }
            in
            Plan.P_join
              { left; table = j.j_table; binding; on = j.j_on; strategy; est })
          base s.sel_joins
  in
  physical_of_source ?fixpoint s source
