(** The query-plan intermediate representation.

    A SELECT lowers to a {!logical} plan — a join tree plus the residual
    pipeline (filter, grouping, sort, pagination, projection) — which the
    {!Planner} turns into a {!physical} plan by choosing an access path per
    base table and a strategy per join, annotated with cardinality and cost
    estimates from {!Cost} and {!Table} statistics.  {!Executor} interprets
    physical plans; it contains no access-path decisions of its own. *)

type est = { est_rows : float; est_ms : float }

(** How the rows of a base table are produced. *)
type access =
  | Seq_scan  (** full heap scan in rid order *)
  | Index_eq of { column : string; key : Value.t }
      (** hash-index (or primary-key) point lookup *)
  | Index_range of {
      column : string;
      lo : (Value.t * bool) option;
      hi : (Value.t * bool) option;
    }  (** ordered-index range scan; each bound is (value, inclusive) *)

type join_strategy =
  | Nested_loop  (** scan the inner table per outer row *)
  | Index_probe of { column : string; outer : Sloth_sql.Ast.expr }
      (** evaluate [outer] in the outer row's environment, probe the inner
          table's index on [column]; falls back to a scan for rows where
          [outer] cannot be evaluated *)

type l_source =
  | L_nothing  (** SELECT without FROM *)
  | L_scan of { table : string; binding : string }
  | L_join of {
      left : l_source;
      table : string;
      binding : string;
      on : Sloth_sql.Ast.expr;
    }

type logical = {
  l_fixpoint : l_fixpoint option;
      (** a CTE evaluated before the main pipeline; its working table
          shadows any real table of the same name in [l_source] *)
  l_source : l_source;
  l_where : Sloth_sql.Ast.expr option;
  l_group_by : Sloth_sql.Ast.expr list;
  l_having : Sloth_sql.Ast.expr option;
  l_order_by : Sloth_sql.Ast.order list;
  l_distinct : bool;
  l_limit : int option;
  l_offset : int option;
  l_items : Sloth_sql.Ast.sel_item list;
}

(** The fixpoint operator behind [WITH [RECURSIVE]]: evaluate the base leg
    into a working table, then run the step leg against the previous
    iteration's delta until no new rows appear (semi-naive evaluation) or
    the iteration cap trips. *)
and l_fixpoint = {
  lf_name : string;  (** CTE (working table) name *)
  lf_cols : string list;  (** declared columns; [] derives from the base *)
  lf_base : logical;
  lf_step : logical option;  (** [None]: a plain single-leg CTE *)
  lf_union_all : bool;  (** keep duplicates vs dedupe against the result *)
  lf_limit : int;  (** hard iteration cap *)
}

type p_source =
  | P_nothing
  | P_scan of { table : string; binding : string; access : access; est : est }
  | P_join of {
      left : p_source;
      table : string;
      binding : string;
      on : Sloth_sql.Ast.expr;
      strategy : join_strategy;
      est : est;
    }

type physical = {
  p_fixpoint : p_fixpoint option;
  p_source : p_source;
  p_where : Sloth_sql.Ast.expr option;
      (** the full WHERE, re-applied above the access path (the index is
          only a pre-filter) *)
  p_group_by : Sloth_sql.Ast.expr list;
  p_having : Sloth_sql.Ast.expr option;
  p_order_by : Sloth_sql.Ast.order list;
  p_distinct : bool;
  p_limit : int option;
  p_offset : int option;
  p_items : Sloth_sql.Ast.sel_item list;
  p_est : est;  (** the source estimate: rows produced and access cost *)
}

and p_fixpoint = {
  pf_name : string;
  pf_cols : string list;
  pf_base : physical;
  pf_step : physical option;
      (** planned against the delta binding for [pf_name], so the step leg
          can pick index access on the delta-joined column *)
  pf_union_all : bool;
  pf_limit : int;
  pf_est : est;  (** {!Cost.fixpoint_ms} over the base and step estimates *)
}

val source_est : p_source -> est

val pp_logical : Format.formatter -> logical -> unit
val pp_physical : Format.formatter -> physical -> unit
(** Indented operator trees, top operator first (EXPLAIN-style). *)

val logical_to_string : logical -> string
val physical_to_string : physical -> string
