(** Cost-based query planning over the {!Plan} IR.

    {!lower} is purely syntactic.  {!plan} chooses each base table's access
    path (sequential scan, hash-index equality lookup, or ordered-index
    range scan) and each join's strategy (nested loop vs. index probe) by
    comparing cost estimates built from {!Cost} constants and {!Table}
    statistics (row counts, distinct-value counts).  {!direct} reproduces
    the planner-free engine's historical first-match heuristics and serves
    as the differential oracle for the planned path. *)

val lower : Sloth_sql.Ast.select -> Plan.logical

val default_recursion_limit : int
(** Hard cap on semi-naive fixpoint iterations (100) used when the caller
    does not override [?recursion_limit]. *)

val cte_columns : find:(string -> Table.t) -> Sloth_sql.Ast.cte -> string list
(** The CTE's output column names: the declared list when present, else
    derived from the base leg's select items using the executor's result
    naming (alias, else bare column name, else printed expression; [*]
    expands every binding's columns, qualified when more than one binding is
    in scope). *)

val plan :
  ?probe_sharers:int ->
  ?recursion_limit:int ->
  find:(string -> Table.t) ->
  model:Cost.model ->
  Sloth_sql.Ast.select ->
  Plan.physical
(** Cost-based planning.  [find] resolves table names (raising the caller's
    error for unknown ones); the statement must already be validated and
    have its IN-subqueries materialized.  Planning is total: candidate keys
    that fail to constant-fold are skipped, never raised.  [probe_sharers]
    (default 1) prices equality-index candidates as this statement's share
    of a fused probe-set pass over that many same-flush sharers
    ({!Cost.fused_probe_ms}); 1 reduces exactly to {!Cost.index_ms}.
    A [WITH] prefix plans into {!Plan.physical.p_fixpoint}, each leg planned
    independently ([find] must resolve the CTE name, normally to the
    executor's working-table overlay) and capped at [recursion_limit]
    (default {!default_recursion_limit}) iterations. *)

val direct :
  ?recursion_limit:int ->
  find:(string -> Table.t) ->
  model:Cost.model ->
  Sloth_sql.Ast.select ->
  Plan.physical
(** The legacy heuristics, replicated exactly: first usable equality
    conjunct, else first usable range conjunct, else scan; a join probes
    the inner index only when the whole ON clause is one equality.  Eagerly
    constant-folds the chosen key, so an evaluation error in it propagates
    at plan time, as the old executor's did.  Estimates are attached for
    display but never influence the choice. *)

val write_eq :
  Table.t -> Sloth_sql.Ast.expr option -> (string * Value.t) option
(** The first-match equality heuristic over a WHERE clause, used to target
    rows of UPDATE / DELETE (writes keep the direct path). *)

val conjuncts : Sloth_sql.Ast.expr -> Sloth_sql.Ast.expr list
(** Split a chain of ANDs into its conjuncts. *)
