(** Cost-based query planning over the {!Plan} IR.

    {!lower} is purely syntactic.  {!plan} chooses each base table's access
    path (sequential scan, hash-index equality lookup, or ordered-index
    range scan) and each join's strategy (nested loop vs. index probe) by
    comparing cost estimates built from {!Cost} constants and {!Table}
    statistics (row counts, distinct-value counts).  {!direct} reproduces
    the planner-free engine's historical first-match heuristics and serves
    as the differential oracle for the planned path. *)

val lower : Sloth_sql.Ast.select -> Plan.logical

val plan :
  find:(string -> Table.t) ->
  model:Cost.model ->
  Sloth_sql.Ast.select ->
  Plan.physical
(** Cost-based planning.  [find] resolves table names (raising the caller's
    error for unknown ones); the statement must already be validated and
    have its IN-subqueries materialized.  Planning is total: candidate keys
    that fail to constant-fold are skipped, never raised. *)

val direct :
  find:(string -> Table.t) ->
  model:Cost.model ->
  Sloth_sql.Ast.select ->
  Plan.physical
(** The legacy heuristics, replicated exactly: first usable equality
    conjunct, else first usable range conjunct, else scan; a join probes
    the inner index only when the whole ON clause is one equality.  Eagerly
    constant-folds the chosen key, so an evaluation error in it propagates
    at plan time, as the old executor's did.  Estimates are attached for
    display but never influence the choice. *)

val write_eq :
  Table.t -> Sloth_sql.Ast.expr option -> (string * Value.t) option
(** The first-match equality heuristic over a WHERE clause, used to target
    rows of UPDATE / DELETE (writes keep the direct path). *)

val conjuncts : Sloth_sql.Ast.expr -> Sloth_sql.Ast.expr list
(** Split a chain of ANDs into its conjuncts. *)
