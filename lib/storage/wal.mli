(** Write-ahead logging: redo records with length+checksum framing.

    The engine stays in-memory; durability comes from appending physical
    redo records to a {!store} at commit time and replaying them on
    restart.  A record never reaches the log before its transaction
    commits, so replay applies only committed work; a crash in the middle
    of an append leaves a torn tail that the framing detects and discards
    (every frame carries its payload length and an Adler-32 checksum, and
    a transaction's records only count once its [Commit] marker is seen).

    Stores come in two backings: [mem] (a buffer that survives a simulated
    server crash — the experiment substrate) and [file] (a real file, so a
    database outlives the process). *)

type store

val mem : unit -> store
(** An in-memory store.  It models the disk in crash experiments: the
    database's heap dies with the simulated process, the store does not. *)

val file : string -> store
(** A file-backed store.  [write_all] goes through a temp-file rename so a
    crash mid-rewrite cannot destroy the previous contents. *)

val contents : store -> string
val append : store -> string -> unit

val write_all : store -> string -> unit
(** Replace the whole contents (checkpoint install, torn-tail truncation). *)

val is_empty : store -> bool

(** {2 Records} *)

type record =
  | Begin of int  (** transaction id *)
  | Commit of int
  | Set of { table : string; rid : int; row : Value.t array option }
      (** physical redo: slot [rid] of [table] holds [row] ([None] = the
          slot is empty).  Idempotent, so replaying a suffix that overlaps
          a checkpoint is harmless. *)
  | Create_table of Schema.t
  | Create_index of { table : string; column : string; ordered : bool }
  | Token of string
      (** idempotency token applied by the surrounding transaction; replay
          rebuilds the durable token registry from these. *)
  | Prepare of int
      (** two-phase commit, phase 1: closes a [Begin id .. Prepare id] chunk
          whose redo records are forced to the log but {e not yet} committed.
          Recovery holds such a chunk {e in doubt} until it sees a later
          standalone [Commit id] (the phase-2 completion marker) or resolves
          it through the coordinator's decision log — no decision means
          abort (presumed abort). *)
  | Decision of { gtid : int; participants : int list }
      (** coordinator decision-log record: global transaction [gtid]
          COMMITTED on [participants] (shard indices).  Aborts are never
          logged — the absence of a decision {e is} the abort record. *)

val encode : record list -> string
(** One frame per record, concatenated.  A transaction's
    [Begin ... Commit] chunk should be encoded and appended as one string
    so the torn-tail cut can only fall inside a single chunk. *)

val append_records : store -> record list -> unit

val scan : string -> record list * int
(** [scan bytes] decodes every complete, checksum-valid frame of the
    longest valid prefix; returns the records and the byte length of that
    prefix.  Never raises: a torn or corrupt tail just ends the scan. *)

val checksum : string -> int
(** Adler-32 (exposed for tests). *)

(** {2 Codec}

    Primitives shared with the checkpoint writer in {!Database}. *)

module Codec : sig
  exception Corrupt

  val put_int : Buffer.t -> int -> unit
  val put_string : Buffer.t -> string -> unit
  val put_value : Buffer.t -> Value.t -> unit
  val put_row_opt : Buffer.t -> Value.t array option -> unit
  val put_schema : Buffer.t -> Schema.t -> unit

  type reader

  val reader : string -> reader
  val at_end : reader -> bool
  val get_int : reader -> int
  val get_string : reader -> string
  val get_value : reader -> Value.t
  val get_row_opt : reader -> Value.t array option
  val get_schema : reader -> Schema.t
  (** All getters raise {!Corrupt} on malformed input. *)

  val frame : string -> string
  (** Wrap a payload as [length | checksum | payload]. *)

  val unframe : string -> int -> (string * int) option
  (** [unframe bytes pos] reads one frame at [pos]; [Some (payload, next)]
      if complete and checksum-valid, [None] for a torn or corrupt frame. *)
end
