(** Transaction support: an undo log that can roll back heap mutations.

    The Sloth transformation must preserve transaction boundaries (Sec. 1);
    the engine therefore implements real BEGIN/COMMIT/ROLLBACK so that the
    query store's write-flush behaviour can be tested against actual
    atomicity. *)

type t

type entry =
  | Inserted of Table.t * Table.rid
  | Deleted of Table.t * Table.rid * Value.t array
  | Updated of Table.t * Table.rid * Value.t array  (** old row *)

val create : unit -> t
val log : t -> entry -> unit
val entry_count : t -> int

val entries : t -> entry list
(** Logged entries in chronological order (the WAL reads these at commit
    to derive redo records). *)

val commit : t -> unit
(** Discard the undo log. *)

val rollback : t -> unit
(** Undo every logged mutation, most recent first. *)
