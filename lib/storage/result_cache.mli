(** Cross-flush materialized result cache.

    Entries are keyed on a statement's normalized text
    ({!Sloth_sql.Normalize.key}) and guarded by the version vector of every
    referenced table ({!Mqo.referenced_tables} × {!Table.version}): a probe
    hits only when each referenced table still carries the exact version
    recorded when the entry was filled, so a write to any referenced table
    silently retires the entry (dropped on the next probe, counted as an
    invalidation).  Bounded capacity with deterministic least-recently-used
    eviction. *)

type t

val create : capacity:int -> t
(** Raises [Invalid_argument] when [capacity <= 0]. *)

val find :
  t -> key:string -> current_versions:(string * int) list -> Result_set.t option
(** Probe for a cached result.  [current_versions] is the statement's
    referenced tables (sorted, as {!Mqo.referenced_tables} returns them)
    paired with their live versions.  A stale entry is removed and counted
    as both an invalidation and a miss. *)

val store :
  t -> key:string -> versions:(string * int) list -> Result_set.t -> unit
(** Insert (or refresh) an entry, evicting the least-recently-used entry
    when at capacity. *)

val clear : t -> unit
(** Drop every entry but keep counters — crash-restart, snapshot install
    and failover must never let a dead reign's rows survive. *)

val length : t -> int
val capacity : t -> int

type stats = { hits : int; misses : int; invalidations : int }

val stats : t -> stats
