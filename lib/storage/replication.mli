(** WAL-shipping replication with snapshot catch-up and primary failover.

    The primary {!Database}'s commit tap hands every appended WAL chunk —
    one committed transaction's [Begin … Commit] frame run or one
    standalone DDL record, numbered by its LSN — to this module, which
    streams it to each follower database over a fault-injectable simulated
    link.  Shipping is stop-and-wait per follower: a follower behind a
    slow or lossy link simply lags.  Recent encoded chunks are retained in
    a bounded ring; a follower whose apply cursor falls out of the ring is
    caught up with a full checksummed checkpoint {!Database.snapshot}.

    Commit acknowledgements are quorum-based: {!on_quorum} fires once
    enough followers have acknowledged a given LSN, and the admission
    layer holds each write barrier's reply (and its executor slot, which
    also keeps not-yet-replicated commits invisible to primary reads)
    until then.  Together with promote-the-most-caught-up failover this
    gives zero acknowledged-write loss: an acked LSN is on a quorum of
    followers, and the promoted follower is at least as caught up as any
    of them. *)

type t

type replica_info = {
  id : int;
  applied_lsn : int;  (** highest LSN the follower has applied *)
  acked_lsn : int;  (** highest LSN the primary knows it applied *)
  lag : int;  (** primary LSN minus applied LSN *)
  chunks_applied : int;
  snapshots_taken : int;  (** checkpoint catch-ups, incl. the base backup *)
}

type stats = {
  chunks_shipped : int;
  snapshots_shipped : int;
  retransmits : int;  (** link failures retried by the shipper *)
  promotions : int;
}

val create :
  sim:Sloth_net.Des.t ->
  primary:Database.t ->
  ?ack_replicas:int ->
  ?promote_quorum:int ->
  ?retain:int ->
  ?retry:Sloth_net.Retry_policy.t ->
  unit ->
  t
(** Attach a shipper to a durable primary (raises [Invalid_argument]
    otherwise).  [ack_replicas] is the number of follower acks a commit
    needs before {!on_quorum} fires (default: a majority of the current
    followers; clamped to the cluster size so a shrunk cluster cannot
    deadlock).  [promote_quorum] is the number of followers that must
    answer the failover controller's LSN poll (default: a majority).
    [retain] bounds the ring of re-shippable chunks (default 64);
    [retry] the link retransmit policy (default
    {!Sloth_net.Retry_policy.shipping}). *)

val add_replica :
  ?rtt_ms:float -> ?fault:Sloth_net.Fault.t -> ?checkpoint_every:int -> t -> int
(** Create a follower database (same cost model and planner mode as the
    primary, in-memory durable stores), give it a synchronous base backup
    of the primary, and start streaming to it over a link with the given
    round-trip time and fault injector.  Returns the replica id. *)

val primary : t -> Database.t
(** The current primary (changes after {!promote}). *)

val primary_lsn : t -> int

val n_replicas : t -> int

val replicas : t -> replica_info list
(** Per-follower cursor and lag report, in attach order. *)

val replica_db : t -> int -> Database.t
(** Raises [Invalid_argument] for an unknown or promoted-away id. *)

val remove_replica : t -> int -> unit
(** Permanently drop one follower (a simulated follower death): it stops
    receiving chunks and no longer counts toward either quorum.  Ack
    waiters are re-checked — the quorum denominator just shrank, so a
    commit that was one ack short of a majority may fire.  Raises
    [Invalid_argument] for an unknown id. *)

val stats : t -> stats

val route_read : t -> min_lsn:int -> (int * Database.t) option
(** The most caught-up follower whose applied LSN is at least [min_lsn]
    (ties to the earliest-attached), or [None] if every follower is too
    far behind — the caller then serves from the primary.  This is the
    read-your-writes routing primitive: [min_lsn] is the reading session's
    last acknowledged write LSN. *)

val on_quorum : t -> lsn:int -> (unit -> unit) -> unit
(** Run the callback once [ack_replicas] followers have acknowledged
    [lsn]; immediately if they already have (in particular when there are
    no followers).  Pending callbacks are also fired — unconditionally —
    by {!promote}, whose caller re-checks its own crash epoch. *)

val acked : t -> lsn:int -> bool
(** Non-blocking quorum poll: have [ack_replicas] followers acknowledged
    [lsn] already?  A replicated shard drains its private calendar against
    this instead of registering an {!on_quorum} continuation. *)

val can_promote : t -> bool
(** Whether a failover could succeed right now: at least one follower and
    a promotion quorum of followers to poll. *)

val promote : t -> Database.t * int * int
(** Fail over: bump the fencing generation (in-flight ships and acks from
    the old reign are dropped on arrival), pick the follower with the
    highest applied LSN, replay its WAL tail through normal recovery, make
    it the new streaming source and re-sync the remaining followers from
    it (snapshot catch-up if needed).  Returns the new primary database,
    the promoted replica's id and the number of WAL records its recovery
    replayed (for recovery-cost charging).  Raises [Invalid_argument] when
    {!can_promote} is false.  Chunks the old primary committed beyond the
    promoted follower's LSN were, by quorum construction, never
    acknowledged to any client; they are discarded with the old reign. *)
