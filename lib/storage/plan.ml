open Sloth_sql.Ast

type est = { est_rows : float; est_ms : float }

type access =
  | Seq_scan
  | Index_eq of { column : string; key : Value.t }
  | Index_range of {
      column : string;
      lo : (Value.t * bool) option;
      hi : (Value.t * bool) option;
    }

type join_strategy =
  | Nested_loop
  | Index_probe of { column : string; outer : expr }

type l_source =
  | L_nothing
  | L_scan of { table : string; binding : string }
  | L_join of { left : l_source; table : string; binding : string; on : expr }

type logical = {
  l_fixpoint : l_fixpoint option;
  l_source : l_source;
  l_where : expr option;
  l_group_by : expr list;
  l_having : expr option;
  l_order_by : order list;
  l_distinct : bool;
  l_limit : int option;
  l_offset : int option;
  l_items : sel_item list;
}

and l_fixpoint = {
  lf_name : string;
  lf_cols : string list;
  lf_base : logical;
  lf_step : logical option;
  lf_union_all : bool;
  lf_limit : int;
}

type p_source =
  | P_nothing
  | P_scan of { table : string; binding : string; access : access; est : est }
  | P_join of {
      left : p_source;
      table : string;
      binding : string;
      on : expr;
      strategy : join_strategy;
      est : est;
    }

type physical = {
  p_fixpoint : p_fixpoint option;
  p_source : p_source;
  p_where : expr option;
  p_group_by : expr list;
  p_having : expr option;
  p_order_by : order list;
  p_distinct : bool;
  p_limit : int option;
  p_offset : int option;
  p_items : sel_item list;
  p_est : est;
}

and p_fixpoint = {
  pf_name : string;
  pf_cols : string list;
  pf_base : physical;
  pf_step : physical option;
  pf_union_all : bool;
  pf_limit : int;
  pf_est : est;
}

let source_est = function
  | P_nothing -> { est_rows = 1.0; est_ms = 0.0 }
  | P_scan { est; _ } | P_join { est; _ } -> est

(* --- pretty-printing ---------------------------------------------------- *)

let expr_str = Sloth_sql.Printer.expr_to_string

let binding_str ~table ~binding =
  if String.equal table binding then table else table ^ " AS " ^ binding

let items_str items =
  String.concat ", " (List.map Sloth_sql.Printer.sel_item_to_string items)

let order_str os =
  String.concat ", "
    (List.map
       (fun o -> expr_str o.o_expr ^ if o.o_asc then " ASC" else " DESC")
       os)

let bound_str (lo, hi) =
  Printf.sprintf "%s, %s"
    (match lo with
    | None -> "(-inf"
    | Some (v, incl) -> (if incl then "[" else "(") ^ Value.to_string v)
    (match hi with
    | None -> "+inf)"
    | Some (v, incl) -> Value.to_string v ^ if incl then "]" else ")")

let est_str { est_rows; est_ms } =
  Printf.sprintf "(est rows=%.1f cost=%.4fms)" est_rows est_ms

let access_str ~table ~binding ~est = function
  | Seq_scan ->
      Printf.sprintf "SeqScan %s %s" (binding_str ~table ~binding)
        (est_str est)
  | Index_eq { column; key } ->
      Printf.sprintf "IndexEqScan %s ON %s = %s %s"
        (binding_str ~table ~binding)
        column (Value.to_string key) (est_str est)
  | Index_range { column; lo; hi } ->
      Printf.sprintf "IndexRangeScan %s ON %s IN %s %s"
        (binding_str ~table ~binding)
        column
        (bound_str (lo, hi))
        (est_str est)

(* Each plan prints as an indented operator tree, top operator first, so
   `explain` output reads like a conventional EXPLAIN. *)
let lines_of_pipeline ~items ~distinct ~limit ~offset ~order_by ~having
    ~group_by ~where source_lines =
  let wrap label lines = label :: List.map (fun l -> "  " ^ l) lines in
  let opt o f lines = match o with None -> lines | Some v -> wrap (f v) lines in
  let non_empty l f lines = if l = [] then lines else wrap (f l) lines in
  let maybe cond label lines = if cond then wrap label lines else lines in
  source_lines
  |> opt where (fun w -> Printf.sprintf "Filter %s" (expr_str w))
  |> non_empty group_by (fun gs ->
         Printf.sprintf "GroupBy [%s]"
           (String.concat ", " (List.map expr_str gs)))
  |> opt having (fun h -> Printf.sprintf "Having %s" (expr_str h))
  |> non_empty order_by (fun os -> Printf.sprintf "Sort [%s]" (order_str os))
  |> opt offset (Printf.sprintf "Offset %d")
  |> opt limit (Printf.sprintf "Limit %d")
  |> maybe distinct "Distinct"
  |> wrap (Printf.sprintf "Project [%s]" (items_str items))

let rec lines_of_l_source = function
  | L_nothing -> [ "NoTable" ]
  | L_scan { table; binding } ->
      [ Printf.sprintf "Scan %s" (binding_str ~table ~binding) ]
  | L_join { left; table; binding; on } ->
      Printf.sprintf "Join %s ON %s" (binding_str ~table ~binding)
        (expr_str on)
      :: List.map (fun l -> "  " ^ l) (lines_of_l_source left)

let rec lines_of_p_source = function
  | P_nothing -> [ "NoTable" ]
  | P_scan { table; binding; access; est } ->
      [ access_str ~table ~binding ~est access ]
  | P_join { left; table; binding; on; strategy; est } ->
      let head =
        match strategy with
        | Nested_loop ->
            Printf.sprintf "NestedLoopJoin %s ON %s %s"
              (binding_str ~table ~binding)
              (expr_str on) (est_str est)
        | Index_probe { column; outer } ->
            Printf.sprintf "IndexProbeJoin %s probe %s = %s ON %s %s"
              (binding_str ~table ~binding)
              column (expr_str outer) (expr_str on) (est_str est)
      in
      head :: List.map (fun l -> "  " ^ l) (lines_of_p_source left)

let cols_str = function
  | [] -> ""
  | cols -> " (" ^ String.concat ", " cols ^ ")"

(* A fixpoint prints as its own operator block above the main pipeline: the
   working-table name, mode and iteration cap, then the base and step legs
   as indented sub-plans. *)
let fixpoint_lines ~head ~base_lines ~step_lines main_lines =
  let indent = List.map (fun l -> "    " ^ l) in
  (head :: ("  Base" :: indent base_lines))
  @ (match step_lines with
    | None -> []
    | Some lines -> "  Step (over delta)" :: indent lines)
  @ main_lines

let rec logical_lines (l : logical) =
  let main =
    lines_of_pipeline ~items:l.l_items ~distinct:l.l_distinct ~limit:l.l_limit
      ~offset:l.l_offset ~order_by:l.l_order_by ~having:l.l_having
      ~group_by:l.l_group_by ~where:l.l_where
      (lines_of_l_source l.l_source)
  in
  match l.l_fixpoint with
  | None -> main
  | Some f ->
      fixpoint_lines
        ~head:
          (Printf.sprintf "Fixpoint %s%s %s max_iter=%d" f.lf_name
             (cols_str f.lf_cols)
             (if f.lf_union_all then "UNION ALL" else "UNION")
             f.lf_limit)
        ~base_lines:(logical_lines f.lf_base)
        ~step_lines:(Option.map logical_lines f.lf_step)
        main

let rec physical_lines (p : physical) =
  let main =
    lines_of_pipeline ~items:p.p_items ~distinct:p.p_distinct ~limit:p.p_limit
      ~offset:p.p_offset ~order_by:p.p_order_by ~having:p.p_having
      ~group_by:p.p_group_by ~where:p.p_where
      (lines_of_p_source p.p_source)
  in
  match p.p_fixpoint with
  | None -> main
  | Some f ->
      fixpoint_lines
        ~head:
          (Printf.sprintf "Fixpoint %s%s %s max_iter=%d %s" f.pf_name
             (cols_str f.pf_cols)
             (if f.pf_union_all then "UNION ALL" else "UNION")
             f.pf_limit (est_str f.pf_est))
        ~base_lines:(physical_lines f.pf_base)
        ~step_lines:(Option.map physical_lines f.pf_step)
        main

let pp_lines ppf lines =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_newline ppf ())
    Format.pp_print_string ppf lines

let pp_logical ppf l = pp_lines ppf (logical_lines l)
let pp_physical ppf p = pp_lines ppf (physical_lines p)
let logical_to_string l = String.concat "\n" (logical_lines l)
let physical_to_string p = String.concat "\n" (physical_lines p)
