(* Framed redo log.  Frame layout: 4-byte big-endian payload length,
   4-byte Adler-32 of the payload, then the payload.  Scanning stops at the
   first incomplete or checksum-failing frame, so a torn tail (the crash
   landed mid-append) is silently discarded instead of poisoning replay. *)

type store =
  | Mem of Buffer.t
  | File of string

let mem () = Mem (Buffer.create 1024)
let file path = File path

let contents = function
  | Mem b -> Buffer.contents b
  | File path ->
      if Sys.file_exists path then
        In_channel.with_open_bin path In_channel.input_all
      else ""

let append store s =
  match store with
  | Mem b -> Buffer.add_string b s
  | File path ->
      let oc =
        Out_channel.open_gen
          [ Open_wronly; Open_append; Open_creat; Open_binary ]
          0o644 path
      in
      Fun.protect
        ~finally:(fun () -> Out_channel.close oc)
        (fun () ->
          Out_channel.output_string oc s;
          Out_channel.flush oc)

let write_all store s =
  match store with
  | Mem b ->
      Buffer.clear b;
      Buffer.add_string b s
  | File path ->
      let tmp = path ^ ".tmp" in
      Out_channel.with_open_bin tmp (fun oc -> Out_channel.output_string oc s);
      Sys.rename tmp path

let is_empty store = String.length (contents store) = 0

let checksum s =
  let a = ref 1 and b = ref 0 in
  String.iter
    (fun c ->
      a := (!a + Char.code c) mod 65521;
      b := (!b + !a) mod 65521)
    s;
  (!b lsl 16) lor !a

module Codec = struct
  exception Corrupt

  let put_int b n = Buffer.add_int64_be b (Int64.of_int n)

  let put_string b s =
    put_int b (String.length s);
    Buffer.add_string b s

  let put_value b = function
    | Value.Null -> Buffer.add_char b '\000'
    | Value.Int n ->
        Buffer.add_char b '\001';
        put_int b n
    | Value.Float f ->
        Buffer.add_char b '\002';
        Buffer.add_int64_be b (Int64.bits_of_float f)
    | Value.Text s ->
        Buffer.add_char b '\003';
        put_string b s
    | Value.Bool v -> Buffer.add_char b (if v then '\005' else '\004')

  let put_row_opt b = function
    | None -> Buffer.add_char b '\000'
    | Some row ->
        Buffer.add_char b '\001';
        put_int b (Array.length row);
        Array.iter (put_value b) row

  let col_type_tag = function
    | Sloth_sql.Ast.T_int -> '\000'
    | Sloth_sql.Ast.T_float -> '\001'
    | Sloth_sql.Ast.T_text -> '\002'
    | Sloth_sql.Ast.T_bool -> '\003'

  let col_type_of_tag = function
    | '\000' -> Sloth_sql.Ast.T_int
    | '\001' -> Sloth_sql.Ast.T_float
    | '\002' -> Sloth_sql.Ast.T_text
    | '\003' -> Sloth_sql.Ast.T_bool
    | _ -> raise Corrupt

  let put_schema b schema =
    put_string b (Schema.name schema);
    (match Schema.primary_key schema with
    | None -> Buffer.add_char b '\000'
    | Some pk ->
        Buffer.add_char b '\001';
        put_string b pk);
    let cols = Schema.columns schema in
    put_int b (List.length cols);
    List.iter
      (fun (c : Schema.column) ->
        put_string b c.name;
        Buffer.add_char b (col_type_tag c.ty);
        Buffer.add_char b (if c.nullable then '\001' else '\000'))
      cols

  type reader = { src : string; mutable pos : int }

  let reader src = { src; pos = 0 }
  let at_end r = r.pos >= String.length r.src

  let get_byte r =
    if r.pos >= String.length r.src then raise Corrupt;
    let c = r.src.[r.pos] in
    r.pos <- r.pos + 1;
    c

  let get_int r =
    if r.pos + 8 > String.length r.src then raise Corrupt;
    let n = Int64.to_int (String.get_int64_be r.src r.pos) in
    r.pos <- r.pos + 8;
    n

  let get_string r =
    let len = get_int r in
    if len < 0 || r.pos + len > String.length r.src then raise Corrupt;
    let s = String.sub r.src r.pos len in
    r.pos <- r.pos + len;
    s

  let get_value r =
    match get_byte r with
    | '\000' -> Value.Null
    | '\001' -> Value.Int (get_int r)
    | '\002' ->
        if r.pos + 8 > String.length r.src then raise Corrupt;
        let f = Int64.float_of_bits (String.get_int64_be r.src r.pos) in
        r.pos <- r.pos + 8;
        Value.Float f
    | '\003' -> Value.Text (get_string r)
    | '\004' -> Value.Bool false
    | '\005' -> Value.Bool true
    | _ -> raise Corrupt

  let get_row_opt r =
    match get_byte r with
    | '\000' -> None
    | '\001' ->
        let n = get_int r in
        if n < 0 || n > 4096 then raise Corrupt;
        Some (Array.init n (fun _ -> get_value r))
    | _ -> raise Corrupt

  let get_schema r =
    let name = get_string r in
    let pk =
      match get_byte r with
      | '\000' -> None
      | '\001' -> Some (get_string r)
      | _ -> raise Corrupt
    in
    let n = get_int r in
    if n < 0 || n > 4096 then raise Corrupt;
    let cols =
      List.init n (fun _ ->
          let cname = get_string r in
          let ty = col_type_of_tag (get_byte r) in
          let nullable = get_byte r = '\001' in
          { Schema.name = cname; ty; nullable })
    in
    match Schema.create ~name ?primary_key:pk cols with
    | s -> s
    | exception Invalid_argument _ -> raise Corrupt

  let frame payload =
    let b = Buffer.create (String.length payload + 8) in
    Buffer.add_int32_be b (Int32.of_int (String.length payload));
    Buffer.add_int32_be b (Int32.of_int (checksum payload));
    Buffer.add_string b payload;
    Buffer.contents b

  let unframe bytes pos =
    let total = String.length bytes in
    if pos + 8 > total then None
    else
      let len = Int32.to_int (String.get_int32_be bytes pos) in
      let sum = Int32.to_int (String.get_int32_be bytes (pos + 4)) in
      if len < 0 || pos + 8 + len > total then None
      else
        let payload = String.sub bytes (pos + 8) len in
        if checksum payload land 0xffffffff <> sum land 0xffffffff then None
        else Some (payload, pos + 8 + len)
end

type record =
  | Begin of int
  | Commit of int
  | Set of { table : string; rid : int; row : Value.t array option }
  | Create_table of Schema.t
  | Create_index of { table : string; column : string; ordered : bool }
  | Token of string
  | Prepare of int
  | Decision of { gtid : int; participants : int list }

let encode_record r =
  let b = Buffer.create 64 in
  (match r with
  | Begin id ->
      Buffer.add_char b '\001';
      Codec.put_int b id
  | Commit id ->
      Buffer.add_char b '\002';
      Codec.put_int b id
  | Set { table; rid; row } ->
      Buffer.add_char b '\003';
      Codec.put_string b table;
      Codec.put_int b rid;
      Codec.put_row_opt b row
  | Create_table schema ->
      Buffer.add_char b '\004';
      Codec.put_schema b schema
  | Create_index { table; column; ordered } ->
      Buffer.add_char b '\005';
      Codec.put_string b table;
      Codec.put_string b column;
      Buffer.add_char b (if ordered then '\001' else '\000')
  | Token k ->
      Buffer.add_char b '\006';
      Codec.put_string b k
  | Prepare id ->
      Buffer.add_char b '\007';
      Codec.put_int b id
  | Decision { gtid; participants } ->
      Buffer.add_char b '\008';
      Codec.put_int b gtid;
      Codec.put_int b (List.length participants);
      List.iter (Codec.put_int b) participants);
  Codec.frame (Buffer.contents b)

let encode records = String.concat "" (List.map encode_record records)
let append_records store records = append store (encode records)

let decode_record payload =
  let r = Codec.reader payload in
  let record =
    match Codec.get_byte r with
    | '\001' -> Begin (Codec.get_int r)
    | '\002' -> Commit (Codec.get_int r)
    | '\003' ->
        let table = Codec.get_string r in
        let rid = Codec.get_int r in
        let row = Codec.get_row_opt r in
        Set { table; rid; row }
    | '\004' -> Create_table (Codec.get_schema r)
    | '\005' ->
        let table = Codec.get_string r in
        let column = Codec.get_string r in
        let ordered = Codec.get_byte r = '\001' in
        Create_index { table; column; ordered }
    | '\006' -> Token (Codec.get_string r)
    | '\007' -> Prepare (Codec.get_int r)
    | '\008' ->
        let gtid = Codec.get_int r in
        let n = Codec.get_int r in
        if n < 0 || n > 4096 then raise Codec.Corrupt;
        let participants = List.init n (fun _ -> Codec.get_int r) in
        Decision { gtid; participants }
    | _ -> raise Codec.Corrupt
  in
  if not (Codec.at_end r) then raise Codec.Corrupt;
  record

let scan bytes =
  let rec go acc pos =
    match Codec.unframe bytes pos with
    | None -> (List.rev acc, pos)
    | Some (payload, next) -> (
        match decode_record payload with
        | record -> go (record :: acc) next
        | exception Codec.Corrupt -> (List.rev acc, pos))
  in
  go [] 0
