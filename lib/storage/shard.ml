(* Hash-partitioned storage: N independent durable Database engines behind
   one Database-shaped facade.

   Rows live on the shard owning their primary key ([Wal.checksum pk mod N];
   PK-less tables are pinned to shard 0), DDL broadcasts to every shard, and
   every write runs as a *distributed transaction* under a coordinator-
   allocated global id — never as a shard-local autocommit — so a shard's
   WAL can only ever contain ids the coordinator's decision log knows.
   Cross-shard batches commit with presumed-abort two-phase commit on the
   shards' own WALs: PREPARE forces each participant's redo, the decision
   log append is the commit point, and recovery resolves prepared-but-
   undecided chunks through {!Two_pc}.

   A single-shard deployment bypasses all of this: every entry point
   degenerates to a direct call on the one engine, so [shards = 1] is
   byte-identical to the unsharded database. *)

module Ast = Sloth_sql.Ast
module Fault = Sloth_net.Fault
module Des = Sloth_net.Des

type stats = {
  two_pc_commits : int;
  one_pc_commits : int;
  dtxn_aborts : int;
  gathered_reads : int;
  fanout_writes : int;
  decisions : int;
  replica_read_fetches : int;
  shard_failovers : int;
}

type counters = {
  mutable c_2pc : int;
  mutable c_1pc : int;
  mutable c_aborts : int;
  mutable c_gathers : int;
  mutable c_fanout : int;
  mutable c_replica_reads : int;
}

(* One open distributed transaction: the shards whose local transaction it
   opened, in touch order (phase 1 runs in this order, which makes the
   fault-injection trip sequence of a commit deterministic). *)
type dtxn = { mutable touched : int list }

(* Per-shard replication state.  Every shard's engine is the primary of a
   {!Replication} group whose shipping runs on one private DES calendar —
   separate from any admission-layer simulation, so the synchronous 2PC
   code below can drain it to quiescence whenever it needs a quorum
   answer, without re-entering a running [Des.run]. *)
type repl_state = {
  r_sim : Des.t;
  r_groups : Replication.t array;  (* index = shard *)
  mutable r_failovers : (int * int * int) list;
      (* (shard, promoted replica id, LSN at promotion), oldest first *)
}

type t = {
  dbs : Database.t array;  (* current primaries; slots swap on failover *)
  coord : Two_pc.t;
  mutable fault : Fault.t option;
  mutable cur : dtxn option;
  mutable gather_pushdown : bool;
      (* push derivable WHERE restrictions into the per-shard gather
         fetches instead of always shipping whole tables *)
  repl : repl_state option;
  ctr : counters;
}

let error fmt = Format.kasprintf (fun s -> raise (Database.Sql_error s)) fmt

let create ?cost ?checkpoint_every ?(replicas_per_shard = 0) ?ack_replicas
    ?promote_quorum ~shards () =
  if shards < 1 then invalid_arg "Shard.create: need at least one shard";
  if replicas_per_shard < 0 then
    invalid_arg "Shard.create: replicas_per_shard must be non-negative";
  let coord = Two_pc.create ~log:(Wal.mem ()) in
  let dbs =
    Array.init shards (fun _ ->
        let db = Database.create ?cost () in
        Database.enable_durability ?checkpoint_every ~wal:(Wal.mem ())
          ~checkpoint:(Wal.mem ()) db;
        db)
  in
  (* Every shard resolves in-doubt chunks through the shared decision log:
     the resolver closure stays valid across any number of recoveries. *)
  let resolver = Some (fun gtid -> Two_pc.decided_commit coord gtid) in
  Array.iter (fun db -> Database.set_in_doubt_resolver db resolver) dbs;
  let repl =
    if replicas_per_shard = 0 then None
    else begin
      let sim = Des.create () in
      let groups =
        Array.map
          (fun db ->
            (* Prepare chunks must ship too, or a prepared-but-undecided
               transaction could not survive a primary failover. *)
            Database.set_ship_prepares db true;
            let g =
              Replication.create ~sim ~primary:db ?ack_replicas
                ?promote_quorum ()
            in
            for _ = 1 to replicas_per_shard do
              let id = Replication.add_replica g in
              (* The follower may be promoted mid-protocol: its recovery
                 then resolves in-doubt chunks against the decision log,
                 so the resolver must be wired before any promotion. *)
              Database.set_in_doubt_resolver (Replication.replica_db g id)
                resolver
            done;
            g)
          dbs
      in
      Some { r_sim = sim; r_groups = groups; r_failovers = [] }
    end
  in
  {
    dbs;
    coord;
    fault = None;
    cur = None;
    gather_pushdown = true;
    repl;
    ctr =
      {
        c_2pc = 0;
        c_1pc = 0;
        c_aborts = 0;
        c_gathers = 0;
        c_fanout = 0;
        c_replica_reads = 0;
      };
  }

let n_shards t = Array.length t.dbs
let shard_db t i = t.dbs.(i)
let coordinator t = t.coord
let set_fault t f = t.fault <- f
let set_planner t on = Array.iter (fun db -> Database.set_planner db on) t.dbs
let set_mqo t on = Array.iter (fun db -> Database.set_mqo db on) t.dbs
let set_gather_pushdown t on = t.gather_pushdown <- on
let gather_pushdown_enabled t = t.gather_pushdown

let set_result_cache t cap =
  Array.iter (fun db -> Database.set_result_cache db cap) t.dbs

(* Summed across shards: single-shard and pinned reads run on shard 0;
   gathers probe every shard's cache through the per-table [SELECT *]
   fetches. *)
let read_stats t =
  Array.fold_left
    (fun (acc : Database.read_stats) db ->
      let s = Database.read_stats db in
      {
        Database.cache_hits = acc.cache_hits + s.Database.cache_hits;
        cache_misses = acc.cache_misses + s.Database.cache_misses;
        cache_invalidations =
          acc.cache_invalidations + s.Database.cache_invalidations;
        cache_entries = acc.cache_entries + s.Database.cache_entries;
        dedup_folded = acc.dedup_folded + s.Database.dedup_folded;
        seq_scans_shared = acc.seq_scans_shared + s.Database.seq_scans_shared;
        probe_sets_merged =
          acc.probe_sets_merged + s.Database.probe_sets_merged;
        joins_shared = acc.joins_shared + s.Database.joins_shared;
      })
    {
      Database.cache_hits = 0;
      cache_misses = 0;
      cache_invalidations = 0;
      cache_entries = 0;
      dedup_folded = 0;
      seq_scans_shared = 0;
      probe_sets_merged = 0;
      joins_shared = 0;
    }
    t.dbs

let stats t =
  {
    two_pc_commits = t.ctr.c_2pc;
    one_pc_commits = t.ctr.c_1pc;
    dtxn_aborts = t.ctr.c_aborts;
    gathered_reads = t.ctr.c_gathers;
    fanout_writes = t.ctr.c_fanout;
    decisions = Two_pc.n_decisions t.coord;
    replica_read_fetches = t.ctr.c_replica_reads;
    shard_failovers =
      (match t.repl with None -> 0 | Some r -> List.length r.r_failovers);
  }

let replicated t = t.repl <> None

let replication t s =
  match t.repl with None -> None | Some r -> Some r.r_groups.(s)

let failovers t = match t.repl with None -> [] | Some r -> r.r_failovers
let lsn_vector t = Array.to_list (Array.map Database.current_lsn t.dbs)

(* --- routing ------------------------------------------------------------- *)

let home t key = Wal.checksum key mod Array.length t.dbs

let schema_of t name =
  match Database.table t.dbs.(0) name with
  | Some tbl -> Some (Table.schema tbl)
  | None -> None

let pk_of t name = Option.bind (schema_of t name) Schema.primary_key

(* Routing needs constant key values; the INSERT/UPDATE/DELETE literals the
   workloads produce are covered, anything fancier refuses loudly rather
   than routing wrong. *)
let rec const_value = function
  | Ast.Lit l -> Some (Value.of_literal l)
  | Ast.Unop (Ast.Neg, e) -> (
      match const_value e with
      | Some (Value.Int n) -> Some (Value.Int (-n))
      | Some (Value.Float f) -> Some (Value.Float (-.f))
      | _ -> None)
  | _ -> None

(* Owning shard of one INSERT row.  Missing table / missing PK value route
   to shard 0 so the executor raises the same error as unsharded. *)
let insert_shard t ~table ~columns row =
  match schema_of t table with
  | None -> 0
  | Some schema -> (
      match Schema.primary_key schema with
      | None -> 0 (* PK-less tables are pinned *)
      | Some pk -> (
          let cols =
            if columns = [] then
              List.map (fun (c : Schema.column) -> c.name) (Schema.columns schema)
            else columns
          in
          let rec find cs vs =
            match (cs, vs) with
            | c :: _, v :: _ when c = pk -> Some v
            | _ :: cs, _ :: vs -> find cs vs
            | _ -> None
          in
          match find cols row with
          | None -> 0
          | Some e -> (
              match const_value e with
              | Some v -> home t (Value.to_string v)
              | None ->
                  error
                    "sharded insert into %s: the primary-key value must be a \
                     constant"
                    table)))

(* Extract [pk = constant] from a conjunction: any row matching the WHERE
   then has that key, so it can only live on the owning shard.  Anything
   else (OR at the top, range predicates, no PK equality) broadcasts — the
   shards partition the rows, so running the statement everywhere is always
   correct, just wider. *)
let rec pk_eq_value ~table ~pk = function
  | Ast.Binop (Ast.And, a, b) -> (
      match pk_eq_value ~table ~pk a with
      | Some v -> Some v
      | None -> pk_eq_value ~table ~pk b)
  | Ast.Binop (Ast.Eq, Ast.Col (q, c), e)
  | Ast.Binop (Ast.Eq, e, Ast.Col (q, c)) -> (
      match e with
      | _ when c = pk && (q = None || q = Some table) -> const_value e
      | _ -> None)
  | _ -> None

let route_by_pk t table where =
  match pk_of t table with
  | None -> Some 0 (* pinned (or unknown: shard 0 raises the real error) *)
  | Some pk -> (
      match where with
      | None -> None
      | Some w -> (
          match pk_eq_value ~table ~pk w with
          | Some v -> Some (home t (Value.to_string v))
          | None -> None))

(* --- distributed transactions -------------------------------------------- *)

let ensure_touched t d s =
  if not (List.mem s d.touched) then begin
    Database.dtxn_begin t.dbs.(s);
    d.touched <- d.touched @ [ s ]
  end

let decide ?target t =
  match t.fault with
  | None -> Fault.Deliver 0.0
  | Some f -> Fault.decide ?target f

(* --- per-shard replication ------------------------------------------------ *)

let drain_cap = 100_000

(* Run the private shipping calendar to quiescence.  Shipping between a
   shard primary and its followers is synchronous-at-commit: the protocol
   only proceeds once the calendar has no work left, so a quorum question
   is decidable by a plain poll afterwards.  The step cap is a deadlock
   net — a calendar that reschedules forever (it should not) diagnoses
   itself instead of hanging. *)
let drain t =
  match t.repl with
  | None -> ()
  | Some r ->
      let steps = ref 0 in
      while !steps <= drain_cap && Des.step r.r_sim do incr steps done;
      if !steps > drain_cap then
        Database.invariant_violation
          "Shard.drain: replication calendar still busy after %d events"
          drain_cap

let quiesce t = drain t

(* Hold the protocol until shard [s]'s group has quorum-acked everything
   its primary has appended (in particular, gtid's prepare force or
   completion marker).  Quorum here is a hard precondition for
   acknowledging anything upstream: an LSN that reached a quorum of
   followers survives any single promotion. *)
let quorum_wait t ~gtid s =
  match t.repl with
  | None -> ()
  | Some r ->
      drain t;
      let lsn = Database.current_lsn t.dbs.(s) in
      if not (Replication.acked r.r_groups.(s) ~lsn) then
        Database.invariant_violation
          "shard %d: no replication quorum for lsn %d (gtid %d)" s lsn gtid

(* Presumed abort ships nothing, so a follower holding the stashed prepare
   chunk of a globally-aborted gtid must be told out of band to drop it
   (the dead chunk stays in its log; any later promotion presumed-aborts
   it through the decision log). *)
let forget_on_followers t ~gtid s =
  match t.repl with
  | None -> ()
  | Some r ->
      let g = r.r_groups.(s) in
      List.iter
        (fun (ri : Replication.replica_info) ->
          Database.repl_forget (Replication.replica_db g ri.Replication.id)
            ~gtid)
        (Replication.replicas g)

(* A shard primary died.  With a promotable group: generation-fence the
   old reign and promote the most caught-up follower — a quorum-shipped
   prepared chunk survives into the promoted follower's log and its
   recovery resolves it through the decision log (commit if decided,
   presumed abort otherwise).  Without a promotable group, or without
   replication at all, the primary recovers in place from its own durable
   stores. *)
let failover_shard t s =
  match t.repl with
  | None -> Database.crash_restart t.dbs.(s)
  | Some r ->
      let g = r.r_groups.(s) in
      if Replication.can_promote g then begin
        let db, id, _replayed = Replication.promote g in
        t.dbs.(s) <- db;
        r.r_failovers <- r.r_failovers @ [ (s, id, Database.current_lsn db) ];
        (* survivors re-sync from the new primary before the protocol
           moves on *)
        drain t
      end
      else Database.crash_restart t.dbs.(s)

let kill_follower t s =
  match t.repl with
  | None -> invalid_arg "Shard.kill_follower: shard is not replicated"
  | Some r -> (
      let g = r.r_groups.(s) in
      match Replication.replicas g with
      | [] -> invalid_arg "Shard.kill_follower: no follower left"
      | ri :: _ -> Replication.remove_replica g ri.Replication.id)

(* Simulated whole-process crash: the coordinator recovers its decision log
   first, then every shard recovers (resolving in-doubt chunks through the
   fresh decision table), then the gtid allocator clears every replayed
   id.  Shard high-water marks cover aborted prepares too — a dead
   [Begin .. Prepare] chunk still bumps its shard's next id — so no gtid
   with surviving log presence is ever reallocated.  Replicated shards
   fail over instead of recovering in place: every shard promotes its most
   caught-up follower (falling back to in-place recovery when no quorum of
   followers remains). *)
let crash_restart t =
  t.cur <- None;
  Two_pc.recover t.coord;
  (match t.repl with
  | None -> Array.iter Database.crash_restart t.dbs
  | Some _ -> Array.iteri (fun s _ -> failover_shard t s) t.dbs);
  Array.iter (fun db -> Two_pc.ensure_next t.coord (Database.next_txn_id db)) t.dbs

let crash_shard t i = Database.crash_restart t.dbs.(i)

let rollback_dtxn t d =
  t.cur <- None;
  List.iter (fun s -> Database.dtxn_abort t.dbs.(s) ~gtid:(-1)) d.touched;
  t.ctr.c_aborts <- t.ctr.c_aborts + 1

(* Commit the open distributed transaction.  Fault decision points (all
   no-ops without an installed fault plan):
     - one per touched shard, target [Shard s], in touch order (phase 1);
     - one with target [Coordinator] (the decision), unless every
       participant voted read-only;
     - one per participant, target [Shard s] (phase 2 / ack).
   A commit over P writing shards therefore consumes exactly 2P+1 decision
   points, which lets the crash-point fuzz script a window at any exact
   protocol step.  Only [Server_crash] failures are meaningful here; the
   leg distinguishes dying before ([Request]) or after (anything else) the
   step's durable append. *)
let commit_dtxn ?token t d =
  t.cur <- None;
  let gtid = Two_pc.alloc_gtid t.coord in
  let touched =
    match (d.touched, token) with
    | [], Some _ ->
        (* A batch with no writes still carries an idempotency token that
           must survive a crash: force it through shard 0. *)
        Database.dtxn_begin t.dbs.(0);
        [ 0 ]
    | ts, _ -> ts
  in
  match touched with
  | [] -> ()
  | [ s ] -> (
      (* Single participant: 1PC fast path — one plain committed chunk
         under the coordinator-allocated id, no PREPARE, no decision. *)
      match decide ~target:(Fault.Shard s) t with
      | Fault.Fail (Fault.Server_crash, Fault.Request) ->
          failover_shard t s;
          t.ctr.c_aborts <- t.ctr.c_aborts + 1;
          error "shard %d crashed before commit" s
      | Fault.Fail (Fault.Server_crash, _) -> (
          Database.dtxn_commit_1pc ?token t.dbs.(s) ~gtid;
          match t.repl with
          | None ->
              (* The chunk reached the log before the crash: it is
                 committed, and in-place recovery replays it. *)
              Database.crash_restart t.dbs.(s);
              t.ctr.c_1pc <- t.ctr.c_1pc + 1
          | Some _ ->
              (* The chunk reached the primary's log but was never
                 quorum-acked: promotion fences it with the old reign, so
                 it must NOT be acknowledged — the client re-drives
                 through the durable idempotency token. *)
              failover_shard t s;
              t.ctr.c_aborts <- t.ctr.c_aborts + 1;
              error "shard %d crashed before replication quorum" s)
      | _ ->
          Database.dtxn_commit_1pc ?token t.dbs.(s) ~gtid;
          quorum_wait t ~gtid s;
          t.ctr.c_1pc <- t.ctr.c_1pc + 1)
  | first :: _ ->
      (* Phase 1: force PREPARE on every touched shard.  The idempotency
         token rides on the first touched shard only — one durable copy is
         enough, and [token_applied] checks every shard. *)
      let prepared = ref [] in
      let abort_msg = ref None in
      List.iter
        (fun s ->
          if !abort_msg = None then
            let tok = if s = first then token else None in
            match decide ~target:(Fault.Shard s) t with
            | Fault.Fail (Fault.Server_crash, Fault.Request) ->
                (* Died before forcing PREPARE: the volatile transaction is
                   gone — global abort. *)
                failover_shard t s;
                abort_msg := Some (Printf.sprintf "shard %d crashed before prepare" s)
            | Fault.Fail (Fault.Server_crash, _) ->
                (* Died after forcing PREPARE but before the vote reached
                   the coordinator: still a global abort; the forced chunk
                   stays in doubt until recovery presumed-aborts it.  With
                   replication the chunk ships first, so the promoted
                   follower replays it as in-doubt and presumed-aborts it
                   itself — the prepared transaction survived the failover
                   and still resolved per the (absent) decision. *)
                ignore (Database.dtxn_prepare ?token:tok t.dbs.(s) ~gtid : bool);
                drain t;
                failover_shard t s;
                abort_msg := Some (Printf.sprintf "shard %d crashed during prepare" s)
            | _ ->
                if Database.dtxn_prepare ?token:tok t.dbs.(s) ~gtid then begin
                  (* The PREPARE force is quorum-acked before the protocol
                     proceeds: once this shard votes yes, its forced chunk
                     survives any single failover. *)
                  quorum_wait t ~gtid s;
                  prepared := !prepared @ [ s ]
                end)
        touched;
      (match !abort_msg with
      | Some msg ->
          List.iter (fun s -> Database.dtxn_abort t.dbs.(s) ~gtid) touched;
          if t.repl <> None then begin
            drain t;
            List.iter (fun s -> forget_on_followers t ~gtid s) touched
          end;
          t.ctr.c_aborts <- t.ctr.c_aborts + 1;
          error "%s" msg
      | None -> ());
      let participants = !prepared in
      if participants = [] then ()
        (* every shard voted read-only and already committed locally *)
      else begin
        match decide ~target:Fault.Coordinator t with
        | Fault.Fail (Fault.Server_crash, Fault.Request) ->
            (* Whole process died before the commit point: presumed abort.
               Recovery finds the prepared chunks, the decision log knows
               nothing, every shard discards them. *)
            crash_restart t;
            t.ctr.c_aborts <- t.ctr.c_aborts + 1;
            error "coordinator crashed before the commit decision"
        | Fault.Fail (Fault.Server_crash, _) ->
            (* The decision reached the log, then the process died: the
               transaction is committed, and recovery finishes phase 2 from
               the decision log on every participant. *)
            Two_pc.log_commit t.coord ~gtid ~participants;
            crash_restart t;
            t.ctr.c_2pc <- t.ctr.c_2pc + 1
        | _ ->
            Two_pc.log_commit t.coord ~gtid ~participants;
            (* Phase 2: completion markers.  A participant dying here is
               harmless — its recovery (or, replicated, the promoted
               follower's recovery: the prepared chunk was quorum-shipped
               in phase 1) resolves the in-doubt chunk as committed
               through the decision log. *)
            List.iter
              (fun s ->
                match decide ~target:(Fault.Shard s) t with
                | Fault.Fail (Fault.Server_crash, _) -> failover_shard t s
                | _ ->
                    Database.dtxn_commit t.dbs.(s) ~gtid;
                    quorum_wait t ~gtid s)
              participants;
            t.ctr.c_2pc <- t.ctr.c_2pc + 1
      end

(* --- reads --------------------------------------------------------------- *)

let add_unique acc x = if List.mem x acc then acc else acc @ [ x ]

let rec expr_tables acc = function
  | Ast.Lit _ | Ast.Col _ -> acc
  | Ast.Binop (_, a, b) -> expr_tables (expr_tables acc a) b
  | Ast.Unop (_, e) -> expr_tables acc e
  | Ast.In_list (e, es) -> List.fold_left expr_tables (expr_tables acc e) es
  | Ast.In_select (e, s) -> select_tables (expr_tables acc e) s
  | Ast.Is_null { e; _ } -> expr_tables acc e
  | Ast.Like (e, _) -> expr_tables acc e
  | Ast.Between { e; lo; hi } ->
      expr_tables (expr_tables (expr_tables acc e) lo) hi
  | Ast.Agg (_, eo) -> (
      match eo with None -> acc | Some e -> expr_tables acc e)

and select_tables acc (s : Ast.select) =
  let acc =
    (* CTE legs read real tables that must be gathered too.  The CTE's own
       name lands in the list as well when a leg or the body scans it; the
       caller filters it out as unknown (no shard has its schema), which is
       also what routes WITH statements onto the gather path. *)
    match s.sel_with with
    | None -> acc
    | Some c ->
        let acc = select_tables acc c.Ast.cte_base in
        Option.fold ~none:acc ~some:(select_tables acc) c.Ast.cte_step
  in
  let acc =
    match s.sel_from with None -> acc | Some (tbl, _) -> add_unique acc tbl
  in
  let acc =
    List.fold_left (fun acc j -> add_unique acc j.Ast.j_table) acc s.sel_joins
  in
  let acc =
    List.fold_left
      (fun acc it ->
        match it with Ast.Star -> acc | Ast.Sel_expr (e, _) -> expr_tables acc e)
      acc s.sel_items
  in
  let acc =
    match s.sel_where with None -> acc | Some e -> expr_tables acc e
  in
  let acc = List.fold_left expr_tables acc s.sel_group_by in
  let acc =
    match s.sel_having with None -> acc | Some e -> expr_tables acc e
  in
  List.fold_left (fun acc o -> expr_tables acc o.Ast.o_expr) acc s.sel_order_by

let plain_select name =
  {
    Ast.sel_with = None;
    sel_distinct = false;
    sel_items = [ Ast.Star ];
    sel_from = Some (name, None);
    sel_joins = [];
    sel_where = None;
    sel_group_by = [];
    sel_having = None;
    sel_order_by = [];
    sel_limit = None;
    sel_offset = None;
  }

(* --- gathered-read WHERE pushdown ---------------------------------------- *)

(* A conjunct can be pushed into a shard's per-table gather fetch when it
   compares one column of that table against literals only: such a
   predicate evaluates identically against the bare shard row and against
   the full environment in the scratch engine (no arithmetic, so no
   evaluation errors; NULL comparisons are false in both places).  Rows it
   rejects can never satisfy the statement through that binding. *)
let pushable_conjunct ~binding ~unambiguous e =
  let col q c =
    match q with
    | Some q -> if String.equal q binding then Some c else None
    | None -> if unambiguous then Some c else None
  in
  let lit = function Ast.Lit _ -> true | _ -> false in
  match e with
  | Ast.Binop (((Ast.Eq | Neq | Lt | Le | Gt | Ge) as op), Ast.Col (q, c), rhs)
    when lit rhs ->
      Option.map (fun c -> Ast.Binop (op, Ast.Col (None, c), rhs)) (col q c)
  | Ast.Binop (((Ast.Eq | Neq | Lt | Le | Gt | Ge) as op), lhs, Ast.Col (q, c))
    when lit lhs ->
      Option.map (fun c -> Ast.Binop (op, lhs, Ast.Col (None, c))) (col q c)
  | Ast.Between { e = Ast.Col (q, c); lo; hi } when lit lo && lit hi ->
      Option.map
        (fun c -> Ast.Between { e = Ast.Col (None, c); lo; hi })
        (col q c)
  | Ast.In_list (Ast.Col (q, c), items) when List.for_all lit items ->
      Option.map (fun c -> Ast.In_list (Ast.Col (None, c), items)) (col q c)
  | Ast.Is_null { e = Ast.Col (q, c); negated } ->
      Option.map (fun c -> Ast.Is_null { e = Ast.Col (None, c); negated })
        (col q c)
  | _ -> None

let and_chain = function
  | [] -> None
  | e :: es -> Some (List.fold_left (fun a b -> Ast.Binop (Ast.And, a, b)) e es)

let or_chain = function
  | [] -> None
  | e :: es -> Some (List.fold_left (fun a b -> Ast.Binop (Ast.Or, a, b)) e es)

(* Every SELECT that will execute inside the scratch engine, paired with
   the table name its CTE (if any) shadows there: the statements
   themselves, their CTE legs, and IN-subqueries anywhere within. *)
let rec push_units acc ~shadow (s : Ast.select) =
  let shadow =
    match s.sel_with with Some c -> Some c.Ast.cte_name | None -> shadow
  in
  let acc = (s, shadow) :: acc in
  let acc =
    match s.sel_with with
    | None -> acc
    | Some c ->
        let acc = push_units acc ~shadow c.Ast.cte_base in
        Option.fold ~none:acc ~some:(fun st -> push_units acc ~shadow st)
          c.Ast.cte_step
  in
  let rec expr acc = function
    | Ast.Lit _ | Ast.Col _ -> acc
    | Ast.Binop (_, a, b) -> expr (expr acc a) b
    | Ast.Unop (_, e) -> expr acc e
    | Ast.In_list (e, es) -> List.fold_left expr (expr acc e) es
    | Ast.In_select (e, sub) -> push_units (expr acc e) ~shadow sub
    | Ast.Is_null { e; _ } -> expr acc e
    | Ast.Like (e, _) -> expr acc e
    | Ast.Between { e; lo; hi } -> expr (expr (expr acc e) lo) hi
    | Ast.Agg (_, eo) -> Option.fold ~none:acc ~some:(expr acc) eo
  in
  let acc =
    List.fold_left
      (fun acc -> function Ast.Star -> acc | Ast.Sel_expr (e, _) -> expr acc e)
      acc s.sel_items
  in
  let acc = Option.fold ~none:acc ~some:(expr acc) s.sel_where in
  let acc = List.fold_left expr acc s.sel_group_by in
  let acc = Option.fold ~none:acc ~some:(expr acc) s.sel_having in
  let acc =
    List.fold_left (fun acc o -> expr acc o.Ast.o_expr) acc s.sel_order_by
  in
  List.fold_left (fun acc j -> expr acc j.Ast.j_on) acc s.sel_joins

(* Per gathered table, the weakest restriction the flush as a whole allows:
   the OR over every unit's own restriction.  A unit restricts a table only
   if every one of its bindings of that table has at least one pushable
   WHERE conjunct; otherwise the unit needs the whole table and the table
   ships unfiltered.  Returns a lookup from table name to the pushed WHERE
   (None = ship whole). *)
let gather_preds selects =
  let restriction : (string, Ast.expr list option ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let cell name =
    match Hashtbl.find_opt restriction name with
    | Some r -> r
    | None ->
        let r = ref (Some []) in
        Hashtbl.add restriction name r;
        r
  in
  let units = List.fold_left (fun acc s -> push_units acc ~shadow:None s) [] selects in
  List.iter
    (fun ((s : Ast.select), shadow) ->
      let bindings =
        (match s.sel_from with
        | None -> []
        | Some (tbl, alias) -> [ (tbl, Option.value alias ~default:tbl) ])
        @ List.map
            (fun (j : Ast.join) ->
              (j.j_table, Option.value j.j_alias ~default:j.j_table))
            s.sel_joins
      in
      let unambiguous = List.length bindings = 1 in
      let conj =
        match s.sel_where with None -> [] | Some w -> Planner.conjuncts w
      in
      let tables =
        List.sort_uniq String.compare (List.map fst bindings)
      in
      List.iter
        (fun name ->
          if Some name <> shadow then begin
            let r = cell name in
            let per_binding =
              List.filter_map
                (fun (tbl, b) ->
                  if String.equal tbl name then
                    Some
                      (and_chain
                         (List.filter_map
                            (pushable_conjunct ~binding:b ~unambiguous)
                            conj))
                  else None)
                bindings
            in
            match !r with
            | None -> ()
            | Some disjuncts ->
                if List.exists (fun p -> p = None) per_binding then
                  (* some binding is unrestricted: the whole table ships *)
                  r := None
                else
                  r :=
                    Some
                      (disjuncts @ List.filter_map (fun p -> p) per_binding)
          end)
        tables)
    units;
  fun name ->
    match Hashtbl.find_opt restriction name with
    | Some { contents = Some ds } -> or_chain ds
    | _ -> None

(* Cross-shard read path: gather every referenced table (one fetch per
   table per shard, through the shard's normal read path so scan work is
   costed), load the union into a scratch engine, and run the original
   statements there — joins, aggregates, subqueries and recursive CTEs then
   just work.  The gather cost and scan count are folded into the first
   statement's outcome.  With [gather_pushdown] (the default), each fetch
   carries the weakest WHERE restriction every statement of the flush
   allows for that table — the OR across statements of their pushable
   literal-only conjuncts — so shards ship fewer rows; a statement with no
   pushable restriction for a table forces that table to ship whole, which
   keeps results byte-identical to the unpushed path.  Row order within a
   table is shard-concatenation order, so a cross-shard-count comparison of
   result sets must be order-insensitive unless the query orders
   explicitly. *)
let serving_db t s =
  match t.repl with
  | None -> t.dbs.(s)
  | Some _ when t.cur <> None || Database.in_txn t.dbs.(s) ->
      (* An open transaction's effects live eagerly in the primary's heap
         (undo-logged); only the primary may serve them. *)
      t.dbs.(s)
  | Some r -> (
      (* Consistent-cut routing: a follower serves only when its applied
         LSN has reached the primary's *current* LSN, so the gathered
         snapshot across shards equals the primaries' state and the
         execution-order serial-replay oracle stays valid.  Anything
         behind falls back to the primary. *)
      let lsn = Database.current_lsn t.dbs.(s) in
      match Replication.route_read r.r_groups.(s) ~min_lsn:lsn with
      | Some (_, rdb) ->
          t.ctr.c_replica_reads <- t.ctr.c_replica_reads + 1;
          rdb
      | None -> t.dbs.(s))

let exec_reads t selects =
  if Array.length t.dbs = 1 then Database.exec_reads (serving_db t 0) selects
  else
    let tables = List.fold_left select_tables [] selects in
    let known = List.filter (fun n -> schema_of t n <> None) tables in
    let pinned_only =
      List.for_all (fun n -> pk_of t n = None) known && known = tables
    in
    if pinned_only then Database.exec_reads (serving_db t 0) selects
    else begin
      t.ctr.c_gathers <- t.ctr.c_gathers + 1;
      let scratch = Database.create ~cost:(Database.cost_model t.dbs.(0)) () in
      Database.set_planner scratch (Database.planner_enabled t.dbs.(0));
      (* The scratch engine is per-gather, so there is nothing for a result
         cache to carry across flushes (a dead gather's rows can never be
         served) — but the plan-merge pass still applies within the
         flush. *)
      Database.set_mqo scratch (Database.mqo_enabled t.dbs.(0));
      List.iter
        (fun name ->
          match Database.table t.dbs.(0) name with
          | None -> ()
          | Some tbl ->
              Database.create_table scratch (Table.schema tbl);
              List.iter
                (fun c -> Database.create_index scratch ~table:name ~column:c)
                (Table.secondary_columns tbl);
              List.iter
                (fun c ->
                  Database.create_ordered_index scratch ~table:name ~column:c)
                (Table.ordered_columns tbl))
        known;
      let pushed =
        if t.gather_pushdown then gather_preds selects else fun _ -> None
      in
      let fetches =
        List.map
          (fun name -> { (plain_select name) with Ast.sel_where = pushed name })
          known
      in
      let gather_cost = ref 0.0 and gather_scanned = ref 0 in
      Array.iteri
        (fun s _ ->
          let db = serving_db t s in
          if known <> [] then
            List.iter2
              (fun name ((o : Database.outcome), scanned) ->
                gather_cost := !gather_cost +. o.cost_ms;
                gather_scanned := !gather_scanned + scanned;
                match Database.table scratch name with
                | None -> ()
                | Some stbl ->
                    List.iter
                      (fun row -> ignore (Table.insert stbl row : Table.rid))
                      (Result_set.rows o.rs))
              known
              (Database.exec_reads db fetches))
        t.dbs;
      List.mapi
        (fun i ((o : Database.outcome), scanned) ->
          if i = 0 then
            ( { o with cost_ms = o.cost_ms +. !gather_cost },
              scanned + !gather_scanned )
          else (o, scanned))
        (Database.exec_reads scratch selects)
    end

(* --- statement execution ------------------------------------------------- *)

let fixed_outcome t =
  {
    Database.rs = Result_set.empty;
    rows_affected = 0;
    cost_ms = (Database.cost_model t.dbs.(0)).Cost.fixed_ms;
  }

let merge_outcomes (outs : Database.outcome list) =
  List.fold_left
    (fun (acc : Database.outcome) (o : Database.outcome) ->
      {
        acc with
        rows_affected = acc.rows_affected + o.rows_affected;
        cost_ms = acc.cost_ms +. o.cost_ms;
      })
    { Database.rs = Result_set.empty; rows_affected = 0; cost_ms = 0.0 }
    outs

let run_write_on t d s stmt =
  ensure_touched t d s;
  Database.exec t.dbs.(s) stmt

let broadcast_write t d stmt =
  t.ctr.c_fanout <- t.ctr.c_fanout + 1;
  merge_outcomes
    (List.init (Array.length t.dbs) (fun s -> run_write_on t d s stmt))

(* Route one write inside the open distributed transaction [d]. *)
let run_write t d stmt =
  match stmt with
  | Ast.Insert { table; columns; rows } -> (
      let groups = Hashtbl.create 4 and order = ref [] in
      List.iter
        (fun row ->
          let s = insert_shard t ~table ~columns row in
          if not (Hashtbl.mem groups s) then order := !order @ [ s ];
          Hashtbl.replace groups s
            (row :: (Option.value ~default:[] (Hashtbl.find_opt groups s))))
        rows;
      match !order with
      | [] -> run_write_on t d 0 stmt (* empty INSERT: surface shard 0's error *)
      | [ s ] -> run_write_on t d s stmt
      | order ->
          merge_outcomes
            (List.map
               (fun s ->
                 let rows = List.rev (Hashtbl.find groups s) in
                 run_write_on t d s (Ast.Insert { table; columns; rows }))
               order))
  | Ast.Update { table; set; where } -> (
      (match pk_of t table with
      | Some pk when List.mem_assoc pk set ->
          error "sharded update may not modify the primary key %s.%s" table pk
      | _ -> ());
      match route_by_pk t table where with
      | Some s -> run_write_on t d s stmt
      | None -> broadcast_write t d stmt)
  | Ast.Delete { table; where } -> (
      match route_by_pk t table where with
      | Some s -> run_write_on t d s stmt
      | None -> broadcast_write t d stmt)
  | _ ->
      Database.invariant_violation
        "Shard.run_write: non-DML statement routed into a distributed \
         transaction (touched shards: [%s], next gtid %d)"
        (String.concat ";" (List.map string_of_int d.touched))
        (Two_pc.next_gtid t.coord)

let exec t stmt =
  if Array.length t.dbs = 1 && t.repl = None then Database.exec t.dbs.(0) stmt
  else
    match stmt with
    | Ast.Begin_txn ->
        if t.cur <> None then error "nested transactions are not supported";
        t.cur <- Some { touched = [] };
        fixed_outcome t
    | Ast.Commit ->
        (match t.cur with Some d -> commit_dtxn t d | None -> ());
        fixed_outcome t
    | Ast.Rollback ->
        (match t.cur with Some d -> rollback_dtxn t d | None -> ());
        fixed_outcome t
    | Ast.Select sel -> (
        match exec_reads t [ sel ] with
        | [ (o, _) ] -> o
        | outs ->
            Database.invariant_violation
              "Shard.exec: gather returned %d outcomes for a single SELECT \
               (%d shards, next gtid %d)"
              (List.length outs) (Array.length t.dbs)
              (Two_pc.next_gtid t.coord))
    | Ast.Create_table _ ->
        (* DDL broadcasts so every shard's catalog (and WAL) knows the
           table; the records are standalone and id-free. *)
        merge_outcomes
          (Array.to_list (Array.map (fun db -> Database.exec db stmt) t.dbs))
    | Ast.Insert _ | Ast.Update _ | Ast.Delete _ -> (
        match t.cur with
        | Some d -> run_write t d stmt
        | None -> (
            (* autocommit: an implicit single-statement distributed txn *)
            let d = { touched = [] } in
            t.cur <- Some d;
            match run_write t d stmt with
            | o ->
                commit_dtxn t d;
                o
            | exception e ->
                rollback_dtxn t d;
                raise e))

let exec_batch t stmts =
  if Array.length t.dbs = 1 && t.repl = None then
    Database.exec_batch t.dbs.(0) stmts
  else
    let flush_reads pending acc =
      match pending with
      | [] -> acc
      | _ ->
          let outs = exec_reads t (List.rev pending) in
          List.rev_append (List.map fst outs) acc
    in
    let rec go pending acc = function
      | [] -> List.rev (flush_reads pending acc)
      | Ast.Select s :: rest -> go (s :: pending) acc rest
      | stmt :: rest ->
          let acc = flush_reads pending acc in
          go [] (exec t stmt :: acc) rest
    in
    go [] [] stmts

let atomically ?token t f =
  if Array.length t.dbs = 1 && t.repl = None then
    Database.atomically ?token t.dbs.(0) f
  else
    match t.cur with
    | Some _ -> f () (* the client's transaction already provides atomicity *)
    | None -> (
        let d = { touched = [] } in
        t.cur <- Some d;
        match f () with
        | v ->
            commit_dtxn ?token t d;
            v
        | exception e ->
            rollback_dtxn t d;
            raise e)

let in_txn t =
  if Array.length t.dbs = 1 && t.repl = None then Database.in_txn t.dbs.(0)
  else t.cur <> None

let token_applied t k = Array.exists (fun db -> Database.token_applied db k) t.dbs
let current_lsn t = Array.fold_left (fun a db -> a + Database.current_lsn db) 0 t.dbs
let cost_model t = Database.cost_model t.dbs.(0)

let recovery_totals t =
  Array.fold_left
    (fun (txns, records, idc, ida) db ->
      match Database.last_recovery db with
      | None -> (txns, records, idc, ida)
      | Some (r : Database.recovery_stats) ->
          ( txns + r.replayed_txns,
            records + r.replayed_records,
            idc + r.in_doubt_committed,
            ida + r.in_doubt_aborted ))
    (0, 0, 0, 0) t.dbs

(* --- DDL convenience ----------------------------------------------------- *)

let create_table t schema = Array.iter (fun db -> Database.create_table db schema) t.dbs

let create_index t ~table ~column =
  Array.iter (fun db -> Database.create_index db ~table ~column) t.dbs

let create_ordered_index t ~table ~column =
  Array.iter (fun db -> Database.create_ordered_index db ~table ~column) t.dbs

let exec_sql t sql =
  match Sloth_sql.Parser.parse sql with
  | stmt -> exec t stmt
  | exception Sloth_sql.Parser.Error msg -> error "parse error: %s" msg

let query t sql = (exec_sql t sql).Database.rs

(* --- fingerprints -------------------------------------------------------- *)

let shard_fingerprints t = Array.to_list (Array.map Database.fingerprint t.dbs)

(* Order-insensitive digest of the merged logical contents: table names in
   catalog order (DDL broadcast keeps every catalog identical), rows of all
   shards rendered and sorted.  Equal across different shard counts — and
   equal to {!logical_fingerprint_db} of an unsharded engine holding the
   same data — whereas {!Database.fingerprint} is heap-layout-exact and
   only comparable at the same shard count. *)
let logical_of_dbs dbs =
  let b = Buffer.create 1024 in
  let names = match dbs with [] -> [] | db :: _ -> Database.table_names db in
  List.iter
    (fun name ->
      Buffer.add_string b name;
      Buffer.add_char b '\n';
      let rows = ref [] in
      List.iter
        (fun db ->
          match Database.table db name with
          | None -> ()
          | Some tbl ->
              Table.iter
                (fun _ row ->
                  rows :=
                    String.concat "|"
                      (Array.to_list (Array.map Value.to_string row))
                    :: !rows)
                tbl)
        dbs;
      List.iter
        (fun r ->
          Buffer.add_string b r;
          Buffer.add_char b '\n')
        (List.sort String.compare !rows))
    names;
  Digest.to_hex (Digest.string (Buffer.contents b))

let logical_fingerprint t = logical_of_dbs (Array.to_list t.dbs)
let logical_fingerprint_db db = logical_of_dbs [ db ]

(* --- audit --------------------------------------------------------------- *)

(* Cross-check every shard's WAL against the decision log.  Sound at
   quiescence (no transaction mid-protocol, recoveries completed):
     - a phase-2 completion marker for a gtid the decision log never
       committed means a participant committed without a decision;
     - a still-in-doubt chunk whose gtid the decision log *did* commit on
       this shard means a decided transaction was left unapplied (recovery
       should have resolved it). *)
let audit t =
  let violations = ref [] in
  let add fmt =
    Format.kasprintf (fun s -> violations := !violations @ [ s ]) fmt
  in
  Array.iteri
    (fun si db ->
      let pending = ref None in
      let in_doubt = ref [] in
      List.iter
        (fun r ->
          match (r, !pending) with
          | Wal.Begin id, _ -> pending := Some id
          | Wal.Commit id, Some id' when id = id' -> pending := None
          | Wal.Prepare id, Some id' when id = id' ->
              in_doubt := !in_doubt @ [ id ];
              pending := None
          | Wal.Commit id, None when List.mem id !in_doubt ->
              if not (Two_pc.decided_commit t.coord id) then
                add "shard %d: completion marker for undecided gtid %d" si id;
              in_doubt := List.filter (fun g -> g <> id) !in_doubt
          | _ -> ())
        (Database.wal_records db);
      List.iter
        (fun id ->
          if Two_pc.decided_commit t.coord id then
            match Two_pc.participants t.coord id with
            | Some ps when List.mem si ps ->
                add "shard %d: decided COMMIT gtid %d still in doubt" si id
            | _ -> ())
        !in_doubt)
    t.dbs;
  !violations
