open Sloth_sql.Ast

type catalog = {
  find_table : string -> Table.t option;
  add_table : Schema.t -> unit;
}

type outcome = {
  rs : Result_set.t;
  rows_scanned : int;
  rows_affected : int;
}

type mode = Direct | Planned

exception Sql_error of string

exception Recursion_limit of { cte : string; limit : int }

let error fmt = Format.kasprintf (fun s -> raise (Sql_error s)) fmt

let get_table cat name =
  match cat.find_table name with
  | Some t -> t
  | None -> error "no such table: %s" name

let binding_name table alias = Option.value alias ~default:table

(* --- CTE working tables -------------------------------------------------- *)

(* A catalog in which [name] resolves to whatever table [current] holds —
   the fixpoint swaps the delta in during step evaluation and the
   accumulated result back for the main pipeline.  The working table
   shadows any real table of the same name; everything else passes
   through. *)
let overlay cat name current =
  {
    find_table =
      (fun n -> if String.equal n name then Some !current else cat.find_table n);
    add_table = cat.add_table;
  }

(* A throwaway in-memory table for CTE rows.  Columns are all nullable
   T_int: scratch rows bypass type validation (they are inserted through
   the redo path below), so the declared types only have to exist. *)
let scratch_table name cols =
  match
    Table.create
      (Schema.create ~name
         (List.map
            (fun c -> { Schema.name = c; ty = T_int; nullable = true })
            cols))
  with
  | t -> t
  | exception Invalid_argument msg -> error "CTE %s: %s" name msg

(* Append a row through the redo path: keeps indexes and the live count
   consistent while skipping [Schema.validate_row] — CTE rows carry whatever
   values their leg produced. *)
let scratch_insert tbl row =
  Table.apply_redo tbl (Table.heap_length tbl) (Some row)

(* --- physical-plan interpretation --------------------------------------- *)

(* Produce the environments for one base table according to the planned
   access path.  Index paths yield rids in ascending order (re-sorted for
   range scans), so every access path enumerates rows in rid order and the
   choice is invisible to the result. *)
let run_access cat scanned ~table:table_name ~binding access =
  let table = get_table cat table_name in
  let schema = Table.schema table in
  let candidate_rids =
    match access with
    | Plan.Seq_scan -> None
    | Plan.Index_eq { column; key } -> Table.lookup_indexed table column key
    | Plan.Index_range { column; lo; hi } ->
        (* Back to rid order so index and scan paths agree exactly. *)
        Option.map (List.sort Int.compare)
          (Table.lookup_range table column ?lo ?hi ())
  in
  match candidate_rids with
  | Some rids ->
      scanned := !scanned + List.length rids;
      List.filter_map
        (fun rid ->
          Option.map (fun row -> [ (binding, schema, row) ]) (Table.get table rid))
        rids
  | None ->
      scanned := !scanned + Table.row_count table;
      let acc = ref [] in
      Table.iter (fun _ row -> acc := [ (binding, schema, row) ] :: !acc) table;
      List.rev !acc

(* Extend each environment with rows of a joined table.  An index probe
   evaluates the planned outer expression per environment; rows where it
   cannot be evaluated fall back to a scan, and the full ON clause is
   always re-applied. *)
let run_join cat scanned envs ~table:j_table ~binding ~on strategy =
  let table = get_table cat j_table in
  let schema = Table.schema table in
  let scan_extend env =
    scanned := !scanned + Table.row_count table;
    let acc = ref [] in
    Table.iter
      (fun _ row ->
        let env' = env @ [ (binding, schema, row) ] in
        if Value.is_truthy (Eval.eval env' on) then acc := env' :: !acc)
      table;
    List.rev !acc
  in
  let extend env =
    match strategy with
    | Plan.Nested_loop -> scan_extend env
    | Plan.Index_probe { column; outer } -> (
        match Eval.eval env outer with
        | key -> (
            match Table.lookup_indexed table column key with
            | Some rids ->
                scanned := !scanned + List.length rids;
                List.filter_map
                  (fun rid ->
                    match Table.get table rid with
                    | Some row ->
                        let env' = env @ [ (binding, schema, row) ] in
                        if Value.is_truthy (Eval.eval env' on) then Some env'
                        else None
                    | None -> None)
                  rids
            | None -> scan_extend env)
        | exception Eval.Error _ -> scan_extend env)
  in
  List.concat_map extend envs

let rec run_source cat scanned = function
  | Plan.P_nothing -> [ [] ]
  | Plan.P_scan { table; binding; access; _ } ->
      run_access cat scanned ~table ~binding access
  | Plan.P_join { left; table; binding; on; strategy; _ } ->
      let envs = run_source cat scanned left in
      run_join cat scanned envs ~table ~binding ~on strategy

let rec source_schemas cat = function
  | Plan.P_nothing -> []
  | Plan.P_scan { table; binding; _ } ->
      [ (binding, Table.schema (get_table cat table)) ]
  | Plan.P_join { left; table; binding; _ } ->
      source_schemas cat left @ [ (binding, Table.schema (get_table cat table)) ]

(* Does this plan read from [name]?  Decides whether a CTE's step leg is
   genuinely recursive (iterated over deltas) or runs exactly once.  A
   nested fixpoint of the same name shadows [name], so its legs don't
   count. *)
let rec plan_mentions name (p : Plan.physical) =
  let rec src = function
    | Plan.P_nothing -> false
    | Plan.P_scan { table; _ } -> String.equal table name
    | Plan.P_join { left; table; _ } -> String.equal table name || src left
  in
  src p.Plan.p_source
  ||
  match p.Plan.p_fixpoint with
  | None -> false
  | Some f ->
      (not (String.equal f.Plan.pf_name name))
      && (plan_mentions name f.Plan.pf_base
         || Option.fold ~none:false ~some:(plan_mentions name) f.Plan.pf_step)

(* --- projection -------------------------------------------------------- *)

let rec has_agg = function
  | Agg _ -> true
  | Binop (_, a, b) -> has_agg a || has_agg b
  | Unop (_, e) -> has_agg e
  | In_list (e, items) -> has_agg e || List.exists has_agg items
  | Is_null { e; _ } -> has_agg e
  | Like (e, _) -> has_agg e
  | Between { e; lo; hi } -> has_agg e || has_agg lo || has_agg hi
  | In_select (e, _) -> has_agg e
  | Lit _ | Col _ -> false

let item_name = function
  | Star -> error "SELECT * cannot be aliased"
  | Sel_expr (_, Some alias) -> alias
  | Sel_expr (Col (_, c), None) -> c
  | Sel_expr (e, None) -> Sloth_sql.Printer.expr_to_string e

(* Expand items to (column_name, expr) pairs; Star expands to every column
   of every binding, qualified with the binding name when several bindings
   are in scope. *)
let expand_items env_bindings items =
  let star_columns () =
    let qualify = List.length env_bindings > 1 in
    List.concat_map
      (fun (binding, schema) ->
        List.map
          (fun (c : Schema.column) ->
            let name = if qualify then binding ^ "." ^ c.name else c.name in
            (name, Col (Some binding, c.name)))
          (Schema.columns schema))
      env_bindings
  in
  List.concat_map
    (function
      | Star -> star_columns ()
      | Sel_expr (e, _) as item -> [ (item_name item, e) ])
    items

let value_to_lit = function
  | Value.Null -> L_null
  | Value.Int n -> L_int n
  | Value.Float f -> L_float f
  | Value.Text s -> L_string s
  | Value.Bool b -> L_bool b

(* Evaluate an expression over a group of rows: aggregate nodes are computed
   over the whole group and substituted as literals, then the residual
   expression is evaluated on the group's first row. *)
let eval_in_group group e =
  let first = match group with g :: _ -> g | [] -> assert false in
  let agg_value agg arg =
    match (agg, arg) with
    | Count, None -> Value.Int (List.length group)
    | _, None -> error "only COUNT accepts a star argument"
    | _, Some arg -> (
        let vs =
          List.filter_map
            (fun env ->
              match Eval.eval env arg with Value.Null -> None | v -> Some v)
            group
        in
        match agg with
        | Count -> Value.Int (List.length vs)
        | Min -> (
            match vs with
            | [] -> Value.Null
            | v :: rest -> List.fold_left Value.(fun a b -> if compare b a < 0 then b else a) v rest)
        | Max -> (
            match vs with
            | [] -> Value.Null
            | v :: rest -> List.fold_left Value.(fun a b -> if compare b a > 0 then b else a) v rest)
        | Sum | Avg -> (
            match vs with
            | [] -> Value.Null
            | _ ->
                let fs =
                  List.map
                    (fun v ->
                      match Value.to_float v with
                      | Some f -> f
                      | None -> error "SUM/AVG over non-numeric values")
                    vs
                in
                let total = List.fold_left ( +. ) 0.0 fs in
                let all_int =
                  List.for_all (function Value.Int _ -> true | _ -> false) vs
                in
                if agg = Avg then Value.Float (total /. float_of_int (List.length fs))
                else if all_int then Value.Int (int_of_float total)
                else Value.Float total))
  in
  let rec subst = function
    | Agg (a, arg) -> Lit (value_to_lit (agg_value a arg))
    | Binop (op, x, y) -> Binop (op, subst x, subst y)
    | Unop (op, x) -> Unop (op, subst x)
    | In_list (x, items) -> In_list (subst x, List.map subst items)
    | Is_null { e; negated } -> Is_null { e = subst e; negated }
    | Like (x, p) -> Like (subst x, p)
    | Between { e; lo; hi } ->
        Between { e = subst e; lo = subst lo; hi = subst hi }
    | In_select (x, sub) -> In_select (subst x, sub)
    | (Lit _ | Col _) as e -> e
  in
  Eval.eval first (subst e)

(* DISTINCT: drop later duplicates, preserving first-occurrence order. *)
let dedupe_rows rows =
  let seen = Hashtbl.create 32 in
  List.filter
    (fun row ->
      let key = Array.to_list (Array.map Value.to_string row) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.replace seen key ();
        true
      end)
    rows

(* --- SELECT ------------------------------------------------------------ *)

(* Check column references against the visible bindings so that unknown
   columns fail even when the input has no rows (plan-time validation). *)
let rec validate_cols bindings = function
  | Col (Some q, c) -> (
      match List.find_opt (fun (b, _) -> String.equal b q) bindings with
      | None -> error "unknown table or alias %s" q
      | Some (_, schema) ->
          if not (Schema.mem schema c) then error "unknown column %s.%s" q c)
  | Col (None, c) ->
      if not (List.exists (fun (_, schema) -> Schema.mem schema c) bindings)
      then error "unknown column %s" c
  | Lit _ -> ()
  | Binop (_, a, b) ->
      validate_cols bindings a;
      validate_cols bindings b
  | Unop (_, e) -> validate_cols bindings e
  | In_list (e, items) ->
      validate_cols bindings e;
      List.iter (validate_cols bindings) items
  | Is_null { e; _ } -> validate_cols bindings e
  | Like (e, _) -> validate_cols bindings e
  | Between { e; lo; hi } ->
      validate_cols bindings e;
      validate_cols bindings lo;
      validate_cols bindings hi
  | In_select (e, _) ->
      (* The subquery is validated when it is materialized (it sees its own
         bindings, not the outer ones — subqueries are uncorrelated). *)
      validate_cols bindings e
  | Agg (_, arg) -> Option.iter (validate_cols bindings) arg

let select_bindings cat (s : select) =
  match s.sel_from with
  | None -> []
  | Some (t, alias) ->
      (binding_name t alias, Table.schema (get_table cat t))
      :: List.map
           (fun j ->
             ( binding_name j.j_table j.j_alias,
               Table.schema (get_table cat j.j_table) ))
           s.sel_joins

let rec validate_select cat (s : select) =
  (* CTE legs validate against the same catalog: the caller has already
     overlaid the working table, so step-leg references to the CTE name
     resolve to its (typed-by-name) scratch schema. *)
  Option.iter
    (fun c ->
      validate_select cat c.cte_base;
      Option.iter (validate_select cat) c.cte_step)
    s.sel_with;
  let bindings = select_bindings cat s in
  List.iter
    (function Star -> () | Sel_expr (e, _) -> validate_cols bindings e)
    s.sel_items;
  Option.iter (validate_cols bindings) s.sel_where;
  List.iter (validate_cols bindings) s.sel_group_by;
  Option.iter (validate_cols bindings) s.sel_having;
  List.iter (fun o -> validate_cols bindings o.o_expr) s.sel_order_by;
  List.iter (fun j -> validate_cols bindings j.j_on) s.sel_joins

(* The residual pipeline above the plan's source: filter, aggregate, sort,
   paginate, project.  [scanned] already counts the source's work. *)
let finish cat (p : Plan.physical) ~scanned envs =
  (* Apply the full WHERE (the index was only a pre-filter). *)
  let envs =
    match p.Plan.p_where with
    | None -> envs
    | Some w -> List.filter (fun env -> Value.is_truthy (Eval.eval env w)) envs
  in
  let bindings =
    match envs with
    | env :: _ -> List.map (fun (b, sch, _) -> (b, sch)) env
    | [] -> source_schemas cat p.Plan.p_source
  in
  let aggregated =
    p.Plan.p_group_by <> []
    || List.exists
         (function Star -> false | Sel_expr (e, _) -> has_agg e)
         p.Plan.p_items
  in
  if aggregated then begin
    (* Group rows by the GROUP BY key (all rows form one group if absent). *)
    let key env = List.map (fun e -> Eval.eval env e) p.Plan.p_group_by in
    let groups : (Value.t list * Eval.env list ref) list ref = ref [] in
    List.iter
      (fun env ->
        let k = key env in
        match
          List.find_opt (fun (k', _) -> List.equal Value.equal k k') !groups
        with
        | Some (_, cell) -> cell := env :: !cell
        | None -> groups := (k, ref [ env ]) :: !groups)
      envs;
    let groups =
      List.rev_map (fun (k, cell) -> (k, List.rev !cell)) !groups
    in
    let groups =
      (* A global aggregate over an empty input still yields one row. *)
      if groups = [] && p.Plan.p_group_by = [] && envs = [] then
        if p.Plan.p_source = Plan.P_nothing then [ ([], [ [] ]) ]
        else [ ([], []) ]
      else groups
    in
    let items =
      List.map
        (function
          | Star -> error "SELECT * cannot be combined with aggregates"
          | Sel_expr (e, _) as item -> (item_name item, e))
        p.Plan.p_items
    in
    let row_of_group (_, group) =
      Array.of_list
        (List.map
           (fun (_, e) ->
             match group with
             | [] -> (
                 (* Empty global group: COUNT = 0, other aggregates NULL. *)
                 match e with
                 | Agg (Count, _) -> Value.Int 0
                 | Agg _ -> Value.Null
                 | _ -> Value.Null)
             | _ -> eval_in_group group e)
           items)
    in
    (* HAVING filters groups; the predicate may mix aggregates and group
       keys, evaluated the same way as select items. *)
    let groups =
      match p.Plan.p_having with
      | None -> groups
      | Some h ->
          List.filter
            (fun (_, group) ->
              match group with
              | [] -> false
              | _ -> Value.is_truthy (eval_in_group group h))
            groups
    in
    let groups =
      match p.Plan.p_order_by with
      | [] -> groups
      | os ->
          let keyed =
            List.map
              (fun ((_, group) as g) ->
                let ks =
                  List.map
                    (fun o ->
                      let v =
                        match group with
                        | [] -> Value.Null
                        | _ -> eval_in_group group o.o_expr
                      in
                      (v, o.o_asc))
                    os
                in
                (ks, g))
              groups
          in
          let cmp (ka, _) (kb, _) =
            let rec go a b =
              match (a, b) with
              | [], [] -> 0
              | (va, asc) :: ra, (vb, _) :: rb ->
                  let c = Value.compare va vb in
                  if c <> 0 then if asc then c else -c else go ra rb
              | _ -> 0
            in
            go ka kb
          in
          List.map snd (List.stable_sort cmp keyed)
    in
    let groups =
      match p.Plan.p_offset with
      | None -> groups
      | Some n -> List.filteri (fun i _ -> i >= n) groups
    in
    let groups =
      match p.Plan.p_limit with
      | None -> groups
      | Some n -> List.filteri (fun i _ -> i < n) groups
    in
    let rows = List.map row_of_group groups in
    let rows = if p.Plan.p_distinct then dedupe_rows rows else rows in
    {
      rs = Result_set.create ~columns:(List.map fst items) rows;
      rows_scanned = !scanned;
      rows_affected = 0;
    }
  end
  else begin
    let envs =
      match p.Plan.p_order_by with
      | [] -> envs
      | os ->
          let keyed =
            List.map
              (fun env ->
                (List.map (fun o -> (Eval.eval env o.o_expr, o.o_asc)) os, env))
              envs
          in
          let cmp (ka, _) (kb, _) =
            let rec go a b =
              match (a, b) with
              | [], [] -> 0
              | (va, asc) :: ra, (vb, _) :: rb ->
                  let c = Value.compare va vb in
                  if c <> 0 then if asc then c else -c else go ra rb
              | _ -> 0
            in
            go ka kb
          in
          List.map snd (List.stable_sort cmp keyed)
    in
    let envs =
      match p.Plan.p_offset with
      | None -> envs
      | Some n -> List.filteri (fun i _ -> i >= n) envs
    in
    let envs =
      match p.Plan.p_limit with
      | None -> envs
      | Some n -> List.filteri (fun i _ -> i < n) envs
    in
    let named = expand_items bindings p.Plan.p_items in
    let rows =
      List.map
        (fun env ->
          Array.of_list (List.map (fun (_, e) -> Eval.eval env e) named))
        envs
    in
    let rows = if p.Plan.p_distinct then dedupe_rows rows else rows in
    {
      rs = Result_set.create ~columns:(List.map fst named) rows;
      rows_scanned = !scanned;
      rows_affected = 0;
    }
  end

(* Replace every [e IN (SELECT ...)] with [e IN (v1, ..., vn)] by running
   the (uncorrelated) subquery — a single-column result — up front; its
   scanned rows are the subquery's own business.  Then validate, plan and
   interpret. *)
let rec materialize cat ~mode ~model ~limit expr =
  match expr with
  | Lit _ | Col _ -> expr
  | Binop (op, a, b) ->
      Binop
        ( op,
          materialize cat ~mode ~model ~limit a,
          materialize cat ~mode ~model ~limit b )
  | Unop (op, e) -> Unop (op, materialize cat ~mode ~model ~limit e)
  | In_list (e, items) ->
      In_list
        ( materialize cat ~mode ~model ~limit e,
          List.map (materialize cat ~mode ~model ~limit) items )
  | Is_null { e; negated } ->
      Is_null { e = materialize cat ~mode ~model ~limit e; negated }
  | Like (e, p) -> Like (materialize cat ~mode ~model ~limit e, p)
  | Between { e; lo; hi } ->
      Between
        {
          e = materialize cat ~mode ~model ~limit e;
          lo = materialize cat ~mode ~model ~limit lo;
          hi = materialize cat ~mode ~model ~limit hi;
        }
  | Agg (a, arg) -> Agg (a, Option.map (materialize cat ~mode ~model ~limit) arg)
  | In_select (e, sub) ->
      let outcome = exec_select cat ~mode ~model ~limit sub in
      let values =
        List.map
          (fun row ->
            if Array.length row <> 1 then
              error "IN subquery must produce a single column"
            else Lit (value_to_lit row.(0)))
          (Result_set.rows outcome.rs)
      in
      In_list (materialize cat ~mode ~model ~limit e, values)

and materialize_select cat ~mode ~model ~limit (s : select) =
  {
    s with
    sel_with =
      (* CTE legs materialize their IN-subqueries too.  A self-reference
         inside an IN-subquery sees the (empty) initial working table — only
         FROM/JOIN references to the CTE name participate in the
         recursion. *)
      Option.map
        (fun c ->
          {
            c with
            cte_base = materialize_select cat ~mode ~model ~limit c.cte_base;
            cte_step =
              Option.map (materialize_select cat ~mode ~model ~limit) c.cte_step;
          })
        s.sel_with;
    sel_where = Option.map (materialize cat ~mode ~model ~limit) s.sel_where;
    sel_having = Option.map (materialize cat ~mode ~model ~limit) s.sel_having;
  }

and plan_select cat ~mode ~model ~limit (s : select) =
  let find name = get_table cat name in
  match mode with
  | Planned -> Planner.plan ~recursion_limit:limit ~find ~model s
  | Direct -> Planner.direct ~recursion_limit:limit ~find ~model s

(* Resolve a WITH prefix into a catalog overlay — a scratch working table
   named after the CTE shadows any real table of that name — then
   materialize IN-subqueries and validate against the overlaid catalog, so
   step-leg references to the CTE name resolve like any other table.
   Returns the catalog every later phase (planning, execution) must use. *)
and prep_select cat ~mode ~model ~limit (s : select) =
  let cat =
    match s.sel_with with
    | None -> cat
    | Some c ->
        let find name = get_table cat name in
        let cols = Planner.cte_columns ~find c in
        let current = ref (scratch_table c.cte_name cols) in
        overlay cat c.cte_name current
  in
  let s = materialize_select cat ~mode ~model ~limit s in
  validate_select cat s;
  (cat, s)

and exec_select cat ~mode ~model ~limit (s : select) =
  let cat, s = prep_select cat ~mode ~model ~limit s in
  run_physical cat (plan_select cat ~mode ~model ~limit s)

(* Interpret a whole physical plan: evaluate the fixpoint (if any) into its
   working table, then run the main pipeline with that table in scope. *)
and run_physical cat (p : Plan.physical) =
  let scanned = ref 0 in
  let cat =
    match p.Plan.p_fixpoint with
    | None -> cat
    | Some f ->
        let acc = scratch_table f.Plan.pf_name f.Plan.pf_cols in
        let current = ref acc in
        let cat = overlay cat f.Plan.pf_name current in
        run_fixpoint cat ~scanned ~acc ~current f;
        (* The main pipeline reads the full accumulated result. *)
        current := acc;
        cat
  in
  let envs = run_source cat scanned p.Plan.p_source in
  finish cat p ~scanned envs

(* Semi-naive evaluation: run the base leg into the accumulator, then
   re-run the step leg with only the previous iteration's new rows (the
   delta) bound to the CTE name, until an iteration contributes nothing.
   Rows keep first-insertion order, so results are deterministic. *)
and run_fixpoint cat ~scanned ~acc ~current (f : Plan.p_fixpoint) =
  let ncols = List.length f.Plan.pf_cols in
  let leg p =
    let o = run_physical cat p in
    scanned := !scanned + o.rows_scanned;
    let produced = List.length (Result_set.columns o.rs) in
    if produced <> ncols then
      error "CTE %s has %d columns but a leg produced %d" f.Plan.pf_name
        ncols produced;
    Result_set.rows o.rs
  in
  let seen = Hashtbl.create 64 in
  (* Feed rows into the accumulator and return the genuinely new ones (the
     next delta).  UNION dedupes everything, including duplicates within
     the base leg itself; UNION ALL keeps every row and iterates on the
     full step output — termination is the iteration cap's business. *)
  let add_rows rows =
    if f.Plan.pf_union_all then begin
      List.iter (scratch_insert acc) rows;
      rows
    end
    else
      List.filter
        (fun row ->
          let key = Array.to_list (Array.map Value.to_string row) in
          if Hashtbl.mem seen key then false
          else begin
            Hashtbl.replace seen key ();
            scratch_insert acc row;
            true
          end)
        rows
  in
  let delta = ref (add_rows (leg f.Plan.pf_base)) in
  match f.Plan.pf_step with
  | None -> ()
  | Some step when not (plan_mentions f.Plan.pf_name step) ->
      (* A second leg that never reads the CTE is not recursive: it runs
         exactly once (iterating it would never converge under UNION ALL). *)
      ignore (add_rows (leg step))
  | Some step ->
      let iter = ref 0 in
      while !delta <> [] do
        if !iter >= f.Plan.pf_limit then
          raise
            (Recursion_limit { cte = f.Plan.pf_name; limit = f.Plan.pf_limit });
        incr iter;
        let dtbl = scratch_table f.Plan.pf_name f.Plan.pf_cols in
        List.iter (scratch_insert dtbl) !delta;
        current := dtbl;
        delta := add_rows (leg step)
      done

let plan_of_select cat ?(mode = Planned) ?(model = Cost.default)
    ?(recursion_limit = Planner.default_recursion_limit) s =
  let cat, s = prep_select cat ~mode ~model ~limit:recursion_limit s in
  plan_select cat ~mode ~model ~limit:recursion_limit s

(* --- multi-query batch execution ---------------------------------------- *)

type planned_read = {
  pr_phys : Plan.physical;
  pr_cat : catalog;
      (* the catalog the plan was prepared against: for WITH statements it
         carries the CTE's working-table overlay *)
  mutable pr_outcome : outcome option;
}

type share_stats = {
  mutable dedup_folded : int;
  mutable seq_scans_shared : int;
  mutable probe_sets_merged : int;
  mutable joins_shared : int;
}

let fresh_share_stats () =
  {
    dedup_folded = 0;
    seq_scans_shared = 0;
    probe_sets_merged = 0;
    joins_shared = 0;
  }

(* Execute a batch of reads together (SharedDB-style): identical statements
   (modulo normalization) are planned and executed once, and all plans that
   resolved to a full sequential scan of the same table share a single pass
   over its heap — the first sharer is charged the scan, the others ride
   along for free.  With [mqo] the plan-merge pass extends sharing to index
   access paths: point/range lookups on the same index fuse into one sorted
   probe-set pass, and structurally-equal join subplans (canonical
   fingerprint, estimates excluded) run once and fan their environments
   out.  Result sets are identical to independent execution in both modes:
   every shared path enumerates rows in rid order and the full WHERE is
   re-applied per query. *)
let execute_reads cat ?(mode = Planned) ?(model = Cost.default) ?(mqo = false)
    ?(recursion_limit = Planner.default_recursion_limit) ?stats selects =
  let by_key : (string, planned_read) Hashtbl.t = Hashtbl.create 16 in
  let entries =
    List.map
      (fun s ->
        let key =
          Sloth_sql.Printer.to_string (Sloth_sql.Normalize.stmt (Select s))
        in
        match Hashtbl.find_opt by_key key with
        | Some pr -> (pr, false)
        | None ->
            let cat, s =
              prep_select cat ~mode ~model ~limit:recursion_limit s
            in
            let pr =
              {
                pr_phys = plan_select cat ~mode ~model ~limit:recursion_limit s;
                pr_cat = cat;
                pr_outcome = None;
              }
            in
            Hashtbl.add by_key key pr;
            (pr, true))
      selects
  in
  let reps = List.filter_map (fun (pr, first) -> if first then Some pr else None) entries in
  let bump f = Option.iter f stats in
  let solo pr = pr.pr_outcome <- Some (run_physical pr.pr_cat pr.pr_phys) in
  let shared_scan table members =
    let tbl = get_table cat table in
    let schema = Table.schema tbl in
    let members =
      List.map
        (fun pr ->
          let binding =
            match pr.pr_phys.Plan.p_source with
            | Plan.P_scan { binding; _ } -> binding
            | _ -> assert false
          in
          (pr, binding, ref []))
        members
    in
    (* One pass over the heap feeds every member's environment list. *)
    Table.iter
      (fun _ row ->
        List.iter
          (fun (_, binding, acc) -> acc := [ (binding, schema, row) ] :: !acc)
          members)
      tbl;
    List.iteri
      (fun i (pr, _, acc) ->
        if i > 0 then bump (fun st -> st.seq_scans_shared <- st.seq_scans_shared + 1);
        let scanned = ref (if i = 0 then Table.row_count tbl else 0) in
        pr.pr_outcome <- Some (finish cat pr.pr_phys ~scanned (List.rev !acc)))
      members
  in
  (* Point lookups on one index fuse into a single probe-set pass: the
     distinct keys are probed once each in sorted order, every prober of a
     key shares its rows, and only the first member is charged the pass. *)
  let shared_eq table column members =
    let tbl = get_table cat table in
    let schema = Table.schema tbl in
    let info pr =
      match pr.pr_phys.Plan.p_source with
      | Plan.P_scan { binding; access = Plan.Index_eq { key; _ }; _ } ->
          (binding, key)
      | _ -> assert false
    in
    let keys =
      List.sort_uniq Value.compare (List.map (fun pr -> snd (info pr)) members)
    in
    let probes =
      List.map
        (fun k -> (k, Table.lookup_indexed tbl column k))
        keys
    in
    if List.exists (fun (_, rids) -> rids = None) probes then
      (* The index evaporated between planning and execution — impossible
         within one flush, but fall back to per-query execution anyway. *)
      List.iter solo members
    else begin
      let total = ref 0 in
      let probes =
        List.map
          (fun (k, rids) ->
            let rids = Option.get rids in
            total := !total + List.length rids;
            (k, List.filter_map (fun rid -> Table.get tbl rid) rids))
          probes
      in
      let rows_for k =
        snd (List.find (fun (k', _) -> Value.compare k k' = 0) probes)
      in
      List.iteri
        (fun i pr ->
          if i > 0 then
            bump (fun st -> st.probe_sets_merged <- st.probe_sets_merged + 1);
          let binding, k = info pr in
          let envs =
            List.map (fun row -> [ (binding, schema, row) ]) (rows_for k)
          in
          let scanned = ref (if i = 0 then !total else 0) in
          pr.pr_outcome <- Some (finish cat pr.pr_phys ~scanned envs))
        members
    end
  in
  (* Range scans on one ordered index fuse the same way; the pass is
     charged once as the number of distinct rids any member touches. *)
  let shared_range table column members =
    let tbl = get_table cat table in
    let schema = Table.schema tbl in
    let lookups =
      List.map
        (fun pr ->
          match pr.pr_phys.Plan.p_source with
          | Plan.P_scan { binding; access = Plan.Index_range { lo; hi; _ }; _ }
            ->
              (pr, binding, Table.lookup_range tbl column ?lo ?hi ())
          | _ -> assert false)
        members
    in
    if List.exists (fun (_, _, rids) -> rids = None) lookups then
      List.iter solo members
    else begin
      let union = Hashtbl.create 64 in
      let lookups =
        List.map
          (fun (pr, binding, rids) ->
            (* Back to rid order so the fused path agrees with run_access. *)
            let rids = List.sort Int.compare (Option.get rids) in
            List.iter (fun rid -> Hashtbl.replace union rid ()) rids;
            (pr, binding, rids))
          lookups
      in
      let total = Hashtbl.length union in
      List.iteri
        (fun i (pr, binding, rids) ->
          if i > 0 then
            bump (fun st -> st.probe_sets_merged <- st.probe_sets_merged + 1);
          let envs =
            List.filter_map
              (fun rid ->
                Option.map
                  (fun row -> [ (binding, schema, row) ])
                  (Table.get tbl rid))
              rids
          in
          let scanned = ref (if i = 0 then total else 0) in
          pr.pr_outcome <- Some (finish cat pr.pr_phys ~scanned envs))
        lookups
    end
  in
  (* Structurally-equal join subplans execute once; every member's residual
     pipeline runs over the shared environments (finish never mutates
     them). *)
  let shared_join members =
    match members with
    | [] -> ()
    | first :: _ ->
        let scanned = ref 0 in
        let envs = run_source cat scanned first.pr_phys.Plan.p_source in
        List.iteri
          (fun i pr ->
            if i > 0 then
              bump (fun st -> st.joins_shared <- st.joins_shared + 1);
            let sc = ref (if i = 0 then !scanned else 0) in
            pr.pr_outcome <- Some (finish cat pr.pr_phys ~scanned:sc envs))
          members
  in
  if mqo then begin
    let reps_arr = Array.of_list reps in
    let groups = Mqo.merge (List.map (fun pr -> pr.pr_phys) reps) in
    List.iter
      (fun (g : Mqo.group) ->
        let members = List.map (fun i -> reps_arr.(i)) g.Mqo.g_members in
        match (members, g.Mqo.g_shape) with
        | [ pr ], _ -> solo pr
        | _, Mqo.Sh_seq { table } -> shared_scan table members
        | _, Mqo.Sh_eq { table; column } -> shared_eq table column members
        | _, Mqo.Sh_range { table; column } -> shared_range table column members
        | _, Mqo.Sh_join _ -> shared_join members
        | _, Mqo.Sh_solo -> List.iter solo members)
      groups
  end
  else begin
    (* Legacy sharing: only bare sequential scans merge, grouped by table
       in first-come order. *)
    let scan_table pr =
      (* A fixpoint plan whose main body scans the CTE would otherwise
         masquerade as a scan of a real table of that name. *)
      if pr.pr_phys.Plan.p_fixpoint <> None then None
      else
        match pr.pr_phys.Plan.p_source with
        | Plan.P_scan { table; access = Plan.Seq_scan; _ } -> Some table
        | _ -> None
    in
    let groups : (string, planned_read list ref) Hashtbl.t =
      Hashtbl.create 4
    in
    List.iter
      (fun pr ->
        match scan_table pr with
        | Some table -> (
            match Hashtbl.find_opt groups table with
            | Some cell -> cell := pr :: !cell
            | None -> Hashtbl.add groups table (ref [ pr ]))
        | None -> ())
      reps;
    List.iter
      (fun pr ->
        if pr.pr_outcome = None then
          match scan_table pr with
          | Some table -> (
              match Hashtbl.find_opt groups table with
              | Some cell when List.length !cell > 1 ->
                  shared_scan table (List.rev !cell)
              | _ -> solo pr)
          | None -> solo pr)
      reps
  end;
  List.map
    (fun (pr, first) ->
      let o = Option.get pr.pr_outcome in
      (* A deduplicated copy shares the representative's result without
         re-doing its work. *)
      if first then o
      else begin
        bump (fun st -> st.dedup_folded <- st.dedup_folded + 1);
        { o with rows_scanned = 0 }
      end)
    entries

(* --- writes ------------------------------------------------------------ *)

let build_row schema columns values =
  let arity = Schema.arity schema in
  let row = Array.make arity Value.Null in
  if List.length columns <> List.length values then
    error "INSERT: %d columns but %d values" (List.length columns)
      (List.length values);
  List.iter2
    (fun c e ->
      match Schema.column_index schema c with
      | Some i -> row.(i) <- Eval.eval_const e
      | None -> error "INSERT: unknown column %s" c)
    columns values;
  row

let exec_insert cat ?log ~table ~columns ~rows () =
  let t = get_table cat table in
  let schema = Table.schema t in
  let n = ref 0 in
  List.iter
    (fun values ->
      let row = build_row schema columns values in
      match Table.insert t row with
      | rid ->
          Option.iter (fun log -> log (Txn.Inserted (t, rid))) log;
          incr n
      | exception Table.Constraint_violation msg -> error "%s" msg)
    rows;
  { rs = Result_set.empty; rows_scanned = 0; rows_affected = !n }

(* Rows matching a WHERE clause on a single table, as (rid, row) pairs.
   Writes keep the direct first-match heuristic — their row targeting is
   not cost-planned. *)
let matching_rows table where scanned =
  let binding = Schema.name (Table.schema table) in
  let schema = Table.schema table in
  let candidates =
    match Planner.write_eq table where with
    | Some (col, key) ->
        let rids = Option.get (Table.lookup_indexed table col key) in
        scanned := !scanned + List.length rids;
        List.filter_map
          (fun rid -> Option.map (fun row -> (rid, row)) (Table.get table rid))
          rids
    | None ->
        scanned := !scanned + Table.row_count table;
        let acc = ref [] in
        Table.iter (fun rid row -> acc := (rid, row) :: !acc) table;
        List.rev !acc
  in
  match where with
  | None -> candidates
  | Some w ->
      List.filter
        (fun (_, row) -> Value.is_truthy (Eval.eval [ (binding, schema, row) ] w))
        candidates

let exec_update cat ?log ~mode ~model ~limit ~table ~set ~where () =
  let where = Option.map (materialize cat ~mode ~model ~limit) where in
  let t = get_table cat table in
  let schema = Table.schema t in
  let binding = Schema.name schema in
  let scanned = ref 0 in
  let targets = matching_rows t where scanned in
  List.iter
    (fun (rid, row) ->
      let updated = Array.copy row in
      List.iter
        (fun (c, e) ->
          match Schema.column_index schema c with
          | Some i -> updated.(i) <- Eval.eval [ (binding, schema, row) ] e
          | None -> error "UPDATE: unknown column %s" c)
        set;
      match Table.update t rid updated with
      | old -> Option.iter (fun log -> log (Txn.Updated (t, rid, old))) log
      | exception Table.Constraint_violation msg -> error "%s" msg)
    targets;
  {
    rs = Result_set.empty;
    rows_scanned = !scanned;
    rows_affected = List.length targets;
  }

let exec_delete cat ?log ~mode ~model ~limit ~table ~where () =
  let where = Option.map (materialize cat ~mode ~model ~limit) where in
  let t = get_table cat table in
  let scanned = ref 0 in
  let targets = matching_rows t where scanned in
  List.iter
    (fun (rid, _) ->
      match Table.delete t rid with
      | Some old -> Option.iter (fun log -> log (Txn.Deleted (t, rid, old))) log
      | None -> ())
    targets;
  {
    rs = Result_set.empty;
    rows_scanned = !scanned;
    rows_affected = List.length targets;
  }

let execute cat ?log ?(mode = Planned) ?(model = Cost.default)
    ?(recursion_limit = Planner.default_recursion_limit) stmt =
  let limit = recursion_limit in
  try
    match stmt with
    | Select s -> exec_select cat ~mode ~model ~limit s
    | Insert { table; columns; rows } ->
        exec_insert cat ?log ~table ~columns ~rows ()
    | Update { table; set; where } ->
        exec_update cat ?log ~mode ~model ~limit ~table ~set ~where ()
    | Delete { table; where } ->
        exec_delete cat ?log ~mode ~model ~limit ~table ~where ()
    | Create_table { table; columns; primary_key } ->
        cat.add_table (Schema.of_ast ~table columns ~primary_key);
        { rs = Result_set.empty; rows_scanned = 0; rows_affected = 0 }
    | Begin_txn | Commit | Rollback ->
        error "transaction control reached the executor"
  with Eval.Error msg -> error "%s" msg

let execute_reads cat ?mode ?model ?mqo ?recursion_limit ?stats selects =
  try execute_reads cat ?mode ?model ?mqo ?recursion_limit ?stats selects
  with Eval.Error msg -> error "%s" msg
