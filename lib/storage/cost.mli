(** Query execution cost model.

    The database server charges virtual time per executed query.  The model
    is deliberately simple — a fixed dispatch cost plus per-row scan, return
    and index-probe costs — but it is enough to reproduce the paper's shape:
    index lookups are cheap, scans grow with table size, and a batch of
    reads executed in parallel costs its maximum rather than its sum.  The
    same constants feed the planner's plan estimates, so the path the
    planner deems cheapest is also the one the clock charges least for. *)

type model = {
  fixed_ms : float;  (** parse/plan/dispatch per statement *)
  scan_row_ms : float;  (** per row examined *)
  return_row_ms : float;  (** per row serialized into the result *)
  probe_ms : float;  (** per index lookup (hash probe or tree descent) *)
}

val default : model

val query_ms : model -> rows_scanned:int -> rows_returned:int -> float

val batch_ms : model -> float list -> float
(** Cost of executing a batch of read queries in parallel (Sec. 5): the max
    of the individual costs plus a small per-query coordination overhead. *)

(** {2 Planner estimators}

    Cardinality and cost estimates used by {!Planner} to choose access
    paths.  They work off table statistics (row counts and per-column
    distinct-value counts) maintained by {!Table}. *)

val est_eq_rows : rows:int -> ndv:int -> float
(** Expected matches of an equality predicate on a column with [ndv]
    distinct values over [rows] rows (uniformity assumption). *)

val est_range_rows : rows:int -> bounded_both:bool -> float
(** Expected matches of a range predicate: the System R 1/3 (half-open) and
    1/4 (closed interval) fractions, lacking histograms. *)

val seq_scan_ms : model -> rows:int -> float
val index_ms : model -> est_rows:float -> float
(** Cost of an index access expected to surface [est_rows] rows. *)

val fused_probe_ms : model -> probes:float -> est_rows:float -> float
(** Cost of running [probes] point lookups on one index as a single fused
    probe-set pass (the MQO plan-merge, DESIGN §17): the first probe at full
    price, each additional sharer at half a probe, plus one visit per
    surfaced row.  [fused_probe_ms ~probes:1.0] equals [index_ms], so solo
    plans are priced identically; with [probes > 1] the per-statement share
    is [fused_probe_ms ... /. probes], which is what {!Planner.plan}'s
    [?probe_sharers] divides by. *)

val fixpoint_ms :
  model -> base_ms:float -> step_ms:float -> est_iterations:float -> float
(** Cost of a recursive-CTE fixpoint (Plan [Fixpoint]): the base leg once
    plus [est_iterations] executions of the step leg, each with a
    probe-priced delta swap.  Monotone in [step_ms], so comparing two
    candidate step plans through this term agrees with comparing the step
    plans directly. *)

val recovery_ms : model -> replayed_records:int -> float
(** Simulated service time of a crash recovery: a fixed reopen cost plus one
    row-visit charge per redo record replayed from the WAL.  The async
    server charges this to the event calendar while it is in the
    [Recovering] state (the wall-clock [recovery_ms] in
    {!Database.recovery_stats} is real time and non-deterministic). *)
