type entry =
  | Inserted of Table.t * Table.rid
  | Deleted of Table.t * Table.rid * Value.t array
  | Updated of Table.t * Table.rid * Value.t array

type t = { mutable entries : entry list }

let create () = { entries = [] }
let log t e = t.entries <- e :: t.entries
let entry_count t = List.length t.entries
let entries t = List.rev t.entries
let commit t = t.entries <- []

let undo = function
  | Inserted (table, rid) ->
      ignore (Table.delete table rid);
      Table.shrink_tail table rid
  | Deleted (table, rid, row) -> Table.restore table rid row
  | Updated (table, rid, old) -> ignore (Table.update table rid old)

let rollback t =
  List.iter undo t.entries;
  t.entries <- []
