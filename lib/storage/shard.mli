(** Hash-partitioned storage with crash-safe two-phase commit.

    A {!t} fronts N independent durable {!Database} engines with the same
    statement-level API the drivers already speak.  Rows live on the shard
    owning their primary key ([Wal.checksum (Value.to_string pk) mod N];
    PK-less tables are pinned to shard 0), DDL broadcasts everywhere, and
    every write runs as a distributed transaction under a
    coordinator-allocated global id.  Cross-shard batches commit with
    presumed-abort two-phase commit: phase 1 forces each participant's redo
    chunk ([Begin .. Prepare]) to that shard's own WAL, the append of a
    [Decision] record to the {!Two_pc} log is the commit point, phase 2
    appends per-participant completion markers.  A crash at {e any}
    protocol step leaves no shard half-applied: recovery resolves
    prepared-but-undecided chunks through the decision log, and no decision
    means abort.

    With [shards = 1] every entry point degenerates to a direct call on the
    single engine — no gtids, no decision log, no gather reads — so a
    single-shard deployment behaves byte-identically to an unsharded
    {!Database}.

    Known restrictions: an UPDATE may not modify a sharded table's primary
    key (the row would have to migrate between shards), and cross-shard
    reads gather the referenced tables (filtered by the pushable WHERE
    restriction when {!set_gather_pushdown} is on, whole otherwise) into a
    scratch engine, so their row order is shard-concatenation order — equal
    to the unsharded engine's only as a multiset unless the query sorts. *)

type t

type stats = {
  two_pc_commits : int;  (** distributed commits that ran full 2PC *)
  one_pc_commits : int;  (** single-participant fast-path commits *)
  dtxn_aborts : int;  (** distributed transactions rolled back *)
  gathered_reads : int;  (** read flushes that took the gather path *)
  fanout_writes : int;  (** writes broadcast to every shard (no PK route) *)
  decisions : int;  (** COMMIT records in the coordinator's decision log *)
  replica_read_fetches : int;
      (** per-shard read fetches served by a caught-up follower *)
  shard_failovers : int;  (** shard-primary promotions performed *)
}

val create :
  ?cost:Cost.model ->
  ?checkpoint_every:int ->
  ?replicas_per_shard:int ->
  ?ack_replicas:int ->
  ?promote_quorum:int ->
  shards:int ->
  unit ->
  t
(** [shards] durable engines over in-memory WAL + checkpoint stores (the
    stores survive simulated crashes, exactly like the recovery
    experiments' substrate), plus a coordinator decision log.  Every
    shard's in-doubt resolver is wired to the decision log.  Raises
    [Invalid_argument] when [shards < 1].

    [replicas_per_shard > 0] makes every shard a {!Replication} group:
    the engine becomes a WAL-shipping primary with that many followers
    (whose in-doubt resolvers are wired to the same decision log, since
    any of them may be promoted mid-protocol), shipping runs on one
    private DES calendar that the 2PC code drains synchronously, and the
    protocol changes in three ways — a participant's PREPARE force, the
    1PC commit chunk and each phase-2 completion marker are all
    quorum-acked ([ack_replicas], default a majority of the current
    followers) before the protocol proceeds; a shard-primary crash at any
    protocol step promotes the most caught-up follower (generation-fenced,
    WAL tail replayed through normal recovery) instead of recovering in
    place; and cross-shard reads may be served by caught-up followers
    under a consistent cut.  With [replicas_per_shard = 0] (the default)
    every code path is byte-identical to an unreplicated deployment. *)

val n_shards : t -> int

val shard_db : t -> int -> Database.t
(** Direct access to one shard's engine (tests and the harness only). *)

val coordinator : t -> Two_pc.t

val set_fault : t -> Sloth_net.Fault.t option -> unit
(** Install the protocol-level fault state consulted at every 2PC decision
    point.  A commit over P writing shards consumes exactly 2P+1
    {!Sloth_net.Fault.decide} calls — P phase-1 points (target [Shard s],
    in touch order), one decision point (target [Coordinator]), P phase-2
    points (target [Shard s]) — and a single-participant commit consumes
    exactly one (target [Shard s]), so a scripted window can hit any exact
    protocol step.  Only [Server_crash] decisions act here (leg [Request] =
    before that step's durable append, anything else = after); other
    failures deliver. *)

val set_planner : t -> bool -> unit

val set_mqo : t -> bool -> unit
(** Broadcast {!Database.set_mqo} to every shard; gathers also enable the
    plan-merge pass on their scratch engine. *)

val set_result_cache : t -> int option -> unit
(** Broadcast {!Database.set_result_cache} to every shard.  Gather scratch
    engines never cache — they are per-flush, so no dead gather's rows can
    be served. *)

val set_gather_pushdown : t -> bool -> unit
(** Enable (default) or disable WHERE pushdown on gathered cross-shard
    reads.  When on, each per-shard per-table gather fetch carries the
    weakest restriction every statement of the flush allows for that table:
    the OR across statements of their literal-only conjuncts on that
    table's columns.  A statement with no pushable restriction forces the
    whole table to ship, so results are byte-identical either way — only
    the shipped row count and gather cost change. *)

val gather_pushdown_enabled : t -> bool

val read_stats : t -> Database.read_stats
(** {!Database.read_stats} summed across shards. *)

val stats : t -> stats

val exec : t -> Sloth_sql.Ast.stmt -> Database.outcome
(** Route and execute one statement.  Writes outside a transaction
    autocommit as single-statement distributed transactions; BEGIN / COMMIT
    / ROLLBACK drive an explicit distributed transaction.  Raises
    {!Database.Sql_error} like the unsharded engine — including
    "shard/coordinator crashed" errors when an installed fault plan kills a
    protocol step before its commit point. *)

val exec_batch : t -> Sloth_sql.Ast.stmt list -> Database.outcome list
(** Mirror of {!Database.exec_batch}: maximal runs of consecutive SELECTs
    execute together (through the gather path when they touch sharded
    tables), writes act as barriers. *)

val exec_reads :
  t -> Sloth_sql.Ast.select list -> (Database.outcome * int) list
(** Mirror of {!Database.exec_reads}.  Reads touching only pinned tables
    run on shard 0 directly; anything else gathers every referenced table
    (deduplicated across the whole group) from all shards into a scratch
    engine and runs the statements there, folding the gather's cost and
    scan count into the first statement's outcome. *)

val atomically : ?token:string -> t -> (unit -> 'a) -> 'a
(** Mirror of {!Database.atomically}: run [f] inside a distributed
    transaction and two-phase-commit it (1PC when a single shard was
    written).  [token] is recorded durably and atomically with the
    transaction — on the first touched shard, or forced through shard 0
    when the transaction wrote nowhere — so {!token_applied} answers "did
    this batch apply?" after any crash. *)

val in_txn : t -> bool

val token_applied : t -> string -> bool
(** True if the token was durably recorded on {e any} shard. *)

val current_lsn : t -> int
(** Sum of the shards' LSNs (a monotone progress measure, not a global
    order). *)

val cost_model : t -> Cost.model

val crash_restart : t -> unit
(** Simulated whole-process crash: the coordinator recovers its decision
    log (truncating a torn decision tail), then every shard recovers —
    resolving in-doubt chunks through the fresh decision table — then the
    gtid allocator is raised past every replayed id. *)

val crash_shard : t -> int -> unit
(** Crash and recover one shard only, {e in place} (no promotion); the
    coordinator and the other shards stay up. *)

(** {2 Per-shard replication} *)

val replicated : t -> bool

val replication : t -> int -> Replication.t option
(** Shard [s]'s replication group, when [replicas_per_shard > 0]. *)

val failover_shard : t -> int -> unit
(** Kill shard [s]'s primary: promote the most caught-up follower
    (recording the failover) when the group can, otherwise recover the
    primary in place.  A quorum-acked prepared chunk survives into the
    promoted follower and is resolved through the decision log by its
    recovery.  Used by the protocol's own crash arms and by the chaos
    harness. *)

val kill_follower : t -> int -> unit
(** Permanently remove one follower of shard [s] (the earliest-attached
    survivor) — the follower-death axis of the chaos matrix.  Raises
    [Invalid_argument] when the shard is unreplicated or has no follower
    left. *)

val failovers : t -> (int * int * int) list
(** Every promotion performed, oldest first:
    [(shard, promoted replica id, primary LSN right after promotion)]. *)

val lsn_vector : t -> int list
(** Each shard primary's current LSN, in shard order — the per-session
    read-your-writes floor vector the admission layer records at write
    ack. *)

val quiesce : t -> unit
(** Drain the private replication calendar to quiescence (all in-flight
    chunk and snapshot deliveries completed).  No-op when unreplicated.
    Raises {!Database.Invariant_violation} if the calendar fails to
    quiesce within a large bounded number of events. *)

val recovery_totals : t -> int * int * int * int
(** Summed over shards, from each engine's last recovery:
    [(replayed_txns, replayed_records, in_doubt_committed,
    in_doubt_aborted)]. *)

val create_table : t -> Schema.t -> unit
val create_index : t -> table:string -> column:string -> unit
val create_ordered_index : t -> table:string -> column:string -> unit
val exec_sql : t -> string -> Database.outcome
val query : t -> string -> Result_set.t

val shard_fingerprints : t -> string list
(** Per-shard {!Database.fingerprint}s — heap-exact, comparable between two
    deployments with the same shard count (the serial-replay oracle). *)

val logical_fingerprint : t -> string
(** Order-insensitive digest of the merged logical contents: equal across
    shard counts, and equal to {!logical_fingerprint_db} of an unsharded
    engine holding the same data. *)

val logical_fingerprint_db : Database.t -> string

val audit : t -> string list
(** Cross-check every shard's WAL against the decision log; each violation
    (a completion marker for an undecided gtid, or a decided-COMMIT chunk
    left in doubt) is one message.  Sound at quiescence.  Empty = clean. *)
