type rid = int

exception Constraint_violation of string

type index = {
  column : int;  (* column offset in the schema *)
  entries : (Value.t, rid list) Hashtbl.t;
}

type ordered = { ocolumn : int; oindex : Ordered_index.t }

type t = {
  schema : Schema.t;
  heap : Value.t array option Vec.t;
  pk_col : int option;
  pk_index : (Value.t, rid) Hashtbl.t;
  mutable secondary : (string * index) list;
  mutable ordered : (string * ordered) list;
  mutable live : int;
  mutable version : int;  (* bumped on every data mutation *)
  ndv_cache : (string, int * int) Hashtbl.t;  (* column -> (version, ndv) *)
}

let create schema =
  let pk_col =
    Option.map (Schema.column_index_exn schema) (Schema.primary_key schema)
  in
  {
    schema;
    heap = Vec.create ();
    pk_col;
    pk_index = Hashtbl.create 64;
    secondary = [];
    ordered = [];
    live = 0;
    version = 0;
    ndv_cache = Hashtbl.create 8;
  }

let schema t = t.schema
let row_count t = t.live
let version t = t.version
let touch t = t.version <- t.version + 1

let index_add idx v rid =
  let rids = Option.value ~default:[] (Hashtbl.find_opt idx.entries v) in
  Hashtbl.replace idx.entries v (rid :: rids)

let index_remove idx v rid =
  match Hashtbl.find_opt idx.entries v with
  | None -> ()
  | Some rids -> (
      match List.filter (fun r -> r <> rid) rids with
      | [] -> Hashtbl.remove idx.entries v
      | rest -> Hashtbl.replace idx.entries v rest)

let create_index t column =
  if not (List.mem_assoc column t.secondary) then begin
    let col = Schema.column_index_exn t.schema column in
    let idx = { column = col; entries = Hashtbl.create 64 } in
    Vec.iteri
      (fun rid row ->
        match row with
        | Some row -> index_add idx row.(col) rid
        | None -> ())
      t.heap;
    t.secondary <- (column, idx) :: t.secondary
  end

let create_ordered_index t column =
  if not (List.mem_assoc column t.ordered) then begin
    let col = Schema.column_index_exn t.schema column in
    let o = { ocolumn = col; oindex = Ordered_index.create () } in
    Vec.iteri
      (fun rid row ->
        match row with
        | Some row -> Ordered_index.add o.oindex row.(col) rid
        | None -> ())
      t.heap;
    t.ordered <- (column, o) :: t.ordered
  end

let has_ordered_index t column = List.mem_assoc column t.ordered

let has_index t column =
  List.mem_assoc column t.secondary
  ||
  match Schema.primary_key t.schema with
  | Some pk -> String.equal pk column
  | None -> false

let validate t row =
  match Schema.validate_row t.schema row with
  | Ok () -> ()
  | Error msg -> raise (Constraint_violation msg)

let check_pk_free t row =
  match t.pk_col with
  | None -> ()
  | Some col ->
      let key = row.(col) in
      if key = Value.Null then
        raise
          (Constraint_violation
             (Printf.sprintf "table %s: NULL primary key" (Schema.name t.schema)));
      if Hashtbl.mem t.pk_index key then
        raise
          (Constraint_violation
             (Printf.sprintf "table %s: duplicate primary key %s"
                (Schema.name t.schema) (Value.to_string key)))

let link_indexes t rid row =
  Option.iter (fun col -> Hashtbl.replace t.pk_index row.(col) rid) t.pk_col;
  List.iter (fun (_, idx) -> index_add idx row.(idx.column) rid) t.secondary;
  List.iter
    (fun (_, o) -> Ordered_index.add o.oindex row.(o.ocolumn) rid)
    t.ordered

let unlink_indexes t rid row =
  Option.iter (fun col -> Hashtbl.remove t.pk_index row.(col)) t.pk_col;
  List.iter (fun (_, idx) -> index_remove idx row.(idx.column) rid) t.secondary;
  List.iter
    (fun (_, o) -> Ordered_index.remove o.oindex row.(o.ocolumn) rid)
    t.ordered

let insert t row =
  validate t row;
  check_pk_free t row;
  let rid = Vec.push t.heap (Some row) in
  link_indexes t rid row;
  t.live <- t.live + 1;
  touch t;
  rid

let get t rid = Vec.get t.heap rid

let delete t rid =
  match Vec.get t.heap rid with
  | None -> None
  | Some row ->
      Vec.set t.heap rid None;
      unlink_indexes t rid row;
      t.live <- t.live - 1;
      touch t;
      Some row

let update t rid row =
  match Vec.get t.heap rid with
  | None -> invalid_arg "Table.update: deleted rid"
  | Some old ->
      validate t row;
      (* Allow the primary key to stay the same; forbid collisions. *)
      (match t.pk_col with
      | Some col when not (Value.equal old.(col) row.(col)) ->
          check_pk_free t row
      | _ -> ());
      unlink_indexes t rid old;
      Vec.set t.heap rid (Some row);
      link_indexes t rid row;
      touch t;
      old

let heap_length t = Vec.length t.heap

let iter_slots f t = Vec.iteri f t.heap

let secondary_columns t = List.rev_map fst t.secondary
let ordered_columns t = List.rev_map fst t.ordered

(* Physical redo application (WAL replay): force slot [rid] to hold [row],
   growing the heap as needed so rid allocation after recovery matches the
   pre-crash history.  No constraint checks — the records describe already
   committed states. *)
let apply_redo t rid row =
  while Vec.length t.heap <= rid do
    ignore (Vec.push t.heap None)
  done;
  (match Vec.get t.heap rid with
  | Some old ->
      unlink_indexes t rid old;
      t.live <- t.live - 1
  | None -> ());
  Vec.set t.heap rid row;
  touch t;
  match row with
  | Some row ->
      link_indexes t rid row;
      t.live <- t.live + 1
  | None -> ()

(* Undo of an insert: if every slot from [rid] up is empty, shrink the heap
   back to [rid] so a rolled-back transaction leaves rid allocation exactly
   as if it never ran.  Inserts are undone most-recent-first, so by the time
   rid is undone everything above it is already empty. *)
let shrink_tail t rid =
  let len = Vec.length t.heap in
  let all_empty = ref (rid <= len) in
  for i = rid to len - 1 do
    if Vec.get t.heap i <> None then all_empty := false
  done;
  if !all_empty then Vec.truncate t.heap rid

let restore t rid row =
  match Vec.get t.heap rid with
  | Some _ -> invalid_arg "Table.restore: slot is occupied"
  | None ->
      Vec.set t.heap rid (Some row);
      link_indexes t rid row;
      t.live <- t.live + 1;
      touch t

let iter f t =
  Vec.iteri
    (fun rid row -> match row with Some row -> f rid row | None -> ())
    t.heap

let lookup_pk t key = Hashtbl.find_opt t.pk_index key

let lookup_indexed t column key =
  let pk_matches =
    match Schema.primary_key t.schema with
    | Some pk -> String.equal pk column
    | None -> false
  in
  if pk_matches then
    Some (match Hashtbl.find_opt t.pk_index key with
         | Some rid -> [ rid ]
         | None -> [])
  else
    match List.assoc_opt column t.secondary with
    | None -> None
    | Some idx ->
        Some
          (List.sort Int.compare
             (Option.value ~default:[] (Hashtbl.find_opt idx.entries key)))

let lookup_range t column ?lo ?hi () =
  match List.assoc_opt column t.ordered with
  | None -> None
  | Some o -> Some (Ordered_index.range o.oindex ?lo ?hi ())

(* --- statistics --------------------------------------------------------- *)

(* Distinct non-NULL values in a column.  A secondary hash index knows its
   answer in O(1); the primary key is unique by construction; otherwise we
   scan once and cache against the table version, so the planner never pays
   for the same statistic twice between mutations. *)
let ndv t column =
  match Hashtbl.find_opt t.ndv_cache column with
  | Some (v, n) when v = t.version -> n
  | _ ->
      let n =
        match List.assoc_opt column t.secondary with
        | Some idx -> Hashtbl.length idx.entries
        | None -> (
            let pk_matches =
              match Schema.primary_key t.schema with
              | Some pk -> String.equal pk column
              | None -> false
            in
            if pk_matches then t.live
            else
              match Schema.column_index t.schema column with
              | None -> 0
              | Some col ->
                  let seen = Hashtbl.create 64 in
                  iter
                    (fun _ row ->
                      match row.(col) with
                      | Value.Null -> ()
                      | v -> Hashtbl.replace seen v ())
                    t;
                  Hashtbl.length seen)
      in
      Hashtbl.replace t.ndv_cache column (t.version, n);
      n
