(** A growable array (OCaml 5.1 predates [Dynarray]).

    Table heaps use it so that scans visit rows in insertion order, keeping
    every query result deterministic. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> int
(** Append; returns the index of the new element. *)

val truncate : 'a t -> int -> unit
(** Drop elements from the tail down to the given length.  Raises
    [Invalid_argument] if the length is negative or larger than {!length}. *)

val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val to_list : 'a t -> 'a list
