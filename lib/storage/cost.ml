type model = {
  fixed_ms : float;
  scan_row_ms : float;
  return_row_ms : float;
  probe_ms : float;
}

(* Defaults are calibrated so that a typical indexed point query costs
   ~0.1 ms, in line with the paper's MySQL-on-LAN setting where round trips
   (0.5 ms) dominate individual query execution.  A probe is priced at two
   row visits so the planner only reaches for an index once it prunes
   something. *)
let default =
  {
    fixed_ms = 0.08;
    scan_row_ms = 0.0004;
    return_row_ms = 0.002;
    probe_ms = 0.0008;
  }

let query_ms m ~rows_scanned ~rows_returned =
  m.fixed_ms
  +. (m.scan_row_ms *. float_of_int rows_scanned)
  +. (m.return_row_ms *. float_of_int rows_returned)

let batch_ms _model costs =
  match costs with
  | [] -> 0.0
  | _ ->
      let coordination = 0.01 *. float_of_int (List.length costs) in
      List.fold_left Float.max 0.0 costs +. coordination

(* --- planner estimators -------------------------------------------------- *)

let est_eq_rows ~rows ~ndv =
  if rows = 0 then 0.0
  else float_of_int rows /. float_of_int (max 1 ndv)

(* Range selectivity without histograms: the classic System R fractions —
   1/3 of the table for a half-open range, 1/4 for a closed one. *)
let est_range_rows ~rows ~bounded_both =
  let rows = float_of_int rows in
  if bounded_both then rows /. 4.0 else rows /. 3.0

let seq_scan_ms m ~rows = m.scan_row_ms *. float_of_int rows
let index_ms m ~est_rows = m.probe_ms +. (m.scan_row_ms *. est_rows)

(* A fused probe-set pass (the MQO plan-merge): the first probe pays full
   price, each additional sharer half a probe (the pass re-uses the index
   descent bookkeeping), and every surfaced row is visited once.  With
   [probes = 1] this is exactly [index_ms], so a solo planner decision is
   unchanged by pricing through this term. *)
let fused_probe_ms m ~probes ~est_rows =
  (m.probe_ms *. (1.0 +. (0.5 *. Float.max 0.0 (probes -. 1.0))))
  +. (m.scan_row_ms *. est_rows)

(* Recursive-CTE fixpoint: the base leg runs once; the step leg re-runs once
   per semi-naive iteration over the shrinking delta, plus one probe-priced
   delta swap per iteration.  Without cardinality feedback we charge
   [est_iterations] full step executions — pessimistic for fast-converging
   closures, but monotone in the step cost, which is what the planner needs
   to pick the cheaper step plan. *)
let fixpoint_ms m ~base_ms ~step_ms ~est_iterations =
  base_ms +. (est_iterations *. (step_ms +. m.probe_ms))

(* Restart latency of a crashed server, as charged to the event calendar:
   one dispatch to reopen the stores plus one row visit per redo record
   replayed from the WAL suffix.  Deterministic, unlike the wall-clock
   [recovery_ms] in [Database.recovery_stats]. *)
let recovery_ms m ~replayed_records =
  m.fixed_ms +. (m.scan_row_ms *. float_of_int replayed_records)
