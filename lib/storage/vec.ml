type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }
let length t = t.len

let check t i =
  if i < 0 || i >= t.len then invalid_arg "Vec: index out of bounds"

let get t i =
  check t i;
  t.data.(i)

let set t i x =
  check t i;
  t.data.(i) <- x

let push t x =
  if t.len = Array.length t.data then begin
    let cap = max 8 (2 * t.len) in
    let data = Array.make cap x in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1;
  t.len - 1

let truncate t len =
  if len < 0 || len > t.len then invalid_arg "Vec.truncate";
  t.len <- len

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold_left f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let to_list t = List.init t.len (fun i -> t.data.(i))
