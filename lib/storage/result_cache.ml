(* Cross-flush materialized result cache (the FunSQL catalog-cache idiom):
   entries are keyed on the statement's normalized text and guarded by the
   version vector of every table the statement references.  A probe hits
   only when each referenced table still has the exact version recorded at
   fill time — any write bumps its table's version, so a stale entry can
   never be served; it is dropped on the next probe (an invalidation).
   Capacity is bounded by deterministic LRU eviction. *)

type entry = {
  e_versions : (string * int) list;  (* referenced table -> version at fill *)
  e_rs : Result_set.t;
  mutable e_tick : int;  (* LRU clock: larger = more recently used *)
}

type t = {
  capacity : int;
  tbl : (string, entry) Hashtbl.t;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Result_cache.create: capacity must be > 0";
  {
    capacity;
    tbl = Hashtbl.create (min capacity 64);
    clock = 0;
    hits = 0;
    misses = 0;
    invalidations = 0;
  }

let length t = Hashtbl.length t.tbl
let capacity t = t.capacity

(* Drop every entry but keep the counters: the cache's history survives a
   crash-restart or failover even though its contents must not. *)
let clear t = Hashtbl.reset t.tbl

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let versions_match current stored =
  List.length current = List.length stored
  && List.for_all2
       (fun (ta, va) (tb, vb) -> String.equal ta tb && va = vb)
       current stored

(* [current_versions] must cover the same referenced-table set the entry
   was stored under (both sides come from [Mqo.referenced_tables], sorted).
   A version mismatch counts as an invalidation *and* a miss: the entry is
   dead and the query must execute. *)
let find t ~key ~current_versions =
  match Hashtbl.find_opt t.tbl key with
  | None ->
      t.misses <- t.misses + 1;
      None
  | Some e when versions_match current_versions e.e_versions ->
      t.hits <- t.hits + 1;
      e.e_tick <- tick t;
      Some e.e_rs
  | Some _ ->
      Hashtbl.remove t.tbl key;
      t.invalidations <- t.invalidations + 1;
      t.misses <- t.misses + 1;
      None

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun key e acc ->
        match acc with
        | Some (_, best) when best.e_tick <= e.e_tick -> acc
        | _ -> Some (key, e))
      t.tbl None
  in
  Option.iter (fun (key, _) -> Hashtbl.remove t.tbl key) victim

let store t ~key ~versions rs =
  (match Hashtbl.find_opt t.tbl key with
  | Some _ -> Hashtbl.remove t.tbl key
  | None -> if Hashtbl.length t.tbl >= t.capacity then evict_lru t);
  Hashtbl.replace t.tbl key { e_versions = versions; e_rs = rs; e_tick = tick t }

type stats = { hits : int; misses : int; invalidations : int }

let stats (c : t) : stats =
  { hits = c.hits; misses = c.misses; invalidations = c.invalidations }
