type outcome = {
  rs : Result_set.t;
  rows_affected : int;
  cost_ms : float;
}

exception Sql_error of string

exception Invariant_violation of string
(* An internal protocol invariant broke (not a user error): raised with
   enough context — gtid / epoch / shard — to diagnose a chaos-matrix
   failure instead of aborting on a bare [assert false]. *)

let invariant_violation fmt =
  Format.kasprintf (fun s -> raise (Invariant_violation s)) fmt

type recovery_stats = {
  from_checkpoint : bool;
  replayed_txns : int;
  replayed_records : int;
  discarded_bytes : int;
  wal_bytes : int;
  in_doubt_committed : int;
  in_doubt_aborted : int;
  recovery_ms : float;
}

(* Durability state: a redo log appended at commit, a checkpoint store
   overwritten every [checkpoint_every] commits, and the durable registry
   of applied idempotency tokens. *)
type dur = {
  wal : Wal.store;
  ck : Wal.store;
  checkpoint_every : int;  (* commits between checkpoints; 0 = never *)
  mutable commits_since_ck : int;
  mutable next_txn : int;
  mutable lsn : int;  (* committed WAL chunks ever appended (log sequence #) *)
  tokens : (string, unit) Hashtbl.t;
  prepared : (int, string option) Hashtbl.t;
      (* gtid -> idempotency token of transactions forced by dtxn_prepare
         and still awaiting their phase-2 decision *)
  mutable ship_prepares : bool;
      (* replicated-shard mode: prepare chunks and phase-2 completion
         markers each take an LSN and fire the replication tap, so a
         follower's log stays a prefix-equal copy of the primary's and a
         promoted follower can resolve in-doubt chunks itself *)
  pending_repl : (int, Wal.record list) Hashtbl.t;
      (* follower side of ship_prepares: gtid -> stashed records of a
         shipped [Begin .. Prepare] chunk, applied to the heap only when
         the phase-2 completion marker arrives *)
  mutable seen_txns : int;
      (* replay watermarks: how much of the current log the previous
         recovery already replayed, so [last_recovery] reports per-call
         deltas instead of cumulative totals (reset when a checkpoint
         truncates the log) *)
  mutable seen_records : int;
  mutable last_recovery : recovery_stats option;
}

type t = {
  tables : (string, Table.t) Hashtbl.t;
  mutable order : string list;  (* creation order, for deterministic listing *)
  mutable txn : Txn.t option;
  cost : Cost.model;
  mutable dur : dur option;
  mutable planner : bool;  (* cost-based planning (off = legacy heuristics) *)
  mutable mqo : bool;  (* flush-level plan merging (probe sets, joins) *)
  mutable cache : Result_cache.t option;
      (* cross-flush result cache, keyed Normalize.key × table versions *)
  share : Executor.share_stats;  (* cumulative batch-sharing counters *)
  mutable on_commit : (lsn:int -> Wal.record list -> unit) option;
      (* replication tap: fired once per appended WAL chunk *)
  mutable in_doubt : (int -> bool) option;
      (* 2PC in-doubt resolver: given the gtid of a prepared-but-undecided
         chunk found at recovery, [true] means the coordinator's decision
         log recorded COMMIT; anything else is an abort (presumed abort) *)
}

let error fmt = Format.kasprintf (fun s -> raise (Sql_error s)) fmt

let create ?(cost = Cost.default) () =
  {
    tables = Hashtbl.create 32;
    order = [];
    txn = None;
    cost;
    dur = None;
    planner = true;
    mqo = false;
    cache = None;
    share = Executor.fresh_share_stats ();
    on_commit = None;
    in_doubt = None;
  }

let cost_model t = t.cost
let set_planner t on = t.planner <- on
let planner_enabled t = t.planner
let mode t = if t.planner then Executor.Planned else Executor.Direct
let set_mqo t on = t.mqo <- on
let mqo_enabled t = t.mqo

let set_result_cache t capacity =
  t.cache <-
    (match capacity with
    | None -> None
    | Some c -> Some (Result_cache.create ~capacity:c))

let result_cache_capacity t =
  Option.map (fun c -> Result_cache.capacity c) t.cache

(* The cache must never survive a state transition its version vectors
   know nothing about: recovery and snapshot installation rebuild tables
   from scratch (fresh version counters), so stale entries could alias a
   dead reign's rows onto new versions. *)
let invalidate_result_cache t = Option.iter Result_cache.clear t.cache

type read_stats = {
  cache_hits : int;
  cache_misses : int;
  cache_invalidations : int;
  cache_entries : int;
  dedup_folded : int;
  seq_scans_shared : int;
  probe_sets_merged : int;
  joins_shared : int;
}

let read_stats t =
  let cs =
    match t.cache with
    | None -> Result_cache.{ hits = 0; misses = 0; invalidations = 0 }
    | Some c -> Result_cache.stats c
  in
  {
    cache_hits = cs.Result_cache.hits;
    cache_misses = cs.Result_cache.misses;
    cache_invalidations = cs.Result_cache.invalidations;
    cache_entries =
      (match t.cache with None -> 0 | Some c -> Result_cache.length c);
    dedup_folded = t.share.Executor.dedup_folded;
    seq_scans_shared = t.share.Executor.seq_scans_shared;
    probe_sets_merged = t.share.Executor.probe_sets_merged;
    joins_shared = t.share.Executor.joins_shared;
  }

(* --- write-ahead logging ------------------------------------------------- *)

(* Fire the replication tap for one appended chunk.  Called after the LSN
   bump so the tap observes the chunk's own sequence number. *)
let fire_tap t d chunk =
  match t.on_commit with None -> () | Some f -> f ~lsn:d.lsn chunk

let wal_ddl t record =
  match t.dur with
  | None -> ()
  | Some d ->
      Wal.append_records d.wal [ record ];
      d.lsn <- d.lsn + 1;
      fire_tap t d [ record ]

(* Build the checkpoint payload: every table (schema, index columns, the
   whole heap including empty slots so rid allocation survives), the token
   registry and the transaction-id high-water mark, all in one
   checksummed frame — a torn checkpoint write is detected and the
   previous durable state wins. *)
let checkpoint_payload t d =
  let b = Buffer.create 4096 in
  Wal.Codec.put_int b (List.length t.order);
  List.iter
    (fun name ->
      let tbl = Hashtbl.find t.tables name in
      Wal.Codec.put_schema b (Table.schema tbl);
      let put_cols cols =
        Wal.Codec.put_int b (List.length cols);
        List.iter (Wal.Codec.put_string b) cols
      in
      put_cols (Table.secondary_columns tbl);
      put_cols (Table.ordered_columns tbl);
      Wal.Codec.put_int b (Table.heap_length tbl);
      Table.iter_slots (fun _ row -> Wal.Codec.put_row_opt b row) tbl)
    t.order;
  Wal.Codec.put_int b (Hashtbl.length d.tokens);
  let toks = Hashtbl.fold (fun k () acc -> k :: acc) d.tokens [] in
  List.iter (Wal.Codec.put_string b) (List.sort String.compare toks);
  Wal.Codec.put_int b d.next_txn;
  Wal.Codec.put_int b d.lsn;
  Buffer.contents b

let write_checkpoint t d =
  Wal.write_all d.ck (Wal.Codec.frame (checkpoint_payload t d));
  Wal.write_all d.wal "";
  d.commits_since_ck <- 0;
  (* The log was just truncated, so the next recovery replays from zero:
     the per-call delta watermarks restart with it. *)
  d.seen_txns <- 0;
  d.seen_records <- 0

(* Checkpointing is gated on having no prepared-but-undecided transaction:
   a checkpoint snapshots only committed state and then truncates the log,
   which would silently discard a forced [Begin .. Prepare] chunk — turning
   a coordinator COMMIT decision into a lost write on this shard. *)
let maybe_checkpoint t d =
  if
    d.checkpoint_every > 0
    && d.commits_since_ck >= d.checkpoint_every
    && Hashtbl.length d.prepared = 0
  then write_checkpoint t d

(* Map a transaction's undo-log entries to redo records.  Every touched
   slot's *current* (= final, we are at commit/prepare) content is its redo
   image, which makes replay idempotent and collapses insert/update/delete
   into one record shape. *)
let sets_of_entries entries =
  List.map
    (fun e ->
      let tbl, rid =
        match e with
        | Txn.Inserted (tbl, rid) -> (tbl, rid)
        | Txn.Deleted (tbl, rid, _) -> (tbl, rid)
        | Txn.Updated (tbl, rid, _) -> (tbl, rid)
      in
      Wal.Set
        { table = Schema.name (Table.schema tbl); rid; row = Table.get tbl rid })
    entries

(* Append one committed transaction's redo records (the entries are the
   undo log in chronological order). *)
let wal_commit ?token t entries =
  match t.dur with
  | None -> ()
  | Some d ->
      let sets = sets_of_entries entries in
      if sets = [] && token = None then ()
      else begin
        let id = d.next_txn in
        d.next_txn <- id + 1;
        let toks =
          match token with
          | None -> []
          | Some k ->
              Hashtbl.replace d.tokens k ();
              [ Wal.Token k ]
        in
        let chunk = (Wal.Begin id :: sets) @ toks @ [ Wal.Commit id ] in
        Wal.append_records d.wal chunk;
        d.lsn <- d.lsn + 1;
        fire_tap t d chunk;
        d.commits_since_ck <- d.commits_since_ck + 1;
        maybe_checkpoint t d
      end

(* --- recovery ------------------------------------------------------------ *)

let install_table t name tbl =
  Hashtbl.replace t.tables name tbl;
  t.order <- t.order @ [ name ]

(* Load a checkpoint payload (the bytes inside the checksummed frame) into
   a wiped database.  Shared by recovery and by snapshot installation on a
   replica. *)
let load_checkpoint_payload t d payload =
  try
    let r = Wal.Codec.reader payload in
    let n_tables = Wal.Codec.get_int r in
    for _ = 1 to n_tables do
      let schema = Wal.Codec.get_schema r in
      let get_cols () =
        let n = Wal.Codec.get_int r in
        List.init n (fun _ -> Wal.Codec.get_string r)
      in
      let sec = get_cols () in
      let ord = get_cols () in
      let heap_len = Wal.Codec.get_int r in
      let tbl = Table.create schema in
      List.iter (Table.create_index tbl) sec;
      List.iter (Table.create_ordered_index tbl) ord;
      for rid = 0 to heap_len - 1 do
        match Wal.Codec.get_row_opt r with
        | Some row -> Table.apply_redo tbl rid (Some row)
        | None -> Table.apply_redo tbl rid None
      done;
      install_table t (Schema.name schema) tbl
    done;
    let n_tokens = Wal.Codec.get_int r in
    for _ = 1 to n_tokens do
      Hashtbl.replace d.tokens (Wal.Codec.get_string r) ()
    done;
    d.next_txn <- Wal.Codec.get_int r;
    d.lsn <- Wal.Codec.get_int r;
    true
  with Wal.Codec.Corrupt ->
    (* A corrupt checkpoint is treated as absent: wipe the partial
       load and replay the log from genesis. *)
    Hashtbl.reset t.tables;
    t.order <- [];
    Hashtbl.reset d.tokens;
    d.next_txn <- 0;
    d.lsn <- 0;
    false

let load_checkpoint t d =
  match Wal.Codec.unframe (Wal.contents d.ck) 0 with
  | None -> false
  | Some (payload, _) -> load_checkpoint_payload t d payload

let apply_record t d = function
  | Wal.Set { table; rid; row } -> (
      match Hashtbl.find_opt t.tables table with
      | Some tbl -> Table.apply_redo tbl rid row
      | None -> ())
  | Wal.Create_table schema ->
      let name = Schema.name schema in
      if not (Hashtbl.mem t.tables name) then
        install_table t name (Table.create schema)
  | Wal.Create_index { table; column; ordered } -> (
      match Hashtbl.find_opt t.tables table with
      | Some tbl -> (
          try
            if ordered then Table.create_ordered_index tbl column
            else Table.create_index tbl column
          with Not_found -> ())
      | None -> ())
  | Wal.Token k -> Hashtbl.replace d.tokens k ()
  | Wal.Begin _ | Wal.Commit _ | Wal.Prepare _ | Wal.Decision _ -> ()

let recover t d =
  let t0 = Sys.time () in
  invalidate_result_cache t;
  Hashtbl.reset t.tables;
  t.order <- [];
  t.txn <- None;
  Hashtbl.reset d.tokens;
  Hashtbl.reset d.prepared;
  Hashtbl.reset d.pending_repl;
  d.lsn <- 0;
  let from_checkpoint = load_checkpoint t d in
  let log = Wal.contents d.wal in
  let records, valid = Wal.scan log in
  let discarded_bytes = String.length log - valid in
  (* Truncate the torn tail so future appends extend a clean log. *)
  if discarded_bytes > 0 then Wal.write_all d.wal (String.sub log 0 valid);
  let replayed_txns = ref 0 and replayed_records = ref 0 in
  let pending = ref None in
  (* Chunks closed by [Prepare] instead of [Commit]: forced but undecided
     at the time they were logged.  Each waits for a later standalone
     [Commit] completion marker in this same log, and whatever is still
     unmatched when the scan ends goes to the in-doubt resolver.  Kept in
     log order so resolution replays commits in the original sequence. *)
  let in_doubt = ref [] in
  let apply_chunk id recs =
    List.iter (apply_record t d) recs;
    replayed_records := !replayed_records + List.length recs;
    incr replayed_txns;
    if id >= d.next_txn then d.next_txn <- id + 1;
    d.lsn <- d.lsn + 1
  in
  List.iter
    (fun r ->
      match (r, !pending) with
      | Wal.Begin id, _ -> pending := Some (id, [])
      | Wal.Commit id, Some (id', acc) when id = id' ->
          apply_chunk id (List.rev acc);
          pending := None
      | Wal.Prepare id, Some (id', acc) when id = id' ->
          in_doubt := !in_doubt @ [ (id, List.rev acc) ];
          if id >= d.next_txn then d.next_txn <- id + 1;
          (* In replicated-shard mode the live prepare force took an LSN
             of its own (so it could ship); the replay must account it the
             same way or a promoted follower's LSN would drift from the
             primary's. *)
          if d.ship_prepares then d.lsn <- d.lsn + 1;
          pending := None
      | Wal.Commit id, None when List.mem_assoc id !in_doubt ->
          (* phase-2 completion marker: the coordinator decided COMMIT and
             this shard acked before the crash — apply the stashed chunk *)
          apply_chunk id (List.assoc id !in_doubt);
          in_doubt := List.remove_assoc id !in_doubt
      | (Wal.Commit _ | Wal.Prepare _), _ -> pending := None
      | r, Some (id, acc) -> pending := Some (id, r :: acc)
      | r, None ->
          (* standalone DDL record *)
          apply_record t d r;
          incr replayed_records;
          d.lsn <- d.lsn + 1)
    records;
  (* An uncommitted tail transaction in !pending is dropped: its commit
     record never made it to the log, so it never happened.  Prepared
     chunks with no completion marker are resolved through the coordinator:
     a recorded COMMIT decision means the chunk must apply (and we append
     the completion marker so the next recovery needs no resolver); no
     decision means abort — presumed abort — and the dead chunk is simply
     never applied. *)
  let in_doubt_committed = ref 0 and in_doubt_aborted = ref 0 in
  List.iter
    (fun (id, recs) ->
      let commit =
        match t.in_doubt with Some resolve -> resolve id | None -> false
      in
      if commit then begin
        apply_chunk id recs;
        Wal.append_records d.wal [ Wal.Commit id ];
        incr in_doubt_committed
      end
      else incr in_doubt_aborted)
    !in_doubt;
  d.commits_since_ck <- 0;
  (* Report per-call deltas against the previous recovery of this same log:
     a second crash before any new commit replays nothing *new*, even
     though the scan re-reads the whole log. *)
  let raw_txns = !replayed_txns and raw_records = !replayed_records in
  let delta_txns = max 0 (raw_txns - d.seen_txns)
  and delta_records = max 0 (raw_records - d.seen_records) in
  d.seen_txns <- raw_txns;
  d.seen_records <- raw_records;
  d.last_recovery <-
    Some
      {
        from_checkpoint;
        replayed_txns = delta_txns;
        replayed_records = delta_records;
        discarded_bytes;
        wal_bytes = valid;
        in_doubt_committed = !in_doubt_committed;
        in_doubt_aborted = !in_doubt_aborted;
        recovery_ms = (Sys.time () -. t0) *. 1000.0;
      }

let enable_durability ?(checkpoint_every = 8) ~wal ~checkpoint t =
  let d =
    {
      wal;
      ck = checkpoint;
      checkpoint_every;
      commits_since_ck = 0;
      next_txn = 0;
      lsn = 0;
      tokens = Hashtbl.create 32;
      prepared = Hashtbl.create 8;
      ship_prepares = false;
      pending_repl = Hashtbl.create 8;
      seen_txns = 0;
      seen_records = 0;
      last_recovery = None;
    }
  in
  t.dur <- Some d;
  if not (Wal.is_empty wal && Wal.is_empty checkpoint) then recover t d

let durable t = t.dur <> None

let crash_restart t =
  t.txn <- None;
  match t.dur with
  | None ->
      (* No durability: the crash wipes the server's whole state. *)
      invalidate_result_cache t;
      Hashtbl.reset t.tables;
      t.order <- []
  | Some d -> recover t d

let last_recovery t = Option.bind t.dur (fun d -> d.last_recovery)
let token_applied t k =
  match t.dur with None -> false | Some d -> Hashtbl.mem d.tokens k

let wal_size t =
  match t.dur with None -> 0 | Some d -> String.length (Wal.contents d.wal)

let wal_records t =
  match t.dur with None -> [] | Some d -> fst (Wal.scan (Wal.contents d.wal))

let checkpoint_now t =
  match t.dur with
  | None -> ()
  | Some d -> if Hashtbl.length d.prepared = 0 then write_checkpoint t d

(* --- replication entry points -------------------------------------------- *)

let current_lsn t = match t.dur with None -> 0 | Some d -> d.lsn
let set_commit_tap t tap = t.on_commit <- tap

let set_ship_prepares t on =
  match t.dur with
  | None -> invalid_arg "Database.set_ship_prepares: durability is off"
  | Some d -> d.ship_prepares <- on

let ship_prepares t =
  match t.dur with None -> false | Some d -> d.ship_prepares

(* Presumed abort ships nothing, so a follower that stashed an aborted
   prepare chunk must be told out of band to drop it (the dead chunk stays
   in its log and is presumed-aborted at any later promotion). *)
let repl_forget t ~gtid =
  match t.dur with
  | None -> ()
  | Some d ->
      Hashtbl.remove d.prepared gtid;
      Hashtbl.remove d.pending_repl gtid

(* A snapshot frames only committed state, but [Txn] applies heap effects
   eagerly (undo-logged): snapshotting mid-transaction or mid-prepare would
   bake uncommitted effects into the receiver.  The shipper defers. *)
let snapshot_safe t =
  t.txn = None
  && match t.dur with None -> true | Some d -> Hashtbl.length d.prepared = 0

let snapshot t =
  match t.dur with
  | None -> invalid_arg "Database.snapshot: durability is off"
  | Some d -> Wal.Codec.frame (checkpoint_payload t d)

let install_snapshot t framed =
  match t.dur with
  | None -> invalid_arg "Database.install_snapshot: durability is off"
  | Some d -> (
      match Wal.Codec.unframe framed 0 with
      | None -> false
      | Some (payload, _) ->
          invalidate_result_cache t;
          Hashtbl.reset t.tables;
          t.order <- [];
          t.txn <- None;
          Hashtbl.reset d.tokens;
          Hashtbl.reset d.prepared;
          Hashtbl.reset d.pending_repl;
          if load_checkpoint_payload t d payload then begin
            (* The snapshot becomes this replica's own checkpoint, so a
               crash-restart of a promoted replica recovers from it plus
               whatever chunks were streamed afterwards. *)
            Wal.write_all d.ck framed;
            Wal.write_all d.wal "";
            d.commits_since_ck <- 0;
            d.seen_txns <- 0;
            d.seen_records <- 0;
            true
          end
          else false)

(* Apply one shipped WAL chunk on a follower: append it to the follower's
   own log (so promotion can replay the tail through the normal recovery
   path), redo its records, and advance the follower's LSN to the chunk's
   sequence number.  The shipper guarantees in-order, gap-free delivery. *)
let apply_replicated t ~lsn records =
  match t.dur with
  | None -> invalid_arg "Database.apply_replicated: durability is off"
  | Some d -> (
      match List.rev records with
      | Wal.Prepare gtid :: _ ->
          (* Forced-but-undecided chunk from a replicated shard primary:
             append it (so a promotion replays it as in-doubt through the
             normal recovery path) but keep the heap untouched until the
             phase-2 decision.  Registering the gtid in [prepared] blocks
             checkpoints exactly as it does on the primary. *)
          Wal.append_records d.wal records;
          if gtid >= d.next_txn then d.next_txn <- gtid + 1;
          Hashtbl.replace d.pending_repl gtid records;
          Hashtbl.replace d.prepared gtid None;
          d.lsn <- lsn
      | [ Wal.Commit gtid ] when Hashtbl.mem d.pending_repl gtid ->
          (* Phase-2 completion marker for a stashed chunk: the decision
             was COMMIT, so apply the redo images (and token) now. *)
          let recs = Hashtbl.find d.pending_repl gtid in
          Wal.append_records d.wal records;
          List.iter (apply_record t d) recs;
          Hashtbl.remove d.pending_repl gtid;
          Hashtbl.remove d.prepared gtid;
          d.lsn <- lsn;
          d.commits_since_ck <- d.commits_since_ck + 1;
          maybe_checkpoint t d
      | _ ->
          Wal.append_records d.wal records;
          List.iter
            (fun r ->
              (match r with
              | Wal.Commit id | Wal.Begin id ->
                  if id >= d.next_txn then d.next_txn <- id + 1
              | _ -> ());
              apply_record t d r)
            records;
          d.lsn <- lsn;
          d.commits_since_ck <- d.commits_since_ck + 1;
          maybe_checkpoint t d)

(* --- fingerprinting ------------------------------------------------------ *)

let fingerprint t =
  let b = Buffer.create 1024 in
  List.iter
    (fun name ->
      match Hashtbl.find_opt t.tables name with
      | None -> ()
      | Some tbl ->
          Buffer.add_string b name;
          Buffer.add_char b '#';
          Buffer.add_string b (string_of_int (Table.heap_length tbl));
          Buffer.add_char b '\n';
          Table.iter_slots
            (fun rid row ->
              match row with
              | None -> ()
              | Some row ->
                  Buffer.add_string b (string_of_int rid);
                  Array.iter
                    (fun v ->
                      Buffer.add_char b '|';
                      Buffer.add_string b (Value.to_string v))
                    row;
                  Buffer.add_char b '\n')
            tbl)
    t.order;
  Digest.to_hex (Digest.string (Buffer.contents b))

(* --- catalog ------------------------------------------------------------- *)

let create_table t schema =
  let name = Schema.name schema in
  if Hashtbl.mem t.tables name then error "table %s already exists" name;
  Hashtbl.replace t.tables name (Table.create schema);
  t.order <- t.order @ [ name ];
  wal_ddl t (Wal.Create_table schema)

let create_index t ~table ~column =
  match Hashtbl.find_opt t.tables table with
  | None -> error "no such table: %s" table
  | Some tbl -> (
      (try Table.create_index tbl column
       with Not_found -> error "no such column: %s.%s" table column);
      wal_ddl t (Wal.Create_index { table; column; ordered = false }))

let create_ordered_index t ~table ~column =
  match Hashtbl.find_opt t.tables table with
  | None -> error "no such table: %s" table
  | Some tbl -> (
      (try Table.create_ordered_index tbl column
       with Not_found -> error "no such column: %s.%s" table column);
      wal_ddl t (Wal.Create_index { table; column; ordered = true }))

let table t name = Hashtbl.find_opt t.tables name
let table_names t = t.order

let row_count t name =
  match Hashtbl.find_opt t.tables name with
  | Some tbl -> Table.row_count tbl
  | None -> 0

let in_txn t = t.txn <> None

let atomically ?token t f =
  match t.txn with
  | Some _ -> f () (* the client's transaction already provides atomicity *)
  | None ->
      let txn = Txn.create () in
      t.txn <- Some txn;
      let finish () = t.txn <- None in
      (match f () with
      | v ->
          let entries = Txn.entries txn in
          Txn.commit txn;
          finish ();
          wal_commit ?token t entries;
          v
      | exception e ->
          Txn.rollback txn;
          finish ();
          raise e)

(* --- two-phase commit: the participant side ------------------------------ *)

let set_in_doubt_resolver t resolve = t.in_doubt <- resolve

let dtxn_begin t =
  if t.dur = None then invalid_arg "Database.dtxn_begin: durability is off";
  if t.txn <> None then error "dtxn_begin: a transaction is already open";
  t.txn <- Some (Txn.create ())

let dtxn_prepare ?token t ~gtid =
  match (t.dur, t.txn) with
  | None, _ -> invalid_arg "Database.dtxn_prepare: durability is off"
  | _, None -> invalid_arg "Database.dtxn_prepare: no open transaction"
  | Some d, Some txn ->
      let sets = sets_of_entries (Txn.entries txn) in
      if sets = [] && token = None then begin
        (* Nothing to force: vote read-only and drop out of the protocol —
           the coordinator neither logs this shard nor sends it phase 2. *)
        Txn.commit txn;
        t.txn <- None;
        false
      end
      else begin
        (* Force the redo images and the PREPARE marker to the log, but
           keep the transaction's heap effects pending: a crash after this
           point leaves the chunk in doubt, resolved by the coordinator's
           decision log at recovery. *)
        if gtid >= d.next_txn then d.next_txn <- gtid + 1;
        let toks = match token with None -> [] | Some k -> [ Wal.Token k ] in
        let chunk = (Wal.Begin gtid :: sets) @ toks @ [ Wal.Prepare gtid ] in
        Wal.append_records d.wal chunk;
        Hashtbl.replace d.prepared gtid token;
        (* Replicated shard: the forced chunk takes an LSN and ships to
           the followers, so a prepared-but-undecided transaction survives
           a primary failover (the promoted follower replays it as
           in-doubt and resolves through the decision log). *)
        if d.ship_prepares then begin
          d.lsn <- d.lsn + 1;
          fire_tap t d chunk
        end;
        true
      end

let dtxn_commit t ~gtid =
  match (t.dur, t.txn) with
  | None, _ -> invalid_arg "Database.dtxn_commit: durability is off"
  | _, None -> invalid_arg "Database.dtxn_commit: no prepared transaction"
  | Some d, Some txn ->
      (match Hashtbl.find_opt d.prepared gtid with
      | None -> invalid_arg "Database.dtxn_commit: transaction is not prepared"
      | Some token ->
          (* The completion marker makes the decision self-describing on
             this shard: the next recovery applies the chunk without
             consulting the resolver. *)
          Wal.append_records d.wal [ Wal.Commit gtid ];
          Txn.commit txn;
          t.txn <- None;
          (match token with
          | Some k -> Hashtbl.replace d.tokens k ()
          | None -> ());
          Hashtbl.remove d.prepared gtid;
          d.lsn <- d.lsn + 1;
          if d.ship_prepares then fire_tap t d [ Wal.Commit gtid ];
          d.commits_since_ck <- d.commits_since_ck + 1;
          maybe_checkpoint t d)

let dtxn_abort t ~gtid =
  (* Presumed abort: no WAL record — the absence of a coordinator decision
     is the abort record, and the dead [Begin .. Prepare] chunk (if phase 1
     got that far) is simply never applied by recovery. *)
  (match t.txn with Some txn -> Txn.rollback txn | None -> ());
  t.txn <- None;
  match t.dur with None -> () | Some d -> Hashtbl.remove d.prepared gtid

let dtxn_commit_1pc ?token t ~gtid =
  match (t.dur, t.txn) with
  | None, _ -> invalid_arg "Database.dtxn_commit_1pc: durability is off"
  | _, None -> invalid_arg "Database.dtxn_commit_1pc: no open transaction"
  | Some d, Some txn ->
      let sets = sets_of_entries (Txn.entries txn) in
      Txn.commit txn;
      t.txn <- None;
      if sets = [] && token = None then ()
      else begin
        (* Single-participant fast path: a plain committed chunk under the
           coordinator-allocated id, skipping PREPARE and the decision
           record entirely. *)
        if gtid >= d.next_txn then d.next_txn <- gtid + 1;
        let toks =
          match token with
          | None -> []
          | Some k ->
              Hashtbl.replace d.tokens k ();
              [ Wal.Token k ]
        in
        let chunk = (Wal.Begin gtid :: sets) @ toks @ [ Wal.Commit gtid ] in
        Wal.append_records d.wal chunk;
        d.lsn <- d.lsn + 1;
        fire_tap t d chunk;
        d.commits_since_ck <- d.commits_since_ck + 1;
        maybe_checkpoint t d
      end

let prepared_txns t =
  match t.dur with
  | None -> []
  | Some d ->
      List.sort compare (Hashtbl.fold (fun g _ acc -> g :: acc) d.prepared [])

let next_txn_id t = match t.dur with None -> 0 | Some d -> d.next_txn

let catalog t : Executor.catalog =
  {
    find_table = (fun name -> Hashtbl.find_opt t.tables name);
    add_table = (fun schema -> create_table t schema);
  }

let is_dml = function
  | Sloth_sql.Ast.Insert _ | Sloth_sql.Ast.Update _ | Sloth_sql.Ast.Delete _ ->
      true
  | _ -> false

let exec t stmt =
  match stmt with
  | Sloth_sql.Ast.Begin_txn ->
      if t.txn <> None then error "nested transactions are not supported";
      t.txn <- Some (Txn.create ());
      { rs = Result_set.empty; rows_affected = 0; cost_ms = t.cost.fixed_ms }
  | Sloth_sql.Ast.Commit ->
      (match t.txn with
      | Some txn ->
          let entries = Txn.entries txn in
          Txn.commit txn;
          t.txn <- None;
          wal_commit t entries
      | None -> () (* COMMIT outside a transaction is a no-op *));
      t.txn <- None;
      { rs = Result_set.empty; rows_affected = 0; cost_ms = t.cost.fixed_ms }
  | Sloth_sql.Ast.Rollback ->
      (match t.txn with
      | Some txn -> Txn.rollback txn
      | None -> ());
      t.txn <- None;
      { rs = Result_set.empty; rows_affected = 0; cost_ms = t.cost.fixed_ms }
  | _ when t.txn = None && t.dur <> None && is_dml stmt -> (
      (* Autocommitted write under durability: run it in an ephemeral
         transaction so its redo records reach the log as one committed
         unit (and a failing statement is rolled back whole rather than
         left half-applied). *)
      let txn = Txn.create () in
      match
        Executor.execute (catalog t) ~log:(fun e -> Txn.log txn e)
          ~mode:(mode t) ~model:t.cost stmt
      with
      | { rs; rows_scanned; rows_affected } ->
          let entries = Txn.entries txn in
          Txn.commit txn;
          wal_commit t entries;
          let cost_ms =
            Cost.query_ms t.cost ~rows_scanned
              ~rows_returned:(Result_set.num_rows rs)
          in
          { rs; rows_affected; cost_ms }
      | exception Executor.Sql_error msg ->
          Txn.rollback txn;
          error "%s" msg)
  | _ -> (
      let log = Option.map (fun txn e -> Txn.log txn e) t.txn in
      match Executor.execute (catalog t) ?log ~mode:(mode t) ~model:t.cost stmt with
      | { rs; rows_scanned; rows_affected } ->
          let cost_ms =
            Cost.query_ms t.cost ~rows_scanned
              ~rows_returned:(Result_set.num_rows rs)
          in
          { rs; rows_affected; cost_ms }
      | exception Executor.Sql_error msg -> error "%s" msg)

(* Core of every batched read path: probe the result cache, execute the
   misses as one (possibly MQO-merged) group, fill the cache from the
   misses, and stitch outcomes back in input order.  The cache is bypassed
   inside an open transaction — uncommitted heap state must never be
   published to later flushes — and a hit reports [rows_scanned = 0],
   mirroring the sharing accounting (somebody already paid for these
   rows). *)
let exec_reads_core t selects : Executor.outcome list =
  let cache = if t.txn = None then t.cache else None in
  let probed =
    List.map
      (fun s ->
        match cache with
        | None -> (s, None, None)
        | Some c ->
            let key = Sloth_sql.Normalize.key (Sloth_sql.Ast.Select s) in
            let versions =
              List.map
                (fun name ->
                  match Hashtbl.find_opt t.tables name with
                  | Some tbl -> (name, Table.version tbl)
                  | None -> (name, -1))
                (Mqo.referenced_tables s)
            in
            (s, Some (key, versions), Result_cache.find c ~key ~current_versions:versions))
      selects
  in
  let misses =
    List.filter_map
      (fun (s, _, hit) -> if hit = None then Some s else None)
      probed
  in
  let outs =
    Executor.execute_reads (catalog t) ~mode:(mode t) ~model:t.cost ~mqo:t.mqo
      ~stats:t.share misses
  in
  let rec stitch probed outs =
    match (probed, outs) with
    | [], [] -> []
    | (_, _, Some rs) :: rest, outs ->
        { Executor.rs; rows_scanned = 0; rows_affected = 0 }
        :: stitch rest outs
    | (_, info, None) :: rest, (o : Executor.outcome) :: outs ->
        (match (info, cache) with
        | Some (key, versions), Some c ->
            Result_cache.store c ~key ~versions o.Executor.rs
        | _ -> ());
        o :: stitch rest outs
    | _ -> assert false
  in
  stitch probed outs

(* Execute a whole batch.  With the planner on, maximal runs of consecutive
   SELECTs go through {!Executor.execute_reads} together so identical
   statements execute once and compatible sequential scans share one heap
   pass; writes and transaction control run through {!exec} as barriers
   between the read runs.  Outcomes come back in statement order. *)
let exec_batch t stmts =
  if not t.planner then List.map (exec t) stmts
  else begin
    let outcome_of_read (o : Executor.outcome) =
      {
        rs = o.rs;
        rows_affected = o.rows_affected;
        cost_ms =
          Cost.query_ms t.cost ~rows_scanned:o.rows_scanned
            ~rows_returned:(Result_set.num_rows o.rs);
      }
    in
    let flush_reads pending acc =
      match pending with
      | [] -> acc
      | _ -> (
          let selects = List.rev pending in
          match exec_reads_core t selects with
          | outs -> List.rev_append (List.map outcome_of_read outs) acc
          | exception Executor.Sql_error msg -> error "%s" msg)
    in
    let rec go pending acc = function
      | [] -> List.rev (flush_reads pending acc)
      | Sloth_sql.Ast.Select s :: rest -> go (s :: pending) acc rest
      | stmt :: rest ->
          let acc = flush_reads pending acc in
          go [] (exec t stmt :: acc) rest
    in
    go [] [] stmts
  end

(* Execute a group of SELECTs through the multi-query read path and report
   how many rows each one actually scanned — the admission layer's entry
   point: a cross-session flush concatenates every waiting session's reads,
   calls this once, and splits the outcomes back per batch.  The planner
   toggle is respected; [Direct] mode plans each statement independently,
   which is the differential oracle for cross-client sharing. *)
let exec_reads t selects =
  match exec_reads_core t selects with
  | outs ->
      List.map
        (fun (o : Executor.outcome) ->
          ( {
              rs = o.rs;
              rows_affected = o.rows_affected;
              cost_ms =
                Cost.query_ms t.cost ~rows_scanned:o.rows_scanned
                  ~rows_returned:(Result_set.num_rows o.rs);
            },
            o.rows_scanned ))
        outs
  | exception Executor.Sql_error msg -> error "%s" msg

let exec_sql t sql =
  match Sloth_sql.Parser.parse sql with
  | stmt -> exec t stmt
  | exception Sloth_sql.Parser.Error msg -> error "parse error: %s" msg

let query t sql = (exec_sql t sql).rs
