type outcome = {
  rs : Result_set.t;
  rows_affected : int;
  cost_ms : float;
}

exception Sql_error of string

type t = {
  tables : (string, Table.t) Hashtbl.t;
  mutable order : string list;  (* creation order, for deterministic listing *)
  mutable txn : Txn.t option;
  cost : Cost.model;
}

let error fmt = Format.kasprintf (fun s -> raise (Sql_error s)) fmt

let create ?(cost = Cost.default) () =
  { tables = Hashtbl.create 32; order = []; txn = None; cost }

let cost_model t = t.cost

let create_table t schema =
  let name = Schema.name schema in
  if Hashtbl.mem t.tables name then error "table %s already exists" name;
  Hashtbl.replace t.tables name (Table.create schema);
  t.order <- t.order @ [ name ]

let create_index t ~table ~column =
  match Hashtbl.find_opt t.tables table with
  | None -> error "no such table: %s" table
  | Some tbl -> (
      try Table.create_index tbl column
      with Not_found -> error "no such column: %s.%s" table column)

let create_ordered_index t ~table ~column =
  match Hashtbl.find_opt t.tables table with
  | None -> error "no such table: %s" table
  | Some tbl -> (
      try Table.create_ordered_index tbl column
      with Not_found -> error "no such column: %s.%s" table column)

let table t name = Hashtbl.find_opt t.tables name
let table_names t = t.order

let row_count t name =
  match Hashtbl.find_opt t.tables name with
  | Some tbl -> Table.row_count tbl
  | None -> 0

let in_txn t = t.txn <> None

let atomically t f =
  match t.txn with
  | Some _ -> f () (* the client's transaction already provides atomicity *)
  | None ->
      let txn = Txn.create () in
      t.txn <- Some txn;
      let finish () = t.txn <- None in
      (match f () with
      | v ->
          Txn.commit txn;
          finish ();
          v
      | exception e ->
          Txn.rollback txn;
          finish ();
          raise e)

let catalog t : Executor.catalog =
  {
    find_table = (fun name -> Hashtbl.find_opt t.tables name);
    add_table = (fun schema -> create_table t schema);
  }

let exec t stmt =
  match stmt with
  | Sloth_sql.Ast.Begin_txn ->
      if t.txn <> None then error "nested transactions are not supported";
      t.txn <- Some (Txn.create ());
      { rs = Result_set.empty; rows_affected = 0; cost_ms = t.cost.fixed_ms }
  | Sloth_sql.Ast.Commit ->
      (match t.txn with
      | Some txn -> Txn.commit txn
      | None -> () (* COMMIT outside a transaction is a no-op *));
      t.txn <- None;
      { rs = Result_set.empty; rows_affected = 0; cost_ms = t.cost.fixed_ms }
  | Sloth_sql.Ast.Rollback ->
      (match t.txn with
      | Some txn -> Txn.rollback txn
      | None -> ());
      t.txn <- None;
      { rs = Result_set.empty; rows_affected = 0; cost_ms = t.cost.fixed_ms }
  | _ -> (
      let log = Option.map (fun txn e -> Txn.log txn e) t.txn in
      match Executor.execute (catalog t) ?log stmt with
      | { rs; rows_scanned; rows_affected } ->
          let cost_ms =
            Cost.query_ms t.cost ~rows_scanned
              ~rows_returned:(Result_set.num_rows rs)
          in
          { rs; rows_affected; cost_ms }
      | exception Executor.Sql_error msg -> error "%s" msg)

let exec_sql t sql =
  match Sloth_sql.Parser.parse sql with
  | stmt -> exec t stmt
  | exception Sloth_sql.Parser.Error msg -> error "parse error: %s" msg

let query t sql = (exec_sql t sql).rs
