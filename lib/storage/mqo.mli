(** Flush-level multi-query optimization over the plan IR.

    SharedDB-style plan merging for one [execute_reads] group: classify each
    planned statement's access path, fuse point/range lookups on the same
    index into probe-set groups, and key join subplans on a canonical
    fingerprint so structurally-equal joins execute once.  Pure analysis —
    the executor interprets the groups. *)

type shape =
  | Sh_solo  (** not shareable (FROM-less statements) *)
  | Sh_seq of { table : string }  (** bare sequential scan *)
  | Sh_eq of { table : string; column : string }  (** point index lookup *)
  | Sh_range of { table : string; column : string }  (** range index scan *)
  | Sh_join of { fp : string }  (** join subplan, keyed by fingerprint *)

val shape : Plan.physical -> shape

val fingerprint : Plan.p_source -> string
(** Canonical fingerprint of a physical source subtree: tables, bindings,
    access paths (with probe keys/bounds printed through the SQL printer,
    so values cannot collide), join predicates and strategies — everything
    {e except} cost estimates.  Equal fingerprints mean the subtrees
    produce identical environments. *)

type group = { g_shape : shape; g_members : int list }
(** Member positions into the input plan list, in first-come order. *)

val merge : Plan.physical list -> group list
(** Partition a flush's plans into share groups (same-shape members
    together, unshareable plans as singletons), in first-occurrence
    order. *)

val referenced_tables : Sloth_sql.Ast.select -> string list
(** Every table a SELECT touches — FROM, joins, and IN-subqueries included
    — sorted and deduplicated.  The version vector of these tables keys
    the result cache. *)
