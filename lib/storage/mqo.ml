(* Flush-level multi-query optimization over the plan IR (SharedDB-style):
   classify the planned statements of one read group by access-path shape so
   the executor can fuse point/range lookups on the same index into one
   sorted probe-set pass and run structurally-equal join subplans once.
   This module is pure — it only inspects plans; the executor interprets
   the groups. *)

open Sloth_sql.Ast

(* --- canonical subplan fingerprints ------------------------------------- *)

(* Values are fingerprinted through the SQL printer (quoted, escaped,
   round-trips through the parser), so e.g. Text "3)" cannot collide with
   Int 3 followed by a delimiter. *)
let value_fp v =
  let lit =
    match v with
    | Value.Null -> L_null
    | Value.Int n -> L_int n
    | Value.Float f -> L_float f
    | Value.Text s -> L_string s
    | Value.Bool b -> L_bool b
  in
  Sloth_sql.Printer.expr_to_string (Lit lit)

let expr_fp = Sloth_sql.Printer.expr_to_string

let access_fp = function
  | Plan.Seq_scan -> "seq"
  | Plan.Index_eq { column; key } ->
      Printf.sprintf "eq(%s,%s)" column (value_fp key)
  | Plan.Index_range { column; lo; hi } ->
      let bound = function
        | None -> "_"
        | Some (v, incl) ->
            Printf.sprintf "%s%s" (if incl then "i" else "x") (value_fp v)
      in
      Printf.sprintf "range(%s,%s,%s)" column (bound lo) (bound hi)

let strategy_fp = function
  | Plan.Nested_loop -> "nl"
  | Plan.Index_probe { column; outer } ->
      Printf.sprintf "probe(%s,%s)" column (expr_fp outer)

(* Canonical fingerprint of a physical source subtree.  Cost estimates are
   deliberately excluded: two plans that do the same work share it even if
   their estimates were computed against slightly different statistics.
   Binding names are included — downstream projection and predicate
   evaluation resolve columns through them, so only plans with identical
   bindings may share environments. *)
let rec fingerprint = function
  | Plan.P_nothing -> "nothing"
  | Plan.P_scan { table; binding; access; _ } ->
      Printf.sprintf "scan(%s,%s,%s)" table binding (access_fp access)
  | Plan.P_join { left; table; binding; on; strategy; _ } ->
      Printf.sprintf "join(%s,%s,%s,%s,%s)" (fingerprint left) table binding
        (expr_fp on) (strategy_fp strategy)

(* --- access-path shapes -------------------------------------------------- *)

type shape =
  | Sh_solo  (** not shareable (FROM-less statements) *)
  | Sh_seq of { table : string }  (** bare sequential scan *)
  | Sh_eq of { table : string; column : string }  (** point index lookup *)
  | Sh_range of { table : string; column : string }  (** range index scan *)
  | Sh_join of { fp : string }  (** join subplan, keyed by fingerprint *)

let shape (p : Plan.physical) =
  (* Fixpoint plans never share: their scans reference the CTE's private
     working table, which shadows any real table (or another CTE) of the
     same name, so fusing them with other statements' scans would read the
     wrong relation. *)
  if p.Plan.p_fixpoint <> None then Sh_solo
  else
    match p.Plan.p_source with
    | Plan.P_nothing -> Sh_solo
    | Plan.P_scan { table; access = Plan.Seq_scan; _ } -> Sh_seq { table }
    | Plan.P_scan { table; access = Plan.Index_eq { column; _ }; _ } ->
        Sh_eq { table; column }
    | Plan.P_scan { table; access = Plan.Index_range { column; _ }; _ } ->
        Sh_range { table; column }
    | Plan.P_join _ as src -> Sh_join { fp = fingerprint src }

(* A stable textual key for grouping shapes. *)
let shape_key = function
  | Sh_solo -> None
  | Sh_seq { table } -> Some ("seq|" ^ table)
  | Sh_eq { table; column } -> Some ("eq|" ^ table ^ "|" ^ column)
  | Sh_range { table; column } -> Some ("range|" ^ table ^ "|" ^ column)
  | Sh_join { fp } -> Some ("join|" ^ fp)

type group = { g_shape : shape; g_members : int list }
(** Member positions into the input plan list, in first-come order. *)

(* Partition a flush's planned statements into share groups: same-index
   point/range lookups fuse per (table, column), join subplans per
   fingerprint, bare seq scans per table.  Shapes that found no partner,
   and unshareable plans, come back as singleton groups.  Group order is
   the first-occurrence order of their first member, so interpretation
   order stays deterministic. *)
let merge plans =
  let order : (string option * shape * int list ref) list ref = ref [] in
  let by_key : (string, int list ref) Hashtbl.t = Hashtbl.create 16 in
  List.iteri
    (fun i p ->
      let sh = shape p in
      match shape_key sh with
      | None -> order := (None, sh, ref [ i ]) :: !order
      | Some key -> (
          match Hashtbl.find_opt by_key key with
          | Some cell -> cell := i :: !cell
          | None ->
              let cell = ref [ i ] in
              Hashtbl.add by_key key cell;
              order := (Some key, sh, cell) :: !order))
    plans;
  List.rev_map
    (fun (_, sh, cell) -> { g_shape = sh; g_members = List.rev !cell })
    !order

(* --- referenced tables (for cache keying) -------------------------------- *)

let rec tables_of_expr acc = function
  | Lit _ | Col _ -> acc
  | Binop (_, a, b) -> tables_of_expr (tables_of_expr acc a) b
  | Unop (_, e) -> tables_of_expr acc e
  | In_list (e, items) -> List.fold_left tables_of_expr (tables_of_expr acc e) items
  | In_select (e, sub) -> tables_of_select (tables_of_expr acc e) sub
  | Is_null { e; _ } -> tables_of_expr acc e
  | Like (e, _) -> tables_of_expr acc e
  | Between { e; lo; hi } ->
      tables_of_expr (tables_of_expr (tables_of_expr acc e) lo) hi
  | Agg (_, arg) -> Option.fold ~none:acc ~some:(tables_of_expr acc) arg

(* The table references of a statement's own clauses, ignoring any WITH
   prefix (handled by [tables_of_select], which knows about shadowing). *)
and tables_of_clauses acc (s : select) =
  let acc =
    match s.sel_from with None -> acc | Some (t, _) -> t :: acc
  in
  let acc = List.fold_left (fun acc j -> j.j_table :: acc) acc s.sel_joins in
  let acc =
    List.fold_left
      (fun acc -> function Star -> acc | Sel_expr (e, _) -> tables_of_expr acc e)
      acc s.sel_items
  in
  let acc = Option.fold ~none:acc ~some:(tables_of_expr acc) s.sel_where in
  let acc = List.fold_left tables_of_expr acc s.sel_group_by in
  let acc = Option.fold ~none:acc ~some:(tables_of_expr acc) s.sel_having in
  let acc =
    List.fold_left (fun acc o -> tables_of_expr acc o.o_expr) acc s.sel_order_by
  in
  List.fold_left (fun acc j -> tables_of_expr acc j.j_on) acc s.sel_joins

(* CTE-aware: a WITH-prefixed statement reads every table its legs read
   (those versions must key the result cache — a row inserted into an edge
   table changes the closure), while references to the CTE's own name, in
   the body or in the recursive step, are the private working table and are
   filtered out. *)
and tables_of_select acc (s : select) =
  match s.sel_with with
  | None -> tables_of_clauses acc s
  | Some c ->
      let legs =
        tables_of_select
          (match c.cte_step with
          | None -> []
          | Some step -> tables_of_select [] step)
          c.cte_base
      in
      List.filter
        (fun t -> not (String.equal t c.cte_name))
        (tables_of_clauses legs s)
      @ acc

(* Every table a SELECT touches, including through IN-subqueries and join ON
   clauses — the version vector of these tables keys the result cache. *)
let referenced_tables (s : select) =
  List.sort_uniq String.compare (tables_of_select [] s)
