(* WAL-shipping replication.

   The primary's commit tap hands every appended WAL chunk (one committed
   transaction or one standalone DDL record, already framed by the Wal
   encoder) to this module, which streams it to each follower over a
   fault-injectable simulated link.  Shipping is stop-and-wait per
   follower: one chunk (or snapshot) in flight, the next sent when the ack
   returns, so a follower behind a slow or lossy link simply lags.  A
   bounded ring retains recent encoded chunks; a follower whose cursor
   falls out of the ring is caught up with a full checksummed checkpoint
   snapshot instead.

   Failover promotes the most caught-up follower: its own WAL tail (the
   chunks it applied since its last checkpoint) is replayed through the
   normal recovery path, it becomes the new streaming source, and the
   shipper's generation counter is bumped so every in-flight delivery or
   ack from the old primary's reign is fenced (dropped on arrival). *)

module Des = Sloth_net.Des
module Fault = Sloth_net.Fault
module Retry_policy = Sloth_net.Retry_policy

type member = {
  m_id : int;
  m_db : Database.t;
  m_rtt_ms : float;
  m_fault : Fault.t option;
  mutable m_next : int;  (* next LSN this follower needs *)
  mutable m_acked : int;  (* highest LSN the primary knows it applied *)
  mutable m_busy : bool;  (* one chunk/snapshot in flight at a time *)
  mutable m_chunks : int;  (* chunks applied *)
  mutable m_snapshots : int;  (* snapshot catch-ups taken *)
}

type replica_info = {
  id : int;
  applied_lsn : int;
  acked_lsn : int;
  lag : int;
  chunks_applied : int;
  snapshots_taken : int;
}

type stats = {
  chunks_shipped : int;
  snapshots_shipped : int;
  retransmits : int;
  promotions : int;
}

type t = {
  sim : Des.t;
  mutable primary : Database.t;
  mutable members : member list;
  ring : (int, string) Hashtbl.t;  (* encoded chunk, keyed by LSN *)
  mutable ring_lo : int;  (* lowest retained LSN *)
  retain : int;
  ack_replicas : int option;
  promote_quorum : int option;
  retry : Retry_policy.t;
  mutable generation : int;  (* bumped on promotion; fences stale events *)
  mutable waiters : (int * (unit -> unit)) list;  (* newest first *)
  mutable next_id : int;
  mutable st_chunks : int;
  mutable st_snapshots : int;
  mutable st_retransmits : int;
  mutable st_promotions : int;
}

let primary t = t.primary
let primary_lsn t = Database.current_lsn t.primary
let n_replicas t = List.length t.members

(* --- quorum tracking ------------------------------------------------------ *)

let ack_quorum t =
  let n = List.length t.members in
  match t.ack_replicas with
  | Some q -> min q n  (* clamped so a shrunk cluster cannot deadlock *)
  | None -> (n + 1) / 2

let acked_count t lsn =
  List.fold_left (fun n m -> if m.m_acked >= lsn then n + 1 else n) 0 t.members

let quorum_reached t lsn = acked_count t lsn >= ack_quorum t

let check_waiters t =
  let ready, waiting =
    List.partition (fun (lsn, _) -> quorum_reached t lsn) t.waiters
  in
  t.waiters <- waiting;
  List.iter (fun (_, k) -> k ()) (List.rev ready)

let on_quorum t ~lsn k =
  if quorum_reached t lsn then k () else t.waiters <- (lsn, k) :: t.waiters

let acked t ~lsn = quorum_reached t lsn

(* --- shipping ------------------------------------------------------------- *)

let decide m =
  match m.m_fault with None -> Fault.Deliver 0.0 | Some f -> Fault.decide f

(* forward reference: deliveries chain back into [kick] *)
let kick_ref : (t -> member -> unit) ref = ref (fun _ _ -> ())

let finish_delivery t m g0 ~applied =
  (* the follower's ack travels back one half round trip later *)
  Des.delay t.sim (m.m_rtt_ms /. 2.0) (fun () ->
      if t.generation = g0 then begin
        if applied > m.m_acked then m.m_acked <- applied;
        check_waiters t;
        m.m_busy <- false;
        !kick_ref t m
      end)

let rec ship_chunk t m g0 lsn chunk attempt =
  match decide m with
  | Fault.Deliver extra ->
      Des.delay t.sim ((m.m_rtt_ms /. 2.0) +. extra) (fun () ->
          if t.generation = g0 then begin
            let records, valid = Wal.scan chunk in
            if valid = String.length chunk then begin
              Database.apply_replicated m.m_db ~lsn records;
              m.m_chunks <- m.m_chunks + 1;
              m.m_next <- lsn + 1;
              t.st_chunks <- t.st_chunks + 1;
              finish_delivery t m g0 ~applied:lsn
            end
            else begin
              (* checksum rejected the payload: retransmit *)
              t.st_retransmits <- t.st_retransmits + 1;
              retry_ship t m g0 attempt (fun () ->
                  ship_chunk t m g0 lsn chunk (attempt + 1))
            end
          end)
  | Fault.Fail _ ->
      t.st_retransmits <- t.st_retransmits + 1;
      retry_ship t m g0 attempt (fun () ->
          ship_chunk t m g0 lsn chunk (attempt + 1))

and retry_ship t m g0 attempt k =
  Des.delay t.sim
    (m.m_rtt_ms +. Retry_policy.backoff_ms t.retry attempt)
    (fun () -> if t.generation = g0 then k ())

and ship_snapshot t m g0 attempt =
  if not (Database.snapshot_safe t.primary) then
    (* An open transaction or a prepared-but-undecided chunk would bake
       uncommitted heap effects into the frame; try again shortly. *)
    retry_ship t m g0 attempt (fun () -> ship_snapshot t m g0 (attempt + 1))
  else
  let snap = Database.snapshot t.primary in
  let at_lsn = Database.current_lsn t.primary in
  match decide m with
  | Fault.Deliver extra ->
      Des.delay t.sim ((m.m_rtt_ms /. 2.0) +. extra) (fun () ->
          if t.generation = g0 then
            if Database.install_snapshot m.m_db snap then begin
              m.m_snapshots <- m.m_snapshots + 1;
              m.m_next <- at_lsn + 1;
              t.st_snapshots <- t.st_snapshots + 1;
              finish_delivery t m g0 ~applied:at_lsn
            end
            else begin
              t.st_retransmits <- t.st_retransmits + 1;
              retry_ship t m g0 attempt (fun () ->
                  ship_snapshot t m g0 (attempt + 1))
            end)
  | Fault.Fail _ ->
      t.st_retransmits <- t.st_retransmits + 1;
      retry_ship t m g0 attempt (fun () -> ship_snapshot t m g0 (attempt + 1))

let kick t m =
  if not m.m_busy then begin
    let plsn = Database.current_lsn t.primary in
    if m.m_next <= plsn then begin
      m.m_busy <- true;
      let g0 = t.generation in
      if m.m_next < t.ring_lo then ship_snapshot t m g0 1
      else
        match Hashtbl.find_opt t.ring m.m_next with
        | Some chunk -> ship_chunk t m g0 m.m_next chunk 1
        | None -> ship_snapshot t m g0 1
    end
  end

let () = kick_ref := kick

let tap t ~lsn records =
  Hashtbl.replace t.ring lsn (Wal.encode records);
  while t.ring_lo <= lsn - t.retain do
    Hashtbl.remove t.ring t.ring_lo;
    t.ring_lo <- t.ring_lo + 1
  done;
  List.iter (kick t) t.members

(* --- setup ---------------------------------------------------------------- *)

let create ~sim ~primary ?ack_replicas ?promote_quorum ?(retain = 64)
    ?(retry = Retry_policy.shipping) () =
  if not (Database.durable primary) then
    invalid_arg "Replication.create: the primary must be durable";
  let t =
    {
      sim;
      primary;
      members = [];
      ring = Hashtbl.create 128;
      ring_lo = Database.current_lsn primary + 1;
      retain = max 1 retain;
      ack_replicas;
      promote_quorum;
      retry;
      generation = 0;
      waiters = [];
      next_id = 0;
      st_chunks = 0;
      st_snapshots = 0;
      st_retransmits = 0;
      st_promotions = 0;
    }
  in
  Database.set_commit_tap primary (Some (fun ~lsn records -> tap t ~lsn records));
  t

let add_replica ?(rtt_ms = 1.0) ?fault ?(checkpoint_every = 8) t =
  let db = Database.create ~cost:(Database.cost_model t.primary) () in
  Database.set_planner db (Database.planner_enabled t.primary);
  Database.enable_durability ~checkpoint_every ~wal:(Wal.mem ())
    ~checkpoint:(Wal.mem ()) db;
  Database.set_ship_prepares db (Database.ship_prepares t.primary);
  (* base backup at attach time (sessions have not started yet) *)
  if not (Database.install_snapshot db (Database.snapshot t.primary)) then
    invalid_arg "Replication.add_replica: base backup failed";
  let lsn = Database.current_lsn t.primary in
  let m =
    {
      m_id = t.next_id;
      m_db = db;
      m_rtt_ms = rtt_ms;
      m_fault = fault;
      m_next = lsn + 1;
      m_acked = lsn;
      m_busy = false;
      m_chunks = 0;
      m_snapshots = 0;
    }
  in
  t.next_id <- t.next_id + 1;
  t.members <- t.members @ [ m ];
  m.m_id

let remove_replica t id =
  match List.find_opt (fun m -> m.m_id = id) t.members with
  | None -> invalid_arg "Replication.remove_replica: unknown replica"
  | Some _ ->
      t.members <- List.filter (fun m -> m.m_id <> id) t.members;
      (* The quorum denominator just shrank (majority of the *current*
         members): waiters that now have enough acks must fire. *)
      check_waiters t

(* --- inspection ----------------------------------------------------------- *)

let replicas t =
  let plsn = primary_lsn t in
  List.map
    (fun m ->
      let applied = Database.current_lsn m.m_db in
      {
        id = m.m_id;
        applied_lsn = applied;
        acked_lsn = m.m_acked;
        lag = max 0 (plsn - applied);
        chunks_applied = m.m_chunks;
        snapshots_taken = m.m_snapshots;
      })
    t.members

let replica_db t id =
  match List.find_opt (fun m -> m.m_id = id) t.members with
  | Some m -> m.m_db
  | None -> invalid_arg "Replication.replica_db: unknown replica"

let stats t =
  {
    chunks_shipped = t.st_chunks;
    snapshots_shipped = t.st_snapshots;
    retransmits = t.st_retransmits;
    promotions = t.st_promotions;
  }

(* --- read routing --------------------------------------------------------- *)

let route_read t ~min_lsn =
  let best =
    List.fold_left
      (fun acc m ->
        let l = Database.current_lsn m.m_db in
        if l < min_lsn then acc
        else
          match acc with
          | Some (_, _, bl) when bl >= l -> acc
          | _ -> Some (m.m_id, m.m_db, l))
      None t.members
  in
  Option.map (fun (id, db, _) -> (id, db)) best

(* --- failover ------------------------------------------------------------- *)

let can_promote t =
  let n = List.length t.members in
  n > 0
  &&
  let q =
    match t.promote_quorum with Some q -> q | None -> (n + 1) / 2
  in
  (* every surviving follower answers the controller's LSN poll in the
     simulation, so the vote succeeds iff enough followers exist at all *)
  n >= q

let promote t =
  if not (can_promote t) then
    invalid_arg "Replication.promote: promotion quorum unavailable";
  (* Fence the old reign: in-flight deliveries and acks check the
     generation on arrival and evaporate. *)
  t.generation <- t.generation + 1;
  Database.set_commit_tap t.primary None;
  let candidate =
    List.fold_left
      (fun best m ->
        match best with
        | None -> Some m
        | Some b ->
            if Database.current_lsn m.m_db > Database.current_lsn b.m_db then
              Some m
            else best)
      None t.members
    |> Option.get
  in
  t.members <- List.filter (fun m -> m.m_id <> candidate.m_id) t.members;
  (* Replay the candidate's own WAL tail through normal recovery; this is
     the "promoted replica replays its log" step and also resets any
     volatile state. *)
  Database.crash_restart candidate.m_db;
  let replayed =
    match Database.last_recovery candidate.m_db with
    | Some r -> r.replayed_records
    | None -> 0
  in
  t.primary <- candidate.m_db;
  Database.set_commit_tap candidate.m_db
    (Some (fun ~lsn records -> tap t ~lsn records));
  Hashtbl.reset t.ring;
  t.ring_lo <- Database.current_lsn candidate.m_db + 1;
  (* The promotion poll (gated by [can_promote]) reads each survivor's
     applied LSN, so the new reign starts with accurate ack cursors — an
     ack that evaporated with the old generation must not leave a quorum
     waiter stranded on an already-applied LSN that will never be
     re-shipped. *)
  List.iter
    (fun m ->
      m.m_busy <- false;
      m.m_acked <- max m.m_acked (Database.current_lsn m.m_db))
    t.members;
  t.st_promotions <- t.st_promotions + 1;
  (* Unblock every pending commit waiter: the admission layer's
     continuations re-check the server epoch and tear the affected
     barriers, releasing their executor slots. *)
  let ws = t.waiters in
  t.waiters <- [];
  List.iter (fun (_, k) -> k ()) (List.rev ws);
  (* Surviving followers re-sync from the new primary (snapshot catch-up
     if they were behind the — now reset — retained window). *)
  List.iter (kick t) t.members;
  (candidate.m_db, candidate.m_id, replayed)
