open Ast

exception Error of string

type state = { mutable toks : Lexer.token list }

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

let peek st = match st.toks with [] -> Lexer.EOF | t :: _ -> t

let advance st =
  match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let next st =
  let t = peek st in
  advance st;
  t

let expect st tok what =
  let t = next st in
  if t <> tok then error "expected %s, found %a" what Lexer.pp_token t

let expect_kw st kw = expect st (Lexer.KEYWORD kw) kw

let accept st tok =
  if peek st = tok then begin
    advance st;
    true
  end
  else false

let accept_kw st kw = accept st (Lexer.KEYWORD kw)

let ident st =
  match next st with
  | Lexer.IDENT s -> s
  | t -> error "expected identifier, found %a" Lexer.pp_token t

let agg_of_kw = function
  | "COUNT" -> Some Count
  | "SUM" -> Some Sum
  | "MIN" -> Some Min
  | "MAX" -> Some Max
  | "AVG" -> Some Avg
  | _ -> None

(* --- expressions ------------------------------------------------------ *)

(* Subqueries make expressions and SELECT mutually recursive; the SELECT
   parser is tied in after its definition below. *)
let select_ref : (state -> select) ref =
  ref (fun _ -> error "select parser not initialised")

let rec expr st = or_expr st

and or_expr st =
  let lhs = ref (and_expr st) in
  while accept_kw st "OR" do
    lhs := Binop (Or, !lhs, and_expr st)
  done;
  !lhs

and and_expr st =
  let lhs = ref (not_expr st) in
  while accept_kw st "AND" do
    lhs := Binop (And, !lhs, not_expr st)
  done;
  !lhs

and not_expr st =
  if accept_kw st "NOT" then Unop (Not, not_expr st) else cmp_expr st

and cmp_expr st =
  let lhs = add_expr st in
  match peek st with
  | Lexer.OP (("=" | "<>" | "<" | "<=" | ">" | ">=") as op) ->
      advance st;
      let rhs = add_expr st in
      let bop =
        match op with
        | "=" -> Eq
        | "<>" -> Neq
        | "<" -> Lt
        | "<=" -> Le
        | ">" -> Gt
        | ">=" -> Ge
        | _ -> assert false
      in
      Binop (bop, lhs, rhs)
  | Lexer.KEYWORD "IS" ->
      advance st;
      let negated = accept_kw st "NOT" in
      expect_kw st "NULL";
      Is_null { e = lhs; negated }
  | Lexer.KEYWORD "IN" ->
      advance st;
      expect st Lexer.LPAREN "'('";
      if peek st = Lexer.KEYWORD "SELECT" then begin
        let sub = !select_ref st in
        expect st Lexer.RPAREN "')'";
        In_select (lhs, sub)
      end
      else begin
        let items = ref [ expr st ] in
        while accept st Lexer.COMMA do
          items := expr st :: !items
        done;
        expect st Lexer.RPAREN "')'";
        In_list (lhs, List.rev !items)
      end
  | Lexer.KEYWORD "LIKE" -> (
      advance st;
      match next st with
      | Lexer.STRING pat -> Like (lhs, pat)
      | t -> error "LIKE expects a string pattern, found %a" Lexer.pp_token t)
  | Lexer.KEYWORD "BETWEEN" ->
      advance st;
      let lo = add_expr st in
      expect_kw st "AND";
      let hi = add_expr st in
      Between { e = lhs; lo; hi }
  | _ -> lhs

and add_expr st =
  let lhs = ref (mul_expr st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | Lexer.OP "+" ->
        advance st;
        lhs := Binop (Add, !lhs, mul_expr st)
    | Lexer.OP "-" ->
        advance st;
        lhs := Binop (Sub, !lhs, mul_expr st)
    | _ -> continue := false
  done;
  !lhs

and mul_expr st =
  let lhs = ref (unary_expr st) in
  let continue = ref true in
  while !continue do
    match peek st with
    | Lexer.STAR ->
        advance st;
        lhs := Binop (Mul, !lhs, unary_expr st)
    | Lexer.OP "/" ->
        advance st;
        lhs := Binop (Div, !lhs, unary_expr st)
    | _ -> continue := false
  done;
  !lhs

and unary_expr st =
  if accept st (Lexer.OP "-") then Unop (Neg, unary_expr st)
  else primary_expr st

and primary_expr st =
  match next st with
  | Lexer.INT n -> Lit (L_int n)
  | Lexer.FLOAT f -> Lit (L_float f)
  | Lexer.STRING s -> Lit (L_string s)
  | Lexer.KEYWORD "TRUE" -> Lit (L_bool true)
  | Lexer.KEYWORD "FALSE" -> Lit (L_bool false)
  | Lexer.KEYWORD "NULL" -> Lit L_null
  | Lexer.KEYWORD kw when agg_of_kw kw <> None ->
      let agg = Option.get (agg_of_kw kw) in
      expect st Lexer.LPAREN "'('";
      let arg = if accept st Lexer.STAR then None else Some (expr st) in
      expect st Lexer.RPAREN "')'";
      Agg (agg, arg)
  | Lexer.IDENT name ->
      if accept st Lexer.DOT then Col (Some name, ident st) else Col (None, name)
  | Lexer.LPAREN ->
      let e = expr st in
      expect st Lexer.RPAREN "')'";
      e
  | t -> error "unexpected token %a in expression" Lexer.pp_token t

(* --- statements ------------------------------------------------------- *)

let sel_item st =
  if accept st Lexer.STAR then Star
  else
    let e = expr st in
    let alias = if accept_kw st "AS" then Some (ident st) else None in
    Sel_expr (e, alias)

let table_ref st =
  let table = ident st in
  let alias =
    if accept_kw st "AS" then Some (ident st)
    else
      match peek st with
      | Lexer.IDENT a ->
          advance st;
          Some a
      | _ -> None
  in
  (table, alias)

let parse_select_clause st =
  expect_kw st "SELECT";
  let distinct = accept_kw st "DISTINCT" in
  let items = ref [ sel_item st ] in
  while accept st Lexer.COMMA do
    items := sel_item st :: !items
  done;
  let from =
    if accept_kw st "FROM" then Some (table_ref st) else None
  in
  let joins = ref [] in
  let rec join_loop () =
    let inner = accept_kw st "INNER" in
    if inner || peek st = Lexer.KEYWORD "JOIN" then begin
      expect_kw st "JOIN";
      let j_table, j_alias = table_ref st in
      expect_kw st "ON";
      let j_on = expr st in
      joins := { j_table; j_alias; j_on } :: !joins;
      join_loop ()
    end
  in
  join_loop ();
  let where = if accept_kw st "WHERE" then Some (expr st) else None in
  let group_by =
    if accept_kw st "GROUP" then begin
      expect_kw st "BY";
      let es = ref [ expr st ] in
      while accept st Lexer.COMMA do
        es := expr st :: !es
      done;
      List.rev !es
    end
    else []
  in
  let having = if accept_kw st "HAVING" then Some (expr st) else None in
  let order_by =
    if accept_kw st "ORDER" then begin
      expect_kw st "BY";
      let one () =
        let e = expr st in
        let asc =
          if accept_kw st "DESC" then false
          else begin
            ignore (accept_kw st "ASC");
            true
          end
        in
        { o_expr = e; o_asc = asc }
      in
      let os = ref [ one () ] in
      while accept st Lexer.COMMA do
        os := one () :: !os
      done;
      List.rev !os
    end
    else []
  in
  let limit =
    if accept_kw st "LIMIT" then
      match next st with
      | Lexer.INT n -> Some n
      | t -> error "LIMIT expects an integer, found %a" Lexer.pp_token t
    else None
  in
  let offset =
    if accept_kw st "OFFSET" then
      match next st with
      | Lexer.INT n -> Some n
      | t -> error "OFFSET expects an integer, found %a" Lexer.pp_token t
    else None
  in
  {
    sel_with = None;
    sel_distinct = distinct;
    sel_items = List.rev !items;
    sel_from = from;
    sel_joins = List.rev !joins;
    sel_where = where;
    sel_group_by = group_by;
    sel_having = having;
    sel_order_by = order_by;
    sel_limit = limit;
    sel_offset = offset;
  }

let () = select_ref := parse_select_clause
let parse_select st = Select (parse_select_clause st)

(* WITH [RECURSIVE] name [(col, ...)] AS ( base [UNION [ALL] step] ) SELECT ...
   — a single CTE prefixed to the main query.  The step leg after UNION is
   what makes the CTE recursive; RECURSIVE is recorded so the round trip is
   exact. *)
let parse_with st =
  expect_kw st "WITH";
  let cte_recursive = accept_kw st "RECURSIVE" in
  let cte_name = ident st in
  let cte_cols =
    if accept st Lexer.LPAREN then begin
      let cols = ref [ ident st ] in
      while accept st Lexer.COMMA do
        cols := ident st :: !cols
      done;
      expect st Lexer.RPAREN "')'";
      List.rev !cols
    end
    else []
  in
  expect_kw st "AS";
  expect st Lexer.LPAREN "'('";
  let cte_base = parse_select_clause st in
  let cte_step, cte_union_all =
    if accept_kw st "UNION" then begin
      let all = accept_kw st "ALL" in
      (Some (parse_select_clause st), all)
    end
    else (None, false)
  in
  expect st Lexer.RPAREN "')'";
  let cte =
    { cte_name; cte_cols; cte_base; cte_step; cte_union_all; cte_recursive }
  in
  let body = parse_select_clause st in
  Select { body with sel_with = Some cte }

let parse_insert st =
  expect_kw st "INSERT";
  expect_kw st "INTO";
  let table = ident st in
  expect st Lexer.LPAREN "'('";
  let columns = ref [ ident st ] in
  while accept st Lexer.COMMA do
    columns := ident st :: !columns
  done;
  expect st Lexer.RPAREN "')'";
  expect_kw st "VALUES";
  let row () =
    expect st Lexer.LPAREN "'('";
    let vs = ref [ expr st ] in
    while accept st Lexer.COMMA do
      vs := expr st :: !vs
    done;
    expect st Lexer.RPAREN "')'";
    List.rev !vs
  in
  let rows = ref [ row () ] in
  while accept st Lexer.COMMA do
    rows := row () :: !rows
  done;
  Insert { table; columns = List.rev !columns; rows = List.rev !rows }

let parse_update st =
  expect_kw st "UPDATE";
  let table = ident st in
  expect_kw st "SET";
  let one () =
    let c = ident st in
    expect st (Lexer.OP "=") "'='";
    (c, expr st)
  in
  let set = ref [ one () ] in
  while accept st Lexer.COMMA do
    set := one () :: !set
  done;
  let where = if accept_kw st "WHERE" then Some (expr st) else None in
  Update { table; set = List.rev !set; where }

let parse_delete st =
  expect_kw st "DELETE";
  expect_kw st "FROM";
  let table = ident st in
  let where = if accept_kw st "WHERE" then Some (expr st) else None in
  Delete { table; where }

let parse_create st =
  expect_kw st "CREATE";
  expect_kw st "TABLE";
  let table = ident st in
  expect st Lexer.LPAREN "'('";
  let pk = ref None in
  let columns = ref [] in
  let column () =
    if accept_kw st "PRIMARY" then begin
      expect_kw st "KEY";
      expect st Lexer.LPAREN "'('";
      let c = ident st in
      expect st Lexer.RPAREN "')'";
      pk := Some c
    end
    else begin
      let cd_name = ident st in
      let cd_type =
        match next st with
        | Lexer.KEYWORD "INT" -> T_int
        | Lexer.KEYWORD "FLOAT" -> T_float
        | Lexer.KEYWORD "TEXT" -> T_text
        | Lexer.KEYWORD "BOOL" -> T_bool
        | t -> error "expected a column type, found %a" Lexer.pp_token t
      in
      let cd_nullable =
        if accept_kw st "NOT" then begin
          expect_kw st "NULL";
          false
        end
        else begin
          ignore (accept_kw st "NULL");
          true
        end
      in
      columns := { cd_name; cd_type; cd_nullable } :: !columns
    end
  in
  column ();
  while accept st Lexer.COMMA do
    column ()
  done;
  expect st Lexer.RPAREN "')'";
  Create_table { table; columns = List.rev !columns; primary_key = !pk }

let parse_stmt st =
  match peek st with
  | Lexer.KEYWORD "SELECT" -> parse_select st
  | Lexer.KEYWORD "WITH" -> parse_with st
  | Lexer.KEYWORD "INSERT" -> parse_insert st
  | Lexer.KEYWORD "UPDATE" -> parse_update st
  | Lexer.KEYWORD "DELETE" -> parse_delete st
  | Lexer.KEYWORD "CREATE" -> parse_create st
  | Lexer.KEYWORD "BEGIN" ->
      advance st;
      Begin_txn
  | Lexer.KEYWORD "COMMIT" ->
      advance st;
      Commit
  | Lexer.KEYWORD "ROLLBACK" ->
      advance st;
      Rollback
  | t -> error "unexpected token %a at start of statement" Lexer.pp_token t

let finish st what =
  ignore (accept st Lexer.SEMI);
  match peek st with
  | Lexer.EOF -> ()
  | t -> error "trailing input after %s: %a" what Lexer.pp_token t

let parse src =
  let st =
    try { toks = Lexer.tokenize src }
    with Lexer.Error (msg, pos) -> error "lex error at %d: %s" pos msg
  in
  let s = parse_stmt st in
  finish st "statement";
  s

let parse_expr src =
  let st =
    try { toks = Lexer.tokenize src }
    with Lexer.Error (msg, pos) -> error "lex error at %d: %s" pos msg
  in
  let e = expr st in
  finish st "expression";
  e
