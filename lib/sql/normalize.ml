open Ast

(* Canonical ordering: the printer is canonical (fully parenthesized,
   round-trips through the parser), so comparing printed forms is a total,
   deterministic order on expressions in which equal strings mean equal
   ASTs. *)
let cmp_expr a b =
  String.compare (Printer.expr_to_string a) (Printer.expr_to_string b)

let rec flatten op = function
  | Binop (o, a, b) when o = op -> flatten op a @ flatten op b
  | e -> [ e ]

(* Drop adjacent duplicates of a [cmp_expr]-sorted list: equal printed
   forms mean equal ASTs, and AND/OR/IN are all idempotent in their
   members. *)
let rec dedup_sorted = function
  | a :: b :: rest when cmp_expr a b = 0 -> dedup_sorted (b :: rest)
  | a :: rest -> a :: dedup_sorted rest
  | [] -> []

(* Rebuild a left-deep chain; [flatten] of the result re-yields the same
   sorted list, making normalization idempotent. *)
let rebuild op = function
  | [] -> invalid_arg "Normalize.rebuild: empty"
  | e :: rest -> List.fold_left (fun acc x -> Binop (op, acc, x)) e rest

let rec expr = function
  | (Lit _ | Col _) as e -> e
  | Binop (((And | Or) as op), _, _) as e ->
      (* Normalize members first — a BETWEEN member rewrites into a range
         conjunct pair — then re-flatten (the rewrite introduces nested
         chains of the same operator), sort, and drop duplicates. *)
      let parts =
        List.concat_map (fun p -> flatten op (expr p)) (flatten op e)
      in
      rebuild op (dedup_sorted (List.sort cmp_expr parts))
  | Binop (((Eq | Neq | Add | Mul) as op), a, b) ->
      (* Commutative: order the operands canonically. *)
      let a = expr a and b = expr b in
      if cmp_expr a b <= 0 then Binop (op, a, b) else Binop (op, b, a)
  | Binop (Gt, a, b) -> Binop (Lt, expr b, expr a)
  | Binop (Ge, a, b) -> Binop (Le, expr b, expr a)
  | Binop (op, a, b) -> Binop (op, expr a, expr b)
  | Unop (op, e) -> Unop (op, expr e)
  | In_list (e, items) ->
      In_list
        (expr e, dedup_sorted (List.sort cmp_expr (List.map expr items)))
  | In_select (e, sub) -> In_select (expr e, select sub)
  | Is_null { e; negated } -> Is_null { e = expr e; negated }
  | Like (e, p) -> Like (expr e, p)
  | Between { e; lo; hi } ->
      (* x BETWEEN lo AND hi ≡ lo <= x AND x <= hi, including NULL
         behavior (any NULL operand yields false on both paths), so
         BETWEEN and the adjacent >=/<= conjunct pair share one normal
         form. *)
      expr (Binop (And, Binop (Le, lo, e), Binop (Le, e, hi)))
  | Agg (a, arg) -> Agg (a, Option.map expr arg)

(* Select items are left untouched: an unaliased item's printed expression
   is its result-column name, so rewriting it would change the result
   set.  Clause lists (GROUP BY, ORDER BY) keep their order — it is
   semantic — but each member expression is normalized. *)
and select (s : select) =
  {
    s with
    sel_with =
      Option.map
        (fun c ->
          {
            c with
            cte_base = select c.cte_base;
            cte_step = Option.map select c.cte_step;
          })
        s.sel_with;
    sel_joins = List.map (fun j -> { j with j_on = expr j.j_on }) s.sel_joins;
    sel_where = Option.map expr s.sel_where;
    sel_group_by = List.map expr s.sel_group_by;
    sel_having = Option.map expr s.sel_having;
    sel_order_by =
      List.map (fun o -> { o with o_expr = expr o.o_expr }) s.sel_order_by;
  }

let stmt = function
  | Select s -> Select (select s)
  | s -> s

let key s = Printer.to_string (stmt s)
