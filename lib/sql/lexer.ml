type token =
  | INT of int
  | FLOAT of float
  | STRING of string
  | IDENT of string
  | KEYWORD of string
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | STAR
  | SEMI
  | OP of string
  | EOF

exception Error of string * int

let keywords =
  [
    "SELECT"; "FROM"; "WHERE"; "AND"; "OR"; "NOT"; "INSERT"; "INTO";
    "VALUES"; "UPDATE"; "SET"; "DELETE"; "JOIN"; "INNER"; "ON"; "AS";
    "ORDER"; "BY"; "ASC"; "DESC"; "LIMIT"; "GROUP"; "IN"; "IS"; "NULL";
    "LIKE"; "TRUE"; "FALSE"; "COUNT"; "SUM"; "MIN"; "MAX"; "AVG";
    "CREATE"; "TABLE"; "PRIMARY"; "KEY"; "INT"; "FLOAT"; "TEXT"; "BOOL";
    "BEGIN"; "COMMIT"; "ROLLBACK"; "DISTINCT"; "HAVING"; "OFFSET"; "BETWEEN";
    "WITH"; "RECURSIVE"; "UNION"; "ALL";
  ]

let keyword_set =
  let tbl = Hashtbl.create 64 in
  List.iter (fun k -> Hashtbl.replace tbl k ()) keywords;
  tbl

let is_keyword s = Hashtbl.mem keyword_set (String.uppercase_ascii s)

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let emit t = toks := t :: !toks in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do
        incr i
      done;
      if !i < n && src.[!i] = '.' && !i + 1 < n && is_digit src.[!i + 1] then begin
        incr i;
        while !i < n && is_digit src.[!i] do
          incr i
        done;
        emit (FLOAT (float_of_string (String.sub src start (!i - start))))
      end
      else emit (INT (int_of_string (String.sub src start (!i - start))))
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        incr i
      done;
      let word = String.sub src start (!i - start) in
      let upper = String.uppercase_ascii word in
      if Hashtbl.mem keyword_set upper then emit (KEYWORD upper)
      else emit (IDENT word)
    end
    else if c = '"' then begin
      (* Quoted identifier: exact text, keywords included; "" escapes. *)
      let buf = Buffer.create 16 in
      let start = !i in
      incr i;
      let closed = ref false in
      while (not !closed) && !i < n do
        if src.[!i] = '"' then
          if !i + 1 < n && src.[!i + 1] = '"' then begin
            Buffer.add_char buf '"';
            i := !i + 2
          end
          else begin
            closed := true;
            incr i
          end
        else begin
          Buffer.add_char buf src.[!i];
          incr i
        end
      done;
      if not !closed then
        raise (Error ("unterminated quoted identifier", start));
      emit (IDENT (Buffer.contents buf))
    end
    else if c = '\'' then begin
      (* SQL string literal; '' escapes a quote. *)
      let buf = Buffer.create 16 in
      let start = !i in
      incr i;
      let closed = ref false in
      while (not !closed) && !i < n do
        if src.[!i] = '\'' then
          if !i + 1 < n && src.[!i + 1] = '\'' then begin
            Buffer.add_char buf '\'';
            i := !i + 2
          end
          else begin
            closed := true;
            incr i
          end
        else begin
          Buffer.add_char buf src.[!i];
          incr i
        end
      done;
      if not !closed then raise (Error ("unterminated string literal", start));
      emit (STRING (Buffer.contents buf))
    end
    else begin
      let two =
        if !i + 1 < n then Some (String.sub src !i 2) else None
      in
      match two with
      | Some (("<>" | "<=" | ">=" | "!=") as op) ->
          emit (OP (if op = "!=" then "<>" else op));
          i := !i + 2
      | _ -> (
          incr i;
          match c with
          | '(' -> emit LPAREN
          | ')' -> emit RPAREN
          | ',' -> emit COMMA
          | '.' -> emit DOT
          | '*' -> emit STAR
          | ';' -> emit SEMI
          | '=' | '<' | '>' | '+' | '-' | '/' -> emit (OP (String.make 1 c))
          | _ ->
              raise
                (Error (Printf.sprintf "unexpected character %C" c, !i - 1)))
    end
  done;
  List.rev (EOF :: !toks)

let pp_token ppf = function
  | INT n -> Format.fprintf ppf "INT(%d)" n
  | FLOAT f -> Format.fprintf ppf "FLOAT(%g)" f
  | STRING s -> Format.fprintf ppf "STRING(%S)" s
  | IDENT s -> Format.fprintf ppf "IDENT(%s)" s
  | KEYWORD s -> Format.fprintf ppf "KEYWORD(%s)" s
  | LPAREN -> Format.pp_print_string ppf "("
  | RPAREN -> Format.pp_print_string ppf ")"
  | COMMA -> Format.pp_print_string ppf ","
  | DOT -> Format.pp_print_string ppf "."
  | STAR -> Format.pp_print_string ppf "*"
  | SEMI -> Format.pp_print_string ppf ";"
  | OP s -> Format.fprintf ppf "OP(%s)" s
  | EOF -> Format.pp_print_string ppf "<eof>"
