(** Semantic normalization of SQL ASTs.

    Two statements that differ only in conjunct/disjunct order, the operand
    order of commutative operators (equality, addition, multiplication),
    the direction of
    comparisons (a > b vs. b < a), or IN-list item order normalize to the
    same AST — and therefore the same canonical text — so the query store
    can deduplicate them as one batched query.  Duplicate IN-list members
    and duplicate AND/OR chain members are dropped (all three are
    idempotent in their members), and [x BETWEEN lo AND hi] rewrites into
    the range-conjunct pair [lo <= x AND x <= hi] — identical semantics
    including NULL operands — so BETWEEN and adjacent >=/<= bounds share
    one normal form.

    Select items are never rewritten (an unaliased item's printed form is
    its result-column name) and clause lists keep their order, so the
    normalized statement produces the same result set as the original.
    The only observable difference is evaluation-error behavior: AND/OR
    evaluate their operands left to right with short-circuiting, so
    reordering can surface (or hide) an error in a branch the original
    would have skipped.  Normalization is idempotent. *)

val expr : Ast.expr -> Ast.expr
val select : Ast.select -> Ast.select
val stmt : Ast.stmt -> Ast.stmt

val key : Ast.stmt -> string
(** [Printer.to_string] of the normalized statement — the deduplication
    key. *)
