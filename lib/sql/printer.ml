open Ast

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      if c = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Identifiers print bare unless they would lex back as a keyword (or are
   not plain identifier shape), in which case they are double-quoted so the
   round trip restores the exact name. *)
let plain_ident s =
  s <> ""
  && (let c = s.[0] in
      (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_')
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '_')
       s

let ident_to_string s =
  if plain_ident s && not (Lexer.is_keyword s) then s
  else begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\""
        else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let literal_to_string = function
  | L_int n -> string_of_int n
  | L_float f ->
      (* Keep a decimal point so the round trip stays a float. *)
      let s = Printf.sprintf "%.12g" f in
      if String.contains s '.' || String.contains s 'e' then s else s ^ ".0"
  | L_string s -> Printf.sprintf "'%s'" (escape_string s)
  | L_bool true -> "TRUE"
  | L_bool false -> "FALSE"
  | L_null -> "NULL"

let binop_to_string = function
  | Eq -> "="
  | Neq -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "AND"
  | Or -> "OR"
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"

let agg_to_string = function
  | Count -> "COUNT"
  | Sum -> "SUM"
  | Min -> "MIN"
  | Max -> "MAX"
  | Avg -> "AVG"

(* Fully parenthesize compound sub-expressions: canonical and unambiguous,
   at the cost of a few extra parens.  The parser accepts the output and the
   round trip is exact. *)
let rec expr_to_string = function
  | Lit l -> literal_to_string l
  | Col (None, c) -> ident_to_string c
  | Col (Some t, c) -> ident_to_string t ^ "." ^ ident_to_string c
  | Binop (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (expr_to_string a) (binop_to_string op)
        (expr_to_string b)
  | Unop (Not, e) -> Printf.sprintf "(NOT %s)" (expr_to_string e)
  | Unop (Neg, e) -> Printf.sprintf "(- %s)" (expr_to_string e)
  | In_list (e, items) ->
      Printf.sprintf "(%s IN (%s))" (expr_to_string e)
        (String.concat ", " (List.map expr_to_string items))
  | In_select (e, sub) ->
      Printf.sprintf "(%s IN (%s))" (expr_to_string e) (select_to_string sub)
  | Is_null { e; negated } ->
      Printf.sprintf "(%s IS %sNULL)" (expr_to_string e)
        (if negated then "NOT " else "")
  | Like (e, pat) ->
      Printf.sprintf "(%s LIKE '%s')" (expr_to_string e) (escape_string pat)
  | Between { e; lo; hi } ->
      Printf.sprintf "(%s BETWEEN %s AND %s)" (expr_to_string e)
        (expr_to_string lo) (expr_to_string hi)
  | Agg (a, None) -> agg_to_string a ^ "(*)"
  | Agg (a, Some e) ->
      Printf.sprintf "%s(%s)" (agg_to_string a) (expr_to_string e)

and sel_item_to_string = function
  | Star -> "*"
  | Sel_expr (e, None) -> expr_to_string e
  | Sel_expr (e, Some a) -> expr_to_string e ^ " AS " ^ ident_to_string a

and select_to_string s =
  let buf = Buffer.create 64 in
  (match s.sel_with with
  | None -> ()
  | Some c ->
      Buffer.add_string buf "WITH ";
      if c.cte_recursive then Buffer.add_string buf "RECURSIVE ";
      Buffer.add_string buf (ident_to_string c.cte_name);
      (match c.cte_cols with
      | [] -> ()
      | cols ->
          Buffer.add_string buf
            (" (" ^ String.concat ", " (List.map ident_to_string cols) ^ ")"));
      Buffer.add_string buf (" AS (" ^ select_to_string c.cte_base);
      (match c.cte_step with
      | None -> ()
      | Some step ->
          Buffer.add_string buf
            ((if c.cte_union_all then " UNION ALL " else " UNION ")
            ^ select_to_string step));
      Buffer.add_string buf ") ");
  Buffer.add_string buf "SELECT ";
  if s.sel_distinct then Buffer.add_string buf "DISTINCT ";
  Buffer.add_string buf
    (String.concat ", " (List.map sel_item_to_string s.sel_items));
  (match s.sel_from with
  | None -> ()
  | Some (t, alias) ->
      Buffer.add_string buf (" FROM " ^ ident_to_string t);
      Option.iter
        (fun a -> Buffer.add_string buf (" AS " ^ ident_to_string a))
        alias);
  List.iter
    (fun j ->
      Buffer.add_string buf (" JOIN " ^ ident_to_string j.j_table);
      Option.iter
        (fun a -> Buffer.add_string buf (" AS " ^ ident_to_string a))
        j.j_alias;
      Buffer.add_string buf (" ON " ^ expr_to_string j.j_on))
    s.sel_joins;
  Option.iter
    (fun w -> Buffer.add_string buf (" WHERE " ^ expr_to_string w))
    s.sel_where;
  (match s.sel_group_by with
  | [] -> ()
  | gs ->
      Buffer.add_string buf
        (" GROUP BY " ^ String.concat ", " (List.map expr_to_string gs)));
  Option.iter
    (fun h -> Buffer.add_string buf (" HAVING " ^ expr_to_string h))
    s.sel_having;
  (match s.sel_order_by with
  | [] -> ()
  | os ->
      let one o =
        expr_to_string o.o_expr ^ if o.o_asc then " ASC" else " DESC"
      in
      Buffer.add_string buf
        (" ORDER BY " ^ String.concat ", " (List.map one os)));
  Option.iter
    (fun l -> Buffer.add_string buf (" LIMIT " ^ string_of_int l))
    s.sel_limit;
  Option.iter
    (fun o -> Buffer.add_string buf (" OFFSET " ^ string_of_int o))
    s.sel_offset;
  Buffer.contents buf

let col_type_to_string = function
  | T_int -> "INT"
  | T_float -> "FLOAT"
  | T_text -> "TEXT"
  | T_bool -> "BOOL"

let to_string = function
  | Select s -> select_to_string s
  | Insert { table; columns; rows } ->
      let row vs =
        "(" ^ String.concat ", " (List.map expr_to_string vs) ^ ")"
      in
      Printf.sprintf "INSERT INTO %s (%s) VALUES %s" (ident_to_string table)
        (String.concat ", " (List.map ident_to_string columns))
        (String.concat ", " (List.map row rows))
  | Update { table; set; where } ->
      let one (c, e) = ident_to_string c ^ " = " ^ expr_to_string e in
      Printf.sprintf "UPDATE %s SET %s%s" (ident_to_string table)
        (String.concat ", " (List.map one set))
        (match where with
        | None -> ""
        | Some w -> " WHERE " ^ expr_to_string w)
  | Delete { table; where } ->
      Printf.sprintf "DELETE FROM %s%s" (ident_to_string table)
        (match where with
        | None -> ""
        | Some w -> " WHERE " ^ expr_to_string w)
  | Create_table { table; columns; primary_key } ->
      let col c =
        Printf.sprintf "%s %s%s" (ident_to_string c.cd_name)
          (col_type_to_string c.cd_type)
          (if c.cd_nullable then "" else " NOT NULL")
      in
      let pk =
        match primary_key with
        | None -> ""
        | Some c -> Printf.sprintf ", PRIMARY KEY (%s)" (ident_to_string c)
      in
      Printf.sprintf "CREATE TABLE %s (%s%s)" (ident_to_string table)
        (String.concat ", " (List.map col columns))
        pk
  | Begin_txn -> "BEGIN"
  | Commit -> "COMMIT"
  | Rollback -> "ROLLBACK"

let pp_expr ppf e = Format.pp_print_string ppf (expr_to_string e)
let pp ppf s = Format.pp_print_string ppf (to_string s)
