(** Hand-written lexer for the SQL dialect. *)

type token =
  | INT of int
  | FLOAT of float
  | STRING of string
  | IDENT of string
      (** identifier, original case preserved; double-quoted identifiers
          ("" escapes a quote) bypass the keyword check *)
  | KEYWORD of string  (** upper-cased reserved word *)
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | STAR
  | SEMI
  | OP of string  (** '=', '<>', '<', '<=', '>', '>=', '+', '-', '/' *)
  | EOF

exception Error of string * int  (** message, byte offset *)

val tokenize : string -> token list
(** Raises {!Error} on malformed input (unterminated string, bad char). *)

val is_keyword : string -> bool
(** Case-insensitive reserved-word test (the printer quotes identifiers
    that would otherwise lex as keywords). *)

val pp_token : Format.formatter -> token -> unit
