(** Abstract syntax for the SQL dialect understood by the storage engine.

    The dialect covers what the workloads need: single-table and joined
    SELECTs with WHERE / GROUP BY / ORDER BY / LIMIT, the aggregates used by
    the paper's applications, [WITH [RECURSIVE]] common table expressions
    (one CTE, base leg plus optional [UNION [ALL]] step leg), INSERT /
    UPDATE / DELETE, transaction control and CREATE TABLE. *)

type binop =
  | Eq
  | Neq
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or
  | Add
  | Sub
  | Mul
  | Div

type unop = Not | Neg

type literal =
  | L_int of int
  | L_float of float
  | L_string of string
  | L_bool of bool
  | L_null

type agg = Count | Sum | Min | Max | Avg

type expr =
  | Lit of literal
  | Col of string option * string  (** optional table/alias qualifier *)
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | In_list of expr * expr list
  | In_select of expr * select
      (** uncorrelated subquery membership; the subquery must produce a
          single column *)
  | Is_null of { e : expr; negated : bool }
  | Like of expr * string
  | Between of { e : expr; lo : expr; hi : expr }
  | Agg of agg * expr option
      (** [Agg (Count, None)] is a count over all rows (star argument) *)

and sel_item =
  | Star
  | Sel_expr of expr * string option  (** expression, optional alias *)

and order = { o_expr : expr; o_asc : bool }

and join = { j_table : string; j_alias : string option; j_on : expr }

and select = {
  sel_with : cte option;
      (** common table expression prefixed to the query, if any *)
  sel_distinct : bool;
  sel_items : sel_item list;
  sel_from : (string * string option) option;
  sel_joins : join list;
  sel_where : expr option;
  sel_group_by : expr list;
  sel_having : expr option;
  sel_order_by : order list;
  sel_limit : int option;
  sel_offset : int option;
}

and cte = {
  cte_name : string;
  cte_cols : string list;
      (** explicit output column names; empty means "derive from the base
          leg's result columns" *)
  cte_base : select;
  cte_step : select option;
      (** the leg after [UNION [ALL]]; [None] for a plain single-leg CTE *)
  cte_union_all : bool;  (** [UNION ALL] (keep duplicates) vs [UNION] *)
  cte_recursive : bool;  (** the [RECURSIVE] keyword was present *)
}

type col_type = T_int | T_float | T_text | T_bool

type column_def = { cd_name : string; cd_type : col_type; cd_nullable : bool }

type stmt =
  | Select of select
  | Insert of { table : string; columns : string list; rows : expr list list }
  | Update of { table : string; set : (string * expr) list; where : expr option }
  | Delete of { table : string; where : expr option }
  | Create_table of {
      table : string;
      columns : column_def list;
      primary_key : string option;
    }
  | Begin_txn
  | Commit
  | Rollback

(** A statement is a *write* if it can mutate database or transaction state.
    The query store must flush (and immediately execute) writes rather than
    defer them — Sec. 3.3 of the paper. *)
let is_write = function
  | Select _ -> false
  | Insert _ | Update _ | Delete _ | Create_table _ | Begin_txn | Commit
  | Rollback ->
      true

let select_of ?(distinct = false) ?(items = [ Star ]) ?alias ?where
    ?(joins = []) ?(group_by = []) ?having ?(order_by = []) ?limit ?offset
    table =
  Select
    {
      sel_with = None;
      sel_distinct = distinct;
      sel_items = items;
      sel_from = Some (table, alias);
      sel_joins = joins;
      sel_where = where;
      sel_group_by = group_by;
      sel_having = having;
      sel_order_by = order_by;
      sel_limit = limit;
      sel_offset = offset;
    }

let col ?table name = Col (table, name)
let int n = Lit (L_int n)
let str s = Lit (L_string s)
let bool b = Lit (L_bool b)
let null = Lit L_null
let ( =% ) a b = Binop (Eq, a, b)
let ( &&% ) a b = Binop (And, a, b)
let ( ||% ) a b = Binop (Or, a, b)
