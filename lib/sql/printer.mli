(** Render SQL ASTs back to text.

    The output is canonical: printing then re-parsing yields an equal AST
    (checked by a qcheck property).  Canonical text is also what the query
    store uses as the deduplication key for batched queries. *)

val expr_to_string : Ast.expr -> string
val sel_item_to_string : Ast.sel_item -> string
val select_to_string : Ast.select -> string
val to_string : Ast.stmt -> string

val pp_expr : Format.formatter -> Ast.expr -> unit
val pp : Format.formatter -> Ast.stmt -> unit
