module Db = Sloth_storage.Database
module Shard = Sloth_storage.Shard
module Rs = Sloth_storage.Result_set
module Cost = Sloth_storage.Cost
module Link = Sloth_net.Link
module Vclock = Sloth_net.Vclock
module Stats = Sloth_net.Stats
module Fault = Sloth_net.Fault

module Retry_policy = Sloth_net.Retry_policy

type breaker = Closed | Open_until of float | Half_open

(* The server-side engine behind this connection: one database, or a
   sharded deployment routing through two-phase commit.  The protocol
   machinery (retries, idempotency, crash simulation) is identical — only
   the execution entry points dispatch. *)
type backend = Direct of Db.t | Sharded of Shard.t

type t = {
  eng : backend;
  link : Sloth_net.Link.t;
  mutable slots : float array;
      (* async pool: when each pooled connection becomes free *)
  mutable retry : Retry_policy.t;
  mutable breaker : breaker;
  mutable consecutive_failures : int;
  applied : (string, Db.outcome list) Hashtbl.t;
      (* server-side idempotency table: token -> outcomes of the already
         processed batch, replayed instead of re-executed on retry *)
  applied_order : string Queue.t;  (* FIFO of cached tokens, for eviction *)
  mutable applied_capacity : int;
  admitted : (string, unit) Hashtbl.t;
      (* every token the server ever accepted (cheap: strings only) — lets
         it distinguish "brand-new token" from "token whose cached outcome
         was evicted", which must NOT be silently re-applied *)
  jitter_rng : Random.State.t;
}

exception Server_error of string
exception Retries_exhausted of { attempts : int; last : string }

let app_cost_per_stmt_ms = ref 1.0
let app_cost_per_row_ms = ref 0.02

let create_backend eng link =
  {
    eng;
    link;
    slots = [||];
    retry = Retry_policy.default;
    breaker = Closed;
    consecutive_failures = 0;
    applied = Hashtbl.create 16;
    applied_order = Queue.create ();
    applied_capacity = 512;
    admitted = Hashtbl.create 16;
    jitter_rng = Random.State.make [| 0x5107 |];
  }

let create db link = create_backend (Direct db) link
let create_sharded shard link = create_backend (Sharded shard) link

(* Engine dispatch. *)
let eng_exec t stmt =
  match t.eng with Direct db -> Db.exec db stmt | Sharded s -> Shard.exec s stmt

let eng_exec_batch t stmts =
  match t.eng with
  | Direct db -> Db.exec_batch db stmts
  | Sharded s -> Shard.exec_batch s stmts

let eng_atomically ?token t f =
  match t.eng with
  | Direct db -> Db.atomically ?token db f
  | Sharded s -> Shard.atomically ?token s f

let eng_token_applied t k =
  match t.eng with
  | Direct db -> Db.token_applied db k
  | Sharded s -> Shard.token_applied s k

let eng_cost t =
  match t.eng with Direct db -> Db.cost_model db | Sharded s -> Shard.cost_model s

let eng_crash_restart t =
  match t.eng with
  | Direct db -> Db.crash_restart db
  | Sharded s -> Shard.crash_restart s

let link t = t.link
let clock t = Sloth_net.Link.clock t.link
let stats t = Sloth_net.Link.stats t.link

let database t =
  match t.eng with Direct db -> db | Sharded s -> Shard.shard_db s 0

let sharding t = match t.eng with Direct _ -> None | Sharded s -> Some s
let retry_policy t = t.retry
let set_retry_policy t p = t.retry <- p

let breaker_state t =
  match t.breaker with
  | Closed -> `Closed
  | Open_until _ -> `Open
  | Half_open -> `Half_open

let idempotency_window t = t.applied_capacity

let set_idempotency_window t n =
  if n < 1 then invalid_arg "Connection.set_idempotency_window";
  t.applied_capacity <- n;
  while Queue.length t.applied_order > n do
    Hashtbl.remove t.applied (Queue.pop t.applied_order)
  done

(* FIFO eviction keeps the outcome cache bounded; [admitted] keeps only the
   token strings, so an evicted token retransmitted later is answered with
   an error instead of being silently applied a second time. *)
let remember_applied t k outcomes =
  if not (Hashtbl.mem t.applied k) then begin
    Queue.push k t.applied_order;
    while Queue.length t.applied_order > t.applied_capacity do
      Hashtbl.remove t.applied (Queue.pop t.applied_order)
    done
  end;
  Hashtbl.replace t.applied k outcomes;
  Hashtbl.replace t.admitted k ()

(* The server process dies: its idempotency cache is volatile and vanishes
   with it; the database recovers from checkpoint + WAL (or is wiped, if
   durability is off). *)
let server_crash t =
  eng_crash_restart t;
  Hashtbl.reset t.applied;
  Queue.clear t.applied_order;
  Hashtbl.reset t.admitted

let request_bytes stmts =
  List.fold_left
    (fun acc s -> acc + String.length (Sloth_sql.Printer.to_string s) + 8)
    16 stmts

let charge_db t ms = Sloth_net.Vclock.advance (clock t) Sloth_net.Vclock.Db ms

(* Client-side work: statement preparation before the trip plus result-set
   hydration after it. *)
let charge_app t ~stmts ~rows =
  Sloth_net.Vclock.advance (clock t) Sloth_net.Vclock.App
    ((!app_cost_per_stmt_ms *. float_of_int stmts)
    +. (!app_cost_per_row_ms *. float_of_int rows))

(* --- retry / circuit-breaker machinery ---------------------------------- *)

let breaker_check t ~attempt =
  match t.breaker with
  | Closed | Half_open -> ()
  | Open_until until ->
      if Vclock.now (clock t) >= until then
        (* cooldown over: this attempt is the half-open probe *)
        t.breaker <- Half_open
      else
        raise (Retries_exhausted { attempts = attempt - 1; last = "circuit open" })

let breaker_success t =
  t.consecutive_failures <- 0;
  t.breaker <- Closed

let breaker_failure t =
  t.consecutive_failures <- t.consecutive_failures + 1;
  let open_now () =
    t.breaker <-
      Open_until (Vclock.now (clock t) +. t.retry.breaker_cooldown_ms)
  in
  match t.breaker with
  | Half_open -> open_now () (* the probe failed: back to open *)
  | Closed | Open_until _ ->
      if t.consecutive_failures >= t.retry.breaker_threshold then open_now ()

(* Bounded exponential backoff with deterministic jitter, charged to the
   virtual clock so latency experiments pay for every retry. *)
let backoff t attempt =
  let p = t.retry in
  let capped = Retry_policy.backoff_ms p attempt in
  let jit =
    if p.jitter <= 0.0 then 0.0
    else capped *. p.jitter *. Random.State.float t.jitter_rng 1.0
  in
  Vclock.advance (clock t) Vclock.Network (capped +. jit)

(* One logical round trip under the installed fault plan, retried per the
   policy.  [run ~observed] performs the server-side work and returns
   [(outcomes, db_ms, rows, response_bytes)]; it is called with
   [observed:false] when the response leg fails after the server processed
   the request — the work happens (and any idempotency token is recorded)
   but the client sees only its timeout.  [partial k] simulates the server
   dying between statement [k] and [k+1] of the batch: the statements run
   inside a transaction that is never committed, so nothing reaches the
   WAL.  A [Db.Sql_error] from [run] is a real server answer, not an
   infrastructure fault: it is never retried and costs the round trip plus
   [error_db_ms]. *)
let resilient ?(partial = fun _ -> ()) t fault ~queries ~req_bytes ~error_db_ms
    ~run =
  let rec go attempt =
    breaker_check t ~attempt;
    match Fault.decide fault with
    | Fault.Deliver extra_ms -> (
        match run ~observed:true with
        | outcomes, db_ms, rows, resp_bytes ->
            Link.deliver t.link ~queries ~bytes:(req_bytes + resp_bytes)
              ~extra_ms;
            breaker_success t;
            charge_db t db_ms;
            charge_app t ~stmts:queries ~rows;
            outcomes
        | exception Db.Sql_error msg ->
            Link.deliver t.link ~queries ~bytes:(req_bytes + 16) ~extra_ms;
            if error_db_ms > 0.0 then charge_db t error_db_ms;
            (* the wire and server are fine; only the statement is bad *)
            breaker_success t;
            raise (Server_error msg))
    | Fault.Fail (failure, leg) ->
        (match (failure, leg) with
        | Fault.Server_crash, leg ->
            (* How much of the request the server executed before dying
               depends on the leg it crashed on; either way the process is
               gone afterwards and restarts into recovery. *)
            (match leg with
            | Fault.Request -> ()
            | Fault.Mid_batch k -> partial k
            | Fault.Response -> (
                try ignore (run ~observed:false) with Db.Sql_error _ -> ()));
            server_crash t
        | _, Fault.Response -> (
            (* The request reached the server and was executed; only the
               reply vanished.  An error reply is lost along with it. *)
            try ignore (run ~observed:false) with Db.Sql_error _ -> ())
        | _, (Fault.Request | Fault.Mid_batch _) -> ());
        Link.charge_failure t.link ~queries ~bytes:req_bytes failure;
        breaker_failure t;
        if attempt >= t.retry.max_attempts then
          raise
            (Retries_exhausted
               { attempts = attempt; last = Fault.failure_label failure })
        else begin
          Stats.record_retry (stats t);
          backoff t attempt;
          go (attempt + 1)
        end
  in
  go 1

(* --- simple protocol ----------------------------------------------------- *)

let execute t stmt =
  match Link.fault t.link with
  | None ->
      let outcome =
        try eng_exec t stmt
        with Db.Sql_error msg ->
          (* A failed statement still consumed a round trip. *)
          Sloth_net.Link.round_trip t.link ~queries:1
            ~bytes:(request_bytes [ stmt ] + 16);
          charge_db t (eng_cost t).fixed_ms;
          raise (Server_error msg)
      in
      Sloth_net.Link.round_trip t.link ~queries:1
        ~bytes:(request_bytes [ stmt ] + Rs.size_bytes outcome.rs);
      charge_db t outcome.cost_ms;
      charge_app t ~stmts:1 ~rows:(Rs.num_rows outcome.rs);
      outcome
  | Some fault -> (
      let run ~observed:_ =
        let o = eng_exec t stmt in
        ([ o ], o.cost_ms, Rs.num_rows o.rs, Rs.size_bytes o.rs)
      in
      match
        resilient t fault ~queries:1 ~req_bytes:(request_bytes [ stmt ])
          ~error_db_ms:(eng_cost t).fixed_ms ~run
      with
      | [ o ] -> o
      | _ -> assert false)

let execute_sql t sql =
  match Sloth_sql.Parser.parse sql with
  | stmt -> execute t stmt
  | exception Sloth_sql.Parser.Error msg -> raise (Server_error msg)

let query t sql = (execute_sql t sql).rs

(* --- batch protocol ------------------------------------------------------ *)

let is_txn_control = function
  | Sloth_sql.Ast.Begin_txn | Sloth_sql.Ast.Commit | Sloth_sql.Ast.Rollback ->
      true
  | _ -> false

(* Execute the first [k] statements of a batch inside a transaction that is
   never committed — the shape of a server that died mid-batch.  None of
   the work reaches the WAL (redo records are emitted at commit), so
   recovery lands on the pre-batch state. *)
let abandoned_exec t stmts k =
  let k = min k (List.length stmts) in
  if k > 0 && not (List.exists is_txn_control stmts) then begin
    try
      ignore (eng_exec t Sloth_sql.Ast.Begin_txn);
      List.iteri (fun i s -> if i < k then ignore (eng_exec t s)) stmts
    with Db.Sql_error _ -> ()
  end

(* Server-side execution of a batch: reads run in parallel, writes
   sequentially.  A write-containing batch (without explicit transaction
   control) executes atomically — a mid-batch error rolls every earlier
   statement of the batch back.  When [token] is provided and the batch
   writes, the outcomes are stored under it so a retransmission of the same
   batch is answered from the table instead of re-applied (exactly-once). *)
let run_batch t stmts ~token () =
  match token with
  | Some k when Hashtbl.mem t.applied k ->
      let outcomes = Hashtbl.find t.applied k in
      let rows =
        List.fold_left (fun acc (o : Db.outcome) -> acc + Rs.num_rows o.rs) 0
          outcomes
      in
      let resp =
        List.fold_left (fun acc (o : Db.outcome) -> acc + Rs.size_bytes o.rs) 0
          outcomes
      in
      (* replay: the server just looks the batch up *)
      (outcomes, (eng_cost t).fixed_ms, rows, resp)
  | Some k when eng_token_applied t k ->
      (* The outcome cache died with the server, but the WAL proves the
         batch committed: acknowledge without re-executing.  The original
         result sets are gone — a durable ack carries only "applied". *)
      let ack =
        List.map
          (fun _ : Db.outcome ->
            {
              Db.rs = Rs.empty;
              rows_affected = 0;
              cost_ms = (eng_cost t).fixed_ms;
            })
          stmts
      in
      (ack, (eng_cost t).fixed_ms, 0, 16)
  | Some k when Hashtbl.mem t.admitted k ->
      (* The token was seen before but its outcome was evicted from the
         bounded window and no durable record exists.  Re-applying would
         break exactly-once; answering from thin air would lie.  Refuse. *)
      raise
        (Db.Sql_error
           (Printf.sprintf "idempotency replay-window miss for token %s" k))
  | _ ->
      let has_write = List.exists Sloth_sql.Ast.is_write stmts in
      (* Whole-batch execution on the server: consecutive reads are planned
         together, so duplicates collapse and compatible scans are shared. *)
      let exec_all () = eng_exec_batch t stmts in
      let outcomes =
        if has_write && not (List.exists is_txn_control stmts) then
          eng_atomically ?token t exec_all
        else exec_all ()
      in
      (match token with
      | Some k when has_write -> remember_applied t k outcomes
      | _ -> ());
      (* Reads run in parallel on the server; writes run sequentially. *)
      let read_costs, write_cost =
        List.fold_left2
          (fun (reads, writes) stmt (o : Db.outcome) ->
            if Sloth_sql.Ast.is_write stmt then (reads, writes +. o.cost_ms)
            else (o.cost_ms :: reads, writes))
          ([], 0.0) stmts outcomes
      in
      let db_ms =
        Cost.batch_ms (eng_cost t) (List.rev read_costs) +. write_cost
      in
      let rows =
        List.fold_left (fun acc (o : Db.outcome) -> acc + Rs.num_rows o.rs) 0
          outcomes
      in
      let resp =
        List.fold_left (fun acc (o : Db.outcome) -> acc + Rs.size_bytes o.rs) 0
          outcomes
      in
      (outcomes, db_ms, rows, resp)

let execute_batch ?token t stmts =
  match stmts with
  | [] -> [] (* the documented guarantee: no round trip, no cost *)
  | _ -> (
      let nq = List.length stmts in
      let req_bytes = request_bytes stmts in
      let run = run_batch t stmts ~token in
      match Link.fault t.link with
      | None -> (
          match run () with
          | outcomes, db_ms, rows, resp_bytes ->
              Sloth_net.Link.round_trip t.link ~queries:nq
                ~bytes:(req_bytes + resp_bytes);
              charge_db t db_ms;
              charge_app t ~stmts:nq ~rows;
              outcomes
          | exception Db.Sql_error msg ->
              Sloth_net.Link.round_trip t.link ~queries:nq
                ~bytes:(req_bytes + 16);
              raise (Server_error msg))
      | Some fault ->
          resilient t fault ~queries:nq ~req_bytes ~error_db_ms:0.0
            ~partial:(fun k -> abandoned_exec t stmts k)
            ~run:(fun ~observed:_ -> run ()))

let execute_batch_sql t sqls =
  let stmts =
    List.map
      (fun sql ->
        match Sloth_sql.Parser.parse sql with
        | stmt -> stmt
        | exception Sloth_sql.Parser.Error msg -> raise (Server_error msg))
      sqls
  in
  execute_batch t stmts

(* --- asynchronous (prefetch) protocol ------------------------------------ *)

type async_handle = {
  outcome_async : Db.outcome;
  ready_at : float;  (* absolute virtual time when the response lands *)
  mutable awaited : bool;
}

let async_pool_size = ref 4

(* One in-flight query per pooled connection: [slots.(i)] is the time at
   which connection [i] becomes free again. *)
let slots_for t =
  if Array.length t.slots <> max 1 !async_pool_size then
    t.slots <- Array.make (max 1 !async_pool_size) neg_infinity;
  t.slots

let execute_async t stmt =
  let outcome =
    try eng_exec t stmt
    with Db.Sql_error msg -> raise (Server_error msg)
  in
  (* The request goes out on the first free pooled connection; the response
     is due one round trip plus server execution after that.  The clock
     does not advance: the application keeps computing while the query is
     in flight — but parallelism is bounded by the pool, unlike a Sloth
     batch, which ships everything in one request. *)
  let bytes = request_bytes [ stmt ] + Rs.size_bytes outcome.rs in
  Sloth_net.Stats.record_round_trip (stats t) ~queries:1 ~bytes;
  charge_app t ~stmts:1 ~rows:(Rs.num_rows outcome.rs);
  let slots = slots_for t in
  let best = ref 0 in
  Array.iteri (fun i free -> if free < slots.(!best) then best := i) slots;
  let depart = Float.max (Sloth_net.Vclock.now (clock t)) slots.(!best) in
  let ready_at =
    depart
    +. Sloth_net.Link.rtt_ms t.link
    +. Sloth_net.Link.transfer_ms t.link ~bytes
    +. outcome.cost_ms
  in
  slots.(!best) <- ready_at;
  { outcome_async = outcome; ready_at; awaited = false }

let await t h =
  if not h.awaited then begin
    h.awaited <- true;
    let now = Sloth_net.Vclock.now (clock t) in
    if now < h.ready_at then
      Sloth_net.Vclock.advance (clock t) Sloth_net.Vclock.Network
        (h.ready_at -. now)
  end;
  h.outcome_async
