module Admission = Sloth_server.Admission
module Des = Sloth_net.Des

exception Parse_error of string

type handle = {
  h_fut : Admission.reply Des.Future.t;
  h_submitted_at : float;
}

type t = {
  ses : Admission.session;
  sim : Des.t;
  mutable submitted : int;
  mutable completed : int;
  mutable errors : int;
  mutable rev_latencies : float list;
}

let connect ?rtt_ms ?fault server =
  {
    ses = Admission.open_session ?rtt_ms ?fault server;
    sim = Admission.sim server;
    submitted = 0;
    completed = 0;
    errors = 0;
    rev_latencies = [];
  }

let id t = Admission.session_id t.ses

let submit t ?token stmts =
  let fut = Admission.submit t.ses ?token stmts in
  t.submitted <- t.submitted + 1;
  let h = { h_fut = fut; h_submitted_at = Des.now t.sim } in
  (* Latency is recorded whether or not the caller ever awaits: the batch
     completed when its reply landed, not when somebody looked. *)
  Des.Future.on_resolve fut (fun r ->
      t.completed <- t.completed + 1;
      (match r with Error _ -> t.errors <- t.errors + 1 | Ok _ -> ());
      t.rev_latencies <- (Des.now t.sim -. h.h_submitted_at) :: t.rev_latencies);
  h

let submit_sql t ?token sqls =
  let stmts =
    List.map
      (fun sql ->
        match Sloth_sql.Parser.parse sql with
        | stmt -> stmt
        | exception Sloth_sql.Parser.Error msg -> raise (Parse_error msg))
      sqls
  in
  submit t ?token stmts

let await h k = Des.Future.on_resolve h.h_fut k
let peek h = Des.Future.peek h.h_fut

let submitted t = t.submitted
let completed t = t.completed
let errors t = t.errors
let reconnects t = Admission.session_reconnects t.ses
let latencies t = List.rev t.rev_latencies
