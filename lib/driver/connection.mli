(** Client connection to a (simulated) remote database server.

    Two protocols are provided, mirroring the paper's Sec. 5:

    - {!execute}: the standard driver — one statement per round trip.
    - {!execute_batch}: the Sloth batch driver extension — many statements
      in a single round trip; the server runs the read statements in
      parallel and the writes sequentially in order.

    Every call charges the connection's virtual clock: the Network category
    for the round trip and payload, the Db category for server-side
    execution.

    {b Resilience.}  When a {!Sloth_net.Fault.t} is installed on the link,
    both protocols consult it per round trip and retry failed trips under
    the connection's {!Retry_policy}: bounded exponential backoff with
    deterministic jitter, all of it charged to the virtual clock, plus a
    circuit breaker that opens after a run of consecutive failures and
    lets a half-open probe through after a cooldown.  A trip whose retry
    budget is exhausted (or that arrives while the breaker is open) raises
    {!Retries_exhausted} instead of hanging.  Write batches passed an
    idempotency [token] are applied exactly once even when a response is
    lost and the batch retransmitted: the simulated server remembers the
    token and replays the stored outcomes.  Without a fault plan the
    behaviour (and timing) is exactly the fault-free driver's.

    {b Multi-session serving.}  A connection is synchronous and owns its
    database: one client, one blocking round trip at a time.  To run many
    concurrent clients against one server — with reads coalesced {e across}
    sessions — use {!Session} (non-blocking [submit]/[await] futures on a
    {!Sloth_net.Des} simulation) against a {!Sloth_server.Admission.t}. *)

type t

exception Server_error of string
(** Surfaced [Database.Sql_error]s.  Time for the failed round trip is still
    charged, like a real wire error.  Never retried: the wire worked, the
    statement is bad. *)

exception Retries_exhausted of { attempts : int; last : string }
(** The round trip failed [attempts] times (the last failure is named) and
    the retry budget ran out — or the circuit breaker was open. *)

module Retry_policy = Sloth_net.Retry_policy
(** The shared retry/backoff/circuit-breaker policy (one type across the
    driver, the admission layer and the replication shipper); the driver
    starts on {!Sloth_net.Retry_policy.default}. *)

val create : Sloth_storage.Database.t -> Sloth_net.Link.t -> t

val create_sharded : Sloth_storage.Shard.t -> Sloth_net.Link.t -> t
(** A connection whose server side is a sharded deployment: batches route
    through {!Sloth_storage.Shard} (hash partitioning + two-phase commit)
    instead of a single engine.  The protocol machinery — retries,
    idempotency tokens, crash simulation — is identical; {!server_crash}
    crashes and recovers the whole deployment, coordinator first. *)

val app_cost_per_stmt_ms : float ref
(** Client-side CPU per statement: driver marshalling, ORM hydration,
    framework bookkeeping (default 0.55 ms — calibrated so the page-load
    time breakdown matches the paper's Fig. 8 proportions). *)

val app_cost_per_row_ms : float ref
(** Client-side CPU per returned row (default 0.02 ms). *)

val link : t -> Sloth_net.Link.t
val clock : t -> Sloth_net.Vclock.t
val stats : t -> Sloth_net.Stats.t
val database : t -> Sloth_storage.Database.t
(** The backing engine — shard 0's engine for a sharded connection. *)

val sharding : t -> Sloth_storage.Shard.t option

val retry_policy : t -> Retry_policy.t
val set_retry_policy : t -> Retry_policy.t -> unit

val breaker_state : t -> [ `Closed | `Open | `Half_open ]
(** Current circuit-breaker state, for tests and diagnostics. *)

val idempotency_window : t -> int
(** Capacity of the server's idempotency outcome cache (default 512). *)

val set_idempotency_window : t -> int -> unit
(** Bound the idempotency table: when more than this many tokens are
    cached, the oldest (FIFO) are evicted.  A retransmission of an evicted
    token whose batch has no durable WAL record is answered with a
    {!Server_error} ("replay-window miss") rather than silently re-applied
    — an exactly-once guarantee the server can no longer honour must fail
    loudly.  Raises [Invalid_argument] for [n < 1]. *)

val server_crash : t -> unit
(** Simulate the server process dying and restarting: the volatile
    idempotency cache is lost and the database recovers from its
    checkpoint + WAL ({!Sloth_storage.Database.crash_restart}).  Injected
    automatically when an installed fault plan decides
    [Fail (Server_crash, _)]; exposed for tests and experiments. *)

val execute : t -> Sloth_sql.Ast.stmt -> Sloth_storage.Database.outcome
val execute_sql : t -> string -> Sloth_storage.Database.outcome

val query : t -> string -> Sloth_storage.Result_set.t

val execute_batch :
  ?token:string ->
  t ->
  Sloth_sql.Ast.stmt list ->
  Sloth_storage.Database.outcome list
(** Empty batches cost nothing and perform no round trip.

    A batch containing writes (and no explicit BEGIN/COMMIT/ROLLBACK)
    executes atomically on the server: a mid-batch error rolls back the
    statements already applied before surfacing as {!Server_error}.

    [token] is a batch idempotency token: if a write-containing batch with
    this token was already processed (its response may have been lost), the
    server replays the stored outcomes instead of executing again. *)

val execute_batch_sql :
  t -> string list -> Sloth_storage.Database.outcome list

(** {2 Asynchronous execution}

    The prefetching baseline (Ramachandra et al., discussed in the paper's
    Sec. 1) hides latency by issuing queries as soon as their parameters are
    known and overlapping the round trip with computation.  [execute_async]
    starts a query without blocking virtual time; [await] charges only the
    part of the round trip that computation did not cover. *)

type async_handle

val async_pool_size : int ref
(** Connections available for outstanding asynchronous queries
    (default 4). *)

val execute_async : t -> Sloth_sql.Ast.stmt -> async_handle
(** Issue the statement now.  Counts a round trip and the per-statement
    client cost; the wire-and-server time is only charged when awaited. *)

val await : t -> async_handle -> Sloth_storage.Database.outcome
(** Block (advance the clock) until the response would have arrived:
    [max 0 (ready_time - now)], attributed to the Network category.
    Idempotent. *)
