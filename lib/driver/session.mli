(** Non-blocking client sessions against the asynchronous server.

    Where {!Connection} is the paper's synchronous driver — one client, one
    blocking round trip at a time, virtual time charged on a private clock —
    a [Session] is one of many concurrent clients of a
    {!Sloth_server.Admission.t}, all sharing that server's
    {!Sloth_net.Des} simulation.  {!submit} sends a batch and returns
    immediately; the reply arrives later in simulated time and resolves the
    handle's future.  Splitting submit from await is what lets the server
    coalesce reads {e across} clients while each client's page computation
    overlaps its round trips.

    The session records completion latency for every batch (submission to
    reply arrival), which is what the served-throughput experiment
    reports. *)

type t

exception Parse_error of string
(** Raised by {!submit_sql} on malformed SQL — a client-side error: nothing
    was sent. *)

type handle
(** One in-flight (or completed) batch. *)

val connect :
  ?rtt_ms:float -> ?fault:Sloth_net.Fault.t -> Sloth_server.Admission.t -> t
(** Open a session ([rtt_ms] defaults to 0.5; [fault] injects per-attempt
    delivery failures, retried by the server's admission protocol). *)

val id : t -> int

val submit :
  t -> ?token:string -> Sloth_sql.Ast.stmt list -> handle
(** Send a batch without blocking: simulated time does not advance here.
    [token] makes a write batch idempotent under retransmission (tagged
    with the session id server-side). *)

val submit_sql : t -> ?token:string -> string list -> handle

val await : handle -> (Sloth_server.Admission.reply -> unit) -> unit
(** Continuation-passing await: [k] runs (via the event calendar) when the
    reply has arrived — immediately, if it already has. *)

val peek : handle -> Sloth_server.Admission.reply option
(** Non-blocking poll. *)

val submitted : t -> int
val completed : t -> int
val errors : t -> int

val reconnects : t -> int
(** Delivery attempts this session re-drove after a server crash (or while
    the server was down): each one burned a timeout, backed off, and
    retransmitted its batch to the recovered incarnation. *)

val latencies : t -> float list
(** Completion latency (ms) of every completed batch, in completion
    order. *)
