module Conn = Sloth_driver.Connection
module Rs = Sloth_storage.Result_set

let log_src = Logs.Src.create "sloth.query_store" ~doc:"Query store batching"

type query_id = int

type flush_policy = On_demand | At_size of int

type event =
  | Registered of query_id * string
  | Dedup_hit of query_id * string
  | Write_through of query_id * string
  | Batch_sent of (query_id * string) list
  | Result_served of query_id
  | Query_poisoned of query_id * string

exception Query_failed of query_id * string

type entry = {
  stmt : Sloth_sql.Ast.stmt;
  sql : string;  (* canonical text, for display and tracing *)
  key : string;  (* normalized canonical text, the dedup key *)
  mutable result : Sloth_storage.Database.outcome option;
  mutable error : string option;  (* isolated poison query, or lost batch *)
}

type t = {
  conn : Conn.t;
  policy : flush_policy;
  entries : (query_id, entry) Hashtbl.t;
  mutable batch : query_id list;  (* pending, newest first *)
  mutable next_id : int;
  mutable next_token : int;
  mutable batches_sent : int;
  mutable max_batch_size : int;
  mutable registered : int;
  mutable degraded_batches : int;
  mutable poisoned : int;
  mutable tracer : (event -> unit) option;
}

let create ?(policy = On_demand) conn =
  {
    conn;
    policy;
    entries = Hashtbl.create 64;
    batch = [];
    next_id = 0;
    next_token = 0;
    batches_sent = 0;
    max_batch_size = 0;
    registered = 0;
    degraded_batches = 0;
    poisoned = 0;
    tracer = None;
  }

let connection t = t.conn
let policy t = t.policy
let set_tracer t tracer = t.tracer <- tracer
let emit t event = match t.tracer with Some f -> f event | None -> ()

let entry t id = Hashtbl.find t.entries id

let fresh_id t stmt sql =
  let id = t.next_id in
  t.next_id <- id + 1;
  let key = Sloth_sql.Normalize.key stmt in
  Hashtbl.replace t.entries id { stmt; sql; key; result = None; error = None };
  id

let fresh_token t =
  let k = t.next_token in
  t.next_token <- k + 1;
  Printf.sprintf "qs-batch-%d" k

let fill t ids outcomes =
  List.iter2 (fun id outcome -> (entry t id).result <- Some outcome) ids outcomes

let stmts_of t ids = List.map (fun id -> (entry t id).stmt) ids

(* Bisect an all-read batch that the server rejected: halve until the poison
   query (or queries) are isolated, fail only those ids, serve the rest.
   Infrastructure failures ([Retries_exhausted]) propagate — with the link
   down there is nothing to isolate. *)
let rec degrade t ids =
  match ids with
  | [] -> ()
  | [ id ] -> (
      let e = entry t id in
      match Conn.execute_batch t.conn [ e.stmt ] with
      | [ outcome ] -> e.result <- Some outcome
      | _ -> assert false
      | exception Conn.Server_error msg ->
          e.error <- Some msg;
          t.poisoned <- t.poisoned + 1;
          Logs.warn ~src:log_src (fun m ->
              m "poison query isolated [Q%d]: %s" id msg);
          emit t (Query_poisoned (id, msg)))
  | _ ->
      let n = List.length ids in
      let left = List.filteri (fun i _ -> i < n / 2) ids in
      let right = List.filteri (fun i _ -> i >= n / 2) ids in
      attempt t left;
      attempt t right

and attempt t ids =
  match ids with
  | [] -> ()
  | _ -> (
      match Conn.execute_batch t.conn (stmts_of t ids) with
      | outcomes -> fill t ids outcomes
      | exception Conn.Server_error _ -> degrade t ids)

let send t ids =
  match ids with
  | [] -> ()
  | _ ->
      let ids = List.rev ids in
      Logs.debug ~src:log_src (fun m ->
          m "shipping batch of %d queries" (List.length ids));
      emit t (Batch_sent (List.map (fun id -> (id, (entry t id).sql)) ids));
      let stmts = stmts_of t ids in
      let has_write = List.exists Sloth_sql.Ast.is_write stmts in
      (match
         if has_write then
           Conn.execute_batch ~token:(fresh_token t) t.conn stmts
         else Conn.execute_batch t.conn stmts
       with
      | outcomes -> fill t ids outcomes
      | exception Conn.Server_error _ when not has_write ->
          (* Graceful degradation: retry the reads by bisection so only the
             poison query fails; every other registered read is served. *)
          t.degraded_batches <- t.degraded_batches + 1;
          degrade t ids
      | exception Conn.Server_error msg ->
          (* A write-containing flush fails whole (the batch driver already
             rolled its statements back); the write's registrant sees the
             error, and the reads that rode along are marked lost. *)
          List.iter (fun id -> (entry t id).error <- Some msg) ids;
          raise (Conn.Server_error msg));
      t.batches_sent <- t.batches_sent + 1;
      let n = List.length ids in
      if n > t.max_batch_size then t.max_batch_size <- n

let flush t =
  let ids = t.batch in
  t.batch <- [];
  send t ids

let register t stmt =
  t.registered <- t.registered + 1;
  let sql = Sloth_sql.Printer.to_string stmt in
  if Sloth_sql.Ast.is_write stmt then begin
    (* Writes are never deferred: flush pending reads together with the
       write in a single round trip (reads first, preserving order). *)
    let id = fresh_id t stmt sql in
    emit t (Write_through (id, sql));
    let ids = id :: t.batch in
    t.batch <- [];
    send t ids;
    id
  end
  else
    (* Dedup against the *pending* batch only, keyed on the normalized
       canonical form: reads that differ in conjunct order or the operand
       order of commutative operators batch as one query.  A poisoned or
       lost query is never pending again, so re-registering its SQL builds
       a fresh entry. *)
    let key = Sloth_sql.Normalize.key stmt in
    let dup =
      List.find_opt (fun id -> String.equal (entry t id).key key) t.batch
    in
    match dup with
    | Some id ->
        emit t (Dedup_hit (id, sql));
        id
    | None ->
        let id = fresh_id t stmt sql in
        emit t (Registered (id, sql));
        t.batch <- id :: t.batch;
        (match t.policy with
        | At_size k when List.length t.batch >= k -> flush t
        | _ -> ());
        id

let register_sql t sql = register t (Sloth_sql.Parser.parse sql)

let outcome_of t id =
  let e = entry t id in
  (match (e.result, e.error) with
  | None, None -> flush t
  | Some _, _ -> emit t (Result_served id)
  | None, Some _ -> ());
  let e = entry t id in
  match (e.result, e.error) with
  | Some outcome, _ -> outcome
  | None, Some msg -> raise (Query_failed (id, msg))
  | None, None ->
      (* The id was pending but the flush above did not resolve it: its
         batch was lost to an earlier infrastructure failure. *)
      let msg = "batch lost before a result arrived" in
      e.error <- Some msg;
      raise (Query_failed (id, msg))

let result t id = (outcome_of t id).rs
let rows_affected t id = (outcome_of t id).rows_affected

let is_available t id = (entry t id).result <> None
let error_of t id = (entry t id).error
let pending t = List.length t.batch
let batches_sent t = t.batches_sent
let max_batch_size t = t.max_batch_size
let registered t = t.registered
let degraded_batches t = t.degraded_batches
let poisoned t = t.poisoned
let sql_of_id t id = (entry t id).sql

let pp_event ppf = function
  | Registered (id, sql) -> Format.fprintf ppf "register [Q%d] %s" id sql
  | Dedup_hit (id, sql) -> Format.fprintf ppf "dedup -> [Q%d] %s" id sql
  | Write_through (id, sql) ->
      Format.fprintf ppf "write-through [Q%d] %s" id sql
  | Batch_sent batch ->
      Format.fprintf ppf "batch sent (%d):" (List.length batch);
      List.iter (fun (id, sql) -> Format.fprintf ppf " [Q%d] %s;" id sql) batch
  | Result_served id -> Format.fprintf ppf "cached result [Q%d]" id
  | Query_poisoned (id, msg) ->
      Format.fprintf ppf "poison isolated [Q%d]: %s" id msg
