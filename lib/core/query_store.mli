(** The query store (paper Sec. 3.3): the batching mechanism of extended
    lazy evaluation.

    Queries issued by the application are *registered* rather than executed;
    they accumulate in the current batch.  When any registered result is
    demanded, the whole batch ships to the database in a single round trip
    (the batch driver executes the reads in parallel).  Write statements are
    never deferred: registering one flushes the pending reads and executes
    the write in the same round trip, preserving ordering and transaction
    boundaries.

    {b Failure handling.}  A batch is not a single point of failure.  When
    the server rejects an all-read batch, the store isolates the poison
    query by bisection: only its id fails (raising {!Query_failed} when its
    result is demanded), every other registered read is still served.
    Write-containing flushes are retried whole by the driver under a batch
    idempotency token, so a retried write is applied exactly once; if the
    write ultimately fails, the batch was rolled back server-side and the
    error propagates to the registrant.  Infrastructure failures
    ({!Sloth_driver.Connection.Retries_exhausted}) propagate — there is
    nothing to isolate when the link is down. *)

type t
type query_id

exception Query_failed of query_id * string
(** Demanding the result of a query that failed individually: it was
    isolated as its batch's poison query, or its batch was lost. *)

type flush_policy =
  | On_demand
      (** the paper's default: ship the batch when a result is needed *)
  | At_size of int
      (** the Sec. 6.7 alternative: also ship eagerly whenever the pending
          batch reaches the given size *)

val create : ?policy:flush_policy -> Sloth_driver.Connection.t -> t
val connection : t -> Sloth_driver.Connection.t
val policy : t -> flush_policy

val register : t -> Sloth_sql.Ast.stmt -> query_id
(** Register a statement.

    Reads: if an identical (canonically printed) query is already pending in
    the current batch, its id is returned — the paper's deduplication rule.
    Re-registering a query whose result is already cached creates a fresh
    pending entry (results may have been invalidated by writes in between;
    the ORM layer, not the store, decides on entity-level caching).  A
    failed query is likewise never deduplicated against: re-registering its
    SQL creates a fresh pending entry.

    Writes: the pending reads and the write are sent immediately in one
    round trip; the write's outcome is cached under the returned id. *)

val register_sql : t -> string -> query_id

val result : t -> query_id -> Sloth_storage.Result_set.t
(** Fetch the result for an id, flushing the current batch in one round trip
    if it is not yet available.  Raises {!Query_failed} if this query was
    isolated as a poison query (or its batch was lost). *)

val rows_affected : t -> query_id -> int
(** For write statements, after execution.  Raises {!Query_failed} like
    {!result}. *)

val is_available : t -> query_id -> bool

val error_of : t -> query_id -> string option
(** The failure recorded for an id, if any. *)

val pending : t -> int
(** Number of queries in the current (unsent) batch. *)

val flush : t -> unit
(** Force the current batch out, if non-empty. *)

val batches_sent : t -> int
val max_batch_size : t -> int
val registered : t -> int
(** Total register calls (including deduplicated hits). *)

val degraded_batches : t -> int
(** Batches whose failure was degraded to per-query isolation. *)

val poisoned : t -> int
(** Queries individually failed after bisection. *)

val sql_of_id : t -> query_id -> string
(** Canonical SQL for an id — used by logging and the Fig. 2 style trace. *)

(** {2 Tracing}

    An optional event stream over the store's life cycle, enough to
    reconstruct the paper's Fig. 2 operational diagram.  Events fire in
    causal order; [Batch_sent] carries the batch in registration order. *)

type event =
  | Registered of query_id * string  (** a new query joined the batch *)
  | Dedup_hit of query_id * string
      (** a registration matched a pending query *)
  | Write_through of query_id * string
      (** a write forced the batch out immediately *)
  | Batch_sent of (query_id * string) list
  | Result_served of query_id  (** a cached result was handed out *)
  | Query_poisoned of query_id * string
      (** bisection isolated this query as its batch's poison *)

val set_tracer : t -> (event -> unit) option -> unit

val pp_event : Format.formatter -> event -> unit
