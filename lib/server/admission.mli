(** Server-side admission control for asynchronous multi-session serving.

    The synchronous driver ({!Sloth_driver.Connection}) owns its database:
    one client, one blocking round trip at a time.  This module puts a
    server in front of the database instead.  Any number of {e sessions}
    submit statement batches concurrently on a shared
    {!Sloth_net.Des} simulation; each submission returns immediately with a
    {!Sloth_net.Des.Future.t} that resolves when the reply lands back at
    the client.

    {b Cross-client sharing.}  Read-only batches are not executed on
    arrival: they wait in an admission queue for up to [window_ms], and
    everything waiting is then flushed through
    {!Sloth_storage.Database.exec_reads} as {e one} multi-query group.
    Statements from different sessions that normalize to the same canonical
    form execute once, and plans that resolve to bare sequential scans of
    the same table share a single heap pass — the SharedDB effect, across
    clients instead of within one batch.  Under load the effect compounds:
    while the executor is busy, arriving reads pile into the queue and the
    next flush coalesces them all.

    {b Barriers.}  A batch containing a write or transaction control
    executes alone, in arrival order, exactly as the per-session driver
    would run it: wrapped in {!Sloth_storage.Database.atomically} when it
    writes without explicit transaction control.  Transactions must be
    batch-scoped — a batch that leaves a transaction open is rolled back
    and answered with an error, because a cross-batch transaction would
    block every other session.

    {b Fairness / starvation policy.}  Admission is FIFO.  A flush drains
    at most [max_coalesce] batches (the leftovers flush immediately after),
    so one chatty session cannot monopolize a flush, and barriers queue
    FCFS on the executor with the flushes, so neither reads nor writes can
    starve: every batch starts executing after at most one window plus the
    work admitted ahead of it.

    {b Faults and idempotency.}  A session may carry a
    {!Sloth_net.Fault.t}; every delivery attempt consults it.  Failed
    attempts are retransmitted with bounded exponential backoff, all in
    simulated time.  Write batches should carry an idempotency token: the
    token is tagged with the session id, and a retransmission of an
    already-executed batch (its response was lost) is answered from the
    server's outcome cache instead of being re-applied — the same
    exactly-once contract as the synchronous driver, now per session.  The
    cache is a bounded FIFO window ({!idempotency_window}); a token evicted
    from it is answered with a replay-window-miss error unless the WAL can
    vouch for it (see below), never silently re-applied.

    {b Crash-restart.}  [Server_crash] decisions kill the server process
    for real.  Every in-flight batch — queued readers, a coalesced flush
    awaiting its acks, the barrier owner — is {e torn}: its client sees
    only a burned timeout, reconnects, and retransmits.  Volatile state
    (the reply cache, the admitted-token set, the admission queue) dies
    with the process; after [restart_after_ms] of downtime the database is
    rebuilt from checkpoint + WAL
    ({!Sloth_storage.Database.crash_restart}), the calendar is charged
    {!Sloth_storage.Cost.recovery_ms} for the replay, and the server moves
    through the state machine

    {v serving -> crashed -> recovering -> draining-redrive -> serving v}

    ([draining-redrive] is skipped when no torn batch is waiting).
    Re-driven write batches go through the durable idempotency path: a
    token the WAL proves committed is answered with a synthesized ack
    (empty result sets, zero rows affected) instead of being re-executed,
    so writes stay exactly-once across restarts.  Executions are
    log-annotated with their crash {e epoch}, so the serialization oracle
    spans restarts.

    {b Replication.}  With a {!Sloth_storage.Replication} shipper attached
    ([?replication]), three things change.  {e Writes} become synchronous
    quorum commits: a barrier's reply (and the executor slot it holds,
    which keeps the not-yet-replicated commit invisible to primary-served
    reads) waits until a quorum of followers acknowledge its LSN.
    {e Reads} gain a routing policy: each coalesced read batch may be
    served by the most caught-up follower whose applied LSN covers the
    session's last acknowledged write (session-level read-your-writes);
    batches no follower can serve yet fall back to the primary, which
    always can.  Routed groups run on per-replica executors, concurrently
    with the primary.  {e Crashes} become failovers: instead of rebuilding
    the primary in place, recovery promotes the most caught-up follower
    (which replays its own WAL tail), re-points every session at it, and
    re-drives torn batches through the durable idempotency path against
    the new primary.  Quorum-acked writes survive by construction — the
    promoted follower is at least as caught up as any acking quorum
    member; commits beyond its LSN were never acknowledged and die with
    the old timeline (recorded in {!failover_log} so the serial-replay
    oracle can discard exactly those executions).

    Everything — arrivals, windows, execution, replies, retries, crashes,
    recoveries — runs on the event calendar, so a multi-session schedule is
    exactly reproducible. *)

type t
(** The admission layer wrapping one database. *)

type session
(** One client's registration with the server. *)

type reply = (Sloth_storage.Database.outcome list, string) result
(** What a batch resolves to: per-statement outcomes in submission order,
    or the server's error message (the batch was rolled back). *)

type state =
  | Serving  (** normal operation *)
  | Crashed  (** the process is down; arrivals are lost *)
  | Recovering  (** rebuilding the database from checkpoint + WAL *)
  | Draining_redrive
      (** recovered, serving, and still waiting for sessions whose batches
          were torn by the crash to re-drive (or abandon) them *)

type entry = {
  e_session : int;  (** session id *)
  e_seq : int;  (** per-session submission number *)
  e_epoch : int;
      (** crash epoch of the incarnation that executed this batch: 0 until
          the first crash, bumped once per crash *)
  e_lsn : int;
      (** the executing database's LSN when this entry was logged: the
          snapshot a read observed (possibly a lagging replica's), the
          post-commit position of a write.  0 without durability.  Sorting
          retained entries by [(e_lsn, writes-before-reads)] linearizes
          replica-served reads into the primary's commit order — the
          LSN-interleaved serial-replay oracle. *)
  e_replica : int option;
      (** the replica that served this read batch; [None] = the primary *)
  e_stmts : Sloth_sql.Ast.stmt list;
  e_reads : bool;  (** a read-only batch *)
  mutable e_delivered : bool;
      (** this execution's reply reached the client (false when the
          response leg was lost — or torn by a crash — and the client had
          to retransmit) *)
}
(** One successfully executed batch, as recorded in the execution log. *)

type stats = {
  batches : int;  (** batches admitted (excluding empty ones) *)
  read_batches : int;
  flushes : int;  (** shared read flushes executed *)
  coalesced : int;  (** read batches that shared a flush with another *)
  max_flush : int;  (** largest number of batches in one flush *)
  rows_scanned : int;  (** heap rows examined by the read path *)
  zero_scan_reads : int;
      (** read statements answered without scanning (normalized duplicate
          of, or scan shared with, another statement — possibly another
          session's) *)
  retransmits : int;  (** delivery attempts that failed and were retried *)
  errors : int;  (** batches answered with [Error] *)
  crashes : int;  (** server crashes taken *)
  recoveries : int;  (** completed WAL+checkpoint recoveries *)
  torn_inflight : int;
      (** in-flight batches torn by a crash (failed over to their clients) *)
  redriven : int;  (** torn batches successfully re-driven after recovery *)
  durable_acks : int;
      (** re-driven tokens answered from the WAL's durable token registry
          (the write committed; only the ack was lost in the crash) *)
  failovers : int;  (** crashes recovered by promoting a replica *)
  replica_read_batches : int;  (** read batches served by a replica *)
  replica_rows_scanned : int;  (** heap rows those batches examined *)
  ryw_fallbacks : int;
      (** read batches forced to the primary because no replica had
          applied the session's last acknowledged write LSN yet *)
  ryw_violations : int;
      (** routing self-check: replica-served batches whose replica turned
          out to be behind the session's write floor at execution time.
          Must be 0 — anything else is a bug in the routing invariant. *)
  cache_hits : int;
      (** reads answered from the engine's cross-flush result cache
          (summed across shards when sharded) *)
  cache_misses : int;  (** cache probes that had to execute *)
  cache_invalidations : int;
      (** cached entries retired because a referenced table's version
          moved *)
  probe_sets_merged : int;
      (** index probes merged into a shared probe-set pass by the MQO
          plan-merge *)
  joins_shared : int;  (** join subplans served from a shared execution *)
  window_ms : float;
      (** the coalescing window currently in force (equal to the [create]
          argument unless adaptive bounds were given) *)
}

val create :
  sim:Sloth_net.Des.t ->
  db:Sloth_storage.Database.t ->
  ?window_ms:float ->
  ?window_bounds:float * float ->
  ?max_coalesce:int ->
  ?share:bool ->
  ?retry:Sloth_net.Retry_policy.t ->
  ?restart_after_ms:float ->
  ?idempotency_window:int ->
  ?replication:Sloth_storage.Replication.t ->
  ?sharding:Sloth_storage.Shard.t ->
  unit ->
  t
(** Defaults: [window_ms = 2.0] (how long an arriving read batch may wait
    for sharing partners), [window_bounds = None] (give
    [Some (floor, ceiling)] to make the window {e adaptive}: after every
    coalesced flush the server looks at how many batches shared it and what
    fraction of its reads came for free — deduped, shared or cache-hit, all
    reporting zero rows scanned — and grows the window by 25% toward the
    ceiling while sharing pays, or shrinks it by 25% toward the floor when
    batches arrive alone or the free-read rate drops below a quarter;
    raises [Invalid_argument] when [floor < 0] or [ceiling < floor]),
    [max_coalesce = 64] (fairness cap per flush),
    [share = true] (with [share = false] read batches execute on arrival,
    one {!Sloth_storage.Database.exec_reads} call each — exactly the
    per-session behaviour of the synchronous driver, kept as the
    experiment's "no cross-client sharing" arm),
    [retry = Sloth_net.Retry_policy.served] (25 attempts, backoff base
    1 ms doubling up to 16 ms), [restart_after_ms = 4.0] (downtime between
    a crash and the start of recovery), [idempotency_window = 512] (cached
    replies kept for token replay).  [replication] attaches a WAL shipper
    whose primary must be [db] (raises [Invalid_argument] otherwise); see
    the module preamble for what it changes.  [sharding] routes every
    execution through a {!Sloth_storage.Shard} router whose shard 0 must be
    [db] (raises [Invalid_argument] otherwise, and when combined with
    [replication] — a sharded deployment replicates {e per shard}, inside
    the router, via [Shard.create ~replicas_per_shard]): barriers
    two-phase-commit across the shards they touch, coalesced read flushes
    gather through the router, crash recovery runs the whole-process
    protocol (decision log first, then every shard's in-doubt resolution —
    by promotion when the shards are replicated), and durable-token
    re-drives consult all shards.

    With a {e replicated} shard router the admission layer additionally:
    holds no extra quorum wait (every shard commit is quorum-acked
    synchronously inside the router before control returns); records each
    session's per-shard LSN floor vector at write ack and re-checks it on
    every read ([ryw_violations] counts floors a later read found
    regressed — an acknowledged write lost in a promotion; must be 0);
    counts read flushes whose shard fetches were served by caught-up
    followers in [replica_read_batches]; and surfaces every promotion the
    router performs — mid-protocol or during whole-process recovery — in
    {!failover_log} and [failovers], re-pointing its shard-0 anchor at the
    promoted engine. *)

val sim : t -> Sloth_net.Des.t
val database : t -> Sloth_storage.Database.t

val sharding : t -> Sloth_storage.Shard.t option
(** The shard router this server fans out through, if any. *)

val open_session : ?rtt_ms:float -> ?fault:Sloth_net.Fault.t -> t -> session
(** Register a client.  [rtt_ms] (default 0.5) is this session's round-trip
    time to the server; [fault] injects per-attempt failures. *)

val session_id : session -> int
val server : session -> t

val session_reconnects : session -> int
(** Delivery attempts this session re-drove because the server crashed (or
    was down) with the attempt in flight. *)

val state : t -> state

val state_to_string : state -> string
(** ["serving"], ["crashed"], ["recovering"], ["draining-redrive"]. *)

val epoch : t -> int
(** Crash epoch: 0 until the first crash, then bumped once per crash. *)

val transitions : t -> (float * state) list
(** The server's state-machine history as [(sim-time, entered-state)]
    pairs, oldest first; starts with [(0.0, Serving)]. *)

val idempotency_window : t -> int

val set_idempotency_window : t -> int -> unit
(** Shrink or grow the reply-cache window (evicting oldest entries
    immediately when shrinking).  Raises [Invalid_argument] on [n < 1]. *)

val submit :
  session ->
  ?token:string ->
  Sloth_sql.Ast.stmt list ->
  reply Sloth_net.Des.Future.t
(** Non-blocking submission: the batch departs now, the future resolves
    when its reply arrives (simulated time passes in between).  An empty
    batch resolves immediately with [Ok []] and costs nothing.  [token] is
    an idempotency token, tagged with the session id before it reaches the
    server, so different sessions' tokens can never collide. *)

val stats : t -> stats

val current_window_ms : t -> float
(** The coalescing window a read batch arriving now would wait for —
    constant without [window_bounds], moving between the bounds with it. *)

val pp_stats : Format.formatter -> stats -> unit
(** Human-readable multi-line [key=value] rendering, for experiment
    output. *)

val replication : t -> Sloth_storage.Replication.t option

val session_write_lsn : session -> int
(** The session's read-your-writes floor: the highest LSN it holds an
    acknowledged write at. *)

val session_write_vector : session -> int list
(** Under replicated sharding, the session's per-shard floor vector: each
    shard primary's LSN at the session's last acknowledged write (empty
    before the first, or without a replicated shard router).  Every later
    read re-checks the current primaries against it — a regressed
    component counts an [ryw_violations]. *)

val failover_log : t -> (int * int) list
(** One [(epoch, cutoff_lsn)] pair per failover, oldest first: after the
    crash that opened [epoch], the promoted replica stood at [cutoff_lsn].
    An execution logged in an earlier epoch with [e_lsn > cutoff_lsn] was
    never acknowledged and its effects were discarded with the old
    timeline — the serial-replay oracle drops exactly those entries.

    Under replicated sharding there is one entry per {e shard} promotion
    (mid-protocol or in whole-process recovery), carrying the promoted
    shard primary's local LSN.  No executions are discarded in that mode:
    every acknowledged shard commit is quorum-durable before its ack, so
    the log is an audit trail, not a cutoff. *)

val log : t -> entry list
(** Every successfully executed batch in execution order — the
    serialization order of the multi-session schedule.  Replaying the log
    serially against an identically seeded database must reproduce every
    delivered result set and the final database fingerprint; the
    differential fuzz suite pins exactly that.  [e_epoch] is
    non-decreasing along the log, so the oracle can also check that no
    execution straddles a restart. *)
