module Db = Sloth_storage.Database
module Shard = Sloth_storage.Shard
module Repl = Sloth_storage.Replication
module Rs = Sloth_storage.Result_set
module Cost = Sloth_storage.Cost
module Des = Sloth_net.Des
module Fault = Sloth_net.Fault
module Retry_policy = Sloth_net.Retry_policy
module Ast = Sloth_sql.Ast

type reply = (Db.outcome list, string) result
type state = Serving | Crashed | Recovering | Draining_redrive

let state_to_string = function
  | Serving -> "serving"
  | Crashed -> "crashed"
  | Recovering -> "recovering"
  | Draining_redrive -> "draining-redrive"

type entry = {
  e_session : int;
  e_seq : int;
  e_epoch : int;
  e_lsn : int;
  e_replica : int option;
  e_stmts : Ast.stmt list;
  e_reads : bool;
  mutable e_delivered : bool;
}

type stats = {
  batches : int;
  read_batches : int;
  flushes : int;
  coalesced : int;
  max_flush : int;
  rows_scanned : int;
  zero_scan_reads : int;
  retransmits : int;
  errors : int;
  crashes : int;
  recoveries : int;
  torn_inflight : int;
  redriven : int;
  durable_acks : int;
  failovers : int;
  replica_read_batches : int;
  replica_rows_scanned : int;
  ryw_fallbacks : int;
  ryw_violations : int;
  cache_hits : int;
  cache_misses : int;
  cache_invalidations : int;
  probe_sets_merged : int;
  joins_shared : int;
  window_ms : float;
}

type batch = {
  b_session : session;
  b_seq : int;
  b_stmts : Ast.stmt list;
  b_selects : Ast.select list;  (* populated when the batch is read-only *)
  b_read : bool;
  b_token : string option;  (* already session-tagged *)
}

and session = {
  srv : t;
  id : int;
  rtt_ms : float;
  fault : Fault.t option;
  mutable next_seq : int;
  mutable reconnects : int;
  mutable last_write_lsn : int;
      (* highest LSN this session has an acknowledged write at — the
         read-your-writes floor for replica-served reads *)
  mutable last_write_vec : int array;
      (* per-shard floor vector under replicated sharding: each shard
         primary's LSN at this session's last acknowledged write.  A later
         read finding any primary below its floor means an acknowledged
         write vanished in a promotion — the armed RYW detector. *)
}

(* One delivery attempt that reached the server.  [a_deliver] is false when
   the fault plan decided the response leg is lost: the batch executes (and
   any token is recorded) but the client sees only its timeout.  [a_fail]
   is the client's view of a crash with this attempt in flight — no reply
   ever comes, so the client burns its timeout, reconnects and
   retransmits.  [a_entry] is the execution-log entry of this attempt's
   execution, if any, so a reply torn by a crash can be re-marked
   undelivered. *)
and arrival = {
  a_b : batch;
  a_extra : float;  (* injected latency, charged on the response leg *)
  a_deliver : bool;
  a_reply : reply -> unit;
  a_fail : unit -> unit;
  mutable a_entry : entry option;
}

and t = {
  sim : Des.t;
  mutable db : Db.t;  (* re-pointed to the promoted replica on failover *)
  mutable cur_window : float;  (* current coalescing window *)
  window_bounds : (float * float) option;
      (* (floor, ceiling): adapt [cur_window] to the recent sharing rate;
         [None] keeps the window fixed *)
  max_coalesce : int;
  share : bool;
  retry : Retry_policy.t;
  restart_after_ms : float;  (* downtime before recovery begins *)
  exec : Des.Resource.t;  (* the storage engine itself is single-threaded *)
  shard : Shard.t option;
      (* sharded storage: [db] is shard 0's engine, every execution fans
         out through the router instead *)
  repl : Repl.t option;  (* replication: quorum acks, read routing, failover *)
  replica_exec : (int, Des.Resource.t) Hashtbl.t;
      (* per-replica executors: each follower serves its flushes serially,
         but concurrently with the primary and the other followers *)
  read_q : arrival Queue.t;
  mutable flush_scheduled : bool;
  (* Volatile idempotency state: a bounded FIFO window of cached replies
     plus the set of every token ever admitted, so an evicted token can be
     refused (replay-window miss) instead of silently re-applied.  All of
     it dies with the process on a crash; only [Db.token_applied] spans
     restarts. *)
  applied : (string, reply) Hashtbl.t;  (* tagged token -> cached reply *)
  applied_order : string Queue.t;
  mutable applied_capacity : int;
  admitted : (string, unit) Hashtbl.t;
  (* Crash-restart machinery. *)
  mutable state : state;
  mutable epoch : int;  (* bumped at every crash; tears stale replies *)
  mutable rev_transitions : (float * state) list;
  torn : (int * int, unit) Hashtbl.t;  (* (session, seq) awaiting re-drive *)
  mutable next_session : int;
  mutable rev_log : entry list;
  mutable rev_failovers : (int * int) list;
      (* (post-crash epoch, promoted replica's LSN): commits of earlier
         epochs beyond that LSN were never acknowledged and are discarded
         with the old timeline *)
  mutable shard_fo_seen : int;
      (* how many of the shard router's promotions this layer has already
         surfaced in [rev_failovers] / [s_failovers] *)
  (* stats *)
  mutable s_batches : int;
  mutable s_read_batches : int;
  mutable s_flushes : int;
  mutable s_coalesced : int;
  mutable s_max_flush : int;
  mutable s_rows_scanned : int;
  mutable s_zero_scan : int;
  mutable s_retransmits : int;
  mutable s_errors : int;
  mutable s_crashes : int;
  mutable s_recoveries : int;
  mutable s_torn : int;
  mutable s_redriven : int;
  mutable s_durable_acks : int;
  mutable s_failovers : int;
  mutable s_replica_batches : int;
  mutable s_replica_rows : int;
  mutable s_ryw_fallbacks : int;
  mutable s_ryw_violations : int;
}

let create ~sim ~db ?(window_ms = 2.0) ?window_bounds ?(max_coalesce = 64)
    ?(share = true) ?(retry = Retry_policy.served) ?(restart_after_ms = 4.0)
    ?(idempotency_window = 512) ?replication ?sharding () =
  if max_coalesce < 1 then invalid_arg "Admission.create: max_coalesce";
  (match window_bounds with
  | Some (lo, hi) when lo < 0.0 || hi < lo ->
      invalid_arg "Admission.create: window_bounds"
  | _ -> ());
  if retry.Retry_policy.max_attempts < 1 then
    invalid_arg "Admission.create: retry.max_attempts";
  if idempotency_window < 1 then
    invalid_arg "Admission.create: idempotency_window";
  (match replication with
  | Some r when Repl.primary r != db ->
      invalid_arg "Admission.create: replication is attached to another db"
  | _ -> ());
  (match sharding with
  | Some _ when replication <> None ->
      (* a sharded deployment replicates per shard, inside the router:
         pass Shard.create ~replicas_per_shard, not a standalone shipper *)
      invalid_arg
        "Admission.create: a sharded deployment replicates per shard \
         (Shard.create ~replicas_per_shard); a standalone ?replication \
         shipper cannot be combined with ?sharding"
  | Some s when Shard.shard_db s 0 != db ->
      invalid_arg "Admission.create: sharding is attached to another db"
  | _ -> ());
  {
    sim;
    db;
    cur_window =
      (match window_bounds with
      | None -> window_ms
      | Some (lo, hi) -> Float.min hi (Float.max lo window_ms));
    window_bounds;
    max_coalesce;
    share;
    retry;
    restart_after_ms;
    exec = Des.Resource.create sim ~servers:1;
    shard = sharding;
    repl = replication;
    replica_exec = Hashtbl.create 4;
    read_q = Queue.create ();
    flush_scheduled = false;
    applied = Hashtbl.create 32;
    applied_order = Queue.create ();
    applied_capacity = idempotency_window;
    admitted = Hashtbl.create 32;
    state = Serving;
    epoch = 0;
    rev_transitions = [ (0.0, Serving) ];
    torn = Hashtbl.create 8;
    next_session = 0;
    rev_log = [];
    rev_failovers = [];
    shard_fo_seen = 0;
    s_batches = 0;
    s_read_batches = 0;
    s_flushes = 0;
    s_coalesced = 0;
    s_max_flush = 0;
    s_rows_scanned = 0;
    s_zero_scan = 0;
    s_retransmits = 0;
    s_errors = 0;
    s_crashes = 0;
    s_recoveries = 0;
    s_torn = 0;
    s_redriven = 0;
    s_durable_acks = 0;
    s_failovers = 0;
    s_replica_batches = 0;
    s_replica_rows = 0;
    s_ryw_fallbacks = 0;
    s_ryw_violations = 0;
  }

let sim t = t.sim
let database t = t.db
let sharding t = t.shard

(* Engine dispatch: a sharded server routes every execution through the
   shard router.  [t.db] (shard 0's engine) keeps serving the cost model —
   every shard shares it — and stays the replica-relative anchor, which
   sharding excludes anyway. *)
let eng_exec t s =
  match t.shard with Some sh -> Shard.exec sh s | None -> Db.exec t.db s

let eng_exec_batch t stmts =
  match t.shard with
  | Some sh -> Shard.exec_batch sh stmts
  | None -> Db.exec_batch t.db stmts

let eng_atomically ?token t f =
  match t.shard with
  | Some sh -> Shard.atomically ?token sh f
  | None -> Db.atomically ?token t.db f

let eng_in_txn t =
  match t.shard with Some sh -> Shard.in_txn sh | None -> Db.in_txn t.db

let eng_token_applied t k =
  match t.shard with
  | Some sh -> Shard.token_applied sh k
  | None -> Db.token_applied t.db k

let eng_lsn t =
  match t.shard with
  | Some sh -> Shard.current_lsn sh
  | None -> Db.current_lsn t.db

let open_session ?(rtt_ms = 0.5) ?fault t =
  let id = t.next_session in
  t.next_session <- id + 1;
  {
    srv = t;
    id;
    rtt_ms;
    fault;
    next_seq = 0;
    reconnects = 0;
    last_write_lsn = 0;
    last_write_vec = [||];
  }

let session_id s = s.id
let server s = s.srv
let session_reconnects s = s.reconnects
let state t = t.state
let epoch t = t.epoch
let transitions t = List.rev t.rev_transitions
let idempotency_window t = t.applied_capacity

let set_idempotency_window t n =
  if n < 1 then invalid_arg "Admission.set_idempotency_window";
  t.applied_capacity <- n;
  while Queue.length t.applied_order > n do
    Hashtbl.remove t.applied (Queue.pop t.applied_order)
  done

(* The engine's cumulative cache/sharing view: the shard router's sum, or
   the current primary's counters (after a failover this is the promoted
   replica — the dead reign's counters died with it). *)
let engine_read_stats t =
  match t.shard with
  | Some sh -> Shard.read_stats sh
  | None -> Db.read_stats t.db

let current_window_ms t = t.cur_window

let stats t =
  let rs = engine_read_stats t in
  {
    batches = t.s_batches;
    read_batches = t.s_read_batches;
    flushes = t.s_flushes;
    coalesced = t.s_coalesced;
    max_flush = t.s_max_flush;
    rows_scanned = t.s_rows_scanned;
    zero_scan_reads = t.s_zero_scan;
    retransmits = t.s_retransmits;
    errors = t.s_errors;
    crashes = t.s_crashes;
    recoveries = t.s_recoveries;
    torn_inflight = t.s_torn;
    redriven = t.s_redriven;
    durable_acks = t.s_durable_acks;
    failovers = t.s_failovers;
    replica_read_batches = t.s_replica_batches;
    replica_rows_scanned = t.s_replica_rows;
    ryw_fallbacks = t.s_ryw_fallbacks;
    ryw_violations = t.s_ryw_violations;
    cache_hits = rs.Db.cache_hits;
    cache_misses = rs.Db.cache_misses;
    cache_invalidations = rs.Db.cache_invalidations;
    probe_sets_merged = rs.Db.probe_sets_merged;
    joins_shared = rs.Db.joins_shared;
    window_ms = t.cur_window;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "@[<v>batches=%d read_batches=%d flushes=%d coalesced=%d max_flush=%d@,\
     rows_scanned=%d zero_scan_reads=%d retransmits=%d errors=%d@,\
     crashes=%d recoveries=%d torn_inflight=%d redriven=%d durable_acks=%d@,\
     failovers=%d replica_read_batches=%d replica_rows_scanned=%d \
     ryw_fallbacks=%d ryw_violations=%d@,\
     cache_hits=%d cache_misses=%d cache_invalidations=%d \
     probe_sets_merged=%d joins_shared=%d window_ms=%.3f@]"
    s.batches s.read_batches s.flushes s.coalesced s.max_flush s.rows_scanned
    s.zero_scan_reads s.retransmits s.errors s.crashes s.recoveries
    s.torn_inflight s.redriven s.durable_acks s.failovers
    s.replica_read_batches s.replica_rows_scanned s.ryw_fallbacks
    s.ryw_violations s.cache_hits s.cache_misses s.cache_invalidations
    s.probe_sets_merged s.joins_shared s.window_ms

let log t = List.rev t.rev_log
let replication t = t.repl
let failover_log t = List.rev t.rev_failovers
let session_write_lsn s = s.last_write_lsn
let session_write_vector s = Array.to_list s.last_write_vec

(* --- server-side execution ----------------------------------------------- *)

let set_state t s =
  t.state <- s;
  t.rev_transitions <- (Des.now t.sim, s) :: t.rev_transitions

(* Record one execution.  [db] is the database that ran it — the entry's
   LSN is that database's current LSN, i.e. the snapshot a read saw or the
   post-commit position of a write, which is what lets the serial-replay
   oracle interleave replica-served reads at the position they actually
   observed. *)
let log_exec ?replica t ~db a =
  let b = a.a_b in
  let lsn =
    match t.shard with
    | Some sh -> Shard.current_lsn sh
    | None -> Db.current_lsn db
  in
  let e =
    {
      e_session = b.b_session.id;
      e_seq = b.b_seq;
      e_epoch = t.epoch;
      e_lsn = lsn;
      e_replica = replica;
      e_stmts = b.b_stmts;
      e_reads = b.b_read;
      e_delivered = a.a_deliver;
    }
  in
  t.rev_log <- e :: t.rev_log;
  a.a_entry <- Some e

(* Ship the reply back: half a round trip, plus whatever latency the fault
   plan injected on this delivery. *)
let respond t a r =
  (match r with Error _ -> t.s_errors <- t.s_errors + 1 | Ok _ -> ());
  if a.a_deliver then
    Des.delay t.sim ((a.a_b.b_session.rtt_ms /. 2.0) +. a.a_extra) (fun () ->
        a.a_reply r)

(* The server died with this batch in flight — queued, executing, or
   executed-but-unacked.  The client will never see a reply: register the
   batch for re-drive accounting and hand control back to its
   timeout/retransmit machinery. *)
let torn_failover t a =
  if a.a_deliver then begin
    t.s_torn <- t.s_torn + 1;
    Hashtbl.replace t.torn (a.a_b.b_session.id, a.a_b.b_seq) ();
    a.a_fail ()
  end

(* A reply computed by the previous incarnation: the execution happened (and
   is logged), but the ack died with the process. *)
let reply_torn t a =
  (match a.a_entry with Some e -> e.e_delivered <- false | None -> ());
  torn_failover t a

let maybe_drained t =
  if t.state = Draining_redrive && Hashtbl.length t.torn = 0 then
    set_state t Serving

(* The client gave up on a torn batch (retries exhausted): it will never be
   re-driven, so stop waiting for it. *)
let abandon_redrive t key =
  if Hashtbl.mem t.torn key then begin
    Hashtbl.remove t.torn key;
    maybe_drained t
  end

let is_txn_control = function
  | Ast.Begin_txn | Ast.Commit | Ast.Rollback -> true
  | _ -> false

let count_read_stats t outs =
  List.iter
    (fun ((_ : Db.outcome), scanned) ->
      t.s_rows_scanned <- t.s_rows_scanned + scanned;
      if scanned = 0 then t.s_zero_scan <- t.s_zero_scan + 1)
    outs

(* --- replicated sharding ------------------------------------------------- *)

(* Record the session's per-shard read-your-writes floor at write ack:
   each shard primary's LSN, taken pointwise-max so a component can never
   regress on the session's side. *)
let record_shard_floor t ses =
  match t.shard with
  | Some sh when Shard.replicated sh ->
      let cur = Array.of_list (Shard.lsn_vector sh) in
      if Array.length ses.last_write_vec = 0 then ses.last_write_vec <- cur
      else
        Array.iteri
          (fun s lsn ->
            if s < Array.length ses.last_write_vec && lsn > ses.last_write_vec.(s)
            then ses.last_write_vec.(s) <- lsn)
          cur
  | _ -> ()

(* The armed detector: any shard primary standing below a floor this
   session holds an acknowledged write at means the write vanished in a
   promotion — exactly what quorum acks exist to prevent.  Must count 0. *)
let check_shard_ryw t sh ses =
  let cur = Array.of_list (Shard.lsn_vector sh) in
  Array.iteri
    (fun s floor ->
      if s < Array.length cur && cur.(s) < floor then
        t.s_ryw_violations <- t.s_ryw_violations + 1)
    ses.last_write_vec

(* Sharded read execution.  Under per-shard replication the router itself
   routes each shard's fetch to a caught-up follower when one exists (a
   consistent cut at the primary's current LSN, which dominates every
   session floor); this wrapper surfaces that routing in the admission
   counters and runs the RYW detector over every session in the group. *)
let shard_reads t sh sessions sels =
  let before = (Shard.stats sh).Shard.replica_read_fetches in
  let outs = Shard.exec_reads sh sels in
  if (Shard.stats sh).Shard.replica_read_fetches > before then
    t.s_replica_batches <- t.s_replica_batches + List.length sessions;
  List.iter (fun ses -> check_shard_ryw t sh ses) sessions;
  outs

(* Promotions performed inside the router (a shard primary died at a 2PC
   step, or a whole-process recovery failed over every shard): surface
   each one in the admission failover log, and re-point the shard-0
   anchor — the engine object in slot 0 changes when that shard's primary
   is promoted. *)
let sync_shard_failovers t =
  match t.shard with
  | Some sh when Shard.replicated sh ->
      let fos = Shard.failovers sh in
      let n = List.length fos in
      if n > t.shard_fo_seen then begin
        List.iteri
          (fun i ((_shard, _rid, lsn) : int * int * int) ->
            if i >= t.shard_fo_seen then begin
              t.s_failovers <- t.s_failovers + 1;
              t.rev_failovers <- (t.epoch, lsn) :: t.rev_failovers
            end)
          fos;
        t.shard_fo_seen <- n;
        t.db <- Shard.shard_db sh 0
      end
  | _ -> ()

(* Bounded FIFO window over cached replies; [admitted] keeps only the token
   strings, so an evicted token retransmitted later is refused instead of
   silently applied a second time (unless the WAL can vouch for it). *)
let remember_applied t k reply =
  if not (Hashtbl.mem t.applied k) then begin
    Queue.push k t.applied_order;
    while Queue.length t.applied_order > t.applied_capacity do
      Hashtbl.remove t.applied (Queue.pop t.applied_order)
    done
  end;
  Hashtbl.replace t.applied k reply;
  Hashtbl.replace t.admitted k ()

(* A barrier batch (writes and/or transaction control), executed alone in
   arrival order — the per-session semantics of the synchronous driver,
   including exactly-once replay of session-tagged idempotency tokens. *)
let run_barrier t a finish =
  let b = a.a_b in
  let ses = b.b_session in
  let model = Db.cost_model t.db in
  (* A write acknowledgement never leaves the server before its LSN is
     quorum-replicated: the reply (and the executor slot the caller holds,
     which also keeps the not-yet-replicated commit invisible to
     primary-served reads) waits for [ack_replicas] follower acks.  Without
     replication this is a direct call. *)
  let finish_acked service r =
    match t.repl with
    | None -> finish service r
    | Some repl ->
        let lsn = Db.current_lsn t.db in
        Repl.on_quorum repl ~lsn (fun () -> finish service r)
  in
  (* The session's read-your-writes floor: any later read must observe at
     least this LSN.  Bumped on every acknowledged-write path. *)
  let bump_write_floor () =
    let lsn = eng_lsn t in
    if lsn > ses.last_write_lsn then ses.last_write_lsn <- lsn;
    record_shard_floor t ses
  in
  match b.b_token with
  | Some k when Hashtbl.mem t.applied k ->
      (* retransmission of an already-processed batch: replay the cache *)
      bump_write_floor ();
      finish_acked model.Cost.fixed_ms (Hashtbl.find t.applied k)
  | Some k when eng_token_applied t k ->
      (* the cache is gone (evicted, or wiped by a crash) but the WAL
         proves the batch committed: a durable ack carries only "applied" *)
      t.s_durable_acks <- t.s_durable_acks + 1;
      bump_write_floor ();
      let ack =
        List.map
          (fun _ : Db.outcome ->
            { Db.rs = Rs.empty; rows_affected = 0; cost_ms = model.Cost.fixed_ms })
          b.b_stmts
      in
      finish_acked model.Cost.fixed_ms (Ok ack)
  | Some k when Hashtbl.mem t.admitted k ->
      (* The token was seen before but its outcome was evicted from the
         bounded window and no durable record exists.  Re-applying would
         break exactly-once; answering from thin air would lie.  Refuse. *)
      finish model.Cost.fixed_ms
        (Error (Printf.sprintf "idempotency replay-window miss for token %s" k))
  | _ -> (
      let has_write = List.exists Ast.is_write b.b_stmts in
      let has_txn = List.exists is_txn_control b.b_stmts in
      let exec_all () = eng_exec_batch t b.b_stmts in
      let rollback_if_open () =
        if eng_in_txn t then ignore (eng_exec t Ast.Rollback)
      in
      let pre_lsn = eng_lsn t in
      match
        if has_write && not has_txn then
          eng_atomically ?token:b.b_token t exec_all
        else exec_all ()
      with
      | outcomes ->
          if eng_in_txn t then begin
            (* A transaction spanning batches would hold every other
               session hostage: batch-scoped or nothing. *)
            rollback_if_open ();
            finish model.Cost.fixed_ms
              (Error
                 "transaction left open at batch end (the multi-session \
                  server requires batch-scoped transactions)")
          end
          else begin
            (match b.b_token with
            | Some k when has_write -> remember_applied t k (Ok outcomes)
            | _ -> ());
            sync_shard_failovers t;
            if eng_lsn t > pre_lsn then bump_write_floor ();
            log_exec t ~db:t.db a;
            let read_costs, write_cost =
              List.fold_left2
                (fun (reads, writes) stmt (o : Db.outcome) ->
                  if Ast.is_write stmt then (reads, writes +. o.Db.cost_ms)
                  else (o.Db.cost_ms :: reads, writes))
                ([], 0.0) b.b_stmts outcomes
            in
            finish_acked
              (Cost.batch_ms model (List.rev read_costs) +. write_cost)
              (Ok outcomes)
          end
      | exception Db.Sql_error msg ->
          rollback_if_open ();
          (* a "shard crashed" error may have promoted that shard's
             follower on the way out: surface the failover before acking *)
          sync_shard_failovers t;
          (* the rollback leaves the LSN where it was, but ack through the
             quorum gate anyway so an error reply can never outrun a
             commit the same incarnation already made *)
          finish_acked model.Cost.fixed_ms (Error msg))

(* Execute one arrival on the (single-server) executor resource and ship
   its reply.  Used for barriers always, and for read batches when
   cross-client sharing is off.  The epoch is pinned at arrival: if the
   server crashes while the batch waits for the executor, or between
   execution and reply, the batch fails over instead of touching (or
   answering from) the wrong incarnation. *)
let direct t a =
  let e0 = t.epoch in
  Des.Resource.acquire t.exec (fun () ->
      if t.epoch <> e0 then begin
        Des.Resource.release t.exec;
        torn_failover t a
      end
      else
        let finish service r =
          Des.delay t.sim service (fun () ->
              Des.Resource.release t.exec;
              if t.epoch = e0 then respond t a r else reply_torn t a)
        in
        let b = a.a_b in
        if b.b_read then
          let do_reads () =
            match t.shard with
            | Some sh when Shard.replicated sh ->
                shard_reads t sh [ b.b_session ] b.b_selects
            | Some sh -> Shard.exec_reads sh b.b_selects
            | None -> Db.exec_reads t.db b.b_selects
          in
          match do_reads () with
          | outs ->
              count_read_stats t outs;
              log_exec t ~db:t.db a;
              let costs =
                List.map (fun ((o : Db.outcome), _) -> o.Db.cost_ms) outs
              in
              finish
                (Cost.batch_ms (Db.cost_model t.db) costs)
                (Ok (List.map fst outs))
          | exception Db.Sql_error msg ->
              finish (Db.cost_model t.db).Cost.fixed_ms (Error msg)
        else run_barrier t a finish)

(* One coalesced flush: every waiting batch's reads concatenated into a
   single multi-query execution, so normalized duplicates and shareable
   scans collapse across sessions.  All the batches of a flush finish
   together (the group runs as one parallel read batch) — and if the server
   dies before the acks go out, they are torn together too.  [db] is the
   database serving the group (the primary, or a sufficiently caught-up
   replica) and [release] returns the executor the group was admitted
   on. *)
(* Grow the coalescing window while flushes actually coalesce and a good
   share of their reads come for free (deduped, shared or cache-hit — all
   report zero rows scanned); shrink it back toward the floor when batches
   arrive alone or the sharing dries up, so a quiet stream is not taxed
   with latency for nothing.  No-op unless [create] was given bounds. *)
let adapt_window t ~batches ~reads ~zero =
  match t.window_bounds with
  | None -> ()
  | Some (lo, hi) ->
      if reads > 0 then begin
        let rate = float_of_int zero /. float_of_int reads in
        if batches >= 2 && rate >= 0.5 then
          t.cur_window <- Float.min hi (t.cur_window *. 1.25)
        else if batches <= 1 || rate < 0.25 then
          t.cur_window <- Float.max lo (t.cur_window /. 1.25)
      end

let run_flush_on ?replica t ~db ~release group =
  let e0 = t.epoch in
  t.s_flushes <- t.s_flushes + 1;
  let n = List.length group in
  if n > t.s_max_flush then t.s_max_flush <- n;
  if n > 1 then t.s_coalesced <- t.s_coalesced + n;
  (match replica with
  | None -> ()
  | Some _ ->
      t.s_replica_batches <- t.s_replica_batches + n;
      (* self-check of the routing invariant: the replica must have applied
         every LSN the sessions it serves have acknowledged writes at *)
      let applied = Db.current_lsn db in
      List.iter
        (fun a ->
          if a.a_b.b_session.last_write_lsn > applied then
            t.s_ryw_violations <- t.s_ryw_violations + 1)
        group);
  let count_rows outs =
    count_read_stats t outs;
    match replica with
    | None -> ()
    | Some _ ->
        List.iter
          (fun ((_ : Db.outcome), scanned) ->
            t.s_replica_rows <- t.s_replica_rows + scanned)
          outs
  in
  let model = Db.cost_model t.db in
  (* under sharding [db] is the primary router's anchor, so the group's
     reads fan out through the router — which, under per-shard
     replication, serves each shard's fetch from a caught-up follower
     when it can *)
  let do_reads ~sessions sels =
    match t.shard with
    | Some sh when Shard.replicated sh -> shard_reads t sh sessions sels
    | Some sh -> Shard.exec_reads sh sels
    | None -> Db.exec_reads db sels
  in
  let all_selects = List.concat_map (fun a -> a.a_b.b_selects) group in
  let finish service replies =
    Des.delay t.sim service (fun () ->
        release ();
        List.iter
          (fun (a, r) ->
            if t.epoch = e0 then respond t a r else reply_torn t a)
          replies)
  in
  let group_sessions = List.map (fun a -> a.a_b.b_session) group in
  match do_reads ~sessions:group_sessions all_selects with
  | outs ->
      count_rows outs;
      let zero =
        List.fold_left
          (fun acc ((_ : Db.outcome), scanned) ->
            if scanned = 0 then acc + 1 else acc)
          0 outs
      in
      adapt_window t ~batches:n ~reads:(List.length outs) ~zero;
      let costs = List.map (fun ((o : Db.outcome), _) -> o.Db.cost_ms) outs in
      (* split the flat outcome list back into per-batch replies *)
      let rec split outs = function
        | [] -> []
        | a :: rest ->
            let rec take k acc outs =
              if k = 0 then (List.rev acc, outs)
              else
                match outs with
                | o :: tl -> take (k - 1) (o :: acc) tl
                | [] ->
                    Db.invariant_violation
                      "Admission.run_flush_on: coalesced flush returned too \
                       few outcomes for session %d seq %d (epoch %d, %d \
                       batches in flush)"
                      a.a_b.b_session.id a.a_b.b_seq t.epoch n
            in
            let mine, outs = take (List.length a.a_b.b_selects) [] outs in
            log_exec ?replica t ~db a;
            (a, Ok (List.map fst mine)) :: split outs rest
      in
      finish (Cost.batch_ms model costs) (split outs group)
  | exception Db.Sql_error _ ->
      (* A poison query somewhere in the flush: degrade to per-batch
         execution so one session's bad statement cannot fail its
         neighbours.  The sharing opportunity is lost; correctness is not. *)
      let service = ref 0.0 in
      let replies =
        List.map
          (fun a ->
            match do_reads ~sessions:[ a.a_b.b_session ] a.a_b.b_selects with
            | outs ->
                count_rows outs;
                log_exec ?replica t ~db a;
                let costs =
                  List.map (fun ((o : Db.outcome), _) -> o.Db.cost_ms) outs
                in
                service := !service +. Cost.batch_ms model costs;
                (a, Ok (List.map fst outs))
            | exception Db.Sql_error msg ->
                service := !service +. model.Cost.fixed_ms;
                (a, Error msg))
          group
      in
      finish !service replies

let run_flush t group =
  run_flush_on t ~db:t.db
    ~release:(fun () -> Des.Resource.release t.exec)
    group

(* Serve one routed group on a follower: admitted on that follower's own
   executor, so replica-served flushes run concurrently with the primary's
   barriers and with each other.  The epoch is pinned at routing time; a
   crash in between tears the group exactly like a primary flush. *)
let replica_exec_res t rid =
  match Hashtbl.find_opt t.replica_exec rid with
  | Some r -> r
  | None ->
      let r = Des.Resource.create t.sim ~servers:1 in
      Hashtbl.replace t.replica_exec rid r;
      r

let run_replica_flush t rid db group =
  let e0 = t.epoch in
  let res = replica_exec_res t rid in
  Des.Resource.acquire res (fun () ->
      if t.epoch <> e0 then begin
        Des.Resource.release res;
        List.iter (fun a -> torn_failover t a) group
      end
      else
        run_flush_on ~replica:rid t ~db
          ~release:(fun () -> Des.Resource.release res)
          group)

(* Read routing under read-your-writes: each batch may be served by the
   most caught-up replica whose applied LSN covers its session's last
   acknowledged write; batches no replica can serve yet fall back to the
   primary (which always can).  Routing groups per target so a routed
   flush stays one coalesced execution. *)
let route_group t repl group =
  let primary = ref [] in
  let buckets : (int * Db.t * arrival list ref) list ref = ref [] in
  List.iter
    (fun a ->
      let required = a.a_b.b_session.last_write_lsn in
      match Repl.route_read repl ~min_lsn:required with
      | Some (rid, db) -> (
          match
            List.find_opt (fun (id, _, _) -> id = rid) !buckets
          with
          | Some (_, _, g) -> g := a :: !g
          | None -> buckets := (rid, db, ref [ a ]) :: !buckets)
      | None ->
          if Repl.n_replicas repl > 0 then
            t.s_ryw_fallbacks <- t.s_ryw_fallbacks + 1;
          primary := a :: !primary)
    group;
  ( List.rev !primary,
    List.rev_map (fun (rid, db, g) -> (rid, db, List.rev !g)) !buckets )

(* The flush event: fires one window after the first read batch queued, but
   drains the queue only once the executor is actually granted — reads that
   piled up behind a barrier join the flush, which is where sharing under
   load comes from. *)
let rec flush t =
  let e0 = t.epoch in
  Des.Resource.acquire t.exec (fun () ->
      if t.epoch <> e0 then
        (* the queue this flush was meant to drain died with the old
           incarnation; post-restart arrivals schedule their own flush *)
        Des.Resource.release t.exec
      else begin
        let group = ref [] in
        while
          List.length !group < t.max_coalesce && not (Queue.is_empty t.read_q)
        do
          group := Queue.pop t.read_q :: !group
        done;
        t.flush_scheduled <- false;
        if not (Queue.is_empty t.read_q) then begin
          (* fairness cap hit: the leftovers have already waited a window *)
          t.flush_scheduled <- true;
          Des.at t.sim (Des.now t.sim) (fun () ->
              if t.epoch = e0 then flush t)
        end;
        match List.rev !group with
        | [] -> Des.Resource.release t.exec
        | group -> (
            match t.repl with
            | None -> run_flush t group
            | Some repl -> (
                let primary_g, replica_gs = route_group t repl group in
                List.iter
                  (fun (rid, db, g) -> run_replica_flush t rid db g)
                  replica_gs;
                match primary_g with
                | [] -> Des.Resource.release t.exec
                | g -> run_flush t g))
      end)

let arrive t a =
  match t.state with
  | Crashed | Recovering ->
      (* the request lands on a dead server: no reply will ever come *)
      if a.a_deliver then a.a_fail ()
  | Serving | Draining_redrive ->
      let key = (a.a_b.b_session.id, a.a_b.b_seq) in
      if Hashtbl.mem t.torn key then begin
        Hashtbl.remove t.torn key;
        t.s_redriven <- t.s_redriven + 1;
        maybe_drained t
      end;
      if a.a_b.b_read && t.share then begin
        Queue.push a t.read_q;
        if not t.flush_scheduled then begin
          t.flush_scheduled <- true;
          let e = t.epoch in
          Des.at t.sim (Des.now t.sim +. t.cur_window) (fun () ->
              if t.epoch = e then flush t)
        end
      end
      else direct t a

(* --- crash and recovery --------------------------------------------------- *)

(* Recovery, [restart_after_ms] after the crash.  With replication and a
   reachable promotion quorum, fail over: promote the most caught-up
   follower (it replays its own WAL tail), re-point every session at it
   and let the torn batches re-drive through the durable idempotency path
   against the new primary.  Otherwise — no replicas, or the quorum is
   unreachable — rebuild the crashed primary in place from its checkpoint
   + WAL.  Either way the calendar is charged for the replay, and the
   server serves again via [Draining_redrive] while torn batches are still
   being re-driven. *)
let recover t =
  set_state t Recovering;
  let replayed =
    match t.repl with
    | Some repl when Repl.can_promote repl ->
        let db, _rid, replayed = Repl.promote repl in
        t.db <- db;
        t.s_failovers <- t.s_failovers + 1;
        t.rev_failovers <- (t.epoch, Db.current_lsn db) :: t.rev_failovers;
        replayed
    | _ -> (
        match t.shard with
        | Some sh ->
            (* whole-process crash: the coordinator's decision log recovers
               first, then every shard resolves its in-doubt chunks against
               it; the calendar is charged for the summed replay.  Under
               per-shard replication each shard recovers by promoting its
               most caught-up follower instead — surface those promotions
               (and the re-pointed shard-0 anchor) before serving. *)
            Shard.crash_restart sh;
            sync_shard_failovers t;
            let _txns, records, _committed, _aborted =
              Shard.recovery_totals sh
            in
            records
        | None ->
            Db.crash_restart t.db;
            (match Db.last_recovery t.db with
            | Some s -> s.Db.replayed_records
            | None -> 0))
  in
  t.s_recoveries <- t.s_recoveries + 1;
  Des.delay t.sim
    (Cost.recovery_ms (Db.cost_model t.db) ~replayed_records:replayed)
    (fun () ->
      set_state t
        (if Hashtbl.length t.torn = 0 then Serving else Draining_redrive))

(* The server process dies.  Volatile state — the reply cache, the
   admitted-token set, the admission queue, every unacked reply — dies with
   it; bumping the epoch tears whatever the old incarnation still has
   scheduled (queued executor acquisitions, in-flight flush replies).  The
   database itself is rebuilt from checkpoint + WAL when recovery begins. *)
let crash t =
  t.s_crashes <- t.s_crashes + 1;
  t.epoch <- t.epoch + 1;
  set_state t Crashed;
  Hashtbl.reset t.applied;
  Queue.clear t.applied_order;
  Hashtbl.reset t.admitted;
  Queue.iter (fun a -> torn_failover t a) t.read_q;
  Queue.clear t.read_q;
  t.flush_scheduled <- false;
  Des.delay t.sim t.restart_after_ms (fun () -> recover t)

(* The first [k] statements of the batch ran inside a transaction whose
   commit record never reached the WAL: recovery lands on the pre-batch
   state — the same shape as the synchronous driver's abandoned
   execution. *)
let abandoned_exec t stmts k =
  let k = min k (List.length stmts) in
  if k > 0 && not (List.exists is_txn_control stmts) then (
    try
      ignore (eng_exec t Ast.Begin_txn);
      List.iteri (fun i s -> if i < k then ignore (eng_exec t s)) stmts
    with Db.Sql_error _ -> ())

(* The dying server's last act on a Response-leg crash: the batch ran to
   completion — commit, durable token and all — and the ack died with the
   process.  Runs synchronously, off the executor resource: the crash that
   follows immediately tears everything queued there anyway. *)
let silent_execute t b =
  let a =
    {
      a_b = b;
      a_extra = 0.0;
      a_deliver = false;
      a_reply = ignore;
      a_fail = ignore;
      a_entry = None;
    }
  in
  if b.b_read then (
    match
      match t.shard with
      | Some sh -> Shard.exec_reads sh b.b_selects
      | None -> Db.exec_reads t.db b.b_selects
    with
    | outs ->
        count_read_stats t outs;
        log_exec t ~db:t.db a
    | exception Db.Sql_error _ -> ())
  else run_barrier t a (fun _service _reply -> ())

(* --- the client side of the wire ----------------------------------------- *)

let submit ses ?token stmts =
  let t = ses.srv in
  let fut = Des.Future.create t.sim in
  (match stmts with
  | [] -> Des.Future.resolve fut (Ok []) (* no round trip, no cost *)
  | _ ->
      let seq = ses.next_seq in
      ses.next_seq <- seq + 1;
      t.s_batches <- t.s_batches + 1;
      let selects =
        List.filter_map
          (function Ast.Select s -> Some s | _ -> None)
          stmts
      in
      let read = List.length selects = List.length stmts in
      if read then t.s_read_batches <- t.s_read_batches + 1;
      let b =
        {
          b_session = ses;
          b_seq = seq;
          b_stmts = stmts;
          b_selects = selects;
          b_read = read;
          b_token =
            Option.map (fun k -> Printf.sprintf "s%d:%s" ses.id k) token;
        }
      in
      let one_way = ses.rtt_ms /. 2.0 in
      let timeout () =
        match ses.fault with Some f -> Fault.timeout_ms f | None -> 10.0
      in
      let give_up n label =
        t.s_errors <- t.s_errors + 1;
        abandon_redrive t (ses.id, seq);
        Des.Future.resolve fut
          (Error
             (Printf.sprintf "retries exhausted after %d attempts: %s" n label))
      in
      let rec attempt n =
        let retry burn label =
          if n >= t.retry.Retry_policy.max_attempts then
            Des.delay t.sim burn (fun () -> give_up n label)
          else begin
            t.s_retransmits <- t.s_retransmits + 1;
            let backoff = Retry_policy.backoff_ms t.retry n in
            Des.delay t.sim (burn +. backoff) (fun () -> attempt (n + 1))
          end
        in
        (* The client's view of a server that died (or was already down)
           with this attempt in flight: no reply, a burned timeout, then
           reconnect and retransmit with backoff. *)
        let failed_over () =
          ses.reconnects <- ses.reconnects + 1;
          retry (timeout ()) (Fault.failure_label Fault.Server_crash)
        in
        let decision =
          match ses.fault with
          | None -> Fault.Deliver 0.0
          | Some f -> Fault.decide f
        in
        match decision with
        | Fault.Deliver extra ->
            Des.delay t.sim one_way (fun () ->
                arrive t
                  {
                    a_b = b;
                    a_extra = extra;
                    a_deliver = true;
                    a_reply = Des.Future.resolve fut;
                    a_fail = failed_over;
                    a_entry = None;
                  })
        | Fault.Fail (Fault.Server_crash, leg) ->
            (* The process dies when this request reaches it, taking every
               other in-flight batch down too.  The leg decides how much of
               this batch the old incarnation executed first: nothing
               (request), an uncommitted prefix (mid-batch), or all of it
               with the ack unsent (response — post-commit pre-ack). *)
            Des.delay t.sim one_way (fun () ->
                match t.state with
                | Crashed | Recovering -> () (* already down: nothing to kill *)
                | Serving | Draining_redrive ->
                    (match leg with
                    | Fault.Request -> ()
                    | Fault.Mid_batch k -> abandoned_exec t b.b_stmts k
                    | Fault.Response -> silent_execute t b);
                    crash t);
            failed_over ()
        | Fault.Fail (failure, leg) ->
            (match leg with
            | Fault.Response | Fault.Mid_batch _ ->
                (* the server executed the batch; only the reply died *)
                Des.delay t.sim one_way (fun () ->
                    arrive t
                      {
                        a_b = b;
                        a_extra = 0.0;
                        a_deliver = false;
                        a_reply = ignore;
                        a_fail = ignore;
                        a_entry = None;
                      })
            | Fault.Request -> ());
            let burn =
              match failure with
              | Fault.Drop -> timeout ()
              | Fault.Reset -> one_way
              | Fault.Server_busy | Fault.Deadlock -> ses.rtt_ms
              | Fault.Server_crash -> assert false (* handled above *)
            in
            retry burn (Fault.failure_label failure)
      in
      attempt 1);
  fut
