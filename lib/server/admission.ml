module Db = Sloth_storage.Database
module Rs = Sloth_storage.Result_set
module Cost = Sloth_storage.Cost
module Des = Sloth_net.Des
module Fault = Sloth_net.Fault
module Ast = Sloth_sql.Ast

type reply = (Db.outcome list, string) result

type entry = {
  e_session : int;
  e_seq : int;
  e_stmts : Ast.stmt list;
  e_reads : bool;
  e_delivered : bool;
}

type stats = {
  batches : int;
  read_batches : int;
  flushes : int;
  coalesced : int;
  max_flush : int;
  rows_scanned : int;
  zero_scan_reads : int;
  retransmits : int;
  errors : int;
}

type batch = {
  b_session : session;
  b_seq : int;
  b_stmts : Ast.stmt list;
  b_selects : Ast.select list;  (* populated when the batch is read-only *)
  b_read : bool;
  b_token : string option;  (* already session-tagged *)
}

and session = {
  srv : t;
  id : int;
  rtt_ms : float;
  fault : Fault.t option;
  mutable next_seq : int;
}

(* One delivery attempt that reached the server.  [a_deliver] is false when
   the fault plan decided the response leg is lost: the batch executes (and
   any token is recorded) but the client sees only its timeout. *)
and arrival = {
  a_b : batch;
  a_extra : float;  (* injected latency, charged on the response leg *)
  a_deliver : bool;
  a_reply : reply -> unit;
}

and t = {
  sim : Des.t;
  db : Db.t;
  window_ms : float;
  max_coalesce : int;
  share : bool;
  max_attempts : int;
  backoff_base_ms : float;
  backoff_max_ms : float;
  exec : Des.Resource.t;  (* the storage engine itself is single-threaded *)
  read_q : arrival Queue.t;
  mutable flush_scheduled : bool;
  applied : (string, reply) Hashtbl.t;  (* tagged token -> cached reply *)
  mutable next_session : int;
  mutable rev_log : entry list;
  (* stats *)
  mutable s_batches : int;
  mutable s_read_batches : int;
  mutable s_flushes : int;
  mutable s_coalesced : int;
  mutable s_max_flush : int;
  mutable s_rows_scanned : int;
  mutable s_zero_scan : int;
  mutable s_retransmits : int;
  mutable s_errors : int;
}

let create ~sim ~db ?(window_ms = 2.0) ?(max_coalesce = 64) ?(share = true)
    ?(max_attempts = 25) ?(backoff_base_ms = 1.0) ?(backoff_max_ms = 16.0) () =
  if max_coalesce < 1 then invalid_arg "Admission.create: max_coalesce";
  if max_attempts < 1 then invalid_arg "Admission.create: max_attempts";
  {
    sim;
    db;
    window_ms;
    max_coalesce;
    share;
    max_attempts;
    backoff_base_ms;
    backoff_max_ms;
    exec = Des.Resource.create sim ~servers:1;
    read_q = Queue.create ();
    flush_scheduled = false;
    applied = Hashtbl.create 32;
    next_session = 0;
    rev_log = [];
    s_batches = 0;
    s_read_batches = 0;
    s_flushes = 0;
    s_coalesced = 0;
    s_max_flush = 0;
    s_rows_scanned = 0;
    s_zero_scan = 0;
    s_retransmits = 0;
    s_errors = 0;
  }

let sim t = t.sim
let database t = t.db

let open_session ?(rtt_ms = 0.5) ?fault t =
  let id = t.next_session in
  t.next_session <- id + 1;
  { srv = t; id; rtt_ms; fault; next_seq = 0 }

let session_id s = s.id
let server s = s.srv

let stats t =
  {
    batches = t.s_batches;
    read_batches = t.s_read_batches;
    flushes = t.s_flushes;
    coalesced = t.s_coalesced;
    max_flush = t.s_max_flush;
    rows_scanned = t.s_rows_scanned;
    zero_scan_reads = t.s_zero_scan;
    retransmits = t.s_retransmits;
    errors = t.s_errors;
  }

let log t = List.rev t.rev_log

(* --- server-side execution ----------------------------------------------- *)

let log_exec t a =
  let b = a.a_b in
  t.rev_log <-
    {
      e_session = b.b_session.id;
      e_seq = b.b_seq;
      e_stmts = b.b_stmts;
      e_reads = b.b_read;
      e_delivered = a.a_deliver;
    }
    :: t.rev_log

(* Ship the reply back: half a round trip, plus whatever latency the fault
   plan injected on this delivery. *)
let respond t a r =
  (match r with Error _ -> t.s_errors <- t.s_errors + 1 | Ok _ -> ());
  if a.a_deliver then
    Des.delay t.sim ((a.a_b.b_session.rtt_ms /. 2.0) +. a.a_extra) (fun () ->
        a.a_reply r)

let is_txn_control = function
  | Ast.Begin_txn | Ast.Commit | Ast.Rollback -> true
  | _ -> false

let count_read_stats t outs =
  List.iter
    (fun ((_ : Db.outcome), scanned) ->
      t.s_rows_scanned <- t.s_rows_scanned + scanned;
      if scanned = 0 then t.s_zero_scan <- t.s_zero_scan + 1)
    outs

(* A barrier batch (writes and/or transaction control), executed alone in
   arrival order — the per-session semantics of the synchronous driver,
   including exactly-once replay of session-tagged idempotency tokens. *)
let run_barrier t a finish =
  let b = a.a_b in
  let model = Db.cost_model t.db in
  match b.b_token with
  | Some k when Hashtbl.mem t.applied k ->
      (* retransmission of an already-processed batch: replay the cache *)
      finish model.Cost.fixed_ms (Hashtbl.find t.applied k)
  | Some k when Db.token_applied t.db k ->
      (* the cache is gone but the WAL proves the batch committed: a
         durable ack carries only "applied" *)
      let ack =
        List.map
          (fun _ : Db.outcome ->
            { Db.rs = Rs.empty; rows_affected = 0; cost_ms = model.Cost.fixed_ms })
          b.b_stmts
      in
      finish model.Cost.fixed_ms (Ok ack)
  | _ -> (
      let has_write = List.exists Ast.is_write b.b_stmts in
      let has_txn = List.exists is_txn_control b.b_stmts in
      let exec_all () = Db.exec_batch t.db b.b_stmts in
      let rollback_if_open () =
        if Db.in_txn t.db then ignore (Db.exec t.db Ast.Rollback)
      in
      match
        if has_write && not has_txn then
          Db.atomically ?token:b.b_token t.db exec_all
        else exec_all ()
      with
      | outcomes ->
          if Db.in_txn t.db then begin
            (* A transaction spanning batches would hold every other
               session hostage: batch-scoped or nothing. *)
            rollback_if_open ();
            finish model.Cost.fixed_ms
              (Error
                 "transaction left open at batch end (the multi-session \
                  server requires batch-scoped transactions)")
          end
          else begin
            (match b.b_token with
            | Some k when has_write -> Hashtbl.replace t.applied k (Ok outcomes)
            | _ -> ());
            log_exec t a;
            let read_costs, write_cost =
              List.fold_left2
                (fun (reads, writes) stmt (o : Db.outcome) ->
                  if Ast.is_write stmt then (reads, writes +. o.Db.cost_ms)
                  else (o.Db.cost_ms :: reads, writes))
                ([], 0.0) b.b_stmts outcomes
            in
            finish
              (Cost.batch_ms model (List.rev read_costs) +. write_cost)
              (Ok outcomes)
          end
      | exception Db.Sql_error msg ->
          rollback_if_open ();
          finish model.Cost.fixed_ms (Error msg))

(* Execute one arrival on the (single-server) executor resource and ship
   its reply.  Used for barriers always, and for read batches when
   cross-client sharing is off. *)
let direct t a =
  Des.Resource.acquire t.exec (fun () ->
      let finish service r =
        Des.delay t.sim service (fun () ->
            Des.Resource.release t.exec;
            respond t a r)
      in
      let b = a.a_b in
      if b.b_read then
        match Db.exec_reads t.db b.b_selects with
        | outs ->
            count_read_stats t outs;
            log_exec t a;
            let costs = List.map (fun ((o : Db.outcome), _) -> o.Db.cost_ms) outs in
            finish
              (Cost.batch_ms (Db.cost_model t.db) costs)
              (Ok (List.map fst outs))
        | exception Db.Sql_error msg ->
            finish (Db.cost_model t.db).Cost.fixed_ms (Error msg)
      else run_barrier t a finish)

(* One coalesced flush: every waiting batch's reads concatenated into a
   single multi-query execution, so normalized duplicates and shareable
   scans collapse across sessions.  All the batches of a flush finish
   together (the group runs as one parallel read batch). *)
let run_flush t group =
  t.s_flushes <- t.s_flushes + 1;
  let n = List.length group in
  if n > t.s_max_flush then t.s_max_flush <- n;
  if n > 1 then t.s_coalesced <- t.s_coalesced + n;
  let model = Db.cost_model t.db in
  let all_selects = List.concat_map (fun a -> a.a_b.b_selects) group in
  let finish service replies =
    Des.delay t.sim service (fun () ->
        Des.Resource.release t.exec;
        List.iter (fun (a, r) -> respond t a r) replies)
  in
  match Db.exec_reads t.db all_selects with
  | outs ->
      count_read_stats t outs;
      let costs = List.map (fun ((o : Db.outcome), _) -> o.Db.cost_ms) outs in
      (* split the flat outcome list back into per-batch replies *)
      let rec split outs = function
        | [] -> []
        | a :: rest ->
            let rec take k acc outs =
              if k = 0 then (List.rev acc, outs)
              else
                match outs with
                | o :: tl -> take (k - 1) (o :: acc) tl
                | [] -> assert false
            in
            let mine, outs = take (List.length a.a_b.b_selects) [] outs in
            log_exec t a;
            (a, Ok (List.map fst mine)) :: split outs rest
      in
      finish (Cost.batch_ms model costs) (split outs group)
  | exception Db.Sql_error _ ->
      (* A poison query somewhere in the flush: degrade to per-batch
         execution so one session's bad statement cannot fail its
         neighbours.  The sharing opportunity is lost; correctness is not. *)
      let service = ref 0.0 in
      let replies =
        List.map
          (fun a ->
            match Db.exec_reads t.db a.a_b.b_selects with
            | outs ->
                count_read_stats t outs;
                log_exec t a;
                let costs =
                  List.map (fun ((o : Db.outcome), _) -> o.Db.cost_ms) outs
                in
                service := !service +. Cost.batch_ms model costs;
                (a, Ok (List.map fst outs))
            | exception Db.Sql_error msg ->
                service := !service +. model.Cost.fixed_ms;
                (a, Error msg))
          group
      in
      finish !service replies

(* The flush event: fires one window after the first read batch queued, but
   drains the queue only once the executor is actually granted — reads that
   piled up behind a barrier join the flush, which is where sharing under
   load comes from. *)
let rec flush t =
  Des.Resource.acquire t.exec (fun () ->
      let group = ref [] in
      while
        List.length !group < t.max_coalesce && not (Queue.is_empty t.read_q)
      do
        group := Queue.pop t.read_q :: !group
      done;
      t.flush_scheduled <- false;
      if not (Queue.is_empty t.read_q) then begin
        (* fairness cap hit: the leftovers have already waited a window *)
        t.flush_scheduled <- true;
        Des.at t.sim (Des.now t.sim) (fun () -> flush t)
      end;
      match List.rev !group with
      | [] -> Des.Resource.release t.exec
      | group -> run_flush t group)

let arrive t a =
  if a.a_b.b_read && t.share then begin
    Queue.push a t.read_q;
    if not t.flush_scheduled then begin
      t.flush_scheduled <- true;
      Des.at t.sim (Des.now t.sim +. t.window_ms) (fun () -> flush t)
    end
  end
  else direct t a

(* --- the client side of the wire ----------------------------------------- *)

let submit ses ?token stmts =
  let t = ses.srv in
  let fut = Des.Future.create t.sim in
  (match stmts with
  | [] -> Des.Future.resolve fut (Ok []) (* no round trip, no cost *)
  | _ ->
      let seq = ses.next_seq in
      ses.next_seq <- seq + 1;
      t.s_batches <- t.s_batches + 1;
      let selects =
        List.filter_map
          (function Ast.Select s -> Some s | _ -> None)
          stmts
      in
      let read = List.length selects = List.length stmts in
      if read then t.s_read_batches <- t.s_read_batches + 1;
      let b =
        {
          b_session = ses;
          b_seq = seq;
          b_stmts = stmts;
          b_selects = selects;
          b_read = read;
          b_token =
            Option.map (fun k -> Printf.sprintf "s%d:%s" ses.id k) token;
        }
      in
      let one_way = ses.rtt_ms /. 2.0 in
      let rec attempt n =
        let decision =
          match ses.fault with
          | None -> Fault.Deliver 0.0
          | Some f -> Fault.decide f
        in
        match decision with
        | Fault.Deliver extra ->
            Des.delay t.sim one_way (fun () ->
                arrive t
                  {
                    a_b = b;
                    a_extra = extra;
                    a_deliver = true;
                    a_reply = Des.Future.resolve fut;
                  })
        | Fault.Fail (failure, leg) ->
            (* The async server has no crash-restart integration yet
               (ROADMAP): a crash decision degrades to a dropped trip. *)
            let failure =
              match failure with Fault.Server_crash -> Fault.Drop | f -> f
            in
            (match leg with
            | Fault.Response | Fault.Mid_batch _ ->
                (* the server executed the batch; only the reply died *)
                Des.delay t.sim one_way (fun () ->
                    arrive t
                      {
                        a_b = b;
                        a_extra = 0.0;
                        a_deliver = false;
                        a_reply = ignore;
                      })
            | Fault.Request -> ());
            let burn =
              match failure with
              | Fault.Drop -> (
                  match ses.fault with
                  | Some f -> Fault.timeout_ms f
                  | None -> 10.0)
              | Fault.Reset -> one_way
              | Fault.Server_busy | Fault.Deadlock -> ses.rtt_ms
              | Fault.Server_crash -> assert false
            in
            if n >= t.max_attempts then
              Des.delay t.sim burn (fun () ->
                  t.s_errors <- t.s_errors + 1;
                  Des.Future.resolve fut
                    (Error
                       (Printf.sprintf "retries exhausted after %d attempts: %s"
                          n
                          (Fault.failure_label failure))))
            else begin
              t.s_retransmits <- t.s_retransmits + 1;
              let backoff =
                Float.min t.backoff_max_ms
                  (t.backoff_base_ms *. (2.0 ** float_of_int (n - 1)))
              in
              Des.delay t.sim (burn +. backoff) (fun () -> attempt (n + 1))
            end
      in
      attempt 1);
  fut
