(** The MQO experiment: identical multi-flush read/write schedules run
    through three arms — independent per-query execution, the existing
    shared flush path, and the flush path with plan-merge MQO plus the
    version-keyed result cache — comparing rows scanned, sharing counters
    and (mandatorily identical) result sets.  [json] writes the cells as
    one machine-readable file. *)

val mqo : ?json:string -> unit -> unit
