(** Fig. 7: closed-system throughput, original vs Sloth.

    A discrete-event simulation of the paper's setup: a fixed population of
    clients loads random pages back-to-back against an app server (worker
    pool + CPU cores) and a database server, over a fixed-latency link.
    Page demands come from the measured page-load profiles.  On-CPU time is
    a fraction of the app-server wall time (most of it is blocking), plus a
    per-round-trip thread-scheduling cost — which is exactly the overhead
    fewer round trips save, and why the Sloth server peaks higher.  Per-page
    CPU inflates gently with the client population (context switching /
    GC), producing the post-peak decline. *)

type profile = {
  cpu_ms : float;  (** on-CPU app-server time per page *)
  latency_ms : float;  (** non-CPU app residence (waits, rendering) *)
  db_ms : float;
  trips : int;
  inflation_per_client : float;
      (** per-page CPU growth with client population (higher for the Sloth
          build: thunk allocation raises GC pressure) *)
}

val profile_of_runs :
  mode:[ `Original | `Sloth ] -> Runner.page_run list -> profile

val simulate :
  ?cores:int ->
  ?rtt_ms:float ->
  ?inflation_per_client:float ->
  profile ->
  clients:int ->
  float
(** Pages per second completed in the measurement window.  Clients pause
    200 ms between page loads. *)

val fig7 : unit -> unit

val served : ?json:string -> unit -> unit
(** Served throughput: where {!fig7} models concurrency analytically, this
    drives N {e real} interleaved sessions ({!Sloth_driver.Session}) against
    an asynchronous server ({!Sloth_server.Admission}) on one shared
    {!Sloth_net.Des} simulation.  Closed-loop clients submit dashboard read
    batches; the server coalesces reads arriving within its admission window
    and executes them as a single multi-query group, so normalized
    duplicates and bare sequential scans are shared {e across} clients.
    Each client count runs twice — cross-client sharing on and off — over
    the identical schedule; the experiment reports rows scanned, latency and
    batch throughput for both arms and checks the result sets are
    identical.  The analytic model of {!fig7} is re-run at the same client
    counts as a comparison curve.  [json] writes the full result table
    (e.g. [BENCH_throughput.json]). *)
