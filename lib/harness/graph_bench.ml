(* The graph experiment: reachability over the triple store, two client
   strategies against the same populated database.

     recursive — one WITH RECURSIVE statement per root; the server's
                 semi-naive fixpoint does the whole traversal in a single
                 round trip.
     iterative — the client-side frontier loop ORM code writes without
                 recursive SQL: one point query per expanded node
                 (SELECT ... WHERE subject_id = ?) until the frontier is
                 empty.

   Both arms must produce identical sorted id sets for every root; the
   recursive arm's round-trip count is the number of roots, the iterative
   arm pays one trip per node expansion — the gap the paper's lazy
   batching cannot close when the traversal is inherently sequential. *)

module Db = Sloth_storage.Database
module Rs = Sloth_storage.Result_set
module Value = Sloth_storage.Value
module Conn = Sloth_driver.Connection
module Stats = Sloth_net.Stats
module Graph = Sloth_workload.Graph

let roots = [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]

let fresh_conn db =
  let clock = Sloth_net.Vclock.create () in
  Conn.create db (Sloth_net.Link.create ~rtt_ms:0.5 clock)

let ids rs =
  List.filter_map
    (fun row -> match row.(0) with Value.Int i -> Some i | _ -> None)
    (Rs.rows rs)

let run_sql conn sql = ids (Conn.execute conn (Sloth_sql.Parser.parse sql)).Db.rs

(* One statement per root; the ORDER BY id ASC inside makes each result a
   sorted id list directly. *)
let recursive_arm db ~sql_of_root =
  let conn = fresh_conn db in
  let res = List.map (fun root -> run_sql conn (sql_of_root root)) roots in
  (res, Stats.round_trips (Conn.stats conn))

(* Frontier BFS issuing one hop query per expanded node.  Matches the CTE
   semantics exactly: the result is every node reachable in >= 1 step (the
   root itself only if a cycle returns to it). *)
let iterative_arm db ~hop_sql =
  let conn = fresh_conn db in
  let closure root =
    let seen = Hashtbl.create 32 in
    let rec go = function
      | [] -> ()
      | frontier ->
          let next = List.concat_map (fun n -> run_sql conn (hop_sql n)) frontier in
          let fresh =
            List.sort_uniq compare
              (List.filter (fun o -> not (Hashtbl.mem seen o)) next)
          in
          List.iter (fun o -> Hashtbl.replace seen o ()) fresh;
          go fresh
    in
    go [ root ];
    List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) seen [])
  in
  let res = List.map closure roots in
  (res, Stats.round_trips (Conn.stats conn))

(* --- suites -------------------------------------------------------------- *)

type suite = {
  page : string;
  sql_of_root : int -> string;
  hop_sql : int -> string;
}

let hop ~pred fmt n =
  Printf.sprintf fmt n pred

let suites =
  [
    {
      page = "dependency_closure";
      sql_of_root = (fun root -> Graph.closure_sql ~pred:"depends_on" ~root);
      hop_sql =
        hop ~pred:"depends_on"
          "SELECT object_id FROM triple WHERE subject_id = %d AND predicate \
           = '%s'";
    };
    {
      page = "impact_analysis";
      sql_of_root =
        (fun root -> Graph.reverse_closure_sql ~pred:"depends_on" ~root);
      hop_sql =
        hop ~pred:"depends_on"
          "SELECT subject_id FROM triple WHERE object_id = %d AND predicate \
           = '%s'";
    };
    {
      page = "reporting_chain";
      sql_of_root = (fun root -> Graph.closure_sql ~pred:"reports_to" ~root);
      hop_sql =
        hop ~pred:"reports_to"
          "SELECT object_id FROM triple WHERE subject_id = %d AND predicate \
           = '%s'";
    };
  ]

type cell = {
  c_page : string;
  reached : int;
  rec_trips : int;
  iter_trips : int;
  identical : bool;
}

let run_suite db s =
  let rec_res, rec_trips = recursive_arm db ~sql_of_root:s.sql_of_root in
  let iter_res, iter_trips = iterative_arm db ~hop_sql:s.hop_sql in
  {
    c_page = s.page;
    reached = List.fold_left (fun a l -> a + List.length l) 0 rec_res;
    rec_trips;
    iter_trips;
    identical = List.equal (List.equal Int.equal) rec_res iter_res;
  }

let ratio c = float_of_int c.iter_trips /. float_of_int (max 1 c.rec_trips)

let json_of_cells cells =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n  \"experiment\": \"graph\",\n  \"cells\": [\n";
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf
           "    {\"page\": \"%s\", \"roots\": %d, \"reached_total\": %d, \
            \"round_trips_recursive\": %d, \"round_trips_iterative\": %d, \
            \"trip_ratio\": %.1f, \"results_identical\": %b}"
           c.c_page (List.length roots) c.reached c.rec_trips c.iter_trips
           (ratio c) c.identical))
    cells;
  let rec_total = List.fold_left (fun a c -> a + c.rec_trips) 0 cells in
  let iter_total = List.fold_left (fun a c -> a + c.iter_trips) 0 cells in
  let total_ratio = float_of_int iter_total /. float_of_int (max 1 rec_total) in
  let identical = List.for_all (fun c -> c.identical) cells in
  Buffer.add_string b
    (Printf.sprintf
       "\n  ],\n  \"round_trips_recursive_total\": %d,\n  \
        \"round_trips_iterative_total\": %d,\n  \"trip_ratio_total\": %.1f,\n  \
        \"ratio_at_least_10x\": %b,\n  \"results_identical\": %b\n}\n"
       rec_total iter_total total_ratio (total_ratio >= 10.0) identical);
  Buffer.contents b

let graph ?json () =
  Report.section
    "Graph: recursive CTEs vs the client-side frontier loop";
  Printf.printf
    "  (reachability from %d roots over the triple store; the recursive arm \
     runs one\n\
    \   WITH RECURSIVE statement per root, the iterative arm replays the \
     classic ORM\n\
    \   frontier loop — one point query per expanded node; results must be \
     identical)\n"
    (List.length roots);
  let db = Runner.prepare Sloth_workload.App_sig.graph in
  let cells = List.map (run_suite db) suites in
  Report.table
    ~header:
      [ "page"; "roots"; "reached"; "trips rec"; "trips iter"; "ratio";
        "identical" ]
    (List.map
       (fun c ->
         [
           c.c_page;
           string_of_int (List.length roots);
           string_of_int c.reached;
           string_of_int c.rec_trips;
           string_of_int c.iter_trips;
           Printf.sprintf "%.1fx" (ratio c);
           string_of_bool c.identical;
         ])
       cells);
  let identical = List.for_all (fun c -> c.identical) cells in
  let rec_total = List.fold_left (fun a c -> a + c.rec_trips) 0 cells in
  let iter_total = List.fold_left (fun a c -> a + c.iter_trips) 0 cells in
  Printf.printf
    "\n  results identical everywhere: %b; total round trips %d (recursive) \
     vs %d (iterative), %.1fx fewer\n"
    identical rec_total iter_total
    (float_of_int iter_total /. float_of_int (max 1 rec_total));
  Option.iter
    (fun path ->
      let oc = open_out path in
      output_string oc (json_of_cells cells);
      close_out oc;
      Printf.printf "  wrote %s\n" path)
    json
