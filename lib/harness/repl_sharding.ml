module Db = Sloth_storage.Database
module Shard = Sloth_storage.Shard
module Two_pc = Sloth_storage.Two_pc
module Rs = Sloth_storage.Result_set
module Fault = Sloth_net.Fault
module Des = Sloth_net.Des
module Adm = Sloth_server.Admission

(* Replicated sharding chaos matrix: the {!Sharding} workload and scripted
   crash points, run against deployments where every shard is a
   WAL-shipping replication group.  A shard-primary crash at any 2PC step
   now promotes the most caught-up follower instead of recovering in
   place, so on top of the plain matrix's detectors (atomicity, lost acked
   writes, audit, exactly-once re-drive) this matrix checks that a
   quorum-shipped prepared transaction survives the promotion and still
   resolves per the decision log, and adds a follower-death axis: killing
   a follower mid-run must be completely invisible to the client. *)

let replicas_per_shard = 2

let deployment ~shards ~checkpoint_every () =
  let sh =
    Shard.create ~checkpoint_every ~replicas_per_shard ~shards ()
  in
  Sharding.seed_shard sh;
  sh

(* The fault-trip layout is probed on an UNREPLICATED deployment
   (replication consumes no extra decision points), and its reference
   fingerprints double as a transparency check: a replicated run that
   crashed and promoted must land on the same per-shard heaps as a plain
   crash-free run. *)

type case_result = {
  cr_role : string;
  cr_acked : bool;
  cr_applied : bool;
  cr_atomic : bool;
  cr_lost : bool;
  cr_audit : int;
  cr_misfire : bool;
  cr_resume : bool;
  cr_final : bool;
  cr_replay : bool;
  cr_promotions : int;  (** shard-primary promotions this case performed *)
  cr_prepared_survived : bool;
      (** post-decision crashes only: the decided transaction is durably
          applied after the promotion (the prepared chunk survived into
          the promoted follower and phase 2 finished per the decision
          log) *)
}

(* Crash points whose window opens after the coordinator's decision is on
   disk: from there on the transaction is committed, and no single node
   death may un-commit it. *)
let post_decision_roles = [ "decision/after-log"; "ack-first"; "ack-last" ]

let finish_case ~sh ~layout ~crash_at ~label ~acked ~misfire ~promotions0 =
  Shard.quiesce sh;
  let applied = Shard.token_applied sh (Sharding.token_of crash_at) in
  let lfp = Shard.logical_fingerprint sh in
  let atomic =
    if applied then lfp = Sharding.shadow_lfp (crash_at + 1)
    else lfp = Sharding.shadow_lfp crash_at
  in
  let audit = List.length (Shard.audit sh) in
  let prepared_survived =
    (not (List.mem label post_decision_roles)) || applied
  in
  Sharding.drive sh crash_at;
  let resume =
    Shard.logical_fingerprint sh = Sharding.shadow_lfp (crash_at + 1)
    && Shard.token_applied sh (Sharding.token_of crash_at)
  in
  for i = crash_at + 1 to Sharding.n_batches - 1 do
    Sharding.drive sh i
  done;
  Shard.quiesce sh;
  let final =
    Shard.logical_fingerprint sh = Sharding.shadow_lfp Sharding.n_batches
  in
  let replay = Shard.shard_fingerprints sh = layout.Sharding.l_ref in
  {
    cr_role = label;
    cr_acked = acked;
    cr_applied = applied;
    cr_atomic = atomic;
    cr_lost = acked && not applied;
    cr_audit = audit;
    cr_misfire = misfire;
    cr_resume = resume;
    cr_final = final;
    cr_replay = replay;
    cr_promotions = List.length (Shard.failovers sh) - promotions0;
    cr_prepared_survived = prepared_survived;
  }

let run_case ~shards ~checkpoint_every ~layout ~crash_at
    ~(role : Sharding.role) =
  let sh = deployment ~shards ~checkpoint_every () in
  let f = Fault.create (Fault.plan ()) in
  Fault.script ~target:role.Sharding.r_target f ~first:role.Sharding.r_first
    ~last:role.Sharding.r_last Fault.Server_crash role.Sharding.r_leg;
  Shard.set_fault sh (Some f);
  for i = 0 to crash_at - 1 do
    Sharding.drive sh i
  done;
  let acked =
    match Sharding.drive sh crash_at with
    | () -> true
    | exception Db.Sql_error _ -> false
  in
  Shard.set_fault sh None;
  let misfire = Fault.count f Fault.Server_crash <> 1 in
  finish_case ~sh ~layout ~crash_at ~label:role.Sharding.r_label ~acked
    ~misfire ~promotions0:0

(* The follower-death axis: no crash is scripted — one follower of the
   shard the batch is about to touch is removed instead.  The client must
   see a plain ack (the quorum denominator shrank with the cluster), no
   promotion happens, and every downstream detector must hold exactly as
   in a fault-free run. *)
let run_follower_case ~shards ~checkpoint_every ~layout ~crash_at =
  let sh = deployment ~shards ~checkpoint_every () in
  for i = 0 to crash_at - 1 do
    Sharding.drive sh i
  done;
  Shard.kill_follower sh (crash_at mod shards);
  let acked =
    match Sharding.drive sh crash_at with
    | () -> true
    | exception Db.Sql_error _ -> false
  in
  (* a follower death must be invisible: anything but a clean ack counts
     as this case's misfire *)
  finish_case ~sh ~layout ~crash_at ~label:"follower-dies" ~acked
    ~misfire:(not acked) ~promotions0:0

type config_result = {
  rc_shards : int;
  rc_checkpoint_every : int;
  rc_replicas : int;
  rc_cases : int;
  rc_acked : int;
  rc_applied : int;
  rc_aborted : int;
  rc_promotions : int;
  rc_atomicity_violations : int;
  rc_lost_writes : int;
  rc_audit_violations : int;
  rc_prepared_survival_violations : int;
  rc_misfires : int;
  rc_resume_ok : int;
  rc_final_ok : int;
  rc_replay_ok : int;
  rc_by_role : (string * int * int * int * int) list;
      (** role, cases, acked, applied, promotions *)
}

let run_config ~shards ~checkpoint_every =
  let layout = Sharding.probe ~shards ~checkpoint_every in
  let results = ref [] in
  for crash_at = 0 to Sharding.n_batches - 1 do
    List.iter
      (fun role ->
        results :=
          run_case ~shards ~checkpoint_every ~layout ~crash_at ~role
          :: !results)
      (Sharding.roles_of
         ~t0:layout.Sharding.l_start.(crash_at)
         ~trips:layout.Sharding.l_trips.(crash_at));
    results :=
      run_follower_case ~shards ~checkpoint_every ~layout ~crash_at
      :: !results
  done;
  let rs = List.rev !results in
  let count p = List.length (List.filter p rs) in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 rs in
  let by_role =
    List.fold_left
      (fun acc r ->
        if List.mem_assoc r.cr_role acc then acc else acc @ [ (r.cr_role, ()) ])
      [] rs
    |> List.map (fun (label, ()) ->
           let mine = List.filter (fun r -> r.cr_role = label) rs in
           ( label,
             List.length mine,
             List.length (List.filter (fun r -> r.cr_acked) mine),
             List.length (List.filter (fun r -> r.cr_applied) mine),
             List.fold_left (fun acc r -> acc + r.cr_promotions) 0 mine ))
  in
  {
    rc_shards = shards;
    rc_checkpoint_every = checkpoint_every;
    rc_replicas = replicas_per_shard;
    rc_cases = List.length rs;
    rc_acked = count (fun r -> r.cr_acked);
    rc_applied = count (fun r -> r.cr_applied);
    rc_aborted = count (fun r -> not r.cr_applied);
    rc_promotions = sum (fun r -> r.cr_promotions);
    rc_atomicity_violations = count (fun r -> not r.cr_atomic);
    rc_lost_writes = count (fun r -> r.cr_lost);
    rc_audit_violations = sum (fun r -> r.cr_audit);
    rc_prepared_survival_violations =
      count (fun r -> not r.cr_prepared_survived);
    rc_misfires = count (fun r -> r.cr_misfire);
    rc_resume_ok = count (fun r -> r.cr_resume);
    rc_final_ok = count (fun r -> r.cr_final);
    rc_replay_ok = count (fun r -> r.cr_replay);
    rc_by_role = by_role;
  }

let shard_counts = [ 2; 3 ]
let checkpoint_intervals = [ 1; 4; 0 ]

(* --- served arm: the async server over replicated shards ------------------ *)

type served = {
  rv_sessions : int;
  rv_batches : int;
  rv_errors : int;
  rv_crashes : int;
  rv_recoveries : int;
  rv_torn_inflight : int;
  rv_redriven : int;
  rv_durable_acks : int;
  rv_torn : int;
  rv_failovers : int;
      (** shard-primary promotions surfaced in the admission failover log *)
  rv_replica_read_batches : int;
  rv_ryw_violations : int;  (** armed per-shard floor detector — must be 0 *)
  rv_lost_acked_writes : int;
      (** acked write batches whose token is not durable at quiescence —
          must be 0 *)
  rv_audit_violations : int;
  rv_identical : bool;
}

let served_sessions = 6
let served_batches_per_session = 10

let served_repl_sharded ?(crash = 0.06) ?(shards = 3) ?(checkpoint_every = 2)
    () =
  let sh = deployment ~shards ~checkpoint_every () in
  let sim = Des.create () in
  let srv =
    Adm.create ~sim ~db:(Shard.shard_db sh 0) ~sharding:sh ~window_ms:1.0
      ~retry:{ Sloth_net.Retry_policy.served with max_attempts = 40 }
      ()
  in
  let delivered = Hashtbl.create 64 in
  let sessions =
    List.init served_sessions (fun si ->
        let fault =
          Fault.create (Fault.plan ~crash_p:crash ~seed:(300 + si) ())
        in
        Adm.open_session ~fault srv)
  in
  List.iteri
    (fun si ses ->
      let rec go seq = function
        | [] -> ()
        | (stmts, tok, think) :: rest ->
            let fut = Adm.submit ses ?token:tok stmts in
            Des.Future.on_resolve fut (fun r ->
                Hashtbl.replace delivered (si, seq) (tok, r));
            Des.delay sim think (fun () -> go (seq + 1) rest)
      in
      Des.at sim (0.3 *. float_of_int si) (fun () ->
          go 0 (Sharding.served_schedule si)))
    sessions;
  Des.run sim ~until:Float.infinity;
  Shard.quiesce sh;
  (* serial replay oracles, exactly as in the unreplicated served arm: a
     fresh UNREPLICATED same-shard-count deployment (replication must be
     invisible in results and per-shard heaps, promotions included) plus
     an unsharded replay for the logical state *)
  let osh = Shard.create ~checkpoint_every ~shards () in
  Sharding.seed_shard osh;
  let odb = Db.create () in
  Sharding.seed_db odb;
  let oracle_out = Hashtbl.create 64 in
  List.iter
    (fun (e : Adm.entry) ->
      (match Db.exec_batch odb e.Adm.e_stmts with
      | _ -> ()
      | exception Db.Sql_error _ -> ());
      match Shard.exec_batch osh e.Adm.e_stmts with
      | outs -> Hashtbl.replace oracle_out (e.Adm.e_session, e.Adm.e_seq) outs
      | exception Db.Sql_error _ -> ())
    (Adm.log srv);
  let audit_violations = List.length (Shard.audit sh) in
  let identical =
    ref
      (Shard.shard_fingerprints sh = Shard.shard_fingerprints osh
      && Shard.logical_fingerprint sh = Shard.logical_fingerprint_db odb
      && audit_violations = 0)
  in
  let lost_acked = ref 0 in
  Hashtbl.iter
    (fun (si, seq) (tok, reply) ->
      match reply with
      | Error _ -> ()
      | Ok outs -> (
          (* an acked write must be durable on some shard at quiescence:
             the lost-acked-write detector, token-level *)
          (match tok with
          | Some k ->
              let sid = Adm.session_id (List.nth sessions si) in
              if not (Shard.token_applied sh (Printf.sprintf "s%d:%s" sid k))
              then incr lost_acked
          | None -> ());
          match Hashtbl.find_opt oracle_out (si, seq) with
          | None -> identical := false
          | Some oracle_outs ->
              if
                not
                  ((List.length outs = List.length oracle_outs
                   && List.for_all2 Sharding.served_same_outcome outs
                        oracle_outs)
                  || (tok <> None && Sharding.served_ack_shaped outs))
              then identical := false))
    delivered;
  let total = served_sessions * served_batches_per_session in
  let torn =
    (total - Hashtbl.length delivered)
    + (match Adm.state srv with Adm.Serving -> 0 | _ -> 1)
  in
  let s = Adm.stats srv in
  let errors =
    Hashtbl.fold
      (fun _ (_, r) acc -> match r with Error _ -> acc + 1 | Ok _ -> acc)
      delivered 0
  in
  {
    rv_sessions = served_sessions;
    rv_batches = total;
    rv_errors = errors;
    rv_crashes = s.Adm.crashes;
    rv_recoveries = s.Adm.recoveries;
    rv_torn_inflight = s.Adm.torn_inflight;
    rv_redriven = s.Adm.redriven;
    rv_durable_acks = s.Adm.durable_acks;
    rv_torn = torn;
    rv_failovers = s.Adm.failovers;
    rv_replica_read_batches = s.Adm.replica_read_batches;
    rv_ryw_violations = s.Adm.ryw_violations;
    rv_lost_acked_writes = !lost_acked;
    rv_audit_violations = audit_violations;
    rv_identical = !identical;
  }

(* --- JSON + report -------------------------------------------------------- *)

let json_of cfgs served =
  let b = Buffer.create 2048 in
  Buffer.add_string b
    "{\n  \"experiment\": \"repl_sharding\",\n  \"configs\": [\n";
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf
           "    {\"shards\": %d, \"replicas_per_shard\": %d, \
            \"checkpoint_every\": %d, \"cases\": %d, \"acked\": %d, \
            \"applied\": %d, \"aborted\": %d, \"promotions\": %d, \
            \"atomicity_violations\": %d, \"lost_writes\": %d, \
            \"audit_violations\": %d, \"prepared_survival_violations\": %d, \
            \"misfires\": %d, \"resume_exact_once\": %d, \"final_ok\": %d, \
            \"replay_identical\": %d}"
           c.rc_shards c.rc_replicas c.rc_checkpoint_every c.rc_cases
           c.rc_acked c.rc_applied c.rc_aborted c.rc_promotions
           c.rc_atomicity_violations c.rc_lost_writes c.rc_audit_violations
           c.rc_prepared_survival_violations c.rc_misfires c.rc_resume_ok
           c.rc_final_ok c.rc_replay_ok))
    cfgs;
  let total f = List.fold_left (fun acc c -> acc + f c) 0 cfgs in
  let cases = total (fun c -> c.rc_cases) in
  let atomicity = total (fun c -> c.rc_atomicity_violations) in
  let lost = total (fun c -> c.rc_lost_writes) in
  let survival = total (fun c -> c.rc_prepared_survival_violations) in
  let audit = total (fun c -> c.rc_audit_violations) in
  let promotions = total (fun c -> c.rc_promotions) in
  let torn = audit + total (fun c -> c.rc_misfires) in
  let replay_ok = List.for_all (fun c -> c.rc_replay_ok = c.rc_cases) cfgs in
  let resume_ok =
    List.for_all
      (fun c -> c.rc_resume_ok = c.rc_cases && c.rc_final_ok = c.rc_cases)
      cfgs
  in
  Buffer.add_string b
    (Printf.sprintf
       "\n\
       \  ],\n\
       \  \"cases_total\": %d,\n\
       \  \"promotions_total\": %d,\n\
       \  \"atomicity_violations\": %d,\n\
       \  \"lost_writes\": %d,\n\
       \  \"prepared_survival_violations\": %d,\n\
       \  \"audit_violations\": %d,\n\
       \  \"torn_batches\": %d,\n"
       cases promotions atomicity lost survival audit torn);
  Buffer.add_string b
    (Printf.sprintf
       "  \"served\": {\"sessions\": %d, \"batches\": %d, \"errors\": %d, \
        \"crashes\": %d, \"recoveries\": %d, \"torn_inflight\": %d, \
        \"redriven\": %d, \"durable_acks\": %d, \"torn\": %d, \"failovers\": \
        %d, \"replica_read_batches\": %d, \"ryw_violations\": %d, \
        \"lost_acked_writes\": %d, \"audit_violations\": %d, \
        \"results_identical\": %b},\n"
       served.rv_sessions served.rv_batches served.rv_errors served.rv_crashes
       served.rv_recoveries served.rv_torn_inflight served.rv_redriven
       served.rv_durable_acks served.rv_torn served.rv_failovers
       served.rv_replica_read_batches served.rv_ryw_violations
       served.rv_lost_acked_writes served.rv_audit_violations
       served.rv_identical);
  Buffer.add_string b
    (Printf.sprintf "  \"ryw_violations\": %d,\n" served.rv_ryw_violations);
  Buffer.add_string b
    (Printf.sprintf "  \"shard_primary_failovers\": %d,\n"
       (promotions + served.rv_failovers));
  Buffer.add_string b
    (Printf.sprintf "  \"results_identical\": %b\n}\n"
       (replay_ok && resume_ok && served.rv_identical && atomicity = 0
      && lost = 0 && survival = 0 && torn = 0
      && served.rv_ryw_violations = 0
      && served.rv_lost_acked_writes = 0
      && served.rv_torn = 0));
  Buffer.contents b

let repl_sharding ?json () =
  Report.section
    "Replicated shards: per-shard groups surviving failover mid-2PC";
  Printf.printf
    "  (every shard a %d-follower replication group; the sharding crash \
     matrix re-run with\n\
    \   promotion-on-crash — every 2PC step x which node dies (coordinator, \
     shard primary\n\
    \   pre/post-PREPARE-force and pre/post-decision, follower) x %s shard \
     counts x %d\n\
    \   checkpoint intervals; prepared transactions must survive promotion \
     and resolve per\n\
    \   the decision log)\n"
    replicas_per_shard
    (String.concat "/" (List.map string_of_int shard_counts))
    (List.length checkpoint_intervals);
  let cfgs = ref [] in
  List.iter
    (fun shards ->
      List.iter
        (fun ck ->
          let c = run_config ~shards ~checkpoint_every:ck in
          cfgs := !cfgs @ [ c ];
          Report.subsection
            (Printf.sprintf "%d shards x %d replicas, checkpoint %s" shards
               replicas_per_shard
               (if ck = 0 then "never" else Printf.sprintf "every %d" ck));
          Report.table
            ~header:
              [ "crash point"; "cases"; "acked"; "applied"; "promotions" ]
            (List.map
               (fun (label, cases, acked, applied, promotions) ->
                 [
                   label;
                   string_of_int cases;
                   string_of_int acked;
                   string_of_int applied;
                   string_of_int promotions;
                 ])
               c.rc_by_role);
          Printf.printf
            "  promotions %d; atomicity violations %d, lost acked writes %d, \
             audit violations %d,\n\
            \  prepared-survival violations %d, exact-once resume %d/%d, \
             replay identical %d/%d\n"
            c.rc_promotions c.rc_atomicity_violations c.rc_lost_writes
            c.rc_audit_violations c.rc_prepared_survival_violations
            c.rc_resume_ok c.rc_cases c.rc_replay_ok c.rc_cases)
        checkpoint_intervals)
    shard_counts;
  let cfgs = !cfgs in
  Report.subsection "served: async multi-session server over replicated shards";
  let sv = served_repl_sharded () in
  Printf.printf
    "  (%d sessions x %d batches over 3 shards x %d replicas, seeded random \
     server crashes;\n\
    \   whole-process recovery promotes every shard's most caught-up \
     follower; per-session\n\
    \   per-shard RYW floors re-checked on every read; reads may be served \
     by caught-up\n\
    \   followers under a consistent cut)\n"
    sv.rv_sessions served_batches_per_session replicas_per_shard;
  Printf.printf
    "  crashes %d (recoveries %d), shard failovers %d, torn in-flight %d, \
     re-driven %d,\n\
    \  durable acks %d, errors %d, replica-served read batches %d, RYW \
     violations %d,\n\
    \  lost acked writes %d, audit violations %d, torn at quiescence %d, \
     results identical: %b\n"
    sv.rv_crashes sv.rv_recoveries sv.rv_failovers sv.rv_torn_inflight
    sv.rv_redriven sv.rv_durable_acks sv.rv_errors sv.rv_replica_read_batches
    sv.rv_ryw_violations sv.rv_lost_acked_writes sv.rv_audit_violations
    sv.rv_torn sv.rv_identical;
  let cases = List.fold_left (fun acc c -> acc + c.rc_cases) 0 cfgs in
  let atomicity =
    List.fold_left (fun acc c -> acc + c.rc_atomicity_violations) 0 cfgs
  in
  let lost = List.fold_left (fun acc c -> acc + c.rc_lost_writes) 0 cfgs in
  let survival =
    List.fold_left
      (fun acc c -> acc + c.rc_prepared_survival_violations)
      0 cfgs
  in
  let promotions =
    List.fold_left (fun acc c -> acc + c.rc_promotions) 0 cfgs
  in
  Printf.printf
    "\n\
    \  crash matrix: %d cases, %d promotions, atomicity violations %d, lost \
     acked writes %d,\n\
    \  prepared-survival violations %d\n"
    cases promotions atomicity lost survival;
  Option.iter
    (fun path ->
      let oc = open_out path in
      output_string oc (json_of cfgs sv);
      close_out oc;
      Printf.printf "  wrote %s\n" path)
    json
