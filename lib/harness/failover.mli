(** Failover experiment: WAL-shipping replication with replica-served
    reads and primary promotion, end to end.

    Each cell runs several closed-loop sessions against an
    {!Sloth_server.Admission} layer whose primary has a
    {!Sloth_storage.Replication} shipper and a small follower fleet behind
    links of varying round-trip time and loss.  Writes are quorum-acked
    tokened atomic batches; read batches are routed to the most caught-up
    follower that covers the session's read-your-writes floor; seeded
    random [Server_crash] faults kill the primary, and recovery promotes
    the most caught-up follower and re-drives the torn batches against it.

    A run is judged by the {e LSN-interleaved serial-replay oracle}:
    executions from pre-failover epochs whose LSN lies beyond that
    failover's cutoff are discarded (their effects died with the old
    timeline — by quorum construction none of their replies were
    delivered), the rest are stable-sorted by [(e_lsn,
    writes-before-reads)] so replica-served reads land at their snapshot
    position in commit order, and the sorted log is replayed on a plain
    twin database.  Every delivered result must match the replay, the
    final primary must fingerprint-equal it, no acknowledged tokened write
    may be missing from the final primary's durable token registry
    ([lost_writes = 0]), no delivered read may predate an earlier
    delivered write of its session ([ryw_violations = 0]), and at
    quiescence every surviving follower must fingerprint-equal the
    primary. *)

type verdict = {
  v_identical : bool;
      (** delivered results and the final primary match the oracle replay *)
  v_converged : bool;
      (** every surviving follower fingerprint-equals the primary *)
  v_lost_writes : int;  (** acked tokened writes missing from the registry *)
  v_ryw_violations : int;
      (** delivered reads that predate an earlier delivered write of their
          session *)
}

val retained_log :
  Sloth_server.Admission.t -> Sloth_server.Admission.entry list
(** The execution log minus entries discarded by a failover (pre-failover
    epoch, LSN beyond the cutoff), in log order. *)

val oracle_order :
  Sloth_server.Admission.entry list -> Sloth_server.Admission.entry list
(** Stable sort by [(e_lsn, writes-before-reads)] — the serialization
    order the oracle replays. *)

val verify :
  Sloth_server.Admission.t ->
  delivered:
    ( int * int,
      string option * Sloth_sql.Ast.stmt list * Sloth_server.Admission.reply
    )
    Hashtbl.t ->
  verdict
(** Judge a finished run: [delivered] maps [(session_id, seq)] to the
    token, statements and reply of every batch whose future resolved. *)

type cell = {
  fc_label : string;
  fc_ck : int;  (** checkpoint interval (0 = never) *)
  fc_batches : int;
  fc_errors : int;
  fc_crashes : int;
  fc_failovers : int;
  fc_recoveries : int;
  fc_torn_inflight : int;
  fc_redriven : int;
  fc_durable_acks : int;
  fc_replica_batches : int;  (** read batches served by a follower *)
  fc_replica_rows : int;
  fc_ryw_fallbacks : int;
  fc_ryw_violations : int;  (** routing self-check + history check; must be 0 *)
  fc_lost_writes : int;  (** must be 0 *)
  fc_torn : int;  (** batches unresolved at quiescence; must be 0 *)
  fc_chunks : int;  (** WAL chunks shipped *)
  fc_snapshots : int;  (** checkpoint catch-ups shipped *)
  fc_link_retransmits : int;
  fc_replicas_left : int;  (** followers remaining after promotions *)
  fc_identical : bool;
  fc_converged : bool;
  fc_stats : Sloth_server.Admission.stats;
}

val run :
  ?label:string ->
  ?sessions:int ->
  ?ro_sessions:int ->
  ?batches:int ->
  ?crash:float ->
  ?checkpoint_every:int ->
  ?rtts:float list ->
  ?drop:float ->
  ?seed:int ->
  unit ->
  cell
(** One replicated run.  [sessions] read-write sessions (default 6) under
    seeded [crash]-rate server-crash faults plus [ro_sessions] read-only
    sessions (default 2), [batches] closed-loop batches each (default 12);
    one follower per entry of [rtts] (default three, moderately spread),
    each behind a link dropping shipping legs with probability [drop].
    Fully deterministic in [seed]. *)

val failover : ?json:string -> unit -> unit
(** The full sweep: three lag profiles (balanced / skewed / lossy links)
    crossed with three checkpoint intervals; prints the per-cell table and
    writes the machine-readable artifact (e.g. [BENCH_failover.json]) when
    [json] is given. *)
