module Db = Sloth_storage.Database
module Vclock = Sloth_net.Vclock
module Link = Sloth_net.Link
module Conn = Sloth_driver.Connection
module Runtime = Sloth_core.Runtime
module Page = Sloth_web.Page

type page_run = {
  page : string;
  original : Page.metrics;
  sloth : Page.metrics;
}

let speedup r = r.original.Page.total_ms /. r.sloth.Page.total_ms

let round_trip_ratio r =
  float_of_int r.original.Page.round_trips
  /. float_of_int (max 1 r.sloth.Page.round_trips)

let query_ratio r =
  float_of_int r.original.Page.queries
  /. float_of_int (max 1 r.sloth.Page.queries)

let prepare ?(scale = 1) (module A : Sloth_workload.App_sig.S) =
  let db = Db.create () in
  A.populate ~scale db;
  db

let load_original ~db ~rtt_ms (module A : Sloth_workload.App_sig.S) page =
  let clock = Vclock.create () in
  let link = Link.create ~rtt_ms clock in
  let conn = Conn.create db link in
  Runtime.set_clock (Some clock);
  let module X = Sloth_core.Exec.Eager (struct
    let conn = conn
  end) in
  let module P = A.Pages (X) in
  let m = Page.load ~name:page ~clock ~link ~controller:(P.controller page) () in
  Runtime.set_clock None;
  m

let load_sloth ?policy ~db ~rtt_ms (module A : Sloth_workload.App_sig.S) page =
  let clock = Vclock.create () in
  let link = Link.create ~rtt_ms clock in
  let conn = Conn.create db link in
  let store = Sloth_core.Query_store.create ?policy conn in
  Runtime.set_clock (Some clock);
  let module X = Sloth_core.Exec.Lazy (struct
    let store = store
  end) in
  let module P = A.Pages (X) in
  let m = Page.load ~name:page ~clock ~link ~controller:(P.controller page) () in
  Runtime.set_clock None;
  m

(* Fault-aware loads: install a fault plan and retry policy on a fresh
   connection, then run the page; an abort (retry budget exhausted, circuit
   open, or a lost/poisoned query demanded) is returned as [Error], with the
   runtime clock detached either way. *)
let guard_load run =
  let fin () = Runtime.set_clock None in
  match run () with
  | m ->
      fin ();
      Ok m
  | exception Conn.Retries_exhausted { last; _ } ->
      fin ();
      Error (Printf.sprintf "retries exhausted (%s)" last)
  | exception Sloth_core.Query_store.Query_failed (_, msg) ->
      fin ();
      Error (Printf.sprintf "query failed (%s)" msg)
  | exception Conn.Server_error msg ->
      fin ();
      Error (Printf.sprintf "server error (%s)" msg)

let load_original_result ?retry ?fault ~db ~rtt_ms
    (module A : Sloth_workload.App_sig.S) page =
  let clock = Vclock.create () in
  let link = Link.create ~rtt_ms clock in
  Link.set_fault link fault;
  let conn = Conn.create db link in
  Option.iter (Conn.set_retry_policy conn) retry;
  Runtime.set_clock (Some clock);
  let module X = Sloth_core.Exec.Eager (struct
    let conn = conn
  end) in
  let module P = A.Pages (X) in
  guard_load (fun () ->
      let m =
        Page.load ~name:page ~clock ~link ~controller:(P.controller page) ()
      in
      Runtime.set_clock None;
      m)

let load_sloth_result ?policy ?retry ?fault ~db ~rtt_ms
    (module A : Sloth_workload.App_sig.S) page =
  let clock = Vclock.create () in
  let link = Link.create ~rtt_ms clock in
  Link.set_fault link fault;
  let conn = Conn.create db link in
  Option.iter (Conn.set_retry_policy conn) retry;
  let store = Sloth_core.Query_store.create ?policy conn in
  Runtime.set_clock (Some clock);
  let module X = Sloth_core.Exec.Lazy (struct
    let store = store
  end) in
  let module P = A.Pages (X) in
  guard_load (fun () ->
      let m =
        Page.load ~name:page ~clock ~link ~controller:(P.controller page) ()
      in
      Runtime.set_clock None;
      m)

let load_prefetch ~db ~rtt_ms (module A : Sloth_workload.App_sig.S) page =
  let clock = Vclock.create () in
  let link = Link.create ~rtt_ms clock in
  let conn = Conn.create db link in
  Runtime.set_clock (Some clock);
  let module X = Sloth_core.Exec.Prefetch (struct
    let conn = conn
  end) in
  let module P = A.Pages (X) in
  let m = Page.load ~name:page ~clock ~link ~controller:(P.controller page) () in
  Runtime.set_clock None;
  m

let run_page ~db ~rtt_ms (module A : Sloth_workload.App_sig.S) page =
  {
    page;
    original = load_original ~db ~rtt_ms (module A) page;
    sloth = load_sloth ~db ~rtt_ms (module A) page;
  }

let page_names (module A : Sloth_workload.App_sig.S) =
  (* An instantiation just to read the page list; it runs no queries. *)
  let dummy_db = Db.create () in
  let clock = Vclock.create () in
  let conn = Conn.create dummy_db (Link.create clock) in
  let module X = Sloth_core.Exec.Eager (struct
    let conn = conn
  end) in
  let module P = A.Pages (X) in
  P.page_names

let run_app ?(rtt_ms = 0.5) ?(scale = 1) ?db (module A : Sloth_workload.App_sig.S) =
  let db = match db with Some db -> db | None -> prepare ~scale (module A) in
  List.map
    (fun page -> run_page ~db ~rtt_ms (module A) page)
    (page_names (module A))
