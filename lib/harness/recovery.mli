(** Recovery experiment: crash durability under the WAL + checkpoint
    subsystem.

    Sweeps a scripted server crash over every batch of a chaos write
    workload, on every crash leg (before the request, after each prefix of
    the batch, after the reply was computed), for several checkpoint
    intervals.  At each point the recovered database must fingerprint-equal
    either the pre-batch or the post-batch state — never a torn batch — and
    a reconnecting client re-driving its idempotency token must converge on
    the post state exactly once.  Reports recovered-state counts, replayed
    transaction counts and (indicative, wall-clock) recovery time per
    checkpoint interval.

    The [served-crash] arm runs the same durability story through the
    asynchronous multi-session server ({!Sloth_server.Admission}): several
    closed-loop sessions under seeded random [Server_crash] faults, every
    crash tearing the in-flight coalesced groups, sessions reconnecting and
    re-driving through the durable idempotency path.  Delivered results
    must match a serial replay of the crash-epoch-annotated execution log
    and the recovered database must fingerprint-equal the replay; the
    crash / epoch / re-drive counters land in [BENCH_recovery.json]. *)

val recovery : ?json:string -> unit -> unit
(** Run the full sweep plus the served-crash arm; when [json] is given,
    also write the cells and the served-crash counters as a
    machine-readable JSON file (e.g. [BENCH_recovery.json]). *)

val tracked : ?crash:float -> ?checkpoint_every:int -> unit -> unit
(** One-line variant for bench tracking: random server crashes at rate
    [crash] (default 0.05) under the default retry policy; prints crash /
    abort counts and whether the final state matches the fault-free run. *)
