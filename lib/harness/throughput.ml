module Des = Sloth_net.Des
module Page = Sloth_web.Page
module Adm = Sloth_server.Admission
module Session = Sloth_driver.Session
module Value = Sloth_storage.Value
module Rs = Sloth_storage.Result_set
module Db = Sloth_storage.Database

type profile = {
  cpu_ms : float;
  latency_ms : float;
  db_ms : float;
  trips : int;
  inflation_per_client : float;
      (** per-page CPU growth with population: context switches for both
          builds, plus thunk/GC pressure for the Sloth build — the paper's
          explanation of the post-peak decline *)
}

(* The share of app-server wall time actually spent on-CPU, and the CPU
   cost of putting a worker thread to sleep and waking it per round trip. *)
let cpu_fraction = 0.15
let per_trip_cpu_ms = 0.35

let profile_of_runs ~mode runs =
  let n = float_of_int (List.length runs) in
  let pick (r : Runner.page_run) =
    match mode with `Original -> r.original | `Sloth -> r.sloth
  in
  let avg f = List.fold_left (fun acc r -> acc +. f (pick r)) 0.0 runs /. n in
  let app = avg (fun m -> m.Page.app_ms) in
  let trips = avg (fun m -> float_of_int m.Page.round_trips) in
  {
    cpu_ms = (cpu_fraction *. app) +. (per_trip_cpu_ms *. trips);
    latency_ms = (1.0 -. cpu_fraction) *. app;
    db_ms = avg (fun m -> m.Page.db_ms);
    trips = int_of_float (Float.round trips);
    inflation_per_client =
      (match mode with `Original -> 0.0007 | `Sloth -> 0.0013);
  }

let think_time_ms = 200.0

let simulate ?(cores = 8) ?(rtt_ms = 0.5) ?inflation_per_client profile
    ~clients =
  let inflation_per_client =
    Option.value inflation_per_client ~default:profile.inflation_per_client
  in
  let sim = Des.create () in
  let cpu = Des.Resource.create sim ~servers:cores in
  let db = Des.Resource.create sim ~servers:12 in
  let warmup = 2_000.0 and window = 20_000.0 in
  let completed = ref 0 in
  let inflation = 1.0 +. (inflation_per_client *. float_of_int clients) in
  let cpu_slice =
    inflation *. profile.cpu_ms /. float_of_int (profile.trips + 1)
  in
  let latency_slice = profile.latency_ms /. float_of_int (profile.trips + 1) in
  let db_slice = profile.db_ms /. float_of_int (max 1 profile.trips) in
  let rec page_loop () =
    (* Alternate CPU/latency slices with round trips, then start over. *)
    let rec trip k i =
      if i >= profile.trips then k ()
      else
        Des.Resource.with_service cpu cpu_slice (fun () ->
            Des.delay sim latency_slice (fun () ->
                Des.delay sim rtt_ms (fun () ->
                    Des.Resource.with_service db db_slice (fun () ->
                        trip k (i + 1)))))
    in
    trip
      (fun () ->
        Des.Resource.with_service cpu cpu_slice (fun () ->
            Des.delay sim latency_slice (fun () ->
                let t = Des.now sim in
                if t >= warmup && t < warmup +. window then incr completed;
                Des.delay sim think_time_ms page_loop)))
      0
  in
  (* Stagger client start-up so identical clients do not run in lockstep. *)
  for c = 0 to clients - 1 do
    Des.at sim (float_of_int c *. 0.37) page_loop
  done;
  Des.run sim ~until:(warmup +. window);
  float_of_int !completed /. (window /. 1000.0)

let client_counts = [ 10; 25; 50; 75; 100; 150; 200; 300; 400; 500; 600 ]

let fig7 () =
  Report.section "Fig 7: throughput vs number of clients (medrec pages)";
  let runs =
    Page_experiments.runs Sloth_workload.App_sig.medrec ~rtt_ms:0.5
  in
  let original = profile_of_runs ~mode:`Original runs in
  let sloth = profile_of_runs ~mode:`Sloth runs in
  Printf.printf
    "  profiles: original cpu %.1f ms, wait %.1f ms, db %.1f ms, %d trips\n"
    original.cpu_ms original.latency_ms original.db_ms original.trips;
  Printf.printf
    "            sloth    cpu %.1f ms, wait %.1f ms, db %.1f ms, %d trips\n"
    sloth.cpu_ms sloth.latency_ms sloth.db_ms sloth.trips;
  let rows =
    List.map
      (fun clients ->
        let o = simulate original ~clients in
        let s = simulate sloth ~clients in
        (clients, o, s))
      client_counts
  in
  Report.table
    ~header:[ "clients"; "original (page/s)"; "sloth (page/s)" ]
    (List.map
       (fun (c, o, s) ->
         [ string_of_int c; Printf.sprintf "%.1f" o; Printf.sprintf "%.1f" s ])
       rows);
  let peak sel = List.fold_left (fun acc r -> Float.max acc (sel r)) 0.0 rows in
  let peak_o = peak (fun (_, o, _) -> o) in
  let peak_s = peak (fun (_, _, s) -> s) in
  Printf.printf "\n  peak throughput: original %.1f, sloth %.1f (%.2fx)\n"
    peak_o peak_s (peak_s /. peak_o)

(* --- served throughput: real interleaved sessions through the DES -------- *)

(* Where [fig7] models concurrency analytically (CPU/latency slices derived
   from page profiles), this experiment actually executes it: N closed-loop
   client sessions submit read batches to a [Sloth_server.Admission.t]
   through non-blocking submit/await futures, and the only difference
   between the two arms is whether the admission layer may coalesce reads
   across sessions.  Every (client, iteration) issues the same statements
   in both arms, so the result sets must be identical — the arms differ in
   rows scanned and latency only. *)

let served_scale = 10 (* person table: 150 * scale rows *)
let served_iters = 40 (* batches per client *)
let served_window_ms = 2.0
let served_rtt_ms = 0.5
let served_think_base_ms = 12.0
let served_think_spread_ms = 12.0
let served_client_counts = [ 1; 2; 4; 8; 16; 32; 64 ]

(* The per-client workload: mostly dashboard batches (unindexed aggregates
   over the hot [person] table — bare sequential scans that can be shared,
   plus a conjunct-reordered duplicate that normalized dedup collapses),
   leavened with per-client point lookups that nobody can share. *)
let served_batch rng client =
  let point () =
    let id () = 1 + Random.State.int rng (150 * served_scale) in
    [
      Printf.sprintf "SELECT * FROM person WHERE id = %d" (id ());
      Printf.sprintf "SELECT * FROM person WHERE id = %d" (id ());
    ]
  in
  let dashboards =
    [|
      [
        "SELECT COUNT(*) AS n FROM person WHERE gender = 'F'";
        "SELECT COUNT(*) AS n FROM person WHERE gender = 'M'";
        "SELECT gender, COUNT(*) AS n FROM person GROUP BY gender";
      ];
      [
        "SELECT COUNT(*) AS n FROM person WHERE birth_year < 1960";
        "SELECT COUNT(*) AS n FROM person WHERE gender = 'F' AND birth_year = 1990";
        "SELECT COUNT(*) AS n FROM person WHERE birth_year = 1990 AND gender = 'F'";
      ];
      [
        "SELECT COUNT(*) AS n FROM person";
        "SELECT gender, COUNT(*) AS n FROM person GROUP BY gender";
        Printf.sprintf
          "SELECT COUNT(*) AS n FROM person WHERE birth_year > %d"
          (1990 + (client mod 5));
      ];
    |]
  in
  match Random.State.int rng 4 with
  | 0 -> point ()
  | k -> dashboards.(k - 1)

let digest_of_reply = function
  | Error msg -> "error:" ^ msg
  | Ok outs ->
      let b = Buffer.create 256 in
      List.iter
        (fun (o : Db.outcome) ->
          Buffer.add_string b (String.concat "," (Rs.columns o.rs));
          List.iter
            (fun row ->
              Buffer.add_char b ';';
              Array.iter
                (fun v ->
                  Buffer.add_char b '|';
                  Buffer.add_string b (Value.to_string v))
                row)
            (Rs.rows o.rs);
          Buffer.add_string b (Printf.sprintf "!%d" o.rows_affected))
        outs;
      Digest.to_hex (Digest.string (Buffer.contents b))

type served_run = {
  sv_clients : int;
  sv_shared : bool;
  sv_batches : int;
  sv_errors : int;
  sv_rows_scanned : int;
  sv_zero_scan : int;
  sv_flushes : int;
  sv_max_flush : int;
  sv_mean_ms : float;
  sv_p95_ms : float;
  sv_batches_per_s : float;
  sv_digests : (int * int, string) Hashtbl.t;
}

let percentile sorted p =
  match Array.length sorted with
  | 0 -> 0.0
  | n ->
      let idx = int_of_float (Float.round (p *. float_of_int (n - 1))) in
      sorted.(max 0 (min (n - 1) idx))

let run_served ~db ~clients ~share =
  let sim = Des.create () in
  let server =
    Adm.create ~sim ~db ~window_ms:served_window_ms ~share ()
  in
  let digests = Hashtbl.create (clients * served_iters) in
  let sessions =
    List.init clients (fun _ -> Session.connect ~rtt_ms:served_rtt_ms server)
  in
  List.iteri
    (fun c ses ->
      let rng = Random.State.make [| 0x5e55; c |] in
      let rec loop iter =
        if iter < served_iters then begin
          let stmts = served_batch rng c in
          let h = Session.submit_sql ses stmts in
          Session.await h (fun r ->
              Hashtbl.replace digests (c, iter) (digest_of_reply r);
              let think =
                served_think_base_ms
                +. Random.State.float rng served_think_spread_ms
              in
              Des.delay sim think (fun () -> loop (iter + 1)))
        end
      in
      (* stagger start-up so identical clients do not run in lockstep *)
      Des.at sim (0.37 *. float_of_int c) (fun () -> loop 0))
    sessions;
  Des.run sim ~until:Float.infinity;
  let stats = Adm.stats server in
  let lats =
    Array.of_list (List.concat_map Session.latencies sessions)
  in
  Array.sort compare lats;
  let n = Array.length lats in
  let mean =
    if n = 0 then 0.0
    else Array.fold_left ( +. ) 0.0 lats /. float_of_int n
  in
  let completed = List.fold_left (fun a s -> a + Session.completed s) 0 sessions in
  let errors = List.fold_left (fun a s -> a + Session.errors s) 0 sessions in
  let elapsed = Des.now sim in
  {
    sv_clients = clients;
    sv_shared = share;
    sv_batches = completed;
    sv_errors = errors;
    sv_rows_scanned = stats.Adm.rows_scanned;
    sv_zero_scan = stats.Adm.zero_scan_reads;
    sv_flushes = stats.Adm.flushes;
    sv_max_flush = stats.Adm.max_flush;
    sv_mean_ms = mean;
    sv_p95_ms = percentile lats 0.95;
    sv_batches_per_s =
      (if elapsed <= 0.0 then 0.0
       else float_of_int completed /. (elapsed /. 1000.0));
    sv_digests = digests;
  }

let digests_equal a b =
  Hashtbl.length a = Hashtbl.length b
  && Hashtbl.fold
       (fun k v acc -> acc && Hashtbl.find_opt b k = Some v)
       a true

let served_row (shr, unshr) =
  [
    string_of_int shr.sv_clients;
    string_of_int shr.sv_batches;
    string_of_int unshr.sv_rows_scanned;
    string_of_int shr.sv_rows_scanned;
    Printf.sprintf "%.1f%%"
      (if unshr.sv_rows_scanned = 0 then 0.0
       else
         100.0
         *. float_of_int (unshr.sv_rows_scanned - shr.sv_rows_scanned)
         /. float_of_int unshr.sv_rows_scanned);
    Printf.sprintf "%.2f" unshr.sv_mean_ms;
    Printf.sprintf "%.2f" shr.sv_mean_ms;
    Printf.sprintf "%.2f" shr.sv_p95_ms;
    Printf.sprintf "%.0f" shr.sv_batches_per_s;
    string_of_int shr.sv_flushes;
    string_of_int shr.sv_max_flush;
    string_of_bool (digests_equal shr.sv_digests unshr.sv_digests);
  ]

let served_json ~pairs ~analytic ~identical =
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\n  \"experiment\": \"throughput\",\n  \"served\": [\n";
  let cell r =
    Printf.sprintf
      "    {\"clients\": %d, \"mode\": \"%s\", \"batches\": %d, \
       \"errors\": %d, \"rows_scanned\": %d, \"zero_scan_reads\": %d, \
       \"flushes\": %d, \"max_flush\": %d, \"mean_latency_ms\": %.4f, \
       \"p95_latency_ms\": %.4f, \"batches_per_s\": %.2f}"
      r.sv_clients
      (if r.sv_shared then "shared" else "unshared")
      r.sv_batches r.sv_errors r.sv_rows_scanned r.sv_zero_scan r.sv_flushes
      r.sv_max_flush r.sv_mean_ms r.sv_p95_ms r.sv_batches_per_s
  in
  List.iteri
    (fun i (shr, unshr) ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b (cell unshr);
      Buffer.add_string b ",\n";
      Buffer.add_string b (cell shr))
    pairs;
  Buffer.add_string b "\n  ],\n  \"analytic\": [\n";
  List.iteri
    (fun i (clients, o, s) ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf
           "    {\"clients\": %d, \"original_pages_s\": %.1f, \
            \"sloth_pages_s\": %.1f}"
           clients o s))
    analytic;
  let saved_at_8 =
    List.fold_left
      (fun acc (shr, unshr) ->
        if shr.sv_clients >= 8 then
          acc + (unshr.sv_rows_scanned - shr.sv_rows_scanned)
        else acc)
      0 pairs
  in
  Buffer.add_string b
    (Printf.sprintf
       "\n  ],\n  \"rows_scanned_saved_at_8_plus\": %d,\n  \
        \"results_identical\": %b\n}\n"
       saved_at_8 identical);
  Buffer.contents b

let served ?json () =
  Report.section
    "Throughput (served): N real sessions, cross-client shared scans";
  Printf.printf
    "  (closed-loop clients submit dashboard read batches through \
     non-blocking sessions;\n\
    \   the admission layer coalesces reads arriving within %.1f ms and \
     executes them as one\n\
    \   multi-query group — 'unshared' runs the same schedule without \
     cross-client sharing)\n"
    served_window_ms;
  (* The workload is read-only, so one database serves every run. *)
  let db =
    Runner.prepare ~scale:served_scale Sloth_workload.App_sig.medrec
  in
  let pairs =
    List.map
      (fun clients ->
        let shr = run_served ~db ~clients ~share:true in
        let unshr = run_served ~db ~clients ~share:false in
        (shr, unshr))
      served_client_counts
  in
  Report.table
    ~header:
      [
        "clients"; "batches"; "scanned unshared"; "scanned shared"; "saved";
        "lat unshared"; "lat shared"; "p95 shared"; "batch/s"; "flushes";
        "max flush"; "identical";
      ]
    (List.map served_row pairs);
  let identical =
    List.for_all
      (fun (shr, unshr) -> digests_equal shr.sv_digests unshr.sv_digests)
      pairs
  in
  let reduced_at_8 =
    List.for_all
      (fun (shr, unshr) ->
        shr.sv_clients < 8 || shr.sv_rows_scanned < unshr.sv_rows_scanned)
      pairs
  in
  Printf.printf
    "\n  results identical in both arms: %b; sharing strictly reduces rows \
     scanned at >= 8 clients: %b\n"
    identical reduced_at_8;
  (* The pre-existing analytic model, kept as the comparison curve. *)
  let runs =
    Page_experiments.runs Sloth_workload.App_sig.medrec ~rtt_ms:0.5
  in
  let original = profile_of_runs ~mode:`Original runs in
  let sloth = profile_of_runs ~mode:`Sloth runs in
  let analytic =
    List.map
      (fun clients ->
        (clients, simulate original ~clients, simulate sloth ~clients))
      served_client_counts
  in
  Report.subsection "analytic model at the same client counts (pages/s)";
  Report.table
    ~header:[ "clients"; "original"; "sloth" ]
    (List.map
       (fun (c, o, s) ->
         [ string_of_int c; Printf.sprintf "%.1f" o; Printf.sprintf "%.1f" s ])
       analytic);
  Option.iter
    (fun path ->
      let oc = open_out path in
      output_string oc (served_json ~pairs ~analytic ~identical);
      close_out oc;
      Printf.printf "  wrote %s\n" path)
    json
