(** Chaos experiment: page loads under seeded fault injection, sweeping
    fault rate × retry policy and reporting per-cell completion counts,
    abort rates, mean latency of completed loads, injected-fault and retry
    totals. *)

val chaos : unit -> unit
(** The full sweep (rates 0–0.2 × no-retry / retry / retry+breaker). *)

val tracked : ?rate:float -> unit -> unit
(** One summary line for a single fault rate (default 0.05) under the
    default retry policy — the bench [--faults RATE] knob. *)
