(* The MQO experiment: run identical multi-flush read/write schedules
   through three arms and compare rows scanned, sharing counters and
   result sets.

     independent — every SELECT planned and executed on its own
     shared      — the existing flush path: normalized dedup + shared
                   sequential scans (Database.exec_reads, MQO off)
     mqo         — the same entry point with the plan-merge pass and the
                   version-keyed result cache enabled

   Each arm runs on its own freshly populated application database
   (deterministic seed), so the schedules are byte-identical inputs.  The
   schedules repeat flushes (to exercise the cross-flush cache) and
   interleave writes (to exercise version-bump invalidation); every arm
   must produce identical result sets for every statement. *)

module Db = Sloth_storage.Database
module Ex = Sloth_storage.Executor
module Rs = Sloth_storage.Result_set

type step = Flush of string list | Write of string

(* --- schedules ----------------------------------------------------------- *)

(* Many aggregates over unindexed columns of one hot table: every query
   plans as a sequential scan, so the shared arm already collapses them —
   the mqo arm adds cache hits on the repeat flushes. *)
let dashboard_suite (module A : Sloth_workload.App_sig.S) =
  let flush =
    if String.equal A.name "tracker" then
      [
        "SELECT COUNT(*) AS n FROM issue WHERE status = 'new'";
        "SELECT COUNT(*) AS n FROM issue WHERE status = 'open'";
        "SELECT COUNT(*) AS n FROM issue WHERE status = 'resolved'";
        "SELECT COUNT(*) AS n FROM issue WHERE status = 'closed'";
        "SELECT status, COUNT(*) AS n FROM issue GROUP BY status";
      ]
    else
      [
        "SELECT COUNT(*) AS n FROM person WHERE gender = 'F'";
        "SELECT COUNT(*) AS n FROM person WHERE gender = 'M'";
        "SELECT gender, COUNT(*) AS n FROM person GROUP BY gender";
      ]
  in
  let invalidate =
    if String.equal A.name "tracker" then
      "UPDATE issue SET status = 'closed' WHERE id = 1"
    else "UPDATE person SET gender = 'F' WHERE id = 1"
  in
  ( "dashboard",
    [ Flush flush; Flush flush; Write invalidate; Flush flush; Flush flush ] )

(* Point lookups on an indexed FK column and ranges on an ordered-index
   column: same index, different keys/bounds and projections — the mqo arm
   fuses them into shared probe-set passes. *)
let probe_suite (module A : Sloth_workload.App_sig.S) =
  let points, ranges, invalidate =
    if String.equal A.name "tracker" then
      ( [
          "SELECT * FROM issue WHERE owner_id = 3";
          "SELECT status FROM issue WHERE owner_id = 3";
          "SELECT * FROM issue WHERE owner_id = 7";
          "SELECT severity FROM issue WHERE owner_id = 7";
          "SELECT * FROM issue WHERE owner_id = 11";
        ],
        [
          "SELECT * FROM issue WHERE severity >= 2 AND severity <= 3";
          "SELECT status FROM issue WHERE severity BETWEEN 2 AND 3";
          "SELECT COUNT(*) AS n FROM issue WHERE severity >= 4";
        ],
        "UPDATE issue SET owner_id = 5 WHERE id = 2" )
    else
      ( [
          "SELECT * FROM patient WHERE person_id = 3";
          "SELECT identifier FROM patient WHERE person_id = 3";
          "SELECT * FROM patient WHERE person_id = 7";
          "SELECT * FROM patient WHERE person_id = 11";
        ],
        [
          "SELECT * FROM person WHERE birth_year >= 1950 AND birth_year <= 1960";
          "SELECT gender FROM person WHERE birth_year BETWEEN 1950 AND 1960";
          "SELECT COUNT(*) AS n FROM person WHERE birth_year >= 2000";
        ],
        "UPDATE patient SET person_id = 5 WHERE id = 2" )
  in
  ( "probe-set",
    [
      Flush points;
      Flush ranges;
      Write invalidate;
      Flush points;
      Flush ranges;
    ] )

(* Structurally equal join subplans (same FROM/JOIN/WHERE, different
   residual work): the mqo arm runs the join once and fans the rows out. *)
let join_suite (module A : Sloth_workload.App_sig.S) =
  let flush =
    if String.equal A.name "tracker" then
      [
        "SELECT COUNT(*) AS n FROM issue JOIN project ON issue.project_id = \
         project.id WHERE project.status = 'active'";
        "SELECT issue.status, COUNT(*) AS n FROM issue JOIN project ON \
         issue.project_id = project.id WHERE project.status = 'active' GROUP \
         BY issue.status";
        "SELECT COUNT(*) AS n FROM issue JOIN project ON issue.project_id = \
         project.id WHERE project.status = 'locked'";
      ]
    else
      [
        "SELECT COUNT(*) AS n FROM patient JOIN person ON patient.person_id \
         = person.id WHERE person.gender = 'F'";
        "SELECT person.gender, COUNT(*) AS n FROM patient JOIN person ON \
         patient.person_id = person.id WHERE person.gender = 'F' GROUP BY \
         person.gender";
      ]
  in
  ("join", [ Flush flush; Flush flush ])

let suites (module A : Sloth_workload.App_sig.S) =
  [
    dashboard_suite (module A);
    probe_suite (module A);
    join_suite (module A);
  ]

(* --- arms ---------------------------------------------------------------- *)

let parse_selects sqls =
  List.map
    (fun sql ->
      match Sloth_sql.Parser.parse sql with
      | Sloth_sql.Ast.Select s -> s
      | _ -> invalid_arg ("not a SELECT: " ^ sql))
    sqls

(* Run one schedule; [reads] executes one flush's SELECTs and returns
   [(result_set, rows_scanned)] per statement.  Returns the flushes'
   result sets (flush-major) and the total rows scanned. *)
let run_schedule db reads steps =
  List.fold_left
    (fun (flushes, scanned) step ->
      match step with
      | Write sql ->
          ignore (Db.exec_sql db sql);
          (flushes, scanned)
      | Flush sqls ->
          let outs = reads db (parse_selects sqls) in
          ( flushes @ [ List.map fst outs ],
            scanned + List.fold_left (fun a (_, n) -> a + n) 0 outs ))
    ([], 0) steps

let independent_arm (module A : Sloth_workload.App_sig.S) steps =
  let db = Runner.prepare (module A) in
  run_schedule db
    (fun db selects ->
      let cat = Db.catalog db in
      let model = Db.cost_model db in
      List.map
        (fun s ->
          let o = Ex.execute cat ~model (Sloth_sql.Ast.Select s) in
          (o.Ex.rs, o.Ex.rows_scanned))
        selects)
    steps

let exec_reads_arm db selects =
  List.map
    (fun ((o : Db.outcome), scanned) -> (o.Db.rs, scanned))
    (Db.exec_reads db selects)

let shared_arm (module A : Sloth_workload.App_sig.S) steps =
  let db = Runner.prepare (module A) in
  run_schedule db exec_reads_arm steps

let mqo_arm (module A : Sloth_workload.App_sig.S) steps =
  let db = Runner.prepare (module A) in
  Db.set_mqo db true;
  Db.set_result_cache db (Some 64);
  let r = run_schedule db exec_reads_arm steps in
  (r, Db.read_stats db)

(* --- reporting ----------------------------------------------------------- *)

type cell = {
  app : string;
  suite : string;
  flushes : int;
  queries : int;
  ind_scanned : int;
  shr_scanned : int;
  mqo_scanned : int;
  stats : Db.read_stats;
  identical : bool;
}

let rs_equal a b =
  Rs.columns a = Rs.columns b
  && List.equal
       (fun x y -> Array.for_all2 Sloth_storage.Value.equal x y)
       (Rs.rows a) (Rs.rows b)

let flushes_equal a b =
  List.equal (fun fa fb -> List.equal rs_equal fa fb) a b

let run_suite (module A : Sloth_workload.App_sig.S) (suite, steps) =
  let ind_rs, ind_scanned = independent_arm (module A) steps in
  let shr_rs, shr_scanned = shared_arm (module A) steps in
  let (mqo_rs, mqo_scanned), stats = mqo_arm (module A) steps in
  let queries =
    List.fold_left
      (fun acc -> function Flush sqls -> acc + List.length sqls | _ -> acc)
      0 steps
  in
  {
    app = A.name;
    suite;
    flushes =
      List.length (List.filter (function Flush _ -> true | _ -> false) steps);
    queries;
    ind_scanned;
    shr_scanned;
    mqo_scanned;
    stats;
    identical = flushes_equal ind_rs shr_rs && flushes_equal shr_rs mqo_rs;
  }

let cell_row c =
  [
    c.app;
    c.suite;
    string_of_int c.flushes;
    string_of_int c.queries;
    string_of_int c.ind_scanned;
    string_of_int c.shr_scanned;
    string_of_int c.mqo_scanned;
    string_of_int c.stats.Db.cache_hits;
    string_of_int c.stats.Db.cache_invalidations;
    string_of_int c.stats.Db.probe_sets_merged;
    string_of_int c.stats.Db.joins_shared;
    string_of_bool c.identical;
  ]

let json_of_cells cells =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n  \"experiment\": \"mqo\",\n  \"cells\": [\n";
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf
           "    {\"app\": \"%s\", \"suite\": \"%s\", \"flushes\": %d, \
            \"queries\": %d, \"rows_scanned_independent\": %d, \
            \"rows_scanned_shared\": %d, \"rows_scanned_mqo\": %d, \
            \"cache_hits\": %d, \"cache_misses\": %d, \
            \"cache_invalidations\": %d, \"probe_sets_merged\": %d, \
            \"joins_shared\": %d, \"results_identical\": %b}"
           c.app c.suite c.flushes c.queries c.ind_scanned c.shr_scanned
           c.mqo_scanned c.stats.Db.cache_hits c.stats.Db.cache_misses
           c.stats.Db.cache_invalidations c.stats.Db.probe_sets_merged
           c.stats.Db.joins_shared c.identical))
    cells;
  let hits = List.fold_left (fun a c -> a + c.stats.Db.cache_hits) 0 cells in
  let saved =
    List.fold_left (fun a c -> a + (c.shr_scanned - c.mqo_scanned)) 0 cells
  in
  let identical = List.for_all (fun c -> c.identical) cells in
  Buffer.add_string b
    (Printf.sprintf
       "\n  ],\n  \"cache_hit_total\": %d,\n  \
        \"rows_scanned_saved_vs_shared\": %d,\n  \"results_identical\": %b\n}\n"
       hits saved identical);
  Buffer.contents b

let mqo ?json () =
  Report.section
    "MQO: shared probe sets, shared joins and the cross-flush result cache";
  Printf.printf
    "  (identical multi-flush schedules — repeated flushes, interleaved \
     writes — run\n\
    \   through three arms; 'mqo' merges index probes and join subplans and \
     caches\n\
    \   results across flushes keyed on table versions; result sets must \
     stay identical)\n";
  let cells =
    List.map (run_suite Sloth_workload.App_sig.tracker)
      (suites Sloth_workload.App_sig.tracker)
    @ List.map (run_suite Sloth_workload.App_sig.medrec)
        (suites Sloth_workload.App_sig.medrec)
  in
  Report.table
    ~header:
      [
        "app"; "suite"; "flushes"; "queries"; "scan ind"; "scan shr";
        "scan mqo"; "hits"; "inval"; "probes"; "joins"; "identical";
      ]
    (List.map cell_row cells);
  let identical = List.for_all (fun c -> c.identical) cells in
  let hits = List.fold_left (fun a c -> a + c.stats.Db.cache_hits) 0 cells in
  let never_more =
    List.for_all (fun c -> c.mqo_scanned <= c.shr_scanned) cells
  in
  Printf.printf
    "\n  results identical everywhere: %b; mqo never scans more: %b; total \
     cache hits: %d\n"
    identical never_more hits;
  Option.iter
    (fun path ->
      let oc = open_out path in
      output_string oc (json_of_cells cells);
      close_out oc;
      Printf.printf "  wrote %s\n" path)
    json
