(** The graph-reachability experiment: for each traversal page of the
    triple-store workload, compare a recursive-CTE arm (one
    [WITH RECURSIVE] statement per root — the whole traversal in a single
    round trip) against the client-side frontier loop (one point query per
    expanded node).  Both arms must produce identical sorted id sets; the
    round-trip gap is the figure of merit. *)

val graph : ?json:string -> unit -> unit
(** Run the experiment and print the table; [json] additionally writes the
    machine-readable summary (deterministic — counts only, no wall-clock). *)
