(** Execute page benchmarks under both strategies over one shared
    database. *)

type page_run = {
  page : string;
  original : Sloth_web.Page.metrics;
  sloth : Sloth_web.Page.metrics;
}

val speedup : page_run -> float
(** original load time / Sloth load time. *)

val round_trip_ratio : page_run -> float
val query_ratio : page_run -> float

val prepare : ?scale:int -> (module Sloth_workload.App_sig.S) ->
  Sloth_storage.Database.t
(** Create and populate the application database. *)

val page_names : (module Sloth_workload.App_sig.S) -> string list
(** The application's page names, in declaration order. *)

val run_page :
  db:Sloth_storage.Database.t ->
  rtt_ms:float ->
  (module Sloth_workload.App_sig.S) ->
  string ->
  page_run
(** Load one page under both strategies (fresh connection, link and — for
    Sloth — query store per load). *)

val run_app :
  ?rtt_ms:float ->
  ?scale:int ->
  ?db:Sloth_storage.Database.t ->
  (module Sloth_workload.App_sig.S) ->
  page_run list
(** All pages of the application. *)

val load_sloth :
  ?policy:Sloth_core.Query_store.flush_policy ->
  db:Sloth_storage.Database.t ->
  rtt_ms:float ->
  (module Sloth_workload.App_sig.S) ->
  string ->
  Sloth_web.Page.metrics
(** Load a page under the Sloth strategy with a given flush policy. *)

val load_prefetch :
  db:Sloth_storage.Database.t ->
  rtt_ms:float ->
  (module Sloth_workload.App_sig.S) ->
  string ->
  Sloth_web.Page.metrics
(** Load a page under the prefetching baseline (asynchronous issue, one
    round trip per query). *)

(** {2 Loading under injected faults}

    The [_result] variants install a fault state and retry policy on the
    load's connection and return [Error reason] instead of raising when the
    load aborts (retry budget exhausted, circuit open, poison query
    demanded, or an unhandled server error).  The caller keeps the
    {!Sloth_net.Fault.t} handle and can read its counters afterwards. *)

val load_original_result :
  ?retry:Sloth_driver.Connection.Retry_policy.t ->
  ?fault:Sloth_net.Fault.t ->
  db:Sloth_storage.Database.t ->
  rtt_ms:float ->
  (module Sloth_workload.App_sig.S) ->
  string ->
  (Sloth_web.Page.metrics, string) result

val load_sloth_result :
  ?policy:Sloth_core.Query_store.flush_policy ->
  ?retry:Sloth_driver.Connection.Retry_policy.t ->
  ?fault:Sloth_net.Fault.t ->
  db:Sloth_storage.Database.t ->
  rtt_ms:float ->
  (module Sloth_workload.App_sig.S) ->
  string ->
  (Sloth_web.Page.metrics, string) result
