(* The planner experiment: replay the read batches that Sloth-mode page
   loads actually ship and compare executing them independently (one plan,
   one scan per query) against the multi-query batch path (normalized
   dedup + shared sequential scans), on total rows scanned and on the
   virtual batch cost the Db clock category would be charged.  A synthetic
   dashboard workload — many aggregates over unindexed columns of one hot
   table — shows the shared-scan ceiling; captured page batches show what
   the real workloads get. *)

module Db = Sloth_storage.Database
module Ex = Sloth_storage.Executor
module Cost = Sloth_storage.Cost
module Rs = Sloth_storage.Result_set
module Vclock = Sloth_net.Vclock
module Link = Sloth_net.Link
module Conn = Sloth_driver.Connection
module Qs = Sloth_core.Query_store
module Runtime = Sloth_core.Runtime

(* --- batch capture ------------------------------------------------------ *)

(* Load every page of [A] in Sloth mode with a tracer on the query store,
   recording the SQL of each shipped batch. *)
let capture_batches (module A : Sloth_workload.App_sig.S) db =
  let batches = ref [] in
  List.iter
    (fun page ->
      let clock = Vclock.create () in
      let link = Link.create ~rtt_ms:0.5 clock in
      let conn = Conn.create db link in
      let store = Qs.create conn in
      Qs.set_tracer store
        (Some
           (function
             | Qs.Batch_sent batch ->
                 batches := List.map snd batch :: !batches
             | _ -> ()));
      Runtime.set_clock (Some clock);
      let module X = Sloth_core.Exec.Lazy (struct
        let store = store
      end) in
      let module P = A.Pages (X) in
      ignore
        (Sloth_web.Page.load ~name:page ~clock ~link
           ~controller:(P.controller page) ());
      Runtime.set_clock None)
    (Runner.page_names (module A));
  List.rev !batches

(* Keep only all-read batches, parsed back into SELECTs. *)
let read_batches sql_batches =
  List.filter_map
    (fun sqls ->
      let stmts = List.map Sloth_sql.Parser.parse sqls in
      let selects =
        List.filter_map
          (function Sloth_sql.Ast.Select s -> Some s | _ -> None)
          stmts
      in
      if List.length selects = List.length stmts && selects <> [] then
        Some selects
      else None)
    sql_batches

(* --- the two execution strategies --------------------------------------- *)

type measure = { queries : int; scanned : int; batch_ms : float }

let zero = { queries = 0; scanned = 0; batch_ms = 0.0 }

let add a b =
  {
    queries = a.queries + b.queries;
    scanned = a.scanned + b.scanned;
    batch_ms = a.batch_ms +. b.batch_ms;
  }

let measure_of model (outs : Ex.outcome list) =
  let costs =
    List.map
      (fun (o : Ex.outcome) ->
        Cost.query_ms model ~rows_scanned:o.rows_scanned
          ~rows_returned:(Rs.num_rows o.rs))
      outs
  in
  {
    queries = List.length outs;
    scanned =
      List.fold_left (fun acc (o : Ex.outcome) -> acc + o.rows_scanned) 0 outs;
    batch_ms = Cost.batch_ms model costs;
  }

(* Each query planned and executed on its own (no cross-query work). *)
let independent cat model selects =
  List.map (fun s -> Ex.execute cat ~model (Sloth_sql.Ast.Select s)) selects

(* The whole batch through the multi-query path. *)
let shared cat model selects = Ex.execute_reads cat ~model selects

let rows_equal (a : Ex.outcome) (b : Ex.outcome) =
  Rs.columns a.rs = Rs.columns b.rs
  && List.equal (fun x y -> Array.for_all2 Sloth_storage.Value.equal x y) (Rs.rows a.rs)
       (Rs.rows b.rs)

(* Run one workload (a list of batches) both ways; returns the two totals
   plus whether every result set matched. *)
let run_workload db batches =
  let cat = Db.catalog db in
  let model = Db.cost_model db in
  List.fold_left
    (fun (ind, shr, ok) selects ->
      let a = independent cat model selects in
      let b = shared cat model selects in
      ( add ind (measure_of model a),
        add shr (measure_of model b),
        ok && List.equal rows_equal a b ))
    (zero, zero, true) batches

(* --- the synthetic dashboard workload ------------------------------------ *)

(* Status / gender are Choice-generated text columns: never indexed, so
   every count below plans as a sequential scan of the same hot table —
   exactly the SharedDB fan-out shape.  One pair differs only in conjunct
   order to exercise normalized dedup at this layer too. *)
let dashboard_sql (module A : Sloth_workload.App_sig.S) =
  if String.equal A.name "tracker" then
    [
      [
        "SELECT COUNT(*) AS n FROM issue WHERE status = 'new'";
        "SELECT COUNT(*) AS n FROM issue WHERE status = 'open'";
        "SELECT COUNT(*) AS n FROM issue WHERE status = 'resolved'";
        "SELECT COUNT(*) AS n FROM issue WHERE status = 'closed'";
        "SELECT status, COUNT(*) AS n FROM issue GROUP BY status";
        "SELECT COUNT(*) AS n FROM issue WHERE status = 'open' AND severity = 5";
        "SELECT COUNT(*) AS n FROM issue WHERE severity = 5 AND status = 'open'";
      ];
    ]
  else
    [
      [
        "SELECT COUNT(*) AS n FROM person WHERE gender = 'F'";
        "SELECT COUNT(*) AS n FROM person WHERE gender = 'M'";
        "SELECT gender, COUNT(*) AS n FROM person GROUP BY gender";
        "SELECT COUNT(*) AS n FROM person WHERE gender = 'F' AND birth_year = 1990";
        "SELECT COUNT(*) AS n FROM person WHERE birth_year = 1990 AND gender = 'F'";
      ];
    ]

let dashboard_batches (module A : Sloth_workload.App_sig.S) =
  read_batches (dashboard_sql (module A))

(* --- reporting ----------------------------------------------------------- *)

type cell = {
  app : string;
  workload : string;
  batches : int;
  ind : measure;
  shr : measure;
  identical : bool;
}

let pct_saved a b = if a <= 0.0 then 0.0 else 100.0 *. (a -. b) /. a

let cell_row c =
  [
    c.app;
    c.workload;
    string_of_int c.batches;
    string_of_int c.ind.queries;
    string_of_int c.ind.scanned;
    string_of_int c.shr.scanned;
    Printf.sprintf "%.1f%%"
      (pct_saved (float_of_int c.ind.scanned) (float_of_int c.shr.scanned));
    Printf.sprintf "%.3f" c.ind.batch_ms;
    Printf.sprintf "%.3f" c.shr.batch_ms;
    string_of_bool c.identical;
  ]

let json_of_cells cells =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n  \"experiment\": \"planner\",\n  \"cells\": [\n";
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf
           "    {\"app\": \"%s\", \"workload\": \"%s\", \"batches\": %d, \
            \"queries\": %d, \"rows_scanned_independent\": %d, \
            \"rows_scanned_shared\": %d, \"batch_ms_independent\": %.6f, \
            \"batch_ms_shared\": %.6f, \"results_identical\": %b}"
           c.app c.workload c.batches c.ind.queries c.ind.scanned c.shr.scanned
           c.ind.batch_ms c.shr.batch_ms c.identical))
    cells;
  let saved =
    List.fold_left (fun acc c -> acc + (c.ind.scanned - c.shr.scanned)) 0 cells
  in
  let identical = List.for_all (fun c -> c.identical) cells in
  Buffer.add_string b
    (Printf.sprintf
       "\n  ],\n  \"rows_scanned_saved\": %d,\n  \"results_identical\": %b\n}\n"
       saved identical);
  Buffer.contents b

let app_cells (module A : Sloth_workload.App_sig.S) =
  let db = Runner.prepare (module A) in
  let captured = read_batches (capture_batches (module A) db) in
  (* Only multi-query batches can share anything; singletons are noise. *)
  let captured = List.filter (fun b -> List.length b > 1) captured in
  let cind, cshr, cok = run_workload db captured in
  let dash = dashboard_batches (module A) in
  let dind, dshr, dok = run_workload db dash in
  [
    {
      app = A.name;
      workload = "captured pages";
      batches = List.length captured;
      ind = cind;
      shr = cshr;
      identical = cok;
    };
    {
      app = A.name;
      workload = "dashboard";
      batches = List.length dash;
      ind = dind;
      shr = dshr;
      identical = dok;
    };
  ]

let planner ?json () =
  Report.section
    "Planner: shared-scan batch execution vs independent per-query plans";
  Printf.printf
    "  (read batches captured from Sloth-mode page loads, then re-executed \
     both ways;\n\
    \   'shared' deduplicates normalized statements and merges sequential \
     scans of the\n\
    \   same table into one heap pass — result sets must stay identical)\n";
  let cells =
    app_cells Sloth_workload.App_sig.tracker
    @ app_cells Sloth_workload.App_sig.medrec
  in
  Report.table
    ~header:
      [
        "app"; "workload"; "batches"; "queries"; "scanned ind"; "scanned shr";
        "saved"; "ms ind"; "ms shr"; "identical";
      ]
    (List.map cell_row cells);
  let identical = List.for_all (fun c -> c.identical) cells in
  let reduced =
    List.for_all
      (fun c -> c.batches = 0 || c.shr.scanned <= c.ind.scanned)
      cells
  in
  let strict =
    List.exists (fun c -> c.shr.scanned < c.ind.scanned) cells
  in
  Printf.printf
    "\n  results identical everywhere: %b; shared never scans more: %b; \
     strictly fewer somewhere: %b\n"
    identical reduced strict;
  Option.iter
    (fun path ->
      let oc = open_out path in
      output_string oc (json_of_cells cells);
      close_out oc;
      Printf.printf "  wrote %s\n" path)
    json
