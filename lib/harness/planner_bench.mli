(** The planner / shared-scan batch-execution experiment.

    Captures the read batches Sloth-mode page loads ship for both
    applications, re-executes each batch independently and through
    {!Sloth_storage.Executor.execute_reads}, and reports total rows
    scanned and virtual batch cost for both, plus a synthetic dashboard
    fan-out over unindexed columns.  Result sets must be identical in both
    modes.  [json] names a file to receive the machine-readable summary
    (the CI smoke pass uploads it as an artifact). *)

val planner : ?json:string -> unit -> unit
