(** Sharding experiment: crash-safe two-phase commit across hash
    partitions.

    The {e crash matrix} sweeps a scripted [Server_crash] over every 2PC
    protocol step of every write batch — participant PREPARE (before and
    after the force, first and last participant), the coordinator's
    decision append (before and after; these windows cover the batch's
    whole trip range and rely on per-target scoping to fire at the
    [Coordinator] decision point only), and the phase-2 completion of the
    first and last participant — for every shard count and checkpoint
    interval in the grid.  After each crash the surviving state must be
    {e exactly} the pre- or the post-batch state (matching whether the
    idempotency token is durable on some shard), an acked commit must never
    be lost, every shard's WAL must audit clean against the decision log,
    and re-driving the token must converge exactly-once; the finished run's
    per-shard fingerprints must equal a crash-free replay's.

    The {e served} arm puts the asynchronous multi-session server over a
    sharded deployment ([?sharding] on {!Sloth_server.Admission.create})
    under seeded random whole-process crashes, checking delivered results
    against a serial replay on a fresh same-shard-count deployment (exact,
    including row order) and the logical state against an unsharded replay
    (order-insensitive).

    The {e single-shard} check pins [shards = 1] byte-identical to the
    unsharded engine: same heap fingerprint, same WAL byte stream, an empty
    decision log. *)

type layout = {
  l_start : int array;
  l_trips : int array;
  l_ref : string list;
}
(** Fault-trip layout of a crash-free run: decision points consumed before
    each batch, per-batch trip counts (2P+1 for a P-participant commit, 1
    for the single-participant fast path), and the clean final per-shard
    fingerprints. *)

val probe : shards:int -> checkpoint_every:int -> layout

type config_result = {
  cfg_shards : int;
  cfg_checkpoint_every : int;
  cfg_cases : int;
  cfg_acked : int;  (** commits that returned success *)
  cfg_applied : int;  (** tokens durable after the crash *)
  cfg_aborted : int;  (** cases resolved as (presumed) abort *)
  cfg_in_doubt_committed : int;  (** in-doubt chunks recovery committed *)
  cfg_in_doubt_aborted : int;  (** in-doubt chunks recovery aborted *)
  cfg_atomicity_violations : int;  (** states neither pre nor post — must be 0 *)
  cfg_lost_writes : int;  (** acked but not durable — must be 0 *)
  cfg_audit_violations : int;  (** WAL-vs-decision-log mismatches — must be 0 *)
  cfg_misfires : int;  (** scripted windows injecting [<>] 1 crash — must be 0 *)
  cfg_resume_ok : int;  (** cases whose token re-drive converged exactly-once *)
  cfg_final_ok : int;  (** cases ending on the shadow state *)
  cfg_replay_ok : int;  (** cases whose shard fingerprints equal the replay *)
  cfg_by_role : (string * int * int * int) list;
}

val run_config : shards:int -> checkpoint_every:int -> config_result
(** Run the full crash matrix for one (shard count, checkpoint interval)
    cell. *)

type served = {
  sh_sessions : int;
  sh_batches : int;
  sh_errors : int;
  sh_crashes : int;
  sh_recoveries : int;
  sh_torn_inflight : int;
  sh_redriven : int;
  sh_durable_acks : int;
  sh_torn : int;
  sh_two_pc : int;
  sh_one_pc : int;
  sh_aborts : int;
  sh_gathers : int;
  sh_fanout : int;
  sh_decisions : int;
  sh_identical : bool;
}

val served_sharded :
  ?crash:float -> ?shards:int -> ?checkpoint_every:int -> unit -> served
(** The async admission server over a sharded deployment under seeded
    random server crashes (defaults: crash rate 0.06, 3 shards, checkpoint
    every 2 commits). *)

val single_shard_identical : unit -> bool
(** Run the whole workload on a [shards = 1] deployment and an unsharded
    durable database side by side: equal heap fingerprints, equal WAL
    sizes, empty decision log. *)

val sharding : ?json:string -> unit -> unit
(** Run the crash matrix over every grid cell, the served arm and the
    single-shard check; when [json] is given, also write the deterministic
    counters (no wall-clock values) as a machine-readable JSON file
    (e.g. [BENCH_sharding.json]). *)
