(** Sharding experiment: crash-safe two-phase commit across hash
    partitions.

    The {e crash matrix} sweeps a scripted [Server_crash] over every 2PC
    protocol step of every write batch — participant PREPARE (before and
    after the force, first and last participant), the coordinator's
    decision append (before and after; these windows cover the batch's
    whole trip range and rely on per-target scoping to fire at the
    [Coordinator] decision point only), and the phase-2 completion of the
    first and last participant — for every shard count and checkpoint
    interval in the grid.  After each crash the surviving state must be
    {e exactly} the pre- or the post-batch state (matching whether the
    idempotency token is durable on some shard), an acked commit must never
    be lost, every shard's WAL must audit clean against the decision log,
    and re-driving the token must converge exactly-once; the finished run's
    per-shard fingerprints must equal a crash-free replay's.

    The {e served} arm puts the asynchronous multi-session server over a
    sharded deployment ([?sharding] on {!Sloth_server.Admission.create})
    under seeded random whole-process crashes, checking delivered results
    against a serial replay on a fresh same-shard-count deployment (exact,
    including row order) and the logical state against an unsharded replay
    (order-insensitive), and auditing every shard's WAL against the
    decision log at quiescence (folded into [sh_identical]).

    The {e single-shard} check pins [shards = 1] byte-identical to the
    unsharded engine: same heap fingerprint, same WAL byte stream, an empty
    decision log. *)

(** {2 Workload internals}

    Shared with {!Repl_sharding}, which runs the same batches through the
    same scripted crash points against replicated shard groups. *)

val n_batches : int
(** Write batches in the crash workload. *)

val token_of : int -> string
(** Batch [i]'s idempotency token. *)

val seed_shard : Sloth_storage.Shard.t -> unit
(** Create and populate the workload's table on a fresh deployment. *)

val seed_db : Sloth_storage.Database.t -> unit
(** The same seed on an unsharded engine (the shadow / oracle replays). *)

val drive : Sloth_storage.Shard.t -> int -> unit
(** Drive batch [i] to exactly-once completion: the caller-side
    idempotency loop (check the durable token, re-submit until applied). *)

val shadow_lfp : int -> string
(** Logical fingerprint of the intended state after the first [i] batches
    ([shadow_lfp 0] = after the seed), from an unsharded shadow run. *)

type role = {
  r_label : string;
  r_first : int;  (** first fault-trip index of the scripted window *)
  r_last : int;
  r_target : Sloth_net.Fault.target;
  r_leg : Sloth_net.Fault.leg;
}
(** One scripted crash point of the matrix. *)

val roles_of : t0:int -> trips:int -> role list
(** The crash points of a batch whose commit starts at global trip [t0]
    and consumes [trips] decision points: 2 for the 1PC fast path, 7 for a
    multi-participant commit (PREPARE first/last before/after the force,
    decision before/after the log append, first/last phase-2 ack). *)

type layout = {
  l_start : int array;
  l_trips : int array;
  l_ref : string list;
}
(** Fault-trip layout of a crash-free run: decision points consumed before
    each batch, per-batch trip counts (2P+1 for a P-participant commit, 1
    for the single-participant fast path), and the clean final per-shard
    fingerprints. *)

val probe : shards:int -> checkpoint_every:int -> layout

type config_result = {
  cfg_shards : int;
  cfg_checkpoint_every : int;
  cfg_cases : int;
  cfg_acked : int;  (** commits that returned success *)
  cfg_applied : int;  (** tokens durable after the crash *)
  cfg_aborted : int;  (** cases resolved as (presumed) abort *)
  cfg_in_doubt_committed : int;  (** in-doubt chunks recovery committed *)
  cfg_in_doubt_aborted : int;  (** in-doubt chunks recovery aborted *)
  cfg_atomicity_violations : int;  (** states neither pre nor post — must be 0 *)
  cfg_lost_writes : int;  (** acked but not durable — must be 0 *)
  cfg_audit_violations : int;  (** WAL-vs-decision-log mismatches — must be 0 *)
  cfg_misfires : int;  (** scripted windows injecting [<>] 1 crash — must be 0 *)
  cfg_resume_ok : int;  (** cases whose token re-drive converged exactly-once *)
  cfg_final_ok : int;  (** cases ending on the shadow state *)
  cfg_replay_ok : int;  (** cases whose shard fingerprints equal the replay *)
  cfg_by_role : (string * int * int * int) list;
}

val run_config : shards:int -> checkpoint_every:int -> config_result
(** Run the full crash matrix for one (shard count, checkpoint interval)
    cell. *)

type served = {
  sh_sessions : int;
  sh_batches : int;
  sh_errors : int;
  sh_crashes : int;
  sh_recoveries : int;
  sh_torn_inflight : int;
  sh_redriven : int;
  sh_durable_acks : int;
  sh_torn : int;
  sh_two_pc : int;
  sh_one_pc : int;
  sh_aborts : int;
  sh_gathers : int;
  sh_fanout : int;
  sh_decisions : int;
  sh_identical : bool;
}

val served_schedule :
  int -> (Sloth_sql.Ast.stmt list * string option * float) list
(** Session [si]'s seeded batch schedule: [(stmts, token, think_ms)] per
    batch.  Shared with the replicated-sharding served arm so both run the
    identical multi-session workload. *)

val served_same_outcome :
  Sloth_storage.Database.outcome -> Sloth_storage.Database.outcome -> bool
(** Column-, row- and rows-affected-exact outcome equality. *)

val served_ack_shaped : Sloth_storage.Database.outcome list -> bool
(** A synthesized durable-token ack: non-empty, all-empty result sets with
    zero rows affected. *)

val served_sharded :
  ?crash:float -> ?shards:int -> ?checkpoint_every:int -> unit -> served
(** The async admission server over a sharded deployment under seeded
    random server crashes (defaults: crash rate 0.06, 3 shards, checkpoint
    every 2 commits). *)

val single_shard_identical : unit -> bool
(** Run the whole workload on a [shards = 1] deployment and an unsharded
    durable database side by side: equal heap fingerprints, equal WAL
    sizes, empty decision log. *)

val sharding : ?json:string -> unit -> unit
(** Run the crash matrix over every grid cell, the served arm and the
    single-shard check; when [json] is given, also write the deterministic
    counters (no wall-clock values) as a machine-readable JSON file
    (e.g. [BENCH_sharding.json]). *)
