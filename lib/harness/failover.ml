module Db = Sloth_storage.Database
module Rs = Sloth_storage.Result_set
module Wal = Sloth_storage.Wal
module Repl = Sloth_storage.Replication
module Des = Sloth_net.Des
module Fault = Sloth_net.Fault
module Adm = Sloth_server.Admission
module Ast = Sloth_sql.Ast

(* --- workload ------------------------------------------------------------- *)

let seed_sql =
  "CREATE TABLE kv (id INT NOT NULL, v TEXT NOT NULL, n INT NOT NULL, \
   PRIMARY KEY (id))"
  :: List.init 20 (fun i ->
         Printf.sprintf "INSERT INTO kv (id, v, n) VALUES (%d, 'r%d', %d)"
           (i + 1) (i + 1)
           ((i + 1) * 10))

let parse sql =
  match Sloth_sql.Parser.parse sql with
  | stmt -> stmt
  | exception Sloth_sql.Parser.Error msg ->
      failwith ("failover workload: " ^ msg)

let seed_db db = List.iter (fun sql -> ignore (Db.exec_sql db sql)) seed_sql

let durable_db ~checkpoint_every () =
  let db = Db.create () in
  Db.enable_durability ~checkpoint_every ~wal:(Wal.mem ())
    ~checkpoint:(Wal.mem ()) db;
  seed_db db;
  db

(* Closed-loop schedules: a session submits its next batch only after the
   previous reply resolved, so per-session program order is strict — which
   is exactly what the read-your-writes check below relies on.  Write
   batches are tokened and carry no explicit transaction control, so each
   one is a single atomic commit (one WAL chunk, one LSN) and its token
   lands in the durable registry — the granularity both the LSN-interleaved
   oracle and the lost-write detector need. *)
let schedule ~seed ~si ~batches ~read_only =
  let ro = if read_only then 1 else 0 in
  let rng = Random.State.make [| 0xfa110; seed; si; ro |] in
  let fresh = ref 0 in
  List.init batches (fun b ->
      let read () =
        match Random.State.int rng 3 with
        | 0 -> "SELECT COUNT(*) AS c FROM kv"
        | 1 ->
            Printf.sprintf "SELECT * FROM kv WHERE id = %d"
              (1 + Random.State.int rng 30)
        | _ ->
            Printf.sprintf "SELECT COUNT(*) AS c FROM kv WHERE n > %d"
              (Random.State.int rng 300)
      in
      let write () =
        match Random.State.int rng 3 with
        | 0 ->
            incr fresh;
            Printf.sprintf "INSERT INTO kv (id, v, n) VALUES (%d, 's%d', %d)"
              (1000 + (100 * si) + !fresh)
              si
              (Random.State.int rng 1000)
        | 1 ->
            Printf.sprintf "UPDATE kv SET n = %d WHERE id = %d"
              (Random.State.int rng 1000)
              (1 + Random.State.int rng 20)
        | _ ->
            Printf.sprintf "DELETE FROM kv WHERE id = %d"
              (1 + Random.State.int rng 20)
      in
      let think = Random.State.float rng 2.0 in
      if read_only || Random.State.int rng 2 = 0 then
        ( List.map parse
            (List.init (1 + Random.State.int rng 2) (fun _ -> read ())),
          None, think )
      else
        ( List.map parse
            (write () :: (if Random.State.bool rng then [ write () ] else [])),
          Some (Printf.sprintf "fo%d-%d" si b),
          think ))

(* --- the LSN-interleaved serial-replay oracle ------------------------------ *)

let retained_log srv =
  let cuts = Adm.failover_log srv in
  List.filter
    (fun (e : Adm.entry) ->
      List.for_all
        (fun (epoch, cutoff) ->
          e.Adm.e_epoch >= epoch || e.Adm.e_lsn <= cutoff)
        cuts)
    (Adm.log srv)

let oracle_order entries =
  List.stable_sort
    (fun (a : Adm.entry) (b : Adm.entry) ->
      match compare a.Adm.e_lsn b.Adm.e_lsn with
      | 0 ->
          compare
            (if a.Adm.e_reads then 1 else 0)
            (if b.Adm.e_reads then 1 else 0)
      | c -> c)
    entries

let same_outcome (a : Db.outcome) (b : Db.outcome) =
  Rs.columns a.rs = Rs.columns b.rs
  && Rs.rows a.rs = Rs.rows b.rs
  && a.rows_affected = b.rows_affected

let ack_shaped outs =
  outs <> []
  && List.for_all
       (fun (o : Db.outcome) -> o.Db.rows_affected = 0 && Rs.rows o.Db.rs = [])
       outs

(* A token only reaches the WAL's durable registry through the implicit
   [atomically] wrapper, i.e. for write batches without explicit
   transaction control — only those can be held to the durable-ack bar. *)
let durable_token_eligible stmts =
  List.exists Ast.is_write stmts
  && not
       (List.exists
          (function
            | Ast.Begin_txn | Ast.Commit | Ast.Rollback -> true
            | _ -> false)
          stmts)

type verdict = {
  v_identical : bool;
  v_converged : bool;
  v_lost_writes : int;
  v_ryw_violations : int;
}

let verify srv ~delivered =
  (* Serial replay on a plain twin: keep only executions whose effects
     survive on the final timeline (an entry from a pre-failover epoch is
     discarded when its LSN lies beyond that failover's cutoff — by quorum
     construction no such execution's reply was ever delivered), then
     linearize replica-served reads into commit order by sorting on
     [(e_lsn, writes-before-reads)]. *)
  let retained = oracle_order (retained_log srv) in
  let oracle = Db.create () in
  seed_db oracle;
  let oracle_out = Hashtbl.create 64 in
  List.iter
    (fun (e : Adm.entry) ->
      match Db.exec_batch oracle e.Adm.e_stmts with
      | outs -> Hashtbl.replace oracle_out (e.Adm.e_session, e.Adm.e_seq) outs
      | exception Db.Sql_error _ -> ())
    retained;
  let primary = Adm.database srv in
  let identical = ref (Db.fingerprint primary = Db.fingerprint oracle) in
  Hashtbl.iter
    (fun key (tok, _stmts, reply) ->
      match reply with
      | Error _ -> ()
      | Ok outs -> (
          match Hashtbl.find_opt oracle_out key with
          | None -> identical := false
          | Some oracle_outs ->
              if
                not
                  ((List.length outs = List.length oracle_outs
                   && List.for_all2 same_outcome outs oracle_outs)
                  || (tok <> None && ack_shaped outs))
              then identical := false))
    delivered;
  (* At quiescence the shipper has drained: every surviving follower must
     hold exactly the primary's state. *)
  let converged =
    match Adm.replication srv with
    | None -> true
    | Some repl ->
        let pfp = Db.fingerprint (Repl.primary repl) in
        List.for_all
          (fun (i : Repl.replica_info) ->
            Db.fingerprint (Repl.replica_db repl i.Repl.id) = pfp)
          (Repl.replicas repl)
  in
  (* Zero acknowledged-write loss: every delivered tokened atomic write
     must be vouched for by the final primary's durable token registry,
     whatever chain of crashes and promotions happened in between. *)
  let lost = ref 0 in
  Hashtbl.iter
    (fun (si, _) (tok, stmts, reply) ->
      match (tok, reply) with
      | Some k, Ok _ when durable_token_eligible stmts ->
          if not (Db.token_applied primary (Printf.sprintf "s%d:%s" si k))
          then incr lost
      | _ -> ())
    delivered;
  (* Read-your-writes over the delivered history: within a session (strict
     program order under closed-loop submission), every delivered read must
     have executed at an LSN covering every earlier delivered write. *)
  let last_entry = Hashtbl.create 64 in
  List.iter
    (fun (e : Adm.entry) ->
      Hashtbl.replace last_entry (e.Adm.e_session, e.Adm.e_seq) e)
    (Adm.log srv);
  let by_session = Hashtbl.create 8 in
  Hashtbl.iter
    (fun (si, seq) v ->
      let prev =
        match Hashtbl.find_opt by_session si with Some l -> l | None -> []
      in
      Hashtbl.replace by_session si ((seq, v) :: prev))
    delivered;
  let ryw = ref 0 in
  Hashtbl.iter
    (fun si seqs ->
      let seqs = List.sort (fun (a, _) (b, _) -> compare a b) seqs in
      let floor = ref 0 in
      List.iter
        (fun (seq, (_tok, stmts, reply)) ->
          match reply with
          | Error _ -> ()
          | Ok _ -> (
              match Hashtbl.find_opt last_entry (si, seq) with
              | None -> ()
              | Some e ->
                  if e.Adm.e_reads then (
                    if e.Adm.e_lsn < !floor then incr ryw)
                  else if List.exists Ast.is_write stmts then
                    floor := max !floor e.Adm.e_lsn))
        seqs)
    by_session;
  {
    v_identical = !identical;
    v_converged = converged;
    v_lost_writes = !lost;
    v_ryw_violations = !ryw;
  }

(* --- one replicated run ---------------------------------------------------- *)

type cell = {
  fc_label : string;
  fc_ck : int;
  fc_batches : int;
  fc_errors : int;
  fc_crashes : int;
  fc_failovers : int;
  fc_recoveries : int;
  fc_torn_inflight : int;
  fc_redriven : int;
  fc_durable_acks : int;
  fc_replica_batches : int;
  fc_replica_rows : int;
  fc_ryw_fallbacks : int;
  fc_ryw_violations : int;
  fc_lost_writes : int;
  fc_torn : int;
  fc_chunks : int;
  fc_snapshots : int;
  fc_link_retransmits : int;
  fc_replicas_left : int;
  fc_identical : bool;
  fc_converged : bool;
  fc_stats : Adm.stats;
}

let run ?(label = "cell") ?(sessions = 6) ?(ro_sessions = 2) ?(batches = 12)
    ?(crash = 0.05) ?(checkpoint_every = 4) ?(rtts = [ 0.4; 0.9; 1.6 ])
    ?(drop = 0.0) ?(seed = 1) () =
  let db = durable_db ~checkpoint_every () in
  let sim = Des.create () in
  let repl = Repl.create ~sim ~primary:db () in
  List.iteri
    (fun i rtt ->
      let fault =
        if drop > 0.0 then
          Some
            (Fault.create (Fault.plan ~drop_p:drop ~seed:(seed + 700 + i) ()))
        else None
      in
      ignore (Repl.add_replica ~rtt_ms:rtt ?fault repl))
    rtts;
  let srv =
    Adm.create ~sim ~db ~window_ms:1.0
      ~retry:{ Sloth_net.Retry_policy.served with max_attempts = 60 }
      ~replication:repl ()
  in
  let delivered = Hashtbl.create 64 in
  let drive si ses sched =
    let sid = Adm.session_id ses in
    let rec go seq = function
      | [] -> ()
      | (stmts, tok, think) :: rest ->
          let fut = Adm.submit ses ?token:tok stmts in
          Des.Future.on_resolve fut (fun r ->
              Hashtbl.replace delivered (sid, seq) (tok, stmts, r);
              Des.delay sim think (fun () -> go (seq + 1) rest))
    in
    Des.at sim (0.25 *. float_of_int si) (fun () -> go 0 sched)
  in
  for si = 0 to sessions - 1 do
    let fault =
      Fault.create (Fault.plan ~crash_p:crash ~seed:(seed + 100 + si) ())
    in
    drive si
      (Adm.open_session ~fault srv)
      (schedule ~seed ~si ~batches ~read_only:false)
  done;
  for ri = 0 to ro_sessions - 1 do
    let si = sessions + ri in
    drive si (Adm.open_session srv)
      (schedule ~seed ~si ~batches ~read_only:true)
  done;
  Des.run sim ~until:Float.infinity;
  let vd = verify srv ~delivered in
  let s = Adm.stats srv in
  let rs = Repl.stats repl in
  let total = (sessions + ro_sessions) * batches in
  let torn =
    (total - Hashtbl.length delivered)
    + (match Adm.state srv with Adm.Serving -> 0 | _ -> 1)
  in
  let errors =
    Hashtbl.fold
      (fun _ (_, _, r) acc -> match r with Error _ -> acc + 1 | Ok _ -> acc)
      delivered 0
  in
  {
    fc_label = label;
    fc_ck = checkpoint_every;
    fc_batches = total;
    fc_errors = errors;
    fc_crashes = s.Adm.crashes;
    fc_failovers = s.Adm.failovers;
    fc_recoveries = s.Adm.recoveries;
    fc_torn_inflight = s.Adm.torn_inflight;
    fc_redriven = s.Adm.redriven;
    fc_durable_acks = s.Adm.durable_acks;
    fc_replica_batches = s.Adm.replica_read_batches;
    fc_replica_rows = s.Adm.replica_rows_scanned;
    fc_ryw_fallbacks = s.Adm.ryw_fallbacks;
    fc_ryw_violations = s.Adm.ryw_violations + vd.v_ryw_violations;
    fc_lost_writes = vd.v_lost_writes;
    fc_torn = torn;
    fc_chunks = rs.Repl.chunks_shipped;
    fc_snapshots = rs.Repl.snapshots_shipped;
    fc_link_retransmits = rs.Repl.retransmits;
    fc_replicas_left = Repl.n_replicas repl;
    fc_identical = vd.v_identical;
    fc_converged = vd.v_converged;
    fc_stats = s;
  }

(* --- the experiment -------------------------------------------------------- *)

(* Lag profiles: how far behind the follower fleet trails the primary.
   [balanced] keeps everyone close; [skewed] has one fast follower and two
   laggards (read routing must pick the fast one, promotion must too);
   [lossy] drops 20% of shipping legs so catch-up leans on retransmits and
   ring/snapshot recovery. *)
let profiles =
  [
    ("balanced", [ 0.4; 0.6; 0.8 ], 0.0);
    ("skewed", [ 0.4; 2.5; 6.0 ], 0.0);
    ("lossy", [ 0.8; 1.2; 1.6 ], 0.2);
  ]

let checkpoint_intervals = [ 1; 4; 0 ]

let json_of cells =
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\n  \"experiment\": \"failover\",\n  \"cells\": [\n";
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf
           "    {\"profile\": \"%s\", \"checkpoint_every\": %d, \"batches\": \
            %d, \"errors\": %d, \"crashes\": %d, \"failovers\": %d, \
            \"recoveries\": %d, \"torn_inflight\": %d, \"redriven\": %d, \
            \"durable_acks\": %d, \"replica_batches\": %d, \"replica_rows\": \
            %d, \"ryw_fallbacks\": %d, \"ryw_viol\": %d, \"lost\": %d, \
            \"torn\": %d, \"chunks\": %d, \"snapshots\": %d, \
            \"link_retransmits\": %d, \"replicas_left\": %d, \"identical\": \
            %b, \"converged\": %b}"
           c.fc_label c.fc_ck c.fc_batches c.fc_errors c.fc_crashes
           c.fc_failovers c.fc_recoveries c.fc_torn_inflight c.fc_redriven
           c.fc_durable_acks c.fc_replica_batches c.fc_replica_rows
           c.fc_ryw_fallbacks c.fc_ryw_violations c.fc_lost_writes c.fc_torn
           c.fc_chunks c.fc_snapshots c.fc_link_retransmits c.fc_replicas_left
           c.fc_identical c.fc_converged))
    cells;
  let sum f = List.fold_left (fun acc c -> acc + f c) 0 cells in
  Buffer.add_string b
    (Printf.sprintf
       "\n\
       \  ],\n\
       \  \"failovers_total\": %d,\n\
       \  \"replica_read_batches_total\": %d,\n\
       \  \"replica_rows_total\": %d,\n\
       \  \"torn_total\": %d,\n\
       \  \"lost_writes\": %d,\n\
       \  \"ryw_violations\": %d,\n\
       \  \"results_identical\": %b,\n\
       \  \"replicas_converged\": %b\n\
        }\n"
       (sum (fun c -> c.fc_failovers))
       (sum (fun c -> c.fc_replica_batches))
       (sum (fun c -> c.fc_replica_rows))
       (sum (fun c -> c.fc_torn))
       (sum (fun c -> c.fc_lost_writes))
       (sum (fun c -> c.fc_ryw_violations))
       (List.for_all (fun c -> c.fc_identical) cells)
       (List.for_all (fun c -> c.fc_converged) cells));
  Buffer.contents b

let failover ?json () =
  Report.section
    "Failover: WAL-shipping replication, replica reads, promotion";
  Printf.printf
    "  (closed-loop sessions on a replicated primary: quorum-acked writes, \
     read batches\n\
    \   routed to caught-up followers under read-your-writes, seeded random \
     primary\n\
    \   crashes recovered by promoting the most caught-up follower; \
     delivered results\n\
    \   checked against the LSN-interleaved serial-replay oracle)\n";
  let cells =
    List.concat_map
      (fun (name, rtts, drop) ->
        List.mapi
          (fun i ck ->
            run ~label:name ~checkpoint_every:ck ~rtts ~drop
              ~seed:(17 * (i + 1)) ())
          checkpoint_intervals)
      profiles
  in
  Report.table
    ~header:
      [ "profile"; "ck"; "batches"; "crashes"; "failovers"; "repl reads";
        "ryw fb"; "lost"; "ryw viol"; "torn"; "identical"; "converged" ]
    (List.map
       (fun c ->
         [
           c.fc_label;
           (if c.fc_ck = 0 then "never" else string_of_int c.fc_ck);
           string_of_int c.fc_batches;
           string_of_int c.fc_crashes;
           string_of_int c.fc_failovers;
           string_of_int c.fc_replica_batches;
           string_of_int c.fc_ryw_fallbacks;
           string_of_int c.fc_lost_writes;
           string_of_int c.fc_ryw_violations;
           string_of_int c.fc_torn;
           string_of_bool c.fc_identical;
           string_of_bool c.fc_converged;
         ])
       cells);
  (match List.rev cells with
  | last :: _ ->
      Report.subsection
        (Printf.sprintf "server counters, last cell (%s, checkpoint %s)"
           last.fc_label
           (if last.fc_ck = 0 then "never" else string_of_int last.fc_ck));
      Format.printf "%a@." Adm.pp_stats last.fc_stats
  | [] -> ());
  let sum f = List.fold_left (fun acc c -> acc + f c) 0 cells in
  Printf.printf
    "\n\
    \  lost acked writes: %d, RYW violations: %d, torn at quiescence: %d,\n\
    \  failovers: %d, replica-served read batches: %d, all identical to \
     oracle: %b\n"
    (sum (fun c -> c.fc_lost_writes))
    (sum (fun c -> c.fc_ryw_violations))
    (sum (fun c -> c.fc_torn))
    (sum (fun c -> c.fc_failovers))
    (sum (fun c -> c.fc_replica_batches))
    (List.for_all (fun c -> c.fc_identical && c.fc_converged) cells);
  Option.iter
    (fun path ->
      let oc = open_out path in
      output_string oc (json_of cells);
      close_out oc;
      Printf.printf "  wrote %s\n" path)
    json
