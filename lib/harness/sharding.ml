module Db = Sloth_storage.Database
module Shard = Sloth_storage.Shard
module Wal = Sloth_storage.Wal
module Rs = Sloth_storage.Result_set
module Fault = Sloth_net.Fault
module Des = Sloth_net.Des
module Adm = Sloth_server.Admission

(* --- the cross-shard write workload -------------------------------------- *)

let seed_sql =
  "CREATE TABLE kv (id INT NOT NULL, v TEXT NOT NULL, n INT NOT NULL, \
   PRIMARY KEY (id))"
  :: List.init 24 (fun i ->
         Printf.sprintf "INSERT INTO kv (id, v, n) VALUES (%d, 'r%d', %d)"
           (i + 1) (i + 1)
           ((i + 1) * 10))

(* Every batch touches three distinct primary keys, and every routed write
   definitely mutates its shard (inserts are fresh, updates and deletes hit
   live keys), so each touched shard votes a real PREPARE: a multi-shard
   commit over P shards consumes exactly 2P+1 fault decision points, which
   is what lets the crash matrix script a window at an exact protocol
   step. *)
let batches_sql =
  [
    [
      "INSERT INTO kv (id, v, n) VALUES (31, 'n31', 310)";
      "UPDATE kv SET v = 'u1' WHERE id = 1";
      "UPDATE kv SET n = 2000 WHERE id = 2";
    ];
    [
      "DELETE FROM kv WHERE id = 3";
      "INSERT INTO kv (id, v, n) VALUES (32, 'n32', 320)";
      "UPDATE kv SET v = 'u4' WHERE id = 4";
    ];
    [
      "UPDATE kv SET n = 55 WHERE id = 5";
      "UPDATE kv SET v = 'u6' WHERE id = 6";
      "INSERT INTO kv (id, v, n) VALUES (33, 'n33', 330)";
    ];
    [
      "INSERT INTO kv (id, v, n) VALUES (34, 'n34', 340)";
      "DELETE FROM kv WHERE id = 7";
      "UPDATE kv SET n = 88 WHERE id = 8";
    ];
    [
      "UPDATE kv SET v = 'u9' WHERE id = 9";
      "INSERT INTO kv (id, v, n) VALUES (35, 'n35', 350)";
      "DELETE FROM kv WHERE id = 10";
    ];
    [
      "DELETE FROM kv WHERE id = 31";
      "UPDATE kv SET n = 1100 WHERE id = 11";
      "UPDATE kv SET v = 'u12' WHERE id = 12";
    ];
    [
      "INSERT INTO kv (id, v, n) VALUES (36, 'n36', 360)";
      "UPDATE kv SET n = 999 WHERE id = 32";
      "UPDATE kv SET v = 'u13' WHERE id = 13";
    ];
    [
      "DELETE FROM kv WHERE id = 14";
      "INSERT INTO kv (id, v, n) VALUES (37, 'n37', 370)";
      "UPDATE kv SET n = 1500 WHERE id = 15";
    ];
    [
      "UPDATE kv SET v = 'u16' WHERE id = 16";
      "UPDATE kv SET n = 1700 WHERE id = 17";
      "INSERT INTO kv (id, v, n) VALUES (38, 'n38', 380)";
    ];
    [
      "DELETE FROM kv WHERE id = 18";
      "UPDATE kv SET v = 'u33' WHERE id = 33";
      "INSERT INTO kv (id, v, n) VALUES (39, 'n39', 390)";
    ];
  ]

let parse sql =
  match Sloth_sql.Parser.parse sql with
  | stmt -> stmt
  | exception Sloth_sql.Parser.Error msg ->
      failwith ("sharding workload: " ^ msg)

let batches = List.map (List.map parse) batches_sql
let n_batches = List.length batches
let token_of i = Printf.sprintf "sh-%d" i

let seed_shard sh = List.iter (fun sql -> ignore (Shard.exec_sql sh sql)) seed_sql
let seed_db db = List.iter (fun sql -> ignore (Db.exec_sql db sql)) seed_sql

let deployment ~shards ~checkpoint_every () =
  let sh = Shard.create ~checkpoint_every ~shards () in
  seed_shard sh;
  sh

(* Drive batch [i] to exactly-once completion: the caller-side idempotency
   loop the synchronous driver would run, against the router directly (a
   2PC crash abort surfaces as [Sql_error], which the driver treats as
   non-retryable — here the harness IS the retry loop). *)
let drive sh i =
  if not (Shard.token_applied sh (token_of i)) then
    Shard.atomically ~token:(token_of i) sh (fun () ->
        List.iter (fun s -> ignore (Shard.exec sh s)) (List.nth batches i))

(* Logical fingerprints of the intended state after the seed and after each
   batch, computed once on a plain unsharded database: the cross-shard-count
   ground truth. *)
let shadow_lfps =
  lazy
    (let db = Db.create () in
     seed_db db;
     let fps = Array.make (n_batches + 1) "" in
     fps.(0) <- Shard.logical_fingerprint_db db;
     List.iteri
       (fun i stmts ->
         Db.atomically db (fun () ->
             List.iter (fun s -> ignore (Db.exec db s)) stmts);
         fps.(i + 1) <- Shard.logical_fingerprint_db db)
       batches;
     fps)

let shadow_lfp i = (Lazy.force shadow_lfps).(i)

(* --- probe: the fault-trip layout of a fault-free run --------------------- *)

type layout = {
  l_start : int array;  (** decision points consumed before batch [i] *)
  l_trips : int array;  (** decision points batch [i]'s commit consumes *)
  l_ref : string list;  (** per-shard fingerprints of the clean final state *)
}

let probe ~shards ~checkpoint_every =
  let sh = deployment ~shards ~checkpoint_every () in
  let f = Fault.create (Fault.plan ()) in
  Shard.set_fault sh (Some f);
  let starts = Array.make n_batches 0 and trips = Array.make n_batches 0 in
  for i = 0 to n_batches - 1 do
    starts.(i) <- Fault.trips f;
    drive sh i;
    trips.(i) <- Fault.trips f - starts.(i)
  done;
  Shard.set_fault sh None;
  assert (Shard.logical_fingerprint sh = (Lazy.force shadow_lfps).(n_batches));
  { l_start = starts; l_trips = trips; l_ref = Shard.shard_fingerprints sh }

(* --- the crash matrix ------------------------------------------------------ *)

(* One scripted crash point.  [r_first..r_last] is a window of global fault-
   trip indices; [r_target] scopes it (the coordinator roles deliberately
   cover the batch's whole trip range and rely on target scoping to fire at
   the decision point only — exercising the per-component windows end to
   end). *)
type role = {
  r_label : string;
  r_first : int;
  r_last : int;
  r_target : Fault.target;
  r_leg : Fault.leg;
}

(* A single-participant batch commits 1PC and has one decision point; a
   multi-shard batch over P participants has 2P+1: P phase-1 PREPAREs (in
   touch order), the coordinator decision, P phase-2 completions. *)
let roles_of ~t0 ~trips =
  if trips <= 1 then
    [
      {
        r_label = "1pc/before-commit";
        r_first = t0 + 1;
        r_last = t0 + 1;
        r_target = Fault.Any_target;
        r_leg = Fault.Request;
      };
      {
        r_label = "1pc/after-commit";
        r_first = t0 + 1;
        r_last = t0 + 1;
        r_target = Fault.Any_target;
        r_leg = Fault.Response;
      };
    ]
  else begin
    let p = (trips - 1) / 2 in
    [
      {
        r_label = "prepare-first/before-force";
        r_first = t0 + 1;
        r_last = t0 + 1;
        r_target = Fault.Any_target;
        r_leg = Fault.Request;
      };
      {
        r_label = "prepare-first/after-force";
        r_first = t0 + 1;
        r_last = t0 + 1;
        r_target = Fault.Any_target;
        r_leg = Fault.Response;
      };
      {
        r_label = "prepare-last/after-force";
        r_first = t0 + p;
        r_last = t0 + p;
        r_target = Fault.Any_target;
        r_leg = Fault.Response;
      };
      {
        r_label = "decision/before-log";
        r_first = t0 + 1;
        r_last = t0 + trips;
        r_target = Fault.Coordinator;
        r_leg = Fault.Request;
      };
      {
        r_label = "decision/after-log";
        r_first = t0 + 1;
        r_last = t0 + trips;
        r_target = Fault.Coordinator;
        r_leg = Fault.Response;
      };
      {
        r_label = "ack-first";
        r_first = t0 + p + 2;
        r_last = t0 + p + 2;
        r_target = Fault.Any_target;
        r_leg = Fault.Response;
      };
      {
        r_label = "ack-last";
        r_first = t0 + trips;
        r_last = t0 + trips;
        r_target = Fault.Any_target;
        r_leg = Fault.Response;
      };
    ]
  end

type case_result = {
  cr_role : string;
  cr_acked : bool;  (** the commit call returned (no abort error) *)
  cr_applied : bool;  (** the idempotency token is durable on some shard *)
  cr_atomic : bool;  (** post-crash state is exactly pre or post, matching *)
  cr_lost : bool;  (** acked but not durably applied — must never happen *)
  cr_audit : int;  (** WAL-vs-decision-log audit violations *)
  cr_misfire : bool;  (** the scripted window injected [<>] 1 crash *)
  cr_resume : bool;  (** re-driving the token converged on the post state *)
  cr_final : bool;  (** remaining batches landed on the shadow state *)
  cr_replay : bool;  (** per-shard fingerprints equal the clean replay *)
  cr_in_doubt_committed : int;
  cr_in_doubt_aborted : int;
}

let run_case ~shards ~checkpoint_every ~layout ~crash_at ~(role : role) =
  let shadow = Lazy.force shadow_lfps in
  let sh = deployment ~shards ~checkpoint_every () in
  let f = Fault.create (Fault.plan ()) in
  Fault.script ~target:role.r_target f ~first:role.r_first ~last:role.r_last
    Fault.Server_crash role.r_leg;
  Shard.set_fault sh (Some f);
  for i = 0 to crash_at - 1 do
    drive sh i
  done;
  let acked =
    match drive sh crash_at with
    | () -> true
    | exception Db.Sql_error _ -> false
  in
  Shard.set_fault sh None;
  let misfire = Fault.count f Fault.Server_crash <> 1 in
  let applied = Shard.token_applied sh (token_of crash_at) in
  let lfp = Shard.logical_fingerprint sh in
  let atomic =
    if applied then lfp = shadow.(crash_at + 1) else lfp = shadow.(crash_at)
  in
  let audit = List.length (Shard.audit sh) in
  let _, _, idc, ida = Shard.recovery_totals sh in
  (* the client saw either an ack or an abort/timeout: it re-drives the same
     token, which must converge on the post-batch state exactly once *)
  drive sh crash_at;
  let resume =
    Shard.logical_fingerprint sh = shadow.(crash_at + 1)
    && Shard.token_applied sh (token_of crash_at)
  in
  for i = crash_at + 1 to n_batches - 1 do
    drive sh i
  done;
  let final = Shard.logical_fingerprint sh = shadow.(n_batches) in
  let replay = Shard.shard_fingerprints sh = layout.l_ref in
  {
    cr_role = role.r_label;
    cr_acked = acked;
    cr_applied = applied;
    cr_atomic = atomic;
    cr_lost = acked && not applied;
    cr_audit = audit;
    cr_misfire = misfire;
    cr_resume = resume;
    cr_final = final;
    cr_replay = replay;
    cr_in_doubt_committed = idc;
    cr_in_doubt_aborted = ida;
  }

type config_result = {
  cfg_shards : int;
  cfg_checkpoint_every : int;
  cfg_cases : int;
  cfg_acked : int;
  cfg_applied : int;
  cfg_aborted : int;
  cfg_in_doubt_committed : int;
  cfg_in_doubt_aborted : int;
  cfg_atomicity_violations : int;
  cfg_lost_writes : int;
  cfg_audit_violations : int;
  cfg_misfires : int;
  cfg_resume_ok : int;
  cfg_final_ok : int;
  cfg_replay_ok : int;
  cfg_by_role : (string * int * int * int) list;
      (** role, cases, acked, applied — matrix rows for the report *)
}

let run_config ~shards ~checkpoint_every =
  let layout = probe ~shards ~checkpoint_every in
  let results = ref [] in
  for crash_at = 0 to n_batches - 1 do
    List.iter
      (fun role ->
        results :=
          run_case ~shards ~checkpoint_every ~layout ~crash_at ~role
          :: !results)
      (roles_of ~t0:layout.l_start.(crash_at) ~trips:layout.l_trips.(crash_at))
  done;
  let rs = List.rev !results in
  let count p = List.length (List.filter p rs) in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 rs in
  let by_role =
    List.fold_left
      (fun acc r ->
        if List.mem_assoc r.cr_role acc then acc else acc @ [ (r.cr_role, ()) ])
      [] rs
    |> List.map (fun (label, ()) ->
           let mine = List.filter (fun r -> r.cr_role = label) rs in
           ( label,
             List.length mine,
             List.length (List.filter (fun r -> r.cr_acked) mine),
             List.length (List.filter (fun r -> r.cr_applied) mine) ))
  in
  {
    cfg_shards = shards;
    cfg_checkpoint_every = checkpoint_every;
    cfg_cases = List.length rs;
    cfg_acked = count (fun r -> r.cr_acked);
    cfg_applied = count (fun r -> r.cr_applied);
    cfg_aborted = count (fun r -> not r.cr_applied);
    cfg_in_doubt_committed = sum (fun r -> r.cr_in_doubt_committed);
    cfg_in_doubt_aborted = sum (fun r -> r.cr_in_doubt_aborted);
    cfg_atomicity_violations = count (fun r -> not r.cr_atomic);
    cfg_lost_writes = count (fun r -> r.cr_lost);
    cfg_audit_violations = sum (fun r -> r.cr_audit);
    cfg_misfires = count (fun r -> r.cr_misfire);
    cfg_resume_ok = count (fun r -> r.cr_resume);
    cfg_final_ok = count (fun r -> r.cr_final);
    cfg_replay_ok = count (fun r -> r.cr_replay);
    cfg_by_role = by_role;
  }

let shard_counts = [ 2; 3 ]
let checkpoint_intervals = [ 1; 4; 0 ]

(* --- served arm: the async server over sharded storage -------------------- *)

type served = {
  sh_sessions : int;
  sh_batches : int;
  sh_errors : int;
  sh_crashes : int;
  sh_recoveries : int;
  sh_torn_inflight : int;
  sh_redriven : int;
  sh_durable_acks : int;
  sh_torn : int;  (** batches left torn at quiescence — must be 0 *)
  sh_two_pc : int;
  sh_one_pc : int;
  sh_aborts : int;
  sh_gathers : int;
  sh_fanout : int;
  sh_decisions : int;
  sh_identical : bool;
      (** delivered results and per-shard fingerprints match a serial replay
          on a fresh same-shard-count deployment, and the logical state
          matches an unsharded replay *)
}

let served_sessions = 6
let served_batches_per_session = 10

let served_schedule si =
  let rng = Random.State.make [| 0x5a4d; si |] in
  let fresh = ref 0 in
  List.init served_batches_per_session (fun b ->
      let read () =
        match Random.State.int rng 3 with
        | 0 -> "SELECT COUNT(*) AS c FROM kv"
        | 1 ->
            Printf.sprintf "SELECT * FROM kv WHERE id = %d"
              (1 + Random.State.int rng 30)
        | _ ->
            Printf.sprintf "SELECT COUNT(*) AS c FROM kv WHERE n > %d"
              (Random.State.int rng 300)
      in
      let write () =
        match Random.State.int rng 3 with
        | 0 ->
            incr fresh;
            Printf.sprintf "INSERT INTO kv (id, v, n) VALUES (%d, 's%d', %d)"
              (200 + (100 * si) + !fresh) si
              (Random.State.int rng 1000)
        | 1 ->
            Printf.sprintf "UPDATE kv SET n = %d WHERE id = %d"
              (Random.State.int rng 1000)
              (1 + Random.State.int rng 20)
        | _ ->
            Printf.sprintf "DELETE FROM kv WHERE id = %d"
              (1 + Random.State.int rng 20)
      in
      let think = Random.State.float rng 3.0 in
      if Random.State.int rng 2 = 0 then
        ( List.map parse
            (List.init (1 + Random.State.int rng 2) (fun _ -> read ())),
          None, think )
      else
        ( List.map parse
            (write () :: (if Random.State.bool rng then [ write () ] else [])),
          Some (Printf.sprintf "sh%d-%d" si b),
          think ))

let served_same_outcome (a : Db.outcome) (b : Db.outcome) =
  Rs.columns a.rs = Rs.columns b.rs
  && Rs.rows a.rs = Rs.rows b.rs
  && a.rows_affected = b.rows_affected

let served_ack_shaped outs =
  outs <> []
  && List.for_all
       (fun (o : Db.outcome) -> o.Db.rows_affected = 0 && Rs.rows o.Db.rs = [])
       outs

let served_sharded ?(crash = 0.06) ?(shards = 3) ?(checkpoint_every = 2) () =
  let sh = deployment ~shards ~checkpoint_every () in
  let sim = Des.create () in
  let srv =
    Adm.create ~sim ~db:(Shard.shard_db sh 0) ~sharding:sh ~window_ms:1.0
      ~retry:{ Sloth_net.Retry_policy.served with max_attempts = 40 }
      ()
  in
  let delivered = Hashtbl.create 64 in
  let sessions =
    List.init served_sessions (fun si ->
        let fault =
          Fault.create (Fault.plan ~crash_p:crash ~seed:(300 + si) ())
        in
        Adm.open_session ~fault srv)
  in
  List.iteri
    (fun si ses ->
      let rec go seq = function
        | [] -> ()
        | (stmts, tok, think) :: rest ->
            let fut = Adm.submit ses ?token:tok stmts in
            Des.Future.on_resolve fut (fun r ->
                Hashtbl.replace delivered (si, seq) (tok <> None, r));
            Des.delay sim think (fun () -> go (seq + 1) rest)
      in
      Des.at sim (0.3 *. float_of_int si) (fun () -> go 0 (served_schedule si)))
    sessions;
  Des.run sim ~until:Float.infinity;
  (* serial replay on a fresh deployment with the same shard count: result
     sets (and row order) must match exactly; a second, unsharded replay
     pins the logical state across shard counts *)
  let osh = deployment ~shards ~checkpoint_every () in
  let odb = Db.create () in
  seed_db odb;
  let oracle_out = Hashtbl.create 64 in
  List.iter
    (fun (e : Adm.entry) ->
      (match Db.exec_batch odb e.Adm.e_stmts with
      | _ -> ()
      | exception Db.Sql_error _ -> ());
      match Shard.exec_batch osh e.Adm.e_stmts with
      | outs -> Hashtbl.replace oracle_out (e.Adm.e_session, e.Adm.e_seq) outs
      | exception Db.Sql_error _ -> ())
    (Adm.log srv);
  let identical =
    ref
      (Shard.shard_fingerprints sh = Shard.shard_fingerprints osh
      && Shard.logical_fingerprint sh = Shard.logical_fingerprint_db odb
      (* end-of-run audit: after the last recovery every shard's WAL must
         agree with the decision log, exactly as in each matrix cell *)
      && Shard.audit sh = [])
  in
  Hashtbl.iter
    (fun key (tokened, reply) ->
      match reply with
      | Error _ -> ()
      | Ok outs -> (
          match Hashtbl.find_opt oracle_out key with
          | None -> identical := false
          | Some oracle_outs ->
              if
                not
                  ((List.length outs = List.length oracle_outs
                   && List.for_all2 served_same_outcome outs oracle_outs)
                  || (tokened && served_ack_shaped outs))
              then identical := false))
    delivered;
  let total = served_sessions * served_batches_per_session in
  let torn =
    (total - Hashtbl.length delivered)
    + (match Adm.state srv with Adm.Serving -> 0 | _ -> 1)
  in
  let s = Adm.stats srv in
  let errors =
    Hashtbl.fold
      (fun _ (_, r) acc -> match r with Error _ -> acc + 1 | Ok _ -> acc)
      delivered 0
  in
  let ss = Shard.stats sh in
  {
    sh_sessions = served_sessions;
    sh_batches = total;
    sh_errors = errors;
    sh_crashes = s.Adm.crashes;
    sh_recoveries = s.Adm.recoveries;
    sh_torn_inflight = s.Adm.torn_inflight;
    sh_redriven = s.Adm.redriven;
    sh_durable_acks = s.Adm.durable_acks;
    sh_torn = torn;
    sh_two_pc = ss.Shard.two_pc_commits;
    sh_one_pc = ss.Shard.one_pc_commits;
    sh_aborts = ss.Shard.dtxn_aborts;
    sh_gathers = ss.Shard.gathered_reads;
    sh_fanout = ss.Shard.fanout_writes;
    sh_decisions = ss.Shard.decisions;
    sh_identical = !identical;
  }

(* --- single-shard equivalence --------------------------------------------- *)

(* [shards = 1] must be byte-identical to the unsharded engine: same heap
   fingerprint AND the same WAL byte stream (no gtids, no PREPAREs, no
   decision log entries leak into a single-shard deployment). *)
let single_shard_identical () =
  let sh = Shard.create ~checkpoint_every:4 ~shards:1 () in
  seed_shard sh;
  let db = Db.create () in
  Db.enable_durability ~checkpoint_every:4 ~wal:(Wal.mem ())
    ~checkpoint:(Wal.mem ()) db;
  seed_db db;
  List.iteri
    (fun i stmts ->
      Shard.atomically ~token:(token_of i) sh (fun () ->
          List.iter (fun s -> ignore (Shard.exec sh s)) stmts);
      Db.atomically ~token:(token_of i) db (fun () ->
          List.iter (fun s -> ignore (Db.exec db s)) stmts))
    batches;
  Db.fingerprint (Shard.shard_db sh 0) = Db.fingerprint db
  && Db.wal_size (Shard.shard_db sh 0) = Db.wal_size db
  && Sloth_storage.Two_pc.log_size (Shard.coordinator sh) = 0

(* --- JSON + report --------------------------------------------------------- *)

let json_of cfgs served single_ok =
  let b = Buffer.create 2048 in
  Buffer.add_string b "{\n  \"experiment\": \"sharding\",\n  \"configs\": [\n";
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf
           "    {\"shards\": %d, \"checkpoint_every\": %d, \"cases\": %d, \
            \"acked\": %d, \"applied\": %d, \"aborted\": %d, \
            \"in_doubt_committed\": %d, \"in_doubt_aborted\": %d, \
            \"atomicity_violations\": %d, \"lost_writes\": %d, \
            \"audit_violations\": %d, \"misfires\": %d, \"resume_exact_once\": \
            %d, \"final_ok\": %d, \"replay_identical\": %d}"
           c.cfg_shards c.cfg_checkpoint_every c.cfg_cases c.cfg_acked
           c.cfg_applied c.cfg_aborted c.cfg_in_doubt_committed
           c.cfg_in_doubt_aborted c.cfg_atomicity_violations c.cfg_lost_writes
           c.cfg_audit_violations c.cfg_misfires c.cfg_resume_ok c.cfg_final_ok
           c.cfg_replay_ok))
    cfgs;
  let total f = List.fold_left (fun acc c -> acc + f c) 0 cfgs in
  let cases = total (fun c -> c.cfg_cases) in
  let atomicity = total (fun c -> c.cfg_atomicity_violations) in
  let lost = total (fun c -> c.cfg_lost_writes) in
  let torn =
    total (fun c -> c.cfg_audit_violations) + total (fun c -> c.cfg_misfires)
  in
  let replay_ok = List.for_all (fun c -> c.cfg_replay_ok = c.cfg_cases) cfgs in
  let resume_ok =
    List.for_all
      (fun c -> c.cfg_resume_ok = c.cfg_cases && c.cfg_final_ok = c.cfg_cases)
      cfgs
  in
  Buffer.add_string b
    (Printf.sprintf
       "\n\
       \  ],\n\
       \  \"cases_total\": %d,\n\
       \  \"atomicity_violations\": %d,\n\
       \  \"lost_writes\": %d,\n\
       \  \"torn_batches\": %d,\n"
       cases atomicity lost torn);
  Buffer.add_string b
    (Printf.sprintf
       "  \"served\": {\"sessions\": %d, \"batches\": %d, \"errors\": %d, \
        \"crashes\": %d, \"recoveries\": %d, \"torn_inflight\": %d, \
        \"redriven\": %d, \"durable_acks\": %d, \"torn\": %d, \
        \"two_pc_commits\": %d, \"one_pc_commits\": %d, \"dtxn_aborts\": %d, \
        \"gathered_reads\": %d, \"fanout_writes\": %d, \"decisions\": %d, \
        \"results_identical\": %b},\n"
       served.sh_sessions served.sh_batches served.sh_errors served.sh_crashes
       served.sh_recoveries served.sh_torn_inflight served.sh_redriven
       served.sh_durable_acks served.sh_torn served.sh_two_pc served.sh_one_pc
       served.sh_aborts served.sh_gathers served.sh_fanout served.sh_decisions
       served.sh_identical);
  Buffer.add_string b
    (Printf.sprintf "  \"single_shard_identical\": %b,\n" single_ok);
  Buffer.add_string b
    (Printf.sprintf "  \"results_identical\": %b\n}\n"
       (replay_ok && resume_ok && served.sh_identical && single_ok
      && atomicity = 0 && lost = 0 && torn = 0));
  Buffer.contents b

let sharding ?json () =
  Report.section "Sharding: crash-safe two-phase commit across partitions";
  Printf.printf
    "  (%d write batches two-phase-committed across hash partitions; a \
     scripted crash swept\n\
    \   over every 2PC protocol step x every batch x %s shard counts x %d \
     checkpoint\n\
    \   intervals; each surviving state must be exactly pre- or post-batch, \
     tokens re-driven\n\
    \   to exactly-once completion, per-shard WALs audited against the \
     decision log)\n"
    n_batches
    (String.concat "/" (List.map string_of_int shard_counts))
    (List.length checkpoint_intervals);
  let cfgs = ref [] in
  List.iter
    (fun shards ->
      List.iter
        (fun ck ->
          let c = run_config ~shards ~checkpoint_every:ck in
          cfgs := !cfgs @ [ c ];
          Report.subsection
            (Printf.sprintf "%d shards, checkpoint %s" shards
               (if ck = 0 then "never" else Printf.sprintf "every %d" ck));
          Report.table
            ~header:[ "crash point"; "cases"; "acked"; "applied" ]
            (List.map
               (fun (label, cases, acked, applied) ->
                 [
                   label;
                   string_of_int cases;
                   string_of_int acked;
                   string_of_int applied;
                 ])
               c.cfg_by_role);
          Printf.printf
            "  in-doubt: %d committed / %d aborted by recovery; atomicity \
             violations %d, lost\n\
            \  acked writes %d, audit violations %d, exact-once resume %d/%d, \
             replay identical %d/%d\n"
            c.cfg_in_doubt_committed c.cfg_in_doubt_aborted
            c.cfg_atomicity_violations c.cfg_lost_writes c.cfg_audit_violations
            c.cfg_resume_ok c.cfg_cases c.cfg_replay_ok c.cfg_cases)
        checkpoint_intervals)
    shard_counts;
  let cfgs = !cfgs in
  Report.subsection "served: async multi-session server over shards";
  let sv = served_sharded () in
  Printf.printf
    "  (%d sessions x %d batches on the admission layer over %d shards, \
     seeded random server\n\
    \   crashes; whole-process recovery = decision log first, then every \
     shard's in-doubt\n\
    \   resolution; results checked against same-count and unsharded serial \
     replays)\n"
    sv.sh_sessions served_batches_per_session 3;
  Printf.printf
    "  crashes %d (recoveries %d), torn in-flight %d, re-driven %d, durable \
     acks %d, errors %d\n\
    \  2pc commits %d, 1pc commits %d, aborts %d, gathered reads %d, fanout \
     writes %d,\n\
    \  decisions %d, torn at quiescence %d, results identical: %b\n"
    sv.sh_crashes sv.sh_recoveries sv.sh_torn_inflight sv.sh_redriven
    sv.sh_durable_acks sv.sh_errors sv.sh_two_pc sv.sh_one_pc sv.sh_aborts
    sv.sh_gathers sv.sh_fanout sv.sh_decisions sv.sh_torn sv.sh_identical;
  let single_ok = single_shard_identical () in
  let cases = List.fold_left (fun acc c -> acc + c.cfg_cases) 0 cfgs in
  let atomicity =
    List.fold_left (fun acc c -> acc + c.cfg_atomicity_violations) 0 cfgs
  in
  let lost = List.fold_left (fun acc c -> acc + c.cfg_lost_writes) 0 cfgs in
  Printf.printf
    "\n\
    \  crash matrix: %d cases, atomicity violations %d, lost acked writes \
     %d,\n\
    \  single-shard deployment byte-identical to unsharded: %b\n"
    cases atomicity lost single_ok;
  Option.iter
    (fun path ->
      let oc = open_out path in
      output_string oc (json_of cfgs sv single_ok);
      close_out oc;
      Printf.printf "  wrote %s\n" path)
    json
