(** Replicated-sharding chaos matrix: per-shard replication groups that
    survive primary failover mid-2PC.

    Every deployment here makes each shard a WAL-shipping replication
    group ([Shard.create ~replicas_per_shard:2]).  The {!Sharding}
    workload and its scripted crash points are re-run on top: a scripted
    [Server_crash] at any 2PC protocol step now kills one {e node} — the
    coordinator (whole-process restart, promoting every shard), or a shard
    primary before/after its PREPARE force, before/after the decision, or
    at a phase-2 ack (promoting that shard's most caught-up follower) —
    and a separate axis kills a {e follower} instead, which must be
    completely invisible to the client.

    On top of the plain matrix's detectors (exact pre-or-post atomicity,
    no lost acked writes, WAL-vs-decision-log audit, exactly-once token
    re-drive, replay-identical fingerprints against an {e unreplicated}
    crash-free reference — replication transparency), this matrix checks
    {e prepared-transaction survival}: a crash after the coordinator's
    decision reached its log must leave the transaction durably applied
    once the promoted follower's recovery resolves its quorum-shipped
    prepared chunk through the decision log.

    The {e served} arm puts the admission server over a replicated sharded
    deployment under seeded random whole-process crashes: recovery
    promotes every shard's most caught-up follower, torn batches re-drive
    through durable idempotency against the new primaries, per-session
    per-shard read-your-writes floor vectors are re-checked on every read,
    and shard read fetches may be served by caught-up followers.  Results
    are checked against serial replays exactly as in {!Sharding}. *)

type case_result = {
  cr_role : string;
  cr_acked : bool;
  cr_applied : bool;
  cr_atomic : bool;
  cr_lost : bool;  (** acked but not durable — must never be true *)
  cr_audit : int;
  cr_misfire : bool;
  cr_resume : bool;
  cr_final : bool;
  cr_replay : bool;
  cr_promotions : int;
  cr_prepared_survived : bool;
      (** false only when a post-decision crash left the decided
          transaction unapplied — must never be false *)
}

type config_result = {
  rc_shards : int;
  rc_checkpoint_every : int;
  rc_replicas : int;
  rc_cases : int;
  rc_acked : int;
  rc_applied : int;
  rc_aborted : int;
  rc_promotions : int;  (** shard-primary promotions across the cell *)
  rc_atomicity_violations : int;  (** must be 0 *)
  rc_lost_writes : int;  (** must be 0 *)
  rc_audit_violations : int;  (** must be 0 *)
  rc_prepared_survival_violations : int;  (** must be 0 *)
  rc_misfires : int;  (** must be 0 *)
  rc_resume_ok : int;
  rc_final_ok : int;
  rc_replay_ok : int;
  rc_by_role : (string * int * int * int * int) list;
}

val run_config : shards:int -> checkpoint_every:int -> config_result
(** One (shard count, checkpoint interval) cell of the replicated matrix:
    every batch x every scripted crash point x the follower-death axis. *)

type served = {
  rv_sessions : int;
  rv_batches : int;
  rv_errors : int;
  rv_crashes : int;
  rv_recoveries : int;
  rv_torn_inflight : int;
  rv_redriven : int;
  rv_durable_acks : int;
  rv_torn : int;  (** must be 0 *)
  rv_failovers : int;  (** shard-primary promotions — the smoke wants >= 1 *)
  rv_replica_read_batches : int;
  rv_ryw_violations : int;  (** must be 0 *)
  rv_lost_acked_writes : int;  (** must be 0 *)
  rv_audit_violations : int;  (** must be 0 *)
  rv_identical : bool;
}

val served_repl_sharded :
  ?crash:float -> ?shards:int -> ?checkpoint_every:int -> unit -> served
(** The admission server over a replicated sharded deployment (defaults:
    crash rate 0.06, 3 shards x 2 replicas, checkpoint every 2). *)

val repl_sharding : ?json:string -> unit -> unit
(** Run the full replicated matrix and the served arm; when [json] is
    given, write the deterministic counters (no wall-clock values) to it
    (e.g. [BENCH_repl_sharding.json]). *)
