(** Chaos experiment: page loads under seeded fault injection.

    Sweeps fault rate × retry policy over read-only pages from both
    applications.  Every load gets a fresh {!Sloth_net.Fault.t} with a
    deterministic seed, so the whole sweep is exactly reproducible; a load
    either completes (counted with its latency, surviving faults and
    retries) or aborts (retry budget exhausted, circuit open, or a poisoned
    query demanded by the view).  Rate 0 runs the fault-free legacy path
    and anchors the latency curves. *)

module Page = Sloth_web.Page
module Fault = Sloth_net.Fault
module Conn = Sloth_driver.Connection

let pages =
  [
    ("medrec", Sloth_workload.App_sig.medrec, "patient_dashboard");
    ("medrec", Sloth_workload.App_sig.medrec, "alert_list");
    ("tracker", Sloth_workload.App_sig.tracker, "list_projects");
  ]

let rates = [ 0.0; 0.02; 0.05; 0.1; 0.2 ]
let loads_per_page = 12
let rtt_ms = 2.0

let policies =
  [
    ("no-retry", Conn.Retry_policy.no_retry);
    ("retry-4", Conn.Retry_policy.default);
    ( "retry+breaker",
      {
        Conn.Retry_policy.default with
        breaker_threshold = 3;
        breaker_cooldown_ms = 50.0;
      } );
  ]

type cell = {
  mutable ok : int;
  mutable aborts : int;
  mutable total_ms : float;  (** over completed loads only *)
  mutable faults : int;  (** injected by the fault layer, all loads *)
  mutable retries : int;  (** driver retries, completed loads only *)
}

let db_for dbs name app =
  match Hashtbl.find_opt dbs name with
  | Some db -> db
  | None ->
      let db = Runner.prepare app in
      Hashtbl.replace dbs name db;
      db

let run_cell ~dbs ~rate ~retry ~rate_i ~pol_i =
  let c = { ok = 0; aborts = 0; total_ms = 0.0; faults = 0; retries = 0 } in
  List.iteri
    (fun page_i (app_name, app, page) ->
      let db = db_for dbs app_name app in
      for iter = 0 to loads_per_page - 1 do
        let seed = 1 + (7919 * rate_i) + (611 * pol_i) + (101 * page_i) + iter in
        let fault =
          if rate <= 0.0 then None
          else Some (Fault.create (Fault.uniform ~seed rate))
        in
        (match Runner.load_sloth_result ~retry ?fault ~db ~rtt_ms app page with
        | Ok m ->
            c.ok <- c.ok + 1;
            c.total_ms <- c.total_ms +. m.Page.total_ms;
            c.retries <- c.retries + m.Page.retries
        | Error _ -> c.aborts <- c.aborts + 1);
        Option.iter (fun f -> c.faults <- c.faults + Fault.injected f) fault
      done)
    pages;
  c

let chaos () =
  Report.section "Chaos: resilience under injected faults";
  Printf.printf
    "  (%d pages x %d loads per cell, rtt %.1f ms; seeded, so reruns are \
     identical)\n"
    (List.length pages) loads_per_page rtt_ms;
  let dbs = Hashtbl.create 4 in
  List.iteri
    (fun rate_i rate ->
      Report.subsection (Printf.sprintf "fault rate %.2f" rate);
      Report.table
        ~header:
          [ "policy"; "ok"; "aborts"; "abort rate"; "mean ms"; "faults";
            "retries" ]
        (List.mapi
           (fun pol_i (label, retry) ->
             let c = run_cell ~dbs ~rate ~retry ~rate_i ~pol_i in
             let n = max 1 (c.ok + c.aborts) in
             [
               label;
               string_of_int c.ok;
               string_of_int c.aborts;
               Printf.sprintf "%.0f%%"
                 (100.0 *. float_of_int c.aborts /. float_of_int n);
               (if c.ok = 0 then "-"
                else Printf.sprintf "%.1f" (c.total_ms /. float_of_int c.ok));
               string_of_int c.faults;
               string_of_int c.retries;
             ])
           policies))
    rates

let tracked ?(rate = 0.05) () =
  let dbs = Hashtbl.create 4 in
  let c =
    run_cell ~dbs ~rate ~retry:Conn.Retry_policy.default ~rate_i:0 ~pol_i:0
  in
  Printf.printf
    "chaos@%.2f: ok %d, aborts %d, mean %s ms, faults %d, retries %d\n" rate
    c.ok c.aborts
    (if c.ok = 0 then "-"
     else Printf.sprintf "%.1f" (c.total_ms /. float_of_int c.ok))
    c.faults c.retries
