module Db = Sloth_storage.Database
module Rs = Sloth_storage.Result_set
module Wal = Sloth_storage.Wal
module Vclock = Sloth_net.Vclock
module Des = Sloth_net.Des
module Link = Sloth_net.Link
module Fault = Sloth_net.Fault
module Conn = Sloth_driver.Connection
module Adm = Sloth_server.Admission

let rtt_ms = 2.0

(* --- the chaos write workload -------------------------------------------- *)

let seed_sql =
  "CREATE TABLE kv (id INT NOT NULL, v TEXT NOT NULL, n INT NOT NULL, \
   PRIMARY KEY (id))"
  :: List.init 20 (fun i ->
         Printf.sprintf "INSERT INTO kv (id, v, n) VALUES (%d, 'r%d', %d)"
           (i + 1) (i + 1)
           ((i + 1) * 10))

(* Each batch is a multi-statement write transaction; together they walk the
   table through inserts, updates and deletes so every crash point lands on
   a different shape of redo log. *)
let batches_sql =
  [
    [
      "INSERT INTO kv (id, v, n) VALUES (21, 'n21', 210)";
      "UPDATE kv SET v = 'u1' WHERE id = 1";
      "UPDATE kv SET n = 2000 WHERE id = 2";
    ];
    [
      "DELETE FROM kv WHERE id = 3";
      "INSERT INTO kv (id, v, n) VALUES (22, 'n22', 220)";
      "UPDATE kv SET n = 999 WHERE id = 21";
    ];
    [
      "UPDATE kv SET v = 'u4' WHERE id = 4";
      "UPDATE kv SET v = 'u5' WHERE id = 5";
      "DELETE FROM kv WHERE id = 6";
      "INSERT INTO kv (id, v, n) VALUES (23, 'n23', 230)";
    ];
    [
      "INSERT INTO kv (id, v, n) VALUES (24, 'n24', 240)";
      "DELETE FROM kv WHERE id = 22";
    ];
    [
      "UPDATE kv SET n = 77 WHERE id = 7";
      "INSERT INTO kv (id, v, n) VALUES (25, 'n25', 250)";
      "UPDATE kv SET v = 'u24' WHERE id = 24";
    ];
    [
      "DELETE FROM kv WHERE id = 1";
      "DELETE FROM kv WHERE id = 2";
      "INSERT INTO kv (id, v, n) VALUES (26, 'n26', 260)";
    ];
    [
      "UPDATE kv SET n = 1 WHERE id = 26";
      "INSERT INTO kv (id, v, n) VALUES (27, 'n27', 270)";
      "UPDATE kv SET v = 'u8' WHERE id = 8";
    ];
    [
      "DELETE FROM kv WHERE id = 27";
      "UPDATE kv SET v = 'u9' WHERE id = 9";
      "INSERT INTO kv (id, v, n) VALUES (28, 'n28', 280)";
      "UPDATE kv SET n = 100 WHERE id = 10";
    ];
  ]

let parse sql =
  match Sloth_sql.Parser.parse sql with
  | stmt -> stmt
  | exception Sloth_sql.Parser.Error msg ->
      failwith ("recovery workload: " ^ msg)

let batches = List.map (List.map parse) batches_sql
let n_batches = List.length batches
let token_of i = Printf.sprintf "rec-%d" i

let seed_db db = List.iter (fun sql -> ignore (Db.exec_sql db sql)) seed_sql

let durable_db ~checkpoint_every () =
  let db = Db.create () in
  Db.enable_durability ~checkpoint_every ~wal:(Wal.mem ())
    ~checkpoint:(Wal.mem ()) db;
  seed_db db;
  db

(* Fingerprints of the intended state after the seed and after each batch,
   computed once on a plain fault-free database. *)
let shadow_fps =
  lazy
    (let db = Db.create () in
     seed_db db;
     let fps = Array.make (n_batches + 1) "" in
     fps.(0) <- Db.fingerprint db;
     List.iteri
       (fun i stmts ->
         Db.atomically db (fun () ->
             List.iter (fun s -> ignore (Db.exec db s)) stmts);
         fps.(i + 1) <- Db.fingerprint db)
       batches;
     fps)

(* --- one crash run -------------------------------------------------------- *)

type verdict = {
  recovered_to : [ `Pre | `Post | `Torn ];
  resume_exact_once : bool;  (** re-driving the token converged on post *)
  final_ok : bool;  (** the remaining batches landed on the shadow state *)
  stats : Db.recovery_stats option;
}

(* Crash the server on batch [crash_at]'s round trip (on the given leg),
   verify the recovered state is exactly pre- or post-batch, then reconnect
   and re-drive the same idempotency token to completion. *)
let crash_run ~checkpoint_every ~crash_at ~leg =
  let shadow = Lazy.force shadow_fps in
  let db = durable_db ~checkpoint_every () in
  let link = Link.create ~rtt_ms (Vclock.create ()) in
  let conn = Conn.create db link in
  Conn.set_retry_policy conn Conn.Retry_policy.no_retry;
  let run_batch conn i =
    ignore
      (Conn.execute_batch ~token:(token_of i) conn (List.nth batches i))
  in
  for i = 0 to crash_at - 1 do
    run_batch conn i
  done;
  let pre = Db.fingerprint db in
  let fault = Fault.create (Fault.plan ()) in
  Fault.script fault ~first:1 ~last:1 Fault.Server_crash leg;
  Link.set_fault link (Some fault);
  let aborted =
    match run_batch conn crash_at with
    | () -> false
    | exception Conn.Retries_exhausted _ -> true
  in
  assert aborted;
  let stats = Db.last_recovery db in
  let recovered = Db.fingerprint db in
  let recovered_to =
    if recovered = pre then `Pre
    else if recovered = shadow.(crash_at + 1) then `Post
    else `Torn
  in
  (* The client saw a timeout: it reconnects and retransmits the batch
     under the same token.  Exactly-once demands this converges on the
     post-batch state whether or not the crashed server had committed. *)
  Link.set_fault link None;
  let conn2 = Conn.create db link in
  run_batch conn2 crash_at;
  let resume_exact_once = Db.fingerprint db = shadow.(crash_at + 1) in
  for i = crash_at + 1 to n_batches - 1 do
    run_batch conn2 i
  done;
  let final_ok = Db.fingerprint db = shadow.(n_batches) in
  { recovered_to; resume_exact_once; final_ok; stats }

(* --- the experiment ------------------------------------------------------- *)

let legs =
  [
    ("request", Fault.Request);
    ("mid-batch 1", Fault.Mid_batch 1);
    ("mid-batch 2", Fault.Mid_batch 2);
    ("mid-batch all", Fault.Mid_batch 99);
    ("response", Fault.Response);
  ]

let checkpoint_intervals = [ 1; 4; 0 ]

type cell = {
  ck : int;
  leg_label : string;
  runs : int;
  pre : int;
  post : int;
  torn : int;
  resume_ok : int;
  final_ok : int;
  mean_replayed_txns : float;
  mean_wal_bytes : float;
  mean_recovery_ms : float;
}

let run_cell ~ck ~leg_label ~leg =
  let pre = ref 0
  and post = ref 0
  and torn = ref 0
  and resume_ok = ref 0
  and final_ok = ref 0
  and replayed = ref 0
  and wal_bytes = ref 0
  and rec_ms = ref 0.0 in
  for crash_at = 0 to n_batches - 1 do
    let v = crash_run ~checkpoint_every:ck ~crash_at ~leg in
    (match v.recovered_to with
    | `Pre -> incr pre
    | `Post -> incr post
    | `Torn -> incr torn);
    if v.resume_exact_once then incr resume_ok;
    if v.final_ok then incr final_ok;
    Option.iter
      (fun (s : Db.recovery_stats) ->
        replayed := !replayed + s.replayed_txns;
        wal_bytes := !wal_bytes + s.wal_bytes;
        rec_ms := !rec_ms +. s.recovery_ms)
      v.stats
  done;
  let n = float_of_int n_batches in
  {
    ck;
    leg_label;
    runs = n_batches;
    pre = !pre;
    post = !post;
    torn = !torn;
    resume_ok = !resume_ok;
    final_ok = !final_ok;
    mean_replayed_txns = float_of_int !replayed /. n;
    mean_wal_bytes = float_of_int !wal_bytes /. n;
    mean_recovery_ms = !rec_ms /. n;
  }

(* --- served-crash arm ------------------------------------------------------
   The same durability story, but through the asynchronous multi-session
   server: several closed-loop sessions submit read and tokened write
   batches while seeded random [Server_crash] faults kill the server under
   them.  Every crash tears the in-flight coalesced groups; the sessions
   reconnect and re-drive; delivered results must still match a serial
   replay of the (crash-epoch-annotated) execution log and the recovered
   database must fingerprint-equal the replay. *)

type served = {
  sv_sessions : int;
  sv_batches : int;  (** batches submitted across all sessions *)
  sv_errors : int;  (** batches answered with [Error] *)
  sv_crashes : int;  (** server crashes taken *)
  sv_epochs : int;  (** final crash epoch (= crashes taken) *)
  sv_recoveries : int;
  sv_torn_inflight : int;  (** in-flight batches torn by crashes *)
  sv_redriven : int;  (** torn batches re-driven to completion *)
  sv_durable_acks : int;  (** re-drives answered from the WAL token registry *)
  sv_reconnects : int;  (** per-session reconnect attempts, summed *)
  sv_retransmits : int;
  sv_torn : int;  (** batches left torn at quiescence — must be 0 *)
  sv_identical : bool;  (** delivered results match the serial replay *)
}

let served_sessions = 6
let served_batches_per_session = 10

let served_schedule si =
  let rng = Random.State.make [| 0x51c7ed; si |] in
  let fresh = ref 0 in
  List.init served_batches_per_session (fun b ->
      let read () =
        match Random.State.int rng 3 with
        | 0 -> "SELECT COUNT(*) AS c FROM kv"
        | 1 ->
            Printf.sprintf "SELECT * FROM kv WHERE id = %d"
              (1 + Random.State.int rng 25)
        | _ ->
            Printf.sprintf "SELECT COUNT(*) AS c FROM kv WHERE n > %d"
              (Random.State.int rng 300)
      in
      let write () =
        match Random.State.int rng 3 with
        | 0 ->
            incr fresh;
            Printf.sprintf "INSERT INTO kv (id, v, n) VALUES (%d, 's%d', %d)"
              (200 + (100 * si) + !fresh) si
              (Random.State.int rng 1000)
        | 1 ->
            Printf.sprintf "UPDATE kv SET n = %d WHERE id = %d"
              (Random.State.int rng 1000)
              (1 + Random.State.int rng 20)
        | _ ->
            Printf.sprintf "DELETE FROM kv WHERE id = %d"
              (1 + Random.State.int rng 20)
      in
      let think = Random.State.float rng 3.0 in
      if Random.State.int rng 2 = 0 then
        ( List.map parse
            (List.init (1 + Random.State.int rng 2) (fun _ -> read ())),
          None, think )
      else
        ( List.map parse
            (write () :: (if Random.State.bool rng then [ write () ] else [])),
          Some (Printf.sprintf "sv%d-%d" si b),
          think ))

let served_same_outcome (a : Db.outcome) (b : Db.outcome) =
  Rs.columns a.rs = Rs.columns b.rs
  && Rs.rows a.rs = Rs.rows b.rs
  && a.rows_affected = b.rows_affected

let served_ack_shaped outs =
  outs <> []
  && List.for_all
       (fun (o : Db.outcome) -> o.Db.rows_affected = 0 && Rs.rows o.Db.rs = [])
       outs

let served_crash ?(crash = 0.06) ?(checkpoint_every = 2) () =
  let db = durable_db ~checkpoint_every () in
  let sim = Des.create () in
  let srv = Adm.create ~sim ~db ~window_ms:1.0 ~retry:{ Sloth_net.Retry_policy.served with max_attempts = 40 }
      ()
  in
  let delivered = Hashtbl.create 64 in
  let sessions =
    List.init served_sessions (fun si ->
        let fault =
          Fault.create (Fault.plan ~crash_p:crash ~seed:(100 + si) ())
        in
        Adm.open_session ~fault srv)
  in
  List.iteri
    (fun si ses ->
      let rec go seq = function
        | [] -> ()
        | (stmts, tok, think) :: rest ->
            let fut = Adm.submit ses ?token:tok stmts in
            Des.Future.on_resolve fut (fun r ->
                Hashtbl.replace delivered (si, seq) (tok <> None, r));
            Des.delay sim think (fun () -> go (seq + 1) rest)
      in
      Des.at sim (0.3 *. float_of_int si) (fun () -> go 0 (served_schedule si)))
    sessions;
  Des.run sim ~until:Float.infinity;
  (* serial replay of the execution log on a plain twin database *)
  let oracle = Db.create () in
  seed_db oracle;
  let oracle_out = Hashtbl.create 64 in
  List.iter
    (fun (e : Adm.entry) ->
      match Db.exec_batch oracle e.Adm.e_stmts with
      | outs -> Hashtbl.replace oracle_out (e.Adm.e_session, e.Adm.e_seq) outs
      | exception Db.Sql_error _ -> ())
    (Adm.log srv);
  let identical = ref (Db.fingerprint db = Db.fingerprint oracle) in
  Hashtbl.iter
    (fun key (tokened, reply) ->
      match reply with
      | Error _ -> ()
      | Ok outs -> (
          match Hashtbl.find_opt oracle_out key with
          | None -> identical := false
          | Some oracle_outs ->
              if
                not
                  ((List.length outs = List.length oracle_outs
                   && List.for_all2 served_same_outcome outs oracle_outs)
                  || (tokened && served_ack_shaped outs))
              then identical := false))
    delivered;
  let total = served_sessions * served_batches_per_session in
  let torn =
    (total - Hashtbl.length delivered)
    + (match Adm.state srv with Adm.Serving -> 0 | _ -> 1)
  in
  let s = Adm.stats srv in
  let errors =
    Hashtbl.fold
      (fun _ (_, r) acc -> match r with Error _ -> acc + 1 | Ok _ -> acc)
      delivered 0
  in
  {
    sv_sessions = served_sessions;
    sv_batches = total;
    sv_errors = errors;
    sv_crashes = s.Adm.crashes;
    sv_epochs = Adm.epoch srv;
    sv_recoveries = s.Adm.recoveries;
    sv_torn_inflight = s.Adm.torn_inflight;
    sv_redriven = s.Adm.redriven;
    sv_durable_acks = s.Adm.durable_acks;
    sv_reconnects =
      List.fold_left (fun acc ses -> acc + Adm.session_reconnects ses) 0
        sessions;
    sv_retransmits = s.Adm.retransmits;
    sv_torn = torn;
    sv_identical = !identical;
  }

(* [mean_recovery_ms] is real wall-clock and varies run to run; it is
   printed in the report table but deliberately kept out of the JSON so the
   committed artifact is reproducible byte for byte. *)
let json_of_cells cells served =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n  \"experiment\": \"recovery\",\n  \"cells\": [\n";
  List.iteri
    (fun i c ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf
           "    {\"checkpoint_every\": %d, \"leg\": \"%s\", \"runs\": %d, \
            \"pre\": %d, \"post\": %d, \"torn\": %d, \"resume_exact_once\": \
            %d, \"final_ok\": %d, \"mean_replayed_txns\": %.2f, \
            \"mean_wal_bytes\": %.1f}"
           c.ck c.leg_label c.runs c.pre c.post c.torn c.resume_ok c.final_ok
           c.mean_replayed_txns c.mean_wal_bytes))
    cells;
  Buffer.add_string b
    (Printf.sprintf
       "\n\
       \  ],\n\
       \  \"served_crash\": {\"sessions\": %d, \"batches\": %d, \"errors\": \
        %d, \"crashes\": %d, \"epochs\": %d, \"recoveries\": %d, \
        \"torn_inflight\": %d, \"redriven\": %d, \"durable_acks\": %d, \
        \"reconnects\": %d, \"retransmits\": %d, \"torn\": %d, \
        \"results_identical\": %b},\n"
       served.sv_sessions served.sv_batches served.sv_errors served.sv_crashes
       served.sv_epochs served.sv_recoveries served.sv_torn_inflight
       served.sv_redriven served.sv_durable_acks served.sv_reconnects
       served.sv_retransmits served.sv_torn served.sv_identical);
  let torn_total =
    List.fold_left (fun acc c -> acc + c.torn) 0 cells + served.sv_torn
  in
  Buffer.add_string b
    (Printf.sprintf "  \"torn_total\": %d\n}\n" torn_total);
  Buffer.contents b

let recovery ?json () =
  Report.section "Recovery: crash durability via WAL + checkpoints";
  Printf.printf
    "  (%d write batches, crash swept over every batch x %d crash legs x %d \
     checkpoint intervals;\n\
    \   each recovered state must equal the pre- or post-batch state, then \
     the client re-drives\n\
    \   its idempotency token to exactly-once completion)\n"
    n_batches (List.length legs)
    (List.length checkpoint_intervals);
  let all_cells = ref [] in
  List.iter
    (fun ck ->
      Report.subsection
        (if ck = 0 then "checkpoint: never (replay whole log)"
         else Printf.sprintf "checkpoint every %d commit(s)" ck);
      let cells =
        List.map
          (fun (leg_label, leg) -> run_cell ~ck ~leg_label ~leg)
          legs
      in
      all_cells := !all_cells @ cells;
      Report.table
        ~header:
          [ "crash leg"; "runs"; "pre"; "post"; "torn"; "exact-once";
            "replayed txns"; "wal bytes" ]
        (List.map
           (fun c ->
             [
               c.leg_label;
               string_of_int c.runs;
               string_of_int c.pre;
               string_of_int c.post;
               string_of_int c.torn;
               Printf.sprintf "%d/%d" c.resume_ok c.runs;
               Printf.sprintf "%.1f" c.mean_replayed_txns;
               Printf.sprintf "%.0f" c.mean_wal_bytes;
             ])
           cells))
    checkpoint_intervals;
  Report.subsection "recovery time vs checkpoint interval";
  Printf.printf "  (wall-clock; non-deterministic, indicative only)\n";
  List.iter
    (fun ck ->
      let cells = List.filter (fun c -> c.ck = ck) !all_cells in
      let n = max 1 (List.length cells) in
      let mean_ms =
        List.fold_left (fun acc c -> acc +. c.mean_recovery_ms) 0.0 cells
        /. float_of_int n
      and mean_replay =
        List.fold_left (fun acc c -> acc +. c.mean_replayed_txns) 0.0 cells
        /. float_of_int n
      in
      Printf.printf "  checkpoint %-7s mean replayed txns %5.1f, mean %.4f ms\n"
        (if ck = 0 then "never:" else Printf.sprintf "%d:" ck)
        mean_replay mean_ms)
    checkpoint_intervals;
  let torn_total =
    List.fold_left (fun acc c -> acc + c.torn) 0 !all_cells
  in
  let exact =
    List.for_all (fun c -> c.resume_ok = c.runs && c.final_ok = c.runs)
      !all_cells
  in
  Printf.printf "\n  torn batches: %d, exactly-once resume everywhere: %b\n"
    torn_total exact;
  Report.subsection "served-crash: async multi-session server";
  Printf.printf
    "  (%d closed-loop sessions x %d batches on the admission layer, seeded \
     random server\n\
    \   crashes; torn in-flight groups re-driven through the durable \
     idempotency path and\n\
    \   delivered results checked against a serial replay of the execution \
     log)\n"
    served_sessions served_batches_per_session;
  let sv = served_crash () in
  Printf.printf
    "  crashes %d (epochs %d, recoveries %d), torn in-flight %d, re-driven \
     %d,\n\
    \  durable acks %d, reconnects %d, retransmits %d, errors %d\n\
    \  torn at quiescence: %d, results identical to serial replay: %b\n"
    sv.sv_crashes sv.sv_epochs sv.sv_recoveries sv.sv_torn_inflight
    sv.sv_redriven sv.sv_durable_acks sv.sv_reconnects sv.sv_retransmits
    sv.sv_errors sv.sv_torn sv.sv_identical;
  Option.iter
    (fun path ->
      let oc = open_out path in
      output_string oc (json_of_cells !all_cells sv);
      close_out oc;
      Printf.printf "  wrote %s\n" path)
    json

(* --- tracked one-liner ----------------------------------------------------
   Random crashes at rate [crash] under the default retry policy: the driver
   itself must reconnect-and-retransmit, so the token machinery (durable
   registry + replay cache) is exercised end to end.  The final state is
   compared to the fault-free shadow. *)

let tracked_batches =
  List.init 40 (fun j ->
      List.map parse
        [
          Printf.sprintf "INSERT INTO kv (id, v, n) VALUES (%d, 't%d', %d)"
            (100 + j) j (j * 3);
          Printf.sprintf "UPDATE kv SET n = %d WHERE id = %d" j (100 + j);
          Printf.sprintf "UPDATE kv SET v = 'w%d' WHERE id = %d" j
            ((j mod 20) + 1);
        ])

let tracked ?(crash = 0.05) ?(checkpoint_every = 4) () =
  let shadow_db = Db.create () in
  seed_db shadow_db;
  List.iter
    (fun stmts ->
      Db.atomically shadow_db (fun () ->
          List.iter (fun s -> ignore (Db.exec shadow_db s)) stmts))
    tracked_batches;
  let shadow = Db.fingerprint shadow_db in
  let db = durable_db ~checkpoint_every () in
  let link = Link.create ~rtt_ms (Vclock.create ()) in
  let conn = Conn.create db link in
  Conn.set_retry_policy conn
    { Conn.Retry_policy.default with max_attempts = 6 };
  let fault = Fault.create (Fault.plan ~crash_p:crash ~seed:42 ()) in
  Link.set_fault link (Some fault);
  let aborts = ref 0 in
  List.iteri
    (fun i stmts ->
      let rec drive attempt =
        match Conn.execute_batch ~token:(token_of i) conn stmts with
        | _ -> ()
        | exception Conn.Retries_exhausted _ when attempt < 20 ->
            incr aborts;
            drive (attempt + 1)
      in
      drive 0)
    tracked_batches;
  let crashes = Fault.count fault Fault.Server_crash in
  let ok = Db.fingerprint db = shadow in
  Printf.printf
    "recovery@%.2f: batches %d, crashes %d, client aborts %d, checkpoint \
     every %d, final state matches fault-free run: %b\n"
    crash
    (List.length tracked_batches)
    crashes !aborts checkpoint_every ok
