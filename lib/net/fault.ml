type failure = Drop | Reset | Server_busy | Deadlock | Server_crash
type leg = Request | Mid_batch of int | Response
type decision = Deliver of float | Fail of failure * leg
type target = Any_target | Coordinator | Shard of int

type plan = {
  drop_p : float;
  reset_p : float;
  busy_p : float;
  deadlock_p : float;
  crash_p : float;
  spike_p : float;
  spike_ms : float;
  timeout_ms : float;
  seed : int;
}

let plan ?(drop_p = 0.0) ?(reset_p = 0.0) ?(busy_p = 0.0) ?(deadlock_p = 0.0)
    ?(crash_p = 0.0) ?(spike_p = 0.0) ?(spike_ms = 5.0) ?(timeout_ms = 10.0)
    ?(seed = 1) () =
  {
    drop_p;
    reset_p;
    busy_p;
    deadlock_p;
    crash_p;
    spike_p;
    spike_ms;
    timeout_ms;
    seed;
  }

let uniform ?seed rate =
  plan ?seed ~drop_p:(0.4 *. rate) ~reset_p:(0.2 *. rate)
    ~busy_p:(0.2 *. rate) ~deadlock_p:(0.2 *. rate) ~spike_p:rate ()

type window = {
  first : int;
  last : int;
  w_failure : failure;
  w_leg : leg;
  w_target : target;
}

(* A window scoped to [Any_target] fires on every decision point in its trip
   range; one scoped to a shard or the coordinator fires only when the
   caller identifies that component.  A decision point that names no target
   ([Any_target]) is never hit by a scoped window: crashing shard 2's
   prepare leg must not take down trips that never reach shard 2. *)
let target_matches w ~target =
  match w.w_target with
  | Any_target -> true
  | t -> t = target

type t = {
  plan : plan;
  rng : Random.State.t;
  mutable windows : window list;  (* in installation order *)
  mutable trips : int;
  mutable drops : int;
  mutable resets : int;
  mutable busys : int;
  mutable deadlocks : int;
  mutable crashes : int;
  mutable spikes : int;
}

let create plan =
  {
    plan;
    rng = Random.State.make [| plan.seed |];
    windows = [];
    trips = 0;
    drops = 0;
    resets = 0;
    busys = 0;
    deadlocks = 0;
    crashes = 0;
    spikes = 0;
  }

let the_plan t = t.plan
let timeout_ms t = t.plan.timeout_ms

let script ?(target = Any_target) t ~first ~last failure leg =
  t.windows <-
    t.windows
    @ [ { first; last; w_failure = failure; w_leg = leg; w_target = target } ]

(* Counters are bumped here, from [decide], and nowhere else.  A failure
   decision is later *resolved* by the driver or server — a crash in
   particular fans out into recovery, fail-over of every in-flight batch
   and per-session re-drives — and none of that resolution machinery may
   record the failure again: each injected fault counts exactly once, no
   matter how many legs or sessions its resolution touches. *)
let record t = function
  | Drop -> t.drops <- t.drops + 1
  | Reset -> t.resets <- t.resets + 1
  | Server_busy -> t.busys <- t.busys + 1
  | Deadlock -> t.deadlocks <- t.deadlocks + 1
  | Server_crash -> t.crashes <- t.crashes + 1

let quiet p =
  p.drop_p = 0.0 && p.reset_p = 0.0 && p.busy_p = 0.0 && p.deadlock_p = 0.0
  && p.crash_p = 0.0 && p.spike_p = 0.0

let decide ?(target = Any_target) t =
  t.trips <- t.trips + 1;
  let scripted =
    List.find_opt
      (fun w ->
        w.first <= t.trips && t.trips <= w.last && target_matches w ~target)
      t.windows
  in
  let fail f leg =
    record t f;
    Fail (f, leg)
  in
  match scripted with
  | Some w -> fail w.w_failure w.w_leg
  | None ->
      let p = t.plan in
      if quiet p then Deliver 0.0
      else
        let u = Random.State.float t.rng 1.0 in
        (* A lost trip can fail on either leg; transient server errors mean
           the server received the request but refused it, so nothing was
           applied — always the request leg. *)
        let lost_leg () =
          if Random.State.bool t.rng then Request else Response
        in
        (* A crashing server can die before the request arrives, between
           two statements of a batch, or after replying — the recovery
           experiment sweeps all three deliberately. *)
        let crash_leg () =
          match Random.State.int t.rng 3 with
          | 0 -> Request
          | 1 -> Mid_batch (Random.State.int t.rng 8)
          | _ -> Response
        in
        let c1 = p.drop_p in
        let c2 = c1 +. p.reset_p in
        let c3 = c2 +. p.busy_p in
        let c4 = c3 +. p.deadlock_p in
        let c4' = c4 +. p.crash_p in
        let c5 = c4' +. p.spike_p in
        if u < c1 then fail Drop (lost_leg ())
        else if u < c2 then fail Reset (lost_leg ())
        else if u < c3 then fail Server_busy Request
        else if u < c4 then fail Deadlock Request
        else if u < c4' then fail Server_crash (crash_leg ())
        else if u < c5 then begin
          t.spikes <- t.spikes + 1;
          Deliver p.spike_ms
        end
        else Deliver 0.0

let trips t = t.trips
let injected t = t.drops + t.resets + t.busys + t.deadlocks + t.crashes

let count t = function
  | Drop -> t.drops
  | Reset -> t.resets
  | Server_busy -> t.busys
  | Deadlock -> t.deadlocks
  | Server_crash -> t.crashes

let spikes t = t.spikes

let failure_label = function
  | Drop -> "drop"
  | Reset -> "reset"
  | Server_busy -> "server-busy"
  | Deadlock -> "deadlock"
  | Server_crash -> "server-crash"

let pp ppf t =
  Format.fprintf ppf
    "trips=%d injected=%d (drop=%d reset=%d busy=%d deadlock=%d crash=%d) \
     spikes=%d"
    t.trips (injected t) t.drops t.resets t.busys t.deadlocks t.crashes
    t.spikes
