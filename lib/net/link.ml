type t = {
  mutable rtt_ms : float;
  bandwidth_mb_s : float;
  clock : Vclock.t;
  stats : Stats.t;
  mutable fault : Fault.t option;
}

exception Injected of Fault.failure

let create ?(rtt_ms = 0.5) ?(bandwidth_mb_s = 100.0) clock =
  { rtt_ms; bandwidth_mb_s; clock; stats = Stats.create (); fault = None }

let rtt_ms t = t.rtt_ms
let set_rtt_ms t rtt = t.rtt_ms <- rtt
let clock t = t.clock
let stats t = t.stats
let fault t = t.fault
let set_fault t f = t.fault <- f

let transfer_ms t ~bytes =
  (* bandwidth is MB/s; convert bytes to ms of transfer time. *)
  float_of_int bytes /. (t.bandwidth_mb_s *. 1_000_000.0) *. 1000.0

let deliver t ~queries ~bytes ~extra_ms =
  Stats.record_round_trip t.stats ~queries ~bytes;
  Vclock.advance t.clock Vclock.Network
    (t.rtt_ms +. transfer_ms t ~bytes +. extra_ms)

(* How long the client loses to a failed attempt: a drop burns the plan's
   timeout, a reset is detected in half a round trip, and a transient server
   error costs the full trip (the server received the request and answered
   with a small error frame).  A server crash looks like a drop from the
   client's side: the reply never comes and the timeout expires. *)
let failure_cost t fault ~bytes = function
  | Fault.Drop | Fault.Server_crash -> Fault.timeout_ms fault
  | Fault.Reset -> 0.5 *. t.rtt_ms
  | Fault.Server_busy | Fault.Deadlock -> t.rtt_ms +. transfer_ms t ~bytes

let charge_failure t ~queries ~bytes failure =
  match t.fault with
  | None -> ()
  | Some f ->
      Stats.record_round_trip t.stats ~queries ~bytes;
      Stats.record_fault t.stats;
      Vclock.advance t.clock Vclock.Network (failure_cost t f ~bytes failure)

let round_trip t ~queries ~bytes =
  match t.fault with
  | None -> deliver t ~queries ~bytes ~extra_ms:0.0
  | Some f -> (
      match Fault.decide f with
      | Fault.Deliver extra_ms -> deliver t ~queries ~bytes ~extra_ms
      | Fault.Fail (failure, _leg) ->
          charge_failure t ~queries ~bytes failure;
          raise (Injected failure))
