(** Shared retry/backoff and circuit-breaker constants.

    Every path that retransmits over a simulated link — the synchronous
    driver ({!Sloth_driver.Connection}), the async admission layer
    ({!Sloth_server.Admission}) and the replication WAL shipper
    ({!Sloth_storage.Replication}) — draws its policy from this one record,
    so the primary and replica paths cannot drift apart. *)

type t = {
  max_attempts : int;  (** total delivery attempts before giving up *)
  backoff_base_ms : float;  (** first backoff; doubles per attempt *)
  backoff_max_ms : float;  (** cap on a single backoff *)
  jitter : float;
      (** fraction of the capped backoff added as deterministic jitter
          (only the synchronous driver applies it; 0 disables) *)
  breaker_threshold : int;
      (** consecutive failures that open the circuit breaker *)
  breaker_cooldown_ms : float;  (** how long an open breaker stays open *)
}

val default : t
(** The synchronous driver's policy: 4 attempts, 1 ms base doubling to a
    32 ms cap with 20 % jitter, breaker at 8 consecutive failures with a
    100 ms cooldown. *)

val no_retry : t
(** [default] with a single attempt. *)

val served : t
(** The admission layer's policy: 25 attempts, 1 ms base doubling to a
    16 ms cap, no jitter, breaker disabled (the server itself arbitrates
    admission). *)

val shipping : t
(** The WAL shipper's policy: [served] with unbounded attempts — a
    replication link retries forever at the capped backoff, because a
    follower that stops receiving simply falls behind and is later caught
    up from a checkpoint. *)

val backoff_ms : t -> int -> float
(** [backoff_ms p attempt] is the capped exponential backoff before retry
    number [attempt] (1-based): [min backoff_max_ms (base * 2^(attempt-1))],
    jitter excluded. *)
