(** Traffic counters for a simulated database connection.

    The paper's headline metrics are the number of *round trips* and the
    number of *queries issued*; both are tracked here, together with batch
    sizes so the "max queries in a batch" appendix column can be
    reproduced. *)

type t

val create : unit -> t

val record_round_trip : t -> queries:int -> bytes:int -> unit
(** One wire round trip carrying [queries] statements and [bytes] payload. *)

val record_fault : t -> unit
(** One injected fault (the round trip it killed is recorded separately). *)

val record_retry : t -> unit
(** The driver decided to retry a failed round trip. *)

val round_trips : t -> int
val queries : t -> int
val bytes : t -> int

val max_batch : t -> int
(** Largest number of queries carried by a single round trip. *)

val faults : t -> int
val retries : t -> int

val reset : t -> unit

val pp : Format.formatter -> t -> unit
