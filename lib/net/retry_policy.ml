(* One shared definition of retry/backoff and circuit-breaker constants.
   The synchronous driver, the async admission layer and the WAL shipper
   all retransmit over the same simulated links; keeping their policies in
   one record stops the constants drifting apart per call site. *)

type t = {
  max_attempts : int;
  backoff_base_ms : float;
  backoff_max_ms : float;
  jitter : float;
  breaker_threshold : int;
  breaker_cooldown_ms : float;
}

let default =
  {
    max_attempts = 4;
    backoff_base_ms = 1.0;
    backoff_max_ms = 32.0;
    jitter = 0.2;
    breaker_threshold = 8;
    breaker_cooldown_ms = 100.0;
  }

let no_retry = { default with max_attempts = 1 }

let served =
  {
    max_attempts = 25;
    backoff_base_ms = 1.0;
    backoff_max_ms = 16.0;
    jitter = 0.0;
    breaker_threshold = max_int;
    breaker_cooldown_ms = 0.0;
  }

let shipping = { served with max_attempts = max_int }

let backoff_ms p attempt =
  Float.min p.backoff_max_ms
    (p.backoff_base_ms *. (2.0 ** float_of_int (attempt - 1)))
