(** A minimal discrete-event simulator.

    Used by the throughput experiment (Fig. 7) to simulate a closed system:
    a fixed population of clients repeatedly loading pages against an
    application server with a bounded worker pool and CPU, and a database
    server, connected by a fixed-latency link.

    Processes are written in continuation-passing style: every blocking
    operation takes the rest of the process as a [unit -> unit]
    continuation. *)

type t
(** A simulation instance with its own event calendar and clock. *)

val create : unit -> t

val now : t -> float
(** Current simulated time (milliseconds). *)

val at : t -> float -> (unit -> unit) -> unit
(** [at sim time k] schedules [k] to run at absolute [time]; if [time] is in
    the past it runs at the current time.  Events at equal times run in
    insertion order. *)

val delay : t -> float -> (unit -> unit) -> unit
(** [delay sim d k] runs [k] after [d] milliseconds of pure delay (e.g. a
    network round trip — no queueing). *)

val run : t -> until:float -> unit
(** Execute events in timestamp order until the calendar is empty or the
    clock passes [until]. *)

val step : t -> bool
(** Execute the single earliest event, advancing the clock to its time.
    Returns [false] (and does nothing) when the calendar is empty.  Lets a
    synchronous caller drain a private calendar to a condition — e.g. a
    shard waiting for replication quorum — without picking an [until]. *)

module Future : sig
  (** Single-assignment cells resolved by simulation events — the value a
      non-blocking [submit] hands back so the caller can [await] later.

      Callbacks registered with {!on_resolve} are scheduled on the event
      calendar at the resolution time rather than run synchronously, so the
      order in which concurrent sessions observe their replies is a property
      of the simulation, not of the resolver's call stack. *)

  type sim := t
  type 'a t

  val create : sim -> 'a t

  val resolve : 'a t -> 'a -> unit
  (** Fulfil the future and schedule its callbacks (registration order).
      Raises [Invalid_argument] on double resolution. *)

  val on_resolve : 'a t -> ('a -> unit) -> unit
  (** Register a callback; if already resolved it is scheduled to run at the
      current simulated time. *)

  val peek : 'a t -> 'a option
  (** The value, if resolved — a non-blocking poll. *)

  val is_resolved : 'a t -> bool

  val map : 'a t -> ('a -> 'b) -> 'b t
end

module Resource : sig
  (** A multi-server FCFS resource (CPU cores, DB workers, thread pool). *)

  type sim := t
  type t

  val create : sim -> servers:int -> t

  val acquire : t -> (unit -> unit) -> unit
  (** Take one server, queueing FCFS if all are busy; the continuation runs
      once a server is granted. *)

  val release : t -> unit
  (** Return one server, waking the longest-waiting acquirer if any. *)

  val with_service : t -> float -> (unit -> unit) -> unit
  (** [with_service r d k]: acquire, hold for [d] ms, release, then [k]. *)

  val in_use : t -> int
  (** Servers currently held (granted and not yet released). *)

  val queue_length : t -> int

  val busy_time : t -> float
  (** Aggregate busy server-milliseconds, for utilization reports. *)
end
