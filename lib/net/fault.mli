(** Deterministic, seeded fault injection for the simulated link.

    A {!plan} describes the failure distribution of a connection: per
    round-trip probabilities of the request being dropped, the connection
    being reset, and the server answering with a transient error
    ([Server_busy] from an overloaded server, [Deadlock] from a lock-manager
    victim pick), plus occasional latency spikes on otherwise-successful
    trips.  A {!t} instantiates a plan with a seeded RNG, so a given seed
    always produces the same fault sequence — experiments under faults are
    exactly reproducible.

    Scripted {e fault windows} override the RNG for a range of round-trip
    indices; tests use them to force, say, "the response of trip 3 is
    lost".

    A plan in which every probability is zero never draws from the RNG and
    always delivers: the fault layer is zero-cost when disabled. *)

type failure =
  | Drop         (** the packet vanished; the client burns its timeout *)
  | Reset        (** the connection was torn down mid-flight *)
  | Server_busy  (** transient server error: too many connections/requests *)
  | Deadlock     (** transient server error: picked as deadlock victim *)
  | Server_crash
      (** the server process died and restarted — volatile state is lost and
          the database recovers from its checkpoint + WAL *)

type leg =
  | Request   (** the failure hit before the server saw the request *)
  | Mid_batch of int
      (** a crash after the server executed the first [k] statements of the
          batch but before committing — only meaningful for {!Server_crash};
          [k] is clamped to the batch size by the connection *)
  | Response  (** the server processed the request; the reply was lost *)

type decision =
  | Deliver of float        (** success, with this much extra latency (ms) *)
  | Fail of failure * leg

type target =
  | Any_target  (** the whole server process / no particular component *)
  | Coordinator  (** the two-phase-commit coordinator (decision log owner) *)
  | Shard of int  (** one storage shard, as a 2PC participant *)
      (** Which component a decision point belongs to.  Scoped windows let
          one seeded plan crash shard 2's prepare leg while shard 1 stays
          healthy.  Targets only affect {e scripted} windows — the RNG path
          ignores them, so passing [?target] never perturbs the random
          sequence of an existing seeded plan. *)

type plan = {
  drop_p : float;
  reset_p : float;
  busy_p : float;
  deadlock_p : float;
  crash_p : float;     (** probability of a server crash on a trip *)
  spike_p : float;     (** probability of a latency spike on a clean trip *)
  spike_ms : float;    (** extra latency of a spike *)
  timeout_ms : float;  (** how long the client waits out a dropped trip *)
  seed : int;
}

val plan :
  ?drop_p:float ->
  ?reset_p:float ->
  ?busy_p:float ->
  ?deadlock_p:float ->
  ?crash_p:float ->
  ?spike_p:float ->
  ?spike_ms:float ->
  ?timeout_ms:float ->
  ?seed:int ->
  unit ->
  plan
(** All probabilities default to 0; [spike_ms] to 5.0, [timeout_ms] to 10.0,
    [seed] to 1.  With [crash_p] at 0 the RNG draw sequence is identical to
    a plan without crashes, so enabling the field changes nothing for
    existing seeded experiments. *)

val uniform : ?seed:int -> float -> plan
(** [uniform rate] spreads a total failure probability [rate] over the four
    failure kinds (40% drops, 20% resets, 20% busy, 20% deadlocks) and adds
    latency spikes with the same probability [rate]. *)

type t

val create : plan -> t
(** Fresh fault state: RNG seeded from the plan, counters at zero. *)

val the_plan : t -> plan
val timeout_ms : t -> float

val script : ?target:target -> t -> first:int -> last:int -> failure -> leg -> unit
(** Force every round trip whose index lies in [first..last] (1-based,
    inclusive) to fail as given, bypassing the RNG.  Windows may be stacked;
    the earliest-installed matching window wins.  [target] (default
    [Any_target]) scopes the window to one component: a window scoped to
    [Shard 2] fires only on decision points that pass [~target:(Shard 2)]. *)

val decide : ?target:target -> t -> decision
(** Advance to the next round trip and decide its fate.  Deterministic in
    the seed and the call sequence.  [target] (default [Any_target]) names
    the component this decision point belongs to; it is consulted only by
    scripted windows, never by the RNG path, so a plan with no scoped
    windows behaves identically whether or not targets are passed. *)

val trips : t -> int
(** Round trips decided so far. *)

val injected : t -> int
(** Total failures injected. *)

val count : t -> failure -> int
(** Injected failures of one kind, counted at {e decision} time: a
    [Server_crash] decision whose resolution later tears many in-flight
    batches, triggers a recovery and is re-driven by several sessions is
    still exactly one crash.  No resolution path records a second time. *)

val spikes : t -> int

val failure_label : failure -> string
val pp : Format.formatter -> t -> unit
