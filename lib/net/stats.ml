type t = {
  mutable round_trips : int;
  mutable queries : int;
  mutable bytes : int;
  mutable max_batch : int;
  mutable faults : int;
  mutable retries : int;
}

let create () =
  {
    round_trips = 0;
    queries = 0;
    bytes = 0;
    max_batch = 0;
    faults = 0;
    retries = 0;
  }

let record_round_trip t ~queries ~bytes =
  t.round_trips <- t.round_trips + 1;
  t.queries <- t.queries + queries;
  t.bytes <- t.bytes + bytes;
  if queries > t.max_batch then t.max_batch <- queries

let record_fault t = t.faults <- t.faults + 1
let record_retry t = t.retries <- t.retries + 1

let round_trips t = t.round_trips
let queries t = t.queries
let bytes t = t.bytes
let max_batch t = t.max_batch
let faults t = t.faults
let retries t = t.retries

let reset t =
  t.round_trips <- 0;
  t.queries <- 0;
  t.bytes <- 0;
  t.max_batch <- 0;
  t.faults <- 0;
  t.retries <- 0

let pp ppf t =
  Format.fprintf ppf "round-trips=%d queries=%d bytes=%d max-batch=%d"
    t.round_trips t.queries t.bytes t.max_batch;
  if t.faults > 0 || t.retries > 0 then
    Format.fprintf ppf " faults=%d retries=%d" t.faults t.retries
