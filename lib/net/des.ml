(* Event calendar: a binary min-heap on (time, sequence number).  The
   sequence number makes simultaneous events run in insertion order, which
   keeps simulations deterministic. *)

type event = { time : float; seq : int; run : unit -> unit }

module Heap = struct
  type t = { mutable a : event array; mutable len : int }

  let dummy = { time = 0.0; seq = 0; run = ignore }
  let create () = { a = Array.make 64 dummy; len = 0 }
  let is_empty h = h.len = 0

  let lt x y = x.time < y.time || (x.time = y.time && x.seq < y.seq)

  let push h e =
    if h.len = Array.length h.a then begin
      let a = Array.make (2 * h.len) dummy in
      Array.blit h.a 0 a 0 h.len;
      h.a <- a
    end;
    h.a.(h.len) <- e;
    h.len <- h.len + 1;
    (* sift up *)
    let i = ref (h.len - 1) in
    while
      !i > 0
      &&
      let p = (!i - 1) / 2 in
      lt h.a.(!i) h.a.(p)
    do
      let p = (!i - 1) / 2 in
      let tmp = h.a.(p) in
      h.a.(p) <- h.a.(!i);
      h.a.(!i) <- tmp;
      i := p
    done

  let pop h =
    assert (h.len > 0);
    let top = h.a.(0) in
    h.len <- h.len - 1;
    h.a.(0) <- h.a.(h.len);
    h.a.(h.len) <- dummy;
    (* sift down *)
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.len && lt h.a.(l) h.a.(!smallest) then smallest := l;
      if r < h.len && lt h.a.(r) h.a.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        let tmp = h.a.(!smallest) in
        h.a.(!smallest) <- h.a.(!i);
        h.a.(!i) <- tmp;
        i := !smallest
      end
      else continue := false
    done;
    top
end

type t = { heap : Heap.t; mutable clock : float; mutable next_seq : int }

let create () = { heap = Heap.create (); clock = 0.0; next_seq = 0 }

let now t = t.clock

let at t time k =
  let time = if time < t.clock then t.clock else time in
  let e = { time; seq = t.next_seq; run = k } in
  t.next_seq <- t.next_seq + 1;
  Heap.push t.heap e

let delay t d k = at t (t.clock +. d) k

let step t =
  if Heap.is_empty t.heap then false
  else begin
    let e = Heap.pop t.heap in
    t.clock <- e.time;
    e.run ();
    true
  end

let run t ~until =
  let continue = ref true in
  while !continue && not (Heap.is_empty t.heap) do
    let e = Heap.pop t.heap in
    if e.time > until then continue := false
    else begin
      t.clock <- e.time;
      e.run ()
    end
  done

module Future = struct
  type sim = t

  type 'a state = Pending of ('a -> unit) list | Resolved of 'a

  type 'a t = { sim : sim; mutable state : 'a state }

  let create sim = { sim; state = Pending [] }

  let peek f = match f.state with Resolved v -> Some v | Pending _ -> None
  let is_resolved f = peek f <> None

  (* Callbacks run via the calendar, never synchronously inside the
     resolver: resolution order therefore never depends on who happened to
     be on the stack, which keeps multi-session simulations deterministic. *)
  let resolve f v =
    match f.state with
    | Resolved _ -> invalid_arg "Des.Future.resolve: already resolved"
    | Pending ks ->
        f.state <- Resolved v;
        List.iter (fun k -> at f.sim (now f.sim) (fun () -> k v)) (List.rev ks)

  let on_resolve f k =
    match f.state with
    | Resolved v -> at f.sim (now f.sim) (fun () -> k v)
    | Pending ks -> f.state <- Pending (k :: ks)

  let map f g =
    let r = create f.sim in
    on_resolve f (fun v -> resolve r (g v));
    r
end

module Resource = struct
  type sim = t

  type t = {
    sim : sim;
    servers : int;
    mutable in_use : int;
    waiters : (unit -> unit) Queue.t;
    mutable busy_time : float;
    mutable last_change : float;
  }

  let create sim ~servers =
    assert (servers > 0);
    {
      sim;
      servers;
      in_use = 0;
      waiters = Queue.create ();
      busy_time = 0.0;
      last_change = 0.0;
    }

  let account r =
    let t = now r.sim in
    r.busy_time <- r.busy_time +. (float_of_int r.in_use *. (t -. r.last_change));
    r.last_change <- t

  let acquire r k =
    if r.in_use < r.servers then begin
      account r;
      r.in_use <- r.in_use + 1;
      (* Run the continuation via the calendar so acquisition never
         re-enters the caller synchronously at a surprising point. *)
      at r.sim (now r.sim) k
    end
    else Queue.push k r.waiters

  let release r =
    assert (r.in_use > 0);
    if Queue.is_empty r.waiters then begin
      account r;
      r.in_use <- r.in_use - 1
    end
    else begin
      (* Hand the server directly to the next waiter. *)
      let k = Queue.pop r.waiters in
      at r.sim (now r.sim) k
    end

  let with_service r d k =
    acquire r (fun () ->
        delay r.sim d (fun () ->
            release r;
            k ()))

  let in_use r = r.in_use
  let queue_length r = Queue.length r.waiters

  let busy_time r =
    (* Fold in the in-progress interval. *)
    r.busy_time +. (float_of_int r.in_use *. (now r.sim -. r.last_change))
end
