(** Network link model between application server and database server.

    A round trip costs one RTT plus payload transfer time.  The default RTT
    is 0.5 ms, matching the paper's same-datacenter setting; the scaling
    experiment (Fig. 9) sweeps it to 1 ms and 10 ms.

    A {!Fault.t} may be installed on the link; {!round_trip} then consults
    it for every trip and raises {!Injected} (after charging the wasted wire
    time) when the trip fails.  With no fault state installed — or an
    all-zero plan — the link behaves exactly as before. *)

type t

exception Injected of Fault.failure
(** A consulted fault plan killed the round trip.  The time lost to the
    failure has already been charged to the clock when this is raised. *)

val create : ?rtt_ms:float -> ?bandwidth_mb_s:float -> Vclock.t -> t
(** Defaults: [rtt_ms = 0.5], [bandwidth_mb_s = 100.0], no fault state. *)

val rtt_ms : t -> float
val set_rtt_ms : t -> float -> unit

val clock : t -> Vclock.t
val stats : t -> Stats.t

val fault : t -> Fault.t option
val set_fault : t -> Fault.t option -> unit

val round_trip : t -> queries:int -> bytes:int -> unit
(** Charge one round trip to the clock's Network category and record it in
    the stats.  With a fault plan installed, may raise {!Injected}. *)

val deliver : t -> queries:int -> bytes:int -> extra_ms:float -> unit
(** A round trip known to succeed: record and charge it, plus [extra_ms]
    of injected latency.  Used by resilient drivers that consult the fault
    plan themselves (they need the failure leg to decide whether server-side
    work ran before the response was lost). *)

val charge_failure : t -> queries:int -> bytes:int -> Fault.failure -> unit
(** Record one failed attempt and charge the time it burned: the fault
    plan's timeout for a drop, half an RTT for a reset, a full trip for a
    transient server error.  No-op if no fault state is installed. *)

val transfer_ms : t -> bytes:int -> float
(** Payload transfer time only (no RTT), for diagnostics. *)
