open Sloth_sql.Ast
module Value = Sloth_storage.Value

let lit = function
  | Value.Null -> Lit L_null
  | Value.Int n -> Lit (L_int n)
  | Value.Float f -> Lit (L_float f)
  | Value.Text s -> Lit (L_string s)
  | Value.Bool b -> Lit (L_bool b)

module Make (X : Sloth_core.Exec.S) (E : sig
  type t

  val desc : t Desc.t
end) =
struct
  let desc = E.desc

  (* First-level (session) caches. *)
  let find_cache : (int, E.t option X.v) Hashtbl.t = Hashtbl.create 32

  let assoc_cache : (string * int, Row.t list X.v) Hashtbl.t =
    Hashtbl.create 32

  let select ?order_by ?limit where =
    let order_by =
      match order_by with
      | Some c -> [ { o_expr = Col (None, c); o_asc = true } ]
      | None ->
          (* Deterministic order for reproducible HTML output. *)
          [ { o_expr = Col (None, desc.key); o_asc = true } ]
    in
    Select
      {
        sel_with = None;
        sel_distinct = false;
        sel_items = [ Star ];
        sel_from = Some (desc.table, None);
        sel_joins = [];
        sel_where = where;
        sel_group_by = [];
        sel_having = None;
        sel_order_by = order_by;
        sel_limit = limit;
        sel_offset = None;
      }

  let key_of e =
    match List.assoc_opt desc.key (desc.to_row e) with
    | Some (Value.Int id) -> Some id
    | _ -> None

  let assoc_query (a : Desc.assoc) parent_id =
    let stmt =
      Select
        {
          sel_with = None;
          sel_distinct = false;
          sel_items = [ Star ];
          sel_from = Some (a.child_table, None);
          sel_joins = [];
          sel_where =
            Some (Binop (Eq, Col (None, a.fk_column), Lit (L_int parent_id)));
          sel_group_by = [];
          sel_having = None;
          sel_order_by = [];
          sel_limit = None;
          sel_offset = None;
        }
    in
    X.query stmt Row.of_result_set

  let fetch_assoc (a : Desc.assoc) parent_id =
    match Hashtbl.find_opt assoc_cache (a.assoc_name, parent_id) with
    | Some rows -> rows
    | None ->
        let rows = assoc_query a parent_id in
        Hashtbl.replace assoc_cache (a.assoc_name, parent_id) rows;
        rows

  (* Hibernate-style eager fetching: when the strategy executes queries
     immediately, load eager associations together with the entity. *)
  let prefetch_eager_assocs id =
    if X.immediate then
      List.iter
        (fun (a : Desc.assoc) ->
          match a.fetch with
          | Desc.Eager_fetch -> ignore (fetch_assoc a id)
          | Desc.Lazy_fetch -> ())
        desc.assocs

  (* Hydrating any result list applies the fetch strategies to every
     loaded entity, exactly like Hibernate: eagerly mapped associations of
     every row in a list page are fetched immediately under the original
     runtime. *)
  let hydrate_list rs =
    let rows = Row.of_result_set rs in
    let entities = List.map desc.of_row rows in
    if X.immediate then
      List.iter
        (fun e -> Option.iter prefetch_eager_assocs (key_of e))
        entities;
    entities

  let find id =
    match Hashtbl.find_opt find_cache id with
    | Some v -> v
    | None ->
        let stmt =
          select (Some (Binop (Eq, Col (None, desc.key), Lit (L_int id))))
        in
        let v =
          X.query stmt (fun rs ->
              match Row.of_result_set rs with
              | [] -> None
              | row :: _ -> Some (desc.of_row row))
        in
        Hashtbl.replace find_cache id v;
        prefetch_eager_assocs id;
        v

  let find_exn id =
    X.map
      (function
        | Some e -> e
        | None -> raise Not_found)
      (find id)

  let all ?order_by ?limit () =
    X.query (select ?order_by ?limit None) hydrate_list

  let where ?order_by ?limit pred =
    X.query (select ?order_by ?limit (Some pred)) hydrate_list

  let find_by column v =
    X.query (select (Some (Binop (Eq, Col (None, column), lit v)))) hydrate_list

  let count ?where () =
    let stmt =
      Select
        {
          sel_with = None;
          sel_distinct = false;
          sel_items = [ Sel_expr (Agg (Count, None), Some "n") ];
          sel_from = Some (desc.table, None);
          sel_joins = [];
          sel_where = where;
          sel_group_by = [];
          sel_having = None;
          sel_order_by = [];
          sel_limit = None;
          sel_offset = None;
        }
    in
    X.query stmt (fun rs ->
        match Sloth_storage.Result_set.scalar rs with
        | Some (Value.Int n) -> n
        | _ -> 0)

  let assoc_rows name parent_id = fetch_assoc (Desc.assoc desc name) parent_id

  let insert e =
    let row = desc.to_row e in
    let stmt =
      Insert
        {
          table = desc.table;
          columns = List.map fst row;
          rows = [ List.map (fun (_, v) -> lit v) row ];
        }
    in
    ignore (X.command stmt)

  let update_fields id fields =
    let stmt =
      Update
        {
          table = desc.table;
          set = List.map (fun (c, v) -> (c, lit v)) fields;
          where = Some (Binop (Eq, Col (None, desc.key), Lit (L_int id)));
        }
    in
    X.command stmt

  let delete id =
    X.command
      (Delete
         {
           table = desc.table;
           where = Some (Binop (Eq, Col (None, desc.key), Lit (L_int id)));
         })

  let create_table () =
    ignore (X.command (Desc.create_table_stmt desc))
end
