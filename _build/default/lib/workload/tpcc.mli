(** TPC-C in the kernel language — the paper's lazy-overhead probe
    (Sec. 6.6).

    The five transaction types are kernel-language programs issuing the
    classic query sequences with every result consumed (printed)
    immediately, so Sloth has nothing to batch and the measured difference
    between the standard and lazy builds is pure lazy-evaluation cost. *)

val specs : Table_spec.t list
val populate : ?scale:int -> Sloth_storage.Database.t -> unit

val transactions : (string * (seed:int -> Sloth_kernel.Ast.program)) list
(** [(name, make)] for New order, Order status, Stock level, Payment and
    Delivery; [seed] varies the parameters (warehouse, district, customer,
    items) deterministically. *)

val n_warehouses : int
val n_items : int
