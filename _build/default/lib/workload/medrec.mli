(** Medrec: the OpenMRS-shaped medical-records evaluation application.

    A patient/visit/encounter/observation core, a concept dictionary, and
    a long tail of administrative entities.  Exposes the paper's 112 page
    benchmarks: generic admin list/form pages per entity, read-only view
    pages with child counts, search pages, and rich hand-written pages —
    the patient dashboard (Fig. 1), encounter display (the Sec. 6.1
    example, driven by the skewed observation FK), person dashboard, merge
    patients, the pathological alert list (a dependent 1+N+N chain), admin
    index, system info, and the lightweight configuration pages. *)

val name : string

val specs : Table_spec.t list
(** Topologically sorted (parents first), as {!Datagen.populate} expects. *)

val populate : ?scale:int -> Sloth_storage.Database.t -> unit

module Pages (X : Sloth_core.Exec.S) : sig
  val pages : (string * (unit -> Sloth_web.Model.t)) list
  (** 112 named controllers, each building a fresh request (own repository
      session) when invoked. *)

  val page_names : string list

  val controller : string -> unit -> Sloth_web.Model.t
  (** Raises [Not_found] for unknown pages. *)
end
