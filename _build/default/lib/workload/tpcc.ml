(** TPC-C, expressed in the kernel language and compiled both ways.

    The paper uses TPC-C purely as an overhead probe (Sec. 6.6): its
    transactions consume every query result immediately (printed to the
    console), so Sloth has nothing to batch and the measured difference is
    the cost of lazy evaluation itself.  We reproduce that setup: the five
    transaction types are kernel-language programs that issue the classic
    query sequences and print their results. *)

module TS = Table_spec
module B = Sloth_kernel.Builder
open TS

let n_warehouses = 4
let districts_per_wh = 10
let customers_per_district = 30
let n_items = 200

let specs =
  [
    spec "tpcc_warehouse"
      [ name_col "wh"; col "ytd" Sloth_sql.Ast.T_int (Int_range (0, 1000)) ]
      (fun _ -> n_warehouses);
    spec "tpcc_district"
      [
        name_col "dist";
        fk "warehouse_id" "tpcc_warehouse";
        col "ytd" Sloth_sql.Ast.T_int (Int_range (0, 1000));
        col "next_o_id" Sloth_sql.Ast.T_int (Int_range (1000, 1000));
      ]
      (fun _ -> n_warehouses * districts_per_wh);
    spec "tpcc_customer"
      [
        name_col "cust";
        fk "district_id" "tpcc_district";
        col "balance" Sloth_sql.Ast.T_int (Int_range (0, 500));
        col "payment_cnt" Sloth_sql.Ast.T_int (Int_range (0, 0));
      ]
      (fun _ -> n_warehouses * districts_per_wh * customers_per_district);
    spec "tpcc_item"
      [ name_col "item"; col "price" Sloth_sql.Ast.T_int (Int_range (1, 100)) ]
      (fun _ -> n_items);
    spec "tpcc_stock"
      [
        (* Exhaustive (warehouse, item) enumeration: every combination has
           exactly one stock row, as in the real schema's composite key. *)
        col "warehouse_id" Sloth_sql.Ast.T_int
          (Derived (fun id -> Sloth_storage.Value.Int (((id - 1) / n_items) + 1)));
        col "item_id" Sloth_sql.Ast.T_int
          (Derived (fun id -> Sloth_storage.Value.Int (((id - 1) mod n_items) + 1)));
        col "quantity" Sloth_sql.Ast.T_int (Int_range (10, 100));
      ]
      (fun _ -> n_warehouses * n_items);
    spec "tpcc_order"
      [
        fk "district_id" "tpcc_district";
        fk "customer_id" "tpcc_customer";
        col "carrier_id" Sloth_sql.Ast.T_int (Int_range (0, 10));
        col "line_count" Sloth_sql.Ast.T_int (Int_range (5, 10));
      ]
      (fun _ -> 400);
    spec "tpcc_order_line"
      [
        fk "order_id" "tpcc_order";
        fk "item_id" "tpcc_item";
        col "quantity" Sloth_sql.Ast.T_int (Int_range (1, 10));
        col "amount" Sloth_sql.Ast.T_int (Int_range (1, 500));
      ]
      (fun _ -> 2400);
    spec "tpcc_new_order"
      [ fk "order_id" "tpcc_order" ]
      (fun _ -> 120);
    spec "tpcc_history"
      [ fk "customer_id" "tpcc_customer";
        col "amount" Sloth_sql.Ast.T_int (Int_range (1, 100)) ]
      (fun _ -> 200);
  ]

let populate ?(scale = 1) db =
  Datagen.populate ~scale db specs;
  (* Derived columns get no automatic index; stock is probed by both. *)
  Sloth_storage.Database.create_index db ~table:"tpcc_stock"
    ~column:"warehouse_id";
  Sloth_storage.Database.create_index db ~table:"tpcc_stock" ~column:"item_id"

(* --- transaction programs ----------------------------------------------- *)

(* Query strings are assembled with kernel-language string concatenation
   (the formalization's R(e) / W(e) with computed e), so the lazy compiler
   sees real dependent computation. *)

let sel table id_expr =
  B.(read (str (Printf.sprintf "SELECT * FROM %s WHERE id = " table) +% id_expr))

let scalar_field rows f = B.(field (index rows (num 0)) f)

(* NEW-ORDER: read customer and district, take an order id, then for each
   of the items read the item and its stock, update the stock and insert an
   order line; finally insert the order and print the total. *)
let new_order ~seed =
  let b = B.create () in
  let open B in
  let w = 1 + (seed mod n_warehouses) in
  let d = 1 + (seed mod (n_warehouses * districts_per_wh)) in
  let c = 1 + (seed * 7 mod (n_warehouses * districts_per_wh * customers_per_district)) in
  let line_items = 5 + (seed mod 6) in
  let item_ids =
    Array.init line_items (fun i -> 1 + ((seed * 13) + (i * 17)) mod n_items)
  in
  let main =
    seq b
      [
        assign b "cust" (sel "tpcc_customer" (num c));
        print b (field (index (var "cust") (num 0)) "name");
        assign b "dist" (sel "tpcc_district" (num d));
        print b (field (index (var "dist") (num 0)) "name");
        assign b "oid"
          (scalar_field
             (read (str "SELECT COUNT(*) AS n FROM tpcc_order"))
             "n"
          +% num 1);
        write b
          (str "UPDATE tpcc_district SET next_o_id = next_o_id + 1 WHERE id = "
          +% num d);
        write b
          (str "INSERT INTO tpcc_order (id, district_id, customer_id, \
                carrier_id, line_count) VALUES ("
          +% var "oid" +% str ", " +% num d +% str ", " +% num c
          +% str ", 0, " +% num line_items +% str ")");
        write b
          (str "INSERT INTO tpcc_new_order (id, order_id) VALUES ("
          +% (var "oid" +% num 100000)
          +% str ", " +% var "oid" +% str ")");
        assign b "total" (num 0);
        assign b "line" (num 0);
        seq b
          (List.concat_map
             (fun item_id ->
               [
                 assign b "item" (sel "tpcc_item" (num item_id));
                 assign b "price" (field (index (var "item") (num 0)) "price");
                 assign b "stock_rows"
                   (read
                      (str
                         "SELECT * FROM tpcc_stock WHERE warehouse_id = "
                      +% num w
                      +% str " AND item_id = "
                      +% num item_id));
                 assign b "qty" (field (index (var "stock_rows") (num 0)) "quantity");
                 write b
                   (str "UPDATE tpcc_stock SET quantity = quantity - 1 WHERE \
                         warehouse_id = "
                   +% num w +% str " AND item_id = " +% num item_id);
                 assign b "line" (var "line" +% num 1);
                 assign b "amount" (var "price" *% num 2);
                 write b
                   (str
                      "INSERT INTO tpcc_order_line (id, order_id, item_id, \
                       quantity, amount) VALUES ("
                   +% ((var "oid" *% num 100) +% var "line")
                   +% str ", " +% var "oid" +% str ", " +% num item_id
                   +% str ", 2, " +% var "amount" +% str ")");
                 assign b "total" (var "total" +% var "amount");
                 (* The console output the reference implementation emits. *)
                 print b (var "qty");
               ])
             (Array.to_list item_ids));
        print b (var "total");
      ]
  in
  B.program [] main

(* PAYMENT: read warehouse/district/customer, apply the payment, record
   history, print the receipt. *)
let payment ~seed =
  let b = B.create () in
  let open B in
  let w = 1 + (seed mod n_warehouses) in
  let d = 1 + (seed mod (n_warehouses * districts_per_wh)) in
  let c = 1 + (seed * 11 mod (n_warehouses * districts_per_wh * customers_per_district)) in
  let amount = 10 + (seed mod 90) in
  let main =
    seq b
      [
        assign b "wh" (sel "tpcc_warehouse" (num w));
        print b (field (index (var "wh") (num 0)) "name");
        assign b "dist" (sel "tpcc_district" (num d));
        print b (field (index (var "dist") (num 0)) "name");
        assign b "cust" (sel "tpcc_customer" (num c));
        print b (field (index (var "cust") (num 0)) "name");
        write b
          (str "UPDATE tpcc_customer SET balance = balance - " +% num amount
          +% str ", payment_cnt = payment_cnt + 1 WHERE id = " +% num c);
        write b
          (str "UPDATE tpcc_district SET ytd = ytd + " +% num amount
          +% str " WHERE id = " +% num d);
        write b
          (str "UPDATE tpcc_warehouse SET ytd = ytd + " +% num amount
          +% str " WHERE id = " +% num w);
        write b
          (str "INSERT INTO tpcc_history (id, customer_id, amount) VALUES ("
          +% num (100000 + seed)
          +% str ", " +% num c +% str ", " +% num amount +% str ")");
        print b (field (index (var "cust") (num 0)) "balance");
      ]
  in
  B.program [] main

(* ORDER-STATUS: customer, most recent order, its lines. *)
let order_status ~seed =
  let b = B.create () in
  let open B in
  let c = 1 + (seed * 3 mod (n_warehouses * districts_per_wh * customers_per_district)) in
  let main =
    seq b
      [
        assign b "cust" (sel "tpcc_customer" (num c));
        print b (field (index (var "cust") (num 0)) "balance");
        assign b "orders"
          (read
             (str "SELECT * FROM tpcc_order WHERE customer_id = " +% num c
             +% str " ORDER BY id DESC LIMIT 1"));
        if_ b
          (len (var "orders") >% num 0)
          (seq b
             [
               assign b "oid" (field (index (var "orders") (num 0)) "id");
               assign b "lines"
                 (read
                    (str "SELECT * FROM tpcc_order_line WHERE order_id = "
                    +% var "oid"));
               assign b "i" (num 0);
               while_ b
                 (seq b
                    [
                      if_ b
                        (not_ (var "i" <% len (var "lines")))
                        (break b) (skip b);
                      print b (field (index (var "lines") (var "i")) "amount");
                      assign b "i" (var "i" +% num 1);
                    ]);
             ])
          (print b (str "no orders"));
      ]
  in
  B.program [] main

(* DELIVERY: for a batch of districts, take the oldest new-order, deliver
   it, credit the customer. *)
let delivery ~seed =
  let b = B.create () in
  let open B in
  let carrier = 1 + (seed mod 10) in
  let main =
    seq b
      [
        assign b "delivered" (num 0);
        for_range b "d" ~from:(num 1) ~below:(num 4) (fun _d ->
            seq b
              [
                assign b "pending"
                  (read (str "SELECT * FROM tpcc_new_order ORDER BY id ASC LIMIT 1"));
                if_ b
                  (len (var "pending") >% num 0)
                  (seq b
                     [
                       assign b "no_id" (field (index (var "pending") (num 0)) "id");
                       assign b "oid"
                         (field (index (var "pending") (num 0)) "order_id");
                       write b
                         (str "DELETE FROM tpcc_new_order WHERE id = " +% var "no_id");
                       write b
                         (str "UPDATE tpcc_order SET carrier_id = " +% num carrier
                         +% str " WHERE id = " +% var "oid");
                       assign b "sum_rows"
                         (read
                            (str
                               "SELECT SUM(amount) AS total FROM \
                                tpcc_order_line WHERE order_id = "
                            +% var "oid"));
                       print b (field (index (var "sum_rows") (num 0)) "total");
                       assign b "ord" (sel "tpcc_order" (var "oid"));
                       assign b "cid"
                         (field (index (var "ord") (num 0)) "customer_id");
                       print b (var "oid");
                       assign b "delivered" (var "delivered" +% num 1);
                     ])
                  (skip b);
              ]);
        print b (var "delivered");
      ]
  in
  B.program [] main

(* STOCK-LEVEL: low-stock count for a district's recent orders. *)
let stock_level ~seed =
  let b = B.create () in
  let open B in
  let w = 1 + (seed mod n_warehouses) in
  let threshold = 15 + (seed mod 10) in
  let main =
    seq b
      [
        assign b "low"
          (scalar_field
             (read
                (str
                   "SELECT COUNT(*) AS n FROM tpcc_stock WHERE warehouse_id = "
                +% num w +% str " AND quantity < " +% num threshold))
             "n");
        print b (var "low");
        assign b "lines"
          (scalar_field
             (read (str "SELECT COUNT(*) AS n FROM tpcc_order_line"))
             "n");
        print b (var "lines");
      ]
  in
  B.program [] main

let transactions =
  [
    ("New order", new_order);
    ("Order status", order_status);
    ("Stock level", stock_level);
    ("Payment", payment);
    ("Delivery", delivery);
  ]
