lib/workload/tpcw.mli: Sloth_kernel Sloth_storage Table_spec
