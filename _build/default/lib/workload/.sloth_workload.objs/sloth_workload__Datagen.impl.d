lib/workload/datagen.ml: Array Hashtbl List Printf Random Sloth_storage Table_spec
