lib/workload/table_spec.ml: List Printf Sloth_orm Sloth_sql Sloth_storage String
