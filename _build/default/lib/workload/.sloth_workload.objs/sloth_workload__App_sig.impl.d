lib/workload/app_sig.ml: Medrec Sloth_core Sloth_storage Sloth_web Table_spec Tracker
