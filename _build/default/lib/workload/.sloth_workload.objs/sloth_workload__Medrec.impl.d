lib/workload/medrec.ml: Datagen Hashtbl List Printf Sloth_core Sloth_orm Sloth_sql Sloth_storage Sloth_web Table_spec Webapp
