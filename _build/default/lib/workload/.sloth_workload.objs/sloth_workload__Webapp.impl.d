lib/workload/webapp.ml: Hashtbl List Option Printf Repo Row Sloth_core Sloth_orm Sloth_sql Sloth_storage Sloth_web String Table_spec
