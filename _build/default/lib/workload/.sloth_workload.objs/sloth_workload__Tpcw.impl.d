lib/workload/tpcw.ml: Datagen List Printf Sloth_kernel Sloth_sql Table_spec
