lib/workload/datagen.mli: Sloth_storage Table_spec
