lib/workload/tracker.mli: Sloth_core Sloth_storage Sloth_web Table_spec
