lib/workload/tpcc.mli: Sloth_kernel Sloth_storage Table_spec
