lib/workload/tpcc.ml: Array Datagen List Printf Sloth_kernel Sloth_sql Sloth_storage Table_spec
