lib/workload/table_spec.mli: Sloth_orm Sloth_sql Sloth_storage
