(** Deterministic database population from table specs. *)

module Db = Sloth_storage.Database
module Value = Sloth_storage.Value

(* Insert directly through the storage API: population is setup, not
   workload, so it must not touch the link or the clock. *)
let populate_table db rng counts (spec : Table_spec.t) ~scale =
  let n = spec.rows_at scale in
  Hashtbl.replace counts spec.table n;
  let table =
    match Db.table db spec.table with
    | Some t -> t
    | None -> invalid_arg ("table not created: " ^ spec.table)
  in
  for id = 1 to n do
    let row =
      List.map
        (fun (c : Table_spec.col) ->
          match c.cgen with
          | Table_spec.Serial -> Value.Int id
          | Table_spec.Fk parent | Table_spec.Skewed_fk parent ->
              let parent_n =
                match Hashtbl.find_opt counts parent with
                | Some n when n > 0 -> n
                | _ ->
                    invalid_arg
                      (Printf.sprintf
                         "%s.%s references %s, which has no rows yet"
                         spec.table c.cname parent)
              in
              let skewed =
                match c.cgen with
                | Table_spec.Skewed_fk _ -> Random.State.int rng 8 = 0
                | _ -> false
              in
              if skewed then Value.Int 1
              else Value.Int (1 + Random.State.int rng parent_n)
          | Table_spec.Name_like prefix -> Value.Text (prefix ^ string_of_int id)
          | Table_spec.Int_range (lo, hi) ->
              Value.Int (lo + Random.State.int rng (hi - lo + 1))
          | Table_spec.Float_range (lo, hi) ->
              Value.Float (lo +. Random.State.float rng (hi -. lo))
          | Table_spec.Choice options ->
              Value.Text
                (List.nth options (Random.State.int rng (List.length options)))
          | Table_spec.Flag -> Value.Bool (Random.State.bool rng)
          | Table_spec.Derived f -> f id)
        spec.cols
    in
    ignore (Sloth_storage.Table.insert table (Array.of_list row))
  done

let populate ?(seed = 7) ~scale db specs =
  let rng = Random.State.make [| seed |] in
  let counts = Hashtbl.create 32 in
  (* Create all tables and FK indexes first. *)
  List.iter
    (fun spec -> Db.create_table db (Table_spec.schema spec))
    specs;
  List.iter
    (fun (spec : Table_spec.t) ->
      List.iter
        (fun (c : Table_spec.col) ->
          match c.cgen with
          | Table_spec.Fk _ | Table_spec.Skewed_fk _ ->
              Db.create_index db ~table:spec.table ~column:c.cname
          | Table_spec.Int_range _ | Table_spec.Float_range _ ->
              (* Numeric attributes get ordered indexes for range
                 predicates. *)
              Db.create_ordered_index db ~table:spec.table ~column:c.cname
          | _ -> ())
        spec.cols)
    specs;
  (* Population order: the spec list must be topologically sorted (parents
     first); the generator checks this at run time. *)
  List.iter (fun spec -> populate_table db rng counts spec ~scale) specs
