(** Tracker: the itracker-shaped issue-management application (38 pages,
    like the paper's first benchmark set). *)

module TS = Table_spec
open TS

let name = "tracker"

let specs =
  [
    spec "role" [ name_col "role" ] (fun _ -> 4);
    spec "app_user"
      [ col "username" Sloth_sql.Ast.T_text (Name_like "user"); fk "role_id" "role" ]
      (fun _ -> 20);
    spec "privilege"
      [ name_col "priv"; fk "role_id" "role" ]
      (fun _ -> 90)
      ~list_deps:[ "role_id" ];
    spec "project"
      [ name_col "project";
        col "status" Sloth_sql.Ast.T_text (Choice [ "active"; "locked"; "viewable" ]) ]
      (fun s -> 10 * s)
      ~eager_children:[ ("component", "project_id"); ("version", "project_id") ];
    spec "component"
      [ name_col "component"; fk "project_id" "project" ]
      (fun s -> 30 * s)
      ~list_deps:[ "project_id" ]
      ~lookups:[ "project" ];
    spec "version"
      [ fk "project_id" "project";
        col "number" Sloth_sql.Ast.T_text (Name_like "v") ]
      (fun s -> 25 * s)
      ~list_deps:[ "project_id" ]
      ~lookups:[ "project" ];
    spec "issue"
      [
        Table_spec.{ cname = "project_id"; cty = Sloth_sql.Ast.T_int; cgen = Skewed_fk "project" };
        fk "component_id" "component";
        fk "creator_id" "app_user";
        fk "owner_id" "app_user";
        col "severity" Sloth_sql.Ast.T_int (Int_range (1, 5));
        col "status" Sloth_sql.Ast.T_text (Choice [ "new"; "open"; "resolved"; "closed" ]);
      ]
      (fun s -> 500 * s)
      ~list_deps:[ "component_id"; "owner_id" ]
      ~lookups:[ "component"; "version"; "app_user" ]
      ~eager_children:[ ("attachment", "issue_id") ];
    spec "issue_history"
      [ fk "issue_id" "issue"; fk "user_id" "app_user";
        col "action" Sloth_sql.Ast.T_text (Choice [ "created"; "assigned"; "commented"; "closed" ]) ]
      (fun s -> 800 * s)
      ~list_deps:[ "issue_id"; "user_id" ];
    spec "attachment"
      [ fk "issue_id" "issue";
        col "filename" Sloth_sql.Ast.T_text (Name_like "file");
        col "size" Sloth_sql.Ast.T_int (Int_range (100, 1000000)) ]
      (fun s -> 60 * s)
      ~list_deps:[ "issue_id" ];
    spec "notification"
      [ fk "issue_id" "issue"; fk "user_id" "app_user" ]
      (fun s -> 100 * s)
      ~list_deps:[ "issue_id"; "user_id" ];
    spec "language_key" [ col "code" Sloth_sql.Ast.T_text (Name_like "key") ]
      (fun _ -> 50)
      ~eager_children:[ ("language_value", "key_id") ];
    spec "language_value"
      [ fk "key_id" "language_key";
        col "locale" Sloth_sql.Ast.T_text (Choice [ "en"; "fr"; "es"; "de" ]);
        col "value" Sloth_sql.Ast.T_text (Name_like "text") ]
      (fun _ -> 150)
      ~list_deps:[ "key_id" ];
    spec "report_def" [ name_col "report" ] (fun _ -> 8);
    spec "scheduled_task"
      [ name_col "task"; col "interval_s" Sloth_sql.Ast.T_int (Int_range (60, 86400)) ]
      (fun _ -> 6);
    spec "configuration_item"
      [ col "prop" Sloth_sql.Ast.T_text (Name_like "conf");
        col "value" Sloth_sql.Ast.T_text (Choice [ "on"; "off"; "5"; "default" ]) ]
      (fun _ -> 30);
    spec "custom_field"
      [ name_col "field";
        col "kind" Sloth_sql.Ast.T_text (Choice [ "string"; "int"; "date"; "list" ]) ]
      (fun _ -> 10);
    spec "workflow_script"
      [ name_col "script"; fk "project_id" "project" ]
      (fun _ -> 12)
      ~list_deps:[ "project_id" ]
      ~lookups:[ "project" ];
  ]

let populate ?(scale = 1) db = Datagen.populate ~scale db specs

let admin_tables =
  [
    "report_def"; "configuration_item"; "workflow_script"; "app_user";
    "project"; "attachment"; "scheduled_task"; "custom_field";
  ]

module Pages (X : Sloth_core.Exec.S) = struct
  module K = Webapp.Kit (X)
  module Html = Sloth_web.Html
  module Model = Sloth_web.Model
  module Row = Sloth_orm.Row
  module Repo = Sloth_orm.Repo
  module Value = Sloth_storage.Value
  open Sloth_sql.Ast

  let menu_checks page_name = 14 + (Hashtbl.hash page_name mod 12)

  let forced_checks page_name = 4 + (Hashtbl.hash (page_name ^ "!") mod 14)

  let std page_name build =
    ( page_name,
      fun () ->
        let req = K.new_request specs in
        if
          K.prelude req ~user_table:"app_user" ~privilege_table:"privilege"
            ~menu_checks:(menu_checks page_name)
            ~forced_checks:(forced_checks page_name) ~user_id:1 ()
        then build req;
        req.model )

  let generic_pages =
    List.concat_map
      (fun table ->
        let s = TS.find specs table in
        [
          std (Printf.sprintf "admin/%s/list" table) (fun req ->
              K.list_page req s ());
          std (Printf.sprintf "admin/%s/edit" table) (fun req ->
              K.form_page req s ~id:2 ());
        ])
      admin_tables

  (* Project list with per-project issue/component/version counts — the
     Fig. 10(a) scaling page: no LIMIT, every project rendered. *)
  let list_projects =
    std "list_projects" (fun req ->
        let module Projects = (val req.repo (K.spec req "project")) in
        let module Issues = (val req.repo (K.spec req "issue")) in
        let module Components = (val req.repo (K.spec req "component")) in
        let module Versions = (val req.repo (K.spec req "version")) in
        let projects = X.get (Projects.all ()) in
        let cells =
          List.map
            (fun p ->
              let pid = Row.int p "id" in
              let count (module R : K.ROW_REPO) =
                R.count
                  ~where:(Binop (Eq, Col (None, "project_id"), Lit (L_int pid)))
                  ()
              in
              let issues = count (module Issues) in
              let comps = count (module Components) in
              let vers = count (module Versions) in
              X.map2
                (fun n_issues (n_comps, n_vers) ->
                  Html.tr
                    [
                      Html.td [ Html.text (Row.str p "name") ];
                      Html.td [ Html.int n_issues ];
                      Html.td [ Html.int n_comps ];
                      Html.td [ Html.int n_vers ];
                    ])
                issues
                (X.map2 (fun a b -> (a, b)) comps vers))
            projects
        in
        Model.put req.model "projects"
          (X.to_thunk (X.map (fun trs -> Html.table trs) (X.all cells))))

  let portal_home =
    std "portal_home" (fun req ->
        let module Projects = (val req.repo (K.spec req "project")) in
        let module Issues = (val req.repo (K.spec req "issue")) in
        let module Notifications = (val req.repo (K.spec req "notification")) in
        Model.put req.model "open_issues"
          (X.to_thunk
             (X.map
                (fun n -> Html.p [ Html.int n ])
                (Issues.count
                   ~where:(Binop (Eq, Col (None, "status"), Lit (L_string "open")))
                   ())));
        Model.put req.model "projects"
          (X.to_thunk (X.map K.rows_table (Projects.all ~limit:10 ())));
        Model.put req.model "notifications"
          (X.to_thunk
             (X.map K.rows_table (Notifications.find_by "user_id" (Value.Int 1)))))

  let list_issues =
    std "list_issues" (fun req ->
        K.list_page req (TS.find specs "issue")
          ~where:(Binop (Eq, Col (None, "project_id"), Lit (L_int 1)))
          ~limit:30 ())

  let view_issue =
    std "view_issue" (fun req ->
        let module Issues = (val req.repo (K.spec req "issue")) in
        let module Users = (val req.repo (K.spec req "app_user")) in
        let module Components = (val req.repo (K.spec req "component")) in
        let module History = (val req.repo (K.spec req "issue_history")) in
        let module Attachments = (val req.repo (K.spec req "attachment")) in
        match X.get (Issues.find 1) with
        | None -> Model.put_now req.model "issue" (Html.text "(missing)")
        | Some issue ->
            Model.put_now req.model "issue" (K.definition_html issue);
            Model.put req.model "owner"
              (X.to_thunk
                 (X.map (K.opt_html K.definition_html)
                    (Users.find (Row.int issue "owner_id"))));
            Model.put req.model "creator"
              (X.to_thunk
                 (X.map (K.opt_html K.definition_html)
                    (Users.find (Row.int issue "creator_id"))));
            Model.put req.model "component"
              (X.to_thunk
                 (X.map (K.opt_html K.definition_html)
                    (Components.find (Row.int issue "component_id"))));
            Model.put req.model "history"
              (X.to_thunk
                 (X.map K.rows_table (History.find_by "issue_id" (Value.Int 1))));
            Model.put req.model "attachments"
              (X.to_thunk
                 (X.map K.rows_table
                    (Attachments.find_by "issue_id" (Value.Int 1)))))

  (* Each history entry resolves its acting user — a dependent 1+N. *)
  let view_issue_activity =
    std "view_issue_activity" (fun req ->
        let module History = (val req.repo (K.spec req "issue_history")) in
        let module Users = (val req.repo (K.spec req "app_user")) in
        let entries = X.get (History.find_by "issue_id" (Value.Int 1)) in
        let cells =
          List.map
            (fun h ->
              X.map
                (fun user ->
                  Html.tr
                    [
                      Html.td [ Html.text (Row.str h "action") ];
                      Html.td
                        [
                          (match user with
                          | Some u -> Html.text (Row.str u "username")
                          | None -> Html.text "?");
                        ];
                    ])
                (Users.find (Row.int h "user_id")))
            entries
        in
        Model.put req.model "activity"
          (X.to_thunk (X.map (fun trs -> Html.table trs) (X.all cells))))

  let edit_issue =
    std "edit_issue" (fun req ->
        K.form_page req (TS.find specs "issue") ~id:1 ())

  let create_issue =
    std "create_issue" (fun req ->
        (* A creation form: lookups only. *)
        List.iter
          (fun dep ->
            let dspec = K.spec req dep in
            let module D = (val req.repo dspec) in
            Model.put req.model ("options_" ^ dep)
              (X.to_thunk (X.map K.rows_table (D.all ~limit:30 ()))))
          [ "project"; "component"; "version"; "app_user"; "custom_field" ])

  let move_issue =
    std "move_issue" (fun req ->
        let module Issues = (val req.repo (K.spec req "issue")) in
        let module Projects = (val req.repo (K.spec req "project")) in
        Model.put req.model "issue"
          (X.to_thunk
             (X.map (K.opt_html K.definition_html) (Issues.find 1)));
        Model.put req.model "projects"
          (X.to_thunk (X.map K.rows_table (Projects.all ()))))

  let search_issues_form =
    std "search_issues_form" (fun req ->
        List.iter
          (fun dep ->
            let module D = (val req.repo (K.spec req dep)) in
            Model.put req.model ("options_" ^ dep)
              (X.to_thunk (X.map K.rows_table (D.all ~limit:30 ()))))
          [ "project"; "component"; "version"; "custom_field" ])

  let edit_language =
    std "admin/language/edit" (fun req ->
        K.list_page req (TS.find specs "language_value")
          ~where:(Binop (Eq, Col (None, "locale"), Lit (L_string "en")))
          ())

  let admin_home =
    std "admin_home" (fun req ->
        List.iter
          (fun table ->
            let module R = (val req.repo (K.spec req table)) in
            Model.put req.model ("n_" ^ table)
              (X.to_thunk
                 (X.map (fun n -> Html.p [ Html.int n ]) (R.count ()))))
          [ "project"; "issue"; "app_user"; "attachment"; "component";
            "version"; "notification"; "report_def" ])

  let light_page page_name =
    std page_name (fun req ->
        let module Conf = (val req.repo (K.spec req "configuration_item")) in
        Model.put req.model "config"
          (X.to_thunk (X.map K.rows_table (Conf.all ~limit:10 ()))))

  let special_pages =
    [
      portal_home;
      list_projects;
      list_issues;
      view_issue;
      view_issue_activity;
      edit_issue;
      create_issue;
      move_issue;
      search_issues_form;
      edit_language;
      admin_home;
      std "admin/language/list" (fun req ->
          K.list_page req (TS.find specs "language_key") ());
      std "admin/language/create_key" (fun req ->
          K.form_page req (TS.find specs "language_key") ~id:2 ());
      std "admin/project/edit_component" (fun req ->
          K.form_page req (TS.find specs "component") ~id:2 ());
      std "admin/project/edit_version" (fun req ->
          K.form_page req (TS.find specs "version") ~id:2 ());
      std "admin/reports/list" (fun req ->
          K.list_page req (TS.find specs "report_def") ());
      std "preferences" (fun req ->
          K.form_page req (TS.find specs "app_user") ~id:1 ());
      light_page "self_register";
      light_page "forgot_password";
      light_page "error";
      light_page "unauthorized";
      light_page "help";
    ]

  let pages = generic_pages @ special_pages
  let page_names = List.map fst pages
  let controller page_name = List.assoc page_name pages
end
